// Cloud-vs-HPC: the paper's motivating question — what does the same
// tightly-coupled application cost on commodity cloud networking versus
// an HPC interconnect, virtualized versus native? This example uses the
// performance-simulation half of the library to run an MPI
// all-to-all+compute workload (an FT-like spectral step) across four
// substrates and prints the comparison.
//
//	go run ./examples/cloudhpc
package main

import (
	"fmt"
	"time"

	"vnetp"
	"vnetp/internal/mpi"
	"vnetp/internal/netstack"
	"vnetp/internal/sim"
)

// workload: 8 ranks, 12 iterations of (compute, alltoall(64KB)).
const (
	hosts      = 2
	ranksPerVM = 4
	iters      = 12
	compute    = 2 * time.Millisecond
	block      = 64 << 10
)

func runOn(dev vnetp.Device, virtualized bool) time.Duration {
	eng := vnetp.NewSimEngine()
	var tb *vnetp.Testbed
	if virtualized {
		tb = vnetp.NewVNETPTestbed(eng, vnetp.ClusterConfig{
			Dev: dev, N: hosts, Params: vnetp.DefaultParams(),
		})
	} else {
		tb = vnetp.NewNativeTestbed(eng, dev, hosts)
	}
	var stacks []*netstack.Stack
	for i := 0; i < hosts; i++ {
		for k := 0; k < ranksPerVM; k++ {
			stacks = append(stacks, tb.Stacks[i])
		}
	}
	w := mpi.NewWorld(eng, stacks)
	var start, end sim.Time
	w.Launch(func(p *sim.Proc, r *mpi.Rank) {
		r.Barrier(p)
		if r.ID() == 0 {
			start = p.Now()
		}
		for it := 0; it < iters; it++ {
			p.Sleep(compute)
			r.Alltoall(p, block)
		}
		r.Barrier(p)
		if r.ID() == 0 {
			end = p.Now()
		}
	})
	eng.Go("await", func(p *sim.Proc) { w.AwaitAll(p) })
	eng.Run()
	eng.Close()
	return end.Sub(start)
}

func main() {
	fmt.Printf("spectral-step workload: %d ranks, %d iterations, %d KB all-to-all blocks\n\n",
		hosts*ranksPerVM, iters, block>>10)
	fmt.Printf("%-24s %12s %12s %9s\n", "substrate", "native", "VNET/P", "overhead")
	for _, dev := range []vnetp.Device{vnetp.Eth1G, vnetp.Eth10G, vnetp.IPoIB} {
		nat := runOn(dev, false)
		vir := runOn(dev, true)
		fmt.Printf("%-24s %12v %12v %8.1f%%\n",
			dev.Name, nat.Round(time.Microsecond), vir.Round(time.Microsecond),
			100*(vir.Seconds()/nat.Seconds()-1))
	}
	fmt.Println("\nThe overlay's cost shrinks as compute dominates and grows with the")
	fmt.Println("fabric speed — the tradeoff Figures 12-14 of the paper quantify.")
}
