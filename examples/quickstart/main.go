// Quickstart: two VNET/P overlay nodes on this machine, connected over
// real UDP sockets. An endpoint ("guest NIC") attaches to each node; the
// overlay makes them look like neighbors on one Ethernet LAN, and we
// bounce a greeting across it.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"vnetp"
)

func main() {
	// Two overlay nodes: in production these run on different hosts
	// (cmd/vnetpd); here both bind to loopback.
	nodeA, err := vnetp.NewNode("cloud-host", "127.0.0.1:0")
	check(err)
	defer nodeA.Close()
	nodeB, err := vnetp.NewNode("hpc-host", "127.0.0.1:0")
	check(err)
	defer nodeB.Close()

	// One guest endpoint per node, each with its own MAC.
	macA, macB := vnetp.LocalMAC(1), vnetp.LocalMAC(2)
	guestA, err := nodeA.AttachEndpoint("nic0", macA, 9000)
	check(err)
	guestB, err := nodeB.AttachEndpoint("nic0", macB, 9000)
	check(err)

	// Overlay links (UDP paths) and per-MAC routes: A knows B's frames
	// travel over to-b, and vice versa.
	check(nodeA.AddLink("to-b", nodeB.Addr(), "udp"))
	check(nodeB.AddLink("to-a", nodeA.Addr(), "udp"))
	check(nodeA.AddRoute(vnetp.Route{
		DstMAC: macB, DstQual: vnetp.QualExact, SrcQual: vnetp.QualAny,
		Dest: vnetp.Destination{Type: vnetp.DestLink, ID: "to-b"},
	}))
	check(nodeB.AddRoute(vnetp.Route{
		DstMAC: macA, DstQual: vnetp.QualExact, SrcQual: vnetp.QualAny,
		Dest: vnetp.Destination{Type: vnetp.DestLink, ID: "to-a"},
	}))

	// Guest A sends an Ethernet frame to guest B as if they shared a LAN.
	check(guestA.Send(&vnetp.Frame{
		Dst: macB, Src: macA, Type: 0x88b5,
		Payload: []byte("hello from the cloud side"),
	}))
	f, ok := guestB.Recv(2 * time.Second)
	if !ok {
		log.Fatal("frame lost")
	}
	fmt.Printf("guest B got %q from %s\n", f.Payload, f.Src)

	// And back.
	check(guestB.Send(&vnetp.Frame{
		Dst: macA, Src: macB, Type: 0x88b5,
		Payload: []byte("hello from the HPC side"),
	}))
	f, ok = guestA.Recv(2 * time.Second)
	if !ok {
		log.Fatal("reply lost")
	}
	fmt.Printf("guest A got %q from %s\n", f.Payload, f.Src)

	fmt.Printf("overlay stats: node A sent %d encapsulated packets, node B sent %d\n",
		nodeA.EncapSent.Load(), nodeB.EncapSent.Load())
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
