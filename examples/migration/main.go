// Migration: the VNET property the paper builds on — location
// independence. A "VM" (endpoint) holds a TCP-of-sorts conversation with
// a peer, migrates from one overlay node to another mid-conversation, and
// after a route update on the peer's node the conversation continues: the
// guest kept its MAC and needed no reconfiguration.
//
//	go run ./examples/migration
package main

import (
	"fmt"
	"log"
	"strings"
	"time"

	"vnetp"
)

func main() {
	// Three overlay nodes: the peer's home, and two hosts the mobile VM
	// migrates between.
	home, err := vnetp.NewNode("home", "127.0.0.1:0")
	check(err)
	defer home.Close()
	hostB, err := vnetp.NewNode("host-b", "127.0.0.1:0")
	check(err)
	defer hostB.Close()
	hostC, err := vnetp.NewNode("host-c", "127.0.0.1:0")
	check(err)
	defer hostC.Close()

	macPeer, macVM := vnetp.LocalMAC(10), vnetp.LocalMAC(20)
	peer, err := home.AttachEndpoint("nic0", macPeer, 1500)
	check(err)

	// Configure the mesh with the control language, exactly as external
	// VNET/U tooling would.
	check(vnetp.ApplyConfig(home, strings.NewReader(fmt.Sprintf(`
ADD LINK to-b REMOTE %s
ADD LINK to-c REMOTE %s
ADD ROUTE %s any link to-b
`, hostB.Addr(), hostC.Addr(), macVM))))
	check(vnetp.ApplyConfig(hostB, strings.NewReader(fmt.Sprintf(
		"ADD LINK to-home REMOTE %s\nADD ROUTE %s any link to-home\n", home.Addr(), macPeer))))
	check(vnetp.ApplyConfig(hostC, strings.NewReader(fmt.Sprintf(
		"ADD LINK to-home REMOTE %s\nADD ROUTE %s any link to-home\n", home.Addr(), macPeer))))

	// The VM starts life on host B.
	vm, err := hostB.AttachEndpoint("vmnic", macVM, 1500)
	check(err)

	exchange := func(n int) {
		check(peer.Send(&vnetp.Frame{Dst: macVM, Src: macPeer, Type: 0x88b5,
			Payload: []byte(fmt.Sprintf("msg-%d", n))}))
		f, ok := vm.Recv(2 * time.Second)
		if !ok {
			log.Fatalf("msg-%d lost", n)
		}
		check(vm.Send(&vnetp.Frame{Dst: macPeer, Src: macVM, Type: 0x88b5,
			Payload: append([]byte("ack-"), f.Payload...)}))
		if _, ok := peer.Recv(2 * time.Second); !ok {
			log.Fatalf("ack-%d lost", n)
		}
		fmt.Printf("exchange %d ok (VM on %s)\n", n, currentHost(hostB, hostC))
	}

	exchange(1)
	exchange(2)

	// --- Migrate: detach at B, attach at C with the SAME MAC; update the
	// peer's route. The guest sees nothing change. ---
	fmt.Println("migrating VM from host-b to host-c ...")
	hostB.DetachEndpoint("vmnic")
	vm, err = hostC.AttachEndpoint("vmnic", macVM, 1500)
	check(err)
	check(home.DelRoute(vnetp.Route{DstMAC: macVM, DstQual: vnetp.QualExact, SrcQual: vnetp.QualAny,
		Dest: vnetp.Destination{Type: vnetp.DestLink, ID: "to-b"}}))
	check(home.AddRoute(vnetp.Route{DstMAC: macVM, DstQual: vnetp.QualExact, SrcQual: vnetp.QualAny,
		Dest: vnetp.Destination{Type: vnetp.DestLink, ID: "to-c"}}))

	exchange(3)
	exchange(4)
	fmt.Println("connectivity survived the migration")
}

func currentHost(b, c *vnetp.Node) string {
	if len(b.Interfaces()) > 0 {
		return b.Name()
	}
	return c.Name()
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
