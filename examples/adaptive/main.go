// Adaptive mode: watch VNET/P's dispatch-mode state machine (paper
// Fig. 6) react to a bursty guest. The interface starts in guest-driven
// mode (lowest latency), switches to VMM-driven when the packet rate
// crosses alpha_u, and falls back once the burst ends and the rate drops
// below alpha_l — with hysteresis, so mid-band rates do not flap.
//
//	go run ./examples/adaptive
package main

import (
	"fmt"
	"time"

	"vnetp"
	"vnetp/internal/core"
	"vnetp/internal/ethernet"
	"vnetp/internal/sim"
)

func main() {
	eng := vnetp.NewSimEngine()
	params := vnetp.DefaultParams() // adaptive, alpha_l=1e3, alpha_u=1e4, omega=5ms
	tb := vnetp.NewVNETPTestbed(eng, vnetp.ClusterConfig{
		Dev: vnetp.Eth10G, N: 2, Params: params,
	})
	nodes := tb.VNETP.Nodes
	sender, receiver := nodes[0], nodes[1]

	// Receiver guest: drain frames as they arrive.
	received := 0
	receiver.Iface.SetRecv(func() {
		for {
			if _, ok := receiver.Iface.GuestRecv(); !ok {
				break
			}
			received++
		}
		receiver.Iface.RxDone()
	})

	// Log mode transitions as the simulation progresses.
	lastMode := sender.Iface.Mode()
	fmt.Printf("%10s  %-14s (packet rate)\n", "time", "mode")
	fmt.Printf("%10v  %-14v\n", time.Duration(0), lastMode)
	var watch func()
	watch = func() {
		if m := sender.Iface.Mode(); m != lastMode {
			fmt.Printf("%10v  %-14v\n", eng.Now().Duration().Round(time.Millisecond), m)
			lastMode = m
		}
		eng.Schedule(time.Millisecond, watch)
	}
	eng.Schedule(time.Millisecond, watch)

	// The guest workload: quiet trickle, heavy burst, quiet trickle.
	eng.Go("guest", func(p *sim.Proc) {
		send := func(rate float64, dur time.Duration, label string) {
			fmt.Printf("%10v  -- guest sends at %.0f pkt/s for %v (%s)\n",
				p.Now().Duration().Round(time.Millisecond), rate, dur, label)
			gap := time.Duration(float64(time.Second) / rate)
			deadline := p.Now().Add(dur)
			for p.Now() < deadline {
				f := &ethernet.Frame{
					Dst: receiver.MAC(), Src: sender.MAC(),
					Type: ethernet.TypeTest, Pad: 1024,
				}
				for !sender.Iface.TrySend(f) {
					sender.Iface.WaitSendSpace(p)
				}
				p.Sleep(gap)
			}
		}
		send(500, 30*time.Millisecond, "below alpha_l: stays guest-driven")
		send(100000, 30*time.Millisecond, "above alpha_u: switches to VMM-driven")
		send(500, 40*time.Millisecond, "quiet again: falls back")
	})

	eng.RunFor(110 * time.Millisecond)
	ifc := sender.Iface
	fmt.Printf("\nfinal mode: %v after %d switches\n", ifc.Mode(), ifc.ModeSwitches)
	fmt.Printf("kick exits taken: %d, kicks avoided by polling: %d, frames delivered: %d\n",
		ifc.Kicks, ifc.KicksAvoided, received)
	if ifc.Mode() != core.GuestDriven || ifc.ModeSwitches < 2 {
		fmt.Println("unexpected: adaptive operation did not behave per Fig. 6")
	}
	eng.Close()
}
