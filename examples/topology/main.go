// Topology: build a star overlay across four nodes with the topo
// generator (the VNET model's wholesale-topology tooling), verify
// spoke-to-spoke traffic transits the hub, then hot-swap to a full mesh
// and watch the hub drop out of the path — all through the
// control-language scripts a deployment would feed to vnetctl.
//
//	go run ./examples/topology
package main

import (
	"fmt"
	"log"
	"strings"
	"time"

	"vnetp"
	"vnetp/internal/ethernet"
	"vnetp/internal/topo"
)

const n = 4

func main() {
	nodes := make([]*vnetp.Node, n)
	eps := make([]*vnetp.Endpoint, n)
	hosts := make([]topo.Host, n)
	for i := 0; i < n; i++ {
		node, err := vnetp.NewNode(fmt.Sprintf("node%d", i), "127.0.0.1:0")
		check(err)
		defer node.Close()
		mac := vnetp.LocalMAC(uint32(i + 1))
		ep, err := node.AttachEndpoint("nic0", mac, 1500)
		check(err)
		nodes[i] = node
		eps[i] = ep
		hosts[i] = topo.Host{
			Name: fmt.Sprintf("node%d", i), Addr: node.Addr(),
			MACs: []ethernet.MAC{mac},
		}
	}

	apply := func(scripts map[string][]string) {
		for i, node := range nodes {
			script := strings.Join(scripts[fmt.Sprintf("node%d", i)], "\n")
			check(vnetp.ApplyConfig(node, strings.NewReader(script)))
		}
	}
	exchange := func(from, to int) {
		check(eps[from].Send(&vnetp.Frame{
			Dst: eps[to].MAC(), Src: eps[from].MAC(), Type: 0x88b5,
			Payload: []byte(fmt.Sprintf("%d->%d", from, to)),
		}))
		if _, ok := eps[to].Recv(2 * time.Second); !ok {
			log.Fatalf("%d->%d lost", from, to)
		}
	}

	// --- Star around node 0 ---
	star, err := topo.Scripts(topo.Star, hosts, 0, "udp")
	check(err)
	apply(star)
	fmt.Println("star topology up (hub = node0)")
	before := nodes[0].EncapSent.Load()
	exchange(1, 3) // spoke to spoke
	exchange(3, 2)
	fmt.Printf("spoke-to-spoke traffic transited the hub: hub forwarded %d packets\n",
		nodes[0].EncapSent.Load()-before)

	// --- Tear down, rebuild as mesh ---
	down, err := topo.Teardown(topo.Star, hosts, 0)
	check(err)
	apply(down)
	mesh, err := topo.Scripts(topo.Mesh, hosts, 0, "udp")
	check(err)
	apply(mesh)
	fmt.Println("reconfigured to full mesh")

	before = nodes[0].EncapSent.Load()
	exchange(1, 3)
	exchange(3, 2)
	if nodes[0].EncapSent.Load() != before {
		log.Fatal("mesh traffic still transits node0")
	}
	fmt.Println("spoke-to-spoke traffic now flows direct (hub untouched)")

	for i, node := range nodes {
		fmt.Printf("node%d stats: %v\n", i, node.Stats()[:2])
	}
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
