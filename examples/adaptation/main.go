// Adaptation: the reason VNET exists (paper Sect. 3) — the overlay is a
// locus for an adaptive system. A star overlay carries all traffic
// through a hub; the adaptation loop observes the per-flow counters,
// notices a heavy spoke-to-spoke flow, synthesizes a shortcut (a direct
// link plus route updates, expressed in the same control language an
// operator uses), applies it, and the hub drops out of the heavy path.
//
//	go run ./examples/adaptation
package main

import (
	"fmt"
	"log"
	"strings"
	"time"

	"vnetp"
	"vnetp/internal/adapt"
	"vnetp/internal/core"
	"vnetp/internal/ethernet"
	"vnetp/internal/topo"
)

var names = []string{"hub", "spoke1", "spoke2"}

func main() {
	nodes := make([]*vnetp.Node, 3)
	eps := make([]*vnetp.Endpoint, 3)
	hosts := make([]topo.Host, 3)
	placement := adapt.Placement{HostOf: map[ethernet.MAC]string{}, AddrOf: map[string]string{}}
	for i := range nodes {
		node, err := vnetp.NewNode(names[i], "127.0.0.1:0")
		check(err)
		defer node.Close()
		mac := vnetp.LocalMAC(uint32(i + 1))
		ep, err := node.AttachEndpoint("nic0", mac, 1500)
		check(err)
		nodes[i], eps[i] = node, ep
		hosts[i] = topo.Host{Name: names[i], Addr: node.Addr(), MACs: []ethernet.MAC{mac}}
		placement.HostOf[mac] = names[i]
		placement.AddrOf[names[i]] = node.Addr()
	}
	scripts, err := topo.Scripts(topo.Star, hosts, 0, "udp")
	check(err)
	for i, node := range nodes {
		check(vnetp.ApplyConfig(node, strings.NewReader(strings.Join(scripts[names[i]], "\n"))))
	}
	fmt.Println("star overlay up; all traffic transits the hub")

	burst := func(rounds int) {
		for i := 0; i < rounds; i++ {
			check(eps[1].Send(&vnetp.Frame{Dst: eps[2].MAC(), Src: eps[1].MAC(),
				Type: 0x88b5, Payload: make([]byte, 1200)}))
			if _, ok := eps[2].Recv(2 * time.Second); !ok {
				log.Fatal("frame lost")
			}
		}
	}
	burst(50)
	fmt.Printf("after 50 frames spoke1->spoke2: hub forwarded %d packets\n", nodes[0].EncapSent.Load())

	// --- The adaptation loop ---
	var flows []core.Flow
	for _, node := range nodes {
		flows = append(flows, node.Flows().Top(0)...)
	}
	fmt.Println("observed flows:")
	for _, f := range flows {
		if f.Bytes > 0 {
			fmt.Printf("  %s -> %s: %d bytes (%d packets)\n", f.Src, f.Dst, f.Bytes, f.Packets)
		}
	}
	plan := adapt.Plan(flows, placement, func(a, b string) bool {
		return a == "hub" || b == "hub" // only hub links exist
	}, 1)
	if len(plan) == 0 {
		log.Fatal("planner found nothing to adapt")
	}
	sc := plan[0]
	fmt.Printf("planned shortcut: %s <-> %s (%d observed bytes)\n", sc.A, sc.B, sc.Bytes)
	cmds := adapt.Commands(sc, placement, func(node string, mac ethernet.MAC) (core.Route, bool) {
		return core.Route{DstMAC: mac, DstQual: core.QualExact, SrcQual: core.QualAny,
			Dest: core.Destination{Type: core.DestLink, ID: "to-hub"}}, true
	})
	for i, node := range nodes {
		if lines, ok := cmds[names[i]]; ok {
			fmt.Printf("applying to %s:\n  %s\n", names[i], strings.Join(lines, "\n  "))
			check(vnetp.ApplyConfig(node, strings.NewReader(strings.Join(lines, "\n"))))
		}
	}

	before := nodes[0].EncapSent.Load()
	burst(50)
	fmt.Printf("after 50 more frames: hub forwarded %d new packets (want 0)\n",
		nodes[0].EncapSent.Load()-before)
	if nodes[0].EncapSent.Load() != before {
		log.Fatal("adaptation failed: hub still in the path")
	}
	fmt.Println("heavy flow now bypasses the hub — adaptation complete")
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
