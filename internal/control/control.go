// Package control implements VNET/P's control plane (paper Sect. 4.6): a
// VNET/U-compatible, line-oriented configuration language for links,
// interfaces and routing rules, and a TCP daemon ("configuration
// console") that applies commands to a running overlay node, so existing
// VNET/U tooling can drive VNET/P.
package control

import (
	"bufio"
	"crypto/tls"
	"errors"
	"fmt"
	"io"
	"net"
	"strconv"
	"strings"
	"sync"
	"time"

	"vnetp/internal/core"
	"vnetp/internal/ethernet"
	"vnetp/internal/seal"
)

// Target is the overlay node being configured.
type Target interface {
	AddLink(id, remote string, proto string) error
	DelLink(id string) error
	AddRoute(r core.Route) error
	DelRoute(r core.Route) error
	Routes() []core.Route
	Links() []string
	Interfaces() []string
}

// StatsProvider is an optional Target extension: nodes that implement it
// answer LIST STATS with counter lines (the monitoring hook the Virtuoso
// adaptation work built on).
type StatsProvider interface {
	Stats() []string
}

// HealthTarget is an optional Target extension: nodes running the link
// health monitor answer LINK STATUS / LIST HEALTH and accept heartbeat
// tuning via LINK PROBE.
type HealthTarget interface {
	// LinkStatus reports one link's health detail lines.
	LinkStatus(id string) ([]string, error)
	// HealthSummary reports one line per link.
	HealthSummary() []string
	// SetProbeConfig retunes the heartbeat monitor. Zero values keep
	// the current setting.
	SetProbeConfig(interval time.Duration, failN, recoverN int) error
}

// TraceTarget is an optional Target extension: nodes carrying the live
// packet tracer answer the TRACE verbs.
type TraceTarget interface {
	// TraceStart arms tracing: sample 1 in sampleN frames (0 keeps the
	// sampler off) and/or an explicit flow trigger on a MAC.
	TraceStart(sampleN uint64, flow ethernet.MAC, hasFlow bool) error
	// TraceStop disarms sampling and flow triggers.
	TraceStop() error
	// TraceDump renders the recorded trace paths.
	TraceDump() []string
}

// TuneTarget is an optional Target extension: nodes running the batched
// transmit path answer LIST TUNING and accept per-link dispatch-mode
// overrides via LINK TUNE (the operator surface of the paper's Table 1
// adaptive dispatch).
type TuneTarget interface {
	// SetLinkTune retunes one link's dispatch mode: "latency",
	// "throughput", or "auto" (release a pin to the rate controller).
	SetLinkTune(id, mode string) error
	// TuningSummary reports one line per link with its effective
	// dispatch tunables.
	TuningSummary() []string
}

// TenantTarget is an optional Target extension: nodes carrying the seal
// layer accept tenant keys (ADD TENANT), report their tenant set
// (LIST TENANTS — key fingerprints only, never key material), and bind
// links to a tenant so the link's traffic is sealed with that tenant's
// key (ADD LINK ... TENANT <id>).
type TenantTarget interface {
	// AddTenant installs (or rotates) one tenant's AEAD key.
	AddTenant(id uint32, key []byte) error
	// TenantSummary reports one line per configured tenant. Lines carry
	// key fingerprints, never keys.
	TenantSummary() []string
	// AddLinkTenant is AddLink with a tenant binding: the link seals its
	// outbound frames under the tenant's key and only carries that
	// tenant's traffic. Fails when the tenant has no key installed.
	AddLinkTenant(id, remote, proto string, tenant uint32) error
}

// FlowsProvider is an optional Target extension: nodes tracking
// per-tenant heavy-hitter flows answer LIST FLOWS with the top flows by
// live byte count (the inspectable face of the flow accounting the
// VNET adaptation loop consumes).
type FlowsProvider interface {
	// TopFlowSummary reports a "flows N" count line followed by one
	// line per heavy-hitter candidate, ordered by tenant then bytes.
	TopFlowSummary() []string
}

// Command is one parsed control command.
type Command struct {
	Verb string // ADD, DEL, LIST, LINK, TRACE
	Kind string // LINK, ROUTE, TENANT, INTERFACES, LINKS, ROUTES, STATS, HEALTH, TUNING, TENANTS, STATUS, PROBE, TUNE, START, STOP, DUMP

	// Link fields.
	LinkID string
	Remote string
	Proto  string

	// Route fields.
	Route core.Route

	// Probe-tuning fields (LINK PROBE).
	Interval time.Duration
	FailN    int
	RecoverN int

	// Trace fields (TRACE START).
	SampleN uint64
	FlowMAC ethernet.MAC
	HasFlow bool

	// Dispatch-tuning field (LINK TUNE): "latency", "throughput", "auto".
	Tune string

	// Tenant scopes ADD LINK / ADD ROUTE / DEL ROUTE (trailing
	// "TENANT <id>" clause) and names the tenant for ADD TENANT.
	Tenant uint32
	// Key is ADD TENANT's parsed key material. It is never echoed in
	// errors or responses.
	Key []byte
}

// Parse errors.
var (
	ErrEmpty  = errors.New("control: empty command")
	ErrSyntax = errors.New("control: syntax error")
)

// parseMACSpec parses a route endpoint spec: "any", "not-<mac>", or a MAC.
func parseMACSpec(s string) (ethernet.MAC, core.Qualifier, error) {
	switch {
	case strings.EqualFold(s, "any"):
		return ethernet.MAC{}, core.QualAny, nil
	case strings.HasPrefix(strings.ToLower(s), "not-"):
		m, err := ethernet.ParseMAC(s[4:])
		if err != nil {
			return ethernet.MAC{}, 0, err
		}
		return m, core.QualNot, nil
	default:
		m, err := ethernet.ParseMAC(s)
		if err != nil {
			return ethernet.MAC{}, 0, err
		}
		return m, core.QualExact, nil
	}
}

// formatMACSpec is the inverse of parseMACSpec.
func formatMACSpec(m ethernet.MAC, q core.Qualifier) string {
	switch q {
	case core.QualAny:
		return "any"
	case core.QualNot:
		return "not-" + m.String()
	default:
		return m.String()
	}
}

// parseDestType maps "interface"/"link" to a core.DestType.
func parseDestType(s string) (core.DestType, error) {
	switch strings.ToLower(s) {
	case "interface":
		return core.DestInterface, nil
	case "link":
		return core.DestLink, nil
	}
	return 0, fmt.Errorf("%w: bad destination type %q", ErrSyntax, s)
}

// Parse parses one command line. The grammar:
//
//	ADD LINK <id> REMOTE <host:port> [UDP|TCP] [TENANT <id>]
//	DEL LINK <id>
//	ADD ROUTE <dst-spec> <src-spec> {interface|link} <dest-id> [BACKUP {interface|link} <dest-id>] [TENANT <id>]
//	DEL ROUTE <dst-spec> <src-spec> {interface|link} <dest-id> [BACKUP {interface|link} <dest-id>] [TENANT <id>]
//	ADD TENANT <id> KEY <hex>
//	LIST {ROUTES|LINKS|INTERFACES|STATS|HEALTH|TUNING|TENANTS|FLOWS}
//	LINK STATUS <id>
//	LINK PROBE <interval-ms> <fail-threshold> <recover-threshold>
//	LINK TUNE <id> {LATENCY|THROUGHPUT|AUTO}
//	TRACE START [SAMPLE <n> | FLOW <mac>]
//	TRACE STOP
//	TRACE DUMP
//
// where a spec is "any", "not-<mac>", or "<mac>". BACKUP names the
// failover destination used while the primary is marked down by the
// link health monitor. LINK PROBE takes 0 for any value to keep its
// current setting. LINK TUNE pins a link's dispatch mode (LATENCY or
// THROUGHPUT) or returns it to the adaptive rate controller (AUTO);
// LIST TUNING reports every link's effective dispatch tunables.
// TRACE START with no argument samples every frame
// (SAMPLE 1); SAMPLE <n> samples 1 in n; FLOW <mac> traces every frame
// to or from the MAC regardless of the sampler.
//
// ADD TENANT installs (or rotates) a tenant's 64-hex-digit AEAD key; a
// trailing TENANT <id> clause on ADD LINK binds the link to a tenant
// (its traffic is sealed under the tenant's key), and on ADD/DEL ROUTE
// scopes the route to the tenant's private routing table. Tenant 0 is
// the plaintext default and cannot carry a key.
func Parse(line string) (*Command, error) {
	fields := strings.Fields(strings.TrimSpace(line))
	if len(fields) == 0 || strings.HasPrefix(fields[0], "#") {
		return nil, ErrEmpty
	}
	verb := strings.ToUpper(fields[0])
	switch verb {
	case "LIST":
		if len(fields) != 2 {
			return nil, fmt.Errorf("%w: LIST needs one of ROUTES|LINKS|INTERFACES|STATS|HEALTH|TUNING|TENANTS|FLOWS", ErrSyntax)
		}
		kind := strings.ToUpper(fields[1])
		switch kind {
		case "ROUTES", "LINKS", "INTERFACES", "STATS", "HEALTH", "TUNING", "TENANTS", "FLOWS":
			return &Command{Verb: verb, Kind: kind}, nil
		}
		return nil, fmt.Errorf("%w: unknown LIST target %q", ErrSyntax, fields[1])
	case "LINK":
		if len(fields) < 2 {
			return nil, fmt.Errorf("%w: LINK needs STATUS, PROBE, or TUNE", ErrSyntax)
		}
		switch kind := strings.ToUpper(fields[1]); kind {
		case "STATUS":
			if len(fields) != 3 {
				return nil, fmt.Errorf("%w: LINK STATUS needs a link id", ErrSyntax)
			}
			return &Command{Verb: verb, Kind: kind, LinkID: fields[2]}, nil
		case "PROBE":
			if len(fields) != 5 {
				return nil, fmt.Errorf("%w: LINK PROBE needs interval-ms fail recover", ErrSyntax)
			}
			ms, err := strconv.Atoi(fields[2])
			if err != nil || ms < 0 {
				return nil, fmt.Errorf("%w: bad probe interval %q", ErrSyntax, fields[2])
			}
			failN, err := strconv.Atoi(fields[3])
			if err != nil || failN < 0 {
				return nil, fmt.Errorf("%w: bad fail threshold %q", ErrSyntax, fields[3])
			}
			recoverN, err := strconv.Atoi(fields[4])
			if err != nil || recoverN < 0 {
				return nil, fmt.Errorf("%w: bad recover threshold %q", ErrSyntax, fields[4])
			}
			return &Command{
				Verb: verb, Kind: kind,
				Interval: time.Duration(ms) * time.Millisecond,
				FailN:    failN, RecoverN: recoverN,
			}, nil
		case "TUNE":
			if len(fields) != 4 {
				return nil, fmt.Errorf("%w: LINK TUNE needs a link id and LATENCY|THROUGHPUT|AUTO", ErrSyntax)
			}
			mode := strings.ToLower(fields[3])
			switch mode {
			case "latency", "throughput", "auto":
			default:
				return nil, fmt.Errorf("%w: bad tune mode %q (want LATENCY, THROUGHPUT, or AUTO)", ErrSyntax, fields[3])
			}
			return &Command{Verb: verb, Kind: kind, LinkID: fields[2], Tune: mode}, nil
		}
		return nil, fmt.Errorf("%w: unknown LINK subcommand %q", ErrSyntax, fields[1])
	case "TRACE":
		if len(fields) < 2 {
			return nil, fmt.Errorf("%w: TRACE needs START, STOP, or DUMP", ErrSyntax)
		}
		switch kind := strings.ToUpper(fields[1]); kind {
		case "STOP", "DUMP":
			if len(fields) != 2 {
				return nil, fmt.Errorf("%w: TRACE %s takes no arguments", ErrSyntax, kind)
			}
			return &Command{Verb: verb, Kind: kind}, nil
		case "START":
			cmd := &Command{Verb: verb, Kind: kind}
			switch {
			case len(fields) == 2:
				cmd.SampleN = 1 // bare START: trace every frame
				return cmd, nil
			case len(fields) == 4 && strings.EqualFold(fields[2], "SAMPLE"):
				n, err := strconv.ParseUint(fields[3], 10, 64)
				if err != nil || n == 0 {
					return nil, fmt.Errorf("%w: bad sample rate %q", ErrSyntax, fields[3])
				}
				cmd.SampleN = n
				return cmd, nil
			case len(fields) == 4 && strings.EqualFold(fields[2], "FLOW"):
				m, err := ethernet.ParseMAC(fields[3])
				if err != nil {
					return nil, fmt.Errorf("%w: bad flow MAC %q", ErrSyntax, fields[3])
				}
				cmd.FlowMAC = m
				cmd.HasFlow = true
				return cmd, nil
			}
			return nil, fmt.Errorf("%w: TRACE START takes SAMPLE <n> or FLOW <mac>", ErrSyntax)
		}
		return nil, fmt.Errorf("%w: unknown TRACE subcommand %q", ErrSyntax, fields[1])
	case "ADD", "DEL":
	default:
		return nil, fmt.Errorf("%w: unknown verb %q", ErrSyntax, fields[0])
	}
	if len(fields) < 2 {
		return nil, ErrSyntax
	}
	kind := strings.ToUpper(fields[1])

	// Peel a trailing "TENANT <id>" clause off ADD LINK and ADD/DEL
	// ROUTE before the kind-specific arity checks.
	var tenant uint32
	if kind == "LINK" || kind == "ROUTE" {
		if n := len(fields); n >= 2 && strings.EqualFold(fields[n-2], "TENANT") {
			id, err := parseTenantID(fields[n-1])
			if err != nil {
				return nil, err
			}
			tenant = id
			fields = fields[:n-2]
		}
	}

	switch kind {
	case "TENANT":
		// ADD TENANT <id> KEY <hex>
		if verb != "ADD" || len(fields) != 5 || !strings.EqualFold(fields[3], "KEY") {
			return nil, fmt.Errorf("%w: TENANT needs ADD TENANT <id> KEY <hex>", ErrSyntax)
		}
		id, err := parseTenantID(fields[2])
		if err != nil {
			return nil, err
		}
		if id == 0 {
			return nil, fmt.Errorf("%w: tenant 0 is the plaintext default and cannot carry a key", ErrSyntax)
		}
		key, err := seal.ParseKey(fields[4])
		if err != nil {
			// seal.ParseKey's errors never echo the key material.
			return nil, fmt.Errorf("%w: %v", ErrSyntax, err)
		}
		return &Command{Verb: verb, Kind: kind, Tenant: id, Key: key}, nil
	case "LINK":
		cmd := &Command{Verb: verb, Kind: kind, Tenant: tenant}
		switch {
		case verb == "DEL" && len(fields) == 3:
			cmd.LinkID = fields[2]
			return cmd, nil
		case verb == "ADD" && (len(fields) == 5 || len(fields) == 6) && strings.EqualFold(fields[3], "REMOTE"):
			cmd.LinkID = fields[2]
			cmd.Remote = fields[4]
			cmd.Proto = "udp"
			if len(fields) == 6 {
				p := strings.ToLower(fields[5])
				if p != "udp" && p != "tcp" {
					return nil, fmt.Errorf("%w: bad protocol %q", ErrSyntax, fields[5])
				}
				cmd.Proto = p
			}
			return cmd, nil
		}
		return nil, fmt.Errorf("%w: bad LINK command", ErrSyntax)
	case "ROUTE":
		if len(fields) != 6 && len(fields) != 9 {
			return nil, fmt.Errorf("%w: ROUTE needs dst src {interface|link} id [BACKUP {interface|link} id]", ErrSyntax)
		}
		dstMAC, dstQ, err := parseMACSpec(fields[2])
		if err != nil {
			return nil, err
		}
		srcMAC, srcQ, err := parseMACSpec(fields[3])
		if err != nil {
			return nil, err
		}
		dt, err := parseDestType(fields[4])
		if err != nil {
			return nil, err
		}
		r := core.Route{
			DstMAC: dstMAC, DstQual: dstQ,
			SrcMAC: srcMAC, SrcQual: srcQ,
			Dest:   core.Destination{Type: dt, ID: fields[5]},
			Tenant: tenant,
		}
		if len(fields) == 9 {
			if !strings.EqualFold(fields[6], "BACKUP") {
				return nil, fmt.Errorf("%w: expected BACKUP, got %q", ErrSyntax, fields[6])
			}
			bt, err := parseDestType(fields[7])
			if err != nil {
				return nil, err
			}
			r.Backup = core.Destination{Type: bt, ID: fields[8]}
			r.HasBackup = true
		}
		return &Command{Verb: verb, Kind: kind, Route: r, Tenant: tenant}, nil
	}
	return nil, fmt.Errorf("%w: unknown object %q", ErrSyntax, fields[1])
}

// parseTenantID parses a decimal tenant ID.
func parseTenantID(s string) (uint32, error) {
	id, err := strconv.ParseUint(s, 10, 32)
	if err != nil {
		return 0, fmt.Errorf("%w: bad tenant id %q", ErrSyntax, s)
	}
	return uint32(id), nil
}

// FormatRoute renders a route in the language's ROUTE argument form
// (round-trippable through Parse, including the BACKUP clause).
func FormatRoute(r core.Route) string {
	s := fmt.Sprintf("%s %s %s %s",
		formatMACSpec(r.DstMAC, r.DstQual),
		formatMACSpec(r.SrcMAC, r.SrcQual),
		strings.ToLower(r.Dest.Type.String()),
		r.Dest.ID)
	if r.HasBackup {
		s += fmt.Sprintf(" BACKUP %s %s", strings.ToLower(r.Backup.Type.String()), r.Backup.ID)
	}
	if r.Tenant != 0 {
		s += fmt.Sprintf(" TENANT %d", r.Tenant)
	}
	return s
}

// Apply executes a parsed command against a target, returning the
// response lines (without the OK/ERR status).
func Apply(t Target, cmd *Command) ([]string, error) {
	switch cmd.Verb + " " + cmd.Kind {
	case "ADD LINK":
		if cmd.Tenant != 0 {
			if tt, ok := t.(TenantTarget); ok {
				return nil, tt.AddLinkTenant(cmd.LinkID, cmd.Remote, cmd.Proto, cmd.Tenant)
			}
			return nil, fmt.Errorf("control: target does not support tenants")
		}
		return nil, t.AddLink(cmd.LinkID, cmd.Remote, cmd.Proto)
	case "ADD TENANT":
		if tt, ok := t.(TenantTarget); ok {
			return nil, tt.AddTenant(cmd.Tenant, cmd.Key)
		}
		return nil, fmt.Errorf("control: target does not support tenants")
	case "LIST TENANTS":
		if tt, ok := t.(TenantTarget); ok {
			return tt.TenantSummary(), nil
		}
		return nil, fmt.Errorf("control: target does not support tenants")
	case "DEL LINK":
		return nil, t.DelLink(cmd.LinkID)
	case "ADD ROUTE":
		return nil, t.AddRoute(cmd.Route)
	case "DEL ROUTE":
		return nil, t.DelRoute(cmd.Route)
	case "LIST ROUTES":
		var out []string
		for _, r := range t.Routes() {
			out = append(out, FormatRoute(r))
		}
		return out, nil
	case "LIST LINKS":
		return t.Links(), nil
	case "LIST INTERFACES":
		return t.Interfaces(), nil
	case "LIST STATS":
		if sp, ok := t.(StatsProvider); ok {
			return sp.Stats(), nil
		}
		return nil, fmt.Errorf("control: target does not export statistics")
	case "LIST FLOWS":
		if fp, ok := t.(FlowsProvider); ok {
			return fp.TopFlowSummary(), nil
		}
		return nil, fmt.Errorf("control: target does not track flows")
	case "LIST HEALTH":
		if ht, ok := t.(HealthTarget); ok {
			return ht.HealthSummary(), nil
		}
		return nil, fmt.Errorf("control: target does not monitor link health")
	case "LINK STATUS":
		if ht, ok := t.(HealthTarget); ok {
			return ht.LinkStatus(cmd.LinkID)
		}
		return nil, fmt.Errorf("control: target does not monitor link health")
	case "LINK PROBE":
		if ht, ok := t.(HealthTarget); ok {
			return nil, ht.SetProbeConfig(cmd.Interval, cmd.FailN, cmd.RecoverN)
		}
		return nil, fmt.Errorf("control: target does not monitor link health")
	case "LIST TUNING":
		if tt, ok := t.(TuneTarget); ok {
			return tt.TuningSummary(), nil
		}
		return nil, fmt.Errorf("control: target does not support dispatch tuning")
	case "LINK TUNE":
		if tt, ok := t.(TuneTarget); ok {
			return nil, tt.SetLinkTune(cmd.LinkID, cmd.Tune)
		}
		return nil, fmt.Errorf("control: target does not support dispatch tuning")
	case "TRACE START":
		if tt, ok := t.(TraceTarget); ok {
			return nil, tt.TraceStart(cmd.SampleN, cmd.FlowMAC, cmd.HasFlow)
		}
		return nil, fmt.Errorf("control: target does not support tracing")
	case "TRACE STOP":
		if tt, ok := t.(TraceTarget); ok {
			return nil, tt.TraceStop()
		}
		return nil, fmt.Errorf("control: target does not support tracing")
	case "TRACE DUMP":
		if tt, ok := t.(TraceTarget); ok {
			return tt.TraceDump(), nil
		}
		return nil, fmt.Errorf("control: target does not support tracing")
	}
	return nil, fmt.Errorf("control: unsupported command %s %s", cmd.Verb, cmd.Kind)
}

// RunScript applies a newline-separated batch of commands (e.g. a config
// file), ignoring blank lines and comments.
func RunScript(t Target, r io.Reader) error {
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		cmd, err := Parse(sc.Text())
		if errors.Is(err, ErrEmpty) {
			continue
		}
		if err != nil {
			return fmt.Errorf("line %d: %w", lineNo, err)
		}
		if _, err := Apply(t, cmd); err != nil {
			return fmt.Errorf("line %d: %w", lineNo, err)
		}
	}
	return sc.Err()
}

// DaemonConfig bounds the control console's exposure to slow, idle, or
// hostile clients. The console sits on a TCP port next to the datapath;
// an unbounded accept loop or an unbounded line buffer would let one
// misbehaving client pin memory or file descriptors on a node that is
// otherwise healthy. Zero values take the defaults.
type DaemonConfig struct {
	// ReadTimeout is how long the daemon waits for the next command on
	// an established connection before hanging it up (idle cull).
	// Default 2m.
	ReadTimeout time.Duration
	// WriteTimeout bounds flushing one response. Default 10s.
	WriteTimeout time.Duration
	// MaxConns caps concurrently served connections; excess connections
	// get "ERR control: too many connections" and are closed. Default 32.
	MaxConns int
	// MaxLine is the longest accepted command line in bytes; longer
	// lines get "ERR control: line too long" and the connection is
	// closed (a protocol violation, not a retryable error). Default 4096.
	MaxLine int

	// TLS, when non-nil, wraps the console in mutual TLS (see
	// internal/seal/pki.ServerConfig): every client must present a
	// certificate from the configured CA, and plaintext clients are
	// refused at the handshake — no control-language byte is ever parsed
	// off an unauthenticated connection.
	TLS *tls.Config
}

func (c *DaemonConfig) normalize() {
	if c.ReadTimeout <= 0 {
		c.ReadTimeout = 2 * time.Minute
	}
	if c.WriteTimeout <= 0 {
		c.WriteTimeout = 10 * time.Second
	}
	if c.MaxConns <= 0 {
		c.MaxConns = 32
	}
	if c.MaxLine <= 0 {
		c.MaxLine = 4096
	}
}

// Daemon is the TCP control console: one command per line, responses are
// zero or more payload lines followed by "OK" or "ERR <message>".
type Daemon struct {
	target Target
	ln     net.Listener
	cfg    DaemonConfig
	mu     sync.Mutex
	wg     sync.WaitGroup
	closed bool
	conns  map[net.Conn]struct{}
}

// NewDaemon starts a control daemon listening on addr (e.g.
// "127.0.0.1:0") with the default hardening bounds.
func NewDaemon(target Target, addr string) (*Daemon, error) {
	return NewDaemonWithConfig(target, addr, DaemonConfig{})
}

// NewDaemonWithConfig starts a control daemon with explicit bounds.
func NewDaemonWithConfig(target Target, addr string, cfg DaemonConfig) (*Daemon, error) {
	cfg.normalize()
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	if cfg.TLS != nil {
		ln = tls.NewListener(ln, cfg.TLS)
	}
	d := &Daemon{target: target, ln: ln, cfg: cfg, conns: make(map[net.Conn]struct{})}
	d.wg.Add(1)
	go d.acceptLoop()
	return d, nil
}

// Addr reports the daemon's listen address.
func (d *Daemon) Addr() string { return d.ln.Addr().String() }

// Close stops the daemon and waits for its goroutines. Live client
// connections are hung up immediately — shutdown must not wait out an
// idle client's read deadline.
func (d *Daemon) Close() error {
	d.mu.Lock()
	d.closed = true
	for c := range d.conns {
		c.Close()
	}
	d.mu.Unlock()
	err := d.ln.Close()
	d.wg.Wait()
	return err
}

func (d *Daemon) acceptLoop() {
	defer d.wg.Done()
	for {
		conn, err := d.ln.Accept()
		if err != nil {
			return
		}
		d.mu.Lock()
		if d.closed {
			d.mu.Unlock()
			conn.Close()
			return
		}
		if len(d.conns) >= d.cfg.MaxConns {
			d.mu.Unlock()
			// Reject over-cap connections with a parseable error so a
			// well-behaved client can distinguish "console full" from a
			// network failure, without tying up a serve goroutine.
			conn.SetWriteDeadline(time.Now().Add(d.cfg.WriteTimeout))
			fmt.Fprintln(conn, "ERR control: too many connections")
			conn.Close()
			continue
		}
		d.conns[conn] = struct{}{}
		d.mu.Unlock()
		d.wg.Add(1)
		go func() {
			defer d.wg.Done()
			defer conn.Close()
			defer func() {
				d.mu.Lock()
				delete(d.conns, conn)
				d.mu.Unlock()
			}()
			d.serve(conn)
		}()
	}
}

func (d *Daemon) serve(conn net.Conn) {
	sc := bufio.NewScanner(conn)
	// nil initial buffer: the scanner grows toward MaxLine but never past
	// it (a non-nil buf's capacity would override a smaller MaxLine).
	sc.Buffer(nil, d.cfg.MaxLine)
	w := bufio.NewWriter(conn)
	for {
		// Per-command idle deadline: a client that connects and goes
		// silent is hung up rather than holding a console slot forever.
		conn.SetReadDeadline(time.Now().Add(d.cfg.ReadTimeout))
		if !sc.Scan() {
			if errors.Is(sc.Err(), bufio.ErrTooLong) {
				// Oversized line: a protocol violation. Report and close —
				// the scanner has lost framing, so the connection cannot
				// be resynchronized.
				conn.SetWriteDeadline(time.Now().Add(d.cfg.WriteTimeout))
				fmt.Fprintln(conn, "ERR control: line too long")
			}
			return
		}
		line := sc.Text()
		cmd, err := Parse(line)
		if errors.Is(err, ErrEmpty) {
			continue
		}
		var payload []string
		if err == nil {
			d.mu.Lock()
			payload, err = Apply(d.target, cmd)
			d.mu.Unlock()
		}
		conn.SetWriteDeadline(time.Now().Add(d.cfg.WriteTimeout))
		for _, l := range payload {
			fmt.Fprintln(w, l)
		}
		if err != nil {
			fmt.Fprintf(w, "ERR %v\n", err)
		} else {
			fmt.Fprintln(w, "OK")
		}
		if w.Flush() != nil {
			return
		}
	}
}
