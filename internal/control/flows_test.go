package control

import (
	"strings"
	"testing"
)

// fakeFlowsTarget layers FlowsProvider over fakeTarget.
type fakeFlowsTarget struct {
	*fakeTarget
	lines []string
}

func (f *fakeFlowsTarget) TopFlowSummary() []string { return f.lines }

func TestParseListFlows(t *testing.T) {
	for _, line := range []string{"LIST FLOWS", "list flows"} {
		cmd, err := Parse(line)
		if err != nil {
			t.Fatalf("Parse(%q): %v", line, err)
		}
		if cmd.Verb != "LIST" || cmd.Kind != "FLOWS" {
			t.Fatalf("Parse(%q) = %+v", line, cmd)
		}
	}
	if _, err := Parse("LIST FLOWS extra"); err == nil {
		t.Fatal("LIST FLOWS with trailing junk accepted")
	}
}

func TestApplyListFlows(t *testing.T) {
	f := &fakeFlowsTarget{
		fakeTarget: newFake(),
		lines: []string{
			"flows 1",
			"flow tenant=7 src=02:00:00:00:00:01 dst=02:00:00:00:00:02 bytes=10 packets=1",
		},
	}
	cmd, err := Parse("LIST FLOWS")
	if err != nil {
		t.Fatal(err)
	}
	out, err := Apply(f, cmd)
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	if len(out) != 2 || out[0] != "flows 1" || !strings.Contains(out[1], "tenant=7") {
		t.Fatalf("Apply output = %q", out)
	}
	// A target without the extension fails closed with a typed message.
	if _, err := Apply(newFake(), cmd); err == nil || !strings.Contains(err.Error(), "track flows") {
		t.Fatalf("bare target error = %v", err)
	}
}
