package control

import (
	"errors"
	"strings"
	"testing"
)

// tuneFake extends the package's fakeTarget with the TuneTarget
// surface, recording what Apply forwarded.
type tuneFake struct {
	*fakeTarget
	tuned map[string]string
}

func newTuneFake() *tuneFake {
	return &tuneFake{fakeTarget: newFake(), tuned: map[string]string{}}
}

func (f *tuneFake) SetLinkTune(id, mode string) error {
	f.tuned[id] = mode
	return nil
}

func (f *tuneFake) TuningSummary() []string {
	return []string{"l0 mode=latency source=auto batch=1 flush=25µs switches=2"}
}

// TestParseLinkTune pins the LINK TUNE grammar: id + mode, mode
// case-insensitive and lowercased into Command.Tune.
func TestParseLinkTune(t *testing.T) {
	for _, tc := range []struct {
		line string
		mode string
	}{
		{"LINK TUNE wan throughput", "throughput"},
		{"link tune wan LATENCY", "latency"},
		{"LINK TUNE wan Auto", "auto"},
	} {
		cmd, err := Parse(tc.line)
		if err != nil {
			t.Fatalf("Parse(%q): %v", tc.line, err)
		}
		if cmd.Verb != "LINK" || cmd.Kind != "TUNE" || cmd.LinkID != "wan" || cmd.Tune != tc.mode {
			t.Fatalf("Parse(%q) = %+v, want LINK TUNE wan %s", tc.line, cmd, tc.mode)
		}
	}
	for _, bad := range []string{
		"LINK TUNE",                    // no id, no mode
		"LINK TUNE wan",                // no mode
		"LINK TUNE wan warp",           // unknown mode
		"LINK TUNE wan latency please", // trailing junk
	} {
		if _, err := Parse(bad); !errors.Is(err, ErrSyntax) {
			t.Fatalf("Parse(%q) err = %v, want ErrSyntax", bad, err)
		}
	}
}

// TestParseListTuning pins LIST TUNING as a first-class LIST target.
func TestParseListTuning(t *testing.T) {
	cmd, err := Parse("LIST TUNING")
	if err != nil {
		t.Fatal(err)
	}
	if cmd.Verb != "LIST" || cmd.Kind != "TUNING" {
		t.Fatalf("Parse(LIST TUNING) = %+v", cmd)
	}
}

// TestApplyTuneVerbs drives both verbs through Apply: a TuneTarget gets
// the forwarded call, a bare Target gets a capability error.
func TestApplyTuneVerbs(t *testing.T) {
	f := newTuneFake()
	cmd, _ := Parse("LINK TUNE wan THROUGHPUT")
	if _, err := Apply(f, cmd); err != nil {
		t.Fatalf("Apply(LINK TUNE): %v", err)
	}
	if f.tuned["wan"] != "throughput" {
		t.Fatalf("tuned = %v, want wan→throughput", f.tuned)
	}
	cmd, _ = Parse("LIST TUNING")
	out, err := Apply(f, cmd)
	if err != nil || len(out) != 1 || !strings.Contains(out[0], "mode=latency") {
		t.Fatalf("Apply(LIST TUNING) = (%q, %v)", out, err)
	}

	bare := newFake()
	cmd, _ = Parse("LINK TUNE wan AUTO")
	if _, err := Apply(bare, cmd); err == nil {
		t.Fatal("LINK TUNE against a non-TuneTarget succeeded")
	}
	cmd, _ = Parse("LIST TUNING")
	if _, err := Apply(bare, cmd); err == nil {
		t.Fatal("LIST TUNING against a non-TuneTarget succeeded")
	}
}

// TestLinkTuneIdempotent pins that the client will retry LINK TUNE and
// LIST TUNING after ambiguous transport failures: both converge when
// replayed.
func TestLinkTuneIdempotent(t *testing.T) {
	for _, line := range []string{"LINK TUNE wan THROUGHPUT", "LIST TUNING"} {
		if !Idempotent(line) {
			t.Errorf("Idempotent(%q) = false, want true", line)
		}
	}
}
