package control

import (
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"vnetp/internal/seal"
	"vnetp/internal/seal/pki"
)

// fakeTenantTarget layers TenantTarget over fakeTarget.
type fakeTenantTarget struct {
	*fakeTarget
	keys        map[uint32]string // id -> fingerprint
	tenantLinks map[string]uint32
}

func newTenantFake() *fakeTenantTarget {
	return &fakeTenantTarget{
		fakeTarget:  newFake(),
		keys:        map[uint32]string{},
		tenantLinks: map[string]uint32{},
	}
}

func (f *fakeTenantTarget) AddTenant(id uint32, key []byte) error {
	if id == 0 {
		return errors.New("tenant 0 reserved")
	}
	f.keys[id] = seal.Fingerprint(key)
	return nil
}

func (f *fakeTenantTarget) TenantSummary() []string {
	var out []string
	for id, fp := range f.keys {
		out = append(out, fmt.Sprintf("tenant %d key %s", id, fp))
	}
	return out
}

func (f *fakeTenantTarget) AddLinkTenant(id, remote, proto string, tenant uint32) error {
	if _, ok := f.keys[tenant]; !ok {
		return errors.New("unknown tenant")
	}
	f.tenantLinks[id] = tenant
	return f.AddLink(id, remote, proto)
}

func testKeyHex() string { return strings.Repeat("ab", seal.KeyLen) }

func TestParseAddTenant(t *testing.T) {
	cmd, err := Parse("ADD TENANT 7 KEY " + testKeyHex())
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if cmd.Verb != "ADD" || cmd.Kind != "TENANT" || cmd.Tenant != 7 || len(cmd.Key) != seal.KeyLen {
		t.Fatalf("parsed %+v", cmd)
	}

	for _, bad := range []string{
		"ADD TENANT KEY " + testKeyHex(),   // missing id
		"ADD TENANT 0 KEY " + testKeyHex(), // tenant 0 reserved
		"ADD TENANT 7 KEY",                 // missing key
		"ADD TENANT 7 KEY deadbeef",        // short key
		"ADD TENANT x KEY " + testKeyHex(), // bad id
		"DEL TENANT 7",                     // no DEL form
	} {
		if _, err := Parse(bad); err == nil {
			t.Fatalf("Parse(%q) accepted", bad)
		}
	}

	// Key-hygiene: a bad key's parse error must not echo the material.
	badKey := strings.Repeat("cd", seal.KeyLen-1)
	_, err = Parse("ADD TENANT 7 KEY " + badKey)
	if err == nil {
		t.Fatal("short key accepted")
	}
	if strings.Contains(err.Error(), badKey) {
		t.Fatalf("parse error echoes key material: %v", err)
	}
}

func TestParseTenantClauses(t *testing.T) {
	cmd, err := Parse("ADD LINK l1 REMOTE host:1 UDP TENANT 3")
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if cmd.Kind != "LINK" || cmd.Tenant != 3 || cmd.LinkID != "l1" || cmd.Proto != "udp" {
		t.Fatalf("parsed %+v", cmd)
	}
	// Without explicit proto the clause still peels.
	cmd, err = Parse("ADD LINK l2 REMOTE host:1 TENANT 4")
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if cmd.Tenant != 4 || cmd.Proto != "udp" {
		t.Fatalf("parsed %+v", cmd)
	}

	cmd, err = Parse("ADD ROUTE any any link l1 TENANT 3")
	if err != nil {
		t.Fatalf("Parse route: %v", err)
	}
	if cmd.Route.Tenant != 3 || cmd.Tenant != 3 {
		t.Fatalf("route tenant not set: %+v", cmd)
	}
	cmd, err = Parse("DEL ROUTE any any link l1 BACKUP link l2 TENANT 3")
	if err != nil {
		t.Fatalf("Parse route backup tenant: %v", err)
	}
	if cmd.Route.Tenant != 3 || !cmd.Route.HasBackup {
		t.Fatalf("parsed %+v", cmd.Route)
	}
	// No clause: tenant 0.
	cmd, _ = Parse("ADD ROUTE any any link l1")
	if cmd.Route.Tenant != 0 {
		t.Fatalf("implicit tenant: %+v", cmd.Route)
	}
}

func TestFormatRouteTenantRoundTrip(t *testing.T) {
	cmd, err := Parse("ADD ROUTE 02:00:00:00:00:01 any link l1 BACKUP link l2 TENANT 9")
	if err != nil {
		t.Fatal(err)
	}
	line := "ADD ROUTE " + FormatRoute(cmd.Route)
	again, err := Parse(line)
	if err != nil {
		t.Fatalf("re-parse %q: %v", line, err)
	}
	if again.Route != cmd.Route {
		t.Fatalf("round trip: %+v != %+v", again.Route, cmd.Route)
	}
}

func TestApplyTenantVerbs(t *testing.T) {
	f := newTenantFake()
	if _, err := Apply(f, mustParse(t, "ADD TENANT 7 KEY "+testKeyHex())); err != nil {
		t.Fatalf("ADD TENANT: %v", err)
	}
	out, err := Apply(f, mustParse(t, "LIST TENANTS"))
	if err != nil || len(out) != 1 {
		t.Fatalf("LIST TENANTS: %v %v", out, err)
	}
	// Fingerprints only — never 64 hex chars of key.
	if strings.Contains(out[0], testKeyHex()) {
		t.Fatalf("LIST TENANTS leaked key material: %q", out[0])
	}
	if _, err := Apply(f, mustParse(t, "ADD LINK l1 REMOTE h:1 UDP TENANT 7")); err != nil {
		t.Fatalf("ADD LINK TENANT: %v", err)
	}
	if f.tenantLinks["l1"] != 7 {
		t.Fatalf("link not tenant-bound: %v", f.tenantLinks)
	}
	// Unknown tenant fails closed.
	if _, err := Apply(f, mustParse(t, "ADD LINK l2 REMOTE h:1 UDP TENANT 8")); err == nil {
		t.Fatal("link to unknown tenant accepted")
	}
	// A plain target (no TenantTarget) refuses tenant verbs.
	plain := newFake()
	if _, err := Apply(plain, mustParse(t, "ADD TENANT 7 KEY "+testKeyHex())); err == nil {
		t.Fatal("plain target accepted ADD TENANT")
	}
	if _, err := Apply(plain, mustParse(t, "ADD LINK l1 REMOTE h:1 UDP TENANT 7")); err == nil {
		t.Fatal("plain target accepted tenant-bound link")
	}
	// Tenant 0 ADD LINK still goes through the plain path.
	if _, err := Apply(plain, mustParse(t, "ADD LINK l1 REMOTE h:1 UDP")); err != nil {
		t.Fatalf("plain ADD LINK: %v", err)
	}
}

func mustParse(t *testing.T, line string) *Command {
	t.Helper()
	cmd, err := Parse(line)
	if err != nil {
		t.Fatalf("Parse(%q): %v", line, err)
	}
	return cmd
}

func TestDaemonMutualTLS(t *testing.T) {
	ca, err := pki.NewCA("vnetp-test")
	if err != nil {
		t.Fatal(err)
	}
	srvCert, srvKey, _ := ca.IssueHost("node", []string{"127.0.0.1"})
	cliCert, cliKey, _ := ca.IssueHost("operator", nil)
	srvTLS, err := pki.ServerConfig(srvCert, srvKey, ca.CertPEM)
	if err != nil {
		t.Fatal(err)
	}
	cliTLS, err := pki.ClientConfig(cliCert, cliKey, ca.CertPEM, "node")
	if err != nil {
		t.Fatal(err)
	}

	f := newTenantFake()
	d, err := NewDaemonWithConfig(f, "127.0.0.1:0", DaemonConfig{TLS: srvTLS})
	if err != nil {
		t.Fatalf("daemon: %v", err)
	}
	defer d.Close()

	// An mTLS client works end to end, tenant verbs included.
	cli := NewClient(d.Addr(), ClientConfig{TLS: cliTLS, Retries: -1})
	if _, err := cli.Do("ADD TENANT 5 KEY " + testKeyHex()); err != nil {
		t.Fatalf("mTLS ADD TENANT: %v", err)
	}
	out, err := cli.Do("LIST TENANTS")
	if err != nil || len(out) != 1 {
		t.Fatalf("mTLS LIST TENANTS: %v %v", out, err)
	}

	// A plaintext client is refused: no OK/ERR ever arrives.
	plain := NewClient(d.Addr(), ClientConfig{
		Retries: -1, ConnectTimeout: time.Second, RequestTimeout: time.Second,
	})
	if _, err := plain.Do("LIST TENANTS"); err == nil {
		t.Fatal("plaintext client completed against mTLS daemon")
	}
	// And the daemon never executed anything for it.
	if len(f.keys) != 1 {
		t.Fatalf("daemon state mutated by refused client: %v", f.keys)
	}
}
