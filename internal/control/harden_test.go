package control

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// dialConsole connects and returns a reader for responses.
func dialConsole(t *testing.T, addr string) (net.Conn, *bufio.Reader) {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	return conn, bufio.NewReader(conn)
}

func TestDaemonRejectsOversizedLine(t *testing.T) {
	d, err := NewDaemonWithConfig(newFake(), "127.0.0.1:0", DaemonConfig{MaxLine: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	conn, rd := dialConsole(t, d.Addr())
	fmt.Fprintln(conn, "LIST "+strings.Repeat("X", 200))
	resp, err := rd.ReadString('\n')
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if !strings.Contains(resp, "line too long") {
		t.Fatalf("resp = %q, want line-too-long error", resp)
	}
	// Protocol violation: the daemon must hang up, not resynchronize.
	// (EOF or RST, depending on how much of our line it had consumed.)
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := rd.ReadString('\n'); err == nil {
		t.Fatal("after violation: connection stayed open")
	}
}

func TestDaemonIdleConnectionCulled(t *testing.T) {
	d, err := NewDaemonWithConfig(newFake(), "127.0.0.1:0", DaemonConfig{ReadTimeout: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	conn, rd := dialConsole(t, d.Addr())
	// Say nothing; the idle deadline must hang us up.
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := rd.ReadString('\n'); err != io.EOF {
		t.Fatalf("idle cull: err = %v, want EOF", err)
	}
	// An active connection survives well past the idle timeout because
	// the deadline re-arms per command.
	conn2, rd2 := dialConsole(t, d.Addr())
	for i := 0; i < 4; i++ {
		time.Sleep(30 * time.Millisecond)
		fmt.Fprintln(conn2, "LIST LINKS")
		if resp, err := rd2.ReadString('\n'); err != nil || strings.TrimSpace(resp) != "OK" {
			t.Fatalf("round %d: resp=%q err=%v", i, resp, err)
		}
	}
}

func TestDaemonConnectionCap(t *testing.T) {
	d, err := NewDaemonWithConfig(newFake(), "127.0.0.1:0", DaemonConfig{MaxConns: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	// Two connections take the slots; a command round trip on each
	// guarantees its serve goroutine is counted before the third dial.
	for i := 0; i < 2; i++ {
		conn, rd := dialConsole(t, d.Addr())
		fmt.Fprintln(conn, "LIST LINKS")
		if resp, err := rd.ReadString('\n'); err != nil || strings.TrimSpace(resp) != "OK" {
			t.Fatalf("slot %d: resp=%q err=%v", i, resp, err)
		}
	}
	_, rd := dialConsole(t, d.Addr())
	resp, err := rd.ReadString('\n')
	if err != nil {
		t.Fatalf("over-cap read: %v", err)
	}
	if !strings.Contains(resp, "too many connections") {
		t.Fatalf("over-cap resp = %q", resp)
	}
	if _, err := rd.ReadString('\n'); err != io.EOF {
		t.Fatalf("over-cap conn stayed open: %v", err)
	}
}

func TestClientAgainstDaemon(t *testing.T) {
	f := newFake()
	d, err := NewDaemon(f, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	c := NewClient(d.Addr(), ClientConfig{})
	if _, err := c.Do("ADD LINK to-b REMOTE 127.0.0.1:9999"); err != nil {
		t.Fatalf("ADD LINK: %v", err)
	}
	payload, err := c.Do("LIST LINKS")
	if err != nil || len(payload) != 1 || payload[0] != "to-b" {
		t.Fatalf("LIST LINKS: payload=%v err=%v", payload, err)
	}
	// Semantic refusal comes back typed, never as a transport error.
	_, err = c.Do("DEL LINK nothere")
	se, ok := err.(*ServerError)
	if !ok || !strings.Contains(se.Msg, "no link") {
		t.Fatalf("DEL missing link: err = %v (%T)", err, err)
	}
}

// flakyListener closes the first failN accepted connections immediately,
// then serves a minimal OK-to-everything console.
func flakyConsole(t *testing.T, failN int) (addr string, accepts *atomic.Int32) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	accepts = new(atomic.Int32)
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			n := accepts.Add(1)
			if int(n) <= failN {
				conn.Close()
				continue
			}
			go func() {
				defer conn.Close()
				sc := bufio.NewScanner(conn)
				for sc.Scan() {
					fmt.Fprintln(conn, "OK")
				}
			}()
		}
	}()
	return ln.Addr().String(), accepts
}

func TestClientRetriesIdempotentOnly(t *testing.T) {
	addr, accepts := flakyConsole(t, 1)
	c := NewClient(addr, ClientConfig{Retries: 2, RetryBackoff: 5 * time.Millisecond})
	if _, err := c.Do("LIST LINKS"); err != nil {
		t.Fatalf("idempotent retry failed: %v", err)
	}
	if got := accepts.Load(); got != 2 {
		t.Fatalf("accepts = %d, want 2 (one failure + one retry)", got)
	}

	addr2, accepts2 := flakyConsole(t, 1)
	c2 := NewClient(addr2, ClientConfig{Retries: 2, RetryBackoff: 5 * time.Millisecond})
	if _, err := c2.Do("DEL LINK x"); err == nil {
		t.Fatal("non-idempotent command retried to success; want single-attempt failure")
	}
	if got := accepts2.Load(); got != 1 {
		t.Fatalf("accepts = %d, want 1 (DEL must not be replayed)", got)
	}
}

func TestClientRequestTimeout(t *testing.T) {
	// A console that accepts and goes mute must not hang the client.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			defer conn.Close()
			io.Copy(io.Discard, conn) // read forever, answer never
		}
	}()
	c := NewClient(ln.Addr().String(), ClientConfig{RequestTimeout: 50 * time.Millisecond, Retries: -1})
	start := time.Now()
	if _, err := c.Do("LIST LINKS"); err == nil {
		t.Fatal("mute console: want timeout error")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("timeout took %v", elapsed)
	}
}

func TestIdempotentClassification(t *testing.T) {
	yes := []string{
		"LIST LINKS", "list routes", "LINK STATUS x", "LINK PROBE 0 0 0",
		"TRACE DUMP", "TRACE START SAMPLE 8", "ADD LINK l1 REMOTE h:1",
	}
	no := []string{
		"DEL LINK l1", "DEL ROUTE any any link l1",
		"ADD ROUTE any any link l1", "", "   ", "BOGUS",
	}
	for _, l := range yes {
		if !Idempotent(l) {
			t.Errorf("Idempotent(%q) = false, want true", l)
		}
	}
	for _, l := range no {
		if Idempotent(l) {
			t.Errorf("Idempotent(%q) = true, want false", l)
		}
	}
}
