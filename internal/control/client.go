// Control-console client with explicit failure behavior: bounded
// connect and request times, and jittered retry for idempotent verbs.
// The console is how operators and scripts reach a node; a client that
// blocks forever on a wedged daemon, or silently re-applies a
// non-idempotent mutation after an ambiguous failure, turns a transient
// network hiccup into an operational incident. vnetctl is built on this.
package control

import (
	"bufio"
	"crypto/tls"
	"fmt"
	"math/rand"
	"net"
	"strings"
	"time"
)

// ClientConfig bounds one client's patience. Zero values take defaults.
type ClientConfig struct {
	// ConnectTimeout bounds dialing the console. Default 2s.
	ConnectTimeout time.Duration
	// RequestTimeout bounds one full command round trip (write through
	// reading the OK/ERR terminator). Default 5s.
	RequestTimeout time.Duration
	// Retries is how many additional attempts are made after a
	// transport failure, for idempotent commands only. Default 2.
	// Negative disables retry entirely.
	Retries int
	// RetryBackoff is the base delay between attempts, jittered over
	// [b/2, 3b/2) so a fleet of scripts retrying the same dead daemon
	// does not reconverge in lockstep. Default 100ms.
	RetryBackoff time.Duration

	// TLS, when non-nil, dials the console over mutual TLS (see
	// internal/seal/pki.ClientConfig). Required to reach an
	// mTLS-enabled daemon: a plaintext client fails its handshake.
	TLS *tls.Config
}

func (c *ClientConfig) normalize() {
	if c.ConnectTimeout <= 0 {
		c.ConnectTimeout = 2 * time.Second
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 5 * time.Second
	}
	if c.Retries == 0 {
		c.Retries = 2
	}
	if c.Retries < 0 {
		c.Retries = 0
	}
	if c.RetryBackoff <= 0 {
		c.RetryBackoff = 100 * time.Millisecond
	}
}

// ServerError is an "ERR <message>" response from the daemon: the
// command reached the console and was refused. Never retried — the
// daemon saw the command, so the failure is semantic, not transport.
type ServerError struct{ Msg string }

func (e *ServerError) Error() string { return e.Msg }

// Client talks to a control console, one connection per request (the
// console protocol is stateless line/response, so connection reuse buys
// little and per-request connections make retry trivially safe).
type Client struct {
	addr string
	cfg  ClientConfig
	rng  *rand.Rand
}

// NewClient returns a client for the console at addr.
func NewClient(addr string, cfg ClientConfig) *Client {
	cfg.normalize()
	return &Client{addr: addr, cfg: cfg, rng: rand.New(rand.NewSource(time.Now().UnixNano()))}
}

// Idempotent reports whether the command line can be safely re-sent
// after an ambiguous transport failure (the daemon may or may not have
// executed it). Reads and at-most-once-converging mutations qualify:
// every LIST/LINK/TRACE verb, and ADD LINK (re-adding a link with the
// same id and remote converges to the same state). DEL and ADD ROUTE do
// not: DEL of an already-deleted object reports a spurious error, and
// routes may legitimately be duplicated, so a replayed ADD ROUTE could
// double-install. Unparseable lines report false — the daemon's parse
// error is deterministic, so retrying buys nothing.
func Idempotent(line string) bool {
	fields := strings.Fields(strings.TrimSpace(line))
	if len(fields) == 0 {
		return false
	}
	switch strings.ToUpper(fields[0]) {
	case "LIST", "LINK", "TRACE":
		return true
	case "ADD":
		// ADD LINK converges (same id/remote → same state) and so does
		// ADD TENANT (installing the same key twice is a no-op rotation).
		return len(fields) >= 2 &&
			(strings.EqualFold(fields[1], "LINK") || strings.EqualFold(fields[1], "TENANT"))
	}
	return false
}

// Do sends one command line and returns the response payload lines
// (without the OK terminator). An ERR response comes back as a
// *ServerError. Transport failures (dial, deadline, broken connection)
// are retried with jittered backoff, but only when Idempotent(line).
func (c *Client) Do(line string) ([]string, error) {
	attempts := 1
	if Idempotent(line) {
		attempts += c.cfg.Retries
	}
	var lastErr error
	for i := 0; i < attempts; i++ {
		if i > 0 {
			time.Sleep(c.jitter(c.cfg.RetryBackoff))
		}
		payload, err := c.once(line)
		if err == nil {
			return payload, nil
		}
		if se, ok := err.(*ServerError); ok {
			return payload, se // semantic refusal: never retry
		}
		lastErr = err
	}
	return nil, lastErr
}

// once runs one request over a fresh connection.
func (c *Client) once(line string) ([]string, error) {
	conn, err := net.DialTimeout("tcp", c.addr, c.cfg.ConnectTimeout)
	if err != nil {
		return nil, err
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(c.cfg.RequestTimeout))
	if c.cfg.TLS != nil {
		tc := tls.Client(conn, c.cfg.TLS)
		if err := tc.Handshake(); err != nil {
			return nil, err
		}
		conn = tc
	}
	if _, err := fmt.Fprintln(conn, line); err != nil {
		return nil, err
	}
	var payload []string
	sc := bufio.NewScanner(conn)
	for sc.Scan() {
		resp := sc.Text()
		switch {
		case resp == "OK":
			return payload, nil
		case strings.HasPrefix(resp, "ERR "):
			return payload, &ServerError{Msg: strings.TrimPrefix(resp, "ERR ")}
		default:
			payload = append(payload, resp)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return nil, fmt.Errorf("control: connection closed before OK/ERR")
}

// jitter spreads d over [d/2, 3d/2).
func (c *Client) jitter(d time.Duration) time.Duration {
	if d <= 0 {
		return 0
	}
	return d/2 + time.Duration(c.rng.Int63n(int64(d)))
}
