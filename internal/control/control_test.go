package control

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"strings"
	"testing"
	"time"

	"vnetp/internal/core"
	"vnetp/internal/ethernet"
)

// fakeTarget records applied configuration.
type fakeTarget struct {
	links  map[string]string
	routes []core.Route
	ifaces []string
	failOn string
}

func newFake() *fakeTarget {
	return &fakeTarget{links: map[string]string{}, ifaces: []string{"nic0"}}
}

func (f *fakeTarget) AddLink(id, remote, proto string) error {
	if f.failOn == "addlink" {
		return errors.New("boom")
	}
	f.links[id] = remote + "/" + proto
	return nil
}
func (f *fakeTarget) DelLink(id string) error {
	if _, ok := f.links[id]; !ok {
		return errors.New("no link")
	}
	delete(f.links, id)
	return nil
}
func (f *fakeTarget) AddRoute(r core.Route) error { f.routes = append(f.routes, r); return nil }
func (f *fakeTarget) DelRoute(r core.Route) error {
	for i, have := range f.routes {
		if have == r {
			f.routes = append(f.routes[:i], f.routes[i+1:]...)
			return nil
		}
	}
	return errors.New("no route")
}
func (f *fakeTarget) Routes() []core.Route { return f.routes }
func (f *fakeTarget) Links() []string {
	var out []string
	for id := range f.links {
		out = append(out, id)
	}
	return out
}
func (f *fakeTarget) Interfaces() []string { return f.ifaces }

func TestParseAddLink(t *testing.T) {
	cmd, err := Parse("ADD LINK to-b REMOTE 10.0.0.2:7777 udp")
	if err != nil {
		t.Fatal(err)
	}
	if cmd.Verb != "ADD" || cmd.Kind != "LINK" || cmd.LinkID != "to-b" ||
		cmd.Remote != "10.0.0.2:7777" || cmd.Proto != "udp" {
		t.Fatalf("cmd = %+v", cmd)
	}
	// Default proto.
	cmd, err = Parse("add link l1 remote host:1")
	if err != nil || cmd.Proto != "udp" {
		t.Fatalf("default proto: %+v %v", cmd, err)
	}
	cmd, _ = Parse("ADD LINK l2 REMOTE h:2 TCP")
	if cmd.Proto != "tcp" {
		t.Fatalf("tcp proto: %+v", cmd)
	}
}

func TestParseRoute(t *testing.T) {
	mac := ethernet.LocalMAC(5)
	cmd, err := Parse(fmt.Sprintf("ADD ROUTE %s any link to-b", mac))
	if err != nil {
		t.Fatal(err)
	}
	r := cmd.Route
	if r.DstMAC != mac || r.DstQual != core.QualExact || r.SrcQual != core.QualAny ||
		r.Dest != (core.Destination{Type: core.DestLink, ID: "to-b"}) {
		t.Fatalf("route = %+v", r)
	}
	cmd, err = Parse(fmt.Sprintf("ADD ROUTE not-%s %s interface nic0", mac, mac))
	if err != nil {
		t.Fatal(err)
	}
	if cmd.Route.DstQual != core.QualNot || cmd.Route.SrcQual != core.QualExact {
		t.Fatalf("quals = %+v", cmd.Route)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"FROB LINK x",
		"ADD LINK",
		"ADD LINK x REMOTE",
		"ADD LINK x REMOTE a:1 SCTP",
		"ADD ROUTE any any nowhere x",
		"ADD ROUTE zz any link x",
		"LIST",
		"LIST NOTHING",
		"ADD WIDGET x",
	}
	for _, line := range bad {
		if _, err := Parse(line); err == nil {
			t.Errorf("Parse(%q) succeeded", line)
		}
	}
	for _, line := range []string{"", "   ", "# comment"} {
		if _, err := Parse(line); !errors.Is(err, ErrEmpty) {
			t.Errorf("Parse(%q) = %v, want ErrEmpty", line, err)
		}
	}
}

func TestFormatRouteRoundTrip(t *testing.T) {
	routes := []core.Route{
		{DstMAC: ethernet.LocalMAC(1), DstQual: core.QualExact, SrcQual: core.QualAny,
			Dest: core.Destination{Type: core.DestLink, ID: "l1"}},
		{DstQual: core.QualAny, SrcMAC: ethernet.LocalMAC(2), SrcQual: core.QualNot,
			Dest: core.Destination{Type: core.DestInterface, ID: "nic0"}},
	}
	for _, r := range routes {
		line := "ADD ROUTE " + FormatRoute(r)
		cmd, err := Parse(line)
		if err != nil {
			t.Fatalf("%q: %v", line, err)
		}
		if cmd.Route != r {
			t.Fatalf("round trip: %+v vs %+v", cmd.Route, r)
		}
	}
}

func TestRunScript(t *testing.T) {
	f := newFake()
	script := `
# build a two-link overlay
ADD LINK to-b REMOTE 127.0.0.1:9001
ADD LINK to-c REMOTE 127.0.0.1:9002 tcp

ADD ROUTE 02:56:00:00:00:02 any link to-b
ADD ROUTE 02:56:00:00:00:03 any link to-c
`
	if err := RunScript(f, strings.NewReader(script)); err != nil {
		t.Fatal(err)
	}
	if len(f.links) != 2 || len(f.routes) != 2 {
		t.Fatalf("links=%v routes=%v", f.links, f.routes)
	}
	// Script with a bad line reports the line number.
	err := RunScript(f, strings.NewReader("ADD LINK ok REMOTE a:1\nGARBAGE\n"))
	if err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("err = %v", err)
	}
}

func TestDaemonEndToEnd(t *testing.T) {
	f := newFake()
	d, err := NewDaemon(f, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	conn, err := net.Dial("tcp", d.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	rd := bufio.NewReader(conn)
	send := func(line string) []string {
		fmt.Fprintln(conn, line)
		var out []string
		for {
			resp, err := rd.ReadString('\n')
			if err != nil {
				t.Fatal(err)
			}
			resp = strings.TrimSpace(resp)
			out = append(out, resp)
			if resp == "OK" || strings.HasPrefix(resp, "ERR") {
				return out
			}
		}
	}

	if got := send("ADD LINK to-b REMOTE 127.0.0.1:9999"); got[len(got)-1] != "OK" {
		t.Fatalf("ADD LINK: %v", got)
	}
	if got := send("ADD ROUTE 02:56:00:00:00:02 any link to-b"); got[len(got)-1] != "OK" {
		t.Fatalf("ADD ROUTE: %v", got)
	}
	got := send("LIST ROUTES")
	if len(got) != 2 || !strings.Contains(got[0], "02:56:00:00:00:02") {
		t.Fatalf("LIST ROUTES: %v", got)
	}
	got = send("LIST LINKS")
	if len(got) != 2 || got[0] != "to-b" {
		t.Fatalf("LIST LINKS: %v", got)
	}
	got = send("LIST INTERFACES")
	if got[0] != "nic0" {
		t.Fatalf("LIST INTERFACES: %v", got)
	}
	if got := send("DEL LINK nothere"); !strings.HasPrefix(got[len(got)-1], "ERR") {
		t.Fatalf("DEL missing link: %v", got)
	}
	if got := send("BOGUS"); !strings.HasPrefix(got[len(got)-1], "ERR") {
		t.Fatalf("bogus command: %v", got)
	}
	if got := send("DEL ROUTE 02:56:00:00:00:02 any link to-b"); got[len(got)-1] != "OK" {
		t.Fatalf("DEL ROUTE: %v", got)
	}
	if len(f.routes) != 0 {
		t.Fatalf("routes remain: %v", f.routes)
	}
	// fakeTarget has no stats: LIST STATS must error, not crash.
	if got := send("LIST STATS"); !strings.HasPrefix(got[len(got)-1], "ERR") {
		t.Fatalf("LIST STATS on statless target: %v", got)
	}
}

// statsTarget adds the optional StatsProvider extension.
type statsTarget struct{ *fakeTarget }

func (statsTarget) Stats() []string { return []string{"frames 42"} }

func TestListStats(t *testing.T) {
	cmd, err := Parse("LIST STATS")
	if err != nil {
		t.Fatal(err)
	}
	out, err := Apply(statsTarget{newFake()}, cmd)
	if err != nil || len(out) != 1 || out[0] != "frames 42" {
		t.Fatalf("stats = %v, %v", out, err)
	}
	if _, err := Apply(newFake(), cmd); err == nil {
		t.Fatal("statless target accepted LIST STATS")
	}
}

func TestParseRouteWithBackup(t *testing.T) {
	mac := ethernet.LocalMAC(5)
	cmd, err := Parse(fmt.Sprintf("ADD ROUTE %s any link primary BACKUP link standby", mac))
	if err != nil {
		t.Fatal(err)
	}
	r := cmd.Route
	if !r.HasBackup || r.Backup != (core.Destination{Type: core.DestLink, ID: "standby"}) {
		t.Fatalf("route = %+v", r)
	}
	if r.Dest.ID != "primary" {
		t.Fatalf("primary dest = %v", r.Dest)
	}
	// Lowercase keyword and interface backup.
	cmd, err = Parse(fmt.Sprintf("DEL ROUTE %s any link l1 backup interface nic1", mac))
	if err != nil {
		t.Fatal(err)
	}
	if cmd.Route.Backup.Type != core.DestInterface || cmd.Route.Backup.ID != "nic1" {
		t.Fatalf("backup = %v", cmd.Route.Backup)
	}
	// Malformed BACKUP clauses.
	for _, line := range []string{
		fmt.Sprintf("ADD ROUTE %s any link l1 BACKUP link", mac),
		fmt.Sprintf("ADD ROUTE %s any link l1 FALLBACK link l2", mac),
		fmt.Sprintf("ADD ROUTE %s any link l1 BACKUP tunnel l2", mac),
	} {
		if _, err := Parse(line); err == nil {
			t.Errorf("Parse(%q) succeeded", line)
		}
	}
}

func TestFormatRouteBackupRoundTrip(t *testing.T) {
	r := core.Route{
		DstMAC: ethernet.LocalMAC(1), DstQual: core.QualExact, SrcQual: core.QualAny,
		Dest:      core.Destination{Type: core.DestLink, ID: "primary"},
		Backup:    core.Destination{Type: core.DestLink, ID: "standby"},
		HasBackup: true,
	}
	cmd, err := Parse("ADD ROUTE " + FormatRoute(r))
	if err != nil {
		t.Fatal(err)
	}
	if cmd.Route != r {
		t.Fatalf("round trip: %+v vs %+v", cmd.Route, r)
	}
}

func TestParseLinkHealthCommands(t *testing.T) {
	cmd, err := Parse("LINK STATUS to-b")
	if err != nil {
		t.Fatal(err)
	}
	if cmd.Verb != "LINK" || cmd.Kind != "STATUS" || cmd.LinkID != "to-b" {
		t.Fatalf("cmd = %+v", cmd)
	}
	cmd, err = Parse("link probe 250 5 3")
	if err != nil {
		t.Fatal(err)
	}
	if cmd.Interval != 250*time.Millisecond || cmd.FailN != 5 || cmd.RecoverN != 3 {
		t.Fatalf("cmd = %+v", cmd)
	}
	cmd, err = Parse("LIST HEALTH")
	if err != nil || cmd.Kind != "HEALTH" {
		t.Fatalf("cmd = %+v, %v", cmd, err)
	}
	for _, line := range []string{
		"LINK",
		"LINK STATUS",
		"LINK STATUS a b",
		"LINK PROBE 100 3",
		"LINK PROBE x 3 2",
		"LINK PROBE 100 -1 2",
		"LINK FROB a",
	} {
		if _, err := Parse(line); err == nil {
			t.Errorf("Parse(%q) succeeded", line)
		}
	}
}

// healthTarget adds the optional HealthTarget extension.
type healthTarget struct {
	*fakeTarget
	probeCalls []string
}

func (h *healthTarget) LinkStatus(id string) ([]string, error) {
	if _, ok := h.links[id]; !ok {
		return nil, fmt.Errorf("no link %q", id)
	}
	return []string{"link " + id, "state up"}, nil
}

func (h *healthTarget) HealthSummary() []string {
	var out []string
	for id := range h.links {
		out = append(out, id+" up")
	}
	return out
}

func (h *healthTarget) SetProbeConfig(interval time.Duration, failN, recoverN int) error {
	h.probeCalls = append(h.probeCalls, fmt.Sprintf("%v/%d/%d", interval, failN, recoverN))
	return nil
}

func TestApplyHealthCommands(t *testing.T) {
	h := &healthTarget{fakeTarget: newFake()}
	h.links["to-b"] = "x/udp"
	apply := func(line string) ([]string, error) {
		cmd, err := Parse(line)
		if err != nil {
			t.Fatalf("parse %q: %v", line, err)
		}
		return Apply(h, cmd)
	}
	out, err := apply("LINK STATUS to-b")
	if err != nil || len(out) != 2 || out[1] != "state up" {
		t.Fatalf("LINK STATUS: %v, %v", out, err)
	}
	out, err = apply("LIST HEALTH")
	if err != nil || len(out) != 1 {
		t.Fatalf("LIST HEALTH: %v, %v", out, err)
	}
	if _, err := apply("LINK PROBE 100 4 2"); err != nil {
		t.Fatal(err)
	}
	if len(h.probeCalls) != 1 || h.probeCalls[0] != "100ms/4/2" {
		t.Fatalf("probe calls: %v", h.probeCalls)
	}
	// A target without the extension must refuse, not crash.
	for _, line := range []string{"LINK STATUS x", "LINK PROBE 1 1 1", "LIST HEALTH"} {
		cmd, _ := Parse(line)
		if _, err := Apply(newFake(), cmd); err == nil {
			t.Errorf("healthless target accepted %q", line)
		}
	}
}

func TestDaemonCommandFailsHalfway(t *testing.T) {
	// A command that errors after the daemon started emitting payload
	// lines must still terminate the response with ERR — the client sees
	// the partial payload, then the failure, and the connection stays
	// usable for the next command.
	h := &healthTarget{fakeTarget: newFake()}
	h.links["good"] = "x/udp"
	d, err := NewDaemon(h, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	conn, err := net.Dial("tcp", d.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	rd := bufio.NewReader(conn)
	send := func(line string) []string {
		fmt.Fprintln(conn, line)
		var out []string
		for {
			resp, err := rd.ReadString('\n')
			if err != nil {
				t.Fatal(err)
			}
			resp = strings.TrimSpace(resp)
			out = append(out, resp)
			if resp == "OK" || strings.HasPrefix(resp, "ERR") {
				return out
			}
		}
	}
	// Unknown link: no payload, just the error.
	got := send("LINK STATUS nope")
	if len(got) != 1 || !strings.HasPrefix(got[0], "ERR") {
		t.Fatalf("LINK STATUS nope: %v", got)
	}
	if !strings.Contains(got[0], "nope") {
		t.Fatalf("error does not name the link: %v", got)
	}
	// The session survives the failure.
	got = send("LINK STATUS good")
	if len(got) != 3 || got[len(got)-1] != "OK" {
		t.Fatalf("LINK STATUS good after failure: %v", got)
	}
}

// traceFake extends fakeTarget with the TraceTarget surface.
type traceFake struct {
	*fakeTarget
	started bool
	sampleN uint64
	flow    ethernet.MAC
	hasFlow bool
}

func (f *traceFake) TraceStart(n uint64, flow ethernet.MAC, hasFlow bool) error {
	f.started, f.sampleN, f.flow, f.hasFlow = true, n, flow, hasFlow
	return nil
}
func (f *traceFake) TraceStop() error    { f.started = false; return nil }
func (f *traceFake) TraceDump() []string { return []string{"traces 0"} }

func TestParseTraceCommands(t *testing.T) {
	cases := []struct {
		line    string
		sampleN uint64
		hasFlow bool
		kind    string
	}{
		{"TRACE START", 1, false, "START"},
		{"trace start sample 1024", 1024, false, "START"},
		{"TRACE START FLOW 02:00:00:00:00:09", 0, true, "START"},
		{"TRACE STOP", 0, false, "STOP"},
		{"TRACE DUMP", 0, false, "DUMP"},
	}
	for _, c := range cases {
		cmd, err := Parse(c.line)
		if err != nil {
			t.Fatalf("Parse(%q): %v", c.line, err)
		}
		if cmd.Verb != "TRACE" || cmd.Kind != c.kind || cmd.SampleN != c.sampleN || cmd.HasFlow != c.hasFlow {
			t.Fatalf("Parse(%q) = %+v", c.line, cmd)
		}
	}
	for _, bad := range []string{
		"TRACE", "TRACE START SAMPLE 0", "TRACE START SAMPLE x",
		"TRACE START FLOW nonsense", "TRACE START EXTRA", "TRACE STOP now",
		"TRACE PAUSE",
	} {
		if _, err := Parse(bad); err == nil {
			t.Fatalf("Parse(%q) accepted", bad)
		}
	}
}

func TestApplyTraceCommands(t *testing.T) {
	f := &traceFake{fakeTarget: newFake()}
	mustApply := func(line string) []string {
		t.Helper()
		cmd, err := Parse(line)
		if err != nil {
			t.Fatal(err)
		}
		out, err := Apply(f, cmd)
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	mustApply("TRACE START SAMPLE 16")
	if !f.started || f.sampleN != 16 {
		t.Fatalf("after START: %+v", f)
	}
	mustApply("TRACE START FLOW 02:00:00:00:00:09")
	wantFlow, err := ethernet.ParseMAC("02:00:00:00:00:09")
	if err != nil {
		t.Fatal(err)
	}
	if !f.hasFlow || f.flow != wantFlow {
		t.Fatalf("after FLOW: %+v", f)
	}
	if out := mustApply("TRACE DUMP"); len(out) != 1 || out[0] != "traces 0" {
		t.Fatalf("DUMP = %v", out)
	}
	mustApply("TRACE STOP")
	if f.started {
		t.Fatal("STOP did not land")
	}
	// A target without tracing support reports a clean error.
	cmd, _ := Parse("TRACE DUMP")
	if _, err := Apply(newFake(), cmd); err == nil {
		t.Fatal("trace on non-TraceTarget accepted")
	}
}
