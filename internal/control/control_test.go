package control

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"strings"
	"testing"

	"vnetp/internal/core"
	"vnetp/internal/ethernet"
)

// fakeTarget records applied configuration.
type fakeTarget struct {
	links  map[string]string
	routes []core.Route
	ifaces []string
	failOn string
}

func newFake() *fakeTarget {
	return &fakeTarget{links: map[string]string{}, ifaces: []string{"nic0"}}
}

func (f *fakeTarget) AddLink(id, remote, proto string) error {
	if f.failOn == "addlink" {
		return errors.New("boom")
	}
	f.links[id] = remote + "/" + proto
	return nil
}
func (f *fakeTarget) DelLink(id string) error {
	if _, ok := f.links[id]; !ok {
		return errors.New("no link")
	}
	delete(f.links, id)
	return nil
}
func (f *fakeTarget) AddRoute(r core.Route) error { f.routes = append(f.routes, r); return nil }
func (f *fakeTarget) DelRoute(r core.Route) error {
	for i, have := range f.routes {
		if have == r {
			f.routes = append(f.routes[:i], f.routes[i+1:]...)
			return nil
		}
	}
	return errors.New("no route")
}
func (f *fakeTarget) Routes() []core.Route { return f.routes }
func (f *fakeTarget) Links() []string {
	var out []string
	for id := range f.links {
		out = append(out, id)
	}
	return out
}
func (f *fakeTarget) Interfaces() []string { return f.ifaces }

func TestParseAddLink(t *testing.T) {
	cmd, err := Parse("ADD LINK to-b REMOTE 10.0.0.2:7777 udp")
	if err != nil {
		t.Fatal(err)
	}
	if cmd.Verb != "ADD" || cmd.Kind != "LINK" || cmd.LinkID != "to-b" ||
		cmd.Remote != "10.0.0.2:7777" || cmd.Proto != "udp" {
		t.Fatalf("cmd = %+v", cmd)
	}
	// Default proto.
	cmd, err = Parse("add link l1 remote host:1")
	if err != nil || cmd.Proto != "udp" {
		t.Fatalf("default proto: %+v %v", cmd, err)
	}
	cmd, _ = Parse("ADD LINK l2 REMOTE h:2 TCP")
	if cmd.Proto != "tcp" {
		t.Fatalf("tcp proto: %+v", cmd)
	}
}

func TestParseRoute(t *testing.T) {
	mac := ethernet.LocalMAC(5)
	cmd, err := Parse(fmt.Sprintf("ADD ROUTE %s any link to-b", mac))
	if err != nil {
		t.Fatal(err)
	}
	r := cmd.Route
	if r.DstMAC != mac || r.DstQual != core.QualExact || r.SrcQual != core.QualAny ||
		r.Dest != (core.Destination{Type: core.DestLink, ID: "to-b"}) {
		t.Fatalf("route = %+v", r)
	}
	cmd, err = Parse(fmt.Sprintf("ADD ROUTE not-%s %s interface nic0", mac, mac))
	if err != nil {
		t.Fatal(err)
	}
	if cmd.Route.DstQual != core.QualNot || cmd.Route.SrcQual != core.QualExact {
		t.Fatalf("quals = %+v", cmd.Route)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"FROB LINK x",
		"ADD LINK",
		"ADD LINK x REMOTE",
		"ADD LINK x REMOTE a:1 SCTP",
		"ADD ROUTE any any nowhere x",
		"ADD ROUTE zz any link x",
		"LIST",
		"LIST NOTHING",
		"ADD WIDGET x",
	}
	for _, line := range bad {
		if _, err := Parse(line); err == nil {
			t.Errorf("Parse(%q) succeeded", line)
		}
	}
	for _, line := range []string{"", "   ", "# comment"} {
		if _, err := Parse(line); !errors.Is(err, ErrEmpty) {
			t.Errorf("Parse(%q) = %v, want ErrEmpty", line, err)
		}
	}
}

func TestFormatRouteRoundTrip(t *testing.T) {
	routes := []core.Route{
		{DstMAC: ethernet.LocalMAC(1), DstQual: core.QualExact, SrcQual: core.QualAny,
			Dest: core.Destination{Type: core.DestLink, ID: "l1"}},
		{DstQual: core.QualAny, SrcMAC: ethernet.LocalMAC(2), SrcQual: core.QualNot,
			Dest: core.Destination{Type: core.DestInterface, ID: "nic0"}},
	}
	for _, r := range routes {
		line := "ADD ROUTE " + FormatRoute(r)
		cmd, err := Parse(line)
		if err != nil {
			t.Fatalf("%q: %v", line, err)
		}
		if cmd.Route != r {
			t.Fatalf("round trip: %+v vs %+v", cmd.Route, r)
		}
	}
}

func TestRunScript(t *testing.T) {
	f := newFake()
	script := `
# build a two-link overlay
ADD LINK to-b REMOTE 127.0.0.1:9001
ADD LINK to-c REMOTE 127.0.0.1:9002 tcp

ADD ROUTE 02:56:00:00:00:02 any link to-b
ADD ROUTE 02:56:00:00:00:03 any link to-c
`
	if err := RunScript(f, strings.NewReader(script)); err != nil {
		t.Fatal(err)
	}
	if len(f.links) != 2 || len(f.routes) != 2 {
		t.Fatalf("links=%v routes=%v", f.links, f.routes)
	}
	// Script with a bad line reports the line number.
	err := RunScript(f, strings.NewReader("ADD LINK ok REMOTE a:1\nGARBAGE\n"))
	if err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("err = %v", err)
	}
}

func TestDaemonEndToEnd(t *testing.T) {
	f := newFake()
	d, err := NewDaemon(f, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	conn, err := net.Dial("tcp", d.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	rd := bufio.NewReader(conn)
	send := func(line string) []string {
		fmt.Fprintln(conn, line)
		var out []string
		for {
			resp, err := rd.ReadString('\n')
			if err != nil {
				t.Fatal(err)
			}
			resp = strings.TrimSpace(resp)
			out = append(out, resp)
			if resp == "OK" || strings.HasPrefix(resp, "ERR") {
				return out
			}
		}
	}

	if got := send("ADD LINK to-b REMOTE 127.0.0.1:9999"); got[len(got)-1] != "OK" {
		t.Fatalf("ADD LINK: %v", got)
	}
	if got := send("ADD ROUTE 02:56:00:00:00:02 any link to-b"); got[len(got)-1] != "OK" {
		t.Fatalf("ADD ROUTE: %v", got)
	}
	got := send("LIST ROUTES")
	if len(got) != 2 || !strings.Contains(got[0], "02:56:00:00:00:02") {
		t.Fatalf("LIST ROUTES: %v", got)
	}
	got = send("LIST LINKS")
	if len(got) != 2 || got[0] != "to-b" {
		t.Fatalf("LIST LINKS: %v", got)
	}
	got = send("LIST INTERFACES")
	if got[0] != "nic0" {
		t.Fatalf("LIST INTERFACES: %v", got)
	}
	if got := send("DEL LINK nothere"); !strings.HasPrefix(got[len(got)-1], "ERR") {
		t.Fatalf("DEL missing link: %v", got)
	}
	if got := send("BOGUS"); !strings.HasPrefix(got[len(got)-1], "ERR") {
		t.Fatalf("bogus command: %v", got)
	}
	if got := send("DEL ROUTE 02:56:00:00:00:02 any link to-b"); got[len(got)-1] != "OK" {
		t.Fatalf("DEL ROUTE: %v", got)
	}
	if len(f.routes) != 0 {
		t.Fatalf("routes remain: %v", f.routes)
	}
	// fakeTarget has no stats: LIST STATS must error, not crash.
	if got := send("LIST STATS"); !strings.HasPrefix(got[len(got)-1], "ERR") {
		t.Fatalf("LIST STATS on statless target: %v", got)
	}
}

// statsTarget adds the optional StatsProvider extension.
type statsTarget struct{ *fakeTarget }

func (statsTarget) Stats() []string { return []string{"frames 42"} }

func TestListStats(t *testing.T) {
	cmd, err := Parse("LIST STATS")
	if err != nil {
		t.Fatal(err)
	}
	out, err := Apply(statsTarget{newFake()}, cmd)
	if err != nil || len(out) != 1 || out[0] != "frames 42" {
		t.Fatalf("stats = %v, %v", out, err)
	}
	if _, err := Apply(newFake(), cmd); err == nil {
		t.Fatal("statless target accepted LIST STATS")
	}
}
