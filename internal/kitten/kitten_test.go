package kitten_test

import (
	"testing"
	"time"

	"vnetp/internal/core"
	"vnetp/internal/kitten"
	"vnetp/internal/lab"
	"vnetp/internal/microbench"
	"vnetp/internal/phys"
	"vnetp/internal/sim"
)

func TestBridgeVMExtraApplied(t *testing.T) {
	eng := sim.New()
	tb := kitten.NewTestbed(eng, 2)
	for i, n := range tb.VNETP.Nodes {
		if n.Bridge.Extra != kitten.BridgeVMExtra {
			t.Errorf("node %d bridge extra = %v", i, n.Bridge.Extra)
		}
	}
	if tb.Dev.Name != phys.KittenIB.Name {
		t.Errorf("device = %s", tb.Dev.Name)
	}
}

func TestKittenVsNativeShape(t *testing.T) {
	// Sect. 6.3: 8900-byte ttcp payloads; VNET/P 4.0 Gbps vs native
	// IPoIB-RC 6.5 Gbps (ratio ~62%).
	engV := sim.New()
	vtcp := microbench.TTCPStream(kitten.NewTestbed(engV, 2), 0, 1, 8900, 4<<20)
	engN := sim.New()
	ntcp := microbench.TTCPStream(kitten.NewNativeTestbed(engN, 2), 0, 1, 8900, 4<<20)

	vg, ng := phys.BytesToGbps(vtcp), phys.BytesToGbps(ntcp)
	t.Logf("kitten VNET/P %.2f Gbps, native %.2f Gbps (paper: 4.0 / 6.5)", vg, ng)
	if ng < 5.5 || ng > 6.6 {
		t.Errorf("native IPoIB-RC %.2f Gbps, want ~6-6.5", ng)
	}
	if vg < 3.0 || vg > 5.0 {
		t.Errorf("Kitten VNET/P %.2f Gbps, want ~3.3-4.6 (paper 4.0)", vg)
	}
	if r := vg / ng; r < 0.5 || r > 0.75 {
		t.Errorf("ratio %.2f, want ~0.55-0.7 (paper 0.62)", r)
	}
}

func TestBridgeVMHopCostsLatency(t *testing.T) {
	// The service-VM hop must show up in latency relative to a plain
	// VNET/P datapath on the same fabric.
	engK := sim.New()
	kRTT := microbench.PingRTT(kitten.NewTestbed(engK, 2), 0, 1, 56, 10)
	engP := sim.New()
	import2 := lab.NewVNETPTestbed(engP, lab.Config{Dev: phys.KittenIB, N: 2, Params: core.DefaultParams()})
	pRTT := microbench.PingRTT(import2, 0, 1, 56, 10)
	t.Logf("kitten RTT %v vs plain VNET/P RTT %v", kRTT, pRTT)
	if kRTT <= pRTT {
		t.Fatal("bridge-VM hop should add latency")
	}
	if kRTT-pRTT < 2*kitten.BridgeVMExtra || kRTT-pRTT > 8*kitten.BridgeVMExtra {
		t.Fatalf("hop cost %v not in band for extra %v", kRTT-pRTT, kitten.BridgeVMExtra)
	}
	_ = time.Microsecond
}
