// Package kitten models the VNET/P port to the Kitten lightweight kernel
// (paper Sect. 6.3): Palacios embedded in Kitten is a type-I VMM with a
// minimal in-kernel service set, so the bridge runs in a privileged
// *service VM* ("bridge VM") with direct InfiniBand access, and Ethernet
// frames map onto InfiniBand frames rather than UDP datagrams.
//
// Architecturally the guest-visible abstraction is identical to the Linux
// embedding; the datapath differs by the bridge-VM hop, modeled as an
// extra per-packet cost on the bridge path (tap crossings into the
// service VM, a world switch, and the Ethernet-to-IB frame mapping).
package kitten

import (
	"time"

	"vnetp/internal/core"
	"vnetp/internal/lab"
	"vnetp/internal/phys"
	"vnetp/internal/sim"
)

// BridgeVMExtra is the per-packet cost of routing through the bridge VM:
// two tap crossings, a world switch into the service VM, and IB frame
// mapping. Calibrated so the 8900-byte ttcp measurement lands at the
// paper's 4.0 Gbps against 6.5 Gbps native IPoIB-RC.
const BridgeVMExtra = 13 * time.Microsecond

// NewTestbed builds an n-node Kitten/InfiniBand VNET/P testbed: the
// standard cluster on the Kitten-IB fabric with every bridge paying the
// service-VM hop.
func NewTestbed(eng *sim.Engine, n int) *lab.Testbed {
	tb := lab.NewVNETPTestbed(eng, lab.Config{
		Dev: phys.KittenIB, N: n, Params: core.DefaultParams(),
	})
	for _, node := range tb.VNETP.Nodes {
		node.Bridge.Extra = BridgeVMExtra
	}
	return tb
}

// NewNativeTestbed builds the native comparator: IP-over-InfiniBand in
// reliable-connected mode on the same fabric, no virtualization.
func NewNativeTestbed(eng *sim.Engine, n int) *lab.Testbed {
	return lab.NewNativeTestbed(eng, phys.KittenIB, n)
}
