package overlay_test

import (
	"bytes"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"vnetp/internal/core"
	"vnetp/internal/ethernet"
	"vnetp/internal/faultnet"
	"vnetp/internal/overlay"
)

// jumboNodes is twoNodes with endpoints at the full 64KB overlay MTU
// (paper Sect. 4.4).
func jumboNodes(t *testing.T) (*overlay.Endpoint, *overlay.Endpoint) {
	t.Helper()
	na, err := overlay.NewNode("ja", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	nb, err := overlay.NewNode("jb", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { na.Close(); nb.Close() })
	macA, macB := ethernet.LocalMAC(0xa), ethernet.LocalMAC(0xb)
	epA, err := na.AttachEndpoint("nic0", macA, ethernet.MaxMTU)
	if err != nil {
		t.Fatal(err)
	}
	epB, err := nb.AttachEndpoint("nic0", macB, ethernet.MaxMTU)
	if err != nil {
		t.Fatal(err)
	}
	if err := na.AddLink("to-b", nb.Addr(), "udp"); err != nil {
		t.Fatal(err)
	}
	if err := nb.AddLink("to-a", na.Addr(), "udp"); err != nil {
		t.Fatal(err)
	}
	na.AddRoute(core.Route{DstMAC: macB, DstQual: core.QualExact, SrcQual: core.QualAny,
		Dest: core.Destination{Type: core.DestLink, ID: "to-b"}})
	nb.AddRoute(core.Route{DstMAC: macA, DstQual: core.QualExact, SrcQual: core.QualAny,
		Dest: core.Destination{Type: core.DestLink, ID: "to-a"}})
	return epA, epB
}

// TestJumboFrameBoundaryOverOverlay is the wire-corruption regression:
// under the v1 header a frame whose marshalled length exceeded 65535
// bytes silently wrapped its 16-bit TotalLen, so every payload near
// ethernet.MaxMTU either corrupted or never reassembled. The v2 32-bit
// header must carry the boundary cases losslessly end to end.
func TestJumboFrameBoundaryOverOverlay(t *testing.T) {
	epA, epB := jumboNodes(t)
	// 65521 is the payload at which the marshalled frame (14-byte
	// Ethernet header) crosses 65535; test both neighbours too.
	for _, size := range []int{65520, 65521, 65522, ethernet.MaxMTU} {
		payload := make([]byte, size)
		for i := range payload {
			payload[i] = byte(i * 7)
		}
		f := &ethernet.Frame{Dst: epB.MAC(), Src: epA.MAC(), Type: ethernet.TypeTest, Payload: payload}
		if err := epA.Send(f); err != nil {
			t.Fatalf("payload %d: %v", size, err)
		}
		got, ok := epB.Recv(5 * time.Second)
		if !ok {
			t.Fatalf("payload %d: frame never reassembled", size)
		}
		if len(got.Payload) != size {
			t.Fatalf("payload %d: arrived as %d bytes", size, len(got.Payload))
		}
		if !bytes.Equal(got.Payload, payload) {
			t.Fatalf("payload %d: corrupted in flight", size)
		}
	}
}

// TestFaultConduitSendErrorsCounted is the error-swallowing regression:
// with a fault conduit installed the transport send runs inside the
// conduit's deliver callback and its error used to vanish. The per-link
// send_errors counter must still see it.
func TestFaultConduitSendErrorsCounted(t *testing.T) {
	n, err := overlay.NewNode("chaos", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	src, err := n.AttachEndpoint("src", ethernet.LocalMAC(1), 1500)
	if err != nil {
		t.Fatal(err)
	}
	// TCP to a just-closed port: connection refused, immediately.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	dead := ln.Addr().String()
	ln.Close()
	if err := n.AddLink("flaky", dead, "tcp"); err != nil {
		t.Fatal(err)
	}
	// A zero-config conduit passes every packet through, so the only
	// behaviour under test is error propagation out of the callback.
	if err := n.SetLinkFault("flaky", faultnet.New(faultnet.Config{})); err != nil {
		t.Fatal(err)
	}
	n.AddRoute(core.Route{DstQual: core.QualAny, SrcQual: core.QualAny,
		Dest: core.Destination{Type: core.DestLink, ID: "flaky"}})

	src.Send(&ethernet.Frame{Dst: ethernet.LocalMAC(2), Src: src.MAC(), Type: ethernet.TypeTest, Payload: []byte("doomed")})

	deadline := time.Now().Add(3 * time.Second)
	for {
		lines, err := n.LinkStatus("flaky")
		if err != nil {
			t.Fatal(err)
		}
		var v uint64
		for _, l := range lines {
			if c, _ := fmt.Sscanf(l, "send_errors %d", &v); c == 1 {
				break
			}
		}
		if v >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("send error swallowed by fault conduit; status %v", lines)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestStatsConcurrentWithProbing hammers every read-side surface (Stats,
// HealthSummary, LinkStatus, CacheStats) while the health monitor probes
// a lossy link and data flows — the Stats-vs-monitor race stays dead
// only if this passes under -race.
func TestStatsConcurrentWithProbing(t *testing.T) {
	na, err := overlay.NewNode("ra", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	nb, err := overlay.NewNode("rb", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer na.Close()
	defer nb.Close()
	macA, macB := ethernet.LocalMAC(1), ethernet.LocalMAC(2)
	epA, err := na.AttachEndpoint("nic0", macA, 9000)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := nb.AttachEndpoint("nic0", macB, 9000); err != nil {
		t.Fatal(err)
	}
	if err := na.AddLink("to-b", nb.Addr(), "udp"); err != nil {
		t.Fatal(err)
	}
	na.AddRoute(core.Route{DstMAC: macB, DstQual: core.QualExact, SrcQual: core.QualAny,
		Dest: core.Destination{Type: core.DestLink, ID: "to-b"}})
	// Heavy loss keeps the monitor flapping between states while we read.
	if err := na.SetLinkFault("to-b", faultnet.New(faultnet.Config{DropProb: 0.5, Seed: 42})); err != nil {
		t.Fatal(err)
	}
	cfg := overlay.DefaultHealthConfig()
	cfg.Interval = 5 * time.Millisecond
	cfg.FailThreshold = 2
	cfg.RecoverThreshold = 1
	if err := na.EnableHealth(cfg); err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				na.Stats()
				na.HealthSummary()
				na.LinkStatus("to-b")
				na.Table().CacheStats()
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		f := &ethernet.Frame{Dst: macB, Src: macA, Type: ethernet.TypeTest, Payload: []byte("load")}
		for {
			select {
			case <-stop:
				return
			default:
			}
			epA.Send(f)
		}
	}()
	time.Sleep(300 * time.Millisecond)
	close(stop)
	wg.Wait()
}
