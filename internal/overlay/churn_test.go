package overlay_test

import (
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"

	"vnetp/internal/core"
	"vnetp/internal/ethernet"
	"vnetp/internal/faultnet"
	"vnetp/internal/overlay"
)

// waitGoroutines polls until the live goroutine count drops to at most
// want, failing after the timeout. Goroutine exits are asynchronous
// (txLoop sees txQuit on its next select), so a one-shot read races.
func waitGoroutines(t *testing.T, want int, what string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC() // nudges finalizer/timer goroutines to settle
		if n := runtime.NumGoroutine(); n <= want {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			t.Fatalf("%s: %d goroutines alive, want <= %d\n%s",
				what, runtime.NumGoroutine(), want, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestLinkChurnUnderTraffic hammers AddLink/DelLink/SetLinkFault
// concurrently with a live route() fan-out on a batched-transmit node
// (each churned link spawns and must reap a TX sender goroutine), then
// pins the two leak-shaped invariants: goroutine count returns to its
// pre-churn baseline, and a deleted link carries no further frames.
// Designed to run under -race: the churn goroutines, the sender, the
// txLoops, and the dispatcher pool all overlap.
func TestLinkChurnUnderTraffic(t *testing.T) {
	na, err := overlay.NewNodeWithConfig("a", "127.0.0.1:0",
		overlay.NodeConfig{TxBatch: 8, TxRing: 64, TxFlushTimeout: 50 * time.Microsecond})
	if err != nil {
		t.Fatal(err)
	}
	nb, err := overlay.NewNode("b", "127.0.0.1:0")
	if err != nil {
		na.Close()
		t.Fatal(err)
	}
	t.Cleanup(func() { na.Close(); nb.Close() })

	macA, macB := ethernet.LocalMAC(1), ethernet.LocalMAC(2)
	epA, err := na.AttachEndpoint("nic0", macA, 9000)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := nb.AttachEndpoint("nic0", macB, 9000); err != nil {
		t.Fatal(err)
	}
	// The route fan-out hits one stable link plus every churned link
	// that happens to exist at lookup time.
	const churners = 4
	if err := na.AddLink("stable", nb.Addr(), "udp"); err != nil {
		t.Fatal(err)
	}
	na.AddRoute(core.Route{DstMAC: macB, DstQual: core.QualExact, SrcQual: core.QualAny,
		Dest: core.Destination{Type: core.DestLink, ID: "stable"}})
	for g := 0; g < churners; g++ {
		na.AddRoute(core.Route{DstMAC: macB, DstQual: core.QualExact, SrcQual: core.QualAny,
			Dest: core.Destination{Type: core.DestLink, ID: fmt.Sprintf("churn-%d", g)}})
	}

	baseline := runtime.NumGoroutine() // steady state: nodes up, no churn links

	stop := make(chan struct{})
	var senders sync.WaitGroup
	senders.Add(1)
	go func() { // traffic source: keeps route() fanning out during churn
		defer senders.Done()
		f := &ethernet.Frame{Dst: macB, Src: macA, Type: ethernet.TypeTest,
			Payload: []byte("churn traffic")}
		for {
			select {
			case <-stop:
				return
			default:
				epA.Send(f)
			}
		}
	}()

	var churn sync.WaitGroup
	for g := 0; g < churners; g++ {
		churn.Add(1)
		go func(g int) {
			defer churn.Done()
			id := fmt.Sprintf("churn-%d", g)
			for i := 0; i < 200; i++ {
				if err := na.AddLink(id, nb.Addr(), "udp"); err != nil {
					t.Error(err)
					return
				}
				if i%3 == 0 {
					na.SetLinkFault(id, faultnet.New(faultnet.Config{DropProb: 0.5, Seed: int64(i)}))
				}
				if i%2 == 0 { // half the time, replace instead of delete+add
					if err := na.DelLink(id); err != nil {
						t.Error(err)
						return
					}
				}
			}
			na.DelLink(id) // idempotent-ish: may or may not still exist
		}(g)
	}
	churn.Wait()
	close(stop)
	senders.Wait()

	if got := na.Links(); len(got) != 1 || got[0] != "stable" {
		t.Fatalf("links after churn: %v, want [stable]", got)
	}
	// Every churned link's TX sender goroutine must have been reaped.
	waitGoroutines(t, baseline, "after churn")

	// A deleted link must carry nothing: drop the last link, let
	// in-flight batches settle, and pin that the receiver's delivery
	// counter stays frozen while we keep routing frames at it.
	if err := na.DelLink("stable"); err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond) // drain anything already on the wire
	frozen := nb.Delivered.Load()
	f := &ethernet.Frame{Dst: macB, Src: macA, Type: ethernet.TypeTest,
		Payload: []byte("post-delete")}
	for i := 0; i < 100; i++ {
		epA.Send(f) // routes still exist; links are gone
	}
	time.Sleep(100 * time.Millisecond)
	if got := nb.Delivered.Load(); got != frozen {
		t.Fatalf("deleted link delivered %d frames", got-frozen)
	}
}

// TestCloseUnderTraffic slams a node shut while multiple senders are
// mid-Send and traffic is on the wire, then pins the teardown
// invariants: no panic (no send on a closed channel anywhere in the
// datapath), no frame delivered after Close returns has a live
// consumer, and the goroutine count falls back to the pre-node
// baseline — supervisor, watchdog, TX senders, dispatchers and all.
func TestCloseUnderTraffic(t *testing.T) {
	baseline := runtime.NumGoroutine()

	na, err := overlay.NewNodeWithConfig("close-a", "127.0.0.1:0",
		overlay.NodeConfig{TxBatch: 8, TxRing: 256, TxFlushTimeout: 50 * time.Microsecond})
	if err != nil {
		t.Fatal(err)
	}
	nb, err := overlay.NewNode("close-b", "127.0.0.1:0")
	if err != nil {
		na.Close()
		t.Fatal(err)
	}
	t.Cleanup(func() { na.Close(); nb.Close() })

	macA, macB := ethernet.LocalMAC(7), ethernet.LocalMAC(8)
	epA, err := na.AttachEndpoint("nic0", macA, 9000)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := nb.AttachEndpoint("nic0", macB, 9000); err != nil {
		t.Fatal(err)
	}
	if err := na.AddLink("to-b", nb.Addr(), "udp"); err != nil {
		t.Fatal(err)
	}
	na.AddRoute(core.Route{DstMAC: macB, DstQual: core.QualExact, SrcQual: core.QualAny,
		Dest: core.Destination{Type: core.DestLink, ID: "to-b"}})

	stop := make(chan struct{})
	var senders sync.WaitGroup
	for g := 0; g < 4; g++ {
		senders.Add(1)
		go func() {
			defer senders.Done()
			f := &ethernet.Frame{Dst: macB, Src: macA, Type: ethernet.TypeTest,
				Payload: []byte("closing time")}
			for {
				select {
				case <-stop:
					return
				default:
					epA.Send(f) // must keep failing cleanly once the node closes
				}
			}
		}()
	}

	// Let traffic establish, then yank the node out from under the
	// senders and let them hammer the closed node for a while.
	time.Sleep(20 * time.Millisecond)
	if err := na.Close(); err != nil {
		t.Fatalf("close under traffic: %v", err)
	}
	time.Sleep(20 * time.Millisecond)
	close(stop)
	senders.Wait()

	// Whatever was on the wire at Close lands shortly; after that the
	// receiver's delivery counter must freeze.
	time.Sleep(100 * time.Millisecond)
	frozen := nb.Delivered.Load()
	time.Sleep(100 * time.Millisecond)
	if got := nb.Delivered.Load(); got != frozen {
		t.Fatalf("%d frames delivered after close settled", got-frozen)
	}

	if err := nb.Close(); err != nil {
		t.Fatal(err)
	}
	waitGoroutines(t, baseline, "after close under traffic")
}
