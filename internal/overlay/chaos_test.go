package overlay_test

// Crash-injection chaos tests: the acceptance gate for the self-healing
// runtime. A two-node overlay carries live traffic while chosen
// components are made to panic or stall; the node must keep delivering,
// the supervisor's counters must show the recoveries on the telemetry
// scrape, and a graceful Drain afterwards must leave zero goroutines
// behind. Run via `make chaos` (always under -race).

import (
	"context"
	"errors"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"vnetp/internal/core"
	"vnetp/internal/ethernet"
	"vnetp/internal/overlay"
	"vnetp/internal/supervise"
	"vnetp/internal/telemetry"
)

// chaosSupervise is a supervisor tuning aggressive enough that panics
// and watchdog supersessions resolve within test time.
func chaosSupervise() supervise.Config {
	return supervise.Config{
		BackoffMin:       time.Millisecond,
		BackoffMax:       5 * time.Millisecond,
		StallTimeout:     80 * time.Millisecond,
		WatchdogInterval: 10 * time.Millisecond,
	}
}

// scrapeSum totals one counter family across all its children on a
// registry's scrape — the same numbers Prometheus would see.
func scrapeSum(reg *telemetry.Registry, family string) float64 {
	var sum float64
	for _, f := range reg.Gather() {
		if f.Name != family {
			continue
		}
		for _, s := range f.Samples {
			sum += s.Value
		}
	}
	return sum
}

// waitUntil polls cond at 5ms until true, failing the test after the
// deadline.
func waitUntil(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestChaosContinuedDeliveryUnderCrashes is the issue's acceptance
// scenario: under live traffic, panic the receiver's only dispatcher
// and stall the sender's TX sender past the watchdog timeout. Delivery
// must continue, the scrape must show panics_recovered >= 1 and
// component_restarts >= 2 (the panic relaunch plus the watchdog
// supersession), and a graceful drain afterwards must leak nothing.
func TestChaosContinuedDeliveryUnderCrashes(t *testing.T) {
	baseline := runtime.NumGoroutine()

	na, err := overlay.NewNodeWithConfig("chaos-a", "127.0.0.1:0", overlay.NodeConfig{
		TxBatch: 4, TxFlushTimeout: 50 * time.Microsecond,
		Supervise: chaosSupervise(),
	})
	if err != nil {
		t.Fatal(err)
	}
	// Dispatchers: 1 makes "dispatcher/0" the one worker every datagram
	// crosses, so the injected panic is guaranteed to fire in-path.
	nb, err := overlay.NewNodeWithConfig("chaos-b", "127.0.0.1:0", overlay.NodeConfig{
		Dispatchers: 1,
		Supervise:   chaosSupervise(),
	})
	if err != nil {
		na.Close()
		t.Fatal(err)
	}
	t.Cleanup(func() { na.Close(); nb.Close() })

	macA, macB := ethernet.LocalMAC(1), ethernet.LocalMAC(2)
	epA, err := na.AttachEndpoint("nic0", macA, 9000)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := nb.AttachEndpoint("nic0", macB, 9000); err != nil {
		t.Fatal(err)
	}
	if err := na.AddLink("to-b", nb.Addr(), "udp"); err != nil {
		t.Fatal(err)
	}
	na.AddRoute(core.Route{DstMAC: macB, DstQual: core.QualExact, SrcQual: core.QualAny,
		Dest: core.Destination{Type: core.DestLink, ID: "to-b"}})

	stop := make(chan struct{})
	done := make(chan struct{})
	go func() { // live traffic for the whole scenario
		defer close(done)
		f := &ethernet.Frame{Dst: macB, Src: macA, Type: ethernet.TypeTest,
			Payload: []byte("chaos traffic")}
		for {
			select {
			case <-stop:
				return
			default:
				epA.Send(f)
				time.Sleep(200 * time.Microsecond)
			}
		}
	}()

	waitUntil(t, 5*time.Second, "pre-chaos delivery", func() bool {
		return nb.Delivered.Load() >= 20
	})

	// Crash injection: panic the receive path, stall the transmit path.
	dw := nb.Runtime().Worker("dispatcher/0")
	tw := na.Runtime().Worker("tx/to-b")
	if dw == nil || tw == nil {
		t.Fatalf("missing chaos targets: dispatcher=%v tx=%v (components a=%v b=%v)",
			dw, tw, na.Runtime().Components(), nb.Runtime().Components())
	}
	dw.InjectPanic()
	tw.InjectStall(300 * time.Millisecond) // >> StallTimeout: watchdog must supersede

	waitUntil(t, 5*time.Second, "panic recovery on the scrape", func() bool {
		return scrapeSum(nb.Telemetry(), "vnetp_panics_recovered_total") >= 1
	})
	waitUntil(t, 5*time.Second, "watchdog supersession on the scrape", func() bool {
		return scrapeSum(na.Telemetry(), "vnetp_watchdog_stalls_total") >= 1
	})
	restarts := scrapeSum(na.Telemetry(), "vnetp_component_restarts_total") +
		scrapeSum(nb.Telemetry(), "vnetp_component_restarts_total")
	if restarts < 2 {
		t.Fatalf("component restarts on the scrape = %v, want >= 2", restarts)
	}

	// The whole point: traffic keeps flowing after both recoveries.
	mark := nb.Delivered.Load()
	waitUntil(t, 10*time.Second, "post-chaos delivery", func() bool {
		return nb.Delivered.Load() >= mark+50
	})

	close(stop)
	<-done

	// Graceful teardown leaks nothing — not the restarted dispatcher,
	// not the superseded TX instance still sleeping in its stall.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if _, err := na.Drain(ctx); err != nil {
		t.Fatalf("drain a: %v", err)
	}
	if _, err := nb.Drain(ctx); err != nil {
		t.Fatalf("drain b: %v", err)
	}
	waitGoroutines(t, baseline, "after chaos drain")
}

// TestDrainStopsAdmissionAndFlushes pins Drain's contract: once a drain
// begins, Send reports ErrDraining; queued traffic still flushes; the
// node ends closed and a second Drain refuses.
func TestDrainStopsAdmissionAndFlushes(t *testing.T) {
	na, err := overlay.NewNodeWithConfig("drain-a", "127.0.0.1:0", overlay.NodeConfig{
		TxBatch: 8, TxRing: 1024, TxFlushTimeout: 50 * time.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	nb, err := overlay.NewNode("drain-b", "127.0.0.1:0")
	if err != nil {
		na.Close()
		t.Fatal(err)
	}
	t.Cleanup(func() { na.Close(); nb.Close() })

	macA, macB := ethernet.LocalMAC(3), ethernet.LocalMAC(4)
	epA, err := na.AttachEndpoint("nic0", macA, 9000)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := nb.AttachEndpoint("nic0", macB, 9000); err != nil {
		t.Fatal(err)
	}
	if err := na.AddLink("to-b", nb.Addr(), "udp"); err != nil {
		t.Fatal(err)
	}
	na.AddRoute(core.Route{DstMAC: macB, DstQual: core.QualExact, SrcQual: core.QualAny,
		Dest: core.Destination{Type: core.DestLink, ID: "to-b"}})

	f := &ethernet.Frame{Dst: macB, Src: macA, Type: ethernet.TypeTest,
		Payload: []byte("drain me")}
	for i := 0; i < 100; i++ {
		if err := epA.Send(f); err != nil {
			t.Fatalf("pre-drain send %d: %v", i, err)
		}
	}

	// A sender races the drain: it must observe ErrDraining (admission
	// stops at the start of the grace period, not at Close).
	var sawDraining atomic.Bool
	senderDone := make(chan struct{})
	go func() {
		defer close(senderDone)
		for i := 0; i < 100000; i++ {
			if err := epA.Send(f); errors.Is(err, overlay.ErrDraining) {
				sawDraining.Store(true)
				return
			}
			time.Sleep(50 * time.Microsecond)
		}
	}()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	stats, err := na.Drain(ctx)
	if err != nil {
		t.Fatalf("drain: %v (stats %+v)", err, stats)
	}
	<-senderDone
	if !sawDraining.Load() {
		t.Fatal("concurrent sender never observed ErrDraining")
	}
	if stats.FramesDropped != 0 {
		t.Fatalf("clean drain dropped %d frames (stats %+v)", stats.FramesDropped, stats)
	}
	if nb.Delivered.Load() == 0 {
		t.Fatal("nothing delivered before drain completed")
	}
	if _, err := na.Drain(ctx); err == nil {
		t.Fatal("second drain on a closed node succeeded")
	}
	if err := epA.Send(f); err == nil {
		t.Fatal("send on drained node succeeded")
	}
}

// TestDrainDeadlineGivesUp pins the other half of the contract: a drain
// that cannot finish (a stalled TX sender holds frames in the ring)
// respects its deadline, reports the loss, and still closes the node.
func TestDrainDeadlineGivesUp(t *testing.T) {
	na, err := overlay.NewNodeWithConfig("drain-stuck", "127.0.0.1:0", overlay.NodeConfig{
		TxBatch: 8, TxRing: 1024, TxFlushTimeout: 50 * time.Microsecond,
		// Watchdog off: the injected stall must persist through the
		// whole drain window for the deadline path to trigger.
		Supervise: supervise.Config{StallTimeout: -1},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { na.Close() })
	macA, macB := ethernet.LocalMAC(5), ethernet.LocalMAC(6)
	epA, err := na.AttachEndpoint("nic0", macA, 9000)
	if err != nil {
		t.Fatal(err)
	}
	if err := na.AddLink("to-nowhere", "127.0.0.1:9", "udp"); err != nil {
		t.Fatal(err)
	}
	na.AddRoute(core.Route{DstMAC: macB, DstQual: core.QualExact, SrcQual: core.QualAny,
		Dest: core.Destination{Type: core.DestLink, ID: "to-nowhere"}})

	// Wedge the sender, then queue traffic behind it.
	na.Runtime().Worker("tx/to-nowhere").InjectStall(10 * time.Second)
	f := &ethernet.Frame{Dst: macB, Src: macA, Type: ethernet.TypeTest,
		Payload: []byte("stuck")}
	for i := 0; i < 200; i++ {
		epA.Send(f)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 300*time.Millisecond)
	defer cancel()
	start := time.Now()
	stats, err := na.Drain(ctx)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("drain err = %v, want DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("deadline drain took %v", elapsed)
	}
	if stats.FramesDropped == 0 {
		t.Fatalf("stuck drain reported no drops (stats %+v)", stats)
	}
	// Node must still end up closed despite the abandoned flush.
	if err := epA.Send(f); err == nil {
		t.Fatal("send after deadline-expired drain succeeded")
	}
}
