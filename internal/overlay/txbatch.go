// The batched transmit path: the send-side twin of the paper's
// VMM-driven dispatch result (Sect. 4.3, Table 1). With
// NodeConfig.TxBatch > 1, every link owns a bounded TX ring drained by a
// sender goroutine that coalesces frames per wakeup — flushing on
// batch-full or a short TxFlushTimeout, the adaptive hysteresis idea
// applied at the sender — so per-frame costs (goroutine wakeups, encap
// buffer allocation, and on Linux the syscall itself, via sendmmsg)
// amortize over the batch.

package overlay

import (
	"net"
	"time"

	"vnetp/internal/bridge"
	"vnetp/internal/core"
	"vnetp/internal/ethernet"
	"vnetp/internal/supervise"
	"vnetp/internal/telemetry"
	"vnetp/internal/trace"
	"vnetp/internal/virtio"
)

// txFrame is one outbound frame queued on a link's TX ring. at is the
// frame's local-arrival timestamp (zero for forwarded frames), carried
// across the ring so the TX latency histogram still measures frame-in →
// wire-out.
type txFrame struct {
	f  *ethernet.Frame
	at time.Time
}

// enqueueTx offers a frame to a link's TX ring without blocking the
// router; ring-full frames are dropped and counted, like a NIC TX ring
// under overrun.
func (n *Node) enqueueTx(lk *link, tf txFrame) {
	select {
	case lk.txq <- tf:
		lk.txFrames.Inc() // the adaptive controller's rate sensor
	default:
		lk.txDrops.Add(1)
		n.drop(dropTxRing, 1, telemetry.DropDetail{
			Tenant: lk.tenant, Scope: lk.id, Stage: "tx_ring",
			Flow: core.FlowKey{Tenant: lk.tenant, Src: tf.f.Src, Dst: tf.f.Dst}.String(),
		})
	}
}

// txScratch is a txLoop's reusable per-batch state: the encapsulated
// packets awaiting Release and the flattened datagram list handed to the
// transport. Reusing the slice headers keeps the steady-state flush
// allocation-free.
type txScratch struct {
	pkts   []*bridge.EncapPacket
	dgs    [][]byte
	frames []txFrame // the batch entries that actually encapsulated
}

// txLoop is one link's sender goroutine: it blocks for the first frame
// of a batch, collects until batch-full or the flush timer fires, and
// pushes the whole batch onto the link's transport. The batch size and
// flush bound come from the link's tunables snapshot (lk.tun), loaded
// once per batch: a retune by the adaptive controller or LINK TUNE
// applies from the next batch with no locking here. It exits when the
// node closes or the link is deleted/replaced (the supervision handle's
// Stop); frames still queued at that point are dropped, as a NIC ring's
// are on teardown — and so is any partial batch already collected, which
// is counted into tx_ring_drops on the way out so drain accounting sees
// it. Supervised as "tx/<link>": a panic drops the batch in hand (also
// counted, by the same defer) and the restarted sender resumes draining
// the same ring; a sender stuck inside one batch past the watchdog
// timeout is superseded by a fresh instance over the same ring.
func (n *Node) txLoop(inst *supervise.Instance, lk *link) {
	batch := make([]txFrame, 0, n.cfg.TxBatch)
	// Teardown/panic accounting: whatever sits in batch when this
	// instance unwinds never reached the wire. Count it like a ring
	// overrun so DrainStats and the shutdown summary include it.
	defer func() {
		if len(batch) > 0 {
			lk.txDrops.Add(uint64(len(batch)))
			n.drop(dropTxTeardown, uint64(len(batch)), telemetry.DropDetail{
				Tenant: lk.tenant, Scope: lk.id, Stage: "tx_teardown",
			})
		}
	}()
	var scratch txScratch
	timer := time.NewTimer(time.Hour)
	if !timer.Stop() {
		<-timer.C
	}
	for {
		select {
		case <-n.quit:
			return
		case <-inst.Quit():
			return
		case tf := <-lk.txq:
			inst.Working()
			batch = append(batch, tf)
		}
		tun := lk.tun.Load()
		if len(batch) < tun.batch {
			timer.Reset(tun.flush)
		collect:
			for len(batch) < tun.batch {
				select {
				case <-n.quit:
					return
				case <-inst.Quit():
					return
				case tf := <-lk.txq:
					batch = append(batch, tf)
				case <-timer.C:
					break collect
				}
			}
			if !timer.Stop() {
				select {
				case <-timer.C:
				default:
				}
			}
		}
		n.sendTxBatch(lk, batch, &scratch)
		n.metrics.txBatchSize.Observe(float64(len(batch)))
		for i := range batch {
			batch[i] = txFrame{} // drop frame refs; the ring owns nothing past a flush
		}
		batch = batch[:0]
		inst.Idle()
	}
}

// sendTxBatch encapsulates and transmits one collected batch. The link's
// transport parameters are snapshotted once per batch (a concurrent
// auto-upgrade to TCP or fault install applies from the next batch on).
// Transport errors land in the link's send_errors counter — the batched
// path has no caller to return them to.
//
// Accounting rule, shared by both transports: a datagram is charged to
// bytes_sent only once the transport confirms it (UDP: counted sent by
// sendmmsg; TCP: fully written before any mid-batch write error, or the
// whole batch once the final flush succeeds — a failed flush confirms
// nothing it buffered). Every unconfirmed datagram is one send_errors
// count; a datagram never lands in both.
func (n *Node) sendTxBatch(lk *link, batch []txFrame, s *txScratch) {
	n.mu.Lock()
	fault, proto, addr := lk.fault, lk.proto, lk.addr
	n.mu.Unlock()
	sl := lk.sealer // immutable after AddLink
	budget := maxDatagram
	if proto == "tcp" {
		budget = tcpMaxDatagram
	}
	pkts := s.pkts[:0]
	dgs := s.dgs[:0]
	sentFrames := s.frames[:0]
	for _, tf := range batch {
		// Untraced frames (the steady state) encapsulate through the
		// link's prebuilt header template — one memcpy plus fixed-offset
		// patches per fragment. Traced frames need the trace extension,
		// which the template deliberately omits, so they take the
		// general encoder.
		var pkt *bridge.EncapPacket
		var err error
		if tf.f.Tag == 0 {
			pkt, err = n.encap.EncapsulateTemplate(tf.f, n.nextID.Add(1), budget, lk.tmpl, sl)
		} else {
			pkt, err = n.encap.EncapsulateSealed(tf.f, n.nextID.Add(1), budget, n.traceExt(tf.f.Tag), sl)
		}
		if err != nil {
			lk.sendErrors.Add(1)
			continue
		}
		if tf.f.Tag != 0 {
			n.tracer.Record(tf.f.Tag, trace.StageEncap)
		}
		if sl != nil {
			n.metrics.sealSealed.Add(uint64(len(pkt.Datagrams)))
		}
		pkts = append(pkts, pkt)
		dgs = append(dgs, pkt.Datagrams...)
		sentFrames = append(sentFrames, tf)
		n.EncapSent.Add(1)
	}

	switch {
	case fault != nil:
		// Fault conduit installed: per-datagram through sendOnLink, whose
		// conduit branch clones each datagram (the conduit may deliver
		// after the pooled buffers are recycled) and accounts errors/bytes.
		for _, d := range dgs {
			n.sendOnLink(lk, d)
		}
	case proto == "tcp":
		sent, err := n.sendBatchTCP(lk, dgs)
		lk.bytesSent.Add(sumLens(dgs[:sent]))
		if err != nil || sent < len(dgs) {
			lk.sendErrors.Add(uint64(len(dgs) - sent))
		}
	default: // udp
		sent, err := sendBatchUDP(n.conn, dgs, addr)
		lk.bytesSent.Add(sumLens(dgs[:sent]))
		if err != nil || sent < len(dgs) {
			lk.sendErrors.Add(uint64(len(dgs) - sent))
		}
	}

	// The Fig. 7 TX stage budget, batched flavor: frame arrival to its
	// batch hitting the wire. Forwarded frames (zero at) are skipped,
	// matching the synchronous path — and so are frames whose
	// encapsulation failed above: they never hit the wire, so they get
	// neither a wire_tx trace hop nor a latency sample.
	now := time.Now()
	for _, tf := range sentFrames {
		if !tf.at.IsZero() {
			n.metrics.txLatency.Observe(now.Sub(tf.at).Seconds())
		}
		if tf.f.Tag != 0 {
			n.tracer.Record(tf.f.Tag, trace.StageWireTx)
		}
	}
	for i, p := range pkts {
		p.Release()
		pkts[i] = nil
	}
	for i := range dgs {
		dgs[i] = nil
	}
	for i := range sentFrames {
		sentFrames[i] = txFrame{}
	}
	s.pkts = pkts[:0]
	s.dgs = dgs[:0]
	s.frames = sentFrames[:0]
}

// sendBatchTCP pushes a batch of datagrams down a link's TCP transport
// under one writer lock and a single flush. Returns how many datagrams
// the transport confirmed (see sendDatagrams for what "confirmed"
// means); a failed dial confirms none.
func (n *Node) sendBatchTCP(lk *link, dgs [][]byte) (int, error) {
	if len(dgs) == 0 {
		return 0, nil
	}
	c, err := n.dialTCP(lk)
	if err != nil {
		return 0, err
	}
	sent, err := c.sendDatagrams(dgs)
	if err != nil {
		n.dropTransport(lk, c)
		return sent, err
	}
	return sent, nil
}

// sendBatchUDPFallback is the portable per-datagram transmit loop, used
// on platforms without sendmmsg and as the escape hatch when a batch
// send cannot be prepared (exotic socket family). Returns how many
// datagrams were fully sent.
func sendBatchUDPFallback(c *net.UDPConn, dgs [][]byte, addr *net.UDPAddr) (int, error) {
	for i, d := range dgs {
		if _, err := c.WriteToUDP(d, addr); err != nil {
			return i, err
		}
	}
	return len(dgs), nil
}

// sumLens totals the byte lengths of a datagram batch (for bytes_sent
// accounting with one atomic add).
func sumLens(dgs [][]byte) uint64 {
	var t uint64
	for _, d := range dgs {
		t += uint64(len(d))
	}
	return t
}

// DrainTX dequeues up to max frames (all if max <= 0) from a virtio TX
// queue with single-VM-exit batch semantics and routes them into the
// overlay via SendBatch. buf is an optional reusable scratch slice so a
// polling VMM loop allocates nothing per drain. Returns how many frames
// were drained (routing errors are aggregated, not counted out).
func (ep *Endpoint) DrainTX(q *virtio.Queue, buf []*ethernet.Frame, max int) (int, error) {
	frames := q.PopBatchInto(buf[:0], max)
	if len(frames) == 0 {
		return 0, nil
	}
	err := ep.SendBatch(frames)
	for i := range frames {
		frames[i] = nil
	}
	return len(frames), err
}
