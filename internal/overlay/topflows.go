// Per-tenant heavy-hitter exposure (ISSUE 10): each tenant gets a
// core.TopFlows candidate set fed from the flow-accounting fill path
// (the flow-cache miss path — every flow's first frame takes it), so
// the flow cache's view of the world is inspectable at /topflows and
// via LIST FLOWS without adding work to the per-frame hot path.

package overlay

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"

	"vnetp/internal/core"
)

// offerTopFlow proposes a locally originated flow to its tenant's
// heavy-hitter candidate set. Called only where FlowStats.Acquire
// already ran (the routing miss path), never on flow-cache hits.
func (n *Node) offerTopFlow(tenant uint32, key core.FlowKey, fl *core.Flow) {
	if v, ok := n.topk.Load(tenant); ok {
		v.(*core.TopFlows).Offer(key, fl)
		return
	}
	v, _ := n.topk.LoadOrStore(tenant, core.NewTopFlows(core.TopFlowCapacity))
	v.(*core.TopFlows).Offer(key, fl)
}

// TopFlowEntries returns every tenant's heavy-hitter readings, keyed by
// tenant, each list ordered by live byte count. Tenants with no
// candidates are absent.
func (n *Node) TopFlowEntries() map[uint32][]core.TopFlowEntry {
	out := make(map[uint32][]core.TopFlowEntry)
	n.topk.Range(func(k, v any) bool {
		tenant := k.(uint32)
		if top := v.(*core.TopFlows).Top(0); len(top) > 0 {
			out[tenant] = top
		}
		return true
	})
	return out
}

// TopFlowSummary renders the heavy hitters in the control language's
// line-per-fact style: a "flows N" count, then one line per candidate
// ordered by tenant then bytes. LIST FLOWS returns these lines.
func (n *Node) TopFlowSummary() []string {
	byTenant := n.TopFlowEntries()
	tenants := make([]uint32, 0, len(byTenant))
	total := 0
	for t, entries := range byTenant {
		tenants = append(tenants, t)
		total += len(entries)
	}
	sort.Slice(tenants, func(i, j int) bool { return tenants[i] < tenants[j] })
	out := make([]string, 0, total+1)
	out = append(out, fmt.Sprintf("flows %d", total))
	for _, t := range tenants {
		for _, e := range byTenant[t] {
			out = append(out, fmt.Sprintf("flow tenant=%d src=%s dst=%s bytes=%d packets=%d",
				t, e.Key.Src, e.Key.Dst, e.Bytes, e.Packets))
		}
	}
	return out
}

// topFlowsDoc is the /topflows JSON shape: tenant (as a decimal string
// key) → ordered heavy-hitter list.
type topFlowDoc struct {
	Src     string `json:"src"`
	Dst     string `json:"dst"`
	Bytes   uint64 `json:"bytes"`
	Packets uint64 `json:"packets"`
}

func (n *Node) topFlowsDoc() map[string][]topFlowDoc {
	out := make(map[string][]topFlowDoc)
	for tenant, entries := range n.TopFlowEntries() {
		docs := make([]topFlowDoc, 0, len(entries))
		for _, e := range entries {
			docs = append(docs, topFlowDoc{
				Src:     e.Key.Src.String(),
				Dst:     e.Key.Dst.String(),
				Bytes:   e.Bytes,
				Packets: e.Packets,
			})
		}
		out[fmt.Sprint(tenant)] = docs
	}
	return out
}

// TopFlowsHandler serves the per-tenant heavy hitters as JSON — mounted
// at /topflows on the telemetry listener, beside /trace and /flight.
func (n *Node) TopFlowsHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(n.topFlowsDoc())
	})
}
