//go:build linux

package overlay

// recvmmsg(2) syscall number on linux/amd64; like sendmmsg, absent from
// the frozen stdlib syscall table.
const sysRecvmmsg = 299
