package overlay

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"vnetp/internal/core"
	"vnetp/internal/ethernet"
)

// BenchmarkOverlayFlowCache is the fast path's fig. 5 analogue: parallel
// senders each driving a distinct unicast flow through one node's
// routing stage into local endpoints, cached vs uncached (the ablation
// NodeConfig.FlowCacheDisabled exists for). The uncached path pays the
// tenant-table resolve, the route-cache shard, and the node mutex per
// frame; the cached path pays one flow-cache shard read. The 64B rows
// are the acceptance pair: cached must be ≥1.5× uncached goodput
// (pinned via the flowbench ratio records in the benchguard baseline,
// which this benchmark mirrors).
func BenchmarkOverlayFlowCache(b *testing.B) {
	for _, mode := range []struct {
		name     string
		disabled bool
	}{{"cached", false}, {"uncached", true}} {
		for _, payload := range []int{64, 1500} {
			b.Run(fmt.Sprintf("%s/%dB", mode.name, payload), func(b *testing.B) {
				benchFlowPath(b, payload, mode.disabled)
			})
		}
	}
}

func benchFlowPath(b *testing.B, payload int, disabled bool) {
	n, err := NewNodeWithConfig("flowbench", "127.0.0.1:0",
		NodeConfig{FlowCacheDisabled: disabled})
	if err != nil {
		b.Fatal(err)
	}
	defer n.Close()

	const senders = 4
	// Window strictly under the endpoint RX ring (256): the ring never
	// overruns, so no frame drops and goodput counts every frame.
	const window = 128
	type lane struct {
		src, dst  *Endpoint
		delivered atomic.Uint64
	}
	lanes := make([]*lane, senders)
	quit := make(chan struct{})
	var drains sync.WaitGroup
	for i := 0; i < senders; i++ {
		l := &lane{}
		if l.src, err = n.AttachEndpoint(fmt.Sprintf("src%d", i), ethernet.LocalMAC(uint32(1+i)), ethernet.JumboMTU); err != nil {
			b.Fatal(err)
		}
		if l.dst, err = n.AttachEndpoint(fmt.Sprintf("dst%d", i), ethernet.LocalMAC(uint32(100+i)), ethernet.JumboMTU); err != nil {
			b.Fatal(err)
		}
		n.AddRoute(core.Route{DstMAC: l.dst.MAC(), DstQual: core.QualExact, SrcQual: core.QualAny,
			Dest: core.Destination{Type: core.DestInterface, ID: fmt.Sprintf("dst%d", i)}})
		lanes[i] = l
		drains.Add(1)
		go func(l *lane) {
			defer drains.Done()
			for {
				if _, ok := l.dst.TryRecv(); ok {
					l.delivered.Add(1)
					continue
				}
				select {
				case <-quit:
					return
				default:
					runtime.Gosched()
				}
			}
		}(l)
	}

	per := (b.N + senders - 1) / senders
	b.SetBytes(int64(payload))
	b.ResetTimer()
	var wg sync.WaitGroup
	for _, l := range lanes {
		wg.Add(1)
		go func(l *lane) {
			defer wg.Done()
			// Batched sends (the virtio DrainTX shape): per-frame cost is
			// the routing stage itself, not Send's per-call bookkeeping.
			const chunk = 32
			batch := make([]*ethernet.Frame, chunk)
			for i := range batch {
				batch[i] = &ethernet.Frame{Dst: l.dst.MAC(), Src: l.src.MAC(),
					Type: ethernet.TypeTest, Payload: make([]byte, payload)}
			}
			for k := 0; k < per; k += chunk {
				m := chunk
				if per-k < m {
					m = per - k
				}
				// Window pacing on this lane's delivery counter.
				for uint64(k)-l.delivered.Load() >= window-chunk {
					runtime.Gosched()
				}
				if err := l.src.SendBatch(batch[:m]); err != nil {
					b.Error(err)
					return
				}
			}
			for l.delivered.Load() < uint64(per) {
				runtime.Gosched()
			}
		}(l)
	}
	wg.Wait()
	b.StopTimer()
	close(quit)
	drains.Wait()
}
