package overlay_test

import (
	"bytes"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"vnetp/internal/core"
	"vnetp/internal/ethernet"
	"vnetp/internal/faultnet"
	"vnetp/internal/overlay"
	"vnetp/internal/seal"
)

// tenantKey returns a deterministic test key for a tenant.
func tenantKey(t *testing.T, b byte) []byte {
	t.Helper()
	key := bytes.Repeat([]byte{b}, seal.KeyLen)
	return key
}

// statValue digs one counter out of a node's LIST STATS lines.
func sealStat(t *testing.T, n *overlay.Node, key string) uint64 {
	t.Helper()
	for _, line := range n.Stats() {
		f := strings.Fields(line)
		if len(f) == 2 && f[0] == key {
			v, err := strconv.ParseUint(f[1], 10, 64)
			if err != nil {
				t.Fatalf("bad stat line %q: %v", line, err)
			}
			return v
		}
	}
	t.Fatalf("stat %q missing", key)
	return 0
}

// sealedPair builds two nodes sharing tenant 7's key, with tenant-bound
// endpoints, sealed links both ways, and tenant routes.
func sealedPair(t *testing.T, cfg overlay.NodeConfig) (*overlay.Node, *overlay.Node, *overlay.Endpoint, *overlay.Endpoint) {
	t.Helper()
	na, err := overlay.NewNodeWithConfig("seal-a", "127.0.0.1:0", cfg)
	if err != nil {
		t.Fatal(err)
	}
	nb, err := overlay.NewNodeWithConfig("seal-b", "127.0.0.1:0", cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { na.Close(); nb.Close() })

	key := tenantKey(t, 0x42)
	for _, n := range []*overlay.Node{na, nb} {
		if err := n.AddTenant(7, key); err != nil {
			t.Fatal(err)
		}
	}
	macA, macB := ethernet.LocalMAC(1), ethernet.LocalMAC(2)
	epA, err := na.AttachEndpointTenant("nic0", macA, 9000, 7)
	if err != nil {
		t.Fatal(err)
	}
	epB, err := nb.AttachEndpointTenant("nic0", macB, 9000, 7)
	if err != nil {
		t.Fatal(err)
	}
	if err := na.AddLinkTenant("to-b", nb.Addr(), "udp", 7); err != nil {
		t.Fatal(err)
	}
	if err := nb.AddLinkTenant("to-a", na.Addr(), "udp", 7); err != nil {
		t.Fatal(err)
	}
	if err := na.AddRoute(core.Route{DstMAC: macB, DstQual: core.QualExact, SrcQual: core.QualAny,
		Dest: core.Destination{Type: core.DestLink, ID: "to-b"}, Tenant: 7}); err != nil {
		t.Fatal(err)
	}
	if err := nb.AddRoute(core.Route{DstMAC: macA, DstQual: core.QualExact, SrcQual: core.QualAny,
		Dest: core.Destination{Type: core.DestLink, ID: "to-a"}, Tenant: 7}); err != nil {
		t.Fatal(err)
	}
	return na, nb, epA, epB
}

func TestSealedLinkEndToEnd(t *testing.T) {
	na, nb, epA, epB := sealedPair(t, overlay.NodeConfig{})
	epA.Send(&ethernet.Frame{Dst: epB.MAC(), Src: epA.MAC(), Type: ethernet.TypeTest, Payload: []byte("sealed ping")})
	got, ok := epB.Recv(recvTimeout)
	if !ok || string(got.Payload) != "sealed ping" {
		t.Fatal("sealed frame lost")
	}
	epB.Send(&ethernet.Frame{Dst: epA.MAC(), Src: epB.MAC(), Type: ethernet.TypeTest, Payload: []byte("sealed pong")})
	if got, ok := epA.Recv(recvTimeout); !ok || string(got.Payload) != "sealed pong" {
		t.Fatal("sealed reply lost")
	}
	// A jumbo frame fragments; every fragment is sealed independently.
	big := bytes.Repeat([]byte{0x7e}, 8000)
	epA.Send(&ethernet.Frame{Dst: epB.MAC(), Src: epA.MAC(), Type: ethernet.TypeTest, Payload: big})
	if got, ok := epB.Recv(recvTimeout); !ok || !bytes.Equal(got.Payload, big) {
		t.Fatal("sealed jumbo frame corrupted or lost")
	}
	if v := sealStat(t, na, "sealed_sent"); v < 7 { // ping + >=6 jumbo fragments
		t.Fatalf("sealed_sent = %d", v)
	}
	if v := sealStat(t, nb, "sealed_opened"); v < 7 {
		t.Fatalf("sealed_opened = %d", v)
	}
	if v := sealStat(t, nb, "seal_rejects"); v != 0 {
		t.Fatalf("seal_rejects = %d on a clean path", v)
	}
	if v := sealStat(t, na, "tenants"); v != 1 {
		t.Fatalf("tenants = %d", v)
	}
}

func TestSealedLinkBatchedTX(t *testing.T) {
	_, nb, epA, epB := sealedPair(t, overlay.NodeConfig{TxBatch: 8})
	const count = 40
	for i := 0; i < count; i++ {
		epA.Send(&ethernet.Frame{Dst: epB.MAC(), Src: epA.MAC(), Type: ethernet.TypeTest,
			Payload: []byte(fmt.Sprintf("batch-%d", i))})
	}
	for i := 0; i < count; i++ {
		if _, ok := epB.Recv(recvTimeout); !ok {
			t.Fatalf("frame %d lost on batched sealed path", i)
		}
	}
	if v := sealStat(t, nb, "sealed_opened"); v < count {
		t.Fatalf("sealed_opened = %d, want >= %d", v, count)
	}
}

// TestMultiTenantIsolation is the acceptance scenario: two tenants share
// the same two nodes — and even the same MAC addresses — exchanging
// traffic concurrently, and neither ever receives a frame of the other.
func TestMultiTenantIsolation(t *testing.T) {
	na, err := overlay.NewNode("mt-a", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	nb, err := overlay.NewNode("mt-b", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { na.Close(); nb.Close() })

	// Both tenants use the same MAC pair: isolation must come from the
	// per-tenant namespaces, not from address uniqueness.
	macA, macB := ethernet.LocalMAC(1), ethernet.LocalMAC(2)
	type side struct {
		a, b *overlay.Endpoint
	}
	tenants := map[uint32]*side{7: {}, 9: {}}
	for id, s := range tenants {
		key := tenantKey(t, byte(id))
		if err := na.AddTenant(id, key); err != nil {
			t.Fatal(err)
		}
		if err := nb.AddTenant(id, key); err != nil {
			t.Fatal(err)
		}
		nicA, nicB := fmt.Sprintf("t%d-a", id), fmt.Sprintf("t%d-b", id)
		if s.a, err = na.AttachEndpointTenant(nicA, macA, 9000, id); err != nil {
			t.Fatal(err)
		}
		if s.b, err = nb.AttachEndpointTenant(nicB, macB, 9000, id); err != nil {
			t.Fatal(err)
		}
		linkAB, linkBA := fmt.Sprintf("t%d-to-b", id), fmt.Sprintf("t%d-to-a", id)
		if err := na.AddLinkTenant(linkAB, nb.Addr(), "udp", id); err != nil {
			t.Fatal(err)
		}
		if err := nb.AddLinkTenant(linkBA, na.Addr(), "udp", id); err != nil {
			t.Fatal(err)
		}
		if err := na.AddRoute(core.Route{DstMAC: macB, DstQual: core.QualExact, SrcQual: core.QualAny,
			Dest: core.Destination{Type: core.DestLink, ID: linkAB}, Tenant: id}); err != nil {
			t.Fatal(err)
		}
		if err := nb.AddRoute(core.Route{DstMAC: macA, DstQual: core.QualExact, SrcQual: core.QualAny,
			Dest: core.Destination{Type: core.DestLink, ID: linkBA}, Tenant: id}); err != nil {
			t.Fatal(err)
		}
	}

	// Both tenants blast concurrently, A-side to B-side.
	const perTenant = 50
	var wg sync.WaitGroup
	for id, s := range tenants {
		id, s := id, s
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perTenant; i++ {
				s.a.Send(&ethernet.Frame{Dst: macB, Src: macA, Type: ethernet.TypeTest,
					Payload: []byte(fmt.Sprintf("tenant-%d msg-%d", id, i))})
			}
		}()
	}
	wg.Wait()

	for id, s := range tenants {
		prefix := fmt.Sprintf("tenant-%d ", id)
		for i := 0; i < perTenant; i++ {
			got, ok := s.b.Recv(recvTimeout)
			if !ok {
				t.Fatalf("tenant %d: frame %d lost", id, i)
			}
			if !strings.HasPrefix(string(got.Payload), prefix) {
				t.Fatalf("tenant %d received cross-tenant frame %q", id, got.Payload)
			}
		}
		// Nothing else arrives: exactly perTenant frames per tenant.
		if f, ok := s.b.Recv(200 * time.Millisecond); ok {
			t.Fatalf("tenant %d: extra frame %q", id, f.Payload)
		}
	}
	if v := sealStat(t, nb, "sealed_opened"); v < 2*perTenant {
		t.Fatalf("sealed_opened = %d, want >= %d", v, 2*perTenant)
	}
}

// TestSealedTamperRejected is the on-path tamper scenario: a conduit
// flipping a byte of every datagram on the sealed link. Every tampered
// datagram must be rejected (seal_rejects rises) and nothing delivered.
func TestSealedTamperRejected(t *testing.T) {
	na, nb, epA, epB := sealedPair(t, overlay.NodeConfig{})
	if err := na.SetLinkFault("to-b", faultnet.New(faultnet.Config{CorruptProb: 1})); err != nil {
		t.Fatal(err)
	}
	const count = 20
	for i := 0; i < count; i++ {
		epA.Send(&ethernet.Frame{Dst: epB.MAC(), Src: epA.MAC(), Type: ethernet.TypeTest,
			Payload: []byte(fmt.Sprintf("tampered-%d", i))})
	}
	// Rejection is fail-closed: no frame may surface at B.
	if f, ok := epB.Recv(500 * time.Millisecond); ok {
		t.Fatalf("tampered frame delivered: %q", f.Payload)
	}
	deadline := time.Now().Add(recvTimeout)
	for {
		if sealStat(t, nb, "seal_rejects") >= count {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("seal_rejects = %d, want >= %d", sealStat(t, nb, "seal_rejects"), count)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if v := sealStat(t, nb, "sealed_opened"); v != 0 {
		t.Fatalf("sealed_opened = %d on an all-tampered path", v)
	}
	if v := sealStat(t, nb, "delivered"); v != 0 {
		t.Fatalf("delivered = %d on an all-tampered path", v)
	}
}

// TestSealedReplayRejected duplicates every datagram on the wire: the
// originals deliver, the replays die in the replay window.
func TestSealedReplayRejected(t *testing.T) {
	na, nb, epA, epB := sealedPair(t, overlay.NodeConfig{})
	if err := na.SetLinkFault("to-b", faultnet.New(faultnet.Config{DupProb: 1})); err != nil {
		t.Fatal(err)
	}
	const count = 10
	for i := 0; i < count; i++ {
		epA.Send(&ethernet.Frame{Dst: epB.MAC(), Src: epA.MAC(), Type: ethernet.TypeTest,
			Payload: []byte(fmt.Sprintf("dup-%d", i))})
	}
	for i := 0; i < count; i++ {
		if _, ok := epB.Recv(recvTimeout); !ok {
			t.Fatalf("original frame %d lost", i)
		}
	}
	if f, ok := epB.Recv(300 * time.Millisecond); ok {
		t.Fatalf("replayed frame delivered twice: %q", f.Payload)
	}
	deadline := time.Now().Add(recvTimeout)
	for sealStat(t, nb, "seal_rejects") < count {
		if time.Now().After(deadline) {
			t.Fatalf("seal_rejects = %d, want >= %d (replays)", sealStat(t, nb, "seal_rejects"), count)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestTenantFailClosed covers the control-plane edges: links and routes
// for tenants without keys refuse, and LIST TENANTS never leaks keys.
func TestTenantFailClosed(t *testing.T) {
	n, err := overlay.NewNode("fc", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	if err := n.AddLinkTenant("l1", "127.0.0.1:9", "udp", 3); err == nil {
		t.Fatal("tenant link without a key accepted")
	}
	if err := n.AddRoute(core.Route{DstQual: core.QualAny, SrcQual: core.QualAny,
		Dest: core.Destination{Type: core.DestLink, ID: "l"}, Tenant: 3}); err == nil {
		t.Fatal("route for unknown tenant accepted")
	}
	key := tenantKey(t, 0x11)
	if err := n.AddTenant(3, key); err != nil {
		t.Fatal(err)
	}
	if err := n.AddLinkTenant("l1", "127.0.0.1:9", "udp", 3); err != nil {
		t.Fatalf("tenant link after AddTenant: %v", err)
	}
	sum := strings.Join(n.TenantSummary(), "\n")
	if !strings.Contains(sum, "TENANT 3") {
		t.Fatalf("summary missing tenant: %q", sum)
	}
	if strings.Contains(sum, strings.Repeat("11", seal.KeyLen)) {
		t.Fatalf("summary leaks key material: %q", sum)
	}
	if !strings.Contains(sum, seal.Fingerprint(key)) {
		t.Fatalf("summary missing fingerprint: %q", sum)
	}
}
