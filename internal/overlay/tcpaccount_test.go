package overlay

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"net"
	"testing"
	"time"
)

// scriptConn is a minimal net.Conn whose Write fails from the failOn-th
// call onward (1-based; 0 never fails), for pinning tcpConn's batch
// accounting deterministically.
type scriptConn struct {
	wire   bytes.Buffer
	writes int
	failOn int
}

func (c *scriptConn) Write(p []byte) (int, error) {
	c.writes++
	if c.failOn > 0 && c.writes >= c.failOn {
		return 0, errors.New("scripted write failure")
	}
	return c.wire.Write(p)
}

func (c *scriptConn) Read([]byte) (int, error)         { return 0, errors.New("not readable") }
func (c *scriptConn) Close() error                     { return nil }
func (c *scriptConn) LocalAddr() net.Addr              { return nil }
func (c *scriptConn) RemoteAddr() net.Addr             { return nil }
func (c *scriptConn) SetDeadline(time.Time) error      { return nil }
func (c *scriptConn) SetReadDeadline(time.Time) error  { return nil }
func (c *scriptConn) SetWriteDeadline(time.Time) error { return nil }

func newScriptTCP(failOn int) (*tcpConn, *scriptConn) {
	sc := &scriptConn{failOn: failOn}
	return &tcpConn{conn: sc, w: bufio.NewWriter(sc)}, sc
}

// TestSendDatagramsConfirmsWholeBatchOnSuccess: a clean batch returns
// len(ds) and the wire carries every datagram length-prefixed in order.
func TestSendDatagramsConfirmsWholeBatchOnSuccess(t *testing.T) {
	c, sc := newScriptTCP(0)
	ds := [][]byte{[]byte("alpha"), []byte("bravo"), []byte("charlie-longer")}
	sent, err := c.sendDatagrams(ds)
	if err != nil || sent != len(ds) {
		t.Fatalf("sendDatagrams = (%d, %v), want (%d, nil)", sent, err, len(ds))
	}
	var want bytes.Buffer
	var hdr [4]byte
	for _, d := range ds {
		binary.BigEndian.PutUint32(hdr[:], uint32(len(d)))
		want.Write(hdr[:])
		want.Write(d)
	}
	if !bytes.Equal(sc.wire.Bytes(), want.Bytes()) {
		t.Fatalf("wire bytes mismatch:\n got % x\nwant % x", sc.wire.Bytes(), want.Bytes())
	}
}

// TestSendDatagramsFlushFailureConfirmsNothing: when every datagram fits
// in the buffered writer and the single final flush fails, nothing was
// confirmed onto the wire — the count must be zero, so the whole batch
// is charged to send_errors, exactly like a UDP batch whose one sendmmsg
// fails outright.
func TestSendDatagramsFlushFailureConfirmsNothing(t *testing.T) {
	c, _ := newScriptTCP(1) // first write (the final flush) fails
	ds := [][]byte{[]byte("aa"), []byte("bb"), []byte("cc")}
	sent, err := c.sendDatagrams(ds)
	if err == nil {
		t.Fatal("sendDatagrams succeeded through a dead conn")
	}
	if sent != 0 {
		t.Fatalf("sent = %d after a failed final flush, want 0 (nothing confirmed)", sent)
	}
}

// TestSendDatagramsMidBatchErrorCreditsPriorDatagrams: datagrams big
// enough to overflow the 4KiB buffered writer force an implicit flush
// mid-batch. The first flush succeeds (datagram 0 reaches the wire), the
// second fails while starting datagram 2 — so exactly the datagrams the
// writer accepted before the error are credited and the rest are the
// caller's to count as errors.
func TestSendDatagramsMidBatchErrorCreditsPriorDatagrams(t *testing.T) {
	c, sc := newScriptTCP(2) // first flush succeeds, second fails
	big := make([]byte, 3000)
	ds := [][]byte{big, big, big}
	sent, err := c.sendDatagrams(ds)
	if err == nil {
		t.Fatal("sendDatagrams succeeded through a failing conn")
	}
	if sent != 2 {
		t.Fatalf("sent = %d on a mid-batch write error, want 2", sent)
	}
	if sc.wire.Len() == 0 {
		t.Fatal("no bytes reached the wire before the scripted failure")
	}
}

// TestSendBatchUDPFallbackPartial pins the portable UDP loop's partial
// accounting, the contract the TCP path now mirrors: a failure at
// datagram i reports i confirmed.
func TestSendBatchUDPFallbackPartial(t *testing.T) {
	conn, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	peer, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	defer peer.Close()
	ds := [][]byte{[]byte("one"), []byte("two")}
	sent, err := sendBatchUDPFallback(conn, ds, peer.LocalAddr().(*net.UDPAddr))
	if err != nil || sent != 2 {
		t.Fatalf("fallback over live sockets = (%d, %v), want (2, nil)", sent, err)
	}
	// An oversized datagram fails the kernel write; everything before it
	// was already confirmed.
	huge := make([]byte, 1<<20)
	sent, err = sendBatchUDPFallback(conn, [][]byte{[]byte("ok"), huge, []byte("never")},
		peer.LocalAddr().(*net.UDPAddr))
	if err == nil {
		t.Skip("kernel accepted a 1MiB UDP datagram; partial-failure path not reachable here")
	}
	if sent != 1 {
		t.Fatalf("fallback partial = %d, want 1 (only the datagram before the failure)", sent)
	}
}
