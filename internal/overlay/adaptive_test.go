package overlay_test

import (
	"context"
	"fmt"
	"runtime"
	"strings"
	"testing"
	"time"

	"vnetp/internal/control"
	"vnetp/internal/core"
	"vnetp/internal/ethernet"
	"vnetp/internal/overlay"
	"vnetp/internal/trace"
)

// adaptiveCfg is a sender config with the controller tuned for test
// speed: thresholds low enough that a blast loop crosses α_u and an
// idle link falls under α_l within a few milliseconds.
func adaptiveCfg() overlay.NodeConfig {
	return overlay.NodeConfig{
		TxBatch: 8, TxRing: 4096, TxFlushTimeout: 200 * time.Microsecond,
		Adaptive: overlay.AdaptiveConfig{
			Enabled: true,
			AlphaL:  500, AlphaU: 2000,
			Omega: 2 * time.Millisecond, HoldDown: 6 * time.Millisecond,
		},
	}
}

// famValue reads the first sample of a registry family straight from a
// node's telemetry (no HTTP round trip), for tight polling loops.
func famValue(n *overlay.Node, name string) float64 {
	for _, fam := range n.Telemetry().Gather() {
		if fam.Name == name && len(fam.Samples) > 0 {
			return fam.Samples[0].Value
		}
	}
	return -1
}

// waitForValue polls until cond holds or the deadline passes.
func waitForValue(t *testing.T, cond func() bool, what string) {
	t.Helper()
	deadline := time.Now().Add(recvTimeout)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timeout waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// blast starts a goroutine flooding epA with frames for epB until the
// returned stop function is called.
func blast(epA, epB *overlay.Endpoint) (stop func()) {
	quit := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		f := &ethernet.Frame{
			Dst: epB.MAC(), Src: epA.MAC(), Type: ethernet.TypeTest,
			Payload: make([]byte, 64),
		}
		for {
			select {
			case <-quit:
				return
			default:
				epA.Send(f)
				runtime.Gosched()
			}
		}
	}()
	return func() { close(quit); <-done }
}

// TestAdaptiveModeSwitchesUnderLoad is the live acceptance path: a link
// on an adaptive node starts in latency mode, a blast drives it into
// throughput mode, quiescence brings it back, and the switch counter in
// a real /metrics scrape shows both transitions.
func TestAdaptiveModeSwitchesUnderLoad(t *testing.T) {
	na, _, epA, epB := batchNodes(t, adaptiveCfg(),
		overlay.NodeConfig{QueueDepth: 8192}, "udp")

	if m := famValue(na, "vnetp_dispatch_mode"); m != 0 {
		t.Fatalf("initial dispatch mode = %v, want 0 (latency)", m)
	}
	stop := blast(epA, epB)
	waitForValue(t, func() bool { return famValue(na, "vnetp_dispatch_mode") == 1 },
		"upswitch to throughput mode under load")
	stop()
	waitForValue(t, func() bool { return famValue(na, "vnetp_dispatch_mode") == 0 },
		"downswitch to latency mode after quiescence")

	scrape := scrapeMetrics(t, na)
	if !strings.Contains(scrape, `vnetp_dispatch_mode{link="to-b"}`) {
		t.Fatal("per-link dispatch mode gauge missing from scrape")
	}
	if sw := metricValue(t, scrape, `vnetp_dispatch_mode_switches_total{link="to-b"}`); sw < 2 {
		t.Fatalf("vnetp_dispatch_mode_switches_total = %v, want >= 2 (up and back down)", sw)
	}
	if fr := metricValue(t, scrape, `vnetp_link_tx_frames_total{link="to-b"}`); fr < 1 {
		t.Fatalf("vnetp_link_tx_frames_total = %v, want >= 1", fr)
	}
}

// TestAdaptiveSurvivesControllerRestart panics the supervised controller
// mid-flight and pins that (a) the link's mode is preserved across the
// restart — controller state lives on the link, not the goroutine — and
// (b) the relaunched instance keeps driving rate-based switches.
func TestAdaptiveSurvivesControllerRestart(t *testing.T) {
	na, _, epA, epB := batchNodes(t, adaptiveCfg(),
		overlay.NodeConfig{QueueDepth: 8192}, "udp")

	stop := blast(epA, epB)
	waitForValue(t, func() bool { return famValue(na, "vnetp_dispatch_mode") == 1 },
		"upswitch under load")

	w := na.Runtime().Worker("adaptive")
	if w == nil {
		t.Fatal("no supervised worker named \"adaptive\"")
	}
	w.InjectPanic()
	time.Sleep(20 * time.Millisecond) // let the panic land and the relaunch settle
	// Mode state lives on the link, so the restart itself never resets it;
	// a starved blast goroutine can still downswitch legitimately, so wait
	// for the relaunched controller to (re)assert throughput mode rather
	// than asserting an instant.
	waitForValue(t, func() bool { return famValue(na, "vnetp_dispatch_mode") == 1 },
		"restarted controller to hold throughput mode under load")
	stop()
	waitForValue(t, func() bool { return famValue(na, "vnetp_dispatch_mode") == 0 },
		"restarted controller to downswitch after quiescence")

	scrape := scrapeMetrics(t, na)
	if r := metricValue(t, scrape, `vnetp_component_restarts_total{component="adaptive"}`); r < 1 {
		t.Fatalf("adaptive component restarts = %v, want >= 1", r)
	}
}

// TestAdaptiveSurvivesLinkChurnAndDrain replaces the controlled link
// mid-run (fresh controller, counters restarted from zero — the resync
// path in adaptLoop) and then drains the node, pinning that the
// controller neither wedges the drain nor trips over the churn.
func TestAdaptiveSurvivesLinkChurnAndDrain(t *testing.T) {
	na, nb, epA, epB := batchNodes(t, adaptiveCfg(),
		overlay.NodeConfig{QueueDepth: 8192}, "udp")

	stop := blast(epA, epB)
	waitForValue(t, func() bool { return famValue(na, "vnetp_dispatch_mode") == 1 },
		"upswitch under load")
	stop()

	if err := na.DelLink("to-b"); err != nil {
		t.Fatal(err)
	}
	if err := na.AddLink("to-b", nb.Addr(), "udp"); err != nil {
		t.Fatal(err)
	}
	// DelLink removed the routes pointing at the link; restore the path.
	na.AddRoute(core.Route{DstMAC: epB.MAC(), DstQual: core.QualExact, SrcQual: core.QualAny,
		Dest: core.Destination{Type: core.DestLink, ID: "to-b"}})
	// The replacement starts a fresh controller in latency mode.
	if m := famValue(na, "vnetp_dispatch_mode"); m != 0 {
		t.Fatalf("replaced link's dispatch mode = %v, want 0 (latency)", m)
	}
	stop = blast(epA, epB)
	waitForValue(t, func() bool { return famValue(na, "vnetp_dispatch_mode") == 1 },
		"controller to pick the replaced link up and upswitch it")
	stop()

	ctx, cancel := context.WithTimeout(context.Background(), recvTimeout)
	defer cancel()
	if _, err := na.Drain(ctx); err != nil {
		t.Fatalf("drain with adaptive controller running: %v", err)
	}
}

// TestLinkTuneControlVerbs drives the full LINK TUNE / LIST TUNING
// surface through control.Parse + control.Apply against a live adaptive
// node: pinning, release to auto, and the rendered summary.
func TestLinkTuneControlVerbs(t *testing.T) {
	na, _, _, _ := batchNodes(t, adaptiveCfg(), overlay.NodeConfig{}, "udp")

	apply := func(line string) ([]string, error) {
		t.Helper()
		cmd, err := control.Parse(line)
		if err != nil {
			t.Fatalf("Parse(%q): %v", line, err)
		}
		return control.Apply(na, cmd)
	}

	if _, err := apply("LINK TUNE to-b THROUGHPUT"); err != nil {
		t.Fatalf("LINK TUNE THROUGHPUT: %v", err)
	}
	if m := famValue(na, "vnetp_dispatch_mode"); m != 1 {
		t.Fatalf("mode after pin = %v, want 1 (throughput)", m)
	}
	out, err := apply("LIST TUNING")
	if err != nil {
		t.Fatalf("LIST TUNING: %v", err)
	}
	if len(out) != 1 || !strings.Contains(out[0], "to-b mode=throughput source=pinned") {
		t.Fatalf("LIST TUNING = %q, want pinned throughput line for to-b", out)
	}

	if _, err := apply("LINK TUNE to-b AUTO"); err != nil {
		t.Fatalf("LINK TUNE AUTO: %v", err)
	}
	out, _ = apply("LIST TUNING")
	if len(out) != 1 || !strings.Contains(out[0], "source=auto") {
		t.Fatalf("LIST TUNING after AUTO = %q, want source=auto", out)
	}
	// An idle released link falls back to latency mode by rate.
	waitForValue(t, func() bool { return famValue(na, "vnetp_dispatch_mode") == 0 },
		"released link to downswitch by rate")

	if _, err := apply("LINK TUNE no-such-link LATENCY"); err == nil {
		t.Fatal("LINK TUNE on a missing link succeeded")
	}
}

// TestLinkTuneStaticAndSyncLinks pins the non-adaptive corners: a
// batched link without a controller accepts direct latency/throughput
// retunes but rejects AUTO, and a synchronous (TxBatch=1) link rejects
// tuning entirely while LIST TUNING reports it as synchronous.
func TestLinkTuneStaticAndSyncLinks(t *testing.T) {
	// Static batched link: TxBatch > 1, adaptive off.
	na, _, _, _ := batchNodes(t,
		overlay.NodeConfig{TxBatch: 8, TxFlushTimeout: 200 * time.Microsecond},
		overlay.NodeConfig{}, "udp")
	if err := na.SetLinkTune("to-b", "latency"); err != nil {
		t.Fatalf("static link tune to latency: %v", err)
	}
	if m := famValue(na, "vnetp_dispatch_mode"); m != 0 {
		t.Fatalf("static link mode = %v after latency tune, want 0", m)
	}
	if err := na.SetLinkTune("to-b", "throughput"); err != nil {
		t.Fatalf("static link tune to throughput: %v", err)
	}
	if err := na.SetLinkTune("to-b", "auto"); err == nil {
		t.Fatal("AUTO on a static link succeeded; want an error (no controller)")
	}
	sum := na.TuningSummary()
	if len(sum) != 1 || !strings.Contains(sum[0], "source=static") {
		t.Fatalf("static TuningSummary = %q, want source=static", sum)
	}

	// Synchronous link: no TX ring at all.
	ns, _, _, _ := batchNodes(t, overlay.NodeConfig{}, overlay.NodeConfig{}, "udp")
	if err := ns.SetLinkTune("to-b", "latency"); err == nil ||
		!strings.Contains(err.Error(), "synchronous") {
		t.Fatalf("sync link tune error = %v, want synchronous-path rejection", err)
	}
	sum = ns.TuningSummary()
	if len(sum) != 1 || sum[0] != "to-b mode=synchronous" {
		t.Fatalf("sync TuningSummary = %q, want \"to-b mode=synchronous\"", sum)
	}
}

// TestTxLoopTeardownCountsBatchDrops is the bugfix-1 regression: frames
// the sender had already collected into its in-hand batch when the node
// closed were silently discarded; now they land in tx_ring_drops.
func TestTxLoopTeardownCountsBatchDrops(t *testing.T) {
	na, _, epA, epB := batchNodes(t,
		overlay.NodeConfig{TxBatch: 64, TxFlushTimeout: 10 * time.Second},
		overlay.NodeConfig{}, "udp")
	const frames = 5
	for i := 0; i < frames; i++ {
		f := &ethernet.Frame{Dst: epB.MAC(), Src: epA.MAC(), Type: ethernet.TypeTest,
			Payload: []byte(fmt.Sprintf("stranded %d", i))}
		if err := epA.Send(f); err != nil {
			t.Fatal(err)
		}
	}
	// The sender pops all five into its batch (ring empties) and then
	// waits on the 10s flush timer, far past this test's lifetime.
	waitForValue(t, func() bool { return famValue(na, "vnetp_link_tx_queue_depth") == 0 },
		"sender to collect the stranded batch")
	if d := famValue(na, "vnetp_link_tx_ring_drops_total"); d != 0 {
		t.Fatalf("tx_ring_drops = %v before close, want 0", d)
	}
	na.Close()
	if d := famValue(na, "vnetp_link_tx_ring_drops_total"); d != frames {
		t.Fatalf("tx_ring_drops = %v after close, want %d (the abandoned in-hand batch)", d, frames)
	}
}

// TestDrainCountsSenderBatchDrops is bugfix 1's drain half: DrainStats
// previously computed FramesDropped from ring occupancy alone, so
// frames lost from a sender's in-hand batch went unreported in the
// vnetpd shutdown summary.
func TestDrainCountsSenderBatchDrops(t *testing.T) {
	na, _, epA, epB := batchNodes(t,
		overlay.NodeConfig{TxBatch: 64, TxFlushTimeout: 10 * time.Second},
		overlay.NodeConfig{}, "udp")
	const frames = 5
	for i := 0; i < frames; i++ {
		f := &ethernet.Frame{Dst: epB.MAC(), Src: epA.MAC(), Type: ethernet.TypeTest,
			Payload: []byte("never flushed")}
		if err := epA.Send(f); err != nil {
			t.Fatal(err)
		}
	}
	waitForValue(t, func() bool { return famValue(na, "vnetp_link_tx_queue_depth") == 0 },
		"sender to collect the stranded batch")
	// The rings are empty (the frames sit in the sender's batch), so the
	// flush phase sees nothing queued; the deadline just bounds the
	// settle wait driven by the long flush timeout.
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	st, _ := na.Drain(ctx)
	if st.FramesDropped != frames {
		t.Fatalf("DrainStats.FramesDropped = %d, want %d (sender batch folded in)", st.FramesDropped, frames)
	}
}

// TestEncapFailureSkipsWireTxTrace is the bugfix-2 regression: a traced
// frame whose encapsulation fails used to be stamped with a wire_tx hop
// and a TX latency sample anyway. A Pad of -1 passes the endpoint's MTU
// check but fails ethernet.Frame.Marshal inside the batch encap loop.
func TestEncapFailureSkipsWireTxTrace(t *testing.T) {
	na, _, epA, epB := batchNodes(t,
		overlay.NodeConfig{TxBatch: 4, TxFlushTimeout: 100 * time.Microsecond, TraceSample: 1},
		overlay.NodeConfig{}, "udp")
	bad := &ethernet.Frame{
		Dst: epB.MAC(), Src: epA.MAC(), Type: ethernet.TypeTest,
		Payload: []byte("doomed"), Pad: -1,
	}
	if err := epA.Send(bad); err != nil {
		t.Fatalf("Send should accept the frame (encap fails later): %v", err)
	}
	waitForValue(t, func() bool { return famValue(na, "vnetp_link_send_errors_total") == 1 },
		"encap failure to be counted")

	paths := na.Tracer().Traces()
	if len(paths) == 0 {
		t.Fatal("frame was not traced at all")
	}
	enqueued := false
	for _, p := range paths {
		for _, h := range p.Hops {
			switch h.Stage {
			case trace.StageTxEnqueue:
				enqueued = true
			case trace.StageWireTx, trace.StageEncap:
				t.Fatalf("trace %016x has a %s hop for a frame that never encapsulated", p.Tag, h.Stage)
			}
		}
	}
	if !enqueued {
		t.Fatal("trace shows no tx_enqueue hop; the frame never reached the batched path")
	}
	scrape := scrapeMetrics(t, na)
	if c := metricValue(t, scrape, "vnetp_tx_latency_seconds_count"); c != 0 {
		t.Fatalf("tx latency histogram counted %v samples for a frame that never hit the wire", c)
	}
}

// TestTCPDialFailureChargesWholeBatch pins the documented TCP
// accounting rule's failed-dial corner: no datagram was confirmed, so
// the whole batch lands in send_errors and none of it in bytes_sent —
// matching what the UDP path reports when the socket write fails
// outright.
func TestTCPDialFailureChargesWholeBatch(t *testing.T) {
	na, err := overlay.NewNodeWithConfig("a", "127.0.0.1:0",
		overlay.NodeConfig{TxBatch: 4, TxFlushTimeout: 100 * time.Microsecond})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { na.Close() })
	epA, err := na.AttachEndpoint("nic0", ethernet.LocalMAC(1), 9000)
	if err != nil {
		t.Fatal(err)
	}
	// 127.0.0.1:1 refuses immediately: the dial fails before anything is
	// written.
	if err := na.AddLink("to-void", "127.0.0.1:1", "tcp"); err != nil {
		t.Fatal(err)
	}
	dst := ethernet.LocalMAC(2)
	na.AddRoute(core.Route{DstMAC: dst, DstQual: core.QualExact, SrcQual: core.QualAny,
		Dest: core.Destination{Type: core.DestLink, ID: "to-void"}})
	const frames = 4
	for i := 0; i < frames; i++ {
		f := &ethernet.Frame{Dst: dst, Src: epA.MAC(), Type: ethernet.TypeTest,
			Payload: []byte("unreachable")}
		if err := epA.Send(f); err != nil {
			t.Fatal(err)
		}
	}
	waitForValue(t, func() bool { return famValue(na, "vnetp_link_send_errors_total") >= frames },
		"failed dial to charge the batch to send_errors")
	if b := famValue(na, "vnetp_link_bytes_sent_total"); b != 0 {
		t.Fatalf("bytes_sent = %v after a failed dial, want 0 (nothing confirmed)", b)
	}
}

// BenchmarkOverlayAdaptiveDispatch is the acceptance benchmark: the
// adaptive configuration must track the better static mode on both ends
// of the load spectrum — idle one-way latency near the synchronous
// batch=1 path, loaded throughput near the static batch=32 path. The
// loaded sub-benchmarks report wire throughput (window-paced like
// BenchmarkOverlayTxBatching); the idle ones pace sends well under α_l
// and report the measured one-way latency as latency-ns/op.
func BenchmarkOverlayAdaptiveDispatch(b *testing.B) {
	batched := func(batch int, adaptive bool) overlay.NodeConfig {
		return overlay.NodeConfig{
			TxBatch: batch, TxRing: 4096, TxFlushTimeout: 200 * time.Microsecond,
			Adaptive: overlay.AdaptiveConfig{Enabled: adaptive},
		}
	}
	cfgs := []struct {
		name string
		cfg  overlay.NodeConfig
	}{
		{"batch=1", overlay.NodeConfig{TxBatch: 1}},
		{"adaptive", batched(32, true)},
		{"batch=32", batched(32, false)},
	}
	for _, c := range cfgs {
		b.Run("loaded/"+c.name, func(b *testing.B) {
			const window = 1024
			na, _, epA, epB := batchNodes(b, c.cfg, overlay.NodeConfig{QueueDepth: 8192}, "udp")
			f := &ethernet.Frame{Dst: epB.MAC(), Src: epA.MAC(), Type: ethernet.TypeTest,
				Payload: make([]byte, 64)}
			b.SetBytes(64)
			b.ReportAllocs()
			b.ResetTimer()
			var sent uint64
			for i := 0; i < b.N; i++ {
				for sent-na.EncapSent.Load() >= window {
					runtime.Gosched()
				}
				if err := epA.Send(f); err != nil {
					b.Fatal(err)
				}
				sent++
			}
			deadline := time.Now().Add(10 * time.Second)
			for na.EncapSent.Load() < sent {
				if time.Now().After(deadline) {
					b.Fatalf("stalled: %d of %d frames encapsulated", na.EncapSent.Load(), sent)
				}
				runtime.Gosched()
			}
			b.StopTimer()
		})
	}
	for _, c := range cfgs {
		b.Run("idle/"+c.name, func(b *testing.B) {
			_, _, epA, epB := batchNodes(b, c.cfg, overlay.NodeConfig{}, "udp")
			f := &ethernet.Frame{Dst: epB.MAC(), Src: epA.MAC(), Type: ethernet.TypeTest,
				Payload: make([]byte, 64)}
			var lat time.Duration
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				t0 := time.Now()
				if err := epA.Send(f); err != nil {
					b.Fatal(err)
				}
				if _, ok := epB.Recv(recvTimeout); !ok {
					b.Fatal("frame not delivered")
				}
				lat += time.Since(t0)
				// Idle pacing: ~500 frames/s, under the default α_l, so an
				// adaptive link stays in (or returns to) latency mode.
				time.Sleep(2 * time.Millisecond)
			}
			b.StopTimer()
			b.ReportMetric(float64(lat.Nanoseconds())/float64(b.N), "latency-ns/op")
		})
	}
}
