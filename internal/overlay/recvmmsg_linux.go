//go:build linux && (amd64 || arm64)

// recvmmsg(2) batch receive: one syscall drains a burst of datagrams
// from the UDP socket, mirroring the sendmmsg transmit path. The reader
// owns a fixed set of 64KiB buffers and mmsghdr/iovec/sockaddr arrays,
// rebuilt never — readBatch's only per-datagram allocation is the owned
// packet copy handed up the stack.

package overlay

import (
	"net"
	"syscall"
	"unsafe"
)

// mmsgReader is the linux batchReader: a non-blocking recvmmsg loop
// integrated with the runtime poller via RawConn.Read (EAGAIN parks the
// goroutine until readable; EINTR retries the syscall).
type mmsgReader struct {
	rc    syscall.RawConn
	bufs  [][]byte
	iovs  []syscall.Iovec
	msgs  []mmsghdr
	names []syscall.RawSockaddrInet6 // big enough for both families
}

func newPlatformBatchReader(c *net.UDPConn, batch int) batchReader {
	rc, err := c.SyscallConn()
	if err != nil {
		return nil
	}
	r := &mmsgReader{
		rc:    rc,
		bufs:  make([][]byte, batch),
		iovs:  make([]syscall.Iovec, batch),
		msgs:  make([]mmsghdr, batch),
		names: make([]syscall.RawSockaddrInet6, batch),
	}
	for i := range r.msgs {
		r.bufs[i] = make([]byte, 65536)
		r.iovs[i].Base = &r.bufs[i][0]
		r.iovs[i].SetLen(len(r.bufs[i]))
		r.msgs[i].hdr.Iov = &r.iovs[i]
		r.msgs[i].hdr.Iovlen = 1 // uint64 on both supported 64-bit arches
		r.msgs[i].hdr.Name = (*byte)(unsafe.Pointer(&r.names[i]))
	}
	return r
}

func (r *mmsgReader) readBatch(into []rxPacket) (int, error) {
	want := len(into)
	if want > len(r.msgs) {
		want = len(r.msgs)
	}
	// Namelen is value-result: the kernel shrinks it to the sockaddr it
	// wrote, so it must be restored to the buffer size before every call.
	for i := 0; i < want; i++ {
		r.msgs[i].hdr.Namelen = uint32(unsafe.Sizeof(r.names[i]))
	}
	got := 0
	var opErr error
	rerr := r.rc.Read(func(fd uintptr) bool {
		for {
			n1, _, errno := syscall.Syscall6(sysRecvmmsg, fd,
				uintptr(unsafe.Pointer(&r.msgs[0])), uintptr(want), 0, 0, 0)
			switch {
			case errno == syscall.EINTR:
				continue // interrupted before any datagram: retry
			case errno == syscall.EAGAIN:
				return false // park on the poller until readable
			case errno != 0:
				opErr = errno
				return true
			}
			got = int(n1)
			return true
		}
	})
	if rerr != nil {
		return 0, rerr // socket closed (shutdown) or poller error
	}
	if opErr != nil {
		return 0, opErr
	}
	for i := 0; i < got; i++ {
		sz := int(r.msgs[i].cnt)
		pkt := make([]byte, sz)
		copy(pkt, r.bufs[i][:sz])
		into[i] = rxPacket{pkt: pkt, from: udpAddrOf(&r.names[i])}
	}
	return got, nil
}

// udpAddrOf decodes a kernel-written sockaddr into a *net.UDPAddr. The
// storage is RawSockaddrInet6-sized; AF_INET reinterprets the prefix as
// RawSockaddrInet4 (the layouts agree through the family field). Ports
// are network byte order in both.
func udpAddrOf(sa *syscall.RawSockaddrInet6) *net.UDPAddr {
	switch sa.Family {
	case syscall.AF_INET:
		sa4 := (*syscall.RawSockaddrInet4)(unsafe.Pointer(sa))
		ip := make(net.IP, 4)
		copy(ip, sa4.Addr[:])
		p := (*[2]byte)(unsafe.Pointer(&sa4.Port))
		return &net.UDPAddr{IP: ip, Port: int(p[0])<<8 | int(p[1])}
	case syscall.AF_INET6:
		ip := make(net.IP, 16)
		copy(ip, sa.Addr[:])
		p := (*[2]byte)(unsafe.Pointer(&sa.Port))
		addr := &net.UDPAddr{IP: ip, Port: int(p[0])<<8 | int(p[1])}
		if sa.Scope_id != 0 {
			// Numeric zone: enough for equality and attribution; the
			// overlay never dials zoned addresses itself.
			if ifi, err := net.InterfaceByIndex(int(sa.Scope_id)); err == nil {
				addr.Zone = ifi.Name
			}
		}
		return addr
	}
	return &net.UDPAddr{}
}
