package overlay

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"vnetp/internal/bridge"
	"vnetp/internal/telemetry"
)

// TCP encapsulation (paper Sect. 4.2: "The overlay carries Ethernet
// packets encapsulated in UDP packets, TCP streams with and without SSL
// encryption, ..."): each encapsulation datagram is carried
// length-prefixed on a persistent TCP connection. TCP links suit lossy or
// middlebox-ridden wide-area paths; UDP remains the fast path.

// tcpMaxDatagram is the per-datagram budget on TCP links: large, since
// TCP handles segmentation itself, but within the encapsulation header's
// 16-bit length fields.
const tcpMaxDatagram = 32 << 10

// tcpDialTimeout bounds how long a lazy dial may block a send path.
const tcpDialTimeout = 2 * time.Second

// tcpConn is one direction-agnostic TCP transport attached to a link
// (outbound) or to the accept loop (inbound). The mutex serializes
// writers: data sends, probe sends, and probe replies all share it.
type tcpConn struct {
	mu   sync.Mutex
	conn net.Conn
	w    *bufio.Writer
}

func (c *tcpConn) sendDatagram(d []byte) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(d)))
	if _, err := c.w.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := c.w.Write(d); err != nil {
		return err
	}
	return c.w.Flush()
}

// sendDatagrams writes a whole batch of length-prefixed datagrams under
// one writer-lock acquisition and a single flush — the TCP analogue of
// the UDP path's sendmmsg. Returns how many datagrams were confirmed,
// mirroring sendBatchUDP: every datagram fully written before a
// mid-batch write error counts (the buffered writer flushed them
// implicitly to make room), and a successful final flush confirms the
// whole batch — but a failed final flush confirms nothing, since any of
// the still-buffered tail may have been lost with it. On error the
// stream is mid-datagram and the caller must drop the transport.
func (c *tcpConn) sendDatagrams(ds [][]byte) (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	var hdr [4]byte
	for i, d := range ds {
		binary.BigEndian.PutUint32(hdr[:], uint32(len(d)))
		if _, err := c.w.Write(hdr[:]); err != nil {
			return i, err
		}
		if _, err := c.w.Write(d); err != nil {
			return i, err
		}
	}
	if err := c.w.Flush(); err != nil {
		return 0, err
	}
	return len(ds), nil
}

func (c *tcpConn) close() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.conn != nil {
		c.conn.Close()
	}
}

// startTCP brings up the node's TCP accept side on the same port as its
// UDP socket. Failure to bind is tolerated (TCP links can still dial
// out; only inbound TCP is unavailable).
func (n *Node) startTCP() {
	udpAddr := n.conn.LocalAddr().(*net.UDPAddr)
	ln, err := net.Listen("tcp", udpAddr.String())
	if err != nil {
		return
	}
	n.tcpLn = ln
	n.wg.Add(1)
	go n.acceptTCP()
}

func (n *Node) acceptTCP() {
	defer n.wg.Done()
	for {
		conn, err := n.tcpLn.Accept()
		if err != nil {
			return
		}
		c := &tcpConn{conn: conn, w: bufio.NewWriter(conn)}
		n.mu.Lock()
		if n.closed {
			n.mu.Unlock()
			conn.Close()
			return
		}
		n.tcpConns[c] = struct{}{}
		n.mu.Unlock()
		n.wg.Add(1)
		go func() {
			defer n.wg.Done()
			n.readTCP(c, nil)
			n.mu.Lock()
			delete(n.tcpConns, c)
			n.mu.Unlock()
		}()
	}
}

// readTCP consumes length-prefixed encapsulation datagrams from one TCP
// connection: it answers liveness probes, matches probe replies, and
// routes reassembled frames. lk is the link that dialed the connection,
// or nil for accepted inbound connections; when set, the link's
// transport slot is cleared on exit so the health monitor redials.
func (n *Node) readTCP(c *tcpConn, lk *link) {
	defer c.close()
	if lk != nil {
		defer n.dropTransport(lk, c)
	}
	key := "tcp/" + c.conn.RemoteAddr().String()
	shard := n.shardFor(key)
	r := bufio.NewReader(c.conn)
	var hdr [4]byte
	for {
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			return
		}
		size := binary.BigEndian.Uint32(hdr[:])
		if size == 0 || size > tcpMaxDatagram+bridge.EncapHeaderLen {
			n.BadPackets.Add(1)
			n.drop(dropBadPacket, 1, telemetry.DropDetail{Scope: key, Stage: "tcp_frame"})
			return
		}
		pkt := make([]byte, size)
		if _, err := io.ReadFull(r, pkt); err != nil {
			return
		}
		at := time.Now()
		if lk != nil { // inbound accepted conns have no link to attribute to
			lk.bytesRecv.Add(uint64(len(hdr) + len(pkt)))
		}
		h, payload, err := bridge.ParseEncap(pkt)
		if err != nil {
			n.BadPackets.Add(1)
			n.drop(dropBadPacket, 1, telemetry.DropDetail{Scope: key, Stage: "tcp_parse"})
			continue
		}
		switch {
		case h.Probe:
			// Echo on the same connection; a failed write surfaces as a
			// lost probe on the sender.
			c.sendDatagram(marshalProbeReply(payload))
		case h.ProbeReply:
			n.handleProbeReply(payload)
		default:
			// The connection reader is already a dedicated goroutine, so
			// data is processed inline on the sender's reassembly shard
			// rather than re-queued behind the UDP dispatchers.
			n.processData(shard, key, h, payload, pkt, at)
		}
	}
}

// dialTCP (re)establishes a link's TCP transport, respecting the link's
// redial backoff window. Caller holds no locks.
func (n *Node) dialTCP(lk *link) (*tcpConn, error) {
	n.mu.Lock()
	if lk.tcp != nil {
		c := lk.tcp
		n.mu.Unlock()
		return c, nil
	}
	if now := time.Now(); now.Before(lk.redialAt) {
		n.mu.Unlock()
		return nil, fmt.Errorf("overlay: tcp link %q backing off %v", lk.id, time.Until(lk.redialAt).Round(time.Millisecond))
	}
	remote := lk.remote
	n.mu.Unlock()

	conn, err := net.DialTimeout("tcp", remote, tcpDialTimeout)

	n.mu.Lock()
	if err != nil {
		n.bumpBackoffLocked(lk)
		n.mu.Unlock()
		return nil, fmt.Errorf("overlay: tcp link %q: %w", lk.id, err)
	}
	if lk.tcp != nil { // lost the race; keep the first
		existing := lk.tcp
		n.mu.Unlock()
		conn.Close()
		return existing, nil
	}
	if n.closed {
		n.mu.Unlock()
		conn.Close()
		return nil, fmt.Errorf("overlay: node closed")
	}
	c := &tcpConn{conn: conn, w: bufio.NewWriter(conn)}
	lk.tcp = c
	lk.redialBackoff = 0
	lk.redialAt = time.Time{}
	if lk.dialed { // a transport existed before: this is a redial
		if lk.health != nil {
			lk.health.redials.Inc()
		}
	}
	lk.dialed = true
	// The outbound connection needs its own reader: probe replies (and
	// any data the peer pushes back on the stream) arrive here.
	n.wg.Add(1)
	go func() {
		defer n.wg.Done()
		n.readTCP(c, lk)
	}()
	n.mu.Unlock()
	return c, nil
}

// dropTransport detaches a dead TCP transport from its link (if still
// attached) and starts the redial backoff clock.
func (n *Node) dropTransport(lk *link, c *tcpConn) {
	n.mu.Lock()
	if lk.tcp == c {
		lk.tcp = nil
		n.bumpBackoffLocked(lk)
	}
	n.mu.Unlock()
	c.close()
}

// bumpBackoffLocked advances a link's capped exponential redial backoff.
// Caller holds n.mu.
func (n *Node) bumpBackoffLocked(lk *link) {
	min, max := n.healthCfg.RedialMin, n.healthCfg.RedialMax
	if min <= 0 {
		min = 100 * time.Millisecond
	}
	if max < min {
		max = 5 * time.Second
	}
	if lk.redialBackoff == 0 {
		lk.redialBackoff = min
	} else {
		lk.redialBackoff *= 2
		if lk.redialBackoff > max {
			lk.redialBackoff = max
		}
	}
	lk.redialAt = time.Now().Add(lk.redialBackoff)
}
