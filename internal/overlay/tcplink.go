package overlay

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"

	"vnetp/internal/bridge"
)

// TCP encapsulation (paper Sect. 4.2: "The overlay carries Ethernet
// packets encapsulated in UDP packets, TCP streams with and without SSL
// encryption, ..."): each encapsulation datagram is carried
// length-prefixed on a persistent TCP connection. TCP links suit lossy or
// middlebox-ridden wide-area paths; UDP remains the fast path.

// tcpMaxDatagram is the per-datagram budget on TCP links: large, since
// TCP handles segmentation itself, but within the encapsulation header's
// 16-bit length fields.
const tcpMaxDatagram = 32 << 10

// tcpConn is one direction-agnostic TCP transport attached to a link (for
// outbound) or to the accept loop (inbound).
type tcpConn struct {
	mu   sync.Mutex
	conn net.Conn
	w    *bufio.Writer
}

func (c *tcpConn) sendDatagram(d []byte) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(d)))
	if _, err := c.w.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := c.w.Write(d); err != nil {
		return err
	}
	return c.w.Flush()
}

func (c *tcpConn) close() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.conn != nil {
		c.conn.Close()
	}
}

// startTCP brings up the node's TCP accept side on the same port as its
// UDP socket. Failure to bind is tolerated (TCP links can still dial
// out; only inbound TCP is unavailable).
func (n *Node) startTCP() {
	udpAddr := n.conn.LocalAddr().(*net.UDPAddr)
	ln, err := net.Listen("tcp", udpAddr.String())
	if err != nil {
		return
	}
	n.tcpLn = ln
	n.wg.Add(1)
	go n.acceptTCP()
}

func (n *Node) acceptTCP() {
	defer n.wg.Done()
	for {
		conn, err := n.tcpLn.Accept()
		if err != nil {
			return
		}
		n.mu.Lock()
		if n.closed {
			n.mu.Unlock()
			conn.Close()
			return
		}
		n.tcpConns[conn] = struct{}{}
		n.mu.Unlock()
		n.wg.Add(1)
		go func() {
			defer n.wg.Done()
			n.readTCP(conn)
			n.mu.Lock()
			delete(n.tcpConns, conn)
			n.mu.Unlock()
		}()
	}
}

// readTCP consumes length-prefixed encapsulation datagrams from one TCP
// connection and routes the reassembled frames.
func (n *Node) readTCP(conn net.Conn) {
	defer conn.Close()
	key := "tcp/" + conn.RemoteAddr().String()
	r := bufio.NewReader(conn)
	var hdr [4]byte
	for {
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			return
		}
		size := binary.BigEndian.Uint32(hdr[:])
		if size == 0 || size > tcpMaxDatagram+bridge.EncapHeaderLen {
			n.BadPackets.Add(1)
			return
		}
		pkt := make([]byte, size)
		if _, err := io.ReadFull(r, pkt); err != nil {
			return
		}
		n.mu.Lock()
		frame, err := n.reasm.Add(key, pkt)
		n.mu.Unlock()
		if err != nil {
			n.BadPackets.Add(1)
			continue
		}
		if frame == nil {
			continue
		}
		n.EncapRecv.Add(1)
		n.route(frame, nil)
	}
}

// dialTCP (re)establishes a link's TCP transport. Caller holds no locks.
func (n *Node) dialTCP(lk *link) (*tcpConn, error) {
	n.mu.Lock()
	if lk.tcp != nil {
		c := lk.tcp
		n.mu.Unlock()
		return c, nil
	}
	n.mu.Unlock()
	conn, err := net.Dial("tcp", lk.remote)
	if err != nil {
		return nil, fmt.Errorf("overlay: tcp link %q: %w", lk.id, err)
	}
	c := &tcpConn{conn: conn, w: bufio.NewWriter(conn)}
	n.mu.Lock()
	defer n.mu.Unlock()
	if lk.tcp != nil { // lost the race; keep the first
		conn.Close()
		return lk.tcp, nil
	}
	lk.tcp = c
	return c, nil
}
