// Per-tenant service-level indicators (ISSUE 10): each tenant's share
// of the node's traffic and loss, as labeled registry families plus an
// append-only LIST TENANTS extension. The node-wide counters answer
// "is this node healthy"; these answer "which tenant is affected".
//
// Accounting model:
//   - frames/bytes out: frames a tenant's local endpoint submitted into
//     routing (flow-cache hit and miss paths both count, at admission).
//   - frames/bytes in: frames delivered into a tenant endpoint's
//     receive ring.
//   - drops: every unified-ledger drop attributed to the tenant (the
//     drop funnel in ledger.go feeds this, so the two never disagree).
//   - seal rejects: sealed datagrams rejected while claiming the
//     tenant's ID (the claim is unauthenticated — a forged datagram
//     charges the tenant it impersonates, which is exactly the tenant
//     an operator should look at).
//   - rx latency: the receive-path latency histogram scoped to the
//     tenant's delivered traffic.
//
// Forwarded transit frames (in on one link, out another) belong to no
// local endpoint and are not tenant-accounted, mirroring how FlowStats
// only accounts locally originated flows.

package overlay

import (
	"strconv"
	"sync"

	"vnetp/internal/telemetry"
)

// tenantSLI is one tenant's resolved counter handles. Hot paths cache a
// pointer to this (on the endpoint or flow-cache entry), so steady-state
// accounting is plain atomic adds with no label lookups.
type tenantSLI struct {
	framesIn    *telemetry.Counter
	framesOut   *telemetry.Counter
	bytesIn     *telemetry.Counter
	bytesOut    *telemetry.Counter
	drops       *telemetry.Counter
	sealRejects *telemetry.Counter
	rxLatency   *telemetry.Histogram
}

// tenantSLIs owns the labeled families and the tenant → handle cache.
type tenantSLIs struct {
	framesIn    *telemetry.CounterVec
	framesOut   *telemetry.CounterVec
	bytesIn     *telemetry.CounterVec
	bytesOut    *telemetry.CounterVec
	drops       *telemetry.CounterVec
	sealRejects *telemetry.CounterVec
	rxLatency   *telemetry.HistogramVec

	m sync.Map // uint32 tenant → *tenantSLI
}

func newTenantSLIs(reg *telemetry.Registry) *tenantSLIs {
	return &tenantSLIs{
		framesIn: reg.CounterVec("vnetp_tenant_frames_in_total",
			"Frames delivered to a tenant's local endpoints.", "tenant"),
		framesOut: reg.CounterVec("vnetp_tenant_frames_out_total",
			"Frames a tenant's local endpoints submitted into routing.", "tenant"),
		bytesIn: reg.CounterVec("vnetp_tenant_bytes_in_total",
			"Bytes delivered to a tenant's local endpoints.", "tenant"),
		bytesOut: reg.CounterVec("vnetp_tenant_bytes_out_total",
			"Bytes a tenant's local endpoints submitted into routing.", "tenant"),
		drops: reg.CounterVec("vnetp_tenant_drops_total",
			"Unified-ledger drops attributed to the tenant.", "tenant"),
		sealRejects: reg.CounterVec("vnetp_tenant_seal_rejects_total",
			"Sealed datagrams rejected while claiming the tenant's ID.", "tenant"),
		rxLatency: reg.HistogramVec("vnetp_tenant_rx_latency_seconds",
			"Receive-path latency for the tenant's delivered traffic.",
			telemetry.LatencyBuckets, "tenant"),
	}
}

// get resolves a tenant's handle set, creating the labeled children on
// first use. One lock-free sync.Map load on repeat calls; callers on
// per-frame paths cache the returned pointer instead.
func (s *tenantSLIs) get(tenant uint32) *tenantSLI {
	if v, ok := s.m.Load(tenant); ok {
		return v.(*tenantSLI)
	}
	label := strconv.FormatUint(uint64(tenant), 10)
	sli := &tenantSLI{
		framesIn:    s.framesIn.With(label),
		framesOut:   s.framesOut.With(label),
		bytesIn:     s.bytesIn.With(label),
		bytesOut:    s.bytesOut.With(label),
		drops:       s.drops.With(label),
		sealRejects: s.sealRejects.With(label),
		rxLatency:   s.rxLatency.With(label),
	}
	actual, _ := s.m.LoadOrStore(tenant, sli)
	return actual.(*tenantSLI)
}
