// The parallel receive datapath: the real-socket twin of the paper's
// Fig. 5 result that VNET/P only reaches 10G-class throughput with
// multiple packet dispatchers (Sect. 4.3). The UDP read loop is a thin
// producer that classifies datagrams (control traffic — liveness probes
// and replies — is split onto its own handler so heartbeats never queue
// behind bulk data) and hands raw data datagrams to N dispatcher workers.
// Reassembly state is sharded by sender key: every datagram from one
// sender lands on the same worker, so per-sender fragment order is
// preserved and workers never contend on a shared reassembler lock.

package overlay

import (
	"fmt"
	"log/slog"
	"runtime"
	"strconv"
	"sync"
	"time"

	"vnetp/internal/bridge"
	"vnetp/internal/logging"
	"vnetp/internal/seal"
	"vnetp/internal/supervise"
	"vnetp/internal/telemetry"
	"vnetp/internal/trace"
)

// defaultQueueDepth is each dispatcher's inbound ring size. Like a NIC RX
// ring, the producer drops (and counts) when a worker's ring is full
// rather than blocking the socket read.
const defaultQueueDepth = 512

// DefaultDispatchers is the dispatcher pool size used when NodeConfig
// leaves it zero: min(4, GOMAXPROCS), the paper's sweet spot for a
// 10G-class receive path without oversubscribing small hosts.
func DefaultDispatchers() int {
	n := runtime.GOMAXPROCS(0)
	if n > 4 {
		n = 4
	}
	if n < 1 {
		n = 1
	}
	return n
}

// Default TX batching parameters (NodeConfig zero values).
const (
	defaultTxRing  = 1024
	defaultTxFlush = 100 * time.Microsecond
)

// NodeConfig tunes a node's datapath.
type NodeConfig struct {
	// Dispatchers is the number of receive dispatcher workers. Zero means
	// DefaultDispatchers().
	Dispatchers int
	// QueueDepth is each dispatcher's inbound datagram ring. Zero means
	// the default (512).
	QueueDepth int

	// TxBatch is the number of frames a link's sender goroutine coalesces
	// per wakeup (the send-side analogue of the paper's VMM-driven batch
	// dispatch, Sect. 4.3). Zero or one keeps the synchronous transmit
	// path: Send encapsulates and writes inline, preserving guest-driven
	// latency semantics. Above one, each link owns a bounded TX ring and
	// a sender goroutine that drains it in batches, amortizing wakeups,
	// buffer allocations, and (on Linux) syscalls via sendmmsg. In batched
	// mode a frame handed to Send is retained until flushed and must not
	// be modified by the caller afterwards.
	TxBatch int
	// TxRing is each link's TX ring depth in frames (batched mode only).
	// Like a NIC TX ring, enqueue drops (and counts) when full rather
	// than blocking the router. Zero means the default (1024).
	TxRing int
	// TxFlushTimeout bounds how long a partial batch may wait for more
	// frames before it is flushed — the send-side half of the adaptive
	// hysteresis idea from the paper's Table 1. Zero means the default
	// (100µs).
	TxFlushTimeout time.Duration

	// FlowCacheDisabled turns off the per-flow forwarding cache
	// (flowcache.go), restoring the per-frame route-lookup path. The
	// cache is on by default; disabling it exists for ablation
	// benchmarks (BenchmarkOverlayFlowCache, flowbench) and as an
	// operational escape hatch (vnetpd -flow-cache=false).
	FlowCacheDisabled bool
	// FlowCacheSize is the flow cache's total entry capacity across its
	// shards. Zero means the default (16384).
	FlowCacheSize int

	// RxBatch is the number of datagrams the read loop pulls from the
	// UDP socket per wakeup. Above one, linux/{amd64,arm64} hosts drain
	// the socket via recvmmsg(2), amortizing the syscall over the batch
	// (the receive-side twin of the sendmmsg transmit path); elsewhere —
	// and at one — each datagram is a ReadFromUDP call. Zero means the
	// default (16).
	RxBatch int

	// Adaptive enables the per-link adaptive dispatch controller: an
	// ω-tick rate sampler with α_l/α_u hysteresis that retunes each
	// link's effective batch size and flush timeout between latency
	// mode (batch=1, idle links) and throughput mode (batch=TxBatch,
	// loaded links) — the paper's Table 1 mechanism on the live
	// datapath (vnetpd -adaptive). Enabling it implies TxBatch > 1.
	Adaptive AdaptiveConfig

	// EvictInterval is how often stale partial reassemblies are swept
	// (generation-based eviction; a partial untouched for two sweeps is
	// dropped). Zero means the default (1s). Tests shorten it to fake
	// the clock.
	EvictInterval time.Duration

	// TraceSample arms the live tracer at startup: trace one in every
	// TraceSample frames entering the TX path (vnetpd -trace-sample).
	// Zero leaves tracing off until TRACE START; sampling costs one
	// atomic load per frame while off.
	TraceSample uint64
	// FlightDepth is the flight recorder's per-dispatcher ring depth in
	// datagram events (vnetpd -flight-depth). Zero disables the
	// recorder entirely.
	FlightDepth int
	// FlightSnap is the per-event capture length in bytes. Zero means
	// the default (256).
	FlightSnap int

	// Logger receives the node's structured log records (link
	// lifecycle, trace lifecycle, traced-frame events). Nil discards.
	Logger *slog.Logger

	// Supervise tunes the node's runtime supervisor (restart backoff,
	// stall watchdog). Zero values take the supervise package defaults;
	// tests shorten StallTimeout to exercise the watchdog quickly.
	Supervise supervise.Config

	// Anomaly tunes the anomaly watchdog: a supervised loop sampling
	// the unified drop ledger and the stall counter, alerting (slog +
	// vnetp_anomalies_total) on threshold crossings. Zero values take
	// the defaults (5s period, 100 drops/s).
	Anomaly AnomalyConfig
}

func (c *NodeConfig) normalize() {
	if c.Dispatchers <= 0 {
		c.Dispatchers = DefaultDispatchers()
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = defaultQueueDepth
	}
	if c.TxBatch < 1 {
		c.TxBatch = 1
	}
	c.Adaptive.normalize()
	if c.Adaptive.Enabled && c.TxBatch < 2 {
		// Adaptive dispatch switches between batch=1 and batch=TxBatch;
		// without a ring there is nothing to adapt.
		c.TxBatch = defaultAdaptiveBatch
	}
	if c.TxRing <= 0 {
		c.TxRing = defaultTxRing
	}
	if c.RxBatch <= 0 {
		c.RxBatch = defaultRxBatch
	}
	if c.TxFlushTimeout <= 0 {
		c.TxFlushTimeout = defaultTxFlush
	}
	if c.EvictInterval <= 0 {
		c.EvictInterval = time.Second
	}
	c.Anomaly.normalize()
	if c.FlightSnap <= 0 {
		c.FlightSnap = 256
	}
	if c.Logger == nil {
		c.Logger = logging.Discard()
	}
}

// inDatagram is one raw encapsulation datagram handed from the read loop
// to a dispatcher worker. at is the socket-read timestamp, carried so
// the RX latency histogram measures datagram-in → frame delivery.
type inDatagram struct {
	sender string
	pkt    []byte
	at     time.Time
}

// rxShard is one dispatcher worker's state: its inbound ring, its slice
// of the reassembly space, and its counters. The mutex guards the
// reassembler only — the worker goroutine and TCP connection readers
// hashed to this shard share it, plus the evict sweep; it is never held
// across routing or delivery.
type rxShard struct {
	idx   int
	in    chan inDatagram
	mu    sync.Mutex
	reasm *bridge.Reassembler

	// flight is this dispatcher's flight recorder: the last
	// NodeConfig.FlightDepth datagram events, nil when disabled.
	flight *trace.FlightRing

	// Datagrams counts data datagrams processed, Frames completed inner
	// frames routed, Drops producer-side ring-full losses. All are
	// children of the node's per-worker registry families
	// (vnetp_dispatcher_*_total{worker="<idx>"}).
	Datagrams, Frames, Drops *telemetry.Counter
}

// shardFor maps a sender key onto its dispatcher shard (FNV-1a). All
// traffic from one sender hashes to one worker, preserving per-sender
// fragment and frame order.
func (n *Node) shardFor(sender string) *rxShard {
	h := uint32(2166136261)
	for i := 0; i < len(sender); i++ {
		h = (h ^ uint32(sender[i])) * 16777619
	}
	return n.shards[h%uint32(len(n.shards))]
}

// dispatchLoop is one worker: it drains its ring, reassembles, and
// routes. It runs under the node's supervisor: a panic while processing
// one datagram drops that datagram, is counted, and the worker restarts
// over the same shard (ring and reassembly state survive); a stall
// inside one datagram past the watchdog timeout gets the instance
// superseded. inst.Quit closes on supersession and node teardown.
func (n *Node) dispatchLoop(inst *supervise.Instance, s *rxShard) {
	for {
		select {
		case <-n.quit:
			return
		case <-inst.Quit():
			return
		case d := <-s.in:
			inst.Working()
			h, payload, err := bridge.ParseEncap(d.pkt)
			if err != nil {
				n.BadPackets.Add(1)
				n.drop(dropBadPacket, 1, telemetry.DropDetail{
					Scope: d.sender, Stage: "rx_parse",
				})
				inst.Idle()
				continue
			}
			n.processData(s, d.sender, h, payload, d.pkt, d.at)
			inst.Idle()
		}
	}
}

// processData runs the data path for one parsed datagram: flight
// capture, AEAD open for sealed datagrams, shard-local reassembly, then
// routing of any completed frame in its tenant's namespace. Shared by
// the UDP dispatcher workers and the TCP connection readers (which
// parse on their own goroutines and call in directly). raw is the full
// encap datagram as it arrived on the wire, captured by the shard's
// flight recorder when one is armed (before decryption: the recorder
// sees what the wire saw).
func (n *Node) processData(s *rxShard, sender string, h *bridge.EncapHeader, payload, raw []byte, at time.Time) {
	s.Datagrams.Add(1)
	var tid uint64
	if h.HasTrace {
		tid = h.Trace.ID
		n.tracer.RecordRemote(tid, h.Trace.Origin, h.Trace.Flags, trace.StageRxDispatch)
	}
	s.flight.Record(sender, tid, raw)
	var tenant uint32
	if h.HasSeal {
		// The fragment's wire header (everything before the ciphertext) is
		// the AEAD's associated data — a tampered flag, ID, or offset fails
		// authentication even though only the payload is encrypted. Every
		// failure is counted by typed reason and the datagram vanishes:
		// nothing unauthenticated reaches reassembly.
		aad := raw[:len(raw)-len(payload)]
		pt, err := n.keyring.Open(h.Seal.Tenant, h.Seal.Nonce, aad, payload)
		if err != nil {
			rr := seal.RejectReasonOf(err)
			n.metrics.sealRejects.With(rr).Add(1)
			// The wire-claimed tenant ID is unauthenticated; charging the
			// claimed tenant is deliberate — a forged datagram charges
			// the tenant it impersonates, which is the tenant whose
			// traffic an operator should inspect.
			n.slis.get(h.Seal.Tenant).sealRejects.Add(1)
			n.drop(dropSealReject, 1, telemetry.DropDetail{
				Tenant: h.Seal.Tenant, Scope: sender, Stage: rr,
			})
			return
		}
		n.metrics.sealOpened.Add(1)
		tenant = h.Seal.Tenant
		payload = pt
		// Scope the reassembly stream by tenant: a plaintext and a sealed
		// stream from one remote address must never interleave fragments.
		sender = sender + "|t" + strconv.FormatUint(uint64(tenant), 10)
	}
	s.mu.Lock()
	frame, err := s.reasm.AddParsed(sender, h, payload)
	s.mu.Unlock()
	if err != nil {
		n.BadPackets.Add(1)
		n.drop(dropBadPacket, 1, telemetry.DropDetail{
			Tenant: tenant, Scope: sender, Stage: "reassembly",
		})
		return
	}
	if frame == nil {
		return // more fragments pending
	}
	if h.HasTrace {
		// The completing fragment carries the same trace context every
		// fragment did; the reassembled frame inherits it so routing and
		// delivery keep recording under the wire-carried ID.
		frame.Tag = tid
		n.tracer.RecordRemote(tid, h.Trace.Origin, h.Trace.Flags, trace.StageReassembly)
	}
	s.Frames.Add(1)
	n.EncapRecv.Add(1)
	n.routeTenantAt(frame, nil, time.Time{}, tenant)
	// The Fig. 7 RX stage budget on the real path: the completing
	// datagram's socket read to the frame handed off past routing. The
	// same sample lands in the owning tenant's latency SLI.
	if !at.IsZero() {
		el := time.Since(at).Seconds()
		n.metrics.rxLatency.Observe(el)
		n.slis.get(tenant).rxLatency.Observe(el)
	}
}

// enqueue offers a datagram to its sender's dispatcher without blocking
// the socket read; ring-full datagrams are dropped and counted, like a
// NIC RX ring under overrun.
func (n *Node) enqueue(sender string, pkt []byte, at time.Time) {
	s := n.shardFor(sender)
	select {
	case s.in <- inDatagram{sender: sender, pkt: pkt, at: at}:
	default:
		s.Drops.Add(1)
		n.drop(dropDispatcherRing, 1, telemetry.DropDetail{
			Scope: fmt.Sprint(s.idx), Stage: "rx_ring",
		})
	}
}

// inject is the blocking variant of enqueue, used by benchmarks and tests
// that feed the dispatch stage directly (loopback receive path without
// the socket).
func (n *Node) inject(sender string, pkt []byte) {
	s := n.shardFor(sender)
	select {
	case s.in <- inDatagram{sender: sender, pkt: pkt, at: time.Now()}:
	case <-n.quit:
	}
}

// Dispatchers reports the size of the node's receive dispatcher pool.
func (n *Node) Dispatchers() int { return len(n.shards) }
