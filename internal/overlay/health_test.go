package overlay_test

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"vnetp/internal/control"
	"vnetp/internal/core"
	"vnetp/internal/ethernet"
	"vnetp/internal/faultnet"
	"vnetp/internal/overlay"
)

// fastHealth returns an aggressive config so tests converge quickly:
// probes every 20ms, Down after 3 misses, Up after 2 replies.
func fastHealth() overlay.HealthConfig {
	cfg := overlay.DefaultHealthConfig()
	cfg.Interval = 20 * time.Millisecond
	cfg.FailThreshold = 3
	cfg.RecoverThreshold = 2
	cfg.RedialMin = 20 * time.Millisecond
	cfg.RedialMax = 200 * time.Millisecond
	return cfg
}

// eventually polls cond until it holds or the deadline passes.
func eventually(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func statValue(t *testing.T, lines []string, key string) int {
	t.Helper()
	for _, l := range lines {
		var v int
		if _, err := fmt.Sscanf(l, key+" %d", &v); err == nil {
			return v
		}
	}
	t.Fatalf("stat %q not found in %v", key, lines)
	return 0
}

func TestHealthProbesKeepLinkUp(t *testing.T) {
	na, _, _, _ := twoNodes(t)
	if err := na.EnableHealth(fastHealth()); err != nil {
		t.Fatal(err)
	}
	eventually(t, recvTimeout, "probes to flow", func() bool {
		return statValue(t, na.Stats(), "probes_sent") >= 3
	})
	if st, ok := na.LinkHealth("to-b"); !ok || st != overlay.LinkUp {
		t.Fatalf("link state %v monitored=%v, want up", st, ok)
	}
	lines, err := na.LinkStatus("to-b")
	if err != nil {
		t.Fatal(err)
	}
	joined := strings.Join(lines, "\n")
	if !strings.Contains(joined, "state up") {
		t.Fatalf("LinkStatus:\n%s", joined)
	}
	if statValue(t, na.Stats(), "probes_lost") > 1 {
		t.Fatalf("healthy loopback link lost probes:\n%s", strings.Join(na.Stats(), "\n"))
	}
}

// TestChaosFailoverAndFailback is the acceptance scenario: a faultnet
// conduit partitions the primary link mid-transfer, the heartbeat
// monitor marks it Down within the probe budget, routes fail over to the
// backup link so the in-flight (ack/retransmit) transfer completes, and
// the link fails back once the partition heals.
func TestChaosFailoverAndFailback(t *testing.T) {
	na, err := overlay.NewNode("a", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	nb, err := overlay.NewNode("b", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { na.Close(); nb.Close() })

	macA, macB := ethernet.LocalMAC(1), ethernet.LocalMAC(2)
	epA, err := na.AttachEndpoint("nic0", macA, 9000)
	if err != nil {
		t.Fatal(err)
	}
	epB, err := nb.AttachEndpoint("nic0", macB, 9000)
	if err != nil {
		t.Fatal(err)
	}
	// Two physical paths to B: the primary carries the traffic until the
	// chaos conduit kills it, the backup takes over.
	for _, id := range []string{"primary", "backup"} {
		if err := na.AddLink(id, nb.Addr(), "udp"); err != nil {
			t.Fatal(err)
		}
	}
	if err := nb.AddLink("to-a", na.Addr(), "udp"); err != nil {
		t.Fatal(err)
	}
	na.AddRoute(core.Route{
		DstMAC: macB, DstQual: core.QualExact, SrcQual: core.QualAny,
		Dest:      core.Destination{Type: core.DestLink, ID: "primary"},
		Backup:    core.Destination{Type: core.DestLink, ID: "backup"},
		HasBackup: true,
	})
	nb.AddRoute(core.Route{DstMAC: macA, DstQual: core.QualExact, SrcQual: core.QualAny,
		Dest: core.Destination{Type: core.DestLink, ID: "to-a"}})

	chaos := faultnet.New(faultnet.Config{})
	if err := na.SetLinkFault("primary", chaos); err != nil {
		t.Fatal(err)
	}
	cfg := fastHealth()
	if err := na.EnableHealth(cfg); err != nil {
		t.Fatal(err)
	}

	// Receiver: ack every chunk by echoing its payload.
	go func() {
		for {
			f, ok := epB.Recv(recvTimeout)
			if !ok {
				return
			}
			epB.Send(&ethernet.Frame{Dst: macA, Src: macB, Type: ethernet.TypeTest, Payload: f.Payload})
		}
	}()

	// Sender: stop-and-wait transfer with retransmission — the classic
	// reliable stream the overlay's guests would run. It must survive the
	// mid-transfer partition purely via routing failover.
	const chunks = 30
	sendChunk := func(i int) {
		payload := []byte(fmt.Sprintf("chunk-%03d", i))
		deadline := time.Now().Add(recvTimeout)
		for time.Now().Before(deadline) {
			epA.Send(&ethernet.Frame{Dst: macB, Src: macA, Type: ethernet.TypeTest, Payload: payload})
			ack, ok := epA.Recv(50 * time.Millisecond)
			if ok && string(ack.Payload) == string(payload) {
				return
			}
		}
		t.Errorf("chunk %d never acknowledged", i)
	}
	for i := 0; i < chunks/3; i++ {
		sendChunk(i)
	}

	// Chaos: hard-partition the primary mid-transfer.
	chaos.Partition(true)

	for i := chunks / 3; i < chunks; i++ {
		sendChunk(i)
	}
	if t.Failed() {
		t.Fatal("transfer did not survive the partition")
	}

	// The monitor must have declared the primary Down within the probe
	// budget (the transfer above already waited well past it).
	probeBudget := time.Duration(cfg.FailThreshold+2) * cfg.Interval * 2
	eventually(t, probeBudget, "primary to go down", func() bool {
		st, _ := na.LinkHealth("primary")
		return st == overlay.LinkDown
	})
	if n := len(na.Table().FailedDests()); n != 1 {
		t.Fatalf("%d failed destinations, want 1", n)
	}
	if got := statValue(t, na.Stats(), "failovers"); got < 1 {
		t.Fatalf("failovers = %d", got)
	}

	// Heal: the link must fail back and traffic return to the primary.
	chaos.Partition(false)
	eventually(t, recvTimeout, "primary to fail back", func() bool {
		st, _ := na.LinkHealth("primary")
		return st == overlay.LinkUp
	})
	if n := len(na.Table().FailedDests()); n != 0 {
		t.Fatalf("%d failed destinations after heal", n)
	}
	if got := statValue(t, na.Stats(), "failbacks"); got < 1 {
		t.Fatalf("failbacks = %d", got)
	}
	sendChunk(chunks) // one more chunk over the restored primary
}

func TestTCPLinkRedialsWithBackoff(t *testing.T) {
	na, err := overlay.NewNode("a", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	nb, err := overlay.NewNode("b", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { na.Close(); nb.Close() })
	addrB := nb.Addr()

	macA, macB := ethernet.LocalMAC(1), ethernet.LocalMAC(2)
	epA, err := na.AttachEndpoint("nic0", macA, 9000)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := nb.AttachEndpoint("nic0", macB, 9000); err != nil {
		t.Fatal(err)
	}
	if err := na.AddLink("to-b", addrB, "tcp"); err != nil {
		t.Fatal(err)
	}
	na.AddRoute(core.Route{DstMAC: macB, DstQual: core.QualExact, SrcQual: core.QualAny,
		Dest: core.Destination{Type: core.DestLink, ID: "to-b"}})
	if err := na.EnableHealth(fastHealth()); err != nil {
		t.Fatal(err)
	}

	// The first probes dial the transport and flow.
	eventually(t, recvTimeout, "tcp link to come up", func() bool {
		return statValue(t, na.Stats(), "probes_sent") >= 2 && na.ActiveTCP() >= 1
	})

	// Kill B: the transport dies, probes miss, the link goes Down and the
	// monitor starts redialing into the void.
	nb.Close()
	eventually(t, recvTimeout, "tcp link to go down", func() bool {
		st, _ := na.LinkHealth("to-b")
		return st == overlay.LinkDown
	})

	// Resurrect a node on the same address; the redial loop must find it
	// and bring the link back without intervention.
	nb2, err := overlay.NewNode("b2", addrB)
	if err != nil {
		t.Skipf("could not rebind %s: %v", addrB, err)
	}
	t.Cleanup(func() { nb2.Close() })
	eventually(t, 5*time.Second, "tcp link to recover", func() bool {
		st, _ := na.LinkHealth("to-b")
		return st == overlay.LinkUp
	})
	if got := statValue(t, na.Stats(), "redials"); got < 1 {
		t.Fatalf("redials = %d, want >= 1", got)
	}
	if err := epA.Send(&ethernet.Frame{Dst: macB, Src: macA, Type: ethernet.TypeTest, Payload: []byte("after redial")}); err != nil {
		t.Fatal(err)
	}
}

func TestLossyUDPLinkAutoUpgradesToTCP(t *testing.T) {
	na, nb, _, _ := twoNodes(t)
	_ = nb
	lossy := faultnet.New(faultnet.Config{DropProb: 1, Seed: 3})
	if err := na.SetLinkFault("to-b", lossy); err != nil {
		t.Fatal(err)
	}
	cfg := fastHealth()
	cfg.LossWindow = 8
	cfg.AutoUpgradeLossPct = 0.5
	if err := na.EnableHealth(cfg); err != nil {
		t.Fatal(err)
	}
	eventually(t, recvTimeout, "link to upgrade to tcp", func() bool {
		lines, err := na.LinkStatus("to-b")
		return err == nil && strings.Contains(strings.Join(lines, "\n"), "proto tcp")
	})
	if got := statValue(t, na.Stats(), "link_upgrades"); got != 1 {
		t.Fatalf("link_upgrades = %d, want 1", got)
	}
	// Drop the fault: probes now flow over TCP and the link recovers.
	if err := na.SetLinkFault("to-b", nil); err != nil {
		t.Fatal(err)
	}
	eventually(t, recvTimeout, "upgraded link to come up", func() bool {
		st, _ := na.LinkHealth("to-b")
		return st == overlay.LinkUp
	})
}

func TestDelLinkClosesDialedTCP(t *testing.T) {
	na, _, epA, epB := tcpNodes(t)
	// Force the lazy dial.
	epA.Send(&ethernet.Frame{Dst: epB.MAC(), Src: epA.MAC(), Type: ethernet.TypeTest, Payload: []byte("dial")})
	if _, ok := epB.Recv(recvTimeout); !ok {
		t.Fatal("frame not delivered over tcp")
	}
	if na.ActiveTCP() < 1 {
		t.Fatalf("ActiveTCP = %d before DelLink", na.ActiveTCP())
	}
	if err := na.DelLink("to-b"); err != nil {
		t.Fatal(err)
	}
	// The dialed transport (and its read goroutine) must be torn down,
	// not leaked: the old DelLink dropped the link struct but left the
	// connection open forever.
	eventually(t, recvTimeout, "dialed transport to close", func() bool {
		return na.ActiveTCP() == 0
	})
}

func TestControlSurfacesHealth(t *testing.T) {
	na, _, _, _ := twoNodes(t)
	if err := na.EnableHealth(fastHealth()); err != nil {
		t.Fatal(err)
	}
	eventually(t, recvTimeout, "probes to flow", func() bool {
		return statValue(t, na.Stats(), "probes_sent") >= 2
	})
	apply := func(line string) ([]string, error) {
		cmd, err := control.Parse(line)
		if err != nil {
			t.Fatalf("parse %q: %v", line, err)
		}
		return control.Apply(na, cmd)
	}
	out, err := apply("LIST HEALTH")
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || !strings.Contains(out[0], "to-b") {
		t.Fatalf("LIST HEALTH: %v", out)
	}
	out, err = apply("LINK STATUS to-b")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(strings.Join(out, "\n"), "state ") {
		t.Fatalf("LINK STATUS: %v", out)
	}
	if _, err := apply("LINK STATUS nope"); err == nil {
		t.Fatal("LINK STATUS on unknown link succeeded")
	}
	// Retune the monitor through the control language.
	if _, err := apply("LINK PROBE 50 4 3"); err != nil {
		t.Fatal(err)
	}
	eventually(t, recvTimeout, "retuned probes to flow", func() bool {
		return statValue(t, na.Stats(), "probes_sent") >= 4
	})
}
