package overlay_test

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
	"time"

	"vnetp/internal/control"
	"vnetp/internal/core"
	"vnetp/internal/ethernet"
	"vnetp/internal/overlay"
)

const recvTimeout = 2 * time.Second

// twoNodes builds two loopback nodes with one endpoint each and full
// cross routes.
func twoNodes(t *testing.T) (*overlay.Node, *overlay.Node, *overlay.Endpoint, *overlay.Endpoint) {
	t.Helper()
	na, err := overlay.NewNode("a", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	nb, err := overlay.NewNode("b", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { na.Close(); nb.Close() })

	macA, macB := ethernet.LocalMAC(1), ethernet.LocalMAC(2)
	epA, err := na.AttachEndpoint("nic0", macA, 9000)
	if err != nil {
		t.Fatal(err)
	}
	epB, err := nb.AttachEndpoint("nic0", macB, 9000)
	if err != nil {
		t.Fatal(err)
	}
	if err := na.AddLink("to-b", nb.Addr(), "udp"); err != nil {
		t.Fatal(err)
	}
	if err := nb.AddLink("to-a", na.Addr(), "udp"); err != nil {
		t.Fatal(err)
	}
	na.AddRoute(core.Route{DstMAC: macB, DstQual: core.QualExact, SrcQual: core.QualAny,
		Dest: core.Destination{Type: core.DestLink, ID: "to-b"}})
	nb.AddRoute(core.Route{DstMAC: macA, DstQual: core.QualExact, SrcQual: core.QualAny,
		Dest: core.Destination{Type: core.DestLink, ID: "to-a"}})
	return na, nb, epA, epB
}

func TestFrameAcrossRealUDP(t *testing.T) {
	_, _, epA, epB := twoNodes(t)
	f := &ethernet.Frame{
		Dst: epB.MAC(), Src: epA.MAC(), Type: ethernet.TypeTest,
		Payload: []byte("hello through the overlay"),
	}
	if err := epA.Send(f); err != nil {
		t.Fatal(err)
	}
	got, ok := epB.Recv(recvTimeout)
	if !ok {
		t.Fatal("frame not delivered")
	}
	if got.Src != epA.MAC() || !bytes.Equal(got.Payload, f.Payload) {
		t.Fatalf("got %v %q", got, got.Payload)
	}
}

func TestRoundTrip(t *testing.T) {
	_, _, epA, epB := twoNodes(t)
	epA.Send(&ethernet.Frame{Dst: epB.MAC(), Src: epA.MAC(), Type: ethernet.TypeTest, Payload: []byte("ping")})
	if got, ok := epB.Recv(recvTimeout); !ok || string(got.Payload) != "ping" {
		t.Fatal("ping lost")
	}
	epB.Send(&ethernet.Frame{Dst: epA.MAC(), Src: epB.MAC(), Type: ethernet.TypeTest, Payload: []byte("pong")})
	if got, ok := epA.Recv(recvTimeout); !ok || string(got.Payload) != "pong" {
		t.Fatal("pong lost")
	}
}

func TestLargeFrameFragmentation(t *testing.T) {
	// An 8900-byte frame must fragment into ~7 datagrams and reassemble.
	_, _, epA, epB := twoNodes(t)
	payload := bytes.Repeat([]byte{0xc5}, 8900)
	if err := epA.Send(&ethernet.Frame{
		Dst: epB.MAC(), Src: epA.MAC(), Type: ethernet.TypeTest, Payload: payload,
	}); err != nil {
		t.Fatal(err)
	}
	got, ok := epB.Recv(recvTimeout)
	if !ok {
		t.Fatal("large frame not delivered")
	}
	if !bytes.Equal(got.Payload, payload) {
		t.Fatal("payload corrupted in fragmentation/reassembly")
	}
}

func TestManyFramesInOrderPerFlow(t *testing.T) {
	_, _, epA, epB := twoNodes(t)
	const n = 100
	for i := 0; i < n; i++ {
		payload := []byte(fmt.Sprintf("frame-%03d", i))
		if err := epA.Send(&ethernet.Frame{Dst: epB.MAC(), Src: epA.MAC(), Type: ethernet.TypeTest, Payload: payload}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i++ {
		got, ok := epB.Recv(recvTimeout)
		if !ok {
			t.Fatalf("frame %d missing (drops=%d)", i, epB.Drops.Load())
		}
		want := fmt.Sprintf("frame-%03d", i)
		if string(got.Payload) != want {
			t.Fatalf("frame %d = %q, want %q (UDP loopback should preserve order)", i, got.Payload, want)
		}
	}
}

func TestLocalSwitching(t *testing.T) {
	// Two endpoints on ONE node: frames switch locally, no sockets.
	na, err := overlay.NewNode("solo", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer na.Close()
	ep1, _ := na.AttachEndpoint("nic0", ethernet.LocalMAC(1), 1500)
	ep2, _ := na.AttachEndpoint("nic1", ethernet.LocalMAC(2), 1500)
	ep1.Send(&ethernet.Frame{Dst: ep2.MAC(), Src: ep1.MAC(), Type: ethernet.TypeTest, Payload: []byte("local")})
	got, ok := ep2.Recv(recvTimeout)
	if !ok || string(got.Payload) != "local" {
		t.Fatal("local switching failed")
	}
	if na.EncapSent.Load() != 0 {
		t.Fatal("local frame used the wire")
	}
}

func TestNoRouteReturnsError(t *testing.T) {
	na, _ := overlay.NewNode("x", "127.0.0.1:0")
	defer na.Close()
	ep, _ := na.AttachEndpoint("nic0", ethernet.LocalMAC(1), 1500)
	err := ep.Send(&ethernet.Frame{Dst: ethernet.LocalMAC(99), Src: ep.MAC(), Type: ethernet.TypeTest})
	if err == nil {
		t.Fatal("send with no route succeeded")
	}
	if na.NoRouteDrop.Load() != 1 {
		t.Fatalf("NoRouteDrop = %d", na.NoRouteDrop.Load())
	}
}

func TestMTUEnforced(t *testing.T) {
	na, _ := overlay.NewNode("x", "127.0.0.1:0")
	defer na.Close()
	ep, _ := na.AttachEndpoint("nic0", ethernet.LocalMAC(1), 1500)
	err := ep.Send(&ethernet.Frame{Dst: ethernet.LocalMAC(2), Src: ep.MAC(), Payload: make([]byte, 1501)})
	if err == nil {
		t.Fatal("oversized frame accepted")
	}
}

func TestMigration(t *testing.T) {
	// The paper's location-independence property: endpoint B "migrates"
	// from node B to node C; updating A's routes restores connectivity
	// with no change on the endpoint side.
	na, nb, epA, epB := twoNodes(t)
	nc, err := overlay.NewNode("c", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()

	macB := epB.MAC()
	// Detach from B, attach at C (the "VM" keeps its MAC).
	nb.DetachEndpoint("nic0")
	epB2, err := nc.AttachEndpoint("nic0", macB, 9000)
	if err != nil {
		t.Fatal(err)
	}
	// Rewire A: to-c link + route update; give C a path back.
	if err := na.AddLink("to-c", nc.Addr(), "udp"); err != nil {
		t.Fatal(err)
	}
	na.DelRoute(core.Route{DstMAC: macB, DstQual: core.QualExact, SrcQual: core.QualAny,
		Dest: core.Destination{Type: core.DestLink, ID: "to-b"}})
	na.AddRoute(core.Route{DstMAC: macB, DstQual: core.QualExact, SrcQual: core.QualAny,
		Dest: core.Destination{Type: core.DestLink, ID: "to-c"}})
	nc.AddLink("to-a", na.Addr(), "udp")
	nc.AddRoute(core.Route{DstMAC: epA.MAC(), DstQual: core.QualExact, SrcQual: core.QualAny,
		Dest: core.Destination{Type: core.DestLink, ID: "to-a"}})

	epA.Send(&ethernet.Frame{Dst: macB, Src: epA.MAC(), Type: ethernet.TypeTest, Payload: []byte("after-migration")})
	got, ok := epB2.Recv(recvTimeout)
	if !ok || string(got.Payload) != "after-migration" {
		t.Fatal("traffic did not follow the migrated endpoint")
	}
	// And the reverse direction.
	epB2.Send(&ethernet.Frame{Dst: epA.MAC(), Src: macB, Type: ethernet.TypeTest, Payload: []byte("reply")})
	if got, ok := epA.Recv(recvTimeout); !ok || string(got.Payload) != "reply" {
		t.Fatal("reverse traffic failed after migration")
	}
}

func TestControlDaemonDrivesNode(t *testing.T) {
	// Configure a node entirely through the VNET/U-compatible control
	// language over TCP, then pass traffic.
	na, err := overlay.NewNode("a", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	nb, err := overlay.NewNode("b", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer na.Close()
	defer nb.Close()
	macA, macB := ethernet.LocalMAC(1), ethernet.LocalMAC(2)
	epA, _ := na.AttachEndpoint("nic0", macA, 1500)
	epB, _ := nb.AttachEndpoint("nic0", macB, 1500)

	script := fmt.Sprintf(`
ADD LINK to-b REMOTE %s
ADD ROUTE %s any link to-b
`, nb.Addr(), macB)
	if err := control.RunScript(na, strings.NewReader(script)); err != nil {
		t.Fatal(err)
	}
	script = fmt.Sprintf("ADD LINK to-a REMOTE %s\nADD ROUTE %s any link to-a\n", na.Addr(), macA)
	if err := control.RunScript(nb, strings.NewReader(script)); err != nil {
		t.Fatal(err)
	}
	epA.Send(&ethernet.Frame{Dst: macB, Src: macA, Type: ethernet.TypeTest, Payload: []byte("configured")})
	if got, ok := epB.Recv(recvTimeout); !ok || string(got.Payload) != "configured" {
		t.Fatal("control-configured overlay failed to carry traffic")
	}
}

func TestBroadcastFanout(t *testing.T) {
	na, nb, epA, epB := twoNodes(t)
	_ = na
	// A broadcast route on node A toward both the local second endpoint
	// and the link.
	ep2, _ := na.AttachEndpoint("nic1", ethernet.LocalMAC(3), 1500)
	na.AddRoute(core.Route{DstQual: core.QualAny, SrcQual: core.QualAny,
		Dest: core.Destination{Type: core.DestInterface, ID: "nic1"}})
	na.AddRoute(core.Route{DstQual: core.QualAny, SrcQual: core.QualAny,
		Dest: core.Destination{Type: core.DestLink, ID: "to-b"}})
	// B needs to accept broadcast too.
	nb.AddRoute(core.Route{DstQual: core.QualAny, SrcQual: core.QualAny,
		Dest: core.Destination{Type: core.DestInterface, ID: "nic0"}})

	epA.Send(&ethernet.Frame{Dst: ethernet.Broadcast, Src: epA.MAC(), Type: ethernet.TypeTest, Payload: []byte("bcast")})
	if got, ok := ep2.Recv(recvTimeout); !ok || string(got.Payload) != "bcast" {
		t.Fatal("local broadcast copy missing")
	}
	if got, ok := epB.Recv(recvTimeout); !ok || string(got.Payload) != "bcast" {
		t.Fatal("remote broadcast copy missing")
	}
	// The sender must not hear its own broadcast.
	if _, ok := epA.TryRecv(); ok {
		t.Fatal("broadcast looped back to sender")
	}
}

func TestNodeStats(t *testing.T) {
	na, _, epA, epB := twoNodes(t)
	epA.Send(&ethernet.Frame{Dst: epB.MAC(), Src: epA.MAC(), Type: ethernet.TypeTest, Payload: []byte("x")})
	if _, ok := epB.Recv(recvTimeout); !ok {
		t.Fatal("frame lost")
	}
	stats := na.Stats()
	want := map[string]bool{"encap_sent 1": true}
	found := 0
	for _, s := range stats {
		if want[s] {
			found++
		}
	}
	if found != len(want) {
		t.Fatalf("stats missing expected counters: %v", stats)
	}
	if len(stats) < 5 {
		t.Fatalf("stats too sparse: %v", stats)
	}
}

func TestDetachRemovesRoutes(t *testing.T) {
	na, _ := overlay.NewNode("x", "127.0.0.1:0")
	defer na.Close()
	na.AttachEndpoint("nic0", ethernet.LocalMAC(1), 1500)
	if len(na.Routes()) != 1 || len(na.Interfaces()) != 1 {
		t.Fatal("attach did not install route")
	}
	na.DetachEndpoint("nic0")
	if len(na.Routes()) != 0 || len(na.Interfaces()) != 0 {
		t.Fatal("detach left state behind")
	}
}

func TestDuplicateInterfaceRejected(t *testing.T) {
	na, _ := overlay.NewNode("x", "127.0.0.1:0")
	defer na.Close()
	na.AttachEndpoint("nic0", ethernet.LocalMAC(1), 1500)
	if _, err := na.AttachEndpoint("nic0", ethernet.LocalMAC(2), 1500); err == nil {
		t.Fatal("duplicate interface accepted")
	}
}

func TestUnknownLinkProtoRejected(t *testing.T) {
	na, _ := overlay.NewNode("x", "127.0.0.1:0")
	defer na.Close()
	if err := na.AddLink("l", "127.0.0.1:1", "sctp"); err == nil {
		t.Fatal("bogus link protocol accepted")
	}
}

// tcpNodes builds two loopback nodes connected by TCP encapsulation
// links in both directions.
func tcpNodes(t *testing.T) (*overlay.Node, *overlay.Node, *overlay.Endpoint, *overlay.Endpoint) {
	t.Helper()
	na, err := overlay.NewNode("a", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	nb, err := overlay.NewNode("b", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { na.Close(); nb.Close() })
	macA, macB := ethernet.LocalMAC(1), ethernet.LocalMAC(2)
	epA, _ := na.AttachEndpoint("nic0", macA, 60000)
	epB, _ := nb.AttachEndpoint("nic0", macB, 60000)
	if err := na.AddLink("to-b", nb.Addr(), "tcp"); err != nil {
		t.Fatal(err)
	}
	if err := nb.AddLink("to-a", na.Addr(), "tcp"); err != nil {
		t.Fatal(err)
	}
	na.AddRoute(core.Route{DstMAC: macB, DstQual: core.QualExact, SrcQual: core.QualAny,
		Dest: core.Destination{Type: core.DestLink, ID: "to-b"}})
	nb.AddRoute(core.Route{DstMAC: macA, DstQual: core.QualExact, SrcQual: core.QualAny,
		Dest: core.Destination{Type: core.DestLink, ID: "to-a"}})
	return na, nb, epA, epB
}

func TestTCPLinkDelivery(t *testing.T) {
	_, _, epA, epB := tcpNodes(t)
	f := &ethernet.Frame{Dst: epB.MAC(), Src: epA.MAC(), Type: ethernet.TypeTest,
		Payload: []byte("over tcp encapsulation")}
	if err := epA.Send(f); err != nil {
		t.Fatal(err)
	}
	got, ok := epB.Recv(recvTimeout)
	if !ok || !bytes.Equal(got.Payload, f.Payload) {
		t.Fatal("frame lost over TCP link")
	}
	// And the reverse direction (separate connection).
	epB.Send(&ethernet.Frame{Dst: epA.MAC(), Src: epB.MAC(), Type: ethernet.TypeTest, Payload: []byte("back")})
	if got, ok := epA.Recv(recvTimeout); !ok || string(got.Payload) != "back" {
		t.Fatal("reverse frame lost over TCP link")
	}
}

func TestTCPLinkLargeFrame(t *testing.T) {
	// A 48KB frame crosses a TCP link (multiple encapsulation datagrams
	// on one stream).
	_, _, epA, epB := tcpNodes(t)
	payload := bytes.Repeat([]byte{0x7e}, 48_000)
	if err := epA.Send(&ethernet.Frame{Dst: epB.MAC(), Src: epA.MAC(), Type: ethernet.TypeTest, Payload: payload}); err != nil {
		t.Fatal(err)
	}
	got, ok := epB.Recv(recvTimeout)
	if !ok || !bytes.Equal(got.Payload, payload) {
		t.Fatal("large frame corrupted over TCP link")
	}
}

func TestTCPLinkManyFramesInOrder(t *testing.T) {
	_, _, epA, epB := tcpNodes(t)
	const n = 200
	for i := 0; i < n; i++ {
		if err := epA.Send(&ethernet.Frame{Dst: epB.MAC(), Src: epA.MAC(), Type: ethernet.TypeTest,
			Payload: []byte(fmt.Sprintf("tcp-%03d", i))}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i++ {
		got, ok := epB.Recv(recvTimeout)
		if !ok {
			t.Fatalf("frame %d missing", i)
		}
		if want := fmt.Sprintf("tcp-%03d", i); string(got.Payload) != want {
			t.Fatalf("frame %d = %q, want %q", i, got.Payload, want)
		}
	}
}

func TestMixedProtoLinks(t *testing.T) {
	// UDP one way, TCP the other: protocols are per-link.
	na, nb, epA, epB := twoNodes(t)
	// Replace B's return path with TCP.
	if err := nb.DelLink("to-a"); err != nil {
		t.Fatal(err)
	}
	if err := nb.AddLink("to-a", na.Addr(), "tcp"); err != nil {
		t.Fatal(err)
	}
	nb.AddRoute(core.Route{DstMAC: epA.MAC(), DstQual: core.QualExact, SrcQual: core.QualAny,
		Dest: core.Destination{Type: core.DestLink, ID: "to-a"}})
	epA.Send(&ethernet.Frame{Dst: epB.MAC(), Src: epA.MAC(), Type: ethernet.TypeTest, Payload: []byte("via udp")})
	if got, ok := epB.Recv(recvTimeout); !ok || string(got.Payload) != "via udp" {
		t.Fatal("udp direction broken")
	}
	epB.Send(&ethernet.Frame{Dst: epA.MAC(), Src: epB.MAC(), Type: ethernet.TypeTest, Payload: []byte("via tcp")})
	if got, ok := epA.Recv(recvTimeout); !ok || string(got.Payload) != "via tcp" {
		t.Fatal("tcp direction broken")
	}
}
