// Diag bundle tests (ISSUE 10 satellite): the schema golden test pins
// the bundle's top-level JSON shape — triage tooling parses this
// document, so a key may be added but never renamed or removed without
// bumping DiagSchema — and the e2e test renders a bundle from a live
// two-node overlay while /metrics is being scraped concurrently,
// asserting the two surfaces tell the same story.
package overlay_test

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sort"
	"sync"
	"testing"
	"time"

	"vnetp/internal/ethernet"
	"vnetp/internal/overlay"
	"vnetp/internal/telemetry"
)

// diagGoldenKeys is the pinned top-level key set (sorted). Additions
// append here; renames and removals bump overlay.DiagSchema.
var diagGoldenKeys = []string{
	"addr",
	"build",
	"config",
	"drops",
	"flow_cache",
	"generated_at",
	"health",
	"metrics",
	"node",
	"runtime",
	"schema",
	"tenants",
	"top_flows",
	"traces",
	"tuning",
	"uptime_seconds",
}

func fetchDiag(t *testing.T, url string) (overlay.DiagBundle, map[string]json.RawMessage) {
	t.Helper()
	cl := &http.Client{Timeout: 5 * time.Second}
	resp, err := cl.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %s", url, resp.Status)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("Content-Type = %q", ct)
	}
	var raw map[string]json.RawMessage
	dec := json.NewDecoder(resp.Body)
	if err := dec.Decode(&raw); err != nil {
		t.Fatalf("diag decode: %v", err)
	}
	blob, _ := json.Marshal(raw)
	var b overlay.DiagBundle
	if err := json.Unmarshal(blob, &b); err != nil {
		t.Fatalf("diag unmarshal: %v", err)
	}
	return b, raw
}

// TestDiagSchemaGolden pins the bundle's shape on a single node with a
// little local traffic: the exact top-level key set, the schema
// version, and the non-optional sub-documents.
func TestDiagSchemaGolden(t *testing.T) {
	n, err := overlay.NewNode("diag-golden", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	src, err := n.AttachEndpoint("src", ethernet.LocalMAC(1), 1500)
	if err != nil {
		t.Fatal(err)
	}
	dst, err := n.AttachEndpoint("dst", ethernet.LocalMAC(2), 1500)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := src.Send(&ethernet.Frame{Dst: dst.MAC(), Src: src.MAC(),
			Type: ethernet.TypeTest, Payload: []byte("diag")}); err != nil {
			t.Fatal(err)
		}
		if _, ok := dst.Recv(recvTimeout); !ok {
			t.Fatal("frame lost")
		}
	}
	src.Send(&ethernet.Frame{Dst: ethernet.LocalMAC(9), Src: src.MAC(),
		Type: ethernet.TypeTest, Payload: []byte("unrouted")}) // land one drop

	ts := httptest.NewServer(n.DiagHandler())
	defer ts.Close()
	b, raw := fetchDiag(t, ts.URL)

	keys := make([]string, 0, len(raw))
	for k := range raw {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	if !reflect.DeepEqual(keys, diagGoldenKeys) {
		t.Fatalf("top-level keys drifted:\n got  %v\n want %v", keys, diagGoldenKeys)
	}
	if b.Schema != overlay.DiagSchema {
		t.Fatalf("schema = %d, want %d", b.Schema, overlay.DiagSchema)
	}
	if b.Node != "diag-golden" || b.Addr == "" {
		t.Fatalf("identity: node=%q addr=%q", b.Node, b.Addr)
	}
	if b.UptimeSeconds <= 0 || b.GeneratedAt.IsZero() {
		t.Fatalf("clock fields: uptime=%v generated_at=%v", b.UptimeSeconds, b.GeneratedAt)
	}
	if b.Build.GoVersion == "" || b.Build.OS == "" || b.Build.Arch == "" {
		t.Fatalf("build doc incomplete: %+v", b.Build)
	}
	if b.Config.Dispatchers <= 0 || b.Config.QueueDepth <= 0 {
		t.Fatalf("config not normalized: %+v", b.Config)
	}
	if len(b.Metrics) == 0 {
		t.Fatal("metrics section empty")
	}
	// Summary sections are empty on a linkless, keyless node — but they
	// must be present as arrays, never null.
	for _, key := range []string{"health", "tuning", "tenants", "traces"} {
		if string(raw[key]) == "null" {
			t.Fatalf("%s section rendered as null", key)
		}
	}
	if b.Drops.Total == 0 || b.Drops.ByReason["no_route"] != b.Drops.Total {
		t.Fatalf("drop ledger not reflected: %+v", b.Drops)
	}
	if len(b.Drops.Tails["no_route"]) == 0 {
		t.Fatal("no_route detail tail empty")
	}
	if len(b.TopFlows["0"]) == 0 {
		t.Fatal("tenant-0 heavy hitters empty after local traffic")
	}
	if len(b.Runtime) == 0 {
		t.Fatal("runtime section empty")
	}
	for _, c := range b.Runtime {
		if c.Name == "" {
			t.Fatalf("unnamed runtime component: %+v", b.Runtime)
		}
	}
	// Rendering the bundle is itself counted.
	_, raw2 := fetchDiag(t, ts.URL)
	var fams []telemetry.FamilySnapshot
	if err := json.Unmarshal(raw2["metrics"], &fams); err != nil {
		t.Fatal(err)
	}
	for _, f := range fams {
		if f.Name == "vnetp_diag_renders_total" {
			if len(f.Samples) != 1 || f.Samples[0].Value < 1 {
				t.Fatalf("diag_renders samples = %+v", f.Samples)
			}
			return
		}
	}
	t.Fatal("vnetp_diag_renders_total missing from bundle metrics")
}

// TestDiagEndToEnd renders bundles from a live two-node overlay while a
// goroutine hammers /metrics on the same listener, then checks the
// quiesced bundle agrees with a fresh scrape: same drop totals, same
// per-tenant frame counts, same flow-cache readings.
func TestDiagEndToEnd(t *testing.T) {
	na, _, epA, epB := twoNodes(t)
	srv, err := telemetry.ServeWith("127.0.0.1:0", na.Telemetry(), map[string]http.Handler{
		"/diag":     na.DiagHandler(),
		"/topflows": na.TopFlowsHandler(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()

	// Concurrent scrape pressure for the whole traffic phase.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		cl := &http.Client{Timeout: 5 * time.Second}
		for {
			select {
			case <-stop:
				return
			default:
			}
			if resp, err := cl.Get(base + "/metrics"); err == nil {
				resp.Body.Close()
			}
		}
	}()

	const frames = 30
	for i := 0; i < frames; i++ {
		if err := epA.Send(&ethernet.Frame{Dst: epB.MAC(), Src: epA.MAC(),
			Type: ethernet.TypeTest, Payload: []byte(fmt.Sprintf("diag-%d", i))}); err != nil {
			t.Fatal(err)
		}
		if _, ok := epB.Recv(recvTimeout); !ok {
			t.Fatalf("frame %d lost", i)
		}
	}
	epA.Send(&ethernet.Frame{Dst: ethernet.LocalMAC(77), Src: epA.MAC(),
		Type: ethernet.TypeTest, Payload: []byte("unrouted")})
	if _, raw := fetchDiag(t, base+"/diag"); len(raw) == 0 {
		t.Fatal("mid-traffic bundle empty")
	}
	close(stop)
	wg.Wait()

	// Quiesced: bundle and scrape must agree exactly.
	b, _ := fetchDiag(t, base+"/diag")
	series := scrape(t, base+"/metrics")
	if got := sumFamily(series, "vnetp_drops_total"); float64(b.Drops.Total) != got {
		t.Fatalf("drops: bundle=%d scrape=%v", b.Drops.Total, got)
	}
	var reasonSum uint64
	for _, v := range b.Drops.ByReason {
		reasonSum += v
	}
	if reasonSum != b.Drops.Total {
		t.Fatalf("bundle drop reasons sum to %d, total %d", reasonSum, b.Drops.Total)
	}
	if got := series[`vnetp_tenant_frames_out_total{tenant="0"}`]; got != frames+1 {
		t.Fatalf("tenant frames_out scrape = %v, want %d", got, frames+1)
	}
	for _, f := range b.Metrics {
		if f.Name != "vnetp_tenant_frames_out_total" {
			continue
		}
		var sum float64
		for _, s := range f.Samples {
			sum += s.Value
		}
		if sum != frames+1 {
			t.Fatalf("bundle tenant frames_out = %v, want %d", sum, frames+1)
		}
	}
	hits, misses, _, _ := na.FlowCacheStats()
	if b.FlowCache.Hits > hits || b.FlowCache.Misses > misses {
		t.Fatalf("flow cache went backwards: bundle=%+v live hits=%d misses=%d",
			b.FlowCache, hits, misses)
	}
	if len(b.TopFlows["0"]) == 0 {
		t.Fatal("heavy hitters empty after overlay traffic")
	}
}
