// The per-flow fast path (ISSUE 9): a flat (tenant, srcMAC, dstMAC) →
// forwarding-decision cache in front of the routing machinery, modeled
// on ONCache's observation that an overlay matches its baseline by
// caching the *entire* per-packet decision, not just the route. A hit
// resolves the destination endpoint or link, the encapsulation budget,
// the seal context, and the prebuilt header template in one sharded
// map read — no tenant-table lookup, no route-cache probe, and no
// node-mutex acquisition — so the steady-state hot path is one cache
// hit + one header memcpy + TX-ring enqueue.
//
// Correctness rests on epoch-based invalidation: the node keeps a
// single atomic flow epoch, and every event that can change a
// forwarding answer bumps it — route churn and FailDest/RestoreDest
// (via the routing table's invalidation hook), link add/delete/replace,
// tenant key installs, endpoint detach, LINK TUNE retunes, fault-
// conduit installs, and UDP→TCP auto-upgrades. An entry records the
// epoch observed *before* its backing route lookup ran; a hit is valid
// only while the entry's epoch equals the current one, so an
// invalidation racing a fill can only strand an already-stale entry,
// never resurrect one. A stale flow-cache entry would be a silent
// cross-tenant or dead-link delivery; the churn, fuzz, and failover
// suites pin that this never happens.

package overlay

import (
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"vnetp/internal/core"
	"vnetp/internal/ethernet"
	"vnetp/internal/telemetry"
	"vnetp/internal/trace"
)

// defaultFlowCacheSize is the default total entry capacity across all
// shards (NodeConfig.FlowCacheSize zero value): generous for the
// paper's VM-pair working sets while bounding a MAC-scan's memory.
const defaultFlowCacheSize = 16384

// flowShards is the number of independent cache segments, hashed by
// the packed flow key. Power of two for cheap masking.
const flowShards = 16

// flowEntry is one cached forwarding decision. All fields are
// immutable after the entry is stored; mutable link state (tunables,
// fault conduits, transport upgrades) is either read through the link
// pointer's own atomics or guarded by an epoch bump at mutation time.
type flowEntry struct {
	epoch  uint64 // flow epoch observed before the backing lookup
	tenant uint32

	// fl is the flow's live accounting entry (core.FlowStats.Acquire),
	// set when the entry was filled by a locally originated frame. A
	// hit accounts its frame with two atomic adds on it instead of the
	// stats table's hash + lock + map probe; nil (forwarded fills)
	// falls back to Record.
	fl *core.Flow

	// sli is the flow tenant's per-tenant indicator handles, resolved
	// at fill time so hits account tenant traffic with atomic adds.
	sli *tenantSLI

	// Exactly one of ep/lk is non-nil: local delivery or link forward.
	ep *Endpoint
	lk *link

	// Synchronous-transmit snapshot (meaningful when lk != nil and the
	// link has no TX ring): the encapsulation budget for the link's
	// transport, and whether the datagrams may go straight to the UDP
	// socket (fastUDP: UDP transport, no fault conduit) with the
	// prebuilt header template instead of the general send path.
	budget  int
	fastUDP bool
	addr    *net.UDPAddr
}

// flowShard is one cache segment. The map is read under the shard
// read-lock on every hit; fills and evictions take the write lock.
type flowShard struct {
	mu sync.RWMutex
	m  map[core.FlowKey]*flowEntry
}

// flowCache is the node's per-flow forwarding cache: flowShards
// independent segments plus atomic counters the telemetry funcs read.
// Invalidation is implicit (epoch mismatch on read) — a bump costs one
// atomic add no matter how many entries it retires; stale entries are
// overwritten on refill or evicted by the capacity bound.
type flowCache struct {
	shards   [flowShards]flowShard
	perShard int // entry cap per shard

	hits, misses, evictions atomic.Uint64
}

func newFlowCache(total int) *flowCache {
	if total <= 0 {
		total = defaultFlowCacheSize
	}
	per := total / flowShards
	if per < 1 {
		per = 1
	}
	c := &flowCache{perShard: per}
	for i := range c.shards {
		c.shards[i].m = make(map[core.FlowKey]*flowEntry)
	}
	return c
}

// lookup returns the entry for k if it exists and is current at epoch;
// a missing or stale entry is a miss.
func (c *flowCache) lookup(k core.FlowKey, epoch uint64) *flowEntry {
	sh := &c.shards[k.Shard(flowShards)]
	sh.mu.RLock()
	e := sh.m[k]
	sh.mu.RUnlock()
	if e == nil || e.epoch != epoch {
		c.misses.Add(1)
		return nil
	}
	c.hits.Add(1)
	return e
}

// store installs (or refreshes) k's entry. At capacity one resident
// entry is evicted — arbitrary victim, counted; the epoch check on
// read makes victim choice a pure performance question.
func (c *flowCache) store(k core.FlowKey, e *flowEntry) {
	sh := &c.shards[k.Shard(flowShards)]
	sh.mu.Lock()
	if _, resident := sh.m[k]; !resident && len(sh.m) >= c.perShard {
		for victim := range sh.m {
			delete(sh.m, victim)
			c.evictions.Add(1)
			break
		}
	}
	sh.m[k] = e
	sh.mu.Unlock()
}

// entries reports the resident entry count (current and stale alike —
// stale entries still occupy capacity until overwritten or evicted).
func (c *flowCache) entries() int {
	total := 0
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.RLock()
		total += len(sh.m)
		sh.mu.RUnlock()
	}
	return total
}

// bumpFlowEpoch retires every cached flow decision. Called from every
// mutation that can change a forwarding answer; route-table
// invalidations arrive via the core.Tenants hook installed at node
// construction.
func (n *Node) bumpFlowEpoch() { n.flowEpoch.Add(1) }

// FlowCacheStats reports the flow cache's counters and occupancy
// (zeroes when the cache is disabled).
func (n *Node) FlowCacheStats() (hits, misses, evictions uint64, entries int) {
	fc := n.fcache
	if fc == nil {
		return 0, 0, 0, 0
	}
	return fc.hits.Load(), fc.misses.Load(), fc.evictions.Load(), fc.entries()
}

// FlowEpoch exposes the current flow epoch (tests pin that specific
// events bump it).
func (n *Node) FlowEpoch() uint64 { return n.flowEpoch.Load() }

// flowHit forwards one frame from a cached decision — the hot path.
// The tenancy guards re-run here on immutable fields (entry, endpoint,
// and link tenants are all fixed at their creation), so even a
// hypothetical stale entry surviving an epoch bump could not cross
// tenants.
func (n *Node) flowHit(e *flowEntry, f *ethernet.Frame, from *Endpoint, at time.Time, tenant uint32) error {
	if from != nil {
		if fl := e.fl; fl != nil {
			atomic.AddUint64(&fl.Bytes, uint64(f.Len()))
			atomic.AddUint64(&fl.Packets, 1)
		} else {
			n.flows.Record(f.Src, f.Dst, f.Len())
		}
		e.sli.framesOut.Add(1)
		e.sli.bytesOut.Add(uint64(f.Len()))
	}
	if f.Tag != 0 {
		n.tracer.Record(f.Tag, trace.StageRouteLookup)
	}
	if e.ep != nil {
		ep := e.ep
		if ep == from {
			return nil
		}
		if ep.tenant != tenant {
			n.metrics.crossTenantDrops.Add(1)
			n.drop(dropCrossTenant, 1, telemetry.DropDetail{
				Tenant: tenant, Scope: ep.name, Stage: "flow_hit",
				Flow: core.FlowKey{Tenant: tenant, Src: f.Src, Dst: f.Dst}.String(),
			})
			return nil
		}
		ep.deliver(f)
		n.Delivered.Add(1)
		if f.Tag != 0 {
			n.tracer.Record(f.Tag, trace.StageDeliver)
			n.log.Debug("traced frame delivered",
				"trace_id", fmt.Sprintf("%016x", f.Tag), "interface", ep.name)
		}
		return nil
	}
	lk := e.lk
	if lk.tenant != tenant {
		n.metrics.crossTenantDrops.Add(1)
		n.drop(dropCrossTenant, 1, telemetry.DropDetail{
			Tenant: tenant, Scope: lk.id, Stage: "flow_hit",
			Flow: core.FlowKey{Tenant: tenant, Src: f.Src, Dst: f.Dst}.String(),
		})
		return nil
	}
	if lk.txq != nil {
		if f.Tag != 0 {
			n.tracer.Record(f.Tag, trace.StageTxEnqueue)
		}
		n.enqueueTx(lk, txFrame{f: f, at: at})
		return nil
	}
	if err := n.sendEncapCached(e, f); err != nil {
		return fmt.Errorf("link %q: %w", lk.id, err)
	}
	if !at.IsZero() {
		n.metrics.txLatency.Observe(time.Since(at).Seconds())
	}
	return nil
}

// sendEncapCached is the synchronous transmit leg of a flow-cache hit:
// template encapsulation plus a direct socket write when the cached
// snapshot allows it. Traced frames need the trace extension and
// faulted or TCP links need the general transport path, so both fall
// back to sendEncap — correctness first, the template is purely a
// fast-path encoding of the identical wire bytes.
func (n *Node) sendEncapCached(e *flowEntry, f *ethernet.Frame) error {
	lk := e.lk
	if f.Tag != 0 || !e.fastUDP {
		return n.sendEncap(lk, f)
	}
	pkt, err := n.encap.EncapsulateTemplate(f, n.nextID.Add(1), e.budget, lk.tmpl, lk.sealer)
	if err != nil {
		return err
	}
	defer pkt.Release()
	if lk.sealer != nil {
		n.metrics.sealSealed.Add(uint64(len(pkt.Datagrams)))
	}
	for _, d := range pkt.Datagrams {
		if _, err := n.conn.WriteToUDP(d, e.addr); err != nil {
			lk.sendErrors.Add(1)
			return err
		}
		lk.bytesSent.Add(uint64(len(d)))
	}
	n.EncapSent.Add(1)
	return nil
}
