package overlay_test

import (
	"fmt"
	"io"
	"net"
	"net/http"
	"runtime"
	"strconv"
	"strings"
	"testing"
	"time"

	"vnetp/internal/bridge"
	"vnetp/internal/core"
	"vnetp/internal/ethernet"
	"vnetp/internal/overlay"
	"vnetp/internal/telemetry"
	"vnetp/internal/virtio"
)

// batchNodes builds a sender (cfgA) → receiver (cfgB) pair with one
// endpoint each and a unicast route from A to B over one link of the
// given protocol.
func batchNodes(t testing.TB, cfgA, cfgB overlay.NodeConfig, proto string) (*overlay.Node, *overlay.Node, *overlay.Endpoint, *overlay.Endpoint) {
	t.Helper()
	na, err := overlay.NewNodeWithConfig("a", "127.0.0.1:0", cfgA)
	if err != nil {
		t.Fatal(err)
	}
	nb, err := overlay.NewNodeWithConfig("b", "127.0.0.1:0", cfgB)
	if err != nil {
		na.Close()
		t.Fatal(err)
	}
	t.Cleanup(func() { na.Close(); nb.Close() })
	macA, macB := ethernet.LocalMAC(1), ethernet.LocalMAC(2)
	epA, err := na.AttachEndpoint("nic0", macA, 9000)
	if err != nil {
		t.Fatal(err)
	}
	epB, err := nb.AttachEndpoint("nic0", macB, 9000)
	if err != nil {
		t.Fatal(err)
	}
	if err := na.AddLink("to-b", nb.Addr(), proto); err != nil {
		t.Fatal(err)
	}
	na.AddRoute(core.Route{DstMAC: macB, DstQual: core.QualExact, SrcQual: core.QualAny,
		Dest: core.Destination{Type: core.DestLink, ID: "to-b"}})
	return na, nb, epA, epB
}

// TestBatchedDelivery pins that the batched transmit path delivers every
// frame with intact contents: batching reorders nothing and recycled
// encapsulation buffers never leak one frame's bytes into another's.
func TestBatchedDelivery(t *testing.T) {
	_, _, epA, epB := batchNodes(t,
		overlay.NodeConfig{TxBatch: 8, TxFlushTimeout: 200 * time.Microsecond},
		overlay.NodeConfig{}, "udp")
	const frames = 200
	for i := 0; i < frames; i++ {
		f := &ethernet.Frame{
			Dst: epB.MAC(), Src: epA.MAC(), Type: ethernet.TypeTest,
			Payload: []byte(fmt.Sprintf("batched frame %03d", i)),
		}
		if err := epA.Send(f); err != nil {
			t.Fatal(err)
		}
	}
	seen := make(map[string]bool, frames)
	for i := 0; i < frames; i++ {
		got, ok := epB.Recv(recvTimeout)
		if !ok {
			t.Fatalf("frame %d of %d not delivered", i, frames)
		}
		p := string(got.Payload)
		if seen[p] {
			t.Fatalf("duplicate payload %q", p)
		}
		seen[p] = true
	}
	for i := 0; i < frames; i++ {
		if !seen[fmt.Sprintf("batched frame %03d", i)] {
			t.Fatalf("payload %d missing", i)
		}
	}
}

// TestBatchedDeliveryTCP runs the same contract over a TCP link, whose
// batched flush path shares one writer lock and one stream flush.
func TestBatchedDeliveryTCP(t *testing.T) {
	nb2, _, epA, epB := batchNodes(t,
		overlay.NodeConfig{TxBatch: 16, TxFlushTimeout: 200 * time.Microsecond},
		overlay.NodeConfig{}, "tcp")
	_ = nb2
	const frames = 100
	for i := 0; i < frames; i++ {
		f := &ethernet.Frame{
			Dst: epB.MAC(), Src: epA.MAC(), Type: ethernet.TypeTest,
			Payload: []byte(fmt.Sprintf("tcp batch %03d", i)),
		}
		if err := epA.Send(f); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < frames; i++ {
		got, ok := epB.Recv(recvTimeout)
		if !ok {
			t.Fatalf("frame %d of %d not delivered", i, frames)
		}
		if want := fmt.Sprintf("tcp batch %03d", i); string(got.Payload) != want {
			t.Fatalf("frame %d: got %q want %q (TCP batch must preserve order)", i, got.Payload, want)
		}
	}
}

// TestSendBatchAndDrainTX exercises the virtio-facing batch entry
// points: a guest TX queue drained with single-exit semantics into
// SendBatch, everything delivered.
func TestSendBatchAndDrainTX(t *testing.T) {
	_, _, epA, epB := batchNodes(t,
		overlay.NodeConfig{TxBatch: 32, TxFlushTimeout: 200 * time.Microsecond},
		overlay.NodeConfig{}, "udp")
	q := virtio.NewQueue(64)
	const frames = 48
	pushed := 0
	var scratch []*ethernet.Frame
	for pushed < frames {
		for pushed < frames && q.Push(&ethernet.Frame{
			Dst: epB.MAC(), Src: epA.MAC(), Type: ethernet.TypeTest,
			Payload: []byte(fmt.Sprintf("drained %02d", pushed)),
		}) {
			pushed++
		}
		n, err := epA.DrainTX(q, scratch, 0)
		if err != nil {
			t.Fatal(err)
		}
		if n == 0 {
			t.Fatal("DrainTX drained nothing from a non-empty queue")
		}
	}
	for i := 0; i < frames; i++ {
		if _, ok := epB.Recv(recvTimeout); !ok {
			t.Fatalf("frame %d of %d not delivered", i, frames)
		}
	}
	if n, err := epA.DrainTX(q, scratch, 0); n != 0 || err != nil {
		t.Fatalf("empty drain: n=%d err=%v", n, err)
	}
}

// scrapeMetrics fetches a live /metrics exposition from a node.
func scrapeMetrics(t *testing.T, n *overlay.Node) string {
	t.Helper()
	srv, err := telemetry.Serve("127.0.0.1:0", n.Telemetry())
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	resp, err := http.Get("http://" + srv.Addr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

// metricValue extracts the value of the first sample line whose name
// (including any label set) starts with prefix.
func metricValue(t *testing.T, scrape, prefix string) float64 {
	t.Helper()
	for _, line := range strings.Split(scrape, "\n") {
		if strings.HasPrefix(line, "#") || !strings.HasPrefix(line, prefix) {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			continue
		}
		v, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			t.Fatalf("parsing %q: %v", line, err)
		}
		return v
	}
	t.Fatalf("no %q series in scrape", prefix)
	return 0
}

// TestTxBatchTelemetryScrape pins the new transmit-path series in a live
// /metrics scrape: the batch-size histogram records flushes, the
// per-link TX ring depth gauge exists, and the encapsulation buffer pool
// reports traffic.
func TestTxBatchTelemetryScrape(t *testing.T) {
	na, nb, epA, epB := batchNodes(t,
		overlay.NodeConfig{TxBatch: 8, TxFlushTimeout: 100 * time.Microsecond},
		overlay.NodeConfig{}, "udp")
	_ = nb
	const frames = 64
	for i := 0; i < frames; i++ {
		f := &ethernet.Frame{Dst: epB.MAC(), Src: epA.MAC(), Type: ethernet.TypeTest,
			Payload: []byte("metrics probe")}
		if err := epA.Send(f); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < frames; i++ {
		if _, ok := epB.Recv(recvTimeout); !ok {
			t.Fatalf("frame %d not delivered", i)
		}
	}
	scrape := scrapeMetrics(t, na)
	if c := metricValue(t, scrape, "vnetp_tx_batch_size_count"); c < 1 {
		t.Fatalf("vnetp_tx_batch_size_count = %v, want >= 1", c)
	}
	if s := metricValue(t, scrape, "vnetp_tx_batch_size_sum"); s != frames {
		t.Fatalf("vnetp_tx_batch_size_sum = %v, want %d (every frame flushed exactly once)", s, frames)
	}
	if !strings.Contains(scrape, `vnetp_link_tx_queue_depth{link="to-b"}`) {
		t.Fatal("per-link TX queue depth gauge missing from scrape")
	}
	hits := metricValue(t, scrape, "vnetp_encap_pool_hits_total")
	misses := metricValue(t, scrape, "vnetp_encap_pool_misses_total")
	if hits+misses < frames {
		t.Fatalf("pool hits(%v)+misses(%v) < %d frames", hits, misses, frames)
	}
	if hits == 0 {
		t.Fatal("encapsulation pool never hit across 64 frames")
	}
}

// TestSyncPathKeepsSurfaces pins that a default (TxBatch=1) node changes
// nothing: no TX ring gauge registered, no batch-size observations, and
// the synchronous latency accounting still runs.
func TestSyncPathKeepsSurfaces(t *testing.T) {
	na, _, epA, epB := batchNodes(t, overlay.NodeConfig{}, overlay.NodeConfig{}, "udp")
	f := &ethernet.Frame{Dst: epB.MAC(), Src: epA.MAC(), Type: ethernet.TypeTest, Payload: []byte("sync")}
	if err := epA.Send(f); err != nil {
		t.Fatal(err)
	}
	if _, ok := epB.Recv(recvTimeout); !ok {
		t.Fatal("frame not delivered")
	}
	scrape := scrapeMetrics(t, na)
	if c := metricValue(t, scrape, "vnetp_tx_batch_size_count"); c != 0 {
		t.Fatalf("sync node observed %v TX batches", c)
	}
	if strings.Contains(scrape, `vnetp_link_tx_queue_depth{`) {
		t.Fatal("sync node registered a TX ring depth gauge")
	}
	if c := metricValue(t, scrape, "vnetp_tx_latency_seconds_count"); c < 1 {
		t.Fatalf("sync TX latency histogram empty (%v)", c)
	}
}

// TestReassemblyEvictionGauge sends an orphan fragment (a dead sender's
// partial) at a node running a fast eviction clock and pins the full
// cleanup story: the pending gauge rises, then returns to zero, and the
// eviction counter records the drop.
func TestReassemblyEvictionGauge(t *testing.T) {
	nb, err := overlay.NewNodeWithConfig("b", "127.0.0.1:0",
		overlay.NodeConfig{EvictInterval: 20 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { nb.Close() })

	big := &ethernet.Frame{
		Dst: ethernet.LocalMAC(9), Src: ethernet.LocalMAC(8), Type: ethernet.TypeTest,
		Payload: make([]byte, 3000),
	}
	dgs, err := bridge.Encapsulate(big, 77, 1400)
	if err != nil {
		t.Fatal(err)
	}
	if len(dgs) < 2 {
		t.Fatalf("want a fragmented packet, got %d datagrams", len(dgs))
	}
	conn, err := net.Dial("udp", nb.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write(dgs[0]); err != nil { // first fragment only: sender then "dies"
		t.Fatal(err)
	}

	pending := func() float64 {
		var sum float64
		for _, fam := range nb.Telemetry().Gather() {
			if fam.Name == "vnetp_reassembly_pending" {
				for _, s := range fam.Samples {
					sum += s.Value
				}
			}
		}
		return sum
	}
	waitFor := func(cond func() bool, what string) {
		t.Helper()
		deadline := time.Now().Add(recvTimeout)
		for !cond() {
			if time.Now().After(deadline) {
				t.Fatalf("timeout waiting for %s", what)
			}
			time.Sleep(2 * time.Millisecond)
		}
	}
	waitFor(func() bool { return pending() >= 1 }, "partial reassembly to register")
	waitFor(func() bool { return pending() == 0 }, "stale partial to be evicted")

	evictions := 0.0
	for _, fam := range nb.Telemetry().Gather() {
		if fam.Name == "vnetp_reassembly_evictions_total" {
			evictions = fam.Samples[0].Value
		}
	}
	if evictions < 1 {
		t.Fatalf("vnetp_reassembly_evictions_total = %v, want >= 1", evictions)
	}
}

// BenchmarkOverlayTxBatching is the Fig. 5-style sweep for the transmit
// path: 64-byte frames through one UDP link at TxBatch 1 (the
// synchronous path) versus batched settings. Throughput is measured at
// the sender's wire boundary (frames encapsulated and pushed to the
// socket), with window pacing against the encapsulation counter so the
// TX ring never overflows.
func BenchmarkOverlayTxBatching(b *testing.B) {
	for _, batch := range []int{1, 8, 32, 128} {
		b.Run(fmt.Sprintf("batch=%d", batch), func(b *testing.B) {
			const ring = 4096
			const window = 1024
			na, _, epA, epB := batchNodes(b,
				overlay.NodeConfig{TxBatch: batch, TxRing: ring, TxFlushTimeout: 200 * time.Microsecond},
				overlay.NodeConfig{QueueDepth: 8192}, "udp")
			f := &ethernet.Frame{
				Dst: epB.MAC(), Src: epA.MAC(), Type: ethernet.TypeTest,
				Payload: make([]byte, 64),
			}
			b.SetBytes(64)
			b.ReportAllocs()
			b.ResetTimer()
			var sent uint64
			for i := 0; i < b.N; i++ {
				for sent-na.EncapSent.Load() >= window {
					runtime.Gosched()
				}
				if err := epA.Send(f); err != nil {
					b.Fatal(err)
				}
				sent++
			}
			deadline := time.Now().Add(10 * time.Second)
			for na.EncapSent.Load() < sent {
				if time.Now().After(deadline) {
					b.Fatalf("stalled: %d of %d frames encapsulated", na.EncapSent.Load(), sent)
				}
				runtime.Gosched()
			}
			b.StopTimer()
		})
	}
}
