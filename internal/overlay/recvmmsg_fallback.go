//go:build !linux || !(amd64 || arm64)

package overlay

import "net"

// newPlatformBatchReader on platforms without recvmmsg: no batch
// reader; the caller falls back to the portable per-datagram loop.
func newPlatformBatchReader(c *net.UDPConn, batch int) batchReader {
	return nil
}
