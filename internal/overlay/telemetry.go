// Runtime visibility for the live datapath. Every node owns a
// telemetry.Registry; the node, link, health-monitor, and dispatcher
// counters are registry-backed handles, and the control plane's LIST
// STATS / LINK STATUS / LIST HEALTH render from the same handles that
// /metrics scrapes — the two surfaces cannot drift. Naming scheme:
// vnetp_<subsystem>_<name>{_total} with per-link ("link") and per-worker
// ("worker") label families; latencies and RTTs are log-bucketed
// histograms in seconds (the paper's Fig. 7 per-stage budget, measured
// on the real path).
package overlay

import (
	"fmt"
	"strconv"

	"vnetp/internal/seal"
	"vnetp/internal/telemetry"
)

// nodeMetrics holds a node's registered metric handles. Scalar node
// counters live directly on Node (exported, used by examples and
// tests); this struct carries the labeled families and histograms.
type nodeMetrics struct {
	reg *telemetry.Registry

	epDrops *telemetry.CounterVec // interface

	linkSendErrors *telemetry.CounterVec // link
	linkBytesSent  *telemetry.CounterVec
	linkBytesRecv  *telemetry.CounterVec
	linkProbesSent *telemetry.CounterVec
	linkProbesLost *telemetry.CounterVec
	linkReplies    *telemetry.CounterVec
	linkFailovers  *telemetry.CounterVec
	linkFailbacks  *telemetry.CounterVec
	linkRedials    *telemetry.CounterVec
	linkUpgrades   *telemetry.CounterVec
	linkTxDrops    *telemetry.CounterVec
	linkTxFrames   *telemetry.CounterVec
	linkTxDepth    *telemetry.GaugeVec
	linkState      *telemetry.GaugeVec
	linkRTT        *telemetry.HistogramVec

	dispatchMode *telemetry.GaugeVec   // link
	modeSwitches *telemetry.CounterVec // link

	dispDatagrams *telemetry.CounterVec // worker
	dispFrames    *telemetry.CounterVec
	dispDrops     *telemetry.CounterVec
	dispRing      *telemetry.GaugeVec
	reasmPending  *telemetry.GaugeVec

	// Sealed-datapath families: datagrams sealed on TX, opened on RX,
	// fail-closed rejections by typed reason, and frames dropped by the
	// tenancy guards.
	sealSealed       *telemetry.Counter
	sealOpened       *telemetry.Counter
	sealRejects      *telemetry.CounterVec // reason
	crossTenantDrops *telemetry.Counter

	reasmEvictions *telemetry.Counter
	txBatchSize    *telemetry.Histogram
	rxBatchSize    *telemetry.Histogram
	txLatency      *telemetry.Histogram
	rxLatency      *telemetry.Histogram

	// Runtime supervision (internal/supervise), labeled by component
	// ("dispatcher/<i>", "tx/<link>", "reader", "prober", "evictor",
	// "health").
	panicsRecovered   *telemetry.CounterVec // component
	componentRestarts *telemetry.CounterVec
	watchdogStalls    *telemetry.CounterVec

	// Introspection layer (ISSUE 10): anomaly-watchdog alerts by kind
	// ("drop_rate", "watchdog_stall") and /diag bundle renders.
	anomalies   *telemetry.CounterVec // kind
	diagRenders *telemetry.Counter
}

func newNodeMetrics(reg *telemetry.Registry) *nodeMetrics {
	return &nodeMetrics{
		reg: reg,

		epDrops: reg.CounterVec("vnetp_endpoint_ring_drops_total",
			"Frames dropped at a full endpoint receive ring.", "interface"),

		linkSendErrors: reg.CounterVec("vnetp_link_send_errors_total",
			"Transport send failures per link (including inside fault conduits).", "link"),
		linkBytesSent: reg.CounterVec("vnetp_link_bytes_sent_total",
			"Encapsulation bytes sent per link (data and probes).", "link"),
		linkBytesRecv: reg.CounterVec("vnetp_link_bytes_recv_total",
			"Encapsulation bytes received per link (data and probes).", "link"),
		linkProbesSent: reg.CounterVec("vnetp_link_probes_sent_total",
			"Liveness probes sent per link.", "link"),
		linkProbesLost: reg.CounterVec("vnetp_link_probes_lost_total",
			"Liveness probes lost (unanswered within the timeout) per link.", "link"),
		linkReplies: reg.CounterVec("vnetp_link_probe_replies_total",
			"Liveness probe replies received per link.", "link"),
		linkFailovers: reg.CounterVec("vnetp_link_failovers_total",
			"Down transitions that failed backup-equipped routes over.", "link"),
		linkFailbacks: reg.CounterVec("vnetp_link_failbacks_total",
			"Recoveries that restored failed-over routes.", "link"),
		linkRedials: reg.CounterVec("vnetp_link_redials_total",
			"TCP transport re-establishments per link.", "link"),
		linkUpgrades: reg.CounterVec("vnetp_link_upgrades_total",
			"UDP links auto-upgraded to TCP encapsulation.", "link"),
		linkTxDrops: reg.CounterVec("vnetp_link_tx_ring_drops_total",
			"Frames dropped at a full link TX ring (batched transmit).", "link"),
		linkTxFrames: reg.CounterVec("vnetp_link_tx_frames_total",
			"Frames enqueued onto a link's TX ring (the adaptive controller's rate sensor).", "link"),
		dispatchMode: reg.GaugeVec("vnetp_dispatch_mode",
			"Per-link dispatch mode: 0 latency (batch=1), 1 throughput (batch=TxBatch).", "link"),
		modeSwitches: reg.CounterVec("vnetp_dispatch_mode_switches_total",
			"Dispatch mode transitions per link (adaptive controller or LINK TUNE).", "link"),
		linkTxDepth: reg.GaugeVec("vnetp_link_tx_queue_depth",
			"Frames queued in a link's TX ring (batched transmit).", "link"),
		linkState: reg.GaugeVec("vnetp_link_state",
			"Link liveness state: 0 up, 1 degraded, 2 down.", "link"),
		linkRTT: reg.HistogramVec("vnetp_link_rtt_seconds",
			"Liveness probe round-trip time per link.", telemetry.LatencyBuckets, "link"),

		dispDatagrams: reg.CounterVec("vnetp_dispatcher_datagrams_total",
			"Data datagrams processed per dispatcher worker.", "worker"),
		dispFrames: reg.CounterVec("vnetp_dispatcher_frames_total",
			"Completed inner frames routed per dispatcher worker.", "worker"),
		dispDrops: reg.CounterVec("vnetp_dispatcher_drops_total",
			"Datagrams dropped at a full dispatcher ring.", "worker"),
		dispRing: reg.GaugeVec("vnetp_dispatcher_ring_depth",
			"Datagrams queued in a dispatcher's inbound ring.", "worker"),
		reasmPending: reg.GaugeVec("vnetp_reassembly_pending",
			"Partially reassembled packets held per dispatcher worker.", "worker"),

		sealSealed: reg.Counter("vnetp_seal_sealed_total",
			"Encapsulation datagrams sealed (AEAD-encrypted) on the transmit path."),
		sealOpened: reg.Counter("vnetp_seal_opened_total",
			"Sealed datagrams authenticated and decrypted on the receive path."),
		sealRejects: reg.CounterVec("vnetp_seal_reject_total",
			"Sealed datagrams rejected fail-closed, by reason.", "reason"),
		crossTenantDrops: reg.Counter("vnetp_cross_tenant_drops_total",
			"Frames dropped by the tenancy guards (endpoint or link bound to a different tenant)."),

		reasmEvictions: reg.Counter("vnetp_reassembly_evictions_total",
			"Stale partial reassemblies aged out."),
		txBatchSize: reg.Histogram("vnetp_tx_batch_size",
			"Frames coalesced per link TX batch flush.",
			telemetry.HistogramOpts{Start: 1, Factor: 2, Count: 9}),
		rxBatchSize: reg.Histogram("vnetp_rx_batch_size",
			"Datagrams drained from the UDP socket per read-loop wakeup (recvmmsg batch).",
			telemetry.HistogramOpts{Start: 1, Factor: 2, Count: 9}),
		txLatency: reg.Histogram("vnetp_tx_latency_seconds",
			"Frame-in to datagram-out latency for locally originated frames hitting a link.",
			telemetry.LatencyBuckets),
		rxLatency: reg.Histogram("vnetp_rx_latency_seconds",
			"Datagram-in to frame-delivery latency on the receive path.",
			telemetry.LatencyBuckets),

		panicsRecovered: reg.CounterVec("vnetp_panics_recovered_total",
			"Panics recovered in supervised datapath components.", "component"),
		componentRestarts: reg.CounterVec("vnetp_component_restarts_total",
			"Supervised component relaunches (panic recoveries and watchdog supersessions).", "component"),
		watchdogStalls: reg.CounterVec("vnetp_watchdog_stalls_total",
			"Stalled supervised components detected and superseded by the watchdog.", "component"),

		anomalies: reg.CounterVec("vnetp_anomalies_total",
			"Anomaly-watchdog alerts (drop-rate or stall thresholds crossed), by kind.", "kind"),
		diagRenders: reg.Counter("vnetp_diag_renders_total",
			"Diagnostic snapshot bundles rendered (/diag and vnetctl diag)."),
	}
}

// registerNodeFuncs installs the snapshot-time metrics that read state
// maintained elsewhere: node counters, routing-cache atomics, ring
// depths, and reassembler occupancy. Called once the shards exist.
func (n *Node) registerNodeFuncs() {
	m := n.metrics
	reg := m.reg
	reg.GaugeFunc("vnetp_dispatchers", "Receive dispatcher pool size.",
		func() float64 { return float64(len(n.shards)) })
	reg.CounterFunc("vnetp_route_cache_hits_total", "Routing-cache hits.",
		func() uint64 { h, _ := n.table.CacheStats(); return h })
	reg.CounterFunc("vnetp_route_cache_misses_total", "Routing-cache misses.",
		func() uint64 { _, m := n.table.CacheStats(); return m })
	reg.CounterFunc("vnetp_encap_pool_hits_total",
		"Encapsulation buffer pool hits on the transmit path.",
		func() uint64 { h, _ := n.encap.PoolStats(); return h })
	reg.CounterFunc("vnetp_encap_pool_misses_total",
		"Encapsulation buffer pool misses (fresh allocations) on the transmit path.",
		func() uint64 { _, m := n.encap.PoolStats(); return m })
	for _, s := range n.shards {
		s := s
		w := strconv.Itoa(s.idx)
		m.dispRing.Func(func() float64 { return float64(len(s.in)) }, w)
		m.reasmPending.Func(func() float64 {
			s.mu.Lock()
			defer s.mu.Unlock()
			return float64(s.reasm.Pending())
		}, w)
	}
	// Flow-cache families read the cache's atomics (all zero when the
	// cache is disabled, so the scrape surface is stable either way).
	reg.CounterFunc("vnetp_flow_cache_hits_total",
		"Per-flow forwarding cache hits (full decision served in one lookup).",
		func() uint64 { h, _, _, _ := n.FlowCacheStats(); return h })
	reg.CounterFunc("vnetp_flow_cache_misses_total",
		"Per-flow forwarding cache misses (absent or epoch-stale entries).",
		func() uint64 { _, m, _, _ := n.FlowCacheStats(); return m })
	reg.CounterFunc("vnetp_flow_cache_evictions_total",
		"Per-flow forwarding cache entries evicted at the capacity bound.",
		func() uint64 { _, _, e, _ := n.FlowCacheStats(); return e })
	reg.GaugeFunc("vnetp_flow_cache_entries",
		"Per-flow forwarding cache resident entries (stale entries included until overwritten).",
		func() float64 { _, _, _, ent := n.FlowCacheStats(); return float64(ent) })
	reg.GaugeFunc("vnetp_tenants",
		"Tenants with installed AEAD keys on this node.",
		func() float64 { return float64(n.keyring.Count()) })
	// The reject-reason label set is fixed (seal.RejectReasons), so every
	// child exists from node start — a scrape sees zeroes, not absence.
	for _, r := range seal.RejectReasons {
		m.sealRejects.With(r)
	}
	reg.CounterFunc("vnetp_trace_sampled_total",
		"Frames selected for live tracing (sampler or flow trigger).",
		func() uint64 { return n.tracer.Sampled() })
	reg.GaugeFunc("vnetp_trace_active",
		"Trace paths currently retained by the live tracer.",
		func() float64 { return float64(n.tracer.Active()) })
	reg.CounterFunc("vnetp_flight_events_total",
		"Datagram events captured by the per-dispatcher flight recorders.",
		func() uint64 {
			var t uint64
			for _, s := range n.shards {
				t += s.flight.Total()
			}
			return t
		})
}

// Telemetry exposes the node's metrics registry, e.g. for
// telemetry.Serve (the vnetpd -telemetry-addr flag).
func (n *Node) Telemetry() *telemetry.Registry { return n.metrics.reg }

// newLinkCounters hands a fresh (or re-added) link its registry
// children. Caller must have dropped any previous link of the same id
// via dropLinkMetrics so counters restart from zero, matching the
// pre-registry semantics of a replaced link.
func (n *Node) newLinkCounters(lk *link) {
	m := n.metrics
	lk.sendErrors = m.linkSendErrors.With(lk.id)
	lk.bytesSent = m.linkBytesSent.With(lk.id)
	lk.bytesRecv = m.linkBytesRecv.With(lk.id)
	lk.txDrops = m.linkTxDrops.With(lk.id)
	if q := lk.txq; q != nil { // batched mode: ring depth + dispatch-mode family
		m.linkTxDepth.Func(func() float64 { return float64(len(q)) }, lk.id)
		lk.txFrames = m.linkTxFrames.With(lk.id)
		lk.modeGauge = m.dispatchMode.With(lk.id)
		lk.modeSwitches = m.modeSwitches.With(lk.id)
	}
}

// dropLinkMetrics removes a link's children from every per-link family
// (link deleted or replaced).
func (n *Node) dropLinkMetrics(id string) {
	m := n.metrics
	for _, v := range []*telemetry.CounterVec{
		m.linkSendErrors, m.linkBytesSent, m.linkBytesRecv,
		m.linkProbesSent, m.linkProbesLost, m.linkReplies,
		m.linkFailovers, m.linkFailbacks, m.linkRedials, m.linkUpgrades,
		m.linkTxDrops, m.linkTxFrames, m.modeSwitches,
	} {
		v.Delete(id)
	}
	m.linkState.Delete(id)
	m.linkRTT.Delete(id)
	m.linkTxDepth.Delete(id)
	m.dispatchMode.Delete(id)
}

// --- control-plane rendering ---
//
// The renderers below are the single source of the "name value" counter
// lines the control language exposes (LIST STATS, LINK STATUS, LIST
// HEALTH). They read exactly the registry handles /metrics scrapes.

// statLine renders one control-plane counter line.
func statLine(name string, v uint64) string {
	return fmt.Sprintf("%s %d", name, v)
}

// linkSnapshot is one link's counter state, captured under n.mu and
// rendered by both LINK STATUS and LIST HEALTH.
type linkSnapshot struct {
	id, proto, remote string
	monitored         bool
	state             LinkState
	rttUS             int64
	lossPct           float64

	probesSent, probesLost, repliesRecv       uint64
	failovers, failbacks, redials, upgrades   uint64
	sendErrors, bytesSent, bytesRecv, txDrops uint64
}

// snapshotLinkLocked captures a link's counters. Caller holds n.mu.
func (n *Node) snapshotLinkLocked(lk *link) linkSnapshot {
	s := linkSnapshot{
		id: lk.id, proto: lk.proto, remote: lk.remote,
		sendErrors: lk.sendErrors.Load(),
		bytesSent:  lk.bytesSent.Load(),
		bytesRecv:  lk.bytesRecv.Load(),
		txDrops:    lk.txDrops.Load(),
	}
	if h := lk.health; h != nil {
		s.monitored = true
		s.state = h.state
		s.rttUS = h.rtt.Microseconds()
		s.lossPct = h.lossRate() * 100
		s.probesSent = h.probesSent.Load()
		s.probesLost = h.probesLost.Load()
		s.repliesRecv = h.repliesRecv.Load()
		s.failovers = h.failovers.Load()
		s.failbacks = h.failbacks.Load()
		s.redials = h.redials.Load()
		s.upgrades = h.upgrades.Load()
	}
	return s
}

// statusLines renders a snapshot in LINK STATUS form. The line set and
// order up to "upgrades" are pinned for backward compatibility; the
// bytes counters and TX ring drops append after.
func (s linkSnapshot) statusLines() []string {
	lines := []string{fmt.Sprintf("link %s proto %s remote %s", s.id, s.proto, s.remote)}
	if !s.monitored {
		return append(lines,
			"state unmonitored",
			statLine("send_errors", s.sendErrors),
			statLine("bytes_sent", s.bytesSent),
			statLine("bytes_recv", s.bytesRecv),
			statLine("tx_ring_drops", s.txDrops),
		)
	}
	return append(lines,
		fmt.Sprintf("state %s", s.state),
		statLine("rtt_us", uint64(s.rttUS)),
		fmt.Sprintf("loss_pct %.1f", s.lossPct),
		statLine("probes_sent", s.probesSent),
		statLine("probes_lost", s.probesLost),
		statLine("replies_recv", s.repliesRecv),
		statLine("send_errors", s.sendErrors),
		statLine("failovers", s.failovers),
		statLine("failbacks", s.failbacks),
		statLine("redials", s.redials),
		statLine("upgrades", s.upgrades),
		statLine("bytes_sent", s.bytesSent),
		statLine("bytes_recv", s.bytesRecv),
		statLine("tx_ring_drops", s.txDrops),
	)
}

// summaryLine renders a snapshot in LIST HEALTH one-line form.
func (s linkSnapshot) summaryLine() string {
	if !s.monitored {
		return fmt.Sprintf("%s %s unmonitored", s.id, s.proto)
	}
	return fmt.Sprintf("%s %s %s rtt_us=%d loss_pct=%.1f sent=%d lost=%d send_errors=%d",
		s.id, s.proto, s.state, s.rttUS, s.lossPct,
		s.probesSent, s.probesLost, s.sendErrors)
}
