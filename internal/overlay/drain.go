// Graceful node shutdown. Close tears the node down immediately —
// whatever sits in a TX ring or a dispatcher ring at that instant is
// discarded, which is the right behavior for a crash path but not for
// an operated service being restarted or migrated (ROADMAP north star:
// an overlay for millions of users must roll nodes without losing the
// traffic it already accepted). Drain is the operated path: stop
// admitting new local frames, let the senders and dispatchers flush
// everything already queued under a caller-supplied deadline, then
// quiesce the workers. vnetpd wires it into SIGTERM (-drain-timeout).
package overlay

import (
	"context"
	"errors"
	"time"
)

// ErrDraining is returned by Endpoint.Send/SendBatch once Drain has
// begun: the node no longer admits new local frames (forwarding of
// frames already in flight, and of remote traffic, continues until the
// queues are empty or the deadline expires).
var ErrDraining = errors.New("overlay: node draining")

// DrainStats summarizes what a Drain accomplished, for the daemon's
// shutdown log line.
type DrainStats struct {
	// FramesFlushed is how many queued frames/datagrams (link TX rings
	// plus dispatcher RX rings) drained to completion during the grace
	// period.
	FramesFlushed uint64
	// FramesDropped is how many were still queued when the deadline
	// expired and were discarded by the final teardown — rings and the
	// partial batches the TX senders had already collected but not yet
	// flushed (counted by their teardown defers during Close).
	FramesDropped uint64
	// PartialsDropped counts incomplete reassemblies discarded at
	// quiesce (their missing fragments can never arrive once the node
	// is gone).
	PartialsDropped uint64
	// Elapsed is how long the drain took, teardown included.
	Elapsed time.Duration
}

// queuedLocked sums the frames sitting in every link TX ring and the
// datagrams in every dispatcher ring. Caller holds n.mu for the link
// half; shard rings are channels, safe to len() anytime.
func (n *Node) queued() uint64 {
	var q uint64
	n.mu.Lock()
	for _, lk := range n.links {
		if lk.txq != nil {
			q += uint64(len(lk.txq))
		}
	}
	n.mu.Unlock()
	for _, s := range n.shards {
		q += uint64(len(s.in))
	}
	return q
}

// txDropsTotal sums every link's TX ring drop counter. Close does not
// clear the link set or its metrics, so a delta around Close captures
// the in-hand batches the sender teardown defers counted.
func (n *Node) txDropsTotal() uint64 {
	var t uint64
	n.mu.Lock()
	for _, lk := range n.links {
		t += lk.txDrops.Load()
	}
	n.mu.Unlock()
	return t
}

// pendingReassemblies sums incomplete reassembly entries across shards.
func (n *Node) pendingReassemblies() uint64 {
	var p uint64
	for _, s := range n.shards {
		s.mu.Lock()
		p += uint64(s.reasm.Pending())
		s.mu.Unlock()
	}
	return p
}

// Drain gracefully shuts the node down: admission stops immediately
// (Send returns ErrDraining), the TX senders and dispatchers keep
// running until every ring is empty or ctx expires, and the node is
// then closed. Frames the node had accepted before Drain began are not
// lost unless the deadline forces it — the zero-loss SIGTERM property
// vnetpd builds on. Returns what was flushed and what the deadline
// abandoned; the error is ctx's if the deadline cut the flush short,
// or Close's.
func (n *Node) Drain(ctx context.Context) (DrainStats, error) {
	start := time.Now()
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return DrainStats{}, errors.New("overlay: node closed")
	}
	n.mu.Unlock()
	if !n.draining.CompareAndSwap(false, true) {
		return DrainStats{}, errors.New("overlay: drain already in progress")
	}
	n.log.Info("drain started", "node", n.name, "queued", n.queued())

	// Flush phase: poll until every ring is empty (twice, a settle
	// interval apart, so a batch the sender has popped but not yet
	// written also makes it out) or the deadline expires.
	pending := n.queued()
	var flushErr error
	settle := 2 * n.cfg.TxFlushTimeout
	if settle < time.Millisecond {
		settle = time.Millisecond
	}
	emptyStreak := 0
	for {
		if ctx.Err() != nil {
			flushErr = ctx.Err()
			break
		}
		if n.queued() == 0 {
			emptyStreak++
			if emptyStreak >= 2 {
				break
			}
		} else {
			emptyStreak = 0
		}
		select {
		case <-ctx.Done():
			flushErr = ctx.Err()
		case <-time.After(settle):
		}
		if flushErr != nil {
			break
		}
	}

	remaining := n.queued()
	st := DrainStats{FramesDropped: remaining}
	if pending > remaining {
		st.FramesFlushed = pending - remaining
	}
	st.PartialsDropped = n.pendingReassemblies()

	// Close waits for the supervised senders to unwind (Supervisor.Stop
	// joins them), so after it returns every txLoop teardown defer has
	// counted its abandoned in-hand batch into tx_ring_drops. Fold that
	// delta in: those frames were accepted but never reached the wire,
	// exactly what FramesDropped promises to report.
	dropsBase := n.txDropsTotal()
	closeErr := n.Close()
	st.FramesDropped += n.txDropsTotal() - dropsBase
	st.Elapsed = time.Since(start)
	if flushErr == nil {
		flushErr = closeErr
	}
	n.log.Info("drain complete", "node", n.name,
		"frames_flushed", st.FramesFlushed,
		"frames_dropped", st.FramesDropped,
		"partials_dropped", st.PartialsDropped,
		"elapsed", st.Elapsed)
	return st, flushErr
}

// Draining reports whether Drain has begun (admission stopped).
func (n *Node) Draining() bool { return n.draining.Load() }
