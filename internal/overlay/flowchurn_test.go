package overlay

import (
	"bytes"
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"

	"vnetp/internal/core"
	"vnetp/internal/ethernet"
)

// flowWaitGoroutines polls until the live goroutine count drops to at
// most want (goroutine exits are asynchronous, so a one-shot read
// races).
func flowWaitGoroutines(t *testing.T, want int, what string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= want {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			t.Fatalf("%s: %d goroutines alive, want <= %d\n%s",
				what, runtime.NumGoroutine(), want, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestFlowCacheChurnUnderTraffic is the fast path's -race stress
// acceptance: live traffic in two sealed tenants whose endpoints share
// the SAME MAC addresses (so only the tenant field of the flow key and
// the tenancy guards separate them) while concurrent goroutines churn
// every invalidation source the cache has — link add/delete, route
// add/delete, FailDest/RestoreDest flapping, and tenant installs.
// Invariants: no frame ever crosses tenants (payload check on both
// receivers plus a zero cross_tenant_drops counter — the guards must
// never even be the last line of defense), a deleted link's warm cache
// entries deliver nothing, and the churned links' goroutines are
// reaped.
func TestFlowCacheChurnUnderTraffic(t *testing.T) {
	na, err := NewNodeWithConfig("churn-a", "127.0.0.1:0", NodeConfig{})
	if err != nil {
		t.Fatal(err)
	}
	nb, err := NewNodeWithConfig("churn-b", "127.0.0.1:0", NodeConfig{})
	if err != nil {
		na.Close()
		t.Fatal(err)
	}
	t.Cleanup(func() { na.Close(); nb.Close() })

	macS, macD := ethernet.LocalMAC(100), ethernet.LocalMAC(200)
	type side struct {
		send *Endpoint
		recv *Endpoint
	}
	tenants := []uint32{1, 2}
	sides := map[uint32]*side{}
	for _, id := range tenants {
		key := bytes.Repeat([]byte{byte(id)}, 32)
		if err := na.AddTenant(id, key); err != nil {
			t.Fatal(err)
		}
		if err := nb.AddTenant(id, key); err != nil {
			t.Fatal(err)
		}
		s := &side{}
		if s.send, err = na.AttachEndpointTenant(fmt.Sprintf("tx-t%d", id), macS, 9000, id); err != nil {
			t.Fatal(err)
		}
		if s.recv, err = nb.AttachEndpointTenant(fmt.Sprintf("rx-t%d", id), macD, 9000, id); err != nil {
			t.Fatal(err)
		}
		link := fmt.Sprintf("link-t%d", id)
		if err := na.AddLinkTenant(link, nb.Addr(), "udp", id); err != nil {
			t.Fatal(err)
		}
		na.AddRoute(core.Route{Tenant: id, DstMAC: macD, DstQual: core.QualExact, SrcQual: core.QualAny,
			Dest: core.Destination{Type: core.DestLink, ID: link}})
		nb.AddRoute(core.Route{Tenant: id, DstMAC: macD, DstQual: core.QualExact, SrcQual: core.QualAny,
			Dest: core.Destination{Type: core.DestInterface, ID: fmt.Sprintf("rx-t%d", id)}})
		sides[id] = s
	}

	baseline := runtime.NumGoroutine()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	// Receivers: every delivered frame must carry its own tenant's
	// payload marker.
	for _, id := range tenants {
		wg.Add(1)
		go func(id uint32, ep *Endpoint) {
			defer wg.Done()
			want := fmt.Sprintf("tenant-%d", id)
			for {
				f, ok := ep.Recv(20 * time.Millisecond)
				if !ok {
					select {
					case <-stop:
						return
					default:
						continue
					}
				}
				if string(f.Payload) != want {
					t.Errorf("tenant %d received %q", id, f.Payload)
					return
				}
			}
		}(id, sides[id].recv)
	}
	// Senders: continuous unicast in both tenants (errors expected while
	// churn has a dest failed or a link mid-replace).
	var senders sync.WaitGroup
	for _, id := range tenants {
		senders.Add(1)
		go func(id uint32, ep *Endpoint) {
			defer senders.Done()
			f := &ethernet.Frame{Dst: macD, Src: macS, Type: ethernet.TypeTest,
				Payload: []byte(fmt.Sprintf("tenant-%d", id))}
			for {
				select {
				case <-stop:
					return
				default:
					ep.Send(f)
				}
			}
		}(id, sides[id].send)
	}

	// Churners, one per invalidation source.
	var churn sync.WaitGroup
	churn.Add(4)
	go func() { // link churn: add/delete plaintext links with routes aimed at them
		defer churn.Done()
		na.AddRoute(core.Route{DstMAC: macD, DstQual: core.QualExact, SrcQual: core.QualAny,
			Dest: core.Destination{Type: core.DestLink, ID: "churn-link"}})
		for i := 0; i < 150; i++ {
			if err := na.AddLink("churn-link", nb.Addr(), "udp"); err != nil {
				t.Error(err)
				return
			}
			if i%2 == 0 {
				na.DelLink("churn-link")
			}
		}
		na.DelLink("churn-link")
	}()
	go func() { // route churn inside tenant 1's table
		defer churn.Done()
		decoy := core.Route{Tenant: 1, DstMAC: ethernet.LocalMAC(77), DstQual: core.QualExact,
			SrcQual: core.QualAny, Dest: core.Destination{Type: core.DestInterface, ID: "ghost"}}
		for i := 0; i < 300; i++ {
			na.AddRoute(decoy)
			na.DelRoute(decoy)
		}
	}()
	go func() { // FailDest/RestoreDest flapping on tenant 2's link dest
		defer churn.Done()
		dest := core.Destination{Type: core.DestLink, ID: "link-t2"}
		tbl := na.tenants.Table(2)
		for i := 0; i < 300; i++ {
			tbl.FailDest(dest)
			tbl.RestoreDest(dest)
		}
	}()
	go func() { // tenant installs (key replacement is a valid control-plane op)
		defer churn.Done()
		key := bytes.Repeat([]byte{0x33}, 32)
		for i := 0; i < 100; i++ {
			if err := na.AddTenant(3, key); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	churn.Wait()
	close(stop)
	senders.Wait()
	wg.Wait()

	if got := na.metrics.crossTenantDrops.Load(); got != 0 {
		t.Fatalf("cross_tenant_drops = %v on the sender node", got)
	}
	if got := nb.metrics.crossTenantDrops.Load(); got != 0 {
		t.Fatalf("cross_tenant_drops = %v on the receiver node", got)
	}

	// Deleted-link invariant on a warm cache: the tenant links are hot in
	// the flow cache right now; delete them, let the wire drain, and pin
	// that continued routing delivers nothing.
	for _, id := range tenants {
		if err := na.DelLink(fmt.Sprintf("link-t%d", id)); err != nil {
			t.Fatal(err)
		}
	}
	time.Sleep(50 * time.Millisecond)
	frozen := nb.Delivered.Load()
	for i := 0; i < 100; i++ {
		for _, id := range tenants {
			sides[id].send.Send(&ethernet.Frame{Dst: macD, Src: macS, Type: ethernet.TypeTest,
				Payload: []byte(fmt.Sprintf("tenant-%d", id))})
		}
	}
	time.Sleep(100 * time.Millisecond)
	if got := nb.Delivered.Load(); got != frozen {
		t.Fatalf("deleted links delivered %d frames from the flow cache", got-frozen)
	}

	flowWaitGoroutines(t, baseline, "after flow churn")
}
