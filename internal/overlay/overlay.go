// Package overlay is the functional (real-packet) embodiment of VNET/P:
// a Node carries Ethernet frames between in-process guest endpoints and
// remote nodes over real UDP sockets, using the same routing table
// (internal/core) and encapsulation wire format (internal/bridge) as the
// simulated datapath. Two nodes on one machine (or across a network) form
// a working overlay: endpoints see one flat Ethernet LAN regardless of
// which node they attach to.
package overlay

import (
	"errors"
	"fmt"
	"log/slog"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"vnetp/internal/adapt/rate"
	"vnetp/internal/bridge"
	"vnetp/internal/core"
	"vnetp/internal/ethernet"
	"vnetp/internal/faultnet"
	"vnetp/internal/seal"
	"vnetp/internal/supervise"
	"vnetp/internal/telemetry"
	"vnetp/internal/trace"
)

// maxDatagram is the UDP payload budget per encapsulated datagram,
// conservative enough for any sane path MTU.
const maxDatagram = 1400

// epQueueDepth is each endpoint's receive ring size, mirroring the
// virtio RXQ.
const epQueueDepth = 256

// Endpoint is an in-process guest NIC attached to a node: whatever a VM's
// virtio NIC would hand to VNET/P, a test or application hands to Send,
// and receives via Recv.
type Endpoint struct {
	node   *Node
	name   string
	mac    ethernet.MAC
	mtu    int
	tenant uint32 // the VNET this endpoint lives in (0 = default)
	rx     chan *ethernet.Frame

	// Drops counts frames lost to a full receive ring
	// (vnetp_endpoint_ring_drops_total in /metrics).
	Drops *telemetry.Counter

	// sli is the owning tenant's per-tenant indicator handles, resolved
	// once at attach so delivery accounting is plain atomic adds.
	sli *tenantSLI
}

// Name returns the interface name the endpoint is registered under.
func (ep *Endpoint) Name() string { return ep.name }

// MAC returns the endpoint's address.
func (ep *Endpoint) MAC() ethernet.MAC { return ep.mac }

// MTU returns the endpoint's MTU.
func (ep *Endpoint) MTU() int { return ep.mtu }

// Tenant reports which tenant the endpoint is bound to (0 = default).
func (ep *Endpoint) Tenant() uint32 { return ep.tenant }

// Send routes a frame into the overlay. The frame's source should be the
// endpoint's MAC (the overlay routes on whatever addresses the frame
// carries, like a real switch). On a node running the batched transmit
// path (NodeConfig.TxBatch > 1) the frame is retained until its link
// batch flushes and must not be modified after Send returns.
func (ep *Endpoint) Send(f *ethernet.Frame) error {
	if ep.node.draining.Load() {
		return ErrDraining
	}
	if f.PayloadLen() > ep.mtu {
		return fmt.Errorf("overlay: frame payload %d exceeds endpoint MTU %d", f.PayloadLen(), ep.mtu)
	}
	// Sampling decision for the live tracer: one atomic load when
	// disabled, a fresh trace ID on the frame's Tag when selected. This
	// is the virtio-pop analogue — the guest handing the frame over.
	// The Tag is rewritten whenever its value must change (selected, or
	// carrying a stale ID from a reused/copied frame struct) but never
	// touched on the common untraced path — re-Sending a frame the
	// batched TX ring still holds must not write to it.
	if id := ep.node.tracer.SampleTX(f.Src, f.Dst); id != 0 {
		f.Tag = id
		ep.node.tracer.Record(id, trace.StageVirtioPop)
	} else if f.Tag != 0 {
		f.Tag = 0
	}
	return ep.node.route(f, ep)
}

// SendBatch routes a batch of frames in one call — the overlay-side
// mirror of virtio's single-exit multi-packet dequeue. The whole batch
// shares one arrival timestamp and per-frame errors (MTU violations,
// synchronous transport failures) are aggregated rather than aborting
// the rest of the batch.
func (ep *Endpoint) SendBatch(frames []*ethernet.Frame) error {
	if ep.node.draining.Load() {
		return ErrDraining
	}
	at := time.Now()
	var errs []error
	for _, f := range frames {
		if f.PayloadLen() > ep.mtu {
			errs = append(errs, fmt.Errorf("overlay: frame payload %d exceeds endpoint MTU %d", f.PayloadLen(), ep.mtu))
			continue
		}
		if id := ep.node.tracer.SampleTX(f.Src, f.Dst); id != 0 {
			f.Tag = id
			ep.node.tracer.Record(id, trace.StageVirtioPop)
		} else if f.Tag != 0 {
			f.Tag = 0
		}
		if err := ep.node.routeAt(f, ep, at); err != nil {
			errs = append(errs, err)
		}
	}
	return errors.Join(errs...)
}

// Recv waits up to timeout for a delivered frame.
func (ep *Endpoint) Recv(timeout time.Duration) (*ethernet.Frame, bool) {
	select {
	case f := <-ep.rx:
		return f, true
	case <-time.After(timeout):
		return nil, false
	}
}

// TryRecv returns a delivered frame without waiting.
func (ep *Endpoint) TryRecv() (*ethernet.Frame, bool) {
	select {
	case f := <-ep.rx:
		return f, true
	default:
		return nil, false
	}
}

func (ep *Endpoint) deliver(f *ethernet.Frame) {
	select {
	case ep.rx <- f:
		ep.sli.framesIn.Add(1)
		ep.sli.bytesIn.Add(uint64(f.Len()))
	default:
		ep.Drops.Add(1)
		ep.node.drop(dropEndpointRing, 1, telemetry.DropDetail{
			Tenant: ep.tenant, Scope: ep.name, Stage: "deliver",
			Flow: core.FlowKey{Tenant: ep.tenant, Src: f.Src, Dst: f.Dst}.String(),
		})
	}
}

type link struct {
	id     string
	proto  string
	remote string
	addr   *net.UDPAddr      // UDP links (kept after an upgrade to TCP)
	tcp    *tcpConn          // TCP links, dialed lazily
	fault  *faultnet.Conduit // optional fault injection on the send path
	health *linkHealth       // liveness state, nil until monitored

	// tenant binds the link to one tenant's VNET; sealer is the tenant's
	// per-link AEAD encryptor (nil on tenant-0 plaintext links — the
	// interface is only assigned when a concrete sealer exists, so a nil
	// check is always valid). Both are immutable after AddLink.
	tenant uint32
	sealer bridge.LinkSealer

	// tmpl is the link's prebuilt encapsulation header template (sealed
	// for tenant links, plain otherwise): the flow cache and the batched
	// sender stamp per-fragment fields into a memcpy of it instead of
	// re-marshalling the header per fragment. Immutable after AddLink.
	tmpl *bridge.EncapTemplate

	// Batched transmit state (NodeConfig.TxBatch > 1): a bounded ring of
	// outbound frames drained by this link's sender goroutine (txLoop).
	// txq is nil on nodes running the synchronous path. txw is the
	// sender's supervision handle; stopping it reaps the sender when the
	// link is deleted or replaced.
	txq chan txFrame
	txw *supervise.Worker

	// tun is the link's effective dispatch operating point (batch size,
	// flush timeout, mode), published atomically so txLoop reads it
	// lock-free once per batch. The adaptive controller and LINK TUNE
	// swap it live; non-adaptive batched links carry a static
	// throughput-mode snapshot. Always non-nil when txq is non-nil.
	tun atomic.Pointer[txTunables]
	// ctrl is the link's rate-hysteresis state machine, nil unless
	// NodeConfig.Adaptive is enabled. Mode and dwell state live here, so
	// they survive adaptive-loop restarts and transport auto-upgrades
	// (the link struct persists across both).
	ctrl *rate.Controller
	// lastTxFrames is the adaptive loop's previous txFrames sample
	// (atomic: a superseded controller instance may briefly overlap its
	// replacement).
	lastTxFrames atomic.Uint64

	// sendErrors counts transport send failures on this link, including
	// ones inside an installed fault conduit (whose delivery callback may
	// run on the conduit's own goroutine — hence atomic). The health
	// monitor, LINK STATUS, and /metrics surface it so chaos tests can
	// observe transport failures instead of having them swallowed.
	// bytesSent/bytesRecv account every encapsulation byte the link
	// carries (data and probes alike). txDrops counts frames lost to a
	// full TX ring. All are children of the node's per-link registry
	// families.
	sendErrors *telemetry.Counter
	bytesSent  *telemetry.Counter
	bytesRecv  *telemetry.Counter
	txDrops    *telemetry.Counter

	// Batched-mode children (nil on the synchronous path): txFrames
	// counts frames accepted onto the TX ring (the adaptive
	// controller's rate sensor), modeGauge and modeSwitches export the
	// link's dispatch mode and its transitions.
	txFrames     *telemetry.Counter
	modeGauge    *telemetry.Gauge
	modeSwitches *telemetry.Counter

	// TCP redial backoff state (capped exponential).
	redialAt      time.Time
	redialBackoff time.Duration
	dialed        bool // a transport existed before, so the next dial is a redial
}

// Node is one overlay routing point: the real-socket analogue of a
// VNET/P core + bridge pair on a host. It implements control.Target, so
// the control daemon and the VNET/U-compatible language configure it.
type Node struct {
	name  string
	cfg   NodeConfig  // normalized datapath configuration
	table *core.Table // alias of tenants.Default(): the tenant-0 table
	flows *core.FlowStats
	conn  *net.UDPConn
	tcpLn net.Listener // inbound TCP encapsulation (same port as UDP)

	// tenants is the per-tenant routing-table set (tenant 0 = table);
	// keyring holds the node's tenant AEAD keys and mints per-link
	// sealers. Both always exist.
	tenants *core.Tenants
	keyring *seal.Keyring

	// encap pools the per-frame encapsulation buffers for the whole TX
	// path (both synchronous and batched sends).
	encap bridge.Encapsulator

	mu         sync.Mutex
	links      map[string]*link
	linkByAddr map[string]*link // UDP remote address → link, for receive-byte attribution
	eps        map[string]*Endpoint
	tcpConns   map[*tcpConn]struct{} // accepted inbound TCP transports
	shards     []*rxShard            // dispatcher pool; reassembly sharded by sender
	probeCh    chan probeEvent       // control traffic, split off the data path
	nextID     atomic.Uint32
	linkEpoch  atomic.Uint64 // bumped on AddLink/DelLink; readLoop's addr→link cache key

	// Per-flow fast path (flowcache.go). fcache is nil when disabled
	// (NodeConfig.FlowCacheDisabled); flowEpoch is bumped by every event
	// that can change a forwarding answer — route-cache invalidations in
	// any tenant table (via the core.Tenants hook), link lifecycle,
	// tenant changes, LINK TUNE, fault installs, transport upgrades —
	// retiring every cached decision in one atomic add.
	fcache    *flowCache
	flowEpoch atomic.Uint64
	closed    bool
	draining  atomic.Bool // Drain in progress (or finished): admission stopped
	quit      chan struct{}
	wg        sync.WaitGroup // TCP accept/reader goroutines (connection-scoped)

	// sup supervises the long-lived datapath goroutines (dispatcher
	// workers, per-link TX senders, the prober, the evictor, the health
	// loop): panic containment with restart backoff plus the stall
	// watchdog. Always non-nil after NewNodeWithConfig.
	sup *supervise.Supervisor

	// Link health monitor state (EnableHealth).
	healthOn  bool
	healthCfg HealthConfig
	healthW   *supervise.Worker

	// metrics is the node's telemetry registry and labeled families;
	// the exported counters below are registry children too, so LIST
	// STATS and /metrics read the same values.
	metrics *nodeMetrics

	// Introspection layer (ISSUE 10). ledger is the unified drop
	// accounting every datapath drop site reports through; slis holds
	// the per-tenant indicator families; topk maps tenant → heavy-
	// hitter candidate set (uint32 → *core.TopFlows); started anchors
	// the /diag bundle's uptime; anomalies counts watchdog alerts.
	started time.Time
	ledger  *telemetry.DropLedger
	slis    *tenantSLIs
	topk    sync.Map

	// Anomaly-watchdog previous-sample totals (on the Node so a
	// supervised restart of the loop resumes instead of re-alerting).
	anomalyDrops  atomic.Uint64
	anomalyStalls atomic.Uint64

	// tracer records per-stage wall-clock spans for sampled frames; it
	// always exists (disabled sampling costs one atomic load per
	// frame). log is the node's structured logger (never nil after
	// normalize).
	tracer *trace.LiveTracer
	log    *slog.Logger

	// Stats
	EncapSent   *telemetry.Counter
	EncapRecv   *telemetry.Counter
	Delivered   *telemetry.Counter
	NoRouteDrop *telemetry.Counter
	BadPackets  *telemetry.Counter
}

// NewNode binds a node to a UDP address ("127.0.0.1:0" for tests) with
// the default receive configuration.
func NewNode(name, bindAddr string) (*Node, error) {
	return NewNodeWithConfig(name, bindAddr, NodeConfig{})
}

// NewNodeWithConfig binds a node with an explicit receive-datapath
// configuration (dispatcher pool size, ring depth).
func NewNodeWithConfig(name, bindAddr string, cfg NodeConfig) (*Node, error) {
	cfg.normalize()
	addr, err := net.ResolveUDPAddr("udp", bindAddr)
	if err != nil {
		return nil, err
	}
	conn, err := net.ListenUDP("udp", addr)
	if err != nil {
		return nil, err
	}
	// Deep socket buffers: encapsulated bursts from many guests arrive
	// faster than the read loop drains under load, and kernel-side drops
	// would surface as overlay loss. Best effort (the OS may clamp).
	conn.SetReadBuffer(4 << 20)
	conn.SetWriteBuffer(4 << 20)
	tenants := core.NewTenants()
	n := &Node{
		name:       name,
		cfg:        cfg,
		tenants:    tenants,
		table:      tenants.Default(),
		keyring:    seal.NewKeyring(originID(name)),
		flows:      core.NewFlowStats(),
		conn:       conn,
		links:      make(map[string]*link),
		linkByAddr: make(map[string]*link),
		eps:        make(map[string]*Endpoint),
		tcpConns:   make(map[*tcpConn]struct{}),
		probeCh:    make(chan probeEvent, 256),
		quit:       make(chan struct{}),
	}
	if !cfg.FlowCacheDisabled {
		n.fcache = newFlowCache(cfg.FlowCacheSize)
	}
	// Any route-cache invalidation in any tenant namespace — route
	// churn, FailDest/RestoreDest, teardown sweeps — retires the flow
	// cache wholesale. Installed before any table can carry routes.
	tenants.SetInvalidateHook(n.bumpFlowEpoch)
	n.log = cfg.Logger
	n.tracer = trace.NewLive(name, originID(name))
	if cfg.TraceSample > 0 {
		n.tracer.Start(cfg.TraceSample)
	}
	n.started = time.Now()
	reg := telemetry.NewRegistry()
	n.metrics = newNodeMetrics(reg)
	n.ledger = telemetry.NewDropLedger(reg, dropReasons...)
	n.slis = newTenantSLIs(reg)
	n.slis.get(core.DefaultTenant) // tenant 0 visible from the first scrape
	n.metrics.anomalies.With(anomalyDropRate)
	n.metrics.anomalies.With(anomalyWatchdogStall)
	n.EncapSent = reg.Counter("vnetp_encap_sent_total", "Inner frames encapsulated and sent over links.")
	n.EncapRecv = reg.Counter("vnetp_encap_recv_total", "Inner frames reassembled from links.")
	n.Delivered = reg.Counter("vnetp_frames_delivered_total", "Frames delivered to local endpoints.")
	n.NoRouteDrop = reg.Counter("vnetp_no_route_drops_total", "Frames dropped for lack of a route or link.")
	n.BadPackets = reg.Counter("vnetp_bad_packets_total", "Malformed encapsulation datagrams rejected.")
	n.shards = make([]*rxShard, cfg.Dispatchers)
	for i := range n.shards {
		w := fmt.Sprint(i)
		n.shards[i] = &rxShard{
			idx:       i,
			in:        make(chan inDatagram, cfg.QueueDepth),
			reasm:     bridge.NewReassembler(),
			flight:    trace.NewFlightRing(cfg.FlightDepth, cfg.FlightSnap),
			Datagrams: n.metrics.dispDatagrams.With(w),
			Frames:    n.metrics.dispFrames.With(w),
			Drops:     n.metrics.dispDrops.With(w),
		}
	}
	n.registerNodeFuncs()
	n.startTCP()
	// Every long-lived datapath goroutine runs supervised: a panic in
	// one component is contained and the component restarts with capped
	// jittered backoff over the same shared state (rings, shards); the
	// watchdog supersedes components stuck inside one work item.
	n.sup = supervise.New(name, cfg.Supervise, n.log, supervise.Metrics{
		Panics:   n.metrics.panicsRecovered,
		Restarts: n.metrics.componentRestarts,
		Stalls:   n.metrics.watchdogStalls,
	})
	n.sup.Go("reader", func(i *supervise.Instance) { n.readLoop(i) })
	n.sup.Go("prober", func(i *supervise.Instance) { n.probeLoop(i) })
	n.sup.Go("evictor", func(i *supervise.Instance) { n.evictLoop(i) })
	for _, s := range n.shards {
		s := s
		n.sup.Go(fmt.Sprintf("dispatcher/%d", s.idx),
			func(i *supervise.Instance) { n.dispatchLoop(i, s) })
	}
	if cfg.Adaptive.Enabled {
		n.sup.Go("adaptive", func(i *supervise.Instance) { n.adaptLoop(i) })
	}
	if !cfg.Anomaly.Disabled {
		n.sup.Go("anomaly", func(i *supervise.Instance) { n.anomalyLoop(i) })
	}
	n.log.Info("overlay node up",
		"node", name, "addr", n.Addr(),
		"dispatchers", len(n.shards), "trace_sample", cfg.TraceSample,
		"flight_depth", cfg.FlightDepth)
	return n, nil
}

// originID derives a node's 16-bit trace origin identity from its name
// (FNV-1a folded to 16 bits) — stable across restarts, carried in the
// wire trace extension so both halves of a cross-node trace attribute
// hops to the originating node.
func originID(name string) uint16 {
	h := uint32(2166136261)
	for i := 0; i < len(name); i++ {
		h = (h ^ uint32(name[i])) * 16777619
	}
	return uint16(h>>16) ^ uint16(h)
}

// Name returns the node name.
func (n *Node) Name() string { return n.name }

// Addr reports the node's UDP address (for peers' ADD LINK commands).
func (n *Node) Addr() string { return n.conn.LocalAddr().String() }

// Table exposes the node's routing table.
func (n *Node) Table() *core.Table { return n.table }

// Flows exposes the node's per-flow traffic accounting (what the
// adaptation layer observes).
func (n *Node) Flows() *core.FlowStats { return n.flows }

// Runtime exposes the node's goroutine supervisor: component lookup for
// status surfaces and the chaos-injection hooks
// (Worker.InjectPanic/InjectStall) the crash-injection tests use.
func (n *Node) Runtime() *supervise.Supervisor { return n.sup }

// Close shuts the node down immediately, discarding queued TX frames
// and partial reassemblies (Drain is the graceful path).
func (n *Node) Close() error {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil
	}
	n.closed = true
	n.healthOn = false
	n.healthW = nil // sup.Stop reaps it below
	for _, lk := range n.links {
		if lk.tcp != nil {
			lk.tcp.close()
		}
	}
	for c := range n.tcpConns {
		c.close()
	}
	n.mu.Unlock()
	close(n.quit)
	err := n.conn.Close()
	if n.tcpLn != nil {
		n.tcpLn.Close()
	}
	n.sup.Stop() // supervised loops: dispatchers, TX senders, prober, evictor, health
	n.wg.Wait()  // TCP accept loop and connection readers
	return err
}

// AttachEndpoint registers an in-process guest NIC under an interface
// name and adds the unicast route delivering its MAC locally, in the
// default tenant.
func (n *Node) AttachEndpoint(ifName string, mac ethernet.MAC, mtu int) (*Endpoint, error) {
	return n.AttachEndpointTenant(ifName, mac, mtu, core.DefaultTenant)
}

// AttachEndpointTenant is AttachEndpoint bound to a tenant: the
// endpoint's frames route only through the tenant's private table, and
// only that tenant's frames can be delivered to it. Two tenants may
// attach endpoints with colliding MACs on the same node.
func (n *Node) AttachEndpointTenant(ifName string, mac ethernet.MAC, mtu int, tenant uint32) (*Endpoint, error) {
	if mtu <= 0 {
		mtu = ethernet.StandardMTU
	}
	if mtu > ethernet.MaxMTU {
		mtu = ethernet.MaxMTU
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, dup := n.eps[ifName]; dup {
		return nil, fmt.Errorf("overlay: interface %q exists", ifName)
	}
	ep := &Endpoint{
		node: n, name: ifName, mac: mac, mtu: mtu, tenant: tenant,
		rx:    make(chan *ethernet.Frame, epQueueDepth),
		Drops: n.metrics.epDrops.With(ifName),
		sli:   n.slis.get(tenant),
	}
	n.eps[ifName] = ep
	n.tenants.Ensure(tenant).AddRoute(core.Route{
		DstMAC: mac, DstQual: core.QualExact, SrcQual: core.QualAny,
		Dest:   core.Destination{Type: core.DestInterface, ID: ifName},
		Tenant: tenant,
	})
	return ep, nil
}

// DetachEndpoint removes an endpoint (e.g. the VM migrated away) along
// with routes pointing at it, in every tenant's table.
func (n *Node) DetachEndpoint(ifName string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.eps, ifName)
	n.metrics.epDrops.Delete(ifName)
	n.bumpFlowEpoch() // cached deliveries to the detached endpoint must die
	dest := core.Destination{Type: core.DestInterface, ID: ifName}
	n.tenants.Each(func(_ uint32, t *core.Table) { t.RemoveByDest(dest) })
}

// --- control.Target implementation ---

// AddLink installs an overlay link to a remote node: "udp" (the fast
// path) or "tcp" (length-prefixed encapsulation on a persistent
// connection, for lossy or middlebox-ridden paths). The link carries
// tenant-0 (plaintext) traffic.
func (n *Node) AddLink(id, remote string, proto string) error {
	return n.addLink(id, remote, proto, core.DefaultTenant)
}

// AddLinkTenant installs a link bound to a tenant: every datagram it
// carries is sealed (AEAD-encrypted and authenticated) under the
// tenant's key, and only that tenant's frames route onto it. Fails
// closed if the tenant's key has not been installed (AddTenant).
func (n *Node) AddLinkTenant(id, remote, proto string, tenant uint32) error {
	return n.addLink(id, remote, proto, tenant)
}

func (n *Node) addLink(id, remote, proto string, tenant uint32) error {
	if proto == "" {
		proto = "udp"
	}
	var sealer bridge.LinkSealer
	if tenant != core.DefaultTenant {
		sl, err := n.keyring.Sealer(tenant)
		if err != nil {
			return fmt.Errorf("overlay: link %q: %w", id, err)
		}
		sealer = sl
	}
	var addr *net.UDPAddr
	switch proto {
	case "udp":
		var err error
		addr, err = net.ResolveUDPAddr("udp", remote)
		if err != nil {
			return err
		}
	case "tcp":
	default:
		return fmt.Errorf("overlay: unknown link protocol %q", proto)
	}
	lk := &link{id: id, proto: proto, remote: remote, addr: addr, tenant: tenant}
	if sealer != nil {
		lk.sealer = sealer
	}
	lk.tmpl = bridge.NewEncapTemplate(sealer)
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return errors.New("overlay: node closed")
	}
	old := n.links[id]
	if old != nil {
		// Replaced link: detach its metric children so the new link's
		// counters restart from zero, as a fresh link's always have.
		n.unmapLinkAddrLocked(old)
		n.dropLinkMetrics(id)
	}
	if n.cfg.TxBatch > 1 {
		lk.txq = make(chan txFrame, n.cfg.TxRing)
		if a := n.cfg.Adaptive; a.Enabled {
			lk.ctrl = rate.New(rate.Config{
				AlphaL: a.AlphaL, AlphaU: a.AlphaU, HoldDown: a.HoldDown,
			})
		}
	}
	n.newLinkCounters(lk)
	if lk.txq != nil {
		n.initLinkTunables(lk)
	}
	if n.healthOn {
		lk.health = n.newLinkHealth(lk, n.healthCfg.LossWindow)
	}
	n.links[id] = lk
	if addr != nil {
		n.linkByAddr[addr.String()] = lk
	}
	n.linkEpoch.Add(1)
	// A replaced link's cached decisions point at the dead *link; a
	// fresh link may satisfy flows that previously had no answer. Either
	// way every cached decision predating this link set is now suspect.
	n.bumpFlowEpoch()
	if lk.txq != nil {
		lk.txw = n.sup.Go("tx/"+id, func(i *supervise.Instance) { n.txLoop(i, lk) })
	}
	var oldTCP *tcpConn
	var oldTxw *supervise.Worker
	if old != nil {
		oldTCP = old.tcp
		old.tcp = nil
		oldTxw = old.txw // stop the replaced link's sender
	}
	n.mu.Unlock()
	if oldTxw != nil {
		oldTxw.Stop()
	}
	if oldTCP != nil { // replaced link: don't leak its transport
		oldTCP.close()
	}
	n.log.Info("link added", "node", n.name, "link", id, "proto", proto, "remote", remote)
	return nil
}

// unmapLinkAddrLocked removes a link's addr→link attribution entry if it
// still points at lk. Caller holds n.mu.
func (n *Node) unmapLinkAddrLocked(lk *link) {
	if lk.addr != nil {
		key := lk.addr.String()
		if n.linkByAddr[key] == lk {
			delete(n.linkByAddr, key)
		}
	}
}

// DelLink removes a link, its routes, and — closing the gap that used to
// leak the connection and its read goroutine — any dialed TCP transport.
func (n *Node) DelLink(id string) error {
	n.mu.Lock()
	lk, ok := n.links[id]
	if !ok {
		n.mu.Unlock()
		return fmt.Errorf("overlay: no link %q", id)
	}
	delete(n.links, id)
	n.unmapLinkAddrLocked(lk)
	n.dropLinkMetrics(id)
	n.linkEpoch.Add(1)
	// Explicit bump (not just the route-sweep hook below): the DEL LINK
	// may find no routes to remove, yet cached decisions still hold the
	// deleted link and must die before the sweep's outcome is known.
	n.bumpFlowEpoch()
	txw := lk.txw // stop the TX sender; queued frames are dropped
	tcp := lk.tcp
	lk.tcp = nil
	dest := core.Destination{Type: core.DestLink, ID: id}
	n.tenants.Each(func(_ uint32, t *core.Table) {
		t.RemoveByDest(dest)
		t.RestoreDest(dest) // drop any lingering failed-over mark
	})
	n.mu.Unlock()
	if txw != nil {
		txw.Stop()
	}
	if tcp != nil {
		tcp.close()
	}
	n.log.Info("link deleted", "node", n.name, "link", id)
	return nil
}

// SetLinkFault installs (or clears, with nil) a fault-injection conduit
// on a link's outbound datagram path. Heartbeat probes and data both
// traverse it, so chaos tests exercise exactly the datapath real traffic
// uses.
func (n *Node) SetLinkFault(id string, c *faultnet.Conduit) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	lk, ok := n.links[id]
	if !ok {
		return fmt.Errorf("overlay: no link %q", id)
	}
	lk.fault = c
	// Cached synchronous-send decisions snapshot the fault conduit's
	// presence (flowEntry.fastUDP); they must be rebuilt around it.
	n.bumpFlowEpoch()
	return nil
}

// ActiveTCP reports how many TCP transports (inbound accepted plus
// outbound dialed) the node currently holds.
func (n *Node) ActiveTCP() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	c := len(n.tcpConns)
	for _, lk := range n.links {
		if lk.tcp != nil {
			c++
		}
	}
	return c
}

// AddTenant installs (or rotates) a tenant's AEAD master key and brings
// the tenant's private routing table into existence. Only the key's
// fingerprint ever reaches the log.
func (n *Node) AddTenant(id uint32, key []byte) error {
	if err := n.keyring.AddTenant(id, key); err != nil {
		return err
	}
	n.tenants.Ensure(id)
	n.bumpFlowEpoch() // tenant changes retire cached flow decisions
	n.log.Info("tenant key installed",
		"node", n.name, "tenant", id, "fingerprint", seal.Fingerprint(key))
	return nil
}

// TenantSummary renders the configured tenants for LIST TENANTS: ID,
// key fingerprint (never the key), remote origins heard, the tenant's
// route count, and the tenant's SLIs (frames in/out, ledger drops, and
// seal rejects charged to the tenant). Fields are append-only within
// each line, so parsers of the original prefix keep working.
func (n *Node) TenantSummary() []string {
	out := []string{}
	for _, ti := range n.keyring.Tenants() {
		routes := 0
		if tbl := n.tenants.Table(ti.ID); tbl != nil {
			routes = len(tbl.Routes())
		}
		sli := n.slis.get(ti.ID)
		out = append(out, fmt.Sprintf("TENANT %d KEY %s ORIGINS %d ROUTES %d IN %d OUT %d DROPS %d REJECTS %d",
			ti.ID, ti.Fingerprint, ti.Origins, routes,
			sli.framesIn.Load(), sli.framesOut.Load(),
			sli.drops.Load(), sli.sealRejects.Load()))
	}
	return out
}

// routeTable resolves a route's tenant table: tenant 0 always exists,
// any other tenant must have been created by AddTenant or an endpoint
// attach — routing state for an unknown tenant fails closed.
func (n *Node) routeTable(tenant uint32) (*core.Table, error) {
	tbl := n.tenants.Table(tenant)
	if tbl == nil {
		return nil, fmt.Errorf("overlay: unknown tenant %d", tenant)
	}
	return tbl, nil
}

// AddRoute installs a routing rule in its tenant's table.
func (n *Node) AddRoute(r core.Route) error {
	tbl, err := n.routeTable(r.Tenant)
	if err != nil {
		return err
	}
	tbl.AddRoute(r)
	return nil
}

// DelRoute removes a routing rule from its tenant's table.
func (n *Node) DelRoute(r core.Route) error {
	tbl, err := n.routeTable(r.Tenant)
	if err != nil {
		return err
	}
	if !tbl.RemoveRoute(r) {
		return errors.New("overlay: no such route")
	}
	return nil
}

// Routes lists every tenant's routing rules (tenant 0 first).
func (n *Node) Routes() []core.Route {
	var out []core.Route
	n.tenants.Each(func(_ uint32, t *core.Table) { out = append(out, t.Routes()...) })
	return out
}

// Links lists link IDs.
func (n *Node) Links() []string {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make([]string, 0, len(n.links))
	for id := range n.links {
		out = append(out, id)
	}
	return out
}

// Stats reports the node's traffic counters (LIST STATS in the control
// language), including the aggregate link-health counters and the
// per-dispatcher receive-path counters. Every value is read from the
// same registry handle /metrics scrapes, so the two surfaces agree by
// construction; the line set and order are pinned for backward
// compatibility (TestListStatsBackcompat).
func (n *Node) Stats() []string {
	hits, misses := n.table.CacheStats()
	var probesSent, probesLost, failovers, failbacks, redials, upgrades, sendErrors uint64
	var txRingDrops uint64
	n.mu.Lock()
	for _, lk := range n.links {
		s := n.snapshotLinkLocked(lk)
		sendErrors += s.sendErrors
		txRingDrops += s.txDrops
		probesSent += s.probesSent
		probesLost += s.probesLost
		failovers += s.failovers
		failbacks += s.failbacks
		redials += s.redials
		upgrades += s.upgrades
	}
	n.mu.Unlock()
	out := []string{
		statLine("encap_sent", n.EncapSent.Load()),
		statLine("encap_recv", n.EncapRecv.Load()),
		statLine("delivered", n.Delivered.Load()),
		statLine("no_route_drops", n.NoRouteDrop.Load()),
		statLine("bad_packets", n.BadPackets.Load()),
		statLine("send_errors", sendErrors),
		statLine("route_cache_hits", hits),
		statLine("route_cache_misses", misses),
		statLine("probes_sent", probesSent),
		statLine("probes_lost", probesLost),
		statLine("failovers", failovers),
		statLine("failbacks", failbacks),
		statLine("redials", redials),
		statLine("link_upgrades", upgrades),
		statLine("dispatchers", uint64(len(n.shards))),
	}
	for _, s := range n.shards {
		out = append(out,
			statLine(fmt.Sprintf("dispatcher_%d_datagrams", s.idx), s.Datagrams.Load()),
			statLine(fmt.Sprintf("dispatcher_%d_frames", s.idx), s.Frames.Load()),
			statLine(fmt.Sprintf("dispatcher_%d_drops", s.idx), s.Drops.Load()),
		)
	}
	// Newer keys append after the pinned set (TestListStatsBackcompat):
	// TX ring overrun and encap pool effectiveness, previously /metrics-only.
	poolHits, poolMisses := n.encap.PoolStats()
	out = append(out,
		statLine("tx_ring_drops", txRingDrops),
		statLine("encap_pool_hits", poolHits),
		statLine("encap_pool_misses", poolMisses),
	)
	// Sealed-datapath counters (append-only, after the pool lines).
	sealRejects := n.metrics.sealRejects.Sum()
	out = append(out,
		statLine("sealed_sent", n.metrics.sealSealed.Load()),
		statLine("sealed_opened", n.metrics.sealOpened.Load()),
		statLine("seal_rejects", sealRejects),
		statLine("cross_tenant_drops", n.metrics.crossTenantDrops.Load()),
		statLine("tenants", uint64(n.keyring.Count())),
	)
	// Per-flow fast-path counters (append-only, after the seal lines).
	fcHits, fcMisses, fcEvictions, fcEntries := n.FlowCacheStats()
	out = append(out,
		statLine("flow_cache_hits", fcHits),
		statLine("flow_cache_misses", fcMisses),
		statLine("flow_cache_evictions", fcEvictions),
		statLine("flow_cache_entries", uint64(fcEntries)),
	)
	// Unified drop ledger (append-only, after the flow-cache lines):
	// the cross-reason total, then one line per ledger reason, read
	// from the same vnetp_drops_total children /metrics scrapes, plus
	// the anomaly watchdog's alert count.
	out = append(out, statLine("drops_total", n.ledger.Total()))
	for _, r := range dropReasons {
		out = append(out, statLine("drops_"+r, n.ledger.Count(r)))
	}
	out = append(out, statLine("anomalies", n.metrics.anomalies.Sum()))
	return out
}

// Interfaces lists attached endpoint names.
func (n *Node) Interfaces() []string {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make([]string, 0, len(n.eps))
	for name := range n.eps {
		out = append(out, name)
	}
	return out
}

// route forwards a frame per the routing table. from is non-nil for
// locally originated frames (their source endpoint is skipped on
// broadcast). A failing destination does not abort the fan-out: every
// remaining destination (including local endpoints) still gets its copy,
// and the per-destination errors are aggregated — a broadcast hitting one
// dead link must not starve the rest of the LAN.
func (n *Node) route(f *ethernet.Frame, from *Endpoint) error {
	var at time.Time
	if from != nil {
		at = time.Now()
	}
	return n.routeAt(f, from, at)
}

// routeAt is route with the frame-arrival timestamp supplied by the
// caller, so batched senders (Endpoint.SendBatch) stamp a whole batch
// once. at is zero for forwarded (remotely originated) frames. The
// frame routes in its tenant's namespace: the sending endpoint's tenant
// for local frames (forwarded sealed frames enter via routeTenantAt
// with the authenticated wire tenant).
func (n *Node) routeAt(f *ethernet.Frame, from *Endpoint, at time.Time) error {
	var tenant uint32
	if from != nil {
		tenant = from.tenant
	}
	return n.routeTenantAt(f, from, at, tenant)
}

// routeTenantAt routes one frame inside one tenant's namespace. The
// lookup uses only the tenant's private table, and both delivery legs
// re-check tenancy — an endpoint or link whose binding disagrees with
// the frame's tenant is skipped and counted (cross_tenant_drops) rather
// than trusted, so a misinstalled route cannot leak frames across
// tenants.
func (n *Node) routeTenantAt(f *ethernet.Frame, from *Endpoint, at time.Time, tenant uint32) error {
	// Per-flow fast path: a current cache entry resolves the entire
	// forwarding decision in one sharded read. Only unicast flows are
	// cacheable (broadcast fans out to a destination set). The fill
	// epoch is captured BEFORE the backing route lookup: an
	// invalidation racing the lookup lands the entry already stale, so
	// a hit can never serve a decision older than the last epoch bump
	// it observed. Flow accounting for hits happens inside flowHit
	// (atomic adds on the entry's cached accounting pointer); the
	// hash + lock + map probe of FlowStats.Record is paid only here,
	// on the miss path.
	var (
		fc        *flowCache
		key       core.FlowKey
		fillEpoch uint64
		fl        *core.Flow
	)
	if n.fcache != nil && !f.Dst.IsBroadcast() && !f.Dst.IsMulticast() {
		key = core.FlowKey{Tenant: tenant, Src: f.Src, Dst: f.Dst}
		fillEpoch = n.flowEpoch.Load()
		if e := n.fcache.lookup(key, fillEpoch); e != nil {
			return n.flowHit(e, f, from, at, tenant)
		}
		fc = n.fcache
	}
	sli := n.slis.get(tenant)
	if from != nil {
		sli.framesOut.Add(1)
		sli.bytesOut.Add(uint64(f.Len()))
		n.flows.Record(f.Src, f.Dst, f.Len())
		// Locally originated: resolve the accounting entry once so
		// cache hits can add to it without touching the stats table,
		// and offer it to the tenant's heavy-hitter candidate set
		// (every flow's first frame takes this miss path, so candidacy
		// needs no work on the hit path). Forwarded frames (from ==
		// nil) are not flow-accounted, so their entries carry no
		// pointer.
		fl = n.flows.Acquire(f.Src, f.Dst)
		n.offerTopFlow(tenant, core.FlowKey{Tenant: tenant, Src: f.Src, Dst: f.Dst}, fl)
	}
	tbl := n.tenants.Table(tenant)
	if tbl == nil {
		n.NoRouteDrop.Add(1)
		n.drop(dropNoRoute, 1, telemetry.DropDetail{
			Tenant: tenant, Stage: "route",
			Flow: core.FlowKey{Tenant: tenant, Src: f.Src, Dst: f.Dst}.String(),
		})
		return fmt.Errorf("overlay: unknown tenant %d", tenant)
	}
	dests, _, err := tbl.Lookup(f.Src, f.Dst)
	if err != nil {
		n.NoRouteDrop.Add(1)
		n.drop(dropNoRoute, 1, telemetry.DropDetail{
			Tenant: tenant, Stage: "route",
			Flow: core.FlowKey{Tenant: tenant, Src: f.Src, Dst: f.Dst}.String(),
		})
		return err
	}
	if f.Tag != 0 {
		n.tracer.Record(f.Tag, trace.StageRouteLookup)
	}
	cacheable := fc != nil && len(dests) == 1
	var errs []error
	sentOnLink := false
	for _, d := range dests {
		switch d.Type {
		case core.DestInterface:
			n.mu.Lock()
			ep := n.eps[d.ID]
			n.mu.Unlock()
			if ep == nil {
				continue
			}
			if ep.tenant != tenant {
				n.metrics.crossTenantDrops.Add(1)
				n.drop(dropCrossTenant, 1, telemetry.DropDetail{
					Tenant: tenant, Scope: d.ID, Stage: "route",
					Flow: core.FlowKey{Tenant: tenant, Src: f.Src, Dst: f.Dst}.String(),
				})
				continue
			}
			if cacheable {
				fc.store(key, &flowEntry{epoch: fillEpoch, tenant: tenant, ep: ep, fl: fl, sli: sli})
			}
			if ep == from {
				continue
			}
			ep.deliver(f)
			n.Delivered.Add(1)
			if f.Tag != 0 {
				n.tracer.Record(f.Tag, trace.StageDeliver)
				n.log.Debug("traced frame delivered",
					"trace_id", fmt.Sprintf("%016x", f.Tag), "interface", d.ID)
			}
		case core.DestLink:
			n.mu.Lock()
			lk := n.links[d.ID]
			var ent *flowEntry
			if lk != nil && lk.tenant == tenant && cacheable {
				// Snapshot the synchronous-transmit parameters under the
				// same n.mu hold that resolved the link, so the entry is
				// consistent with one instant of link state.
				ent = &flowEntry{
					epoch: fillEpoch, tenant: tenant, lk: lk, fl: fl, sli: sli,
					budget:  maxDatagram,
					fastUDP: lk.proto == "udp" && lk.fault == nil && lk.txq == nil,
					addr:    lk.addr,
				}
				if lk.proto == "tcp" {
					ent.budget = tcpMaxDatagram
				}
			}
			n.mu.Unlock()
			if lk == nil {
				n.NoRouteDrop.Add(1)
				n.drop(dropNoRoute, 1, telemetry.DropDetail{
					Tenant: tenant, Scope: d.ID, Stage: "route",
					Flow: core.FlowKey{Tenant: tenant, Src: f.Src, Dst: f.Dst}.String(),
				})
				continue
			}
			if lk.tenant != tenant {
				n.metrics.crossTenantDrops.Add(1)
				n.drop(dropCrossTenant, 1, telemetry.DropDetail{
					Tenant: tenant, Scope: d.ID, Stage: "route",
					Flow: core.FlowKey{Tenant: tenant, Src: f.Src, Dst: f.Dst}.String(),
				})
				continue
			}
			if ent != nil {
				fc.store(key, ent)
			}
			if lk.txq != nil {
				// Batched mode: hand the frame to the link's sender ring.
				// Transport errors surface in the link's send_errors
				// counter (txLoop), not here; the TX latency sample is
				// taken after the batch actually hits the wire. The
				// tx_enqueue hop is recorded before the handoff so it
				// cannot race the sender's encap hop.
				if f.Tag != 0 {
					n.tracer.Record(f.Tag, trace.StageTxEnqueue)
				}
				n.enqueueTx(lk, txFrame{f: f, at: at})
				continue
			}
			if err := n.sendEncap(lk, f); err != nil {
				errs = append(errs, fmt.Errorf("link %q: %w", d.ID, err))
			} else {
				sentOnLink = true
			}
		}
	}
	// The Fig. 7 TX stage budget on the real path: locally originated
	// frame arrival to its last encapsulation datagram leaving a link.
	if !at.IsZero() && sentOnLink {
		n.metrics.txLatency.Observe(time.Since(at).Seconds())
	}
	return errors.Join(errs...)
}

// sendEncap encapsulates and transmits a frame over a link synchronously,
// fragmenting to the datagram budget. Encapsulation buffers come from the
// node's pool and are recycled before return. A traced frame's context
// rides the wire in every fragment's trace extension; on a tenant-bound
// link every fragment is sealed under the tenant's key.
func (n *Node) sendEncap(lk *link, f *ethernet.Frame) error {
	id := n.nextID.Add(1)
	n.mu.Lock()
	proto := lk.proto
	n.mu.Unlock()
	sl := lk.sealer // immutable after AddLink
	budget := maxDatagram
	if proto == "tcp" {
		budget = tcpMaxDatagram
	}
	pkt, err := n.encap.EncapsulateSealed(f, id, budget, n.traceExt(f.Tag), sl)
	if err != nil {
		return err
	}
	defer pkt.Release()
	if sl != nil {
		n.metrics.sealSealed.Add(uint64(len(pkt.Datagrams)))
	}
	if f.Tag != 0 {
		n.tracer.Record(f.Tag, trace.StageEncap)
	}
	for _, d := range pkt.Datagrams {
		if err := n.sendOnLink(lk, d); err != nil {
			return err
		}
	}
	n.EncapSent.Add(1)
	if f.Tag != 0 {
		n.tracer.Record(f.Tag, trace.StageWireTx)
	}
	return nil
}

// traceExt builds the wire trace extension for a traced frame's tag
// (nil for untraced frames, so the encoder emits a plain header). The
// origin and flags come from the tracer's path state, so a node
// forwarding a remotely originated trace re-emits the original context.
func (n *Node) traceExt(tag uint64) *bridge.TraceExt {
	if tag == 0 {
		return nil
	}
	origin, flags, ok := n.tracer.Ext(tag)
	if !ok {
		return nil
	}
	return &bridge.TraceExt{ID: tag, Origin: origin, Flags: flags}
}

// sendOnLink pushes one encapsulation datagram onto a link's transport,
// through the link's fault conduit when one is installed. Both data and
// heartbeat probes funnel through here. Every transport failure — even
// inside a conduit's (possibly asynchronous) delivery callback, where the
// error cannot be returned — lands in the link's send_errors counter so
// chaos tests and the health monitor observe it.
func (n *Node) sendOnLink(lk *link, d []byte) error {
	n.mu.Lock()
	fault, proto, addr := lk.fault, lk.proto, lk.addr
	n.mu.Unlock()
	send := func(p []byte) error {
		if proto == "tcp" {
			c, err := n.dialTCP(lk)
			if err != nil {
				return err
			}
			if err := c.sendDatagram(p); err != nil {
				n.dropTransport(lk, c)
				return err
			}
			return nil
		}
		_, err := n.conn.WriteToUDP(p, addr)
		return err
	}
	if fault != nil {
		// The conduit may deliver asynchronously (delay/reorder faults),
		// after the pooled encapsulation buffer behind d has been
		// recycled — hand it a private copy.
		d = append([]byte(nil), d...)
		fault.Send(d, func(p any) {
			if err := send(p.([]byte)); err != nil {
				lk.sendErrors.Add(1)
			} else {
				lk.bytesSent.Add(uint64(len(p.([]byte))))
			}
		})
		return nil
	}
	if err := send(d); err != nil {
		lk.sendErrors.Add(1)
		return err
	}
	lk.bytesSent.Add(uint64(len(d)))
	return nil
}

// probeEvent is one control datagram (probe or probe reply) handed from
// the read loop to the probe handler.
type probeEvent struct {
	pkt  []byte
	from *net.UDPAddr
}

// rxAttrib is the read loop's sender-attribution cache: the sender-key
// string for the common case of consecutive datagrams from one peer (a
// fragmented jumbo frame arrives as a burst from the same address) —
// String() per datagram would allocate — plus the sender's link for
// receive-byte attribution, invalidated when the key or the link
// table's epoch changes.
type rxAttrib struct {
	lastAddr  net.UDPAddr
	lastKey   string
	lastLink  *link
	lastEpoch uint64
}

// readLoop is the receive producer: it drains datagram batches off the
// UDP socket (recvmmsg on linux/{amd64,arm64} when RxBatch > 1, one
// ReadFromUDP per wakeup elsewhere), steers control traffic to the probe
// handler, and hands raw data datagrams to the dispatcher pool keyed by
// sender. It does no parsing beyond a one-byte flag peek, so the socket
// drains at wire rate and the heavy work (parse, reassemble, route)
// parallelizes across workers. Supervised: a panic restarts the loop
// over the still-open socket (the address caches rebuild); a clean
// return (socket closed) retires it. The progress markers bracket
// per-batch handling only — blocking in readBatch is idle, not a stall.
func (n *Node) readLoop(inst *supervise.Instance) {
	rdr := newBatchReader(n.conn, n.cfg.RxBatch)
	batch := make([]rxPacket, n.cfg.RxBatch)
	var attr rxAttrib
	for {
		cnt, err := rdr.readBatch(batch)
		if err != nil {
			return
		}
		select {
		case <-inst.Quit(): // superseded or stopping: the replacement owns the socket
			return
		default:
		}
		inst.Working()
		at := time.Now()
		n.metrics.rxBatchSize.Observe(float64(cnt))
		for i := 0; i < cnt; i++ {
			n.handleDatagram(batch[i].pkt, batch[i].from, at, &attr)
			batch[i] = rxPacket{} // drop the owned copy's ref once handed off
		}
		inst.Idle()
	}
}

// handleDatagram classifies and routes one received datagram: link
// attribution via the read loop's cache, control steering to the probe
// handler, data enqueue onto the sender's dispatcher shard. pkt must be
// an owned copy (it outlives the call on both paths).
func (n *Node) handleDatagram(pkt []byte, from *net.UDPAddr, at time.Time, attr *rxAttrib) {
	changed := attr.lastKey == "" || from.Port != attr.lastAddr.Port || !from.IP.Equal(attr.lastAddr.IP)
	if changed {
		attr.lastAddr = *from
		attr.lastKey = from.String()
	}
	if epoch := n.linkEpoch.Load(); changed || epoch != attr.lastEpoch {
		attr.lastEpoch = epoch
		n.mu.Lock()
		attr.lastLink = n.linkByAddr[attr.lastKey]
		n.mu.Unlock()
	}
	if attr.lastLink != nil {
		attr.lastLink.bytesRecv.Add(uint64(len(pkt)))
	}
	if bridge.EncapIsControl(pkt) {
		select {
		case n.probeCh <- probeEvent{pkt: pkt, from: from}:
		default:
			// Control ring full: the dropped probe surfaces as a lost
			// heartbeat at its sender — but the ledger still records
			// that this node shed it (this site was silent before the
			// unified ledger, so an overloaded probe ring looked like
			// network loss).
			n.drop(dropProbeRing, 1, telemetry.DropDetail{
				Scope: from.String(), Stage: "control",
			})
		}
		return
	}
	n.enqueue(attr.lastKey, pkt, at)
}

// probeLoop handles control traffic (liveness probes and replies) off the
// data path, so heartbeats stay responsive while the dispatchers chew
// through bulk traffic — and bulk traffic never waits on probe replies.
// Supervised as "prober": a panic on one malformed event restarts the
// loop; probeCh survives the restart.
func (n *Node) probeLoop(inst *supervise.Instance) {
	for {
		select {
		case <-n.quit:
			return
		case <-inst.Quit():
			return
		case ev := <-n.probeCh:
			inst.Working()
			h, payload, err := bridge.ParseEncap(ev.pkt)
			if err != nil {
				n.BadPackets.Add(1)
				n.drop(dropBadPacket, 1, telemetry.DropDetail{
					Scope: ev.from.String(), Stage: "control",
				})
				inst.Idle()
				continue
			}
			switch {
			case h.Probe:
				n.conn.WriteToUDP(marshalProbeReply(payload), ev.from)
			case h.ProbeReply:
				n.handleProbeReply(payload)
			}
			inst.Idle()
		}
	}
}

// evictLoop ages out stale partial reassemblies on every shard: each
// tick runs one generation sweep (NodeConfig.EvictInterval apart), so a
// partial untouched for two ticks — a dead or partitioned sender — is
// dropped and its buffers freed.
// Supervised as "evictor": the sweep state is derived from the shards,
// so a restarted instance picks up exactly where the old one left off.
func (n *Node) evictLoop(inst *supervise.Instance) {
	t := time.NewTicker(n.cfg.EvictInterval)
	defer t.Stop()
	for {
		select {
		case <-n.quit:
			return
		case <-inst.Quit():
			return
		case <-t.C:
			inst.Working()
			for _, s := range n.shards {
				s.mu.Lock()
				evicted := s.reasm.EvictStale()
				s.mu.Unlock()
				if evicted > 0 {
					n.metrics.reasmEvictions.Add(uint64(evicted))
					n.drop(dropReassemblyEvict, uint64(evicted), telemetry.DropDetail{
						Scope: fmt.Sprint(s.idx), Stage: "reassembly",
					})
				}
			}
			inst.Idle()
		}
	}
}
