//go:build linux

package overlay

// sendmmsg(2) syscall number on linux/amd64; absent from the (frozen)
// stdlib syscall table, which predates the call.
const sysSendmmsg = 307
