package overlay_test

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"vnetp/internal/core"
	"vnetp/internal/ethernet"
	"vnetp/internal/overlay"
)

// TestConcurrentSendersStress hammers one node pair from many goroutines
// at once: the node's datapath is shared mutable state behind real
// sockets, so this is the concurrency test the simulated half cannot
// provide. Run with -race in CI.
func TestConcurrentSendersStress(t *testing.T) {
	na, err := overlay.NewNode("a", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	nb, err := overlay.NewNode("b", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer na.Close()
	defer nb.Close()

	const endpoints = 8
	const framesPer = 50
	srcs := make([]*overlay.Endpoint, endpoints)
	dsts := make([]*overlay.Endpoint, endpoints)
	for i := 0; i < endpoints; i++ {
		s, err := na.AttachEndpoint(fmt.Sprintf("src%d", i), ethernet.LocalMAC(uint32(i+1)), 1500)
		if err != nil {
			t.Fatal(err)
		}
		d, err := nb.AttachEndpoint(fmt.Sprintf("dst%d", i), ethernet.LocalMAC(uint32(100+i)), 1500)
		if err != nil {
			t.Fatal(err)
		}
		srcs[i], dsts[i] = s, d
		na.AddRoute(core.Route{DstMAC: d.MAC(), DstQual: core.QualExact, SrcQual: core.QualAny,
			Dest: core.Destination{Type: core.DestLink, ID: "to-b"}})
	}
	if err := na.AddLink("to-b", nb.Addr(), "udp"); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	errs := make(chan error, endpoints*2)
	for i := 0; i < endpoints; i++ {
		i := i
		wg.Add(2)
		go func() { // sender
			defer wg.Done()
			for k := 0; k < framesPer; k++ {
				if err := srcs[i].Send(&ethernet.Frame{
					Dst: dsts[i].MAC(), Src: srcs[i].MAC(), Type: ethernet.TypeTest,
					Payload: []byte(fmt.Sprintf("%d/%d", i, k)),
				}); err != nil {
					errs <- err
					return
				}
			}
		}()
		go func() { // receiver
			defer wg.Done()
			for k := 0; k < framesPer; k++ {
				f, ok := dsts[i].Recv(5 * time.Second)
				if !ok {
					errs <- fmt.Errorf("endpoint %d: frame %d missing", i, k)
					return
				}
				want := fmt.Sprintf("%d/%d", i, k)
				if string(f.Payload) != want {
					errs <- fmt.Errorf("endpoint %d: got %q want %q", i, f.Payload, want)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if got := nb.Delivered.Load(); got != endpoints*framesPer {
		t.Fatalf("delivered %d, want %d", got, endpoints*framesPer)
	}
	// Flow accounting observed every flow.
	if na.Flows().Len() != endpoints {
		t.Fatalf("flows tracked = %d, want %d", na.Flows().Len(), endpoints)
	}
}

// TestConcurrentControlAndTraffic mutates routes from one goroutine while
// traffic flows from others.
func TestConcurrentControlAndTraffic(t *testing.T) {
	na, nb, epA, epB := twoNodes(t)
	_ = nb
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // churn irrelevant routes
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			r := core.Route{DstMAC: ethernet.LocalMAC(uint32(500 + i%10)), DstQual: core.QualExact,
				SrcQual: core.QualAny, Dest: core.Destination{Type: core.DestLink, ID: "to-b"}}
			na.AddRoute(r)
			na.DelRoute(r)
		}
	}()
	for k := 0; k < 200; k++ {
		if err := epA.Send(&ethernet.Frame{Dst: epB.MAC(), Src: epA.MAC(), Type: ethernet.TypeTest,
			Payload: []byte{byte(k)}}); err != nil {
			t.Fatal(err)
		}
		if _, ok := epB.Recv(5 * time.Second); !ok {
			t.Fatalf("frame %d lost during route churn", k)
		}
	}
	close(stop)
	wg.Wait()
}
