//go:build linux

package overlay

// sendmmsg(2) syscall number on linux/arm64.
const sysSendmmsg = 269
