package overlay_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"testing"
	"time"

	"vnetp/internal/core"
	"vnetp/internal/ethernet"
	"vnetp/internal/overlay"
	"vnetp/internal/trace"
)

// traceNodes builds an A→B overlay where node A samples every
// transmitted frame and both nodes run a flight recorder.
func traceNodes(t testing.TB) (*overlay.Node, *overlay.Node, *overlay.Endpoint, *overlay.Endpoint) {
	t.Helper()
	na, err := overlay.NewNodeWithConfig("alpha", "127.0.0.1:0", overlay.NodeConfig{
		TraceSample: 1, FlightDepth: 64,
	})
	if err != nil {
		t.Fatal(err)
	}
	nb, err := overlay.NewNodeWithConfig("beta", "127.0.0.1:0", overlay.NodeConfig{
		FlightDepth: 64,
	})
	if err != nil {
		na.Close()
		t.Fatal(err)
	}
	t.Cleanup(func() { na.Close(); nb.Close() })
	macA, macB := ethernet.LocalMAC(1), ethernet.LocalMAC(2)
	epA, err := na.AttachEndpoint("nic0", macA, 9000)
	if err != nil {
		t.Fatal(err)
	}
	epB, err := nb.AttachEndpoint("nic0", macB, 9000)
	if err != nil {
		t.Fatal(err)
	}
	if err := na.AddLink("to-b", nb.Addr(), "udp"); err != nil {
		t.Fatal(err)
	}
	na.AddRoute(core.Route{DstMAC: macB, DstQual: core.QualExact, SrcQual: core.QualAny,
		Dest: core.Destination{Type: core.DestLink, ID: "to-b"}})
	return na, nb, epA, epB
}

// TestCrossNodeTrace sends one fragmented UDP frame through a live
// two-node overlay with 1-in-1 sampling on the sender and asserts that a
// single trace ID accumulates at least six distinct stages across both
// nodes: the wire trace extension is what carries the ID over the hop,
// since the receiver has no sampler of its own enabled.
func TestCrossNodeTrace(t *testing.T) {
	na, nb, epA, epB := traceNodes(t)

	// 4000-byte payload fragments at the 1400-byte datagram budget, so
	// the receive side must also exercise reassembly.
	payload := bytes.Repeat([]byte{0xab}, 4000)
	if err := epA.Send(&ethernet.Frame{
		Dst: epB.MAC(), Src: epA.MAC(), Type: ethernet.TypeTest, Payload: payload,
	}); err != nil {
		t.Fatal(err)
	}
	got, ok := epB.Recv(recvTimeout)
	if !ok {
		t.Fatal("frame not delivered")
	}
	if !bytes.Equal(got.Payload, payload) {
		t.Fatal("payload corrupted")
	}

	// The deliver-stage hop is recorded just after the frame lands in
	// the endpoint queue; give the dispatcher a moment to finish.
	var merged map[string]bool
	var id uint64
	deadline := time.Now().Add(2 * time.Second)
	for {
		merged, id = mergedStages(t, na, nb)
		if len(merged) >= 6 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("trace %016x has %d distinct stages across both nodes, want >= 6: %v",
				id, len(merged), merged)
		}
		time.Sleep(5 * time.Millisecond)
	}
	for _, stage := range []string{
		trace.StageVirtioPop, trace.StageRouteLookup, trace.StageEncap, trace.StageWireTx,
		trace.StageRxDispatch, trace.StageReassembly, trace.StageDeliver,
	} {
		if !merged[stage] {
			t.Fatalf("stage %q missing from merged cross-node trace %016x: %v", stage, id, merged)
		}
	}

	// The receiver's flight recorder must have captured the traced
	// datagrams with the same wire-carried ID.
	var flightHits int
	for _, ev := range nb.FlightEvents() {
		if ev.TraceID == id {
			flightHits++
		}
	}
	if flightHits < 2 {
		t.Fatalf("flight recorder on beta saw %d datagrams for trace %016x, want >= 2 (fragmented frame)", flightHits, id)
	}
}

// mergedStages finds the one trace ID present on both nodes and returns
// the union of its stage names. Both halves must agree on the origin
// carried in the wire extension.
func mergedStages(t *testing.T, na, nb *overlay.Node) (map[string]bool, uint64) {
	t.Helper()
	pathsA, pathsB := na.Tracer().Traces(), nb.Tracer().Traces()
	byID := map[uint64]*trace.Path{}
	for _, p := range pathsA {
		byID[p.Tag] = p
	}
	merged := map[string]bool{}
	var id uint64
	for _, pb := range pathsB {
		pa, ok := byID[pb.Tag]
		if !ok {
			continue
		}
		if id != 0 && id != pb.Tag {
			t.Fatalf("more than one cross-node trace ID: %016x and %016x", id, pb.Tag)
		}
		id = pb.Tag
		if pa.Origin != pb.Origin {
			t.Fatalf("origin diverged across the hop: alpha %04x, beta %04x", pa.Origin, pb.Origin)
		}
		if pa.Node != "alpha" || pb.Node != "beta" {
			t.Fatalf("node stamps wrong: %q / %q", pa.Node, pb.Node)
		}
		for _, h := range pa.Hops {
			merged[h.Stage] = true
		}
		for _, h := range pb.Hops {
			merged[h.Stage] = true
		}
	}
	if id == 0 && len(pathsA) > 0 {
		// Sender sampled but the wire extension has not landed yet.
		return merged, pathsA[0].Tag
	}
	return merged, id
}

// TestTraceAndFlightHandlers exercises the HTTP surfaces end to end:
// /trace returns the sampled paths as JSON and /flight?format=pcap
// returns a well-formed capture holding the traced datagrams.
func TestTraceAndFlightHandlers(t *testing.T) {
	na, nb, epA, epB := traceNodes(t)
	if err := epA.Send(&ethernet.Frame{
		Dst: epB.MAC(), Src: epA.MAC(), Type: ethernet.TypeTest, Payload: []byte("observed"),
	}); err != nil {
		t.Fatal(err)
	}
	if _, ok := epB.Recv(recvTimeout); !ok {
		t.Fatal("frame not delivered")
	}

	rec := httptest.NewRecorder()
	na.TraceHandler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/trace", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("/trace status %d", rec.Code)
	}
	var paths []trace.Path
	if err := json.Unmarshal(rec.Body.Bytes(), &paths); err != nil {
		t.Fatalf("/trace body is not JSON: %v\n%s", err, rec.Body.String())
	}
	if len(paths) == 0 || len(paths[0].Hops) == 0 {
		t.Fatalf("/trace returned no hops: %s", rec.Body.String())
	}

	// Flight recorder capture from the receiver, in pcap form.
	deadline := time.Now().Add(2 * time.Second)
	for len(nb.FlightEvents()) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("flight recorder on beta captured nothing")
		}
		time.Sleep(5 * time.Millisecond)
	}
	rec = httptest.NewRecorder()
	nb.FlightHandler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/flight?format=pcap", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("/flight status %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/vnd.tcpdump.pcap" {
		t.Fatalf("/flight content type %q", ct)
	}
	body := rec.Body.Bytes()
	if len(body) < 24+16 {
		t.Fatalf("pcap too short: %d bytes", len(body))
	}
	if !bytes.Equal(body[:4], []byte{0xa1, 0xb2, 0xc3, 0xd4}) {
		t.Fatalf("pcap magic = % x", body[:4])
	}
}

// BenchmarkOverlayTraceSampling measures the transmit path of the
// acceptance gate: disabled sampling must cost nothing (0 allocs/op
// delta, throughput within noise of the untraced baseline), and the
// 1-in-1024 / 1-in-16 settings show the price of turning tracing on.
func BenchmarkOverlayTraceSampling(b *testing.B) {
	for _, cfg := range []struct {
		name   string
		sample uint64
	}{
		{"off", 0},
		{"1in1024", 1024},
		{"1in16", 16},
	} {
		b.Run(fmt.Sprintf("sample=%s", cfg.name), func(b *testing.B) {
			const window = 1024
			na, _, epA, epB := batchNodes(b,
				overlay.NodeConfig{TraceSample: cfg.sample, QueueDepth: 8192},
				overlay.NodeConfig{QueueDepth: 8192}, "udp")
			f := &ethernet.Frame{
				Dst: epB.MAC(), Src: epA.MAC(), Type: ethernet.TypeTest,
				Payload: make([]byte, 64),
			}
			b.SetBytes(64)
			b.ReportAllocs()
			b.ResetTimer()
			var sent uint64
			for i := 0; i < b.N; i++ {
				for sent-na.EncapSent.Load() >= window {
					runtime.Gosched()
				}
				if err := epA.Send(f); err != nil {
					b.Fatal(err)
				}
				sent++
			}
			deadline := time.Now().Add(10 * time.Second)
			for na.EncapSent.Load() < sent {
				if time.Now().After(deadline) {
					b.Fatalf("stalled: %d of %d frames encapsulated", na.EncapSent.Load(), sent)
				}
				runtime.Gosched()
			}
			b.StopTimer()
		})
	}
}
