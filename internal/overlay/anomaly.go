// The anomaly watchdog (ISSUE 10): a supervised loop that samples the
// unified drop ledger and the supervision stall counter on a fixed
// period and raises structured alerts when a threshold is crossed —
// the push half of the introspection layer (the /diag bundle is the
// pull half). Alerts are slog events plus vnetp_anomalies_total{kind}
// increments, so both log pipelines and metric alerting see them.

package overlay

import (
	"time"

	"vnetp/internal/supervise"
)

// Anomaly kinds (the vnetp_anomalies_total label values).
const (
	// anomalyDropRate: the ledger-wide drop rate exceeded
	// AnomalyConfig.DropRate over one sample period.
	anomalyDropRate = "drop_rate"
	// anomalyWatchdogStall: the supervision watchdog superseded at
	// least one stalled component since the previous sample.
	anomalyWatchdogStall = "watchdog_stall"
)

// Default anomaly-watchdog tuning (AnomalyConfig zero values).
const (
	defaultAnomalyInterval = 5 * time.Second
	defaultAnomalyDropRate = 100 // drops/second
)

// AnomalyConfig tunes the anomaly watchdog.
type AnomalyConfig struct {
	// Disabled turns the watchdog loop off entirely.
	Disabled bool
	// Interval is the sample period. Zero means the default (5s);
	// tests shorten it to fake the clock.
	Interval time.Duration
	// DropRate is the alert threshold in ledger drops per second,
	// measured over one sample period. Zero means the default (100/s).
	DropRate float64
}

func (c *AnomalyConfig) normalize() {
	if c.Interval <= 0 {
		c.Interval = defaultAnomalyInterval
	}
	if c.DropRate <= 0 {
		c.DropRate = defaultAnomalyDropRate
	}
}

// anomalyLoop samples drop and stall totals each tick and alerts on
// threshold crossings. The previous-sample totals live on the Node (not
// the loop frame), so a supervised restart resumes from the last
// observed values instead of re-alerting on the whole history.
// Supervised as "anomaly".
func (n *Node) anomalyLoop(inst *supervise.Instance) {
	cfg := n.cfg.Anomaly
	t := time.NewTicker(cfg.Interval)
	defer t.Stop()
	for {
		select {
		case <-n.quit:
			return
		case <-inst.Quit():
			return
		case <-t.C:
			inst.Working()
			n.anomalySample(cfg)
			inst.Idle()
		}
	}
}

// anomalySample runs one watchdog evaluation (split out so tests can
// drive it without waiting on the ticker).
func (n *Node) anomalySample(cfg AnomalyConfig) {
	drops := n.ledger.Total()
	stalls := n.metrics.watchdogStalls.Sum()
	prevDrops := n.anomalyDrops.Swap(drops)
	prevStalls := n.anomalyStalls.Swap(stalls)
	if d := drops - prevDrops; d > 0 {
		rate := float64(d) / cfg.Interval.Seconds()
		if rate > cfg.DropRate {
			n.metrics.anomalies.With(anomalyDropRate).Add(1)
			// The largest cumulative reason orients triage; the /diag
			// bundle's ledger tails carry the per-drop detail.
			var topReason string
			var topCount uint64
			for _, r := range dropReasons {
				if c := n.ledger.Count(r); c > topCount {
					topReason, topCount = r, c
				}
			}
			n.log.Warn("anomaly: drop rate over threshold",
				"node", n.name, "kind", anomalyDropRate,
				"drops", d, "rate_per_s", rate,
				"threshold_per_s", cfg.DropRate,
				"top_reason", topReason, "top_reason_total", topCount)
		}
	}
	if s := stalls - prevStalls; s > 0 {
		n.metrics.anomalies.With(anomalyWatchdogStall).Add(1)
		n.log.Warn("anomaly: supervised component stalls",
			"node", n.name, "kind", anomalyWatchdogStall,
			"stalls", s, "stalls_total", stalls)
	}
}
