// The node's tracing control surface: the TRACE verb targets used by
// internal/control, and the /trace + /flight HTTP handlers mounted on
// the telemetry server (telemetry.ServeWith in vnetpd).
package overlay

import (
	"encoding/json"
	"net/http"
	"sort"
	"strings"

	"vnetp/internal/ethernet"
	"vnetp/internal/trace"
)

// TraceStart arms the live tracer: sample 1 in sampleN frames (0 keeps
// the sampler off), plus an explicit flow trigger on a MAC when hasFlow
// is set. Implements the control daemon's TRACE START verb.
func (n *Node) TraceStart(sampleN uint64, flow ethernet.MAC, hasFlow bool) error {
	if sampleN > 0 {
		n.tracer.Start(sampleN)
	}
	if hasFlow {
		n.tracer.AddFlow(flow)
	}
	n.log.Info("trace started", "node", n.name, "sample", sampleN, "flow", hasFlow)
	return nil
}

// TraceStop disarms sampling and flow triggers; recorded paths remain
// available to TRACE DUMP and /trace.
func (n *Node) TraceStop() error {
	n.tracer.Stop()
	n.log.Info("trace stopped", "node", n.name)
	return nil
}

// TraceDump renders the recorded trace paths as control-protocol lines
// (the shared Path renderer, split per line).
func (n *Node) TraceDump() []string {
	paths := n.tracer.Traces()
	out := []string{statLine("traces", uint64(len(paths)))}
	for _, p := range paths {
		for _, ln := range strings.Split(strings.TrimRight(p.String(), "\n"), "\n") {
			out = append(out, ln)
		}
	}
	return out
}

// Tracer exposes the node's live tracer (tests and embedding daemons).
func (n *Node) Tracer() *trace.LiveTracer { return n.tracer }

// FlightEvents returns a merged snapshot of every dispatcher's flight
// recorder, oldest first.
func (n *Node) FlightEvents() []trace.FlightEvent {
	var all []trace.FlightEvent
	for _, s := range n.shards {
		all = append(all, s.flight.Snapshot()...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i].At.Before(all[j].At) })
	return all
}

// flightSnaplen reports the configured per-event capture length (the
// pcap file header's snaplen).
func (n *Node) flightSnaplen() int {
	for _, s := range n.shards {
		if l := s.flight.Snaplen(); l > 0 {
			return l
		}
	}
	return 0
}

// TraceHandler serves the recorded trace paths as JSON — mounted at
// /trace on the telemetry server.
func (n *Node) TraceHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(n.tracer.Traces())
	})
}

// FlightHandler serves the flight recorder's contents — mounted at
// /flight on the telemetry server. Default is JSON event metadata;
// ?format=pcap streams the captured datagrams as a classic pcap file
// (linktype DLT_USER0: each packet is one encap datagram).
func (n *Node) FlightHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		events := n.FlightEvents()
		if r.URL.Query().Get("format") == "pcap" {
			w.Header().Set("Content-Type", "application/vnd.tcpdump.pcap")
			w.Header().Set("Content-Disposition", `attachment; filename="flight.pcap"`)
			trace.WritePCAP(w, n.flightSnaplen(), events)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(events)
	})
}
