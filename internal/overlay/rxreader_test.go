package overlay

import (
	"fmt"
	"net"
	"testing"
	"time"

	"vnetp/internal/core"
	"vnetp/internal/ethernet"
)

// TestRxBatchParity pins that the batched receive path is semantically
// invisible: the same frame stream (mixed sizes, including frames that
// fragment across datagrams) delivered to a recvmmsg-batched node and a
// portable single-read node (RxBatch: 1 always selects singleReader)
// arrives byte-identical and in order on both.
func TestRxBatchParity(t *testing.T) {
	recv := func(rxBatch int) []string {
		n, err := NewNodeWithConfig(fmt.Sprintf("rx-%d", rxBatch), "127.0.0.1:0",
			NodeConfig{RxBatch: rxBatch})
		if err != nil {
			t.Fatal(err)
		}
		defer n.Close()
		ep, err := n.AttachEndpoint("nic0", ethernet.LocalMAC(1), ethernet.JumboMTU)
		if err != nil {
			t.Fatal(err)
		}
		sender, err := NewNode("tx", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		defer sender.Close()
		src, err := sender.AttachEndpoint("nic0", ethernet.LocalMAC(2), ethernet.JumboMTU)
		if err != nil {
			t.Fatal(err)
		}
		if err := sender.AddLink("to-rx", n.Addr(), "udp"); err != nil {
			t.Fatal(err)
		}
		sender.AddRoute(core.Route{DstMAC: ep.MAC(), DstQual: core.QualExact, SrcQual: core.QualAny,
			Dest: core.Destination{Type: core.DestLink, ID: "to-rx"}})

		// One sender, sequential sends: per-sender order is guaranteed
		// end to end, so the received sequence must match exactly.
		sizes := []int{1, 63, 64, 1000, 1400, 4000, 9000, 2, 8999}
		var got []string
		for i, sz := range sizes {
			payload := make([]byte, sz)
			for j := range payload {
				payload[j] = byte(i + j)
			}
			if err := src.Send(&ethernet.Frame{Dst: ep.MAC(), Src: src.MAC(),
				Type: ethernet.TypeTest, Payload: payload}); err != nil {
				t.Fatal(err)
			}
			f, ok := ep.Recv(2 * time.Second)
			if !ok {
				t.Fatalf("RxBatch=%d: frame %d (size %d) lost", rxBatch, i, sz)
			}
			got = append(got, string(f.Payload))
		}
		return got
	}
	single := recv(1)
	batched := recv(8)
	if len(single) != len(batched) {
		t.Fatalf("stream lengths differ: %d vs %d", len(single), len(batched))
	}
	for i := range single {
		if single[i] != batched[i] {
			t.Fatalf("frame %d differs between single-read and batched receive", i)
		}
	}
}

// TestMmsgReaderShortBatch is the recvmmsg regression suite (skipped
// where the platform has no batch reader): a batch smaller than the
// ring returns immediately with exactly what was queued (recvmmsg must
// not block waiting to fill the vector), a parked reader wakes on the
// next single datagram (the EAGAIN park/retry loop, which is also the
// EINTR retry loop), and payloads plus sender addresses survive the
// sockaddr round trip intact.
func TestMmsgReaderShortBatch(t *testing.T) {
	rconn, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	defer rconn.Close()
	r := newPlatformBatchReader(rconn, 8)
	if r == nil {
		t.Skip("no platform batch reader (recvmmsg) on this host")
	}
	sconn, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	defer sconn.Close()
	dst := rconn.LocalAddr().(*net.UDPAddr)

	// Short batch: 3 datagrams queued, ring of 8 — one read returns all
	// three (loopback delivery is synchronous) without waiting for five
	// more.
	for i := 0; i < 3; i++ {
		if _, err := sconn.WriteToUDP([]byte{byte(i), 0xAA, byte(i)}, dst); err != nil {
			t.Fatal(err)
		}
	}
	into := make([]rxPacket, 8)
	deadline := time.Now().Add(2 * time.Second)
	got := 0
	for got < 3 {
		if time.Now().After(deadline) {
			t.Fatalf("only %d/3 datagrams after 2s", got)
		}
		n, err := r.readBatch(into[got:])
		if err != nil {
			t.Fatal(err)
		}
		got += n
	}
	want := sconn.LocalAddr().(*net.UDPAddr)
	for i := 0; i < 3; i++ {
		p := into[i]
		if len(p.pkt) != 3 || p.pkt[0] != byte(i) || p.pkt[1] != 0xAA {
			t.Fatalf("datagram %d corrupted: %x", i, p.pkt)
		}
		if p.from == nil || p.from.Port != want.Port || !p.from.IP.Equal(want.IP) {
			t.Fatalf("datagram %d sender = %v, want %v", i, p.from, want)
		}
	}

	// Parked read: the reader blocks on an empty socket (EAGAIN →
	// poller), then a single late datagram wakes it with a batch of one.
	type result struct {
		n   int
		err error
	}
	done := make(chan result, 1)
	go func() {
		n, err := r.readBatch(into)
		done <- result{n, err}
	}()
	select {
	case res := <-done:
		t.Fatalf("readBatch returned (%d, %v) on an empty socket", res.n, res.err)
	case <-time.After(50 * time.Millisecond):
	}
	if _, err := sconn.WriteToUDP([]byte("wake"), dst); err != nil {
		t.Fatal(err)
	}
	select {
	case res := <-done:
		if res.err != nil || res.n != 1 || string(into[0].pkt) != "wake" {
			t.Fatalf("woken read = (%d, %v, %q)", res.n, res.err, into[0].pkt)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("parked readBatch never woke on a late datagram")
	}

	// Close unblocks: a parked reader must return an error when the
	// socket is torn down (shutdown path), not hang.
	go func() {
		n, err := r.readBatch(into)
		done <- result{n, err}
	}()
	time.Sleep(20 * time.Millisecond)
	rconn.Close()
	select {
	case res := <-done:
		if res.err == nil {
			t.Fatalf("readBatch returned %d datagrams after close, want error", res.n)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("readBatch hung across socket close")
	}
}

// TestSingleReaderContract pins the portable fallback's contract: one
// datagram per call, owned copies, correct sender.
func TestSingleReaderContract(t *testing.T) {
	rconn, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	defer rconn.Close()
	sconn, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	defer sconn.Close()
	r := newBatchReader(rconn, 1)
	if _, ok := r.(*singleReader); !ok {
		t.Fatalf("RxBatch=1 selected %T, want *singleReader", r)
	}
	dst := rconn.LocalAddr().(*net.UDPAddr)
	for i := 0; i < 2; i++ {
		if _, err := sconn.WriteToUDP([]byte{byte(0x40 + i)}, dst); err != nil {
			t.Fatal(err)
		}
	}
	into := make([]rxPacket, 4)
	n, err := r.readBatch(into)
	if err != nil || n != 1 {
		t.Fatalf("readBatch = (%d, %v), want (1, nil)", n, err)
	}
	keep := into[0].pkt
	n, err = r.readBatch(into)
	if err != nil || n != 1 {
		t.Fatalf("second readBatch = (%d, %v)", n, err)
	}
	if keep[0] != 0x40 || into[0].pkt[0] != 0x41 {
		t.Fatalf("reads not owned copies in order: %x then %x", keep, into[0].pkt)
	}
	if into[0].from.Port != sconn.LocalAddr().(*net.UDPAddr).Port {
		t.Fatalf("sender port = %d", into[0].from.Port)
	}
}
