// The batched receive front end: the read loop's socket access goes
// through a batchReader so linux/{amd64,arm64} hosts can drain the UDP
// socket with recvmmsg(2) — one syscall per batch, the receive-side twin
// of the sendmmsg transmit path (Sect. 4.3's per-batch, not per-packet,
// exit economics) — while every other platform keeps the portable
// one-ReadFromUDP-per-datagram loop with identical semantics.

package overlay

import "net"

// defaultRxBatch is the read loop's per-wakeup datagram budget when
// NodeConfig.RxBatch is zero. 16 amortizes the syscall well past the
// knee of the curve without holding a burst's worth of 64KiB buffers.
const defaultRxBatch = 16

// rxPacket is one received datagram: an owned copy of the payload (the
// reader's internal buffers are reused across batches) and its sender.
type rxPacket struct {
	pkt  []byte
	from *net.UDPAddr
}

// batchReader abstracts "drain up to len(into) datagrams from the
// socket". readBatch blocks until at least one datagram is available,
// fills into[0:n] with owned packet copies, and returns n. A socket
// error (including close during shutdown) returns err; the read loop
// treats any error as retirement, matching the old ReadFromUDP contract.
type batchReader interface {
	readBatch(into []rxPacket) (int, error)
}

// singleReader is the portable batchReader: one blocking ReadFromUDP
// per call, so batches degenerate to size one. Used on platforms
// without recvmmsg and whenever RxBatch <= 1.
type singleReader struct {
	c   *net.UDPConn
	buf []byte
}

func (r *singleReader) readBatch(into []rxPacket) (int, error) {
	sz, from, err := r.c.ReadFromUDP(r.buf)
	if err != nil {
		return 0, err
	}
	pkt := make([]byte, sz)
	copy(pkt, r.buf[:sz])
	into[0] = rxPacket{pkt: pkt, from: from}
	return 1, nil
}

// newBatchReader picks the best reader for this platform and batch
// size: the recvmmsg reader when the platform has one and batch > 1,
// the portable single-datagram reader otherwise.
func newBatchReader(c *net.UDPConn, batch int) batchReader {
	if batch > 1 {
		if r := newPlatformBatchReader(c, batch); r != nil {
			return r
		}
	}
	return &singleReader{c: c, buf: make([]byte, 65536)}
}
