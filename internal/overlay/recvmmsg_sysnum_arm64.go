//go:build linux

package overlay

// recvmmsg(2) syscall number on linux/arm64.
const sysRecvmmsg = 243
