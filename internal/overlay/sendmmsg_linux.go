//go:build linux && (amd64 || arm64)

// sendmmsg(2) batch transmit: one syscall moves a whole TX batch, the
// userspace analogue of the per-batch (not per-packet) VMM exits the
// paper credits for VNET/P's throughput (Sect. 4.3). The netmap/mTCP
// line of work (PAPERS.md) identifies exactly this — syscall batching —
// as the dominant per-packet cost lever for user-level datapaths.

package overlay

import (
	"net"
	"runtime"
	"syscall"
	"unsafe"
)

// mmsghdr mirrors struct mmsghdr on 64-bit Linux: a msghdr plus the
// kernel-filled per-message byte count, padded so array elements stay
// 8-byte aligned.
type mmsghdr struct {
	hdr syscall.Msghdr
	cnt uint32
	_   [4]byte
}

// sendBatchUDP transmits a batch of datagrams to addr in as few
// syscalls as possible. Returns how many datagrams were sent; on error
// the remainder were not. Falls back to the portable per-datagram loop
// when the destination sockaddr cannot be prepared for the socket's
// family (dual-stack wildcard binds, zoned IPv6).
func sendBatchUDP(c *net.UDPConn, dgs [][]byte, addr *net.UDPAddr) (int, error) {
	if len(dgs) == 0 {
		return 0, nil
	}
	if len(dgs) == 1 {
		if _, err := c.WriteToUDP(dgs[0], addr); err != nil {
			return 0, err
		}
		return 1, nil
	}
	sa, salen := sockaddrFor(c, addr)
	if sa == nil {
		return sendBatchUDPFallback(c, dgs, addr)
	}
	rc, err := c.SyscallConn()
	if err != nil {
		return sendBatchUDPFallback(c, dgs, addr)
	}
	iovs := make([]syscall.Iovec, len(dgs))
	msgs := make([]mmsghdr, len(dgs))
	for i, d := range dgs {
		iovs[i].Base = &d[0]
		iovs[i].SetLen(len(d))
		msgs[i].hdr.Name = (*byte)(sa)
		msgs[i].hdr.Namelen = salen
		msgs[i].hdr.Iov = &iovs[i]
		msgs[i].hdr.Iovlen = 1 // uint64 on both supported 64-bit arches
	}
	sent := 0
	var opErr error
	werr := rc.Write(func(fd uintptr) bool {
		for sent < len(msgs) {
			r1, _, errno := syscall.Syscall6(sysSendmmsg, fd,
				uintptr(unsafe.Pointer(&msgs[sent])), uintptr(len(msgs)-sent), 0, 0, 0)
			switch {
			case errno == syscall.EINTR:
				continue
			case errno == syscall.EAGAIN:
				return false // reschedule on the poller until writable
			case errno != 0:
				opErr = errno
				return true
			case r1 == 0:
				opErr = syscall.EIO // defensive: sendmmsg never legally sends zero
				return true
			}
			sent += int(r1)
		}
		return true
	})
	runtime.KeepAlive(dgs)
	runtime.KeepAlive(iovs)
	if opErr == nil {
		opErr = werr
	}
	return sent, opErr
}

// sockaddrFor builds the raw destination sockaddr matching the socket's
// address family, or nil when the combination needs the stdlib's
// translation (dual-stack wildcard, v4/v6 mismatch, zoned address).
func sockaddrFor(c *net.UDPConn, addr *net.UDPAddr) (unsafe.Pointer, uint32) {
	local, _ := c.LocalAddr().(*net.UDPAddr)
	if local == nil || len(local.IP) == 0 {
		// Wildcard bind: the socket may be dual-stack AF_INET6 expecting
		// v4-mapped destinations — let WriteToUDP translate.
		return nil, 0
	}
	if local.IP.To4() != nil {
		dst := addr.IP.To4()
		if dst == nil {
			return nil, 0
		}
		sa := &syscall.RawSockaddrInet4{Family: syscall.AF_INET}
		copy(sa.Addr[:], dst)
		p := (*[2]byte)(unsafe.Pointer(&sa.Port))
		p[0] = byte(addr.Port >> 8)
		p[1] = byte(addr.Port)
		return unsafe.Pointer(sa), uint32(unsafe.Sizeof(*sa))
	}
	if addr.Zone != "" {
		return nil, 0
	}
	dst := addr.IP.To16()
	if dst == nil {
		return nil, 0
	}
	sa := &syscall.RawSockaddrInet6{Family: syscall.AF_INET6}
	copy(sa.Addr[:], dst)
	p := (*[2]byte)(unsafe.Pointer(&sa.Port))
	p[0] = byte(addr.Port >> 8)
	p[1] = byte(addr.Port)
	return unsafe.Pointer(sa), uint32(unsafe.Sizeof(*sa))
}
