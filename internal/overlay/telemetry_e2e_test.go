package overlay_test

import (
	"fmt"
	"io"
	"net/http"
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"

	"vnetp/internal/control"
	"vnetp/internal/ethernet"
	"vnetp/internal/overlay"
	"vnetp/internal/telemetry"
)

// scrape fetches and parses a /metrics exposition into a map of
// `name{labels}` → value (histogram _bucket/_sum/_count lines included
// as their own series). It also validates the text format: every
// sample line must parse, and every sample's family must have been
// announced by a preceding # TYPE line.
func scrape(t *testing.T, url string) map[string]float64 {
	t.Helper()
	cl := &http.Client{Timeout: 5 * time.Second}
	resp, err := cl.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %s", url, resp.Status)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	sampleRe := regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})? (NaN|[+-]?Inf|[-+0-9.eE]+)$`)
	typed := map[string]bool{}
	series := map[string]float64{}
	for _, line := range strings.Split(string(body), "\n") {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if f := strings.Fields(line); len(f) >= 3 && f[1] == "TYPE" {
				typed[f[2]] = true
			}
			continue
		}
		m := sampleRe.FindStringSubmatch(line)
		if m == nil {
			t.Fatalf("invalid exposition line %q", line)
		}
		base := m[1]
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			if fam := strings.TrimSuffix(base, suffix); fam != base && typed[fam] {
				base = fam
				break
			}
		}
		if !typed[base] {
			t.Fatalf("sample %q has no preceding # TYPE", line)
		}
		v, err := strconv.ParseFloat(m[3], 64)
		if err != nil {
			t.Fatalf("bad value in %q: %v", line, err)
		}
		if _, dup := series[m[1]+m[2]]; dup {
			t.Fatalf("duplicate series %q", m[1]+m[2])
		}
		series[m[1]+m[2]] = v
	}
	return series
}

// sumFamily totals every series of one family (across label values),
// excluding histogram expansion lines.
func sumFamily(series map[string]float64, name string) float64 {
	var s float64
	for k, v := range series {
		if k == name || strings.HasPrefix(k, name+"{") {
			s += v
		}
	}
	return s
}

// TestTelemetryEndToEnd drives traffic through a two-node overlay with
// the health monitor on, scrapes /metrics from a live telemetry server,
// and asserts (1) a valid exposition with ≥25 distinct series, (2) a
// non-empty end-to-end latency histogram, and (3) that every LIST STATS
// value matches the scraped counters exactly.
func TestTelemetryEndToEnd(t *testing.T) {
	na, nb, epA, epB := twoNodes(t)
	cfg := overlay.DefaultHealthConfig()
	cfg.Interval = 30 * time.Millisecond
	if err := na.EnableHealth(cfg); err != nil {
		t.Fatal(err)
	}
	if err := nb.EnableHealth(cfg); err != nil {
		t.Fatal(err)
	}

	const frames = 20
	for i := 0; i < frames; i++ {
		if err := epA.Send(&ethernet.Frame{Dst: epB.MAC(), Src: epA.MAC(), Type: ethernet.TypeTest,
			Payload: []byte(fmt.Sprintf("tick-%d", i))}); err != nil {
			t.Fatal(err)
		}
		if _, ok := epB.Recv(recvTimeout); !ok {
			t.Fatalf("frame %d lost", i)
		}
		if err := epB.Send(&ethernet.Frame{Dst: epA.MAC(), Src: epB.MAC(), Type: ethernet.TypeTest,
			Payload: []byte("ack")}); err != nil {
			t.Fatal(err)
		}
		if _, ok := epA.Recv(recvTimeout); !ok {
			t.Fatalf("ack %d lost", i)
		}
	}

	// Let the monitor complete a few probe round trips so the RTT
	// histograms and probe counters are non-trivial.
	deadline := time.Now().Add(5 * time.Second)
	for {
		stats := na.Stats()
		var probes uint64
		for _, l := range stats {
			fmt.Sscanf(l, "probes_sent %d", &probes)
		}
		if probes >= 4 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("health monitor produced no probes: %v", stats)
		}
		time.Sleep(20 * time.Millisecond)
	}

	// Freeze the counters: stop probing on both sides and let in-flight
	// replies land, so the scrape and LIST STATS see identical values.
	na.DisableHealth()
	nb.DisableHealth()
	time.Sleep(150 * time.Millisecond)

	srv, err := telemetry.Serve("127.0.0.1:0", na.Telemetry())
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	series := scrape(t, "http://"+srv.Addr()+"/metrics")

	if len(series) < 25 {
		t.Fatalf("only %d distinct series, want >= 25", len(series))
	}
	if rx := series["vnetp_rx_latency_seconds_count"]; rx < frames {
		t.Fatalf("rx latency histogram count = %v, want >= %d", rx, frames)
	}
	if tx := series["vnetp_tx_latency_seconds_count"]; tx < frames {
		t.Fatalf("tx latency histogram count = %v, want >= %d", tx, frames)
	}
	if rtt := sumFamily(series, "vnetp_link_rtt_seconds_count"); rtt < 1 {
		t.Fatal("link RTT histogram is empty")
	}
	if sent := series[`vnetp_link_bytes_sent_total{link="to-b"}`]; sent <= 0 {
		t.Fatalf("bytes_sent{to-b} = %v", sent)
	}
	if recv := series[`vnetp_link_bytes_recv_total{link="to-b"}`]; recv <= 0 {
		t.Fatalf("bytes_recv{to-b} = %v", recv)
	}

	// Every LIST STATS line must agree exactly with the scrape. The
	// control plane renders from the registry, so any mismatch means the
	// two surfaces drifted.
	cmd, err := control.Parse("LIST STATS")
	if err != nil {
		t.Fatal(err)
	}
	lines, err := control.Apply(na, cmd)
	if err != nil {
		t.Fatal(err)
	}
	expect := map[string]func() float64{
		"encap_sent":           func() float64 { return series["vnetp_encap_sent_total"] },
		"encap_recv":           func() float64 { return series["vnetp_encap_recv_total"] },
		"delivered":            func() float64 { return series["vnetp_frames_delivered_total"] },
		"no_route_drops":       func() float64 { return series["vnetp_no_route_drops_total"] },
		"bad_packets":          func() float64 { return series["vnetp_bad_packets_total"] },
		"send_errors":          func() float64 { return sumFamily(series, "vnetp_link_send_errors_total") },
		"route_cache_hits":     func() float64 { return series["vnetp_route_cache_hits_total"] },
		"route_cache_misses":   func() float64 { return series["vnetp_route_cache_misses_total"] },
		"probes_sent":          func() float64 { return sumFamily(series, "vnetp_link_probes_sent_total") },
		"probes_lost":          func() float64 { return sumFamily(series, "vnetp_link_probes_lost_total") },
		"failovers":            func() float64 { return sumFamily(series, "vnetp_link_failovers_total") },
		"failbacks":            func() float64 { return sumFamily(series, "vnetp_link_failbacks_total") },
		"redials":              func() float64 { return sumFamily(series, "vnetp_link_redials_total") },
		"link_upgrades":        func() float64 { return sumFamily(series, "vnetp_link_upgrades_total") },
		"dispatchers":          func() float64 { return series["vnetp_dispatchers"] },
		"tx_ring_drops":        func() float64 { return sumFamily(series, "vnetp_link_tx_ring_drops_total") },
		"encap_pool_hits":      func() float64 { return series["vnetp_encap_pool_hits_total"] },
		"encap_pool_misses":    func() float64 { return series["vnetp_encap_pool_misses_total"] },
		"sealed_sent":          func() float64 { return series["vnetp_seal_sealed_total"] },
		"sealed_opened":        func() float64 { return series["vnetp_seal_opened_total"] },
		"seal_rejects":         func() float64 { return sumFamily(series, "vnetp_seal_reject_total") },
		"cross_tenant_drops":   func() float64 { return series["vnetp_cross_tenant_drops_total"] },
		"tenants":              func() float64 { return series["vnetp_tenants"] },
		"flow_cache_hits":      func() float64 { return series["vnetp_flow_cache_hits_total"] },
		"flow_cache_misses":    func() float64 { return series["vnetp_flow_cache_misses_total"] },
		"flow_cache_evictions": func() float64 { return series["vnetp_flow_cache_evictions_total"] },
		"flow_cache_entries":   func() float64 { return series["vnetp_flow_cache_entries"] },
		"drops_total":          func() float64 { return sumFamily(series, "vnetp_drops_total") },
		"anomalies":            func() float64 { return sumFamily(series, "vnetp_anomalies_total") },
	}
	checked := 0
	for _, line := range lines {
		f := strings.Fields(line)
		if len(f) != 2 {
			t.Fatalf("malformed LIST STATS line %q", line)
		}
		got, err := strconv.ParseFloat(f[1], 64)
		if err != nil {
			t.Fatalf("bad LIST STATS value %q: %v", line, err)
		}
		var want float64
		switch {
		case expect[f[0]] != nil:
			want = expect[f[0]]()
		case strings.HasPrefix(f[0], "drops_"):
			// Per-reason ledger lines map onto the unified family's
			// labeled children.
			want = series[fmt.Sprintf(`vnetp_drops_total{reason="%s"}`, strings.TrimPrefix(f[0], "drops_"))]
		case strings.HasPrefix(f[0], "dispatcher_"):
			var idx int
			var kind string
			if _, err := fmt.Sscanf(f[0], "dispatcher_%d_%s", &idx, &kind); err != nil {
				t.Fatalf("unexpected dispatcher line %q", line)
			}
			want = series[fmt.Sprintf(`vnetp_dispatcher_%s_total{worker="%d"}`, kind, idx)]
		default:
			t.Fatalf("LIST STATS line %q has no scrape mapping", line)
		}
		if got != want {
			t.Fatalf("LIST STATS %s = %v but scrape says %v", f[0], got, want)
		}
		checked++
	}
	if checked < 15 {
		t.Fatalf("only %d LIST STATS lines checked", checked)
	}
}

// TestListStatsBackcompat pins the exact LIST STATS line set (keys and
// order): VNET/U-era tooling parses this surface, so growing the
// registry must not silently reshape it.
func TestListStatsBackcompat(t *testing.T) {
	n, err := overlay.NewNodeWithConfig("pin", "127.0.0.1:0", overlay.NodeConfig{Dispatchers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	want := []string{
		"encap_sent", "encap_recv", "delivered", "no_route_drops",
		"bad_packets", "send_errors", "route_cache_hits", "route_cache_misses",
		"probes_sent", "probes_lost", "failovers", "failbacks",
		"redials", "link_upgrades", "dispatchers",
		"dispatcher_0_datagrams", "dispatcher_0_frames", "dispatcher_0_drops",
		"dispatcher_1_datagrams", "dispatcher_1_frames", "dispatcher_1_drops",
		// Keys below appended after the original pinned set (growth is
		// append-only; parsers indexing the lines above stay correct).
		"tx_ring_drops", "encap_pool_hits", "encap_pool_misses",
		"sealed_sent", "sealed_opened", "seal_rejects",
		"cross_tenant_drops", "tenants",
		"flow_cache_hits", "flow_cache_misses", "flow_cache_evictions",
		"flow_cache_entries",
		// Unified drop ledger and anomaly watchdog (ISSUE 10): the
		// cross-reason total, one line per ledger reason in datapath
		// order, then the anomaly alert count.
		"drops_total",
		"drops_bad_packet", "drops_dispatcher_ring", "drops_probe_ring",
		"drops_seal_reject", "drops_reassembly_evict", "drops_no_route",
		"drops_cross_tenant", "drops_endpoint_ring",
		"drops_tx_ring", "drops_tx_teardown",
		"anomalies",
	}
	stats := n.Stats()
	if len(stats) != len(want) {
		t.Fatalf("LIST STATS has %d lines, want %d:\n%s", len(stats), len(want), strings.Join(stats, "\n"))
	}
	for i, line := range stats {
		key := strings.Fields(line)[0]
		if key != want[i] {
			t.Fatalf("LIST STATS line %d key = %q, want %q", i, key, want[i])
		}
	}
}

// TestLinkStatusBytes checks the LINK STATUS surface reports the
// per-link byte counters after traffic in both directions.
func TestLinkStatusBytes(t *testing.T) {
	na, _, epA, epB := twoNodes(t)
	epA.Send(&ethernet.Frame{Dst: epB.MAC(), Src: epA.MAC(), Type: ethernet.TypeTest, Payload: []byte("out")})
	if _, ok := epB.Recv(recvTimeout); !ok {
		t.Fatal("frame lost")
	}
	epB.Send(&ethernet.Frame{Dst: epA.MAC(), Src: epB.MAC(), Type: ethernet.TypeTest, Payload: []byte("back")})
	if _, ok := epA.Recv(recvTimeout); !ok {
		t.Fatal("reply lost")
	}
	lines, err := na.LinkStatus("to-b")
	if err != nil {
		t.Fatal(err)
	}
	vals := map[string]uint64{}
	for _, l := range lines {
		f := strings.Fields(l)
		if len(f) == 2 {
			if v, err := strconv.ParseUint(f[1], 10, 64); err == nil {
				vals[f[0]] = v
			}
		}
	}
	if vals["bytes_sent"] == 0 {
		t.Fatalf("LINK STATUS bytes_sent missing or zero: %v", lines)
	}
	if vals["bytes_recv"] == 0 {
		t.Fatalf("LINK STATUS bytes_recv missing or zero: %v", lines)
	}
}
