// The node half of the unified drop ledger: a fixed reason vocabulary
// covering every datapath drop site, and the one helper all sites call.
// Legacy per-site counter families (endpoint ring, dispatcher ring,
// TX ring, no-route, bad-packet, seal reject, cross-tenant, reassembly
// evictions) remain live views at their original names, so the LIST
// STATS pin and existing dashboards stay append-only; the ledger adds
// the correlated vnetp_drops_total{reason} family, per-tenant drop
// attribution, and the detail tails the /diag bundle renders.
//
// The accounting contract mirrors the PR 7 TX rules: one observed drop
// increments exactly one ledger reason, exactly once. The drop-site
// regression test pins this per site.

package overlay

import "vnetp/internal/telemetry"

// Ledger drop reasons. Every datapath drop site reports exactly one.
const (
	// dropNoRoute: a frame with no usable destination — unknown tenant,
	// no matching route, or a route naming a deleted link.
	dropNoRoute = "no_route"
	// dropBadPacket: a malformed encapsulation datagram (parse or
	// reassembly failure) on any receive path.
	dropBadPacket = "bad_packet"
	// dropEndpointRing: a delivered frame lost to a full endpoint
	// receive ring (virtio RXQ overrun).
	dropEndpointRing = "endpoint_ring"
	// dropDispatcherRing: a datagram lost to a full dispatcher ring
	// (NIC RX ring overrun analogue).
	dropDispatcherRing = "dispatcher_ring"
	// dropProbeRing: a control datagram lost to a full probe ring; the
	// peer sees it as a lost heartbeat.
	dropProbeRing = "probe_ring"
	// dropTxRing: a frame lost to a full link TX ring.
	dropTxRing = "tx_ring"
	// dropTxTeardown: frames a stopping TX sender had already collected
	// into its in-hand batch (link delete, drain, node close).
	dropTxTeardown = "tx_teardown"
	// dropReassemblyEvict: stale partial reassemblies aged out by the
	// evictor (each evicted partial is one lost frame).
	dropReassemblyEvict = "reassembly_evict"
	// dropSealReject: a sealed datagram rejected fail-closed
	// (unknown tenant, failed auth, replay, truncation).
	dropSealReject = "seal_reject"
	// dropCrossTenant: a frame stopped by the tenancy guards (endpoint
	// or link bound to a different tenant than the frame).
	dropCrossTenant = "cross_tenant"
)

// dropReasons is the declared vocabulary, in datapath order (RX → route
// → TX). NewDropLedger pre-creates every child so scrapes and LIST
// STATS see the full set at zero.
var dropReasons = []string{
	dropBadPacket,
	dropDispatcherRing,
	dropProbeRing,
	dropSealReject,
	dropReassemblyEvict,
	dropNoRoute,
	dropCrossTenant,
	dropEndpointRing,
	dropTxRing,
	dropTxTeardown,
}

// drop is the single funnel every overlay drop site reports through: it
// moves the unified ledger (counter family + detail tail) and the
// owning tenant's per-tenant drop SLI together, so the two surfaces can
// never disagree.
func (n *Node) drop(reason string, count uint64, d telemetry.DropDetail) {
	n.ledger.Drop(reason, count, d)
	n.slis.get(d.Tenant).drops.Add(count)
}

// Ledger exposes the node's unified drop ledger (diagnostics and
// tests; the /diag bundle renders its tails).
func (n *Node) Ledger() *telemetry.DropLedger { return n.ledger }
