package overlay

import (
	"testing"
	"time"

	"vnetp/internal/core"
	"vnetp/internal/ethernet"
)

// TestFlowCacheUnit pins the cache's mechanical contract: store/lookup
// round-trips at the fill epoch, a stale epoch misses, refills at the
// new epoch hit again, and the per-shard capacity bound evicts (and
// counts) rather than growing without bound.
func TestFlowCacheUnit(t *testing.T) {
	c := newFlowCache(flowShards) // one entry per shard
	k := core.FlowKey{Tenant: 7, Src: ethernet.LocalMAC(1), Dst: ethernet.LocalMAC(2)}
	if e := c.lookup(k, 0); e != nil {
		t.Fatal("hit on empty cache")
	}
	c.store(k, &flowEntry{epoch: 0, tenant: 7})
	if e := c.lookup(k, 0); e == nil || e.tenant != 7 {
		t.Fatalf("lookup after store = %+v", e)
	}
	if e := c.lookup(k, 1); e != nil {
		t.Fatal("stale entry served after epoch bump")
	}
	c.store(k, &flowEntry{epoch: 1, tenant: 7})
	if e := c.lookup(k, 1); e == nil {
		t.Fatal("refill at new epoch missed")
	}
	hits, misses, _, entries := c.hits.Load(), c.misses.Load(), c.evictions.Load(), c.entries()
	if hits != 2 || misses != 2 || entries != 1 {
		t.Fatalf("hits=%d misses=%d entries=%d, want 2/2/1", hits, misses, entries)
	}
	// Hammer one shard past its capacity (1): every colliding insert
	// evicts the resident entry.
	shard := k.Shard(flowShards)
	inserted := 0
	for i := uint32(0); i < 4096 && inserted < 8; i++ {
		k2 := core.FlowKey{Tenant: i, Src: ethernet.LocalMAC(3), Dst: ethernet.LocalMAC(4)}
		if k2.Shard(flowShards) != shard || k2 == k {
			continue
		}
		c.store(k2, &flowEntry{epoch: 1, tenant: i})
		inserted++
	}
	if inserted == 0 {
		t.Fatal("no colliding keys found")
	}
	if got := c.evictions.Load(); got != uint64(inserted) {
		t.Fatalf("evictions = %d, want %d", got, inserted)
	}
	if got := c.entries(); got > flowShards {
		t.Fatalf("entries = %d, exceeds capacity %d", got, flowShards)
	}
}

// TestFlowEpochBumpEvents pins the full set of node events that must
// retire cached flow decisions: link add/replace/delete, endpoint
// detach, tenant installs, fault-conduit installs, LINK TUNE, and —
// via the routing table's invalidation hook — route churn and
// FailDest/RestoreDest on any tenant table, including tables created
// after the node.
func TestFlowEpochBumpEvents(t *testing.T) {
	// Batched transmit so links carry a TX ring (LINK TUNE rejects
	// synchronous links before it would bump).
	n, err := NewNodeWithConfig("epochs", "127.0.0.1:0", NodeConfig{TxBatch: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	expectBump := func(what string, fn func()) {
		t.Helper()
		before := n.FlowEpoch()
		fn()
		if after := n.FlowEpoch(); after <= before {
			t.Fatalf("%s did not bump the flow epoch (%d -> %d)", what, before, after)
		}
	}
	peer, err := NewNode("peer", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer peer.Close()

	expectBump("AddLink", func() { n.AddLink("l0", peer.Addr(), "udp") })
	expectBump("AddLink replace", func() { n.AddLink("l0", peer.Addr(), "udp") })
	expectBump("SetLinkTune", func() {
		if err := n.SetLinkTune("l0", "latency"); err != nil {
			t.Fatal(err)
		}
	})
	expectBump("SetLinkFault", func() { n.SetLinkFault("l0", nil) })
	expectBump("DelLink", func() { n.DelLink("l0") })
	mac := ethernet.LocalMAC(1)
	if _, err := n.AttachEndpoint("nic0", mac, 1500); err != nil {
		t.Fatal(err)
	}
	expectBump("AddRoute", func() {
		n.AddRoute(core.Route{DstMAC: mac, DstQual: core.QualExact, SrcQual: core.QualAny,
			Dest: core.Destination{Type: core.DestInterface, ID: "nic0"}})
	})
	dest := core.Destination{Type: core.DestInterface, ID: "nic0"}
	expectBump("FailDest", func() { n.tenants.Table(0).FailDest(dest) })
	expectBump("RestoreDest", func() { n.tenants.Table(0).RestoreDest(dest) })
	expectBump("DelRoute", func() {
		n.DelRoute(core.Route{DstMAC: mac, DstQual: core.QualExact, SrcQual: core.QualAny, Dest: dest})
	})
	expectBump("DetachEndpoint", func() { n.DetachEndpoint("nic0") })
	key := make([]byte, 32)
	expectBump("AddTenant", func() {
		if err := n.AddTenant(9, key); err != nil {
			t.Fatal(err)
		}
	})
	// A table created by the tenant install must have inherited the
	// invalidation hook.
	expectBump("tenant-table AddRoute", func() {
		n.AddRoute(core.Route{Tenant: 9, DstMAC: mac, DstQual: core.QualExact, SrcQual: core.QualAny,
			Dest: core.Destination{Type: core.DestInterface, ID: "ghost"}})
	})
}

// TestFlowCacheHitPath drives repeated unicast traffic between two local
// endpoints and pins that the steady state is served from the flow
// cache: one miss to fill, hits from then on, and broadcast stays
// uncached.
func TestFlowCacheHitPath(t *testing.T) {
	n, err := NewNode("hits", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	a, err := n.AttachEndpoint("a", ethernet.LocalMAC(1), 1500)
	if err != nil {
		t.Fatal(err)
	}
	b, err := n.AttachEndpoint("b", ethernet.LocalMAC(2), 1500)
	if err != nil {
		t.Fatal(err)
	}
	n.AddRoute(core.Route{DstMAC: b.MAC(), DstQual: core.QualExact, SrcQual: core.QualAny,
		Dest: core.Destination{Type: core.DestInterface, ID: "b"}})

	const frames = 32
	for i := 0; i < frames; i++ {
		if err := a.Send(&ethernet.Frame{Dst: b.MAC(), Src: a.MAC(), Type: ethernet.TypeTest,
			Payload: []byte("cached")}); err != nil {
			t.Fatal(err)
		}
		if _, ok := b.Recv(2 * time.Second); !ok {
			t.Fatalf("frame %d lost", i)
		}
	}
	hits, misses, _, entries := n.FlowCacheStats()
	if misses != 1 {
		t.Fatalf("misses = %d, want exactly 1 (the fill)", misses)
	}
	if hits != frames-1 {
		t.Fatalf("hits = %d, want %d", hits, frames-1)
	}
	if entries != 1 {
		t.Fatalf("entries = %d, want 1", entries)
	}
	// Broadcast must bypass the cache entirely (the send itself may
	// report no-route — only the exact unicast route exists).
	a.Send(&ethernet.Frame{Dst: ethernet.Broadcast, Src: a.MAC(), Type: ethernet.TypeTest,
		Payload: []byte("bcast")})
	h2, m2, _, _ := n.FlowCacheStats()
	if h2 != hits || m2 != misses {
		t.Fatalf("broadcast touched the flow cache (hits %d->%d, misses %d->%d)", hits, h2, misses, m2)
	}
}

// TestFlowCacheDisabled pins the ablation/escape hatch: with
// FlowCacheDisabled traffic still flows and the stats surface reads
// zero.
func TestFlowCacheDisabled(t *testing.T) {
	n, err := NewNodeWithConfig("nocache", "127.0.0.1:0", NodeConfig{FlowCacheDisabled: true})
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	a, err := n.AttachEndpoint("a", ethernet.LocalMAC(1), 1500)
	if err != nil {
		t.Fatal(err)
	}
	b, err := n.AttachEndpoint("b", ethernet.LocalMAC(2), 1500)
	if err != nil {
		t.Fatal(err)
	}
	n.AddRoute(core.Route{DstMAC: b.MAC(), DstQual: core.QualExact, SrcQual: core.QualAny,
		Dest: core.Destination{Type: core.DestInterface, ID: "b"}})
	for i := 0; i < 4; i++ {
		if err := a.Send(&ethernet.Frame{Dst: b.MAC(), Src: a.MAC(), Type: ethernet.TypeTest,
			Payload: []byte("plain")}); err != nil {
			t.Fatal(err)
		}
		if _, ok := b.Recv(2 * time.Second); !ok {
			t.Fatalf("frame %d lost", i)
		}
	}
	if h, m, e, entries := n.FlowCacheStats(); h+m+e != 0 || entries != 0 {
		t.Fatalf("disabled cache has stats %d/%d/%d/%d", h, m, e, entries)
	}
}

// TestFlowCacheObservesFailover is the failover acceptance extension
// for the fast path: traffic warmed into the flow cache must observe a
// FailDest within one epoch bump — the very next frame routes to the
// backup, and the failed primary receives nothing after FailDest
// returns.
func TestFlowCacheObservesFailover(t *testing.T) {
	n, err := NewNode("failover", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	src, err := n.AttachEndpoint("src", ethernet.LocalMAC(1), 1500)
	if err != nil {
		t.Fatal(err)
	}
	prim, err := n.AttachEndpoint("prim", ethernet.LocalMAC(2), 1500)
	if err != nil {
		t.Fatal(err)
	}
	back, err := n.AttachEndpoint("back", ethernet.LocalMAC(3), 1500)
	if err != nil {
		t.Fatal(err)
	}
	dst := ethernet.LocalMAC(9)
	n.AddRoute(core.Route{DstMAC: dst, DstQual: core.QualExact, SrcQual: core.QualAny,
		Dest:   core.Destination{Type: core.DestInterface, ID: "prim"},
		Backup: core.Destination{Type: core.DestInterface, ID: "back"}, HasBackup: true})

	// Warm the cache onto the primary.
	for i := 0; i < 8; i++ {
		if err := src.Send(&ethernet.Frame{Dst: dst, Src: src.MAC(), Type: ethernet.TypeTest,
			Payload: []byte("warm")}); err != nil {
			t.Fatal(err)
		}
		if _, ok := prim.Recv(2 * time.Second); !ok {
			t.Fatalf("warm frame %d lost", i)
		}
	}
	if hits, _, _, _ := n.FlowCacheStats(); hits == 0 {
		t.Fatal("cache never warmed")
	}

	epoch := n.FlowEpoch()
	n.tenants.Table(0).FailDest(core.Destination{Type: core.DestInterface, ID: "prim"})
	if got := n.FlowEpoch(); got != epoch+1 {
		t.Fatalf("FailDest bumped epoch %d -> %d, want exactly one bump", epoch, got)
	}
	// Every post-FailDest frame lands on the backup; the dead primary
	// stays silent.
	for i := 0; i < 8; i++ {
		if err := src.Send(&ethernet.Frame{Dst: dst, Src: src.MAC(), Type: ethernet.TypeTest,
			Payload: []byte("failed-over")}); err != nil {
			t.Fatal(err)
		}
		if _, ok := back.Recv(2 * time.Second); !ok {
			t.Fatalf("failover frame %d lost", i)
		}
	}
	if f, ok := prim.Recv(50 * time.Millisecond); ok {
		t.Fatalf("dead primary received %q after FailDest", f.Payload)
	}
}

// FuzzFlowCache is an op-machine over the cache: arbitrary interleavings
// of store / epoch-bump / lookup, checked against a shadow model. The
// load-bearing invariant is that a lookup NEVER returns an entry from
// an earlier epoch — a stale hit in production is a silent dead-link or
// cross-tenant delivery — plus the capacity bound and tenant-key
// integrity.
func FuzzFlowCache(f *testing.F) {
	f.Add([]byte{0, 1, 1, 2, 2, 1, 1, 2}, uint8(16))
	f.Add([]byte{0, 0, 0, 0, 1, 0, 2, 0, 0, 3, 2, 3}, uint8(1))
	f.Add([]byte{2, 9, 0, 9, 2, 9, 1, 9, 2, 9, 0, 9, 2, 9}, uint8(255))
	f.Fuzz(func(t *testing.T, ops []byte, sizeSeed uint8) {
		size := int(sizeSeed)%64 + 1
		c := newFlowCache(size)
		capacity := (size/flowShards + 1) * flowShards // perShard floor is 1
		var epoch uint64
		model := map[core.FlowKey]uint64{} // key -> epoch at last store
		for i := 0; i+1 < len(ops); i += 2 {
			sel := ops[i+1]
			k := core.FlowKey{
				Tenant: uint32(sel % 5),
				Src:    ethernet.LocalMAC(uint32(sel % 7)),
				Dst:    ethernet.LocalMAC(uint32(sel % 11)),
			}
			switch ops[i] % 3 {
			case 0:
				c.store(k, &flowEntry{epoch: epoch, tenant: k.Tenant})
				model[k] = epoch
			case 1:
				epoch++
			case 2:
				e := c.lookup(k, epoch)
				if e == nil {
					continue
				}
				if e.epoch != epoch {
					t.Fatalf("stale entry served: entry epoch %d, current %d", e.epoch, epoch)
				}
				stored, ok := model[k]
				if !ok || stored != epoch {
					t.Fatalf("hit for key stored at epoch %d (present=%v), current %d", stored, ok, epoch)
				}
				if e.tenant != k.Tenant {
					t.Fatalf("entry tenant %d under key tenant %d", e.tenant, k.Tenant)
				}
			}
		}
		if got := c.entries(); got > capacity {
			t.Fatalf("entries = %d, capacity bound %d (size %d)", got, capacity, size)
		}
	})
}
