//go:build !linux || !(amd64 || arm64)

package overlay

import "net"

// sendBatchUDP on platforms without sendmmsg: the per-datagram loop.
// Batching still amortizes wakeups and encapsulation buffers; only the
// syscall count stays per-datagram.
func sendBatchUDP(c *net.UDPConn, dgs [][]byte, addr *net.UDPAddr) (int, error) {
	return sendBatchUDPFallback(c, dgs, addr)
}
