// The diagnostic snapshot bundle (ISSUE 10): one JSON document
// answering "what is this node doing and why is it dropping frames" —
// build info, uptime, the normalized datapath configuration, a full
// metrics gather, health and dispatch-mode states, flow-cache and
// heavy-hitter readings, the drop ledger's tails, supervisor restart
// history, and the recorded traces. GET /diag on the telemetry
// listener and `vnetctl diag` both render it; the schema's top-level
// keys are golden-pinned so downstream triage tooling can rely on the
// shape.
//
// The bundle is assembled from the same registry handles and summary
// surfaces the control language reads, so its numbers agree with a
// concurrent /metrics scrape by construction (pinned by the diag e2e
// test on a live two-node overlay).

package overlay

import (
	"encoding/json"
	"net/http"
	"runtime"
	"time"

	"vnetp/internal/telemetry"
)

// DiagSchema versions the bundle's shape. Bump only when a top-level
// key changes meaning or disappears; adding keys is append-only and
// does not bump.
const DiagSchema = 1

// DiagBundle is the one-shot diagnostic snapshot document.
type DiagBundle struct {
	Schema        int       `json:"schema"`
	Node          string    `json:"node"`
	Addr          string    `json:"addr"`
	GeneratedAt   time.Time `json:"generated_at"`
	UptimeSeconds float64   `json:"uptime_seconds"`

	Build  DiagBuild  `json:"build"`
	Config DiagConfig `json:"config"`

	// Metrics is the full registry gather — every family /metrics
	// would render, as structured samples.
	Metrics []telemetry.FamilySnapshot `json:"metrics"`

	Health    []string                `json:"health"`
	Tuning    []string                `json:"tuning"`
	FlowCache DiagFlowCache           `json:"flow_cache"`
	TopFlows  map[string][]topFlowDoc `json:"top_flows"`
	Drops     DiagDrops               `json:"drops"`
	Tenants   []string                `json:"tenants"`
	Runtime   []DiagComponent         `json:"runtime"`
	Traces    []string                `json:"traces"`
}

// DiagBuild identifies the binary.
type DiagBuild struct {
	GoVersion string `json:"go_version"`
	OS        string `json:"os"`
	Arch      string `json:"arch"`
}

// DiagConfig is the node's normalized datapath configuration — the
// effective values after defaulting, not the zero-ridden input.
type DiagConfig struct {
	Dispatchers     int     `json:"dispatchers"`
	QueueDepth      int     `json:"queue_depth"`
	TxBatch         int     `json:"tx_batch"`
	TxRing          int     `json:"tx_ring"`
	TxFlushTimeout  string  `json:"tx_flush_timeout"`
	RxBatch         int     `json:"rx_batch"`
	FlowCache       bool    `json:"flow_cache"`
	FlowCacheSize   int     `json:"flow_cache_size"`
	Adaptive        bool    `json:"adaptive"`
	EvictInterval   string  `json:"evict_interval"`
	TraceSample     uint64  `json:"trace_sample"`
	FlightDepth     int     `json:"flight_depth"`
	AnomalyWatch    bool    `json:"anomaly_watch"`
	AnomalyInterval string  `json:"anomaly_interval"`
	AnomalyDropRate float64 `json:"anomaly_drop_rate"`
}

// DiagFlowCache is the per-flow fast path's state.
type DiagFlowCache struct {
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Evictions uint64 `json:"evictions"`
	Entries   int    `json:"entries"`
	Epoch     uint64 `json:"epoch"`
}

// DiagDrops is the unified drop ledger's snapshot: totals by reason
// plus the per-reason detail tails.
type DiagDrops struct {
	Total    uint64                            `json:"total"`
	ByReason map[string]uint64                 `json:"by_reason"`
	Tails    map[string][]telemetry.DropRecord `json:"tails"`
}

// DiagComponent is one supervised component's restart history.
type DiagComponent struct {
	Name     string `json:"name"`
	Restarts uint64 `json:"restarts"`
}

// Diag assembles the node's diagnostic snapshot bundle.
func (n *Node) Diag() DiagBundle {
	n.metrics.diagRenders.Add(1)
	cfg := n.cfg
	fcSize := cfg.FlowCacheSize
	if fcSize <= 0 && !cfg.FlowCacheDisabled {
		fcSize = defaultFlowCacheSize // the cache applies this default itself
	}
	byReason := make(map[string]uint64, len(dropReasons))
	for _, r := range dropReasons {
		byReason[r] = n.ledger.Count(r)
	}
	comps := []DiagComponent{}
	for _, name := range n.sup.Components() {
		if w := n.sup.Worker(name); w != nil {
			comps = append(comps, DiagComponent{Name: name, Restarts: w.Restarts()})
		}
	}
	fcHits, fcMisses, fcEvictions, fcEntries := n.FlowCacheStats()
	return DiagBundle{
		Schema:        DiagSchema,
		Node:          n.name,
		Addr:          n.Addr(),
		GeneratedAt:   time.Now().UTC(),
		UptimeSeconds: time.Since(n.started).Seconds(),
		Build: DiagBuild{
			GoVersion: runtime.Version(),
			OS:        runtime.GOOS,
			Arch:      runtime.GOARCH,
		},
		Config: DiagConfig{
			Dispatchers:     cfg.Dispatchers,
			QueueDepth:      cfg.QueueDepth,
			TxBatch:         cfg.TxBatch,
			TxRing:          cfg.TxRing,
			TxFlushTimeout:  cfg.TxFlushTimeout.String(),
			RxBatch:         cfg.RxBatch,
			FlowCache:       !cfg.FlowCacheDisabled,
			FlowCacheSize:   fcSize,
			Adaptive:        cfg.Adaptive.Enabled,
			EvictInterval:   cfg.EvictInterval.String(),
			TraceSample:     cfg.TraceSample,
			FlightDepth:     cfg.FlightDepth,
			AnomalyWatch:    !cfg.Anomaly.Disabled,
			AnomalyInterval: cfg.Anomaly.Interval.String(),
			AnomalyDropRate: cfg.Anomaly.DropRate,
		},
		// Empty sections render as [] rather than null: the bundle's
		// consumers iterate without a nil check.
		Metrics: n.metrics.reg.Gather(),
		Health:  orEmpty(n.HealthSummary()),
		Tuning:  orEmpty(n.TuningSummary()),
		FlowCache: DiagFlowCache{
			Hits: fcHits, Misses: fcMisses, Evictions: fcEvictions,
			Entries: fcEntries, Epoch: n.flowEpoch.Load(),
		},
		TopFlows: n.topFlowsDoc(),
		Drops: DiagDrops{
			Total:    n.ledger.Total(),
			ByReason: byReason,
			Tails:    n.ledger.Snapshot(),
		},
		Tenants: orEmpty(n.TenantSummary()),
		Runtime: comps,
		Traces:  orEmpty(n.TraceDump()),
	}
}

// orEmpty maps a nil string slice to an empty one.
func orEmpty(s []string) []string {
	if s == nil {
		return []string{}
	}
	return s
}

// DiagHandler serves the snapshot bundle as JSON — mounted at /diag on
// the telemetry listener, beside /metrics, /trace, and /flight.
func (n *Node) DiagHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(n.Diag())
	})
}
