package overlay

import (
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"vnetp/internal/bridge"
	"vnetp/internal/core"
	"vnetp/internal/ethernet"
)

// pickSenderKeys brute-forces synthetic sender keys that spread evenly
// over the node's dispatcher shards, so the benchmark measures worker
// scaling rather than hash luck.
func pickSenderKeys(n *Node, count int) []string {
	workers := len(n.shards)
	perShard := make(map[int]int)
	want := (count + workers - 1) / workers
	keys := make([]string, 0, count)
	for i := 0; len(keys) < count; i++ {
		key := fmt.Sprintf("10.7.%d.%d:7777", i/256, i%256)
		idx := n.shardFor(key).idx
		if perShard[idx] >= want {
			continue
		}
		perShard[idx]++
		keys = append(keys, key)
	}
	return keys
}

// BenchmarkOverlayDispatcherScaling measures loopback receive-path
// throughput as the dispatcher pool grows: pre-encapsulated datagrams
// from 8 distinct senders are fed straight into the dispatch stage (the
// exact path the UDP read loop feeds) and the benchmark completes when
// every frame has been reassembled, routed, and delivered. This is the
// real-socket twin of the paper's Fig. 5 dispatcher-count sweep; with
// GOMAXPROCS=1 the workers time-slice one core and the sweep instead
// measures pool overhead (the 1-worker row must match the old single
// readLoop).
func BenchmarkOverlayDispatcherScaling(b *testing.B) {
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("dispatchers=%d", workers), func(b *testing.B) {
			benchDispatcherScaling(b, workers)
		})
	}
}

func benchDispatcherScaling(b *testing.B, workers int) {
	n, err := NewNodeWithConfig("bench", "127.0.0.1:0", NodeConfig{Dispatchers: workers, QueueDepth: 2048})
	if err != nil {
		b.Fatal(err)
	}
	defer n.Close()

	const senders = 8
	const payloadLen = 1300
	keys := pickSenderKeys(n, senders)
	pkts := make([][]byte, senders)
	for i := 0; i < senders; i++ {
		ep, err := n.AttachEndpoint(fmt.Sprintf("nic%d", i), ethernet.LocalMAC(uint32(i+1)), ethernet.JumboMTU)
		if err != nil {
			b.Fatal(err)
		}
		f := &ethernet.Frame{
			Dst: ep.MAC(), Src: ethernet.LocalMAC(uint32(100 + i)), Type: ethernet.TypeTest,
			Payload: make([]byte, payloadLen),
		}
		ds, err := bridge.Encapsulate(f, uint32(i), maxDatagram)
		if err != nil {
			b.Fatal(err)
		}
		if len(ds) != 1 {
			b.Fatalf("expected single-datagram frame, got %d", len(ds))
		}
		pkts[i] = ds[0]
	}

	per := (b.N + senders - 1) / senders
	total := uint64(per * senders)
	b.SetBytes(payloadLen)
	b.ResetTimer()
	var wg sync.WaitGroup
	for s := 0; s < senders; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for k := 0; k < per; k++ {
				n.inject(keys[s], pkts[s])
			}
		}(s)
	}
	wg.Wait()
	for n.Delivered.Load() < total {
		time.Sleep(50 * time.Microsecond)
	}
	b.StopTimer()
}

// TestDispatcherShardingIsStable pins the property order preservation
// rests on: every datagram from one sender maps to the same shard, and
// with enough senders more than one shard carries traffic.
func TestDispatcherShardingIsStable(t *testing.T) {
	n, err := NewNodeWithConfig("shards", "127.0.0.1:0", NodeConfig{Dispatchers: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	if n.Dispatchers() != 4 {
		t.Fatalf("Dispatchers() = %d, want 4", n.Dispatchers())
	}
	used := make(map[int]bool)
	for i := 0; i < 64; i++ {
		key := fmt.Sprintf("192.168.1.%d:9000", i)
		first := n.shardFor(key).idx
		for rep := 0; rep < 3; rep++ {
			if got := n.shardFor(key).idx; got != first {
				t.Fatalf("sender %q hashed to shard %d then %d", key, first, got)
			}
		}
		used[first] = true
	}
	if len(used) < 2 {
		t.Fatalf("64 senders all hashed to %d shard(s)", len(used))
	}
}

// TestDispatcherPoolDeliversFragmented pushes fragmented frames from many
// synthetic senders through the dispatch stage and checks complete,
// uncorrupted delivery — reassembly sharding must never interleave two
// senders' fragments.
func TestDispatcherPoolDeliversFragmented(t *testing.T) {
	n, err := NewNodeWithConfig("pool", "127.0.0.1:0", NodeConfig{Dispatchers: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	ep, err := n.AttachEndpoint("nic0", ethernet.LocalMAC(1), ethernet.MaxMTU)
	if err != nil {
		t.Fatal(err)
	}
	const senders = 8
	keys := pickSenderKeys(n, senders)
	const payloadLen = 9000 // fragments into several datagrams
	for s := 0; s < senders; s++ {
		payload := make([]byte, payloadLen)
		for i := range payload {
			payload[i] = byte(s)
		}
		f := &ethernet.Frame{Dst: ep.MAC(), Src: ethernet.LocalMAC(uint32(10 + s)), Type: ethernet.TypeTest, Payload: payload}
		ds, err := bridge.Encapsulate(f, 1234, maxDatagram) // same ID on purpose: sender key isolates
		if err != nil {
			t.Fatal(err)
		}
		for _, d := range ds {
			n.inject(keys[s], d)
		}
	}
	seen := make(map[byte]bool)
	for s := 0; s < senders; s++ {
		f, ok := ep.Recv(2 * time.Second)
		if !ok {
			t.Fatalf("frame %d missing", s)
		}
		if len(f.Payload) != payloadLen {
			t.Fatalf("frame %d truncated: %d bytes", s, len(f.Payload))
		}
		marker := f.Payload[0]
		for i, b := range f.Payload {
			if b != marker {
				t.Fatalf("frame from sender %d corrupted at byte %d", marker, i)
			}
		}
		seen[marker] = true
	}
	if len(seen) != senders {
		t.Fatalf("saw %d distinct senders, want %d", len(seen), senders)
	}
}

// TestPerDispatcherStats checks LIST STATS exposes the pool size and
// per-worker counters, and that traffic is attributed to a worker.
func TestPerDispatcherStats(t *testing.T) {
	n, err := NewNodeWithConfig("stats", "127.0.0.1:0", NodeConfig{Dispatchers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	ep, err := n.AttachEndpoint("nic0", ethernet.LocalMAC(1), 1500)
	if err != nil {
		t.Fatal(err)
	}
	f := &ethernet.Frame{Dst: ep.MAC(), Src: ethernet.LocalMAC(2), Type: ethernet.TypeTest, Payload: []byte("counted")}
	ds, err := bridge.Encapsulate(f, 9, maxDatagram)
	if err != nil {
		t.Fatal(err)
	}
	n.inject("1.2.3.4:5", ds[0])
	if _, ok := ep.Recv(2 * time.Second); !ok {
		t.Fatal("frame not delivered")
	}
	stats := n.Stats()
	want := map[string]bool{
		"dispatchers 2": false,
	}
	var frames uint64
	for _, line := range stats {
		if _, ok := want[line]; ok {
			want[line] = true
		}
		var idx int
		var v uint64
		if c, _ := fmt.Sscanf(line, "dispatcher_%d_frames %d", &idx, &v); c == 2 {
			frames += v
		}
	}
	for line, ok := range want {
		if !ok {
			t.Fatalf("stats missing %q: %v", line, stats)
		}
	}
	if frames != 1 {
		t.Fatalf("per-dispatcher frame counters sum to %d, want 1 (%v)", frames, stats)
	}
}

// TestRouteFanOutContinuesPastDeadLink is the fan-out bugfix regression:
// a multicast/broadcast hitting a dead link must still reach every other
// destination, and the send failures must be aggregated, not returned
// first-error-wins.
func TestRouteFanOutContinuesPastDeadLink(t *testing.T) {
	n, err := NewNode("fanout", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	src, err := n.AttachEndpoint("src", ethernet.LocalMAC(1), 1500)
	if err != nil {
		t.Fatal(err)
	}
	// A TCP link to a port nobody listens on: sends fail fast with
	// connection-refused.
	if err := n.AddLink("dead", deadTCPAddr(t), "tcp"); err != nil {
		t.Fatal(err)
	}
	// Dead link first, so the old first-error-wins bug would starve the
	// local endpoint that follows it in the fan-out.
	n.AddRoute(core.Route{DstQual: core.QualAny, SrcQual: core.QualAny,
		Dest: core.Destination{Type: core.DestLink, ID: "dead"}})
	local, err := n.AttachEndpoint("local", ethernet.LocalMAC(2), 1500)
	if err != nil {
		t.Fatal(err)
	}
	n.AddRoute(core.Route{DstQual: core.QualAny, SrcQual: core.QualAny,
		Dest: core.Destination{Type: core.DestInterface, ID: "local"}})

	err = src.Send(&ethernet.Frame{Dst: ethernet.Broadcast, Src: src.MAC(), Type: ethernet.TypeTest, Payload: []byte("bcast")})
	if err == nil {
		t.Fatal("dead-link failure not surfaced")
	}
	if f, ok := local.Recv(2 * time.Second); !ok || string(f.Payload) != "bcast" {
		t.Fatal("local endpoint starved by dead link earlier in the fan-out")
	}
	// The transport failure is attributed to the link.
	lines, err := n.LinkStatus("dead")
	if err != nil {
		t.Fatal(err)
	}
	if !containsCounter(lines, "send_errors", 1) {
		t.Fatalf("send_errors not counted: %v", lines)
	}
}

// deadTCPAddr returns a loopback address that was listening a moment ago
// and now refuses connections.
func deadTCPAddr(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

// containsCounter reports whether lines contains "<name> <v>" with v >=
// min.
func containsCounter(lines []string, name string, min uint64) bool {
	for _, l := range lines {
		var v uint64
		if c, _ := fmt.Sscanf(l, name+" %d", &v); c == 1 {
			return v >= min
		}
	}
	return false
}
