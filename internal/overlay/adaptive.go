// Adaptive dispatch for the live datapath: the paper's signature
// mechanism (Sect. 4, Table 1) applied to the real-socket overlay. A
// supervised controller samples each link's frame counter every ω and
// runs α_l/α_u hysteresis (internal/adapt/rate) over the observed rate:
// an idle link runs in latency mode (batch=1, short flush — the
// guest-driven analogue) and a loaded link in throughput mode
// (batch=TxBatch, long flush — the VMM-driven analogue). The effective
// tunables live in an atomic per-link snapshot the TX sender reads per
// batch, so a retune applies from the next batch with no locking on the
// hot path. Mode state is exported (vnetp_dispatch_mode,
// vnetp_dispatch_mode_switches_total), logged, and operator-controllable
// at runtime (LINK TUNE / LIST TUNING).

package overlay

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"vnetp/internal/adapt/rate"
	"vnetp/internal/supervise"
)

// defaultAdaptiveBatch is the throughput-mode batch size used when
// adaptive dispatch is enabled without an explicit TxBatch: without a
// ring there would be nothing to adapt.
const defaultAdaptiveBatch = 32

// AdaptiveConfig enables and tunes per-link adaptive dispatch. Zero
// thresholds take the paper's Table 1 values via internal/adapt/rate.
type AdaptiveConfig struct {
	// Enabled starts the per-link controller. It implies the batched
	// transmit path: a node configured with TxBatch < 2 gets
	// defaultAdaptiveBatch as its throughput-mode batch size.
	Enabled bool
	// AlphaL is the throughput→latency downswitch threshold in frames/s
	// (default 10^3, Table 1 α_l).
	AlphaL float64
	// AlphaU is the latency→throughput upswitch threshold in frames/s
	// (default 10^4, Table 1 α_u).
	AlphaU float64
	// Omega is the controller's sampling tick (default 5ms, Table 1 ω).
	Omega time.Duration
	// HoldDown is the minimum dwell in a mode between switches
	// (default 4×Omega).
	HoldDown time.Duration
}

func (c *AdaptiveConfig) normalize() {
	if !c.Enabled {
		return
	}
	if c.Omega <= 0 {
		c.Omega = 5 * time.Millisecond
	}
	if c.HoldDown <= 0 {
		c.HoldDown = 4 * c.Omega
	}
}

// txTunables is one link's effective batched-transmit operating point.
// txLoop loads the snapshot once per batch; the adaptive controller (or
// LINK TUNE) publishes a fresh snapshot to retune the link live.
type txTunables struct {
	mode  rate.Mode
	batch int           // frames coalesced per flush (1 in latency mode)
	flush time.Duration // max wait for a partial batch
}

// tunablesFor maps a dispatch mode onto the node's configured operating
// points: throughput mode is the configured TxBatch/TxFlushTimeout;
// latency mode dispatches each frame as it arrives (batch=1) with a
// quartered flush bound (moot at batch=1, but kept short so a pinned
// latency link never waits long on the timer path).
func (n *Node) tunablesFor(m rate.Mode) *txTunables {
	if m == rate.Throughput {
		return &txTunables{mode: m, batch: n.cfg.TxBatch, flush: n.cfg.TxFlushTimeout}
	}
	f := n.cfg.TxFlushTimeout / 4
	if f < time.Microsecond {
		f = time.Microsecond
	}
	return &txTunables{mode: rate.Latency, batch: 1, flush: f}
}

// initLinkTunables publishes a fresh link's initial operating point:
// latency mode under an adaptive controller (an idle link's correct
// start), throughput mode — the configured static tunables — otherwise.
// Caller holds n.mu; the link already has its metric children.
func (n *Node) initLinkTunables(lk *link) {
	mode := rate.Throughput
	if lk.ctrl != nil {
		mode = lk.ctrl.Mode()
	}
	lk.tun.Store(n.tunablesFor(mode))
	lk.modeGauge.Set(float64(mode))
}

// applyMode publishes a link's new operating point and records the
// transition: tunables snapshot, mode gauge, switch counter, log line.
// Called only for real transitions (controller switch or an operator
// pin that changed the mode).
func (n *Node) applyMode(lk *link, m rate.Mode, why string, extra ...any) {
	tun := n.tunablesFor(m)
	lk.tun.Store(tun)
	lk.modeGauge.Set(float64(m))
	lk.modeSwitches.Inc()
	n.log.Info("dispatch mode switched",
		append([]any{"node", n.name, "link", lk.id, "mode", m.String(),
			"batch", tun.batch, "flush", tun.flush, "cause", why}, extra...)...)
}

// adaptLoop is the node's dispatch-mode controller: every ω it samples
// each controlled link's frame counter, feeds the delta to the link's
// hysteresis controller, and applies any mode switch. Supervised as
// "adaptive": controller state (mode, dwell, last sample) lives on the
// link and in the rate.Controller, so a panic-restarted or superseded
// instance resumes where the old one left off; links added or removed
// mid-tick are picked up on the next tick (the loop snapshots the link
// set per tick and never holds n.mu across controller work).
func (n *Node) adaptLoop(inst *supervise.Instance) {
	t := time.NewTicker(n.cfg.Adaptive.Omega)
	defer t.Stop()
	last := time.Now()
	for {
		select {
		case <-n.quit:
			return
		case <-inst.Quit():
			return
		case now := <-t.C:
			inst.Working()
			elapsed := now.Sub(last)
			last = now
			n.mu.Lock()
			links := make([]*link, 0, len(n.links))
			for _, lk := range n.links {
				if lk.ctrl != nil {
					links = append(links, lk)
				}
			}
			n.mu.Unlock()
			for _, lk := range links {
				total := lk.txFrames.Load()
				prev := lk.lastTxFrames.Swap(total)
				if total < prev {
					// The counter restarted below our sample (link was
					// replaced between snapshot and here): resync.
					continue
				}
				if mode, switched := lk.ctrl.Observe(total-prev, elapsed); switched {
					n.applyMode(lk, mode, "rate",
						"rate_per_s", int64(float64(total-prev)/elapsed.Seconds()))
				}
			}
			inst.Idle()
		}
	}
}

// --- control-plane surface (control.TuneTarget) ---

// SetLinkTune retunes one link's dispatch mode at runtime (the LINK
// TUNE control verb): "latency" or "throughput" pin the mode against
// the rate controller (or retune a static batched link directly);
// "auto" releases a pin so rate-driven switching resumes. Links on the
// synchronous transmit path have no ring to tune and are rejected.
func (n *Node) SetLinkTune(id, mode string) error {
	n.mu.Lock()
	lk, ok := n.links[id]
	n.mu.Unlock()
	if !ok {
		return fmt.Errorf("overlay: no link %q", id)
	}
	if lk.txq == nil {
		return fmt.Errorf("overlay: link %q runs the synchronous transmit path (no TX ring to tune)", id)
	}
	switch strings.ToLower(mode) {
	case "latency", "throughput":
		m := rate.Latency
		if strings.EqualFold(mode, "throughput") {
			m = rate.Throughput
		}
		if lk.ctrl != nil {
			if lk.ctrl.Pin(m) {
				n.applyMode(lk, m, "pinned")
			}
		} else if cur := lk.tun.Load(); cur.mode != m {
			n.applyMode(lk, m, "tuned")
		}
	case "auto":
		if lk.ctrl == nil {
			return fmt.Errorf("overlay: link %q has no adaptive controller (enable NodeConfig.Adaptive / vnetpd -adaptive)", id)
		}
		lk.ctrl.Auto()
	default:
		return fmt.Errorf("overlay: unknown tune mode %q (want latency, throughput, or auto)", mode)
	}
	// An operator retune retires cached flow decisions (rate-driven
	// adaptive switches deliberately do not — they fire often under
	// bursty load and the tunables snapshot is read per batch anyway).
	n.bumpFlowEpoch()
	n.log.Info("link tuned", "node", n.name, "link", id, "mode", strings.ToLower(mode))
	return nil
}

// TuningSummary reports one line per link with its effective dispatch
// tunables (the LIST TUNING control verb), rendered from the same
// registry handles /metrics scrapes: the mode gauge and the switch
// counter are the children exported as vnetp_dispatch_mode and
// vnetp_dispatch_mode_switches_total.
func (n *Node) TuningSummary() []string {
	n.mu.Lock()
	links := make([]*link, 0, len(n.links))
	for _, lk := range n.links {
		links = append(links, lk)
	}
	n.mu.Unlock()
	sort.Slice(links, func(i, j int) bool { return links[i].id < links[j].id })
	out := make([]string, 0, len(links))
	for _, lk := range links {
		if lk.txq == nil {
			out = append(out, fmt.Sprintf("%s mode=synchronous", lk.id))
			continue
		}
		source := "static"
		if lk.ctrl != nil {
			source = "auto"
			if lk.ctrl.Pinned() {
				source = "pinned"
			}
		}
		tun := lk.tun.Load()
		mode := rate.Mode(int32(lk.modeGauge.Value()))
		out = append(out, fmt.Sprintf("%s mode=%s source=%s batch=%d flush=%s switches=%d",
			lk.id, mode, source, tun.batch, tun.flush, lk.modeSwitches.Load()))
	}
	return out
}
