// Drop-site audit regression (ISSUE 10 satellite): every place the
// datapath sheds a frame or datagram must report to the unified drop
// ledger — exactly one reason per loss, never zero, never two. Each
// subtest drives one site in isolation on a fresh node and pins the
// ledger count against the legacy counter the site has always fed;
// the churn test then runs the sites concurrently under -race and
// checks the global invariant: vnetp_drops_total sums exactly to the
// observed drops, reason by reason.
package overlay

import (
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"vnetp/internal/bridge"
	"vnetp/internal/core"
	"vnetp/internal/ethernet"
	"vnetp/internal/seal"
)

// dropNode builds a node for drop-site tests (anomaly watchdog off so
// alert sampling never races the assertions).
func dropNode(t testing.TB, cfg NodeConfig) *Node {
	t.Helper()
	cfg.Anomaly.Disabled = true
	n, err := NewNodeWithConfig("dropsite", "127.0.0.1:0", cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { n.Close() })
	return n
}

// waitCount polls until the ledger's count for reason reaches want.
func waitCount(t *testing.T, n *Node, reason string, want uint64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for n.ledger.Count(reason) < want {
		if time.Now().After(deadline) {
			t.Fatalf("ledger %s = %d, want >= %d", reason, n.ledger.Count(reason), want)
		}
		time.Sleep(time.Millisecond)
	}
}

// testFrame builds a small unicast frame.
func testFrame(src, dst ethernet.MAC) *ethernet.Frame {
	return &ethernet.Frame{Dst: dst, Src: src, Type: ethernet.TypeTest, Payload: []byte("drop-site")}
}

// sealedDatagram crafts one sealed encap datagram under a private
// keyring the receiving node does not share, so opening it must fail.
func sealedDatagram(t testing.TB, tenant uint32) []byte {
	t.Helper()
	kr := seal.NewKeyring(7)
	key, err := seal.NewKey()
	if err != nil {
		t.Fatal(err)
	}
	if err := kr.AddTenant(tenant, key); err != nil {
		t.Fatal(err)
	}
	sl, err := kr.Sealer(tenant)
	if err != nil {
		t.Fatal(err)
	}
	var enc bridge.Encapsulator
	pkt, err := enc.EncapsulateSealed(testFrame(ethernet.LocalMAC(1), ethernet.LocalMAC(2)), 1, maxDatagram, nil, sl)
	if err != nil {
		t.Fatal(err)
	}
	if len(pkt.Datagrams) != 1 {
		t.Fatalf("sealed frame fragmented into %d datagrams", len(pkt.Datagrams))
	}
	d := append([]byte(nil), pkt.Datagrams[0]...)
	pkt.Release()
	return d
}

func TestDropSiteNoRoute(t *testing.T) {
	n := dropNode(t, NodeConfig{})
	ep, err := n.AttachEndpoint("src", ethernet.LocalMAC(1), 1500)
	if err != nil {
		t.Fatal(err)
	}
	if err := ep.Send(testFrame(ep.MAC(), ethernet.LocalMAC(99))); err == nil {
		t.Fatal("send to unrouted destination succeeded")
	}
	if got, legacy := n.ledger.Count(dropNoRoute), n.NoRouteDrop.Load(); got != 1 || got != legacy {
		t.Fatalf("no_route ledger=%d legacy=%d, want 1", got, legacy)
	}
}

func TestDropSiteBadPacket(t *testing.T) {
	n := dropNode(t, NodeConfig{Dispatchers: 1})
	n.inject("10.0.0.1:1", []byte{0xde, 0xad, 0xbe, 0xef})
	waitCount(t, n, dropBadPacket, 1)
	if legacy := n.BadPackets.Load(); legacy != 1 {
		t.Fatalf("BadPackets = %d, want 1", legacy)
	}
}

func TestDropSiteEndpointRing(t *testing.T) {
	n := dropNode(t, NodeConfig{})
	src, err := n.AttachEndpoint("src", ethernet.LocalMAC(1), 1500)
	if err != nil {
		t.Fatal(err)
	}
	dst, err := n.AttachEndpoint("dst", ethernet.LocalMAC(2), 1500)
	if err != nil {
		t.Fatal(err)
	}
	// Local delivery is synchronous, so overrunning the RX ring by 3 is
	// deterministic: nobody Recvs.
	const extra = 3
	for i := 0; i < epQueueDepth+extra; i++ {
		src.Send(testFrame(src.MAC(), dst.MAC()))
	}
	if got, legacy := n.ledger.Count(dropEndpointRing), dst.Drops.Load(); got != extra || got != legacy {
		t.Fatalf("endpoint_ring ledger=%d legacy=%d, want %d", got, legacy, extra)
	}
}

func TestDropSiteDispatcherRing(t *testing.T) {
	n := dropNode(t, NodeConfig{Dispatchers: 1, QueueDepth: 1})
	junk := []byte{0xde, 0xad}
	deadline := time.Now().Add(5 * time.Second)
	for n.ledger.Count(dropDispatcherRing) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("dispatcher ring never overran")
		}
		n.enqueue("10.0.0.2:2", junk, time.Now())
	}
	// Quiesce, then the producer-side shard counters must agree with the
	// ledger exactly.
	time.Sleep(50 * time.Millisecond)
	var legacy uint64
	for _, s := range n.shards {
		legacy += s.Drops.Load()
	}
	if got := n.ledger.Count(dropDispatcherRing); got != legacy {
		t.Fatalf("dispatcher_ring ledger=%d shard drops=%d", got, legacy)
	}
}

func TestDropSiteProbeRing(t *testing.T) {
	n := dropNode(t, NodeConfig{})
	from := &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1), Port: 9}
	probe := marshalProbe("lk", 1)
	attr := &rxAttrib{}
	deadline := time.Now().Add(5 * time.Second)
	for n.ledger.Count(dropProbeRing) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("probe ring never overran")
		}
		for i := 0; i < 1024; i++ {
			n.handleDatagram(probe, from, time.Now(), attr)
		}
	}
}

func TestDropSiteSealReject(t *testing.T) {
	n := dropNode(t, NodeConfig{Dispatchers: 1})
	n.inject("10.0.0.3:3", sealedDatagram(t, 42))
	waitCount(t, n, dropSealReject, 1)
	if legacy := n.metrics.sealRejects.Sum(); legacy != 1 {
		t.Fatalf("seal reject counter = %d, want 1", legacy)
	}
	// The reject also lands in the claimed tenant's SLI.
	if got := n.slis.get(42).sealRejects.Load(); got != 1 {
		t.Fatalf("tenant 42 seal_rejects = %d, want 1", got)
	}
}

func TestDropSiteReassemblyEvict(t *testing.T) {
	n := dropNode(t, NodeConfig{Dispatchers: 1, EvictInterval: 10 * time.Millisecond})
	f := testFrame(ethernet.LocalMAC(1), ethernet.LocalMAC(2))
	f.Payload = make([]byte, 9000) // fragments into several datagrams
	ds, err := bridge.Encapsulate(f, 77, maxDatagram)
	if err != nil {
		t.Fatal(err)
	}
	if len(ds) < 2 {
		t.Fatalf("frame did not fragment: %d datagrams", len(ds))
	}
	n.inject("10.0.0.4:4", ds[0]) // first fragment only: a partial that can never complete
	waitCount(t, n, dropReassemblyEvict, 1)
	if legacy := n.metrics.reasmEvictions.Load(); legacy != n.ledger.Count(dropReassemblyEvict) {
		t.Fatalf("reassembly_evict ledger=%d legacy=%d", n.ledger.Count(dropReassemblyEvict), legacy)
	}
}

func TestDropSiteCrossTenant(t *testing.T) {
	n := dropNode(t, NodeConfig{})
	src, err := n.AttachEndpoint("src", ethernet.LocalMAC(1), 1500)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n.AttachEndpointTenant("other", ethernet.LocalMAC(2), 1500, 7); err != nil {
		t.Fatal(err)
	}
	// A misinstalled tenant-0 route pointing at tenant 7's endpoint: the
	// delivery leg must refuse and count it, not leak the frame.
	dst := ethernet.LocalMAC(3)
	n.AddRoute(core.Route{
		DstMAC: dst, DstQual: core.QualExact, SrcQual: core.QualAny,
		Dest: core.Destination{Type: core.DestInterface, ID: "other"},
	})
	src.Send(testFrame(src.MAC(), dst))
	if got, legacy := n.ledger.Count(dropCrossTenant), n.metrics.crossTenantDrops.Load(); got != 1 || got != legacy {
		t.Fatalf("cross_tenant ledger=%d legacy=%d, want 1", got, legacy)
	}
}

func TestDropSiteTxRing(t *testing.T) {
	n := dropNode(t, NodeConfig{TxBatch: 2, TxRing: 1})
	src, err := n.AttachEndpoint("src", ethernet.LocalMAC(1), 1500)
	if err != nil {
		t.Fatal(err)
	}
	if err := n.AddLink("wire", "127.0.0.1:9", "udp"); err != nil {
		t.Fatal(err)
	}
	dst := ethernet.LocalMAC(9)
	n.AddRoute(core.Route{
		DstMAC: dst, DstQual: core.QualExact, SrcQual: core.QualAny,
		Dest: core.Destination{Type: core.DestLink, ID: "wire"},
	})
	n.mu.Lock()
	lk := n.links["wire"]
	n.mu.Unlock()
	// Reap the sender so nothing drains the one-slot ring; once it has
	// exited, every send past the first must overrun.
	lk.txw.Stop()
	deadline := time.Now().Add(5 * time.Second)
	for n.ledger.Count(dropTxRing) < 2 {
		if time.Now().After(deadline) {
			t.Fatal("tx ring never overran")
		}
		src.Send(testFrame(src.MAC(), dst))
		time.Sleep(time.Millisecond)
	}
	// The sender may exit holding one frame in its partial batch (counted
	// as tx_teardown); the legacy counter spans both reasons.
	got := n.ledger.Count(dropTxRing) + n.ledger.Count(dropTxTeardown)
	if legacy := lk.txDrops.Load(); got != legacy {
		t.Fatalf("tx ledger=%d legacy=%d", got, legacy)
	}
}

func TestDropSiteTxTeardown(t *testing.T) {
	n := dropNode(t, NodeConfig{TxBatch: 4, TxRing: 64, TxFlushTimeout: time.Hour})
	src, err := n.AttachEndpoint("src", ethernet.LocalMAC(1), 1500)
	if err != nil {
		t.Fatal(err)
	}
	if err := n.AddLink("wire", "127.0.0.1:9", "udp"); err != nil {
		t.Fatal(err)
	}
	dst := ethernet.LocalMAC(9)
	n.AddRoute(core.Route{
		DstMAC: dst, DstQual: core.QualExact, SrcQual: core.QualAny,
		Dest: core.Destination{Type: core.DestLink, ID: "wire"},
	})
	n.mu.Lock()
	lk := n.links["wire"]
	n.mu.Unlock()
	// Two frames: fewer than the batch of 4, and an hour-long flush, so
	// the sender parks holding both in its partial batch.
	src.Send(testFrame(src.MAC(), dst))
	src.Send(testFrame(src.MAC(), dst))
	deadline := time.Now().Add(5 * time.Second)
	for len(lk.txq) > 0 {
		if time.Now().After(deadline) {
			t.Fatal("tx ring never drained into the batch")
		}
		time.Sleep(time.Millisecond)
	}
	time.Sleep(50 * time.Millisecond) // let the second pull land in the batch
	lk.txw.Stop()
	waitCount(t, n, dropTxTeardown, 2)
	if got := n.ledger.Count(dropTxTeardown); got != 2 {
		t.Fatalf("tx_teardown = %d, want 2", got)
	}
}

// TestDropLedgerChurn runs the drop sites concurrently (meant for
// -race) and then checks the audit invariant: the ledger total sums
// exactly to its per-reason counts, and every reason agrees with the
// legacy counter its sites have always fed — each loss counted once,
// under exactly one reason.
func TestDropLedgerChurn(t *testing.T) {
	n := dropNode(t, NodeConfig{Dispatchers: 2, QueueDepth: 4, TxBatch: 2, TxRing: 1, EvictInterval: 20 * time.Millisecond})
	src, err := n.AttachEndpoint("src", ethernet.LocalMAC(1), 1500)
	if err != nil {
		t.Fatal(err)
	}
	sink, err := n.AttachEndpoint("sink", ethernet.LocalMAC(2), 1500)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n.AttachEndpointTenant("other", ethernet.LocalMAC(3), 1500, 7); err != nil {
		t.Fatal(err)
	}
	crossDst := ethernet.LocalMAC(4)
	n.AddRoute(core.Route{
		DstMAC: crossDst, DstQual: core.QualExact, SrcQual: core.QualAny,
		Dest: core.Destination{Type: core.DestInterface, ID: "other"},
	})
	if err := n.AddLink("wire", "127.0.0.1:9", "udp"); err != nil {
		t.Fatal(err)
	}
	linkDst := ethernet.LocalMAC(5)
	n.AddRoute(core.Route{
		DstMAC: linkDst, DstQual: core.QualExact, SrcQual: core.QualAny,
		Dest: core.Destination{Type: core.DestLink, ID: "wire"},
	})
	n.mu.Lock()
	lk := n.links["wire"]
	n.mu.Unlock()
	lk.txw.Stop() // every TX past the one-slot ring fill must drop

	sealed := sealedDatagram(t, 42)
	partial := func() []byte {
		f := testFrame(ethernet.LocalMAC(1), ethernet.LocalMAC(2))
		f.Payload = make([]byte, 9000)
		ds, err := bridge.Encapsulate(f, 123, maxDatagram)
		if err != nil {
			t.Fatal(err)
		}
		return ds[0]
	}()

	const iters = 400
	var wg sync.WaitGroup
	churn := func(body func(i int)) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				body(i)
			}
		}()
	}
	churn(func(i int) { src.Send(testFrame(src.MAC(), ethernet.LocalMAC(200))) }) // no_route
	churn(func(i int) { src.Send(testFrame(src.MAC(), sink.MAC())) })             // endpoint_ring once full
	churn(func(i int) { src.Send(testFrame(src.MAC(), crossDst)) })               // cross_tenant
	churn(func(i int) { src.Send(testFrame(src.MAC(), linkDst)) })                // tx_ring
	churn(func(i int) { n.enqueue(fmt.Sprintf("10.1.0.%d:1", i%4), []byte{1, 2, 3}, time.Now()) })
	// The blocking inject path guarantees these reach processData even
	// while the enqueue churn keeps the rings overrun.
	churn(func(i int) { n.inject(fmt.Sprintf("10.2.0.%d:1", i%4), sealed) })
	churn(func(i int) { n.inject(fmt.Sprintf("10.4.0.%d:1", i%4), []byte{4, 5, 6}) })
	churn(func(i int) {
		if i%50 == 0 {
			n.inject(fmt.Sprintf("10.3.0.%d:1", i), partial) // distinct senders: partials pile up for the evictor
		}
	})
	wg.Wait()

	// Quiesce: wait until the total stops moving across two samples, so
	// in-flight datagrams and the evict sweep have all landed.
	var prev uint64
	deadline := time.Now().Add(10 * time.Second)
	for {
		cur := n.ledger.Total()
		time.Sleep(100 * time.Millisecond)
		if n.ledger.Total() == cur && cur == prev && cur > 0 {
			break
		}
		prev = cur
		if time.Now().After(deadline) {
			t.Fatal("ledger never quiesced")
		}
	}

	var sum uint64
	for _, r := range n.ledger.Reasons() {
		sum += n.ledger.Count(r)
	}
	if total := n.ledger.Total(); total != sum {
		t.Fatalf("ledger total %d != per-reason sum %d", total, sum)
	}

	var shardDrops, epDrops uint64
	for _, s := range n.shards {
		shardDrops += s.Drops.Load()
	}
	n.mu.Lock()
	for _, ep := range n.eps {
		epDrops += ep.Drops.Load()
	}
	n.mu.Unlock()
	checks := []struct {
		reason string
		legacy uint64
	}{
		{dropNoRoute, n.NoRouteDrop.Load()},
		{dropBadPacket, n.BadPackets.Load()},
		{dropCrossTenant, n.metrics.crossTenantDrops.Load()},
		{dropSealReject, n.metrics.sealRejects.Sum()},
		{dropReassemblyEvict, n.metrics.reasmEvictions.Load()},
		{dropDispatcherRing, shardDrops},
		{dropEndpointRing, epDrops},
	}
	for _, c := range checks {
		if got := n.ledger.Count(c.reason); got != c.legacy {
			t.Errorf("%s: ledger=%d legacy=%d", c.reason, got, c.legacy)
		}
	}
	// The TX legacy counter spans both ring overrun and teardown loss.
	if got := n.ledger.Count(dropTxRing) + n.ledger.Count(dropTxTeardown); got != lk.txDrops.Load() {
		t.Errorf("tx drops: ledger=%d legacy=%d", got, lk.txDrops.Load())
	}
	for _, r := range []string{dropNoRoute, dropBadPacket, dropCrossTenant, dropSealReject, dropEndpointRing, dropTxRing} {
		if n.ledger.Count(r) == 0 {
			t.Errorf("churn never exercised %s", r)
		}
	}
}
