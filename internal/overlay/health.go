// Link liveness for the real overlay: each link carries periodic
// lightweight probe datagrams over its existing encapsulation channel
// (UDP datagrams or the TCP stream) and tracks a per-link state machine
//
//	Up → Degraded → Down
//
// with hysteresis: FailThreshold consecutive missed probes take a link
// Down, RecoverThreshold consecutive replies bring it back. A Down link
// atomically fails its backup-equipped routes over to their backups
// (core.Table.FailDest) and fails back on recovery, so overlay traffic
// resumes without guest-visible reconfiguration — the "adaptive IaaS"
// behavior the paper's Sect. 2–3 assumes. Sustained-lossy UDP links can
// be configured to auto-upgrade to TCP encapsulation, the paper's own
// lossy-path escape hatch, and failed TCP transports redial with capped
// exponential backoff.
package overlay

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
	"time"

	"vnetp/internal/bridge"
	"vnetp/internal/core"
	"vnetp/internal/supervise"
	"vnetp/internal/telemetry"
)

// LinkState is a monitored link's liveness verdict.
type LinkState int

const (
	// LinkUp carries traffic normally.
	LinkUp LinkState = iota
	// LinkDegraded is lossy beyond the configured threshold but not
	// dead; routing is unchanged, but the state is surfaced and can
	// trigger a UDP→TCP upgrade.
	LinkDegraded
	// LinkDown has missed FailThreshold consecutive probes; routes with
	// backups have failed over.
	LinkDown
)

func (s LinkState) String() string {
	switch s {
	case LinkUp:
		return "up"
	case LinkDegraded:
		return "degraded"
	case LinkDown:
		return "down"
	}
	return "unknown"
}

// HealthConfig tunes the link-health monitor.
type HealthConfig struct {
	// Interval between probes on each link.
	Interval time.Duration
	// ProbeTimeout is how long a probe may stay unanswered before it
	// counts as lost. Defaults to Interval.
	ProbeTimeout time.Duration
	// FailThreshold consecutive lost probes take a link Down.
	FailThreshold int
	// RecoverThreshold consecutive replies bring a Down link back Up.
	RecoverThreshold int
	// DegradeLossPct is the loss fraction over the window at or above
	// which an Up link is marked Degraded (it returns to Up below half
	// the threshold — hysteresis against flapping).
	DegradeLossPct float64
	// LossWindow is how many recent probes the loss rate is measured
	// over.
	LossWindow int
	// AutoUpgradeLossPct, when > 0, switches a UDP link whose full
	// window's loss meets it to TCP encapsulation.
	AutoUpgradeLossPct float64
	// RedialMin and RedialMax bound the capped exponential backoff used
	// to re-establish failed TCP transports.
	RedialMin, RedialMax time.Duration
}

// DefaultHealthConfig returns moderate production-style thresholds.
func DefaultHealthConfig() HealthConfig {
	return HealthConfig{
		Interval:         200 * time.Millisecond,
		FailThreshold:    3,
		RecoverThreshold: 2,
		DegradeLossPct:   0.25,
		LossWindow:       16,
		RedialMin:        100 * time.Millisecond,
		RedialMax:        5 * time.Second,
	}
}

func (c *HealthConfig) normalize() {
	if c.Interval <= 0 {
		c.Interval = 200 * time.Millisecond
	}
	if c.ProbeTimeout <= 0 {
		c.ProbeTimeout = c.Interval
	}
	if c.FailThreshold <= 0 {
		c.FailThreshold = 3
	}
	if c.RecoverThreshold <= 0 {
		c.RecoverThreshold = 2
	}
	if c.DegradeLossPct <= 0 {
		c.DegradeLossPct = 0.25
	}
	if c.LossWindow <= 0 {
		c.LossWindow = 16
	}
	if c.RedialMin <= 0 {
		c.RedialMin = 100 * time.Millisecond
	}
	if c.RedialMax < c.RedialMin {
		c.RedialMax = c.RedialMin
	}
}

// linkHealth is per-link liveness state, guarded by the node mutex. Its
// counters are children of the node's per-link registry families: the
// health monitor increments the exact objects /metrics scrapes and
// LINK STATUS renders.
type linkHealth struct {
	state        LinkState
	seq          uint64
	pending      map[uint64]time.Time // outstanding probes by sequence
	consecMissed int
	consecOK     int
	window       []bool // ring of recent outcomes (true = replied)
	windowPos    int
	windowLen    int
	rtt          time.Duration // EWMA of measured probe RTTs

	probesSent, probesLost, repliesRecv     *telemetry.Counter
	failovers, failbacks, redials, upgrades *telemetry.Counter
	stateGauge                              *telemetry.Gauge
	rttHist                                 *telemetry.Histogram
}

// newLinkHealth creates liveness state for lk wired to the node's
// per-link metric families. Recreating health for a link id (retuned
// window) reattaches the same registry children, so the counters stay
// cumulative, matching Prometheus counter semantics.
func (n *Node) newLinkHealth(lk *link, windowSize int) *linkHealth {
	if windowSize <= 0 {
		windowSize = 16
	}
	m := n.metrics
	h := &linkHealth{
		pending: make(map[uint64]time.Time),
		window:  make([]bool, windowSize),

		probesSent:  m.linkProbesSent.With(lk.id),
		probesLost:  m.linkProbesLost.With(lk.id),
		repliesRecv: m.linkReplies.With(lk.id),
		failovers:   m.linkFailovers.With(lk.id),
		failbacks:   m.linkFailbacks.With(lk.id),
		redials:     m.linkRedials.With(lk.id),
		upgrades:    m.linkUpgrades.With(lk.id),
		stateGauge:  m.linkState.With(lk.id),
		rttHist:     m.linkRTT.With(lk.id),
	}
	h.stateGauge.Set(float64(h.state))
	return h
}

func (h *linkHealth) push(ok bool) {
	h.window[h.windowPos] = ok
	h.windowPos = (h.windowPos + 1) % len(h.window)
	if h.windowLen < len(h.window) {
		h.windowLen++
	}
}

func (h *linkHealth) lossRate() float64 {
	if h.windowLen == 0 {
		return 0
	}
	lost := 0
	for i := 0; i < h.windowLen; i++ {
		if !h.window[i] {
			lost++
		}
	}
	return float64(lost) / float64(h.windowLen)
}

// resetWindow clears loss history (after a transport change).
func (h *linkHealth) resetWindow() {
	h.windowLen, h.windowPos, h.consecMissed, h.consecOK = 0, 0, 0, 0
}

// EnableHealth starts (or retunes — it restarts an active monitor) the
// link-health monitor: periodic probes on every link, Up/Degraded/Down
// tracking with hysteresis, failover of backup-equipped routes when a
// link goes Down, failback on recovery, and TCP transport redial with
// capped exponential backoff.
func (n *Node) EnableHealth(cfg HealthConfig) error {
	cfg.normalize()
	n.DisableHealth()
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return errors.New("overlay: node closed")
	}
	n.healthCfg = cfg
	n.healthOn = true
	for _, lk := range n.links {
		if lk.health == nil || len(lk.health.window) != cfg.LossWindow {
			lk.health = n.newLinkHealth(lk, cfg.LossWindow)
		}
	}
	// The monitor runs supervised ("health"): a panic in a tick restarts
	// it over the same link state, and a stalled tick is superseded.
	n.healthW = n.sup.Go("health",
		func(i *supervise.Instance) { n.healthLoop(i, cfg.Interval) })
	return nil
}

// DisableHealth stops the monitor. Link states and counters are kept.
func (n *Node) DisableHealth() {
	n.mu.Lock()
	if !n.healthOn {
		n.mu.Unlock()
		return
	}
	n.healthOn = false
	w := n.healthW
	n.healthW = nil
	n.mu.Unlock()
	if w != nil {
		w.Stop()
	}
}

func (n *Node) healthLoop(inst *supervise.Instance, interval time.Duration) {
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-inst.Quit():
			return
		case <-n.quit:
			return
		case <-t.C:
			inst.Working()
			n.healthTick()
			inst.Idle()
		}
	}
}

// healthTick runs one monitor round: expire unanswered probes, evaluate
// state transitions, launch this round's probes, and redial broken TCP
// transports whose backoff has elapsed.
func (n *Node) healthTick() {
	now := time.Now()
	type outProbe struct {
		lk *link
		d  []byte
	}
	var probes []outProbe
	var redials []*link

	n.mu.Lock()
	if !n.healthOn || n.closed {
		n.mu.Unlock()
		return
	}
	cfg := n.healthCfg
	for _, lk := range n.links {
		h := lk.health
		if h == nil {
			h = n.newLinkHealth(lk, cfg.LossWindow)
			lk.health = h
		}
		for seq, at := range h.pending {
			if now.Sub(at) >= cfg.ProbeTimeout {
				delete(h.pending, seq)
				n.noteProbeLocked(lk, false)
			}
		}
		if lk.proto == "tcp" && lk.tcp == nil {
			// No transport: probing is impossible. Count the round as a
			// miss so the state machine converges on Down, and redial
			// once the backoff allows.
			n.noteProbeLocked(lk, false)
			if now.After(lk.redialAt) {
				redials = append(redials, lk)
			}
			continue
		}
		h.seq++
		h.pending[h.seq] = now
		h.probesSent.Inc()
		probes = append(probes, outProbe{lk, marshalProbe(lk.id, h.seq)})
	}
	n.mu.Unlock()

	for _, p := range probes {
		// Best effort: a failed send surfaces as a lost probe.
		n.sendOnLink(p.lk, p.d)
	}
	for _, lk := range redials {
		n.dialTCP(lk) // errors advance the backoff internally
	}
}

// noteProbeLocked feeds one probe outcome into a link's state machine
// and performs failover/failback/upgrade transitions. Caller holds n.mu.
func (n *Node) noteProbeLocked(lk *link, ok bool) {
	if !n.healthOn {
		return
	}
	h := lk.health
	cfg := n.healthCfg
	h.push(ok)
	if ok {
		h.consecOK++
		h.consecMissed = 0
	} else {
		h.probesLost.Inc()
		h.consecMissed++
		h.consecOK = 0
	}
	dest := core.Destination{Type: core.DestLink, ID: lk.id}
	switch {
	case h.state != LinkDown && h.consecMissed >= cfg.FailThreshold:
		h.state = LinkDown
		h.failovers.Inc()
		n.tenants.Each(func(_ uint32, t *core.Table) { t.FailDest(dest) })
	case h.state == LinkDown && h.consecOK >= cfg.RecoverThreshold:
		h.state = LinkUp
		h.failbacks.Inc()
		n.tenants.Each(func(_ uint32, t *core.Table) { t.RestoreDest(dest) })
	case h.state == LinkUp && h.windowLen == len(h.window) && h.lossRate() >= cfg.DegradeLossPct:
		h.state = LinkDegraded
	case h.state == LinkDegraded && h.lossRate() < cfg.DegradeLossPct/2:
		h.state = LinkUp
	}
	h.stateGauge.Set(float64(h.state))
	// Sustained-lossy UDP links escape to TCP encapsulation (the paper's
	// lossy/wide-area path transport).
	if lk.proto == "udp" && cfg.AutoUpgradeLossPct > 0 &&
		h.windowLen == len(h.window) && h.lossRate() >= cfg.AutoUpgradeLossPct {
		lk.proto = "tcp"
		h.upgrades.Inc()
		h.resetWindow() // the TCP transport starts with a clean history
		// Cached flow decisions snapshot the transport (budget, direct-
		// UDP eligibility); the upgraded link needs fresh ones.
		n.bumpFlowEpoch()
	}
}

// LinkHealth reports a link's current state and whether it has health
// history (probed at least once or created under an active monitor).
func (n *Node) LinkHealth(id string) (LinkState, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	lk := n.links[id]
	if lk == nil || lk.health == nil {
		return LinkUp, false
	}
	return lk.health.state, true
}

// --- control.HealthTarget implementation ---

// LinkStatus reports one link's health detail (LINK STATUS <id>),
// rendered from the link's registry snapshot — the same counters
// /metrics scrapes.
func (n *Node) LinkStatus(id string) ([]string, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	lk, ok := n.links[id]
	if !ok {
		return nil, fmt.Errorf("overlay: no link %q", id)
	}
	return n.snapshotLinkLocked(lk).statusLines(), nil
}

// HealthSummary reports one line per link (LIST HEALTH), rendered from
// the same registry snapshots as LINK STATUS and /metrics.
func (n *Node) HealthSummary() []string {
	n.mu.Lock()
	defer n.mu.Unlock()
	ids := make([]string, 0, len(n.links))
	for id := range n.links {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	out := make([]string, 0, len(ids))
	for _, id := range ids {
		out = append(out, n.snapshotLinkLocked(n.links[id]).summaryLine())
	}
	return out
}

// SetProbeConfig retunes the heartbeat monitor (LINK PROBE command),
// enabling it if it was off. Zero arguments keep the current values.
func (n *Node) SetProbeConfig(interval time.Duration, failN, recoverN int) error {
	n.mu.Lock()
	cfg := n.healthCfg
	on := n.healthOn
	n.mu.Unlock()
	if !on {
		cfg = DefaultHealthConfig()
	}
	if interval > 0 {
		cfg.Interval = interval
		cfg.ProbeTimeout = 0 // renormalize to the new interval
	}
	if failN > 0 {
		cfg.FailThreshold = failN
	}
	if recoverN > 0 {
		cfg.RecoverThreshold = recoverN
	}
	return n.EnableHealth(cfg)
}

// --- probe wire format ---
//
// A probe is an encapsulation datagram with the Probe flag; the reply
// echoes the payload with ProbeReply set. Payload layout:
//
//	seq(8) | sent-unix-nano(8) | idlen(1) | linkID
//
// The link ID names the *sender's* link, so the sender can match the
// echoed reply to a link no matter which channel carries it back.

const probeHeadLen = 17

func marshalProbe(linkID string, seq uint64) []byte {
	if len(linkID) > 255 {
		linkID = linkID[:255]
	}
	p := make([]byte, 0, probeHeadLen+len(linkID))
	p = binary.BigEndian.AppendUint64(p, seq)
	p = binary.BigEndian.AppendUint64(p, uint64(time.Now().UnixNano()))
	p = append(p, byte(len(linkID)))
	p = append(p, linkID...)
	h := bridge.EncapHeader{ID: uint32(seq), TotalLen: uint32(len(p)), Probe: true}
	return append(h.Marshal(nil), p...)
}

func marshalProbeReply(payload []byte) []byte {
	h := bridge.EncapHeader{TotalLen: uint32(len(payload)), ProbeReply: true}
	return append(h.Marshal(nil), payload...)
}

func parseProbePayload(p []byte) (seq uint64, linkID string, ok bool) {
	if len(p) < probeHeadLen {
		return 0, "", false
	}
	seq = binary.BigEndian.Uint64(p)
	idLen := int(p[16])
	if len(p) < probeHeadLen+idLen {
		return 0, "", false
	}
	return seq, string(p[probeHeadLen : probeHeadLen+idLen]), true
}

// handleProbeReply matches an echoed probe to its link and records the
// outcome. Called from the UDP read loop and TCP readers.
func (n *Node) handleProbeReply(payload []byte) {
	seq, linkID, ok := parseProbePayload(payload)
	if !ok {
		n.BadPackets.Add(1)
		n.drop(dropBadPacket, 1, telemetry.DropDetail{Stage: "probe_reply"})
		return
	}
	now := time.Now()
	n.mu.Lock()
	defer n.mu.Unlock()
	lk := n.links[linkID]
	if lk == nil || lk.health == nil {
		return
	}
	h := lk.health
	at, pending := h.pending[seq]
	if !pending {
		return // late duplicate or already expired
	}
	delete(h.pending, seq)
	h.repliesRecv.Inc()
	sample := now.Sub(at)
	h.rttHist.Observe(sample.Seconds())
	if h.rtt == 0 {
		h.rtt = sample
	} else {
		h.rtt = (h.rtt*7 + sample) / 8
	}
	n.noteProbeLocked(lk, true)
}
