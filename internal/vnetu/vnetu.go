// Package vnetu models VNET/U, the user-level predecessor of VNET/P and
// the baseline it is compared against throughout the paper's evaluation
// (Sect. 3, 5.2). VNET/U carries the same encapsulated-Ethernet overlay
// model but runs as a user-space daemon: every guest packet crosses the
// kernel/user boundary into the daemon and back, and on a quiet path pays
// a daemon scheduling delay — the costs the paper identifies as VNET/U's
// fundamental limit.
package vnetu

import (
	"time"

	"vnetp/internal/bridge"
	"vnetp/internal/core"
	"vnetp/internal/ethernet"
	"vnetp/internal/sim"
	"vnetp/internal/virtio"
	"vnetp/internal/vmm"
)

// TapKind selects the tap interface connecting the VMM to the daemon. The
// paper measures both: Palacios with a custom tap reaches 71 MB/s, VMware
// with the standard host-only tap reaches 35 MB/s.
type TapKind int

const (
	// PalaciosTap is the custom low-overhead tap in Palacios.
	PalaciosTap TapKind = iota
	// VMwareTap is the standard host-only tap used with VMware.
	VMwareTap
)

func (k TapKind) String() string {
	if k == VMwareTap {
		return "vmware-tap"
	}
	return "palacios-tap"
}

// extra per-packet cost of the standard host-only tap relative to the
// Palacios custom tap, calibrated so the two configurations land at the
// paper's 71 vs 35 MB/s.
const vmwareTapExtra = 15 * time.Microsecond

// Daemon is one host's VNET/U daemon plus the VMM tap plumbing to its
// guest. It exposes the same guest-facing port shape as core.Iface so the
// simulated network stack can run over either system. On the wire it
// speaks bridge.EncapMsg — the compatible encapsulation that lets VNET/U
// daemons and VNET/P cores interoperate in one overlay (paper Sect. 4.2:
// "the intent is that VNET/P and VNET/U be interoperable, with VNET/P
// providing the fast path").
type Daemon struct {
	Host  *vmm.Host
	Table *core.Table
	Tap   TapKind

	worker *sim.Worker // the user-level daemon thread
	links  map[string]string
	nextID uint64
	ifaces map[string]*Iface

	// Stats
	Forwarded, Received, NoRoute uint64
}

// New creates a daemon on host and installs it as the host's wire
// receiver.
func New(host *vmm.Host, tap TapKind) *Daemon {
	d := &Daemon{
		Host:   host,
		Table:  core.NewTable(),
		Tap:    tap,
		worker: sim.NewWorker(host.Eng, sim.WorkerConfig{Yield: sim.YieldTimed, TSleep: 50 * time.Microsecond}),
		links:  make(map[string]string),
		ifaces: make(map[string]*Iface),
	}
	host.SetReceiver(d.receive)
	return d
}

// AddLink installs an overlay link to a remote host.
func (d *Daemon) AddLink(id, remoteHost string) { d.links[id] = remoteHost }

// Register attaches a guest NIC to the daemon through the VMM tap.
func (d *Daemon) Register(name string, vm *vmm.VM, nic *virtio.NIC) *Iface {
	ifc := &Iface{Name: name, VM: vm, NIC: nic, d: d, txCond: sim.NewCond(d.Host.Eng)}
	d.ifaces[name] = ifc
	return ifc
}

// perPacket is the daemon-side cost of moving one packet through user
// space (tap read or write + processing).
func (d *Daemon) perPacket() time.Duration {
	c := d.Host.Model.UserKernelPerPacket
	if d.Tap == VMwareTap {
		c += vmwareTapExtra
	}
	return c
}

// daemonSubmit queues packet work on the daemon thread, paying the
// scheduling wake-up delay when the daemon was asleep.
func (d *Daemon) daemonSubmit(cost time.Duration, fn func()) {
	if d.worker.Backlog() == 0 {
		cost += d.Host.Model.DaemonWakeup
	}
	d.worker.Submit(cost, fn)
}

// forward routes a frame read from the tap and sends it over the matching
// link.
func (d *Daemon) forward(f *ethernet.Frame, from *Iface) {
	dests, _, err := d.Table.Lookup(f.Src, f.Dst)
	if err != nil {
		d.NoRoute++
		return
	}
	m := d.Host.Model
	for _, dest := range dests {
		switch dest.Type {
		case core.DestInterface:
			if ifc := d.ifaces[dest.ID]; ifc != nil && ifc != from {
				ifc.deliver(f)
			}
		case core.DestLink:
			remote, ok := d.links[dest.ID]
			if !ok {
				d.NoRoute++
				continue
			}
			d.Forwarded++
			d.nextID++
			msg := bridge.NewEncapMsg(f, d.nextID)
			wire := f.WireLen() + bridge.OuterOverhead
			// Socket send: user->kernel crossing + host stack + DMA.
			d.Host.Eng.Schedule(m.HostStackPerPacket, func() {
				d.Host.MemCopy(wire, func() {
					d.Host.Send(remote, wire, msg)
				})
			})
		}
	}
}

// receive handles an encapsulated packet from the wire: host stack, then
// the daemon thread (kernel/user crossing + wakeup), then the tap write
// into the VMM and the guest injection.
func (d *Daemon) receive(pkt *vmm.WirePacket) {
	msg, ok := pkt.Payload.(*bridge.EncapMsg)
	if !ok || msg.N != 1 {
		// VNET/U guests use standard MTUs; fragmented jumbo datagrams
		// from a VNET/P peer exceed what this daemon's guests accept.
		return
	}
	m := d.Host.Model
	d.daemonSubmit(m.HostStackPerPacket+d.perPacket(), func() {
		d.Received++
		dests, _, err := d.Table.Lookup(msg.Frame.Src, msg.Frame.Dst)
		if err != nil {
			d.NoRoute++
			return
		}
		for _, dest := range dests {
			if dest.Type == core.DestInterface {
				if ifc := d.ifaces[dest.ID]; ifc != nil {
					ifc.deliver(msg.Frame)
				}
			}
		}
	})
}

// Iface is a guest NIC attached to a VNET/U daemon. Methods mirror
// core.Iface so netstack ports work over both.
type Iface struct {
	Name string
	VM   *vmm.VM
	NIC  *virtio.NIC
	d    *Daemon

	recvUpcall func()
	txCond     *sim.Cond

	// Stats
	Kicks   uint64
	RxDrops uint64
}

// MAC returns the guest NIC's address.
func (ifc *Iface) MAC() ethernet.MAC { return ifc.NIC.MAC }

// MTU returns the guest NIC's MTU.
func (ifc *Iface) MTU() int { return ifc.NIC.MTU }

// SetRecv installs the guest receive upcall.
func (ifc *Iface) SetRecv(fn func()) { ifc.recvUpcall = fn }

// TrySend queues a frame: VM exit, VMM tap write, then the daemon thread
// picks it up through a kernel/user crossing.
func (ifc *Iface) TrySend(f *ethernet.Frame) bool {
	if !ifc.NIC.TX.Push(f) {
		return false
	}
	ifc.Kicks++
	ifc.VM.Exit(0, func() {
		batch := ifc.NIC.TX.PopBatch(0)
		ifc.d.daemonSubmit(time.Duration(len(batch))*ifc.d.perPacket(), func() {
			for _, fr := range batch {
				ifc.d.Host.MemCopy(fr.WireLen(), nil) // guest->daemon buffer copy
				ifc.d.forward(fr, ifc)
			}
			// TX completion: interrupt only if the driver ran out of ring
			// space (virtio suppresses it otherwise).
			if ifc.txCond.HasWaiters() {
				ifc.VM.Inject(ifc.txCond.Broadcast)
			} else {
				ifc.txCond.Broadcast()
			}
		})
	})
	return true
}

// WaitSendSpace blocks until the TX ring may have room.
func (ifc *Iface) WaitSendSpace(p *sim.Proc) { ifc.txCond.Wait(p) }

// deliver pushes a frame into the guest RX ring (tap write + VMM
// injection). VNET/U has no IPI escalation: a full ring drops.
func (ifc *Iface) deliver(f *ethernet.Frame) {
	ifc.d.Host.MemCopy(f.WireLen(), func() {
		if !ifc.NIC.RX.Push(f) {
			ifc.RxDrops++
			return
		}
		if ifc.NIC.RX.NotifyEnabled() {
			ifc.NIC.RX.SetNotify(false)
			ifc.VM.Inject(func() {
				if ifc.recvUpcall != nil {
					ifc.recvUpcall()
				}
			})
		}
	})
}

// GuestRecv pops one received frame.
func (ifc *Iface) GuestRecv() (*ethernet.Frame, bool) { return ifc.NIC.RX.Pop() }

// napiRepoll mirrors the virtio driver's NAPI behaviour (same guest
// driver as the VNET/P configuration): after an empty drain the driver
// keeps polling briefly before re-arming the receive interrupt.
const napiRepoll = 30 * time.Microsecond

// RxDone continues polling or re-arms notifications after a drain pass.
func (ifc *Iface) RxDone() {
	upcall := func() {
		if ifc.recvUpcall != nil {
			ifc.recvUpcall()
		}
	}
	if !ifc.NIC.RX.Empty() {
		ifc.VM.GuestWork(500*time.Nanosecond, upcall)
		return
	}
	ifc.d.Host.Eng.Schedule(napiRepoll, func() {
		if !ifc.NIC.RX.Empty() {
			ifc.VM.GuestWork(500*time.Nanosecond, upcall)
			return
		}
		ifc.NIC.RX.SetNotify(true)
	})
}
