package vnetu_test

import (
	"testing"
	"time"

	"vnetp/internal/core"
	"vnetp/internal/ethernet"
	"vnetp/internal/lab"
	"vnetp/internal/phys"
	"vnetp/internal/sim"
	"vnetp/internal/virtio"
	"vnetp/internal/vmm"
	"vnetp/internal/vnetu"
)

func TestTapKindString(t *testing.T) {
	if vnetu.PalaciosTap.String() != "palacios-tap" || vnetu.VMwareTap.String() != "vmware-tap" {
		t.Fatal("tap kind strings")
	}
}

func TestEndToEndDelivery(t *testing.T) {
	eng := sim.New()
	tb := lab.NewVNETUTestbed(eng, phys.Eth1G, 2, vnetu.PalaciosTap)
	var got sim.Time
	done := false
	eng.Go("run", func(p *sim.Proc) {
		d, ok := tb.Stacks[0].Ping(p, lab.NodeIP(1), 56, time.Second)
		if !ok {
			t.Error("ping over VNET/U failed")
		}
		got = sim.Time(d)
		done = true
	})
	eng.Run()
	eng.Close()
	if !done {
		t.Fatal("ping never completed")
	}
	// VNET/U latency is dominated by daemon wakeups: far above the 1G
	// native RTT, well below 10 ms.
	if got.Duration() < 500*time.Microsecond || got.Duration() > 5*time.Millisecond {
		t.Fatalf("VNET/U RTT %v out of plausible band", got.Duration())
	}
	if tb.Daemons[0].Forwarded == 0 || tb.Daemons[1].Forwarded == 0 {
		t.Fatal("daemons forwarded nothing")
	}
}

func TestDaemonPerPacketCostOrdering(t *testing.T) {
	// The VMware host-only tap must be strictly slower than the Palacios
	// custom tap for the same workload.
	measure := func(kind vnetu.TapKind) sim.Time {
		eng := sim.New()
		tb := lab.NewVNETUTestbed(eng, phys.Eth1G, 2, kind)
		var end sim.Time
		eng.Go("sender", func(p *sim.Proc) {
			sock := tb.Stacks[0].BindUDP(9)
			recv := tb.Stacks[1].BindUDP(10)
			for i := 0; i < 50; i++ {
				sock.SendTo(p, lab.NodeIP(1), 10, 1400)
			}
			for i := 0; i < 50; i++ {
				recv.Recv(p)
			}
			end = p.Now()
		})
		eng.Run()
		eng.Close()
		return end
	}
	pal := measure(vnetu.PalaciosTap)
	vmw := measure(vnetu.VMwareTap)
	if vmw <= pal {
		t.Fatalf("vmware tap (%v) not slower than palacios tap (%v)", vmw, pal)
	}
}

func TestRXDropOnFullRing(t *testing.T) {
	// VNET/U has no IPI escalation: a guest that never drains loses
	// frames once the 256-slot ring fills. Build the daemons directly so
	// we control the receive upcall.
	eng := sim.New()
	net := vmm.NewNetwork(eng, phys.Eth10G)
	model := phys.DefaultModel()
	h0 := net.AddHost("h0", model)
	h1 := net.AddHost("h1", model)
	d0 := vnetu.New(h0, vnetu.PalaciosTap)
	d1 := vnetu.New(h1, vnetu.PalaciosTap)
	vm0 := vmm.NewVM(h0, "vm0")
	vm1 := vmm.NewVM(h1, "vm1")
	mac0, mac1 := ethernet.LocalMAC(1), ethernet.LocalMAC(2)
	src := d0.Register("nic0", vm0, virtio.NewNIC(mac0, 1500))
	dst := d1.Register("nic0", vm1, virtio.NewNIC(mac1, 1500))
	d0.AddLink("l", "h1")
	d0.Table.AddRoute(core.Route{DstMAC: mac1, DstQual: core.QualExact, SrcQual: core.QualAny,
		Dest: core.Destination{Type: core.DestLink, ID: "l"}})
	d1.Table.AddRoute(core.Route{DstMAC: mac1, DstQual: core.QualExact, SrcQual: core.QualAny,
		Dest: core.Destination{Type: core.DestInterface, ID: "nic0"}})
	dst.SetRecv(func() {}) // guest never drains

	eng.Go("blast", func(p *sim.Proc) {
		for i := 0; i < 400; i++ {
			for !src.TrySend(&ethernet.Frame{Dst: mac1, Src: mac0, Type: ethernet.TypeTest, Pad: 100}) {
				src.WaitSendSpace(p)
			}
			p.Sleep(time.Microsecond)
		}
	})
	eng.Run()
	eng.Close()
	if dst.RxDrops == 0 {
		t.Fatal("full ring without a draining guest should drop in VNET/U")
	}
	if dst.NIC.RX.Len() != dst.NIC.RX.Cap() {
		t.Fatalf("ring should be full: %d/%d", dst.NIC.RX.Len(), dst.NIC.RX.Cap())
	}
}
