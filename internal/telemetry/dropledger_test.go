package telemetry

import (
	"sync"
	"testing"
)

func TestDropLedgerCounts(t *testing.T) {
	reg := NewRegistry()
	l := NewDropLedger(reg, "no_route", "tx_ring")

	// Declared vocabulary is visible at zero before any drop.
	if got := l.Count("no_route"); got != 0 {
		t.Fatalf("pre-drop count = %d, want 0", got)
	}
	if rs := l.Reasons(); len(rs) != 2 || rs[0] != "no_route" || rs[1] != "tx_ring" {
		t.Fatalf("reasons = %v", rs)
	}

	l.Drop("no_route", 1, DropDetail{Tenant: 7, Flow: "t7 a->b", Stage: "route"})
	l.Drop("tx_ring", 3, DropDetail{Scope: "to-b"})
	l.Drop("no_route", 0, DropDetail{}) // zero drops must not count or record

	if got := l.Count("no_route"); got != 1 {
		t.Fatalf("no_route = %d, want 1", got)
	}
	if got := l.Count("tx_ring"); got != 3 {
		t.Fatalf("tx_ring = %d, want 3", got)
	}
	if got := l.Total(); got != 4 {
		t.Fatalf("total = %d, want 4", got)
	}

	tail := l.Tail("no_route")
	if len(tail) != 1 {
		t.Fatalf("tail len = %d, want 1", len(tail))
	}
	rec := tail[0]
	if rec.Reason != "no_route" || rec.Count != 1 || rec.Tenant != 7 ||
		rec.Flow != "t7 a->b" || rec.Stage != "route" || rec.At.IsZero() {
		t.Fatalf("tail record = %+v", rec)
	}
	if batch := l.Tail("tx_ring"); len(batch) != 1 || batch[0].Count != 3 {
		t.Fatalf("tx_ring tail = %+v", batch)
	}
}

func TestDropLedgerUndeclaredReason(t *testing.T) {
	reg := NewRegistry()
	l := NewDropLedger(reg, "no_route")
	l.Drop("surprise", 2, DropDetail{})
	if got := l.Count("surprise"); got != 2 {
		t.Fatalf("surprise = %d, want 2", got)
	}
	if tail := l.Tail("surprise"); len(tail) != 1 {
		t.Fatalf("surprise tail = %+v", tail)
	}
}

func TestDropLedgerTailBounded(t *testing.T) {
	reg := NewRegistry()
	l := NewDropLedger(reg, "endpoint_ring")
	for i := 0; i < dropTailDepth*3; i++ {
		l.Drop("endpoint_ring", 1, DropDetail{Tenant: uint32(i)})
	}
	tail := l.Tail("endpoint_ring")
	if len(tail) != dropTailDepth {
		t.Fatalf("tail len = %d, want %d", len(tail), dropTailDepth)
	}
	// Oldest-first: the surviving records are the last dropTailDepth drops.
	for i, rec := range tail {
		want := uint32(dropTailDepth*3 - dropTailDepth + i)
		if rec.Tenant != want {
			t.Fatalf("tail[%d].Tenant = %d, want %d", i, rec.Tenant, want)
		}
	}
	snap := l.Snapshot()
	if len(snap) != 1 || len(snap["endpoint_ring"]) != dropTailDepth {
		t.Fatalf("snapshot = %+v", snap)
	}
	if got := l.Count("endpoint_ring"); got != dropTailDepth*3 {
		t.Fatalf("count = %d, want %d", got, dropTailDepth*3)
	}
}

func TestDropLedgerConcurrent(t *testing.T) {
	reg := NewRegistry()
	l := NewDropLedger(reg, "a", "b")
	const workers, per = 8, 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			reason := "a"
			if w%2 == 1 {
				reason = "b"
			}
			for i := 0; i < per; i++ {
				l.Drop(reason, 1, DropDetail{Scope: reason})
			}
		}(w)
	}
	wg.Wait()
	if got := l.Total(); got != workers*per {
		t.Fatalf("total = %d, want %d", got, workers*per)
	}
	if l.Count("a")+l.Count("b") != workers*per {
		t.Fatalf("per-reason sums disagree with total")
	}
}
