package telemetry

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"
)

// TextContentType is the Prometheus text exposition content type.
const TextContentType = "text/plain; version=0.0.4; charset=utf-8"

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(s string) string {
	if !strings.ContainsAny(s, "\\\"\n") {
		return s
	}
	var b strings.Builder
	for _, r := range s {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// escapeHelp escapes a HELP string (backslash and newline only).
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func formatFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// labelString renders {a="x",b="y"}; extra appends one more pair (the
// histogram "le" label). Empty input renders "".
func labelString(names, values []string, extraName, extraValue string) string {
	if len(names) == 0 && extraName == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, `%s="%s"`, n, escapeLabel(values[i]))
	}
	if extraName != "" {
		if len(names) > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, `%s="%s"`, extraName, escapeLabel(extraValue))
	}
	b.WriteByte('}')
	return b.String()
}

// WriteText renders the registry in Prometheus text exposition format
// (version 0.0.4): HELP and TYPE headers per family, one sample line per
// child (histograms expand to cumulative _bucket lines plus _sum and
// _count).
func (r *Registry) WriteText(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, f := range r.Gather() {
		if f.Help != "" {
			fmt.Fprintf(bw, "# HELP %s %s\n", f.Name, escapeHelp(f.Help))
		}
		fmt.Fprintf(bw, "# TYPE %s %s\n", f.Name, f.Type)
		for _, s := range f.Samples {
			if s.Hist == nil {
				fmt.Fprintf(bw, "%s%s %s\n", f.Name, labelString(f.LabelNames, s.LabelValues, "", ""), formatFloat(s.Value))
				continue
			}
			for i, bound := range s.Hist.Bounds {
				fmt.Fprintf(bw, "%s_bucket%s %d\n", f.Name,
					labelString(f.LabelNames, s.LabelValues, "le", formatFloat(bound)), s.Hist.Cumulative[i])
			}
			fmt.Fprintf(bw, "%s_bucket%s %d\n", f.Name,
				labelString(f.LabelNames, s.LabelValues, "le", "+Inf"), s.Hist.Cumulative[len(s.Hist.Bounds)])
			fmt.Fprintf(bw, "%s_sum%s %s\n", f.Name,
				labelString(f.LabelNames, s.LabelValues, "", ""), formatFloat(s.Hist.Sum))
			fmt.Fprintf(bw, "%s_count%s %d\n", f.Name,
				labelString(f.LabelNames, s.LabelValues, "", ""), s.Hist.Count)
		}
	}
	return bw.Flush()
}

// Server is the exposition endpoint: /metrics (Prometheus text),
// /debug/pprof/ (CPU/heap/goroutine profiling), and /healthz.
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// Handler returns the exposition mux for reg, usable standalone (tests,
// embedding into an existing server).
func Handler(reg *Registry) http.Handler {
	return HandlerWith(reg, nil)
}

// HandlerWith is Handler plus extra routes mounted on the same mux —
// the hook the overlay uses to expose /trace and /flight beside
// /metrics. Extra paths must not collide with the built-in ones.
func HandlerWith(reg *Registry, extra map[string]http.Handler) http.Handler {
	mux := http.NewServeMux()
	for path, h := range extra {
		mux.Handle(path, h)
	}
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", TextContentType)
		reg.WriteText(w)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		io.WriteString(w, "ok\n")
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Serve starts an exposition server on addr ("127.0.0.1:0" picks a free
// port; Addr reports it).
func Serve(addr string, reg *Registry) (*Server, error) {
	return ServeWith(addr, reg, nil)
}

// ServeWith is Serve with extra routes mounted beside the built-ins
// (see HandlerWith).
func ServeWith(addr string, reg *Registry, extra map[string]http.Handler) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Server{ln: ln, srv: &http.Server{Handler: HandlerWith(reg, extra)}}
	go s.srv.Serve(ln)
	return s, nil
}

// Addr reports the server's listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the server immediately.
func (s *Server) Close() error { return s.srv.Close() }
