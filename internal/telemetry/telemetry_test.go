package telemetry

import (
	"io"
	"math"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestExpositionGolden pins the exact Prometheus text rendering of a
// small registry: header lines, label escaping, sort order, histogram
// expansion.
func TestExpositionGolden(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_frames_total", "Frames handled.")
	c.Add(41)
	c.Inc()
	v := r.CounterVec("test_link_errors_total", "Per-link errors.", "link")
	v.With("b").Add(2)
	v.With(`a"\` + "\n").Inc()
	g := r.Gauge("test_depth", "Queue depth.")
	g.Set(3.5)
	r.GaugeFunc("test_auto", "Func gauge.", func() float64 { return 7 })
	h := r.Histogram("test_rtt_seconds", "RTT.", HistogramOpts{Start: 0.001, Factor: 10, Count: 3})
	h.Observe(0.0005)
	h.Observe(0.05)
	h.Observe(99)

	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	want := `# HELP test_auto Func gauge.
# TYPE test_auto gauge
test_auto 7
# HELP test_depth Queue depth.
# TYPE test_depth gauge
test_depth 3.5
# HELP test_frames_total Frames handled.
# TYPE test_frames_total counter
test_frames_total 42
# HELP test_link_errors_total Per-link errors.
# TYPE test_link_errors_total counter
test_link_errors_total{link="a\"\\\n"} 1
test_link_errors_total{link="b"} 2
# HELP test_rtt_seconds RTT.
# TYPE test_rtt_seconds histogram
test_rtt_seconds_bucket{le="0.001"} 1
test_rtt_seconds_bucket{le="0.01"} 1
test_rtt_seconds_bucket{le="0.1"} 2
test_rtt_seconds_bucket{le="+Inf"} 3
test_rtt_seconds_sum 99.0505
test_rtt_seconds_count 3
`
	if b.String() != want {
		t.Fatalf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", b.String(), want)
	}
}

// TestHistogramBuckets checks log-bucket assignment at and around the
// bound values (bounds are inclusive upper limits).
func TestHistogramBuckets(t *testing.T) {
	h := newHistogram(HistogramOpts{Start: 1, Factor: 2, Count: 3}) // bounds 1,2,4
	for _, v := range []float64{0.5, 1, 1.001, 2, 4, 4.001} {
		h.Observe(v)
	}
	_, cum, count, sum := h.snapshot()
	if count != 6 {
		t.Fatalf("count = %d, want 6", count)
	}
	if want := 0.5 + 1 + 1.001 + 2 + 4 + 4.001; math.Abs(sum-want) > 1e-9 {
		t.Fatalf("sum = %v, want %v", sum, want)
	}
	want := []uint64{2, 4, 5, 6} // le=1:2, le=2:4, le=4:5, +Inf:6
	for i, w := range want {
		if cum[i] != w {
			t.Fatalf("cumulative[%d] = %d, want %d (%v)", i, cum[i], w, cum)
		}
	}
}

// TestRegistryHammer pounds one registry from many goroutines — child
// creation, increments, observations, deletions, and snapshots all
// concurrently. Run under -race this is the registry's thread-safety
// proof; the final counter total is also asserted.
func TestRegistryHammer(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("hammer_total", "x")
	cv := r.CounterVec("hammer_link_total", "x", "link")
	gv := r.GaugeVec("hammer_depth", "x", "w")
	h := r.Histogram("hammer_lat_seconds", "x", HistogramOpts{})
	const workers, iters = 8, 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			link := string(rune('a' + w%4))
			for i := 0; i < iters; i++ {
				c.Inc()
				cv.With(link).Inc()
				gv.With(link).Set(float64(i))
				h.Observe(float64(i) * 1e-6)
				if i%512 == 0 {
					gv.Delete(link)
				}
			}
		}(w)
	}
	done := make(chan struct{})
	go func() {
		for {
			select {
			case <-done:
				return
			default:
				r.Gather()
				var b strings.Builder
				r.WriteText(&b)
			}
		}
	}()
	wg.Wait()
	close(done)
	if got := c.Load(); got != workers*iters {
		t.Fatalf("hammer_total = %d, want %d", got, workers*iters)
	}
	if got := cv.Sum(); got != workers*iters {
		t.Fatalf("hammer_link_total sum = %d, want %d", got, workers*iters)
	}
	if got := h.Count(); got != workers*iters {
		t.Fatalf("histogram count = %d, want %d", got, workers*iters)
	}
}

// TestServerEndpoints drives a real Serve instance: /metrics serves the
// exposition with the right content type, /healthz answers ok, and the
// pprof index is mounted.
func TestServerEndpoints(t *testing.T) {
	r := NewRegistry()
	r.Counter("up_total", "x").Add(3)
	srv, err := Serve("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	get := func(path string) (string, string) {
		t.Helper()
		cl := &http.Client{Timeout: 5 * time.Second}
		resp, err := cl.Get("http://" + srv.Addr() + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: %s", path, resp.Status)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body), resp.Header.Get("Content-Type")
	}
	body, ct := get("/metrics")
	if !strings.Contains(body, "up_total 3") {
		t.Fatalf("/metrics missing counter:\n%s", body)
	}
	if ct != TextContentType {
		t.Fatalf("content type = %q", ct)
	}
	if body, _ := get("/healthz"); body != "ok\n" {
		t.Fatalf("/healthz = %q", body)
	}
	if body, _ := get("/debug/pprof/"); !strings.Contains(body, "goroutine") {
		t.Fatalf("pprof index not mounted:\n%.200s", body)
	}
}

// TestReRegistration checks idempotent re-registration returns the same
// underlying metric, and that shape mismatches panic loudly.
func TestReRegistration(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("again_total", "x")
	b := r.Counter("again_total", "x")
	a.Add(5)
	if b.Load() != 5 {
		t.Fatal("re-registration did not return the same counter")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("shape mismatch did not panic")
		}
	}()
	r.Gauge("again_total", "x")
}
