// Package telemetry is the overlay's runtime observability layer: a
// concurrency-safe metrics registry (atomic counters, gauges, and
// log-bucketed histograms, optionally labeled into families), a
// Prometheus text exposition writer, and an HTTP server mounting
// /metrics, /debug/pprof/, and /healthz. The live datapath
// (internal/overlay) registers its counters here, and the control
// plane's LIST STATS / LINK STATUS surfaces render from the same
// handles, so the two views can never drift — the real-path analogue of
// the per-stage accounting the paper's Sect. 5 evaluation is built on.
package telemetry

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// MetricType classifies a family for exposition.
type MetricType int

const (
	// TypeCounter is a monotonically increasing count.
	TypeCounter MetricType = iota
	// TypeGauge is a point-in-time value that may go up or down.
	TypeGauge
	// TypeHistogram is a log-bucketed distribution.
	TypeHistogram
)

func (t MetricType) String() string {
	switch t {
	case TypeCounter:
		return "counter"
	case TypeGauge:
		return "gauge"
	case TypeHistogram:
		return "histogram"
	}
	return "untyped"
}

// Counter is a monotonically increasing atomic counter. The zero value
// outside a registry is usable but unexported; obtain counters from a
// Registry so they appear in /metrics.
type Counter struct {
	v  atomic.Uint64
	fn func() uint64 // set only for func-backed counters
}

// Add increments the counter by delta.
func (c *Counter) Add(delta uint64) { c.v.Add(delta) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Load returns the current value.
func (c *Counter) Load() uint64 {
	if c.fn != nil {
		return c.fn()
	}
	return c.v.Load()
}

// Gauge is an atomic point-in-time value.
type Gauge struct {
	bits atomic.Uint64
	fn   func() float64 // set only for func-backed gauges
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adjusts the gauge by delta (CAS loop; callers may race).
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, nw) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 {
	if g.fn != nil {
		return g.fn()
	}
	return math.Float64frombits(g.bits.Load())
}

// HistogramOpts shapes a histogram's exponential (log-spaced) buckets:
// upper bounds Start, Start*Factor, Start*Factor², ... (Count bounds,
// plus the implicit +Inf bucket).
type HistogramOpts struct {
	Start  float64 // first bucket's upper bound; <= 0 means 1e-6 (1 µs)
	Factor float64 // bucket growth factor; <= 1 means 2
	Count  int     // number of finite buckets; <= 0 means 24
}

func (o *HistogramOpts) normalize() {
	if o.Start <= 0 {
		o.Start = 1e-6
	}
	if o.Factor <= 1 {
		o.Factor = 2
	}
	if o.Count <= 0 {
		o.Count = 24
	}
}

// LatencyBuckets are the default log-spaced buckets for latency
// histograms: 1 µs to ~8.4 s by powers of two, the span a frame can
// plausibly spend anywhere in the overlay datapath.
var LatencyBuckets = HistogramOpts{Start: 1e-6, Factor: 2, Count: 24}

// Histogram is a log-bucketed distribution with atomic buckets: Observe
// is lock-free and snapshot iteration is cheap.
type Histogram struct {
	bounds  []float64 // finite upper bounds, ascending
	counts  []atomic.Uint64
	inf     atomic.Uint64
	count   atomic.Uint64
	sumBits atomic.Uint64
}

func newHistogram(opts HistogramOpts) *Histogram {
	opts.normalize()
	h := &Histogram{bounds: make([]float64, opts.Count), counts: make([]atomic.Uint64, opts.Count)}
	b := opts.Start
	for i := range h.bounds {
		h.bounds[i] = b
		b *= opts.Factor
	}
	return h
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	if i < len(h.bounds) {
		h.counts[i].Add(1)
	} else {
		h.inf.Add(1)
	}
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, nw) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// snapshot returns cumulative bucket counts aligned with bounds plus
// the +Inf bucket as the final element.
func (h *Histogram) snapshot() (bounds []float64, cumulative []uint64, count uint64, sum float64) {
	cumulative = make([]uint64, len(h.bounds)+1)
	var acc uint64
	for i := range h.counts {
		acc += h.counts[i].Load()
		cumulative[i] = acc
	}
	cumulative[len(h.bounds)] = acc + h.inf.Load()
	return h.bounds, cumulative, h.count.Load(), h.Sum()
}

// labelSep joins label values into child keys; it cannot appear in
// reasonable label values (0xff is invalid UTF-8).
const labelSep = "\xff"

// family is one named metric family: a scalar metric is a family with no
// labels and a single child keyed "".
type family struct {
	name, help string
	typ        MetricType
	labels     []string
	histOpts   HistogramOpts

	mu       sync.RWMutex
	children map[string]any      // Counter/Gauge/Histogram by joined label values
	values   map[string][]string // joined key → label values
}

func (f *family) child(values []string, make func() any) any {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("telemetry: %s wants %d label values, got %d", f.name, len(f.labels), len(values)))
	}
	key := strings.Join(values, labelSep)
	f.mu.RLock()
	c := f.children[key]
	f.mu.RUnlock()
	if c != nil {
		return c
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if c := f.children[key]; c != nil {
		return c
	}
	c = make()
	f.children[key] = c
	f.values[key] = append([]string(nil), values...)
	return c
}

func (f *family) delete(values []string) {
	key := strings.Join(values, labelSep)
	f.mu.Lock()
	delete(f.children, key)
	delete(f.values, key)
	f.mu.Unlock()
}

// CounterVec is a labeled counter family.
type CounterVec struct{ f *family }

// With returns (creating on first use) the child for the label values.
func (v *CounterVec) With(values ...string) *Counter {
	return v.f.child(values, func() any { return &Counter{} }).(*Counter)
}

// Delete removes the child for the label values (e.g. a removed link).
func (v *CounterVec) Delete(values ...string) { v.f.delete(values) }

// Sum returns the sum of every child's value.
func (v *CounterVec) Sum() uint64 {
	v.f.mu.RLock()
	defer v.f.mu.RUnlock()
	var s uint64
	for _, c := range v.f.children {
		s += c.(*Counter).Load()
	}
	return s
}

// GaugeVec is a labeled gauge family.
type GaugeVec struct{ f *family }

// With returns (creating on first use) the child for the label values.
func (v *GaugeVec) With(values ...string) *Gauge {
	return v.f.child(values, func() any { return &Gauge{} }).(*Gauge)
}

// Func installs a callback-backed child evaluated at snapshot time
// (e.g. a queue depth read from a channel).
func (v *GaugeVec) Func(fn func() float64, values ...string) {
	v.f.child(values, func() any { return &Gauge{fn: fn} })
}

// Delete removes the child for the label values.
func (v *GaugeVec) Delete(values ...string) { v.f.delete(values) }

// HistogramVec is a labeled histogram family.
type HistogramVec struct{ f *family }

// With returns (creating on first use) the child for the label values.
func (v *HistogramVec) With(values ...string) *Histogram {
	return v.f.child(values, func() any { return newHistogram(v.f.histOpts) }).(*Histogram)
}

// Delete removes the child for the label values.
func (v *HistogramVec) Delete(values ...string) { v.f.delete(values) }

// Registry holds metric families and renders snapshots. All methods are
// safe for concurrent use.
type Registry struct {
	mu       sync.RWMutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

func validName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}

func (r *Registry) family(name, help string, typ MetricType, labels []string, histOpts HistogramOpts) *family {
	if !validName(name) {
		panic(fmt.Sprintf("telemetry: invalid metric name %q", name))
	}
	for _, l := range labels {
		if !validName(l) {
			panic(fmt.Sprintf("telemetry: invalid label name %q", l))
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if f := r.families[name]; f != nil {
		if f.typ != typ || len(f.labels) != len(labels) {
			panic(fmt.Sprintf("telemetry: metric %q re-registered with a different shape", name))
		}
		return f
	}
	f := &family{
		name: name, help: help, typ: typ, histOpts: histOpts,
		labels:   append([]string(nil), labels...),
		children: make(map[string]any),
		values:   make(map[string][]string),
	}
	r.families[name] = f
	return f
}

// Counter registers (or fetches) a label-less counter.
func (r *Registry) Counter(name, help string) *Counter {
	f := r.family(name, help, TypeCounter, nil, HistogramOpts{})
	return f.child(nil, func() any { return &Counter{} }).(*Counter)
}

// CounterFunc registers a counter whose value is read from fn at
// snapshot time (for counts maintained elsewhere, e.g. the routing
// cache's atomics).
func (r *Registry) CounterFunc(name, help string, fn func() uint64) {
	f := r.family(name, help, TypeCounter, nil, HistogramOpts{})
	f.child(nil, func() any { return &Counter{fn: fn} })
}

// CounterVec registers (or fetches) a labeled counter family.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	return &CounterVec{r.family(name, help, TypeCounter, labels, HistogramOpts{})}
}

// Gauge registers (or fetches) a label-less gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	f := r.family(name, help, TypeGauge, nil, HistogramOpts{})
	return f.child(nil, func() any { return &Gauge{} }).(*Gauge)
}

// GaugeFunc registers a gauge evaluated from fn at snapshot time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	f := r.family(name, help, TypeGauge, nil, HistogramOpts{})
	f.child(nil, func() any { return &Gauge{fn: fn} })
}

// GaugeVec registers (or fetches) a labeled gauge family.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	return &GaugeVec{r.family(name, help, TypeGauge, labels, HistogramOpts{})}
}

// Histogram registers (or fetches) a label-less histogram.
func (r *Registry) Histogram(name, help string, opts HistogramOpts) *Histogram {
	f := r.family(name, help, TypeHistogram, nil, opts)
	return f.child(nil, func() any { return newHistogram(opts) }).(*Histogram)
}

// HistogramVec registers (or fetches) a labeled histogram family.
func (r *Registry) HistogramVec(name, help string, opts HistogramOpts, labels ...string) *HistogramVec {
	return &HistogramVec{r.family(name, help, TypeHistogram, labels, opts)}
}

// Sample is one child's snapshot within a family.
type Sample struct {
	LabelValues []string
	Value       float64 // counters and gauges

	// Histogram data (Hist != nil for histogram families): Bounds are
	// the finite upper bounds and Cumulative the cumulative counts, with
	// one extra trailing element for the +Inf bucket.
	Hist *HistSnapshot
}

// HistSnapshot is a histogram child's frozen state.
type HistSnapshot struct {
	Bounds     []float64
	Cumulative []uint64
	Count      uint64
	Sum        float64
}

// FamilySnapshot is one family's frozen state.
type FamilySnapshot struct {
	Name, Help string
	Type       MetricType
	LabelNames []string
	Samples    []Sample
}

// Gather snapshots every family, sorted by family name and label
// values, suitable for exposition or programmatic assertion.
func (r *Registry) Gather() []FamilySnapshot {
	r.mu.RLock()
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	r.mu.RUnlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })

	out := make([]FamilySnapshot, 0, len(fams))
	for _, f := range fams {
		fs := FamilySnapshot{Name: f.name, Help: f.help, Type: f.typ, LabelNames: f.labels}
		f.mu.RLock()
		keys := make([]string, 0, len(f.children))
		for k := range f.children {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			s := Sample{LabelValues: f.values[k]}
			switch c := f.children[k].(type) {
			case *Counter:
				s.Value = float64(c.Load())
			case *Gauge:
				s.Value = c.Value()
			case *Histogram:
				b, cum, cnt, sum := c.snapshot()
				s.Hist = &HistSnapshot{Bounds: b, Cumulative: cum, Count: cnt, Sum: sum}
			}
			fs.Samples = append(fs.Samples, s)
		}
		f.mu.RUnlock()
		out = append(out, fs)
	}
	return out
}
