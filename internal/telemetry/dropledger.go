package telemetry

import (
	"sort"
	"sync"
	"time"
)

// DropLedger is the single place a datapath reports lost traffic. Every
// drop site names a reason from a fixed vocabulary declared at
// construction; the ledger backs one vnetp_drops_total{reason=...}
// counter family and remembers a short tail of per-reason drop details
// for the diagnostic bundle. Legacy per-site counter families stay alive
// as views — a drop site increments both — so existing dashboards and
// the LIST STATS pin remain append-only.
//
// The accounting contract mirrors the TX rules: one observed drop
// increments exactly one ledger reason, exactly once.
type DropLedger struct {
	total *CounterVec

	mu    sync.Mutex
	rings map[string]*dropRing
}

// DropDetail carries the datapath context of a dropped frame or
// datagram. All fields are optional; zero values mean the site did not
// know them.
type DropDetail struct {
	Tenant uint32 // owning tenant, when the site has tenant context
	Scope  string // link ID, worker index, or interface name
	Flow   string // rendered flow key, when the drop site knows it
	Stage  string // datapath stage (rx_open, tx_ring, route, ...)
}

// DropRecord is one remembered drop: the detail, when it happened, and
// how many drops the record stands for (bulk sites report batches).
type DropRecord struct {
	At     time.Time `json:"at"`
	Reason string    `json:"reason"`
	Count  uint64    `json:"count"`
	Tenant uint32    `json:"tenant"`
	Scope  string    `json:"scope,omitempty"`
	Flow   string    `json:"flow,omitempty"`
	Stage  string    `json:"stage,omitempty"`
}

// dropTailDepth bounds the per-reason detail ring. The tail is a triage
// aid ("what was the last thing we threw away and whose was it"), not a
// log; eight entries per reason is plenty and keeps /diag bundles small.
const dropTailDepth = 8

type dropRing struct {
	buf  [dropTailDepth]DropRecord
	next uint64 // records ever written; buf slot = next % dropTailDepth
}

// NewDropLedger registers vnetp_drops_total on reg and pre-creates a
// child (and detail ring) for each declared reason, so scrapes see the
// whole vocabulary at zero from the first gather.
func NewDropLedger(reg *Registry, reasons ...string) *DropLedger {
	l := &DropLedger{
		total: reg.CounterVec("vnetp_drops_total",
			"Frames and datagrams dropped anywhere in the datapath, by unified ledger reason.",
			"reason"),
		rings: make(map[string]*dropRing, len(reasons)),
	}
	for _, r := range reasons {
		l.total.With(r)
		l.rings[r] = &dropRing{}
	}
	return l
}

// Drop records n drops under reason. The counter moves by n; the detail
// ring gains one record standing for the whole batch. Reasons outside
// the declared vocabulary are accepted (a ring is created on first use)
// so late-added sites cannot lose accounting.
func (l *DropLedger) Drop(reason string, n uint64, d DropDetail) {
	if n == 0 {
		return
	}
	l.total.With(reason).Add(n)
	rec := DropRecord{
		At:     time.Now(),
		Reason: reason,
		Count:  n,
		Tenant: d.Tenant,
		Scope:  d.Scope,
		Flow:   d.Flow,
		Stage:  d.Stage,
	}
	l.mu.Lock()
	ring := l.rings[reason]
	if ring == nil {
		ring = &dropRing{}
		l.rings[reason] = ring
	}
	ring.buf[ring.next%dropTailDepth] = rec
	ring.next++
	l.mu.Unlock()
}

// Count returns the running total for one reason.
func (l *DropLedger) Count(reason string) uint64 {
	return l.total.With(reason).Load()
}

// Total returns the sum across all reasons — the node's one number for
// "frames lost anywhere".
func (l *DropLedger) Total() uint64 { return l.total.Sum() }

// Reasons returns the known reason vocabulary, sorted.
func (l *DropLedger) Reasons() []string {
	l.mu.Lock()
	out := make([]string, 0, len(l.rings))
	for r := range l.rings {
		out = append(out, r)
	}
	l.mu.Unlock()
	sort.Strings(out)
	return out
}

// Tail returns the remembered drop details for one reason, oldest
// first. Empty when the reason has never fired.
func (l *DropLedger) Tail(reason string) []DropRecord {
	l.mu.Lock()
	defer l.mu.Unlock()
	ring := l.rings[reason]
	if ring == nil || ring.next == 0 {
		return nil
	}
	return ring.tail()
}

// Snapshot returns the detail tails of every reason that has fired at
// least once, keyed by reason — the drop-ledger section of /diag.
func (l *DropLedger) Snapshot() map[string][]DropRecord {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make(map[string][]DropRecord)
	for reason, ring := range l.rings {
		if ring.next == 0 {
			continue
		}
		out[reason] = ring.tail()
	}
	return out
}

// tail renders the ring oldest-first; caller holds the ledger lock.
func (r *dropRing) tail() []DropRecord {
	n := r.next
	depth := uint64(dropTailDepth)
	start := uint64(0)
	count := n
	if n > depth {
		start = n - depth
		count = depth
	}
	out := make([]DropRecord, 0, count)
	for i := start; i < n; i++ {
		out = append(out, r.buf[i%depth])
	}
	return out
}
