package mpi_test

import (
	"testing"
	"time"

	"vnetp/internal/core"
	"vnetp/internal/lab"
	"vnetp/internal/mpi"
	"vnetp/internal/netstack"
	"vnetp/internal/phys"
	"vnetp/internal/sim"
)

// worldOn builds an MPI world with ranksPerVM ranks on each of vms VMs
// over a VNET/P testbed.
func worldOn(eng *sim.Engine, vms, ranksPerVM int) *mpi.World {
	tb := lab.NewVNETPTestbed(eng, lab.Config{Dev: phys.Eth10G, N: vms, Params: core.DefaultParams()})
	var stacks []*netstack.Stack
	for i := 0; i < vms; i++ {
		for k := 0; k < ranksPerVM; k++ {
			stacks = append(stacks, tb.Stacks[i])
		}
	}
	return mpi.NewWorld(eng, stacks)
}

func runWorld(t *testing.T, eng *sim.Engine, w *mpi.World, fn func(p *sim.Proc, r *mpi.Rank)) {
	t.Helper()
	completed := false
	w.Launch(fn)
	eng.Go("await", func(p *sim.Proc) {
		w.AwaitAll(p)
		completed = true
	})
	eng.Run()
	eng.Close()
	if !completed {
		t.Fatal("world did not complete (deadlock?)")
	}
}

func TestPingPongTwoRanks(t *testing.T) {
	eng := sim.New()
	w := worldOn(eng, 2, 1)
	var rtts []time.Duration
	runWorld(t, eng, w, func(p *sim.Proc, r *mpi.Rank) {
		const reps = 5
		if r.ID() == 0 {
			for i := 0; i < reps; i++ {
				start := p.Now()
				r.Send(p, 1, 1, 1024)
				r.Recv(p, 1, 2)
				rtts = append(rtts, start.Sub(0)*0+p.Now().Sub(start))
			}
		} else {
			for i := 0; i < reps; i++ {
				r.Recv(p, 0, 1)
				r.Send(p, 0, 2, 1024)
			}
		}
	})
	if len(rtts) != 5 {
		t.Fatalf("rtts = %v", rtts)
	}
	for _, rtt := range rtts {
		if rtt < 20*time.Microsecond || rtt > 2*time.Millisecond {
			t.Fatalf("implausible MPI rtt %v", rtt)
		}
	}
}

func TestTagMatching(t *testing.T) {
	eng := sim.New()
	w := worldOn(eng, 2, 1)
	var order []int
	runWorld(t, eng, w, func(p *sim.Proc, r *mpi.Rank) {
		if r.ID() == 0 {
			r.Send(p, 1, 10, 100)
			r.Send(p, 1, 20, 200)
		} else {
			// Receive in reverse tag order: matching must be by tag, not
			// arrival.
			_, _, s20 := r.Recv(p, 0, 20)
			_, _, s10 := r.Recv(p, 0, 10)
			order = append(order, s20, s10)
		}
	})
	if len(order) != 2 || order[0] != 200 || order[1] != 100 {
		t.Fatalf("tag matching broken: %v", order)
	}
}

func TestAnySourceAnyTag(t *testing.T) {
	eng := sim.New()
	w := worldOn(eng, 3, 1)
	received := 0
	runWorld(t, eng, w, func(p *sim.Proc, r *mpi.Rank) {
		if r.ID() == 0 {
			for i := 0; i < 2; i++ {
				src, tag, size := r.Recv(p, mpi.AnySource, mpi.AnyTag)
				if size != 64*(src) || tag != src {
					t.Errorf("bad message src=%d tag=%d size=%d", src, tag, size)
				}
				received++
			}
		} else {
			r.Send(p, 0, r.ID(), 64*r.ID())
		}
	})
	if received != 2 {
		t.Fatalf("received %d", received)
	}
}

func TestSendRecvNoDeadlock(t *testing.T) {
	// All ranks SendRecv in a ring simultaneously: blocking sends would
	// deadlock without real full-duplex progress.
	eng := sim.New()
	w := worldOn(eng, 4, 1)
	runWorld(t, eng, w, func(p *sim.Proc, r *mpi.Rank) {
		n := r.Size()
		for i := 0; i < 3; i++ {
			got := r.SendRecv(p, (r.ID()+1)%n, 7, 4096, (r.ID()-1+n)%n, 7)
			if got != 4096 {
				t.Errorf("SendRecv size = %d", got)
			}
		}
	})
}

func TestSharedMemoryRanks(t *testing.T) {
	// Two ranks in the same VM communicate without touching the overlay.
	eng := sim.New()
	tb := lab.NewVNETPTestbed(eng, lab.Config{Dev: phys.Eth10G, N: 2, Params: core.DefaultParams()})
	w := mpi.NewWorld(eng, []*netstack.Stack{tb.Stacks[0], tb.Stacks[0]})
	var rtt time.Duration
	runWorld(t, eng, w, func(p *sim.Proc, r *mpi.Rank) {
		if r.ID() == 0 {
			start := p.Now()
			r.Send(p, 1, 1, 1024)
			r.Recv(p, 1, 2)
			rtt = p.Now().Sub(start)
		} else {
			r.Recv(p, 0, 1)
			r.Send(p, 0, 2, 1024)
		}
	})
	if tb.VNETP.Nodes[0].Bridge.EncapSent != 0 {
		t.Fatal("same-VM traffic leaked onto the overlay")
	}
	if rtt <= 0 || rtt > 50*time.Microsecond {
		t.Fatalf("shared-memory rtt %v, want < 50µs", rtt)
	}
}

func TestBarrier(t *testing.T) {
	for _, n := range []int{2, 3, 4, 8} {
		eng := sim.New()
		w := worldOn(eng, n, 1)
		var releases []sim.Time
		runWorld(t, eng, w, func(p *sim.Proc, r *mpi.Rank) {
			// Stagger arrivals; all must leave after the last arrival.
			p.Sleep(time.Duration(r.ID()) * time.Millisecond)
			r.Barrier(p)
			releases = append(releases, p.Now())
		})
		last := sim.Time(0).Add(time.Duration(n-1) * time.Millisecond)
		for _, rel := range releases {
			if rel < last {
				t.Fatalf("n=%d: rank released at %v before last arrival %v", n, rel, last)
			}
		}
	}
}

func TestBcastReachesAll(t *testing.T) {
	for _, n := range []int{2, 3, 4, 6, 8} {
		for root := 0; root < n; root += max(1, n-1) {
			eng := sim.New()
			w := worldOn(eng, n, 1)
			count := 0
			runWorld(t, eng, w, func(p *sim.Proc, r *mpi.Rank) {
				r.Bcast(p, root, 4096)
				count++
			})
			if count != n {
				t.Fatalf("n=%d root=%d: %d ranks completed bcast", n, root, count)
			}
		}
	}
}

func TestReduceCompletes(t *testing.T) {
	for _, n := range []int{2, 3, 5, 8} {
		eng := sim.New()
		w := worldOn(eng, n, 1)
		count := 0
		runWorld(t, eng, w, func(p *sim.Proc, r *mpi.Rank) {
			r.Reduce(p, 0, 2048)
			count++
		})
		if count != n {
			t.Fatalf("n=%d: %d ranks completed reduce", n, count)
		}
	}
}

func TestAllreduceCompletes(t *testing.T) {
	for _, n := range []int{2, 4, 6, 8} { // both power-of-2 and not
		eng := sim.New()
		w := worldOn(eng, n, 1)
		count := 0
		runWorld(t, eng, w, func(p *sim.Proc, r *mpi.Rank) {
			for i := 0; i < 2; i++ {
				r.Allreduce(p, 1024)
			}
			count++
		})
		if count != n {
			t.Fatalf("n=%d: %d ranks completed allreduce", n, count)
		}
	}
}

func TestAlltoallVolume(t *testing.T) {
	eng := sim.New()
	w := worldOn(eng, 4, 1)
	var sent []uint64
	runWorld(t, eng, w, func(p *sim.Proc, r *mpi.Rank) {
		r.Alltoall(p, 8192)
		sent = append(sent, r.BytesSent)
	})
	for _, b := range sent {
		if b != 3*8192 {
			t.Fatalf("alltoall sent %d bytes/rank, want %d", b, 3*8192)
		}
	}
}

func TestAllgatherCompletes(t *testing.T) {
	eng := sim.New()
	w := worldOn(eng, 5, 1)
	count := 0
	runWorld(t, eng, w, func(p *sim.Proc, r *mpi.Rank) {
		r.Allgather(p, 4096)
		count++
	})
	if count != 5 {
		t.Fatalf("%d ranks completed allgather", count)
	}
}

func TestIsendIrecvOverlap(t *testing.T) {
	eng := sim.New()
	w := worldOn(eng, 2, 1)
	runWorld(t, eng, w, func(p *sim.Proc, r *mpi.Rank) {
		peer := 1 - r.ID()
		reqs := []*mpi.Request{
			r.Irecv(p, peer, 5),
			r.Irecv(p, peer, 6),
		}
		r.Send(p, peer, 6, 100)
		r.Send(p, peer, 5, 200)
		if got := reqs[0].Wait(p); got != 200 {
			t.Errorf("irecv tag 5 = %d", got)
		}
		if got := reqs[1].Wait(p); got != 100 {
			t.Errorf("irecv tag 6 = %d", got)
		}
	})
}

func TestMultiRankPerVM(t *testing.T) {
	// 2 VMs x 4 ranks: the HPCC/NAS process layout.
	eng := sim.New()
	w := worldOn(eng, 2, 4)
	count := 0
	runWorld(t, eng, w, func(p *sim.Proc, r *mpi.Rank) {
		if r.Size() != 8 {
			t.Errorf("size = %d", r.Size())
		}
		r.Barrier(p)
		r.Allreduce(p, 512)
		count++
	})
	if count != 8 {
		t.Fatalf("%d ranks completed", count)
	}
}
