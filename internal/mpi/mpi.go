// Package mpi implements the message-passing layer the paper's parallel
// benchmarks (Intel MPI Benchmarks, HPCC, NAS) are written against:
// blocking and non-blocking point-to-point operations with tag matching,
// MPI_Sendrecv, and the collectives the workloads use, running over the
// simulated guest network stacks.
//
// Ranks on different VMs exchange real segmented traffic through the full
// overlay datapath; ranks co-located in one VM use a shared-memory
// transport (copy cost on the guest core), as OpenMPI would.
//
// Message payload contents are virtual (sizes only); message envelopes and
// matching metadata travel through an out-of-band queue while the payload
// bytes flow through the simulated network, so timing is governed by the
// real datapath.
package mpi

import (
	"fmt"
	"time"

	"vnetp/internal/netstack"
	"vnetp/internal/sim"
)

// AnySource and AnyTag are the usual wildcards.
const (
	AnySource = -1
	AnyTag    = -1
)

// envelope is the per-message header overhead carried on the wire: it
// gives zero-byte messages (barriers) a real cost and small messages a
// realistic size.
const envelope = 64

// portFor returns the listener port rank j uses for connections dialed by
// rank i (per-pair ports make accepted streams identifiable).
func portFor(i, j int) uint16 { return uint16(20000 + i*97 + j) }

// msg is a matched (or matchable) incoming message.
type msg struct {
	src, tag, size int
	arrived        *sim.Chan[struct{}] // signaled when payload fully read
}

// meta travels out-of-band alongside the payload bytes.
type meta struct {
	src, tag, size int
}

// World is an MPI communicator: n ranks spread over the stacks of a
// testbed (several ranks may share one stack/VM).
type World struct {
	Eng   *sim.Engine
	ranks []*Rank
	done  int
	fin   *sim.Cond
}

// Rank is one MPI process.
type Rank struct {
	w     *World
	id    int
	stack *netstack.Stack

	// conns[j] is the stream to rank j (nil for self and same-VM peers).
	conns []*netstack.Stream
	// metaq[j] receives envelopes for messages from rank j.
	metaq []*sim.Chan[meta]

	matched  []msg // arrived-and-unclaimed messages
	matchCnd *sim.Cond

	// Stats
	Sent, Received uint64
	BytesSent      uint64
}

// ID returns the rank number.
func (r *Rank) ID() int { return r.id }

// Size returns the communicator size.
func (r *Rank) Size() int { return len(r.w.ranks) }

// Stack exposes the rank's network stack.
func (r *Rank) Stack() *netstack.Stack { return r.stack }

// NewWorld creates a communicator with the given per-rank stacks
// (stacks[i] is rank i's VM; repeat a stack to co-locate ranks).
func NewWorld(eng *sim.Engine, stacks []*netstack.Stack) *World {
	w := &World{Eng: eng, fin: sim.NewCond(eng)}
	n := len(stacks)
	for i := 0; i < n; i++ {
		r := &Rank{
			w: w, id: i, stack: stacks[i],
			conns:    make([]*netstack.Stream, n),
			metaq:    make([]*sim.Chan[meta], n),
			matchCnd: sim.NewCond(eng),
		}
		for j := 0; j < n; j++ {
			r.metaq[j] = sim.NewChan[meta](eng)
		}
		w.ranks = append(w.ranks, r)
	}
	return w
}

// Launch starts fn as rank r's program on its own simulated process. Call
// once per rank, then run the engine. Connection setup (full mesh between
// ranks on distinct VMs) happens before fn runs.
func (w *World) Launch(fn func(p *sim.Proc, r *Rank)) {
	for _, r := range w.ranks {
		r := r
		w.Eng.Go(fmt.Sprintf("rank%d", r.id), func(p *sim.Proc) {
			r.connect(p)
			r.startReaders()
			fn(p, r)
			w.done++
			if w.done == len(w.ranks) {
				w.fin.Broadcast()
			}
		})
	}
}

// AwaitAll blocks p until every launched rank's program has returned.
func (w *World) AwaitAll(p *sim.Proc) {
	for w.done < len(w.ranks) {
		w.fin.Wait(p)
	}
}

// sameVM reports whether two ranks share a stack (shared-memory path).
func (r *Rank) sameVM(j int) bool { return r.stack == r.w.ranks[j].stack }

// connect establishes the full mesh: lower rank dials, higher accepts,
// per-pair ports.
func (r *Rank) connect(p *sim.Proc) {
	n := len(r.w.ranks)
	// Listeners first so dialers always find them.
	listeners := make(map[int]*netstack.Listener)
	for i := 0; i < r.id; i++ {
		if !r.sameVM(i) {
			listeners[i] = r.stack.Listen(portFor(i, r.id))
		}
	}
	p.Yield() // let every rank finish binding before anyone dials
	for j := r.id + 1; j < n; j++ {
		if !r.sameVM(j) {
			r.conns[j] = r.stack.Dial(p, r.w.ranks[j].stack.IP(), portFor(r.id, j))
		}
	}
	for i, l := range listeners {
		r.conns[i] = l.Accept(p)
	}
}

// startReaders spawns one reader per peer: it pairs each envelope with
// its payload bytes from the stream and posts the message for matching.
func (r *Rank) startReaders() {
	for j := range r.w.ranks {
		if j == r.id {
			continue
		}
		j := j
		r.w.Eng.Go(fmt.Sprintf("rank%d<-%d", r.id, j), func(p *sim.Proc) {
			for {
				m := r.metaq[j].Recv(p)
				if m.size < 0 {
					return // world shutdown sentinel (unused today)
				}
				if st := r.conns[j]; st != nil {
					st.ReadFull(p, m.size+envelope)
				} else {
					// Shared memory: copy cost on this VM's core.
					r.shmCopy(p, m.size+envelope)
				}
				r.post(msg{src: j, tag: m.tag, size: m.size})
			}
		})
	}
}

// shmDelay is the base one-way latency of the shared-memory transport.
const shmDelay = time.Microsecond

// shmCopy charges a shared-memory message transfer.
func (r *Rank) shmCopy(p *sim.Proc, n int) {
	p.Sleep(shmDelay + time.Duration(float64(n)/5e9*1e9))
}

// post makes an arrived message available to Recv.
func (r *Rank) post(m msg) {
	r.matched = append(r.matched, m)
	r.Received++
	r.matchCnd.Broadcast()
}

// Send transmits size payload bytes to rank dst with the given tag,
// returning when the local buffer is reusable (bytes queued/windowed).
func (r *Rank) Send(p *sim.Proc, dst, tag, size int) {
	if dst == r.id {
		panic("mpi: send to self")
	}
	r.Sent++
	r.BytesSent += uint64(size)
	r.w.ranks[dst].metaq[r.id].Send(meta{src: r.id, tag: tag, size: size})
	if st := r.conns[dst]; st != nil {
		st.Write(p, size+envelope)
		return
	}
	// Shared memory: sender pays the same copy once.
	r.shmCopy(p, size+envelope)
}

// Recv blocks until a message from src (or AnySource) with tag (or
// AnyTag) has fully arrived, returning its source, tag and size.
func (r *Rank) Recv(p *sim.Proc, src, tag int) (int, int, int) {
	for {
		for i, m := range r.matched {
			if (src == AnySource || m.src == src) && (tag == AnyTag || m.tag == tag) {
				r.matched = append(r.matched[:i], r.matched[i+1:]...)
				return m.src, m.tag, m.size
			}
		}
		r.matchCnd.Wait(p)
	}
}

// Request is a handle for a non-blocking operation.
type Request struct {
	done *sim.Chan[int]
}

// Wait blocks until the operation completes, returning the received size
// (sends return 0).
func (q *Request) Wait(p *sim.Proc) int { return q.done.Recv(p) }

// Isend starts a non-blocking send.
func (r *Rank) Isend(p *sim.Proc, dst, tag, size int) *Request {
	q := &Request{done: sim.NewChan[int](r.w.Eng)}
	r.w.Eng.Go(fmt.Sprintf("isend%d->%d", r.id, dst), func(hp *sim.Proc) {
		r.Send(hp, dst, tag, size)
		q.done.Send(0)
	})
	return q
}

// Irecv starts a non-blocking receive.
func (r *Rank) Irecv(p *sim.Proc, src, tag int) *Request {
	q := &Request{done: sim.NewChan[int](r.w.Eng)}
	r.w.Eng.Go(fmt.Sprintf("irecv%d<-%d", r.id, src), func(hp *sim.Proc) {
		_, _, size := r.Recv(hp, src, tag)
		q.done.Send(size)
	})
	return q
}

// SendRecv performs a simultaneous send to dst and receive from src
// (MPI_Sendrecv): both directions progress concurrently.
func (r *Rank) SendRecv(p *sim.Proc, dst, sendTag, sendSize, src, recvTag int) int {
	req := r.Isend(p, dst, sendTag, sendSize)
	_, _, size := r.Recv(p, src, recvTag)
	req.Wait(p)
	return size
}
