package mpi

// Collective operations, implemented with the classic algorithms the
// paper-era OpenMPI used, so their communication patterns (and thus their
// sensitivity to overlay latency and bandwidth) are realistic.

import "vnetp/internal/sim"

// Internal tag space for collectives, above user tags.
const (
	tagBarrier = 1 << 20
	tagBcast   = 2 << 20
	tagReduce  = 3 << 20
	tagAllred  = 5 << 20
	tagA2A     = 6 << 20
	tagRing    = 7 << 20
)

// Barrier blocks until all ranks arrive (dissemination algorithm:
// ceil(log2 n) rounds of small messages).
func (r *Rank) Barrier(p *sim.Proc) {
	n := r.Size()
	if n == 1 {
		return
	}
	for k, round := 1, 0; k < n; k, round = k<<1, round+1 {
		dst := (r.id + k) % n
		src := (r.id - k + n) % n
		r.SendRecv(p, dst, tagBarrier+round, 0, src, tagBarrier+round)
	}
}

// Bcast sends size bytes from root to every rank (binomial tree).
func (r *Rank) Bcast(p *sim.Proc, root, size int) {
	n := r.Size()
	if n == 1 {
		return
	}
	rel := (r.id - root + n) % n
	// Climb: find the bit where this rank receives from its parent.
	mask := 1
	for mask < n {
		if rel&mask != 0 {
			parent := (rel - mask + root) % n
			r.Recv(p, parent, tagBcast)
			break
		}
		mask <<= 1
	}
	// Descend: forward to children below the receive bit.
	mask >>= 1
	for mask > 0 {
		if rel+mask < n {
			r.Send(p, (rel+mask+root)%n, tagBcast, size)
		}
		mask >>= 1
	}
}

// Reduce combines size bytes from all ranks at root (binomial tree,
// mirror of Bcast).
func (r *Rank) Reduce(p *sim.Proc, root, size int) {
	n := r.Size()
	if n == 1 {
		return
	}
	rel := (r.id - root + n) % n
	mask := 1
	for mask < n {
		if rel&mask == 0 {
			if child := rel | mask; child < n {
				r.Recv(p, (child+root)%n, tagReduce)
			}
		} else {
			parent := ((rel &^ mask) + root) % n
			r.Send(p, parent, tagReduce, size)
			return
		}
		mask <<= 1
	}
}

// Allreduce combines size bytes across all ranks, leaving the result
// everywhere (recursive doubling for powers of two, reduce+bcast
// otherwise).
func (r *Rank) Allreduce(p *sim.Proc, size int) {
	n := r.Size()
	if n == 1 {
		return
	}
	if n&(n-1) == 0 {
		for mask, round := 1, 0; mask < n; mask, round = mask<<1, round+1 {
			partner := r.id ^ mask
			r.SendRecv(p, partner, tagAllred+round, size, partner, tagAllred+round)
		}
		return
	}
	r.Reduce(p, 0, size)
	r.Bcast(p, 0, size)
}

// Alltoall exchanges blockSize bytes with every other rank (pairwise
// rounds of SendRecv).
func (r *Rank) Alltoall(p *sim.Proc, blockSize int) {
	n := r.Size()
	for i := 1; i < n; i++ {
		dst := (r.id + i) % n
		src := (r.id - i + n) % n
		r.SendRecv(p, dst, tagA2A+i, blockSize, src, tagA2A+i)
	}
}

// Allgather distributes blockSize bytes from every rank to every rank
// (ring algorithm: n-1 steps of neighbor exchange).
func (r *Rank) Allgather(p *sim.Proc, blockSize int) {
	n := r.Size()
	next := (r.id + 1) % n
	prev := (r.id - 1 + n) % n
	for i := 0; i < n-1; i++ {
		r.SendRecv(p, next, tagRing+i, blockSize, prev, tagRing+i)
	}
}
