// Package trace records per-stage timestamps for tagged frames as they
// cross the simulated datapath — the measured counterpart of the Fig. 7
// stage budget, and the debugging tool for "where did this packet spend
// its time".
//
// Tracing is opt-in per frame: give the frame a nonzero Tag
// (ethernet.Frame.Tag) and register it with a Tracer; instrumented
// components call Record at each stage. Untagged frames cost one nil
// check.
package trace

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"vnetp/internal/sim"
)

// Hop is one recorded stage crossing.
type Hop struct {
	Stage string
	At    sim.Time
}

// Path is a tagged frame's recorded journey.
type Path struct {
	Tag  uint64
	Hops []Hop
}

// Elapsed reports the time from the first to the last hop.
func (p *Path) Elapsed() time.Duration {
	if len(p.Hops) < 2 {
		return 0
	}
	return p.Hops[len(p.Hops)-1].At.Sub(p.Hops[0].At)
}

// String renders the journey with per-stage deltas.
func (p *Path) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "frame %d:\n", p.Tag)
	for i, h := range p.Hops {
		delta := time.Duration(0)
		if i > 0 {
			delta = h.At.Sub(p.Hops[i-1].At)
		}
		fmt.Fprintf(&b, "  %-28s t=%-12v (+%v)\n", h.Stage, h.At.Duration(), delta)
	}
	return b.String()
}

// Tracer collects hop records for registered tags. A nil *Tracer is
// valid and records nothing, so components can hold one unconditionally.
type Tracer struct {
	eng   *sim.Engine
	paths map[uint64]*Path
}

// New returns a tracer bound to the engine's clock.
func New(eng *sim.Engine) *Tracer {
	return &Tracer{eng: eng, paths: make(map[uint64]*Path)}
}

// Watch registers a tag for recording.
func (t *Tracer) Watch(tag uint64) {
	if t == nil || tag == 0 {
		return
	}
	t.paths[tag] = &Path{Tag: tag}
}

// Record appends a hop for the tag if it is being watched. Safe on a nil
// tracer and for unwatched or zero tags.
func (t *Tracer) Record(tag uint64, stage string) {
	if t == nil || tag == 0 {
		return
	}
	p, ok := t.paths[tag]
	if !ok {
		return
	}
	p.Hops = append(p.Hops, Hop{Stage: stage, At: t.eng.Now()})
}

// Path returns the recorded journey for a tag (nil if unwatched).
func (t *Tracer) Path(tag uint64) *Path {
	if t == nil {
		return nil
	}
	return t.paths[tag]
}

// Paths returns every recorded journey, ordered by tag.
func (t *Tracer) Paths() []*Path {
	if t == nil {
		return nil
	}
	out := make([]*Path, 0, len(t.paths))
	for _, p := range t.paths {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Tag < out[j].Tag })
	return out
}
