// Package trace records per-stage timestamps for tagged frames as they
// cross the datapath — the measured counterpart of the Fig. 7 stage
// budget, and the debugging tool for "where did this packet spend its
// time".
//
// Two tracers share the Hop/Path model and report renderer:
//
//   - Tracer follows frames through the *simulated* datapath on the
//     sim.Engine clock. Tracing is opt-in per frame: give the frame a
//     nonzero Tag (ethernet.Frame.Tag) and register it with Watch.
//   - LiveTracer (live.go) follows frames through the real overlay
//     datapath on the wall clock, selected by a 1-in-N sampler or an
//     explicit per-MAC flow trigger, with trace context carried across
//     the wire in the encap header's trace extension.
//
// In both, hop offsets are time.Duration from a per-path origin:
// sim-time since engine start for the sim tracer, wall-clock time since
// Path.Start for the live one.
package trace

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"vnetp/internal/sim"
)

// Live datapath stage names, in TX→RX order. The wire sits between
// StageWireTx on the sending node and StageRxDispatch on the receiver.
// DESIGN.md's tracing section lists these same names; the driftcheck
// tool holds the two sets equal.
const (
	StageVirtioPop   = "virtio_pop"   // frame popped from a virtio TX queue
	StageRouteLookup = "route_lookup" // routing table consulted
	StageTxEnqueue   = "tx_enqueue"   // frame queued on the per-link TX ring
	StageEncap       = "encap"        // frame encapsulated into datagrams
	StageWireTx      = "wire_tx"      // datagrams handed to the socket
	StageRxDispatch  = "rx_dispatch"  // datagram picked up by a dispatcher
	StageReassembly  = "reassembly"   // final fragment completed the frame
	StageDeliver     = "deliver"      // frame delivered to the endpoint
)

// Hop is one recorded stage crossing. At is the offset from the path's
// origin (engine start for sim traces, Path.Start for live traces).
type Hop struct {
	Stage string        `json:"stage"`
	At    time.Duration `json:"at_ns"`
}

// Path is a tagged frame's recorded journey. The sim tracer fills only
// Tag and Hops; the live tracer also stamps the recording node, the
// trace origin node, the wall-clock start, and the trace flags carried
// on the wire.
type Path struct {
	Tag    uint64    `json:"id"`
	Node   string    `json:"node,omitempty"`
	Origin uint16    `json:"origin,omitempty"`
	Start  time.Time `json:"start,omitempty"`
	Flags  uint16    `json:"flags,omitempty"`
	Done   bool      `json:"done,omitempty"`
	Hops   []Hop     `json:"hops"`
}

// Elapsed reports the time from the first to the last hop.
func (p *Path) Elapsed() time.Duration {
	if len(p.Hops) < 2 {
		return 0
	}
	return p.Hops[len(p.Hops)-1].At - p.Hops[0].At
}

// String renders the journey with per-stage deltas — the one report
// format shared by the sim and live tracers.
func (p *Path) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "frame %d:", p.Tag)
	if p.Node != "" {
		fmt.Fprintf(&b, " node=%s origin=%04x", p.Node, p.Origin)
	}
	b.WriteByte('\n')
	for i, h := range p.Hops {
		delta := time.Duration(0)
		if i > 0 {
			delta = h.At - p.Hops[i-1].At
		}
		fmt.Fprintf(&b, "  %-28s t=%-12v (+%v)\n", h.Stage, h.At, delta)
	}
	return b.String()
}

// Tracer collects hop records for registered tags on the simulated
// clock. A nil *Tracer is valid and records nothing, so components can
// hold one unconditionally.
type Tracer struct {
	eng   *sim.Engine
	paths map[uint64]*Path
}

// New returns a tracer bound to the engine's clock.
func New(eng *sim.Engine) *Tracer {
	return &Tracer{eng: eng, paths: make(map[uint64]*Path)}
}

// Watch registers a tag for recording.
func (t *Tracer) Watch(tag uint64) {
	if t == nil || tag == 0 {
		return
	}
	t.paths[tag] = &Path{Tag: tag}
}

// Record appends a hop for the tag if it is being watched. Safe on a nil
// tracer and for unwatched or zero tags.
func (t *Tracer) Record(tag uint64, stage string) {
	if t == nil || tag == 0 {
		return
	}
	p, ok := t.paths[tag]
	if !ok {
		return
	}
	p.Hops = append(p.Hops, Hop{Stage: stage, At: t.eng.Now().Duration()})
}

// Path returns the recorded journey for a tag (nil if unwatched).
func (t *Tracer) Path(tag uint64) *Path {
	if t == nil {
		return nil
	}
	return t.paths[tag]
}

// Paths returns every recorded journey, ordered by tag.
func (t *Tracer) Paths() []*Path {
	if t == nil {
		return nil
	}
	out := make([]*Path, 0, len(t.paths))
	for _, p := range t.paths {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Tag < out[j].Tag })
	return out
}
