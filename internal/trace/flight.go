package trace

import (
	"encoding/binary"
	"io"
	"sort"
	"sync/atomic"
	"time"
)

// FlightEvent is one captured datagram: the raw encap bytes as they
// arrived on the wire (truncated to the ring's snap length), plus
// enough metadata to attribute it.
type FlightEvent struct {
	At      time.Time `json:"at"`
	Sender  string    `json:"sender"`
	TraceID uint64    `json:"trace_id,omitempty"`
	OrigLen int       `json:"orig_len"`
	Data    []byte    `json:"-"`
}

// FlightRing is a fixed-depth ring of the last K datagram events — the
// flight recorder. Writers claim a slot with one atomic add and a CAS;
// if a concurrent reader holds the slot the event is dropped rather
// than blocking the datapath, so recording never waits. All slot
// buffers are preallocated: a Record costs zero allocations. A nil
// *FlightRing is valid and records nothing.
type FlightRing struct {
	next  atomic.Uint64
	total atomic.Uint64
	snap  int
	slots []flightSlot
}

type flightSlot struct {
	busy    atomic.Uint32 // CAS 0→1 claims the slot
	at      int64         // unix nanos; 0 = never written
	sender  string
	traceID uint64
	origLen int
	n       int
	buf     []byte
}

// NewFlightRing returns a ring holding the last depth events, each
// truncated to snap bytes. depth <= 0 returns nil (recorder disabled).
func NewFlightRing(depth, snap int) *FlightRing {
	if depth <= 0 {
		return nil
	}
	if snap <= 0 {
		snap = 256
	}
	r := &FlightRing{snap: snap, slots: make([]flightSlot, depth)}
	for i := range r.slots {
		r.slots[i].buf = make([]byte, snap)
	}
	return r
}

// Record captures a datagram event. Best-effort: if the claimed slot is
// being read the event is silently dropped.
func (r *FlightRing) Record(sender string, traceID uint64, data []byte) {
	if r == nil {
		return
	}
	idx := (r.next.Add(1) - 1) % uint64(len(r.slots))
	s := &r.slots[idx]
	if !s.busy.CompareAndSwap(0, 1) {
		return
	}
	s.at = time.Now().UnixNano()
	s.sender = sender
	s.traceID = traceID
	s.origLen = len(data)
	s.n = copy(s.buf, data)
	s.busy.Store(0)
	r.total.Add(1)
}

// Total returns the number of events ever recorded.
func (r *FlightRing) Total() uint64 {
	if r == nil {
		return 0
	}
	return r.total.Load()
}

// Snaplen returns the per-event capture length.
func (r *FlightRing) Snaplen() int {
	if r == nil {
		return 0
	}
	return r.snap
}

// Snapshot copies out the ring's current events, oldest first.
// Best-effort: a slot mid-write is skipped.
func (r *FlightRing) Snapshot() []FlightEvent {
	if r == nil {
		return nil
	}
	out := make([]FlightEvent, 0, len(r.slots))
	for i := range r.slots {
		s := &r.slots[i]
		if !s.busy.CompareAndSwap(0, 1) {
			continue
		}
		if s.at != 0 {
			ev := FlightEvent{
				At:      time.Unix(0, s.at),
				Sender:  s.sender,
				TraceID: s.traceID,
				OrigLen: s.origLen,
				Data:    append([]byte(nil), s.buf[:s.n]...),
			}
			out = append(out, ev)
		}
		s.busy.Store(0)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].At.Before(out[j].At) })
	return out
}

// pcap constants: classic (non-ng) format, big-endian, linktype
// DLT_USER0 — the payload is our encap datagram, not a standard layer.
const (
	pcapMagic    = 0xa1b2c3d4
	pcapVerMajor = 2
	pcapVerMinor = 4
	pcapLinkType = 147 // DLT_USER0
)

// WritePCAP writes events as a classic big-endian pcap stream with
// linktype DLT_USER0 (147): each packet record is one captured encap
// datagram. snaplen is the file-header capture limit (use the ring's
// Snaplen).
func WritePCAP(w io.Writer, snaplen int, events []FlightEvent) error {
	var hdr [24]byte
	binary.BigEndian.PutUint32(hdr[0:], pcapMagic)
	binary.BigEndian.PutUint16(hdr[4:], pcapVerMajor)
	binary.BigEndian.PutUint16(hdr[6:], pcapVerMinor)
	// thiszone and sigfigs stay zero.
	binary.BigEndian.PutUint32(hdr[16:], uint32(snaplen))
	binary.BigEndian.PutUint32(hdr[20:], pcapLinkType)
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	var rec [16]byte
	for _, ev := range events {
		binary.BigEndian.PutUint32(rec[0:], uint32(ev.At.Unix()))
		binary.BigEndian.PutUint32(rec[4:], uint32(ev.At.Nanosecond()/1000))
		binary.BigEndian.PutUint32(rec[8:], uint32(len(ev.Data)))
		binary.BigEndian.PutUint32(rec[12:], uint32(ev.OrigLen))
		if _, err := w.Write(rec[:]); err != nil {
			return err
		}
		if _, err := w.Write(ev.Data); err != nil {
			return err
		}
	}
	return nil
}
