package trace_test

import (
	"encoding/json"
	"strings"
	"testing"

	"vnetp/internal/ethernet"
	"vnetp/internal/trace"
)

func TestLiveTracerDisabledSamplesNothing(t *testing.T) {
	lt := trace.NewLive("n0", 0xaa)
	for i := 0; i < 100; i++ {
		if id := lt.SampleTX(ethernet.LocalMAC(1), ethernet.LocalMAC(2)); id != 0 {
			t.Fatalf("disabled tracer sampled id %x", id)
		}
	}
	if lt.Sampled() != 0 || lt.Active() != 0 {
		t.Fatalf("sampled=%d active=%d", lt.Sampled(), lt.Active())
	}
	// The disabled check must not allocate: it sits on the hot TX path.
	allocs := testing.AllocsPerRun(1000, func() {
		lt.SampleTX(ethernet.LocalMAC(1), ethernet.LocalMAC(2))
	})
	if allocs != 0 {
		t.Fatalf("disabled SampleTX allocates %v/op", allocs)
	}
}

func TestLiveTracerSampleEveryN(t *testing.T) {
	lt := trace.NewLive("n0", 0x0001)
	lt.Start(4)
	var ids []uint64
	for i := 0; i < 16; i++ {
		if id := lt.SampleTX(ethernet.LocalMAC(1), ethernet.LocalMAC(2)); id != 0 {
			ids = append(ids, id)
		}
	}
	if len(ids) != 4 {
		t.Fatalf("1-in-4 over 16 frames sampled %d", len(ids))
	}
	for _, id := range ids {
		if id>>48 != 0x0001 {
			t.Fatalf("id %x missing origin prefix", id)
		}
	}
	lt.Stop()
	if id := lt.SampleTX(ethernet.LocalMAC(1), ethernet.LocalMAC(2)); id != 0 {
		t.Fatal("stopped tracer still sampling")
	}
}

func TestLiveTracerFlowTrigger(t *testing.T) {
	lt := trace.NewLive("n0", 2)
	target := ethernet.LocalMAC(9)
	lt.AddFlow(target)
	// Non-matching flow with no sampler armed: nothing.
	if id := lt.SampleTX(ethernet.LocalMAC(1), ethernet.LocalMAC(2)); id != 0 {
		t.Fatal("non-matching flow sampled")
	}
	// Matching dst (and src) always trace, flagged as triggered.
	id := lt.SampleTX(ethernet.LocalMAC(1), target)
	if id == 0 {
		t.Fatal("flow-matching dst not sampled")
	}
	if _, flags, ok := lt.Ext(id); !ok || flags != trace.TraceTriggered {
		t.Fatalf("flags = %x, ok=%v", flags, ok)
	}
	if id2 := lt.SampleTX(target, ethernet.LocalMAC(3)); id2 == 0 {
		t.Fatal("flow-matching src not sampled")
	}
}

func TestLiveTracerRecordAndRemote(t *testing.T) {
	lt := trace.NewLive("n0", 1)
	lt.Start(1)
	id := lt.SampleTX(ethernet.LocalMAC(1), ethernet.LocalMAC(2))
	lt.Record(id, trace.StageRouteLookup)
	lt.Record(id, trace.StageEncap)
	lt.Record(id, trace.StageWireTx)
	lt.Record(0, trace.StageDeliver)      // zero id ignored
	lt.Record(0xdead, trace.StageDeliver) // unknown id ignored

	// The receiving node learns the trace from the wire extension.
	rx := trace.NewLive("n1", 2)
	rx.Start(0) // enabled, sampler off
	rx.RecordRemote(id, 1, 0, trace.StageRxDispatch)
	rx.RecordRemote(id, 1, 0, trace.StageDeliver)

	tx := lt.Traces()
	if len(tx) != 1 || !tx[0].Done || len(tx[0].Hops) != 3 {
		t.Fatalf("tx traces = %+v", tx)
	}
	rxs := rx.Traces()
	if len(rxs) != 1 || rxs[0].Origin != 1 || rxs[0].Node != "n1" || !rxs[0].Done {
		t.Fatalf("rx traces = %+v", rxs)
	}
	if rxs[0].Hops[0].Stage != trace.StageRxDispatch {
		t.Fatalf("rx hops = %+v", rxs[0].Hops)
	}
	// Shared renderer: live paths render through the same Path.String.
	if s := tx[0].String(); !strings.Contains(s, "node=n0") || !strings.Contains(s, trace.StageEncap) {
		t.Fatalf("render:\n%s", s)
	}
	// Paths marshal for the /trace endpoint.
	b, err := json.Marshal(tx)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(b), `"route_lookup"`) {
		t.Fatalf("json: %s", b)
	}
}

func TestLiveTracerNilSafe(t *testing.T) {
	var lt *trace.LiveTracer
	lt.Start(1)
	lt.Stop()
	lt.AddFlow(ethernet.LocalMAC(1))
	if lt.SampleTX(ethernet.LocalMAC(1), ethernet.LocalMAC(2)) != 0 {
		t.Fatal("nil tracer sampled")
	}
	lt.Record(1, "x")
	lt.RecordRemote(1, 0, 0, "x")
	if _, _, ok := lt.Ext(1); ok {
		t.Fatal("nil tracer has ext")
	}
	if lt.Traces() != nil || lt.Enabled() || lt.Sampled() != 0 || lt.Active() != 0 {
		t.Fatal("nil tracer returned data")
	}
}

func TestLiveTracerEviction(t *testing.T) {
	lt := trace.NewLive("n0", 1)
	lt.Start(1)
	var first uint64
	for i := 0; i < 300; i++ {
		id := lt.SampleTX(ethernet.LocalMAC(1), ethernet.LocalMAC(2))
		if i == 0 {
			first = id
		}
	}
	if lt.Active() > 256 {
		t.Fatalf("active = %d, want <= 256", lt.Active())
	}
	if _, _, ok := lt.Ext(first); ok {
		t.Fatal("oldest trace not evicted")
	}
}
