package trace_test

import (
	"bytes"
	"encoding/binary"
	"flag"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"vnetp/internal/trace"
)

var updatePCAP = flag.Bool("update-pcap", false, "rewrite the pcap golden file")

func TestFlightRingBasics(t *testing.T) {
	r := trace.NewFlightRing(4, 8)
	if trace.NewFlightRing(0, 8) != nil {
		t.Fatal("depth 0 should disable the ring")
	}
	r.Record("a", 1, []byte("0123456789")) // truncated to snap=8
	r.Record("b", 0, []byte("xy"))
	evs := r.Snapshot()
	if len(evs) != 2 {
		t.Fatalf("snapshot = %d events", len(evs))
	}
	if evs[0].Sender != "a" || evs[0].OrigLen != 10 || len(evs[0].Data) != 8 {
		t.Fatalf("event 0 = %+v", evs[0])
	}
	if evs[1].Sender != "b" || !bytes.Equal(evs[1].Data, []byte("xy")) {
		t.Fatalf("event 1 = %+v", evs[1])
	}
	// Overflow: ring keeps only the newest 4.
	for i := 0; i < 10; i++ {
		r.Record("c", uint64(i), []byte{byte(i)})
	}
	evs = r.Snapshot()
	if len(evs) != 4 {
		t.Fatalf("post-overflow snapshot = %d", len(evs))
	}
	for _, ev := range evs {
		if ev.TraceID < 6 {
			t.Fatalf("old event survived overflow: %+v", ev)
		}
	}
	if r.Total() != 12 {
		t.Fatalf("total = %d", r.Total())
	}
}

func TestFlightRingNilSafe(t *testing.T) {
	var r *trace.FlightRing
	r.Record("x", 0, []byte("data"))
	if r.Snapshot() != nil || r.Total() != 0 || r.Snaplen() != 0 {
		t.Fatal("nil ring returned data")
	}
}

// Concurrent writers and readers must not race (best-effort capture may
// drop events, but never corrupt or deadlock). Run under -race.
func TestFlightRingConcurrent(t *testing.T) {
	r := trace.NewFlightRing(16, 32)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			buf := bytes.Repeat([]byte{byte(w)}, 32)
			for i := 0; i < 2000; i++ {
				r.Record("w", uint64(i), buf)
			}
		}(w)
	}
	readerDone := make(chan struct{})
	go func() {
		defer close(readerDone)
		for {
			select {
			case <-stop:
				return
			default:
				for _, ev := range r.Snapshot() {
					if len(ev.Data) > 32 {
						panic("oversized capture")
					}
				}
			}
		}
	}()
	wg.Wait()
	close(stop)
	<-readerDone
}

// TestPCAPGolden pins the exact export byte layout against a committed
// golden file: classic big-endian pcap, v2.4, linktype DLT_USER0.
// Regenerate deliberately with -update-pcap.
func TestPCAPGolden(t *testing.T) {
	events := []trace.FlightEvent{
		{
			At:      time.Unix(1700000000, 123456000).UTC(),
			Sender:  "10.0.0.1:9000",
			TraceID: 0x0001000000000001,
			OrigLen: 1400,
			Data:    bytes.Repeat([]byte{0x56, 0x4e, 0x02, 0x00}, 4),
		},
		{
			At:      time.Unix(1700000001, 999999000).UTC(),
			Sender:  "10.0.0.2:9000",
			OrigLen: 3,
			Data:    []byte{0xaa, 0xbb, 0xcc},
		},
	}
	var buf bytes.Buffer
	if err := trace.WritePCAP(&buf, 256, events); err != nil {
		t.Fatal(err)
	}
	// Structural checks independent of the golden bytes.
	out := buf.Bytes()
	if binary.BigEndian.Uint32(out[0:]) != 0xa1b2c3d4 {
		t.Fatalf("magic = %x", out[0:4])
	}
	if binary.BigEndian.Uint32(out[20:]) != 147 {
		t.Fatalf("linktype = %d", binary.BigEndian.Uint32(out[20:]))
	}
	if want := 24 + 16 + 16 + 16 + 3; len(out) != want {
		t.Fatalf("stream length = %d, want %d", len(out), want)
	}

	golden := filepath.Join("testdata", "flight.pcap")
	if *updatePCAP {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, out, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out, want) {
		t.Fatalf("pcap bytes drifted from golden file:\ngot  % x\nwant % x", out, want)
	}
}
