package trace_test

import (
	"strings"
	"testing"
	"time"

	"vnetp/internal/core"
	"vnetp/internal/ethernet"
	"vnetp/internal/lab"
	"vnetp/internal/phys"
	"vnetp/internal/sim"
	"vnetp/internal/trace"
)

func TestTracerBasics(t *testing.T) {
	eng := sim.New()
	tr := trace.New(eng)
	tr.Watch(7)
	eng.Go("p", func(p *sim.Proc) {
		tr.Record(7, "a")
		p.Sleep(10 * time.Microsecond)
		tr.Record(7, "b")
		tr.Record(99, "unwatched") // ignored
		tr.Record(0, "zero tag")   // ignored
	})
	eng.Run()
	eng.Close()
	path := tr.Path(7)
	if path == nil || len(path.Hops) != 2 {
		t.Fatalf("path = %+v", path)
	}
	if path.Elapsed() != 10*time.Microsecond {
		t.Fatalf("elapsed = %v", path.Elapsed())
	}
	if tr.Path(99) != nil {
		t.Fatal("unwatched tag recorded")
	}
	if !strings.Contains(path.String(), "+10µs") {
		t.Fatalf("String missing delta:\n%s", path.String())
	}
	if len(tr.Paths()) != 1 {
		t.Fatalf("paths = %v", tr.Paths())
	}
}

func TestNilTracerSafe(t *testing.T) {
	var tr *trace.Tracer
	tr.Watch(1)
	tr.Record(1, "x")
	if tr.Path(1) != nil || tr.Paths() != nil {
		t.Fatal("nil tracer returned data")
	}
}

// TestDatapathTrace tags a frame through a full VNET/P crossing and
// checks the recorded stages arrive in causal order with sane deltas —
// the measured Fig. 7.
func TestDatapathTrace(t *testing.T) {
	eng := sim.New()
	c := lab.NewPair(eng, phys.Eth10G, core.DefaultParams())
	tr := trace.New(eng)
	for _, n := range c.Nodes {
		n.Host.Tracer = tr
	}
	tr.Watch(42)

	var drained bool
	c.Nodes[1].Iface.SetRecv(func() {
		for {
			if _, ok := c.Nodes[1].Iface.GuestRecv(); !ok {
				break
			}
			drained = true
		}
		c.Nodes[1].Iface.RxDone()
	})
	f := &ethernet.Frame{
		Dst: c.Nodes[1].MAC(), Src: c.Nodes[0].MAC(),
		Type: ethernet.TypeTest, Pad: 1000, Tag: 42,
	}
	c.Nodes[0].Iface.TrySend(f)
	eng.Run()
	eng.Close()

	if !drained {
		t.Fatal("frame never drained")
	}
	path := tr.Path(42)
	if path == nil {
		t.Fatal("no path recorded")
	}
	t.Logf("\n%s", path)
	want := []string{
		"guest: TX ring push",
		"core: dispatched + routed", // sender's core
		"bridge: encapsulated",
		"bridge: decapsulated",
		"core: dispatched + routed", // receiver's core
		"core: RX ring push",
		"guest: drained from RX ring",
	}
	if len(path.Hops) != len(want) {
		t.Fatalf("hops = %d, want %d:\n%s", len(path.Hops), len(want), path)
	}
	for i, h := range path.Hops {
		if h.Stage != want[i] {
			t.Errorf("hop %d = %q, want %q", i, h.Stage, want[i])
		}
		if i > 0 && h.At < path.Hops[i-1].At {
			t.Errorf("hop %d out of causal order", i)
		}
	}
	// The full crossing must take roughly the one-way datapath time.
	if e := path.Elapsed(); e < 20*time.Microsecond || e > 120*time.Microsecond {
		t.Errorf("end-to-end trace elapsed %v, want ~30-80µs", e)
	}
}
