package trace

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"vnetp/internal/ethernet"
)

// TraceTriggered marks a trace started by an explicit per-MAC flow
// trigger (vnetctl TRACE START FLOW <mac>) rather than the 1-in-N
// sampler. The flag travels in the wire extension so the remote node
// can tell the two apart.
const TraceTriggered uint16 = 0x01

// maxLiveTraces bounds the retained path table; the oldest trace is
// evicted when a new one starts past the cap.
const maxLiveTraces = 256

// flowSet is the immutable set of explicitly-triggered flow MACs,
// swapped atomically so the hot path reads it without a lock.
type flowSet map[ethernet.MAC]struct{}

// LiveTracer records per-stage wall-clock spans for frames crossing the
// real overlay datapath. Frames are selected either by a 1-in-N sampler
// or by an explicit per-MAC flow trigger; the selection check costs one
// atomic load (and zero allocations) while tracing is disabled, so the
// tracer can sit on the hot TX path unconditionally. A nil *LiveTracer
// is valid and records nothing.
type LiveTracer struct {
	node   string
	origin uint16

	enabled atomic.Bool
	sampleN atomic.Uint64 // trace every Nth eligible frame; 0 = flow triggers only
	ctr     atomic.Uint64
	seq     atomic.Uint64
	sampled atomic.Uint64 // traces started locally (metric)
	flows   atomic.Pointer[flowSet]

	mu    sync.Mutex
	live  map[uint64]*Path
	order []uint64 // insertion order, for eviction
}

// NewLive returns a live tracer for a node. origin is the node's
// 16-bit identity carried in the wire trace extension so a trace ID is
// attributable across the hop; node is the human-readable name stamped
// on recorded paths.
func NewLive(node string, origin uint16) *LiveTracer {
	return &LiveTracer{node: node, origin: origin}
}

// Start enables tracing with 1-in-N sampling. n == 1 traces every
// frame; n == 0 disables the sampler, leaving only flow triggers.
func (t *LiveTracer) Start(n uint64) {
	if t == nil {
		return
	}
	t.sampleN.Store(n)
	t.enabled.Store(true)
}

// Stop disables all sampling and clears flow triggers. Recorded paths
// are retained for TRACE DUMP until the next Start evicts them.
func (t *LiveTracer) Stop() {
	if t == nil {
		return
	}
	t.enabled.Store(false)
	t.sampleN.Store(0)
	t.flows.Store(nil)
}

// AddFlow arms an explicit trigger: any frame to or from mac starts a
// trace regardless of the sampler. Implies enabling the tracer.
func (t *LiveTracer) AddFlow(mac ethernet.MAC) {
	if t == nil {
		return
	}
	old := t.flows.Load()
	next := make(flowSet, 1)
	if old != nil {
		for m := range *old {
			next[m] = struct{}{}
		}
	}
	next[mac] = struct{}{}
	t.flows.Store(&next)
	t.enabled.Store(true)
}

// Enabled reports whether any selection (sampler or flow trigger) is
// armed.
func (t *LiveTracer) Enabled() bool {
	return t != nil && t.enabled.Load()
}

// Sampled returns the number of traces started locally.
func (t *LiveTracer) Sampled() uint64 {
	if t == nil {
		return 0
	}
	return t.sampled.Load()
}

// Active returns the number of retained paths.
func (t *LiveTracer) Active() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.live)
}

// SampleTX decides whether a frame entering the TX path should be
// traced. It returns a new nonzero trace ID when selected and 0
// otherwise. Disabled cost: one atomic load, no allocations.
func (t *LiveTracer) SampleTX(src, dst ethernet.MAC) uint64 {
	if t == nil || !t.enabled.Load() {
		return 0
	}
	var flags uint16
	if fs := t.flows.Load(); fs != nil {
		if _, ok := (*fs)[src]; ok {
			flags = TraceTriggered
		} else if _, ok := (*fs)[dst]; ok {
			flags = TraceTriggered
		}
	}
	if flags == 0 {
		n := t.sampleN.Load()
		if n == 0 || t.ctr.Add(1)%n != 0 {
			return 0
		}
	}
	id := uint64(t.origin)<<48 | (t.seq.Add(1) & (1<<48 - 1))
	t.sampled.Add(1)
	t.insert(id, t.origin, flags)
	return id
}

// Record appends a stage hop to a locally-known trace. Safe on a nil
// tracer and for zero or unknown IDs. Reaching StageDeliver or
// StageWireTx marks the path complete on this node.
func (t *LiveTracer) Record(id uint64, stage string) {
	if t == nil || id == 0 {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	p, ok := t.live[id]
	if !ok {
		return
	}
	p.Hops = append(p.Hops, Hop{Stage: stage, At: time.Since(p.Start)})
	if stage == StageDeliver || stage == StageWireTx {
		p.Done = true
	}
}

// RecordRemote records a stage for a trace that arrived over the wire:
// if the ID is unknown a new path is created stamped with the carried
// origin and flags, so the receiving side of a hop builds its half of
// the cross-node trace without any prior state.
func (t *LiveTracer) RecordRemote(id uint64, origin, flags uint16, stage string) {
	if t == nil || id == 0 {
		return
	}
	t.mu.Lock()
	p, ok := t.live[id]
	t.mu.Unlock()
	if !ok {
		p = t.insert(id, origin, flags)
		if p == nil {
			return
		}
	}
	t.mu.Lock()
	p.Hops = append(p.Hops, Hop{Stage: stage, At: time.Since(p.Start)})
	if stage == StageDeliver || stage == StageWireTx {
		p.Done = true
	}
	t.mu.Unlock()
}

// Ext returns the wire-extension fields (origin, flags) for a known
// trace ID, so a node forwarding a traced frame re-emits the original
// context rather than its own.
func (t *LiveTracer) Ext(id uint64) (origin, flags uint16, ok bool) {
	if t == nil || id == 0 {
		return 0, 0, false
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	p, ok := t.live[id]
	if !ok {
		return 0, 0, false
	}
	return p.Origin, p.Flags, true
}

// Traces returns a snapshot of every retained path, ordered by start
// time then ID. Hop slices are copied so callers can render without
// racing the datapath.
func (t *LiveTracer) Traces() []*Path {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	out := make([]*Path, 0, len(t.live))
	for _, p := range t.live {
		cp := *p
		cp.Hops = append([]Hop(nil), p.Hops...)
		out = append(out, &cp)
	}
	t.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if !out[i].Start.Equal(out[j].Start) {
			return out[i].Start.Before(out[j].Start)
		}
		return out[i].Tag < out[j].Tag
	})
	return out
}

func (t *LiveTracer) insert(id uint64, origin, flags uint16) *Path {
	p := &Path{Tag: id, Node: t.node, Origin: origin, Flags: flags, Start: time.Now()}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.live == nil {
		t.live = make(map[uint64]*Path)
	}
	if _, dup := t.live[id]; dup {
		return t.live[id]
	}
	for len(t.live) >= maxLiveTraces && len(t.order) > 0 {
		delete(t.live, t.order[0])
		t.order = t.order[1:]
	}
	t.live[id] = p
	t.order = append(t.order, id)
	return p
}
