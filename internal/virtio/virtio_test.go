package virtio

import (
	"testing"
	"testing/quick"

	"vnetp/internal/ethernet"
)

func frame(i int) *ethernet.Frame {
	return &ethernet.Frame{Src: ethernet.LocalMAC(uint32(i)), Type: ethernet.TypeTest}
}

func TestQueueFIFO(t *testing.T) {
	q := NewQueue(4)
	for i := 0; i < 4; i++ {
		if !q.Push(frame(i)) {
			t.Fatalf("push %d failed", i)
		}
	}
	for i := 0; i < 4; i++ {
		f, ok := q.Pop()
		if !ok || f.Src != ethernet.LocalMAC(uint32(i)) {
			t.Fatalf("pop %d = %v, %v", i, f, ok)
		}
	}
	if _, ok := q.Pop(); ok {
		t.Fatal("pop from empty queue succeeded")
	}
}

func TestQueueFullDrop(t *testing.T) {
	q := NewQueue(2)
	q.Push(frame(0))
	q.Push(frame(1))
	if !q.Full() {
		t.Fatal("queue should be full")
	}
	if q.Push(frame(2)) {
		t.Fatal("push into full queue succeeded")
	}
	if q.Drops != 1 {
		t.Fatalf("drops = %d, want 1", q.Drops)
	}
}

func TestQueueWraparound(t *testing.T) {
	q := NewQueue(3)
	next := 0
	// Exercise wrap several times.
	for round := 0; round < 5; round++ {
		q.Push(frame(next))
		q.Push(frame(next + 1))
		f, _ := q.Pop()
		if f.Src != ethernet.LocalMAC(uint32(next)) {
			t.Fatalf("round %d: wrong frame %v", round, f.Src)
		}
		g, _ := q.Pop()
		if g.Src != ethernet.LocalMAC(uint32(next+1)) {
			t.Fatalf("round %d: wrong frame %v", round, g.Src)
		}
		next += 2
	}
	if !q.Empty() {
		t.Fatal("queue should be empty")
	}
}

func TestPopBatch(t *testing.T) {
	q := NewQueue(8)
	for i := 0; i < 6; i++ {
		q.Push(frame(i))
	}
	b := q.PopBatch(4)
	if len(b) != 4 {
		t.Fatalf("batch len = %d, want 4", len(b))
	}
	for i, f := range b {
		if f.Src != ethernet.LocalMAC(uint32(i)) {
			t.Fatalf("batch[%d] = %v", i, f.Src)
		}
	}
	rest := q.PopBatch(0) // all remaining
	if len(rest) != 2 {
		t.Fatalf("rest len = %d, want 2", len(rest))
	}
	if q.PopBatch(5) != nil {
		t.Fatal("batch from empty queue not nil")
	}
}

func TestNotifySuppression(t *testing.T) {
	q := NewQueue(4)
	if !q.NotifyEnabled() {
		t.Fatal("notifications should start enabled")
	}
	q.SetNotify(false)
	if q.NotifyEnabled() {
		t.Fatal("SetNotify(false) had no effect")
	}
	q.SetNotify(true)
	q.CountNotify()
	if q.Notifmu != 1 {
		t.Fatalf("notify count = %d", q.Notifmu)
	}
}

func TestQueueStats(t *testing.T) {
	q := NewQueue(4)
	q.Push(frame(0))
	q.Push(frame(1))
	q.Pop()
	if q.Pushes != 2 || q.Pops != 1 {
		t.Fatalf("stats pushes=%d pops=%d", q.Pushes, q.Pops)
	}
}

func TestQueueDefaultSize(t *testing.T) {
	if NewQueue(0).Cap() != DefaultQueueSize {
		t.Fatal("default size not applied")
	}
	if NewQueue(-1).Cap() != DefaultQueueSize {
		t.Fatal("negative size not defaulted")
	}
}

func TestNICDefaults(t *testing.T) {
	n := NewNIC(ethernet.LocalMAC(1), 0)
	if n.MTU != ethernet.StandardMTU {
		t.Fatalf("MTU = %d", n.MTU)
	}
	if n.TX.Cap() != DefaultQueueSize || n.RX.Cap() != DefaultQueueSize {
		t.Fatal("queues not default sized")
	}
	big := NewNIC(ethernet.LocalMAC(2), 1<<20)
	if big.MTU != ethernet.MaxMTU {
		t.Fatalf("oversized MTU not clamped: %d", big.MTU)
	}
	jumbo := NewNIC(ethernet.LocalMAC(3), ethernet.JumboMTU)
	if jumbo.MTU != ethernet.JumboMTU {
		t.Fatalf("jumbo MTU = %d", jumbo.MTU)
	}
}

// Property: any interleaving of pushes and pops preserves FIFO order and
// never loses or duplicates frames (up to capacity drops, which are
// counted).
func TestQueueFIFOProperty(t *testing.T) {
	prop := func(ops []bool, size uint8) bool {
		cap := int(size%16) + 1
		q := NewQueue(cap)
		pushed, popped := 0, 0
		for _, isPush := range ops {
			if isPush {
				if q.Push(frame(pushed)) {
					pushed++
				}
			} else {
				if f, ok := q.Pop(); ok {
					if f.Src != ethernet.LocalMAC(uint32(popped)) {
						return false // out of order
					}
					popped++
				}
			}
		}
		return q.Len() == pushed-popped &&
			int(q.Pushes) == pushed && int(q.Pops) == popped
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
