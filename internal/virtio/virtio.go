// Package virtio models the virtio network device rings through which
// guests exchange Ethernet frames with the VMM (paper Sect. 4.4). The
// model keeps virtio's performance-relevant semantics — fixed-capacity
// rings, batched consumption, and notification suppression (a guest kick
// is a VM exit; an RX interrupt is an injection) — without descriptor
// tables, since buffers here are Go slices rather than guest physical
// memory.
package virtio

import (
	"vnetp/internal/ethernet"
)

// DefaultQueueSize matches the common virtio-net ring size.
const DefaultQueueSize = 256

// Queue is a fixed-capacity FIFO ring of Ethernet frames with
// notification suppression, standing in for a virtqueue.
type Queue struct {
	buf   []*ethernet.Frame
	head  int // index of oldest element
	count int

	// notifyOn mirrors the VRING_AVAIL_F_NO_INTERRUPT /
	// VRING_USED_F_NO_NOTIFY flags: when false, the producer should not
	// notify the consumer (the consumer is polling).
	notifyOn bool

	// Stats
	Pushes  uint64
	Pops    uint64
	Drops   uint64 // pushes rejected because the ring was full
	Notifmu uint64 // notifications actually issued (kicks or interrupts)
}

// NewQueue returns an empty ring of the given capacity (DefaultQueueSize
// if size <= 0) with notifications enabled.
func NewQueue(size int) *Queue {
	if size <= 0 {
		size = DefaultQueueSize
	}
	return &Queue{buf: make([]*ethernet.Frame, size), notifyOn: true}
}

// Cap returns the ring capacity.
func (q *Queue) Cap() int { return len(q.buf) }

// Len returns the number of queued frames.
func (q *Queue) Len() int { return q.count }

// Empty reports whether the ring has no frames.
func (q *Queue) Empty() bool { return q.count == 0 }

// Full reports whether the ring is at capacity.
func (q *Queue) Full() bool { return q.count == len(q.buf) }

// Push appends f, reporting false (and counting a drop) if the ring is
// full.
func (q *Queue) Push(f *ethernet.Frame) bool {
	if q.Full() {
		q.Drops++
		return false
	}
	q.buf[(q.head+q.count)%len(q.buf)] = f
	q.count++
	q.Pushes++
	return true
}

// Pop removes and returns the oldest frame.
func (q *Queue) Pop() (*ethernet.Frame, bool) {
	if q.count == 0 {
		return nil, false
	}
	f := q.buf[q.head]
	q.buf[q.head] = nil
	q.head = (q.head + 1) % len(q.buf)
	q.count--
	q.Pops++
	return f, true
}

// PopBatch removes up to max frames (all queued frames if max <= 0). The
// single-exit multi-packet behaviour the paper attributes to virtio
// ("one or more packets can be conveyed ... with a single VM exit") comes
// from consuming with PopBatch.
func (q *Queue) PopBatch(max int) []*ethernet.Frame {
	if q.count == 0 {
		return nil
	}
	return q.PopBatchInto(nil, max)
}

// PopBatchInto is PopBatch without the per-call allocation: up to max
// frames (all if max <= 0) are appended to dst and the extended slice is
// returned. Hot consumers (the overlay's batched TX drain) pass a reused
// scratch slice so steady-state dequeue allocates nothing.
func (q *Queue) PopBatchInto(dst []*ethernet.Frame, max int) []*ethernet.Frame {
	n := q.count
	if max > 0 && max < n {
		n = max
	}
	for i := 0; i < n; i++ {
		f, _ := q.Pop()
		dst = append(dst, f)
	}
	return dst
}

// SetNotify enables or disables producer→consumer notifications
// (disabled while the consumer polls).
func (q *Queue) SetNotify(on bool) { q.notifyOn = on }

// NotifyEnabled reports whether the producer should notify on push.
func (q *Queue) NotifyEnabled() bool { return q.notifyOn }

// CountNotify records that a notification was issued (for kick/interrupt
// accounting).
func (q *Queue) CountNotify() { q.Notifmu++ }

// NIC is a virtio network interface: a MAC address, an MTU, and a TX/RX
// queue pair. Per the paper, the virtual NIC registers with VNET/P, which
// then acts as its backend in place of a hardware driver.
type NIC struct {
	MAC ethernet.MAC
	MTU int
	TX  *Queue // guest → VMM
	RX  *Queue // VMM → guest
}

// NewNIC returns a NIC with fresh default-size queues. mtu <= 0 selects
// the standard Ethernet MTU; VNET/P advertises up to ethernet.MaxMTU.
func NewNIC(mac ethernet.MAC, mtu int) *NIC {
	if mtu <= 0 {
		mtu = ethernet.StandardMTU
	}
	if mtu > ethernet.MaxMTU {
		mtu = ethernet.MaxMTU
	}
	return &NIC{MAC: mac, MTU: mtu, TX: NewQueue(0), RX: NewQueue(0)}
}
