// Package pki is the minimal certificate plant for the control plane's
// mTLS: a self-signed ECDSA P-256 CA and per-host certificates good for
// both serving the control console and dialing it (one identity per
// host, used in both directions). It is deliberately small — no
// intermediates, no revocation, no OCSP — because the threat model is
// "the console port is reachable from a hostile network", not a public
// PKI: the CA file distributed to the hosts IS the trust domain, and
// plaintext clients are refused at the TLS handshake before a single
// control-language byte is parsed.
package pki

import (
	"crypto/ecdsa"
	"crypto/elliptic"
	"crypto/rand"
	"crypto/tls"
	"crypto/x509"
	"crypto/x509/pkix"
	"encoding/pem"
	"errors"
	"fmt"
	"math/big"
	"net"
	"os"
	"path/filepath"
	"time"
)

const (
	caValidity   = 10 * 365 * 24 * time.Hour
	certValidity = 2 * 365 * 24 * time.Hour
)

// CA is a loaded certificate authority: the signing key never leaves
// the struct and is never logged (the key PEM is written once, mode
// 0600, by Keygen).
type CA struct {
	cert    *x509.Certificate
	key     *ecdsa.PrivateKey
	CertPEM []byte
}

func newSerial() (*big.Int, error) {
	limit := new(big.Int).Lsh(big.NewInt(1), 128)
	return rand.Int(rand.Reader, limit)
}

func keyToPEM(key *ecdsa.PrivateKey) ([]byte, error) {
	der, err := x509.MarshalECPrivateKey(key)
	if err != nil {
		return nil, err
	}
	return pem.EncodeToMemory(&pem.Block{Type: "EC PRIVATE KEY", Bytes: der}), nil
}

func certToPEM(der []byte) []byte {
	return pem.EncodeToMemory(&pem.Block{Type: "CERTIFICATE", Bytes: der})
}

// NewCA mints a fresh self-signed authority for the trust domain cn.
func NewCA(cn string) (*CA, error) {
	key, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if err != nil {
		return nil, err
	}
	serial, err := newSerial()
	if err != nil {
		return nil, err
	}
	tpl := &x509.Certificate{
		SerialNumber:          serial,
		Subject:               pkix.Name{CommonName: cn, Organization: []string{"vnetp"}},
		NotBefore:             time.Now().Add(-time.Hour),
		NotAfter:              time.Now().Add(caValidity),
		KeyUsage:              x509.KeyUsageCertSign | x509.KeyUsageDigitalSignature,
		BasicConstraintsValid: true,
		IsCA:                  true,
		MaxPathLen:            0,
		MaxPathLenZero:        true,
	}
	der, err := x509.CreateCertificate(rand.Reader, tpl, tpl, &key.PublicKey, key)
	if err != nil {
		return nil, err
	}
	cert, err := x509.ParseCertificate(der)
	if err != nil {
		return nil, err
	}
	return &CA{cert: cert, key: key, CertPEM: certToPEM(der)}, nil
}

func parsePEM(data []byte, wantType string) ([]byte, error) {
	block, _ := pem.Decode(data)
	if block == nil || block.Type != wantType {
		return nil, fmt.Errorf("pki: expected a %s PEM block", wantType)
	}
	return block.Bytes, nil
}

// LoadCA reconstructs an authority from its PEM pair.
func LoadCA(certPEM, keyPEM []byte) (*CA, error) {
	certDER, err := parsePEM(certPEM, "CERTIFICATE")
	if err != nil {
		return nil, err
	}
	cert, err := x509.ParseCertificate(certDER)
	if err != nil {
		return nil, err
	}
	if !cert.IsCA {
		return nil, errors.New("pki: certificate is not a CA")
	}
	keyDER, err := parsePEM(keyPEM, "EC PRIVATE KEY")
	if err != nil {
		return nil, err
	}
	key, err := x509.ParseECPrivateKey(keyDER)
	if err != nil {
		return nil, err
	}
	return &CA{cert: cert, key: key, CertPEM: certToPEM(certDER)}, nil
}

// KeyPEM renders the CA's signing key (for Keygen's one write to disk).
func (ca *CA) KeyPEM() ([]byte, error) { return keyToPEM(ca.key) }

// IssueHost signs a certificate for one host, valid as both a TLS
// server and client. Each name in sans that parses as an IP becomes an
// IP SAN, the rest DNS SANs; cn is always included.
func (ca *CA) IssueHost(cn string, sans []string) (certPEM, keyPEM []byte, err error) {
	key, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if err != nil {
		return nil, nil, err
	}
	serial, err := newSerial()
	if err != nil {
		return nil, nil, err
	}
	tpl := &x509.Certificate{
		SerialNumber: serial,
		Subject:      pkix.Name{CommonName: cn, Organization: []string{"vnetp"}},
		NotBefore:    time.Now().Add(-time.Hour),
		NotAfter:     time.Now().Add(certValidity),
		KeyUsage:     x509.KeyUsageDigitalSignature,
		ExtKeyUsage:  []x509.ExtKeyUsage{x509.ExtKeyUsageServerAuth, x509.ExtKeyUsageClientAuth},
	}
	for _, san := range append([]string{cn}, sans...) {
		if ip := net.ParseIP(san); ip != nil {
			tpl.IPAddresses = append(tpl.IPAddresses, ip)
		} else if san != "" {
			tpl.DNSNames = append(tpl.DNSNames, san)
		}
	}
	der, err := x509.CreateCertificate(rand.Reader, tpl, ca.cert, &key.PublicKey, ca.key)
	if err != nil {
		return nil, nil, err
	}
	keyPEM, err = keyToPEM(key)
	if err != nil {
		return nil, nil, err
	}
	return certToPEM(der), keyPEM, nil
}

func caPool(caPEM []byte) (*x509.CertPool, error) {
	pool := x509.NewCertPool()
	if !pool.AppendCertsFromPEM(caPEM) {
		return nil, errors.New("pki: no CA certificate in PEM")
	}
	return pool, nil
}

// ServerConfig builds the control daemon's TLS side: present the host
// cert, require and verify a client certificate from the same CA.
// Plaintext and unauthenticated clients fail the handshake.
func ServerConfig(certPEM, keyPEM, caPEM []byte) (*tls.Config, error) {
	cert, err := tls.X509KeyPair(certPEM, keyPEM)
	if err != nil {
		return nil, err
	}
	pool, err := caPool(caPEM)
	if err != nil {
		return nil, err
	}
	return &tls.Config{
		Certificates: []tls.Certificate{cert},
		ClientCAs:    pool,
		ClientAuth:   tls.RequireAndVerifyClientCert,
		MinVersion:   tls.VersionTLS13,
	}, nil
}

// ClientConfig builds the control client's TLS side: present the host
// cert, verify the server against the CA. serverName overrides SNI
// verification when the dial address differs from the cert identity
// (empty uses the dialed host).
func ClientConfig(certPEM, keyPEM, caPEM []byte, serverName string) (*tls.Config, error) {
	cert, err := tls.X509KeyPair(certPEM, keyPEM)
	if err != nil {
		return nil, err
	}
	pool, err := caPool(caPEM)
	if err != nil {
		return nil, err
	}
	return &tls.Config{
		Certificates: []tls.Certificate{cert},
		RootCAs:      pool,
		ServerName:   serverName,
		MinVersion:   tls.VersionTLS13,
	}, nil
}

// LoadServerConfig is ServerConfig over files (vnetpd's
// -control-tls-cert/-key/-ca flags).
func LoadServerConfig(certFile, keyFile, caFile string) (*tls.Config, error) {
	certPEM, keyPEM, caPEM, err := readTriple(certFile, keyFile, caFile)
	if err != nil {
		return nil, err
	}
	return ServerConfig(certPEM, keyPEM, caPEM)
}

// LoadClientConfig is ClientConfig over files (vnetctl's
// -tls-cert/-key/-ca flags).
func LoadClientConfig(certFile, keyFile, caFile, serverName string) (*tls.Config, error) {
	certPEM, keyPEM, caPEM, err := readTriple(certFile, keyFile, caFile)
	if err != nil {
		return nil, err
	}
	return ClientConfig(certPEM, keyPEM, caPEM, serverName)
}

func readTriple(certFile, keyFile, caFile string) (certPEM, keyPEM, caPEM []byte, err error) {
	if certPEM, err = os.ReadFile(certFile); err != nil {
		return nil, nil, nil, err
	}
	if keyPEM, err = os.ReadFile(keyFile); err != nil {
		return nil, nil, nil, err
	}
	if caPEM, err = os.ReadFile(caFile); err != nil {
		return nil, nil, nil, err
	}
	return certPEM, keyPEM, caPEM, nil
}

// Keygen populates dir with the trust domain's material: ca.pem and
// ca-key.pem (created once, reused on later runs so hosts can be added
// incrementally) plus <host>.pem / <host>-key.pem per host. Key files
// are written mode 0600. Returns the files written this run.
func Keygen(dir, caCN string, hosts []string) ([]string, error) {
	if len(hosts) == 0 {
		return nil, errors.New("pki: keygen needs at least one host")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	caCert := filepath.Join(dir, "ca.pem")
	caKey := filepath.Join(dir, "ca-key.pem")
	var ca *CA
	var written []string
	certPEM, certErr := os.ReadFile(caCert)
	keyPEM, keyErr := os.ReadFile(caKey)
	switch {
	case certErr == nil && keyErr == nil:
		var err error
		if ca, err = LoadCA(certPEM, keyPEM); err != nil {
			return nil, fmt.Errorf("pki: existing CA in %s: %w", dir, err)
		}
	case os.IsNotExist(certErr) && os.IsNotExist(keyErr):
		var err error
		if ca, err = NewCA(caCN); err != nil {
			return nil, err
		}
		kp, err := ca.KeyPEM()
		if err != nil {
			return nil, err
		}
		if err := os.WriteFile(caCert, ca.CertPEM, 0o644); err != nil {
			return nil, err
		}
		if err := os.WriteFile(caKey, kp, 0o600); err != nil {
			return nil, err
		}
		written = append(written, caCert, caKey)
	default:
		return nil, fmt.Errorf("pki: %s holds half a CA (cert and key must both exist or neither)", dir)
	}
	for _, host := range hosts {
		cert, key, err := ca.IssueHost(host, []string{"localhost", "127.0.0.1", "::1"})
		if err != nil {
			return nil, err
		}
		certFile := filepath.Join(dir, host+".pem")
		keyFile := filepath.Join(dir, host+"-key.pem")
		if err := os.WriteFile(certFile, cert, 0o644); err != nil {
			return nil, err
		}
		if err := os.WriteFile(keyFile, key, 0o600); err != nil {
			return nil, err
		}
		written = append(written, certFile, keyFile)
	}
	return written, nil
}
