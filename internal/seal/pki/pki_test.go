package pki

import (
	"crypto/tls"
	"net"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestIssueAndMutualTLS(t *testing.T) {
	ca, err := NewCA("vnetp-test")
	if err != nil {
		t.Fatalf("NewCA: %v", err)
	}
	srvCert, srvKey, err := ca.IssueHost("alpha", []string{"localhost", "127.0.0.1"})
	if err != nil {
		t.Fatalf("IssueHost(alpha): %v", err)
	}
	cliCert, cliKey, err := ca.IssueHost("beta", nil)
	if err != nil {
		t.Fatalf("IssueHost(beta): %v", err)
	}
	srvCfg, err := ServerConfig(srvCert, srvKey, ca.CertPEM)
	if err != nil {
		t.Fatalf("ServerConfig: %v", err)
	}
	cliCfg, err := ClientConfig(cliCert, cliKey, ca.CertPEM, "alpha")
	if err != nil {
		t.Fatalf("ClientConfig: %v", err)
	}

	ln, err := tls.Listen("tcp", "127.0.0.1:0", srvCfg)
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	defer ln.Close()
	done := make(chan error, 1)
	go func() {
		c, err := ln.Accept()
		if err != nil {
			done <- err
			return
		}
		defer c.Close()
		buf := make([]byte, 4)
		if _, err := c.Read(buf); err != nil {
			done <- err
			return
		}
		_, err = c.Write(buf)
		done <- err
	}()
	conn, err := tls.Dial("tcp", ln.Addr().String(), cliCfg)
	if err != nil {
		t.Fatalf("mTLS dial: %v", err)
	}
	if _, err := conn.Write([]byte("ping")); err != nil {
		t.Fatalf("write: %v", err)
	}
	buf := make([]byte, 4)
	if _, err := conn.Read(buf); err != nil {
		t.Fatalf("read: %v", err)
	}
	conn.Close()
	if err := <-done; err != nil {
		t.Fatalf("server side: %v", err)
	}
}

func TestServerRefusesPlaintextAndNoClientCert(t *testing.T) {
	ca, _ := NewCA("vnetp-test")
	srvCert, srvKey, _ := ca.IssueHost("alpha", []string{"127.0.0.1"})
	srvCfg, err := ServerConfig(srvCert, srvKey, ca.CertPEM)
	if err != nil {
		t.Fatalf("ServerConfig: %v", err)
	}
	ln, err := tls.Listen("tcp", "127.0.0.1:0", srvCfg)
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	defer ln.Close()
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				defer c.Close()
				buf := make([]byte, 16)
				c.Read(buf)
				c.Write([]byte("should not leak"))
			}(c)
		}
	}()

	// Plaintext client: writing succeeds into the handshake buffer, but
	// no application bytes ever come back.
	pc, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatalf("plaintext dial: %v", err)
	}
	pc.Write([]byte("LIST STATS\n"))
	buf := make([]byte, 16)
	n, rerr := pc.Read(buf)
	pc.Close()
	if rerr == nil && strings.Contains(string(buf[:n]), "leak") {
		t.Fatal("plaintext client received application data from mTLS server")
	}

	// TLS client without a certificate: handshake (or first read, with
	// TLS 1.3's deferred alert) must fail.
	pool := ca.CertPEM
	noCert, err := ClientConfig(nil, nil, pool, "alpha")
	if err == nil {
		t.Fatal("ClientConfig accepted empty cert pair")
	}
	_ = noCert
	rootPool, err := caPool(pool)
	if err != nil {
		t.Fatalf("caPool: %v", err)
	}
	conn, err := tls.Dial("tcp", ln.Addr().String(), &tls.Config{RootCAs: rootPool, ServerName: "alpha", MinVersion: tls.VersionTLS13})
	if err == nil {
		conn.Write([]byte("LIST STATS\n"))
		rb := make([]byte, 16)
		if _, rerr := conn.Read(rb); rerr == nil {
			t.Fatal("certless client completed an application exchange")
		}
		conn.Close()
	}
}

func TestKeygenWritesAndReusesCA(t *testing.T) {
	dir := t.TempDir()
	files, err := Keygen(dir, "vnetp-test", []string{"alpha", "beta"})
	if err != nil {
		t.Fatalf("Keygen: %v", err)
	}
	if len(files) != 6 { // ca.pem, ca-key.pem, 2×(cert,key)
		t.Fatalf("wrote %d files, want 6: %v", len(files), files)
	}
	for _, f := range files {
		st, err := os.Stat(f)
		if err != nil {
			t.Fatalf("stat %s: %v", f, err)
		}
		if strings.Contains(f, "-key") && st.Mode().Perm() != 0o600 {
			t.Fatalf("%s mode %o, want 0600", f, st.Mode().Perm())
		}
	}
	caBefore, _ := os.ReadFile(filepath.Join(dir, "ca.pem"))

	// Second run adds a host under the SAME CA.
	files2, err := Keygen(dir, "vnetp-test", []string{"gamma"})
	if err != nil {
		t.Fatalf("Keygen reuse: %v", err)
	}
	if len(files2) != 2 {
		t.Fatalf("reuse wrote %d files, want 2: %v", len(files2), files2)
	}
	caAfter, _ := os.ReadFile(filepath.Join(dir, "ca.pem"))
	if string(caBefore) != string(caAfter) {
		t.Fatal("Keygen replaced the existing CA")
	}

	// Material from both runs interoperates.
	srvCfg, err := LoadServerConfig(filepath.Join(dir, "alpha.pem"), filepath.Join(dir, "alpha-key.pem"), filepath.Join(dir, "ca.pem"))
	if err != nil {
		t.Fatalf("LoadServerConfig: %v", err)
	}
	cliCfg, err := LoadClientConfig(filepath.Join(dir, "gamma.pem"), filepath.Join(dir, "gamma-key.pem"), filepath.Join(dir, "ca.pem"), "alpha")
	if err != nil {
		t.Fatalf("LoadClientConfig: %v", err)
	}
	ln, err := tls.Listen("tcp", "127.0.0.1:0", srvCfg)
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	defer ln.Close()
	go func() {
		c, err := ln.Accept()
		if err != nil {
			return
		}
		buf := make([]byte, 2)
		c.Read(buf)
		c.Write(buf)
		c.Close()
	}()
	conn, err := tls.Dial("tcp", ln.Addr().String(), cliCfg)
	if err != nil {
		t.Fatalf("cross-run mTLS dial: %v", err)
	}
	conn.Write([]byte("ok"))
	buf := make([]byte, 2)
	if _, err := conn.Read(buf); err != nil {
		t.Fatalf("cross-run read: %v", err)
	}
	conn.Close()

	// Half a CA on disk is an error, not a silent regeneration.
	os.Remove(filepath.Join(dir, "ca-key.pem"))
	if _, err := Keygen(dir, "vnetp-test", []string{"delta"}); err == nil {
		t.Fatal("Keygen accepted a directory with half a CA")
	}
}
