// Package seal provides the overlay's per-link AEAD layer: AES-256-GCM
// over stdlib crypto only, with per-direction subkeys and counter-based
// nonces, so encapsulated frames crossing untrusted networks are
// confidential, authenticated, and replay-protected. A Keyring holds one
// master key per tenant; each datagram is sealed under a subkey derived
// from (tenant master, sending node's 16-bit origin), which gives every
// (tenant, direction) pair an independent key stream without any
// handshake — key distribution is the control plane's ADD TENANT verb.
//
// Nonce shape reuses the trace-ID convention (origin16 << 48 | seq48):
// the high 16 bits name the sealing node, the low 48 bits are a
// monotonic counter started at a random offset, so the receiver can
// derive the correct per-direction subkey from the nonce alone and run
// an IPsec-style sliding replay window per (tenant, origin). The full
// 96-bit GCM nonce is tenantID(4) || nonce8(8) — a nonce authenticated
// into the ciphertext can never be replayed into another tenant.
//
// Everything fails closed: unknown tenant, authentication failure,
// replayed or out-of-window nonce, and truncated ciphertext all reject
// the datagram with a typed reason the datapath counts
// (vnetp_seal_reject_total{reason=...}).
//
// Known limitation: the origin is a 16-bit hash of the node name. Two
// node names colliding within one tenant would share a subkey and could
// collide nonces (the random counter offsets make that improbable but
// not impossible) — deployments should keep node names distinct and
// tenant membership small, or rotate the tenant key when renaming nodes.
package seal

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

const (
	// KeyLen is the tenant master key size in bytes (AES-256).
	KeyLen = 32
	// Overhead is the ciphertext expansion per sealed payload (GCM tag).
	Overhead = 16
	// NonceLen is the GCM nonce size: tenantID(4) || wire nonce(8).
	NonceLen = 12

	// seqMask keeps the counter inside the nonce's 48-bit field.
	seqMask = (uint64(1) << 48) - 1
	// seqStartMask bounds the random initial counter offset to 46 bits,
	// leaving at least 2^47 sends before the 48-bit counter could wrap.
	seqStartMask = (uint64(1) << 46) - 1

	// windowSize is the replay window span per (tenant, origin): a nonce
	// more than windowSize-1 behind the highest seen is rejected even if
	// never delivered, bounding receiver state like IPsec's ESP window.
	windowSize = 64

	// subkeyLabel domain-separates the per-direction key derivation.
	subkeyLabel = "vnetp-seal-v1"
)

// Reject reasons, the label values of vnetp_seal_reject_total. The set
// is fixed so the datapath can pre-register every child counter.
const (
	RejectUnknownTenant = "unknown_tenant"
	RejectAuth          = "auth"
	RejectReplay        = "replay"
	RejectTruncated     = "truncated"
)

// RejectReasons lists every reject reason Open can report.
var RejectReasons = []string{RejectUnknownTenant, RejectAuth, RejectReplay, RejectTruncated}

// RejectError is a fail-closed Open refusal carrying its typed reason.
type RejectError struct{ Reason string }

func (e *RejectError) Error() string { return "seal: rejected: " + e.Reason }

func reject(reason string) error { return &RejectError{Reason: reason} }

// RejectReasonOf extracts a reject reason from an Open error ("error"
// for anything that is not a RejectError).
func RejectReasonOf(err error) string {
	var re *RejectError
	if errors.As(err, &re) {
		return re.Reason
	}
	return "error"
}

// ParseKey decodes a tenant master key from its control-language hex
// form. Errors never echo the input — key material must not leak into
// logs or control responses even when malformed.
func ParseKey(s string) ([]byte, error) {
	key, err := hex.DecodeString(s)
	if err != nil || len(key) != KeyLen {
		return nil, fmt.Errorf("seal: tenant key must be %d hex characters (%d bytes)", KeyLen*2, KeyLen)
	}
	return key, nil
}

// NewKey generates a fresh random tenant master key.
func NewKey() ([]byte, error) {
	key := make([]byte, KeyLen)
	if _, err := rand.Read(key); err != nil {
		return nil, err
	}
	return key, nil
}

// Fingerprint renders key material as a short non-reversible identifier
// (first 4 bytes of SHA-256, hex) — the only form keys ever take in
// logs, LIST TENANTS output, and error messages.
func Fingerprint(key []byte) string {
	sum := sha256.Sum256(key)
	return hex.EncodeToString(sum[:4])
}

// subkey derives the per-direction AEAD key for datagrams sealed by the
// node with the given origin: HMAC-SHA256(master, label || origin16be).
func subkey(master []byte, origin uint16) []byte {
	mac := hmac.New(sha256.New, master)
	mac.Write([]byte(subkeyLabel))
	var o [2]byte
	binary.BigEndian.PutUint16(o[:], origin)
	mac.Write(o[:])
	return mac.Sum(nil)
}

func newAEAD(key []byte) (cipher.AEAD, error) {
	block, err := aes.NewCipher(key)
	if err != nil {
		return nil, err
	}
	return cipher.NewGCM(block)
}

// replayWindow is a sliding anti-replay bitmap over the 48-bit sequence
// space: bit d marks sequence top-d as seen. Commit after a successful
// authentication only — an attacker must not be able to burn window
// slots with forged nonces.
type replayWindow struct {
	top    uint64
	bitmap uint64
	seeded bool
}

// check reports whether seq could still be accepted (not yet seen and
// not behind the window). A pre-decrypt gate: cheap rejection of exact
// replays before any AES work.
func (w *replayWindow) check(seq uint64) bool {
	if !w.seeded || seq > w.top {
		return true
	}
	d := w.top - seq
	return d < windowSize && w.bitmap&(1<<d) == 0
}

// commit marks seq as seen, reporting false if it lost a race with a
// duplicate or fell behind the window since check.
func (w *replayWindow) commit(seq uint64) bool {
	if !w.seeded {
		w.seeded = true
		w.top = seq
		w.bitmap = 1
		return true
	}
	if seq > w.top {
		if shift := seq - w.top; shift >= windowSize {
			w.bitmap = 0
		} else {
			w.bitmap <<= shift
		}
		w.top = seq
		w.bitmap |= 1
		return true
	}
	d := w.top - seq
	if d >= windowSize || w.bitmap&(1<<d) != 0 {
		return false
	}
	w.bitmap |= 1 << d
	return true
}

// recvState is one remote origin's receive half within a tenant: its
// derived AEAD and its replay window.
type recvState struct {
	aead cipher.AEAD
	win  replayWindow
}

// tenant is one tenant's key state: the master key (never logged), its
// fingerprint, the send AEAD under this node's own origin, and the
// per-remote-origin receive states built on demand.
type tenant struct {
	master [KeyLen]byte
	fp     string
	send   cipher.AEAD

	mu   sync.Mutex
	recv map[uint16]*recvState
}

// Keyring is a node's tenant key store and nonce source. Safe for
// concurrent use by every dispatcher and TX sender.
type Keyring struct {
	origin uint16
	seq    atomic.Uint64

	mu      sync.RWMutex
	tenants map[uint32]*tenant
}

// NewKeyring returns a keyring sealing as origin. The nonce counter
// starts at a random 46-bit offset so two nodes whose names hash to the
// same origin do not start identical nonce streams.
func NewKeyring(origin uint16) *Keyring {
	k := &Keyring{origin: origin, tenants: make(map[uint32]*tenant)}
	var b [8]byte
	if _, err := rand.Read(b[:]); err == nil {
		k.seq.Store(binary.BigEndian.Uint64(b[:]) & seqStartMask)
	}
	return k
}

// Origin reports the keyring's 16-bit sealing identity.
func (k *Keyring) Origin() uint16 { return k.origin }

// AddTenant installs (or rotates) a tenant's master key. Tenant 0 is
// reserved for the default plaintext namespace. Rotation resets the
// tenant's receive states: datagrams sealed under the old key reject.
func (k *Keyring) AddTenant(id uint32, key []byte) error {
	if id == 0 {
		return errors.New("seal: tenant 0 is the default plaintext namespace")
	}
	if len(key) != KeyLen {
		return fmt.Errorf("seal: tenant key must be %d bytes", KeyLen)
	}
	send, err := newAEAD(subkey(key, k.origin))
	if err != nil {
		return err
	}
	t := &tenant{fp: Fingerprint(key), send: send, recv: make(map[uint16]*recvState)}
	copy(t.master[:], key)
	k.mu.Lock()
	k.tenants[id] = t
	k.mu.Unlock()
	return nil
}

// Count reports how many tenants hold keys (the vnetp_tenants gauge).
func (k *Keyring) Count() int {
	k.mu.RLock()
	defer k.mu.RUnlock()
	return len(k.tenants)
}

// TenantInfo is one tenant's public description: no key material, only
// the fingerprint and how many remote origins have been heard from.
type TenantInfo struct {
	ID          uint32
	Fingerprint string
	Origins     int
}

// Tenants snapshots the configured tenants, sorted by ID.
func (k *Keyring) Tenants() []TenantInfo {
	k.mu.RLock()
	out := make([]TenantInfo, 0, len(k.tenants))
	for id, t := range k.tenants {
		t.mu.Lock()
		n := len(t.recv)
		t.mu.Unlock()
		out = append(out, TenantInfo{ID: id, Fingerprint: t.fp, Origins: n})
	}
	k.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Sealer returns the send-side sealer for a tenant, failing closed on an
// unknown tenant (a link must not silently fall back to plaintext).
func (k *Keyring) Sealer(tenantID uint32) (*Sealer, error) {
	k.mu.RLock()
	t := k.tenants[tenantID]
	k.mu.RUnlock()
	if t == nil {
		return nil, fmt.Errorf("seal: unknown tenant %d", tenantID)
	}
	return &Sealer{kr: k, tenantID: tenantID, aead: t.send}, nil
}

// Sealer seals datagrams for one tenant under this node's origin subkey.
// It implements the bridge encoder's LinkSealer contract.
type Sealer struct {
	kr       *Keyring
	tenantID uint32
	aead     cipher.AEAD
}

// Tenant reports the tenant the sealer encrypts for.
func (s *Sealer) Tenant() uint32 { return s.tenantID }

// NextNonce draws the next wire nonce: origin16 << 48 | seq48.
func (s *Sealer) NextNonce() uint64 {
	return uint64(s.kr.origin)<<48 | (s.kr.seq.Add(1) & seqMask)
}

// Seal encrypts plaintext in place under nonce with additional as
// associated data, returning ciphertext || tag. The result reuses
// plaintext's storage (dst = plaintext[:0]); the caller must provide
// Overhead bytes of spare capacity or Seal reallocates.
func (s *Sealer) Seal(nonce uint64, additional, plaintext []byte) []byte {
	var nb [NonceLen]byte
	binary.BigEndian.PutUint32(nb[:4], s.tenantID)
	binary.BigEndian.PutUint64(nb[4:], nonce)
	return s.aead.Seal(plaintext[:0], nb[:], plaintext, additional)
}

// Open authenticates and decrypts one sealed payload in place (the
// returned plaintext reuses ct's storage). additional must be the exact
// wire header the sealer authenticated. Every failure is a RejectError;
// the replay window advances only on success, so forged datagrams
// cannot desynchronize a live stream.
func (k *Keyring) Open(tenantID uint32, nonce uint64, additional, ct []byte) ([]byte, error) {
	if len(ct) < Overhead {
		return nil, reject(RejectTruncated)
	}
	k.mu.RLock()
	t := k.tenants[tenantID]
	k.mu.RUnlock()
	if t == nil {
		return nil, reject(RejectUnknownTenant)
	}
	origin := uint16(nonce >> 48)
	seq := nonce & seqMask
	t.mu.Lock()
	rs := t.recv[origin]
	if rs == nil {
		aead, err := newAEAD(subkey(t.master[:], origin))
		if err != nil {
			t.mu.Unlock()
			return nil, reject(RejectAuth)
		}
		rs = &recvState{aead: aead}
		t.recv[origin] = rs
	}
	if !rs.win.check(seq) {
		t.mu.Unlock()
		return nil, reject(RejectReplay)
	}
	aead := rs.aead
	t.mu.Unlock()

	var nb [NonceLen]byte
	binary.BigEndian.PutUint32(nb[:4], tenantID)
	binary.BigEndian.PutUint64(nb[4:], nonce)
	pt, err := aead.Open(ct[:0], nb[:], ct, additional)
	if err != nil {
		return nil, reject(RejectAuth)
	}

	t.mu.Lock()
	ok := rs.win.commit(seq)
	t.mu.Unlock()
	if !ok {
		return nil, reject(RejectReplay)
	}
	return pt, nil
}
