package seal

import (
	"bytes"
	"strings"
	"testing"
)

func testKey(b byte) []byte {
	key := make([]byte, KeyLen)
	for i := range key {
		key[i] = b
	}
	return key
}

// pad returns pt with Overhead bytes of spare capacity, as the pooled
// encapsulation buffers guarantee on the real path.
func pad(pt []byte) []byte {
	buf := make([]byte, len(pt), len(pt)+Overhead)
	copy(buf, pt)
	return buf
}

func mustKeyring(t *testing.T, origin uint16, tenants ...uint32) *Keyring {
	t.Helper()
	k := NewKeyring(origin)
	for _, id := range tenants {
		if err := k.AddTenant(id, testKey(byte(id))); err != nil {
			t.Fatalf("AddTenant(%d): %v", id, err)
		}
	}
	return k
}

func TestSealOpenRoundTrip(t *testing.T) {
	a := mustKeyring(t, 0x0a0a, 7)
	b := mustKeyring(t, 0x0b0b, 7)
	s, err := a.Sealer(7)
	if err != nil {
		t.Fatalf("Sealer: %v", err)
	}
	aad := []byte("header bytes")
	for _, msg := range []string{"", "x", "hello overlay", strings.Repeat("jumbo", 4000)} {
		nonce := s.NextNonce()
		ct := s.Seal(nonce, aad, pad([]byte(msg)))
		if len(ct) != len(msg)+Overhead {
			t.Fatalf("ciphertext length %d, want %d", len(ct), len(msg)+Overhead)
		}
		pt, err := b.Open(7, nonce, aad, ct)
		if err != nil {
			t.Fatalf("Open: %v", err)
		}
		if string(pt) != msg {
			t.Fatalf("round trip: got %q want %q", pt, msg)
		}
	}
}

func TestSealInPlace(t *testing.T) {
	a := mustKeyring(t, 1, 1)
	s, _ := a.Sealer(1)
	buf := pad([]byte("in place"))
	ct := s.Seal(s.NextNonce(), nil, buf)
	if &ct[0] != &buf[0] {
		t.Fatal("Seal reallocated despite spare capacity")
	}
}

func rejectReason(t *testing.T, err error) string {
	t.Helper()
	if err == nil {
		t.Fatal("expected a reject, got success")
	}
	re, ok := err.(*RejectError)
	if !ok {
		t.Fatalf("expected RejectError, got %T: %v", err, err)
	}
	return re.Reason
}

func TestOpenRejects(t *testing.T) {
	a := mustKeyring(t, 0x0a0a, 7)
	b := mustKeyring(t, 0x0b0b, 7, 9)
	s, _ := a.Sealer(7)
	aad := []byte("hdr")
	nonce := s.NextNonce()
	ct := s.Seal(nonce, aad, pad([]byte("payload")))
	keep := append([]byte(nil), ct...)

	// Unknown tenant.
	if r := rejectReason(t, errOf(b.Open(99, nonce, aad, clone(keep)))); r != RejectUnknownTenant {
		t.Fatalf("unknown tenant: reason %q", r)
	}
	// Wrong tenant (key exists, but this nonce/key stream is tenant 7's).
	if r := rejectReason(t, errOf(b.Open(9, nonce, aad, clone(keep)))); r != RejectAuth {
		t.Fatalf("wrong tenant: reason %q", r)
	}
	// Truncated ciphertext (shorter than the tag).
	if r := rejectReason(t, errOf(b.Open(7, nonce, aad, clone(keep[:Overhead-1])))); r != RejectTruncated {
		t.Fatalf("truncated: reason %q", r)
	}
	// Flipped ciphertext bit.
	bad := clone(keep)
	bad[0] ^= 0x80
	if r := rejectReason(t, errOf(b.Open(7, nonce, aad, bad))); r != RejectAuth {
		t.Fatalf("tampered ciphertext: reason %q", r)
	}
	// Tampered AAD.
	if r := rejectReason(t, errOf(b.Open(7, nonce, []byte("hdx"), clone(keep)))); r != RejectAuth {
		t.Fatalf("tampered aad: reason %q", r)
	}
	// Genuine open succeeds, then the same nonce replays.
	if _, err := b.Open(7, nonce, aad, clone(keep)); err != nil {
		t.Fatalf("genuine open: %v", err)
	}
	if r := rejectReason(t, errOf(b.Open(7, nonce, aad, clone(keep)))); r != RejectReplay {
		t.Fatalf("replay: reason %q", r)
	}
	// A failed auth must not advance the window: the next genuine nonce
	// still opens.
	n2 := s.NextNonce()
	c2 := s.Seal(n2, aad, pad([]byte("payload")))
	if _, err := b.Open(7, n2, aad, c2); err != nil {
		t.Fatalf("open after rejects: %v", err)
	}
}

func errOf(_ []byte, err error) error { return err }

func clone(b []byte) []byte { return append([]byte(nil), b...) }

func TestReplayWindowReordering(t *testing.T) {
	a := mustKeyring(t, 0x0a0a, 1)
	b := mustKeyring(t, 0x0b0b, 1)
	s, _ := a.Sealer(1)
	type sealed struct {
		nonce uint64
		ct    []byte
	}
	var msgs []sealed
	for i := 0; i < 10; i++ {
		n := s.NextNonce()
		msgs = append(msgs, sealed{n, s.Seal(n, nil, pad([]byte{byte(i)}))})
	}
	// Deliver out of order: evens first, then odds — all must open.
	for _, i := range []int{0, 2, 4, 6, 8, 1, 3, 5, 7, 9} {
		if _, err := b.Open(1, msgs[i].nonce, nil, clone(msgs[i].ct)); err != nil {
			t.Fatalf("reordered open %d: %v", i, err)
		}
	}
	// Every replay now rejects.
	for i, m := range msgs {
		if r := rejectReason(t, errOf(b.Open(1, m.nonce, nil, clone(m.ct)))); r != RejectReplay {
			t.Fatalf("replay %d: reason %q", i, r)
		}
	}
}

func TestReplayWindowBounds(t *testing.T) {
	var w replayWindow
	if !w.commit(1000) {
		t.Fatal("first commit refused")
	}
	if w.check(1000) {
		t.Fatal("committed seq still checks")
	}
	if !w.check(1000 - windowSize + 1) {
		t.Fatal("in-window seq refused")
	}
	if w.check(1000 - windowSize) {
		t.Fatal("behind-window seq accepted")
	}
	// A far jump forward clears the bitmap but keeps rejecting the past.
	if !w.commit(1000 + 10*windowSize) {
		t.Fatal("jump commit refused")
	}
	if w.check(1000) {
		t.Fatal("pre-jump seq accepted after window advanced")
	}
}

func TestPerDirectionKeys(t *testing.T) {
	// Two nodes sealing for the same tenant use distinct subkeys: node
	// B cannot open its own output as if it came from node A.
	a := mustKeyring(t, 0x0a0a, 1)
	b := mustKeyring(t, 0x0b0b, 1)
	sb, _ := b.Sealer(1)
	nonce := sb.NextNonce()
	ct := sb.Seal(nonce, nil, pad([]byte("from b")))
	// Genuine direction works.
	if _, err := a.Open(1, nonce, nil, clone(ct)); err != nil {
		t.Fatalf("a<-b open: %v", err)
	}
	// Forging the origin field re-derives a different subkey: reject.
	forged := nonce&seqMask | uint64(0x0a0a)<<48
	if r := rejectReason(t, errOf(b.Open(1, forged, nil, clone(ct)))); r != RejectAuth {
		t.Fatalf("forged origin: reason %q", r)
	}
}

func TestKeyringHygiene(t *testing.T) {
	key := testKey(0x42)
	k := mustKeyring(t, 1)
	if err := k.AddTenant(0, key); err == nil {
		t.Fatal("tenant 0 accepted")
	}
	if err := k.AddTenant(1, key[:16]); err == nil {
		t.Fatal("short key accepted")
	}
	if err := k.AddTenant(1, key); err != nil {
		t.Fatalf("AddTenant: %v", err)
	}
	infos := k.Tenants()
	if len(infos) != 1 || infos[0].ID != 1 {
		t.Fatalf("Tenants: %+v", infos)
	}
	if infos[0].Fingerprint != Fingerprint(key) {
		t.Fatalf("fingerprint mismatch: %q", infos[0].Fingerprint)
	}
	if len(infos[0].Fingerprint) != 8 {
		t.Fatalf("fingerprint length %d, want 8", len(infos[0].Fingerprint))
	}
	if k.Count() != 1 {
		t.Fatalf("Count: %d", k.Count())
	}
}

func TestParseKey(t *testing.T) {
	hex64 := strings.Repeat("ab", KeyLen)
	key, err := ParseKey(hex64)
	if err != nil {
		t.Fatalf("ParseKey: %v", err)
	}
	if len(key) != KeyLen {
		t.Fatalf("key length %d", len(key))
	}
	for _, bad := range []string{"", "zz", hex64[:10], hex64 + "ff", "not hex at all"} {
		if _, err := ParseKey(bad); err == nil {
			t.Fatalf("ParseKey(%q) accepted", bad)
		} else if len(bad) > 4 && strings.Contains(err.Error(), bad) {
			t.Fatalf("ParseKey error echoes the input: %v", err)
		}
	}
}

func TestKeyRotationResetsReceiveState(t *testing.T) {
	a := mustKeyring(t, 0x0a0a, 1)
	b := mustKeyring(t, 0x0b0b, 1)
	s, _ := a.Sealer(1)
	nonce := s.NextNonce()
	ct := s.Seal(nonce, nil, pad([]byte("old key")))
	keep := clone(ct)
	if _, err := b.Open(1, nonce, nil, ct); err != nil {
		t.Fatalf("open under old key: %v", err)
	}
	if err := b.AddTenant(1, testKey(0x99)); err != nil {
		t.Fatalf("rotate: %v", err)
	}
	if r := rejectReason(t, errOf(b.Open(1, nonce, nil, keep))); r != RejectAuth {
		t.Fatalf("old-key datagram after rotation: reason %q", r)
	}
}

func TestNewKeyAndNonceUniqueness(t *testing.T) {
	k1, err := NewKey()
	if err != nil {
		t.Fatalf("NewKey: %v", err)
	}
	k2, _ := NewKey()
	if bytes.Equal(k1, k2) {
		t.Fatal("two NewKey results identical")
	}
	kr := mustKeyring(t, 3, 1)
	s, _ := kr.Sealer(1)
	seen := make(map[uint64]bool)
	for i := 0; i < 10000; i++ {
		n := s.NextNonce()
		if uint16(n>>48) != 3 {
			t.Fatalf("nonce origin %04x, want 0003", uint16(n>>48))
		}
		if seen[n] {
			t.Fatalf("duplicate nonce %016x", n)
		}
		seen[n] = true
	}
}
