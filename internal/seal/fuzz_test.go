package seal

import (
	"bytes"
	"encoding/binary"
	"testing"
)

// FuzzSealOpen pins the seal layer's fail-closed contract under
// adversarial inputs: a seal/open round trip is the identity; flipped
// ciphertext bits, truncations, wrong tenant IDs, and replayed nonces
// all reject with a typed RejectError and never return partial
// plaintext; and Open never panics on arbitrary garbage.
func FuzzSealOpen(f *testing.F) {
	f.Add([]byte("inner ethernet frame bytes"), []byte("VN\x02\x10hdr"), uint16(3), uint8(4), uint8(0))
	f.Add([]byte{}, []byte{}, uint16(0), uint8(0), uint8(1))
	f.Add([]byte("x"), []byte("aad"), uint16(128), uint8(16), uint8(2))
	f.Add(bytes.Repeat([]byte{0xaa}, 1500), []byte("jumbo"), uint16(900), uint8(1), uint8(3))
	key7 := testKey(7)
	key9 := testKey(9)
	f.Fuzz(func(t *testing.T, payload, aad []byte, flip uint16, cut, mode uint8) {
		sender := NewKeyring(0x0a0a)
		if err := sender.AddTenant(7, key7); err != nil {
			t.Fatal(err)
		}
		recv := func() *Keyring {
			k := NewKeyring(0x0b0b)
			k.AddTenant(7, key7)
			k.AddTenant(9, key9)
			return k
		}
		s, err := sender.Sealer(7)
		if err != nil {
			t.Fatal(err)
		}
		nonce := s.NextNonce()
		ct := s.Seal(nonce, aad, pad(clone(payload)))
		if len(ct) != len(payload)+Overhead {
			t.Fatalf("ciphertext length %d, want %d", len(ct), len(payload)+Overhead)
		}

		// Round-trip identity, then the same nonce must reject as a replay.
		b := recv()
		pt, err := b.Open(7, nonce, aad, clone(ct))
		if err != nil {
			t.Fatalf("genuine open: %v", err)
		}
		if !bytes.Equal(pt, payload) {
			t.Fatalf("round trip mismatch: %x != %x", pt, payload)
		}
		if _, err := b.Open(7, nonce, aad, clone(ct)); RejectReasonOf(err) != RejectReplay {
			t.Fatalf("replayed nonce: got %v, want replay reject", err)
		}

		// One flipped bit anywhere in ciphertext or tag fails closed.
		bad := clone(ct)
		bad[int(flip)%len(bad)] ^= 1 << (flip % 8)
		if !bytes.Equal(bad, ct) { // flipping bit twice onto itself cannot happen, but stay exact
			if _, err := recv().Open(7, nonce, aad, bad); RejectReasonOf(err) != RejectAuth {
				t.Fatalf("tampered ciphertext: got %v, want auth reject", err)
			}
		}

		// Any truncation fails closed (shorter than a tag: truncated;
		// otherwise the tag no longer matches: auth).
		if n := int(cut) % (len(ct) + 1); n < len(ct) {
			_, err := recv().Open(7, nonce, aad, clone(ct[:n]))
			if r := RejectReasonOf(err); r != RejectTruncated && r != RejectAuth {
				t.Fatalf("truncated to %d: got %v", n, err)
			}
		}

		// Wrong tenant: a configured-but-different key rejects as auth, an
		// unconfigured ID as unknown_tenant. Never plaintext either way.
		if _, err := recv().Open(9, nonce, aad, clone(ct)); RejectReasonOf(err) != RejectAuth {
			t.Fatalf("wrong tenant key: got %v, want auth reject", err)
		}
		if _, err := recv().Open(uint32(flip)+100, nonce, aad, clone(ct)); RejectReasonOf(err) != RejectUnknownTenant {
			t.Fatalf("unknown tenant: got %v, want unknown_tenant reject", err)
		}

		// Garbage in, no panic out: arbitrary bytes as ciphertext with an
		// arbitrary nonce must reject (mode steers the nonce shape).
		var gn uint64
		if len(payload) >= 8 {
			gn = binary.BigEndian.Uint64(payload)
		}
		gn ^= uint64(mode) << 40
		if _, err := recv().Open(7, gn, payload, clone(aad)); err == nil && len(aad) >= Overhead {
			t.Fatalf("garbage ciphertext accepted")
		}
	})
}
