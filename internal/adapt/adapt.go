// Package adapt implements the adaptation loop the VNET model exists to
// enable (paper Sect. 3, the Virtuoso/VADAPT line of work): observe the
// application's communication through the overlay's per-flow accounting,
// identify the heavy MAC pairs, and reconfigure the overlay — adding
// direct "shortcut" links and per-MAC routes so that heavy flows stop
// transiting intermediate nodes — using only the same control-language
// operations an operator would.
package adapt

import (
	"fmt"
	"sort"

	"vnetp/internal/core"
	"vnetp/internal/ethernet"
)

// Placement says where each guest MAC currently lives.
type Placement struct {
	// HostOf maps a MAC to the overlay node (by name) hosting it.
	HostOf map[ethernet.MAC]string
	// AddrOf maps a node name to its encapsulation address.
	AddrOf map[string]string
}

// Shortcut is one planned topology change: a direct link between two
// nodes plus the routes steering the flow's MACs onto it.
type Shortcut struct {
	// A and B are the node names to connect directly.
	A, B string
	// AMACs/BMACs are the guest MACs at each end whose routes move onto
	// the new link.
	AMACs, BMACs []ethernet.MAC
	// Bytes is the observed volume motivating the shortcut.
	Bytes uint64
}

// linkID names a shortcut link deterministically.
func linkID(to string) string { return "adapt-to-" + to }

// Plan inspects the merged flow observations and proposes up to maxNew
// shortcuts for the heaviest inter-node flows that lack a direct link.
// hasLink reports whether a direct link already exists between two nodes
// (in either direction).
func Plan(flows []core.Flow, pl Placement, hasLink func(a, b string) bool, maxNew int) []Shortcut {
	// Aggregate flow volume per unordered node pair.
	type pairKey struct{ a, b string }
	type pairAgg struct {
		bytes uint64
		aMACs map[ethernet.MAC]bool
		bMACs map[ethernet.MAC]bool
	}
	pairs := make(map[pairKey]*pairAgg)
	for _, f := range flows {
		ha, okA := pl.HostOf[f.Src]
		hb, okB := pl.HostOf[f.Dst]
		if !okA || !okB || ha == hb {
			continue
		}
		a, b := ha, hb
		srcAtA := true
		if b < a {
			a, b = b, a
			srcAtA = false
		}
		k := pairKey{a, b}
		agg := pairs[k]
		if agg == nil {
			agg = &pairAgg{aMACs: map[ethernet.MAC]bool{}, bMACs: map[ethernet.MAC]bool{}}
			pairs[k] = agg
		}
		agg.bytes += f.Bytes
		if srcAtA {
			agg.aMACs[f.Src] = true
			agg.bMACs[f.Dst] = true
		} else {
			agg.bMACs[f.Src] = true
			agg.aMACs[f.Dst] = true
		}
	}
	var out []Shortcut
	for k, agg := range pairs {
		if hasLink != nil && hasLink(k.a, k.b) {
			continue
		}
		out = append(out, Shortcut{
			A: k.a, B: k.b,
			AMACs: macSet(agg.aMACs), BMACs: macSet(agg.bMACs),
			Bytes: agg.bytes,
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Bytes != out[j].Bytes {
			return out[i].Bytes > out[j].Bytes
		}
		return out[i].A+out[i].B < out[j].A+out[j].B
	})
	if maxNew > 0 && len(out) > maxNew {
		out = out[:maxNew]
	}
	return out
}

func macSet(m map[ethernet.MAC]bool) []ethernet.MAC {
	out := make([]ethernet.MAC, 0, len(m))
	for mac := range m {
		out = append(out, mac)
	}
	sort.Slice(out, func(i, j int) bool {
		for k := range out[i] {
			if out[i][k] != out[j][k] {
				return out[i][k] < out[j][k]
			}
		}
		return false
	})
	return out
}

// Commands renders a shortcut as per-node control-language scripts
// (keyed by node name): the new link on each side, and route updates
// steering the peer's MACs onto it. Because VNET routing picks the most
// specific match and the old and new per-MAC routes are equally
// specific, the old route must be removed; the caller supplies
// oldRouteOf to name it (nil emits only the additions).
func Commands(sc Shortcut, pl Placement, oldRouteOf func(node string, mac ethernet.MAC) (core.Route, bool)) map[string][]string {
	out := make(map[string][]string, 2)
	emit := func(node, peer string, peerMACs []ethernet.MAC) {
		lines := []string{
			fmt.Sprintf("ADD LINK %s REMOTE %s udp", linkID(peer), pl.AddrOf[peer]),
		}
		for _, mac := range peerMACs {
			if oldRouteOf != nil {
				if r, ok := oldRouteOf(node, mac); ok {
					lines = append(lines, "DEL ROUTE "+formatRouteArgs(r))
				}
			}
			lines = append(lines, fmt.Sprintf("ADD ROUTE %s any link %s", mac, linkID(peer)))
		}
		out[node] = lines
	}
	emit(sc.A, sc.B, sc.BMACs)
	emit(sc.B, sc.A, sc.AMACs)
	return out
}

// formatRouteArgs renders a route in control-language argument order.
func formatRouteArgs(r core.Route) string {
	spec := func(m ethernet.MAC, q core.Qualifier) string {
		switch q {
		case core.QualAny:
			return "any"
		case core.QualNot:
			return "not-" + m.String()
		default:
			return m.String()
		}
	}
	kind := "interface"
	if r.Dest.Type == core.DestLink {
		kind = "link"
	}
	return fmt.Sprintf("%s %s %s %s", spec(r.DstMAC, r.DstQual), spec(r.SrcMAC, r.SrcQual), kind, r.Dest.ID)
}
