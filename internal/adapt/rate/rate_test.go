package rate

import (
	"testing"
	"time"
)

// tick feeds the controller one 5ms window at the given rate (frames/s)
// and returns whether it switched.
func tick(c *Controller, rate float64) bool {
	const w = 5 * time.Millisecond
	frames := uint64(rate * w.Seconds())
	_, switched := c.Observe(frames, w)
	return switched
}

// TestStartsInLatencyMode pins the initial operating point: an idle
// link's correct mode, the guest-driven analogue.
func TestStartsInLatencyMode(t *testing.T) {
	c := New(Config{})
	if got := c.Mode(); got != Latency {
		t.Fatalf("initial mode = %v, want Latency", got)
	}
}

// TestNoFlapInsideHysteresisBand is the core contract: any rate in
// [AlphaL, AlphaU] never causes a switch, from either mode.
func TestNoFlapInsideHysteresisBand(t *testing.T) {
	cfg := Config{AlphaL: 1e3, AlphaU: 1e4, HoldDown: time.Millisecond}
	c := New(cfg)
	for i := 0; i < 100; i++ {
		if tick(c, 5000) { // mid-band
			t.Fatalf("latency-mode switch at mid-band rate on tick %d", i)
		}
	}
	// The band edges themselves are sticky too (strict inequalities).
	if tick(c, cfg.AlphaU) {
		t.Fatal("switched at rate == AlphaU; upswitch must need rate > AlphaU")
	}
	// Drive into Throughput, then probe the band from above.
	if !tick(c, 20000) {
		t.Fatal("no upswitch above AlphaU")
	}
	if c.Mode() != Throughput {
		t.Fatalf("mode = %v after upswitch, want Throughput", c.Mode())
	}
	for i := 0; i < 100; i++ {
		if tick(c, 5000) {
			t.Fatalf("throughput-mode switch at mid-band rate on tick %d", i)
		}
	}
	if tick(c, cfg.AlphaL) {
		t.Fatal("switched at rate == AlphaL; downswitch must need rate < AlphaL")
	}
	if !tick(c, 0) {
		t.Fatal("no downswitch at idle")
	}
	if c.Mode() != Latency {
		t.Fatalf("mode = %v after downswitch, want Latency", c.Mode())
	}
}

// TestHoldDownRespected: after a switch, even a rate far across the
// opposite threshold cannot switch back until HoldDown has elapsed.
func TestHoldDownRespected(t *testing.T) {
	c := New(Config{AlphaL: 1e3, AlphaU: 1e4, HoldDown: 50 * time.Millisecond})
	if !tick(c, 1e5) {
		t.Fatal("no upswitch")
	}
	// 9 windows of 5ms = 45ms dwell: still inside the hold-down.
	for i := 0; i < 9; i++ {
		if tick(c, 0) {
			t.Fatalf("downswitch on tick %d, inside the 50ms hold-down", i)
		}
	}
	// The 10th window crosses 50ms of dwell; now the switch is allowed.
	if !tick(c, 0) {
		t.Fatal("no downswitch after the hold-down elapsed")
	}
	if c.Mode() != Latency {
		t.Fatalf("mode = %v, want Latency", c.Mode())
	}
}

// TestOscillatingRateBoundedByHoldDown: a rate alternating far across
// both thresholds every window flips at most once per hold-down period,
// not once per window.
func TestOscillatingRateBoundedByHoldDown(t *testing.T) {
	hold := 50 * time.Millisecond
	c := New(Config{AlphaL: 1e3, AlphaU: 1e4, HoldDown: hold})
	switches := 0
	const windows = 200 // 200 × 5ms = 1s of observation
	for i := 0; i < windows; i++ {
		r := 0.0
		if i%2 == 0 {
			r = 1e5
		}
		if tick(c, r) {
			switches++
		}
	}
	// 1s / 50ms hold-down = at most 20 switches.
	if max := int(time.Second / hold); switches > max {
		t.Fatalf("%d switches in 1s with a %v hold-down (max %d)", switches, hold, max)
	}
	if switches == 0 {
		t.Fatal("oscillating rate never switched at all")
	}
}

// TestPinSuspendsObserve: an operator pin holds the mode against any
// observed rate until Auto releases it.
func TestPinSuspendsObserve(t *testing.T) {
	c := New(Config{AlphaL: 1e3, AlphaU: 1e4, HoldDown: time.Millisecond})
	if changed := c.Pin(Throughput); !changed {
		t.Fatal("Pin(Throughput) from Latency reported no change")
	}
	if changed := c.Pin(Throughput); changed {
		t.Fatal("re-pinning the same mode reported a change")
	}
	for i := 0; i < 50; i++ {
		if tick(c, 0) {
			t.Fatal("pinned controller switched on observation")
		}
	}
	if c.Mode() != Throughput || !c.Pinned() {
		t.Fatalf("mode=%v pinned=%v, want Throughput/pinned", c.Mode(), c.Pinned())
	}
	c.Auto()
	if c.Pinned() {
		t.Fatal("still pinned after Auto")
	}
	// Rate-driven switching resumes (dwell was reset by the pin; pay it).
	deadline := 100
	for i := 0; i < deadline; i++ {
		if tick(c, 0) {
			if c.Mode() != Latency {
				t.Fatalf("mode = %v after idle downswitch, want Latency", c.Mode())
			}
			return
		}
	}
	t.Fatal("auto mode never resumed rate-driven switching")
}

// TestZeroElapsedIgnored: a degenerate window (clock went backwards,
// first tick after restart) must not divide by zero or switch.
func TestZeroElapsedIgnored(t *testing.T) {
	c := New(Config{AlphaL: 1e3, AlphaU: 1e4, HoldDown: time.Millisecond})
	if _, switched := c.Observe(1e9, 0); switched {
		t.Fatal("switched on a zero-elapsed window")
	}
	if _, switched := c.Observe(1e9, -time.Second); switched {
		t.Fatal("switched on a negative-elapsed window")
	}
}

// TestConfigNormalization pins the defaults and the crossed-band guard.
func TestConfigNormalization(t *testing.T) {
	var cfg Config
	cfg.normalize()
	if cfg.AlphaL != DefaultAlphaL || cfg.AlphaU != DefaultAlphaU || cfg.HoldDown != DefaultHoldDown {
		t.Fatalf("zero config normalized to %+v, want Table 1 defaults", cfg)
	}
	crossed := Config{AlphaL: 100, AlphaU: 10}
	crossed.normalize()
	if crossed.AlphaU < crossed.AlphaL {
		t.Fatalf("crossed band survived normalization: %+v", crossed)
	}
}

// TestFirstWindowMaySwitch: a link busy from its very first window
// upswitches immediately — the hold-down bounds inter-switch spacing,
// not time to the first decision.
func TestFirstWindowMaySwitch(t *testing.T) {
	c := New(Config{AlphaL: 1e3, AlphaU: 1e4, HoldDown: time.Hour})
	if !tick(c, 1e6) {
		t.Fatal("first loaded window did not upswitch")
	}
}
