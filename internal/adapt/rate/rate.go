// Package rate implements the packet-rate hysteresis controller behind
// VNET/P's adaptive dispatch (paper Sect. 4, Table 1): sample a frame
// counter every ω, and switch between a latency-optimized mode
// (guest-driven analogue) and a throughput-optimized mode (VMM-driven
// analogue) when the observed rate crosses α_u upward or α_l downward.
// The band between the two thresholds is deliberately sticky — a rate
// inside it never causes a switch — and a hold-down bounds how often
// the controller may flip even when the rate oscillates across both
// thresholds.
//
// The controller is pure policy: it consumes sampled frame counts and
// elapsed time (no clocks, no goroutines), so the contract is unit
// testable and the caller — internal/overlay's per-link adaptive
// dispatch — owns the ticking, the counters, and the tunable
// application.
package rate

import (
	"sync"
	"time"
)

// Mode is a dispatch operating point.
type Mode int32

const (
	// Latency is the guest-driven analogue: dispatch each frame as it
	// arrives (batch=1, short flush) for minimal added latency.
	Latency Mode = iota
	// Throughput is the VMM-driven analogue: coalesce frames into full
	// batches (batch=TxBatch, long flush) to amortize per-frame costs.
	Throughput
)

// String names the mode for logs and control-plane rendering.
func (m Mode) String() string {
	if m == Throughput {
		return "throughput"
	}
	return "latency"
}

// Config is the controller's hysteresis policy. Zero values take the
// paper's Table 1 defaults.
type Config struct {
	// AlphaL is the downswitch threshold in frames/s: a Throughput-mode
	// link observing a rate strictly below it returns to Latency mode.
	// Default 10^3 (Table 1 α_l).
	AlphaL float64
	// AlphaU is the upswitch threshold in frames/s: a Latency-mode link
	// observing a rate strictly above it moves to Throughput mode.
	// Default 10^4 (Table 1 α_u). Rates in [AlphaL, AlphaU] never cause
	// a switch — that band is the hysteresis.
	AlphaU float64
	// HoldDown is the minimum dwell time after a switch before the next
	// switch is allowed, bounding flap frequency when the offered rate
	// straddles a threshold. Default 20ms (4 ticks of the paper's ω).
	HoldDown time.Duration
}

// Defaults (paper Table 1 for the thresholds; the hold-down is ours —
// the paper's ω-windowed sampling already rate-limits decisions, and
// four windows of dwell keeps a bursty boundary rate from flapping).
const (
	DefaultAlphaL   = 1e3
	DefaultAlphaU   = 1e4
	DefaultHoldDown = 20 * time.Millisecond
)

func (c *Config) normalize() {
	if c.AlphaL <= 0 {
		c.AlphaL = DefaultAlphaL
	}
	if c.AlphaU <= 0 {
		c.AlphaU = DefaultAlphaU
	}
	if c.AlphaU < c.AlphaL { // a crossed band has no hysteresis; collapse it
		c.AlphaU = c.AlphaL
	}
	if c.HoldDown <= 0 {
		c.HoldDown = DefaultHoldDown
	}
}

// Controller is one link's hysteresis state machine. Safe for
// concurrent use: the sampling tick calls Observe while the control
// plane may Pin/Auto at any time.
type Controller struct {
	mu     sync.Mutex
	cfg    Config
	mode   Mode
	dwell  time.Duration // time accumulated in the current mode
	pinned bool          // operator override: Observe holds the mode
}

// New builds a controller starting in Latency mode (an idle link's
// correct operating point; the first loaded window upswitches it).
func New(cfg Config) *Controller {
	cfg.normalize()
	// Start with a full dwell so a link that is busy from its very first
	// window may switch immediately — the hold-down bounds flap
	// frequency between switches, not time-to-first-decision.
	return &Controller{cfg: cfg, mode: Latency, dwell: cfg.HoldDown}
}

// Mode reports the current operating point.
func (c *Controller) Mode() Mode {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.mode
}

// Pinned reports whether an operator override is active.
func (c *Controller) Pinned() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.pinned
}

// Pin forces the mode and suspends rate-driven switching until Auto.
// Returns true when the mode actually changed.
func (c *Controller) Pin(m Mode) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.pinned = true
	if c.mode == m {
		return false
	}
	c.mode = m
	c.dwell = 0
	return true
}

// Auto releases an operator pin; the next Observe resumes rate-driven
// switching from the current mode.
func (c *Controller) Auto() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.pinned = false
}

// Observe feeds one sampling window — frames carried during elapsed —
// and returns the (possibly new) mode plus whether this observation
// switched it. The hysteresis contract: a Latency-mode link switches
// only when rate > AlphaU, a Throughput-mode link only when
// rate < AlphaL, rates inside [AlphaL, AlphaU] never switch, and no
// switch happens until the current mode has dwelt at least HoldDown.
func (c *Controller) Observe(frames uint64, elapsed time.Duration) (Mode, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if elapsed <= 0 {
		return c.mode, false
	}
	if c.dwell < c.cfg.HoldDown { // saturating: no overflow on long idle
		c.dwell += elapsed
	}
	if c.pinned {
		return c.mode, false
	}
	rate := float64(frames) / elapsed.Seconds()
	want := c.mode
	switch c.mode {
	case Latency:
		if rate > c.cfg.AlphaU {
			want = Throughput
		}
	case Throughput:
		if rate < c.cfg.AlphaL {
			want = Latency
		}
	}
	if want == c.mode || c.dwell < c.cfg.HoldDown {
		return c.mode, false
	}
	c.mode = want
	c.dwell = 0
	return c.mode, true
}
