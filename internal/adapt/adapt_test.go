package adapt_test

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"vnetp/internal/adapt"
	"vnetp/internal/control"
	"vnetp/internal/core"
	"vnetp/internal/ethernet"
	"vnetp/internal/overlay"
	"vnetp/internal/topo"
)

func TestPlanFindsHeavyInterNodePair(t *testing.T) {
	m1, m2, m3, m4 := ethernet.LocalMAC(1), ethernet.LocalMAC(2), ethernet.LocalMAC(3), ethernet.LocalMAC(4)
	pl := adapt.Placement{
		HostOf: map[ethernet.MAC]string{m1: "a", m2: "b", m3: "b", m4: "a"},
		AddrOf: map[string]string{"a": "1.1.1.1:1", "b": "2.2.2.2:1"},
	}
	flows := []core.Flow{
		{Src: m1, Dst: m2, Bytes: 1 << 30}, // heavy cross-node
		{Src: m2, Dst: m1, Bytes: 1 << 29},
		{Src: m1, Dst: m4, Bytes: 1 << 40}, // same node: irrelevant
		{Src: m4, Dst: m3, Bytes: 1 << 10}, // light cross-node (same pair a-b)
	}
	scs := adapt.Plan(flows, pl, nil, 0)
	if len(scs) != 1 {
		t.Fatalf("plans = %+v, want 1 (one node pair)", scs)
	}
	sc := scs[0]
	if sc.A != "a" || sc.B != "b" {
		t.Fatalf("pair = %s-%s", sc.A, sc.B)
	}
	if sc.Bytes != 1<<30+1<<29+1<<10 {
		t.Fatalf("bytes = %d", sc.Bytes)
	}
	if len(sc.AMACs) != 2 || len(sc.BMACs) != 2 {
		t.Fatalf("macs = %v / %v", sc.AMACs, sc.BMACs)
	}
}

func TestPlanSkipsExistingLinks(t *testing.T) {
	m1, m2 := ethernet.LocalMAC(1), ethernet.LocalMAC(2)
	pl := adapt.Placement{
		HostOf: map[ethernet.MAC]string{m1: "a", m2: "b"},
		AddrOf: map[string]string{"a": "x:1", "b": "y:1"},
	}
	flows := []core.Flow{{Src: m1, Dst: m2, Bytes: 100}}
	scs := adapt.Plan(flows, pl, func(a, b string) bool { return true }, 0)
	if len(scs) != 0 {
		t.Fatalf("planned %v despite existing links", scs)
	}
}

func TestPlanCapsAndOrders(t *testing.T) {
	pl := adapt.Placement{HostOf: map[ethernet.MAC]string{}, AddrOf: map[string]string{}}
	var flows []core.Flow
	for i := 0; i < 6; i++ {
		src := ethernet.LocalMAC(uint32(10 + i))
		dst := ethernet.LocalMAC(uint32(20 + i))
		pl.HostOf[src] = fmt.Sprintf("h%d", i)
		pl.HostOf[dst] = fmt.Sprintf("g%d", i)
		flows = append(flows, core.Flow{Src: src, Dst: dst, Bytes: uint64(1000 * (i + 1))})
	}
	scs := adapt.Plan(flows, pl, nil, 3)
	if len(scs) != 3 {
		t.Fatalf("%d shortcuts, want cap 3", len(scs))
	}
	for i := 1; i < len(scs); i++ {
		if scs[i].Bytes > scs[i-1].Bytes {
			t.Fatal("shortcuts not ordered by volume")
		}
	}
	if scs[0].Bytes != 6000 {
		t.Fatalf("heaviest = %d", scs[0].Bytes)
	}
}

// The full adaptation loop against real overlay nodes: a star topology
// carries heavy spoke-to-spoke traffic through the hub; the planner
// observes the flows, installs a shortcut, and the hub drops out of the
// path.
func TestAdaptationLoopOnStar(t *testing.T) {
	const n = 3 // hub + two spokes
	nodes := make([]*overlay.Node, n)
	eps := make([]*overlay.Endpoint, n)
	hosts := make([]topo.Host, n)
	names := []string{"hub", "s1", "s2"}
	pl := adapt.Placement{HostOf: map[ethernet.MAC]string{}, AddrOf: map[string]string{}}
	for i := 0; i < n; i++ {
		node, err := overlay.NewNode(names[i], "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { node.Close() })
		mac := ethernet.LocalMAC(uint32(i + 1))
		ep, err := node.AttachEndpoint("nic0", mac, 1500)
		if err != nil {
			t.Fatal(err)
		}
		nodes[i], eps[i] = node, ep
		hosts[i] = topo.Host{Name: names[i], Addr: node.Addr(), MACs: []ethernet.MAC{mac}}
		pl.HostOf[mac] = names[i]
		pl.AddrOf[names[i]] = node.Addr()
	}
	scripts, err := topo.Scripts(topo.Star, hosts, 0, "udp")
	if err != nil {
		t.Fatal(err)
	}
	for i, node := range nodes {
		if err := control.RunScript(node, strings.NewReader(strings.Join(scripts[names[i]], "\n"))); err != nil {
			t.Fatal(err)
		}
	}

	// Heavy s1 <-> s2 traffic through the hub.
	exchange := func() {
		eps[1].Send(&ethernet.Frame{Dst: eps[2].MAC(), Src: eps[1].MAC(), Type: ethernet.TypeTest, Payload: make([]byte, 1000)})
		if _, ok := eps[2].Recv(2 * time.Second); !ok {
			t.Fatal("frame lost")
		}
		eps[2].Send(&ethernet.Frame{Dst: eps[1].MAC(), Src: eps[2].MAC(), Type: ethernet.TypeTest, Payload: make([]byte, 1000)})
		if _, ok := eps[1].Recv(2 * time.Second); !ok {
			t.Fatal("frame lost")
		}
	}
	for i := 0; i < 20; i++ {
		exchange()
	}
	hubBefore := nodes[0].EncapSent.Load()
	if hubBefore == 0 {
		t.Fatal("star traffic did not transit the hub")
	}

	// --- Observe: merge each node's flow observations. ---
	var flows []core.Flow
	for _, node := range nodes {
		flows = append(flows, node.Flows().Top(0)...)
	}
	// --- Plan: the s1-s2 pair must surface. ---
	hasLink := func(a, b string) bool {
		// Only hub links exist.
		return a == "hub" || b == "hub"
	}
	scs := adapt.Plan(flows, pl, hasLink, 1)
	if len(scs) != 1 || scs[0].A != "s1" || scs[0].B != "s2" {
		t.Fatalf("plan = %+v, want s1-s2 shortcut", scs)
	}
	// --- Act: apply the generated commands. ---
	oldRoute := func(nodeName string, mac ethernet.MAC) (core.Route, bool) {
		return core.Route{
			DstMAC: mac, DstQual: core.QualExact, SrcQual: core.QualAny,
			Dest: core.Destination{Type: core.DestLink, ID: "to-hub"},
		}, true
	}
	cmds := adapt.Commands(scs[0], pl, oldRoute)
	for i, node := range nodes {
		if lines, ok := cmds[names[i]]; ok {
			if err := control.RunScript(node, strings.NewReader(strings.Join(lines, "\n"))); err != nil {
				t.Fatalf("%s: %v\n%s", names[i], err, strings.Join(lines, "\n"))
			}
		}
	}

	// --- Verify: traffic flows direct; the hub sees nothing new. ---
	for i := 0; i < 10; i++ {
		exchange()
	}
	if after := nodes[0].EncapSent.Load(); after != hubBefore {
		t.Fatalf("hub still forwarding after adaptation: %d -> %d", hubBefore, after)
	}
}
