package lab_test

import (
	"testing"
	"time"

	"vnetp/internal/core"
	"vnetp/internal/ethernet"
	"vnetp/internal/lab"
	"vnetp/internal/phys"
	"vnetp/internal/sim"
	"vnetp/internal/vnetu"
)

func TestGuestMTUFor(t *testing.T) {
	// Encapsulated packet must fit one physical MTU exactly: guest MTU +
	// inner Ethernet header + outer IP/UDP + encap header == device MTU.
	for _, dev := range []phys.Device{phys.Eth1G, phys.Eth10G, phys.Gemini} {
		mtu := lab.GuestMTUFor(dev)
		if mtu+lab.EncapOverhead != dev.MTU {
			t.Errorf("%s: guest MTU %d + overhead %d != device MTU %d",
				dev.Name, mtu, lab.EncapOverhead, dev.MTU)
		}
	}
	// IPoIB's 65520-byte MTU would exceed the overlay's 64KB frame cap.
	if lab.GuestMTUFor(phys.IPoIB) > ethernet.MaxMTU {
		t.Error("IPoIB guest MTU exceeds the overlay cap")
	}
}

func TestClusterFullMesh(t *testing.T) {
	eng := sim.New()
	c := lab.NewCluster(eng, lab.Config{Dev: phys.Eth10G, N: 4, Params: core.DefaultParams()})
	if len(c.Nodes) != 4 {
		t.Fatalf("%d nodes", len(c.Nodes))
	}
	for i, n := range c.Nodes {
		// n-1 links and n routes (n-1 remote + 1 local) per node.
		if got := len(n.Bridge.Links()); got != 3 {
			t.Errorf("node %d: %d links, want 3", i, got)
		}
		if got := n.Core.Table.Len(); got != 4 {
			t.Errorf("node %d: %d routes, want 4", i, got)
		}
		if n.MAC() != ethernet.LocalMAC(uint32(i+1)) {
			t.Errorf("node %d MAC %v", i, n.MAC())
		}
	}
}

func TestNodeIPUnique(t *testing.T) {
	seen := map[string]bool{}
	for i := 0; i < 300; i++ {
		ip := lab.NodeIP(i).String()
		if seen[ip] {
			t.Fatalf("duplicate IP %s at node %d", ip, i)
		}
		seen[ip] = true
	}
}

func TestAllTestbedsPassTraffic(t *testing.T) {
	// Every configuration builder yields a testbed whose stacks can
	// actually exchange a datagram.
	builders := map[string]func(eng *sim.Engine) *lab.Testbed{
		"vnetp": func(eng *sim.Engine) *lab.Testbed {
			return lab.NewVNETPTestbed(eng, lab.Config{Dev: phys.Eth10G, N: 3, Params: core.DefaultParams()})
		},
		"native": func(eng *sim.Engine) *lab.Testbed {
			return lab.NewNativeTestbed(eng, phys.Eth10G, 3)
		},
		"vnetu": func(eng *sim.Engine) *lab.Testbed {
			return lab.NewVNETUTestbed(eng, phys.Eth1G, 3, vnetu.PalaciosTap)
		},
	}
	for name, build := range builders {
		eng := sim.New()
		tb := build(eng)
		got := 0
		eng.Go("recv", func(p *sim.Proc) {
			sock := tb.Stacks[2].BindUDP(7)
			d := sock.Recv(p)
			got = d.Size
		})
		eng.Go("send", func(p *sim.Proc) {
			p.Sleep(time.Millisecond)
			sock := tb.Stacks[0].BindUDP(8)
			sock.SendTo(p, tb.IP(2), 7, 777)
		})
		eng.Run()
		eng.Close()
		if got != 777 {
			t.Errorf("%s testbed: received %d bytes, want 777", name, got)
		}
	}
}

func TestBridgeSharesDispatcherOption(t *testing.T) {
	eng := sim.New()
	c := lab.NewCluster(eng, lab.Config{
		Dev: phys.Eth10G, N: 2, Params: core.DefaultParams(), BridgeSharesDispatcher: true,
	})
	for i, n := range c.Nodes {
		if n.Bridge.Worker() != n.Core.Dispatchers()[0] {
			t.Errorf("node %d: bridge did not share the dispatcher worker", i)
		}
	}
	eng2 := sim.New()
	c2 := lab.NewCluster(eng2, lab.Config{Dev: phys.Eth10G, N: 2, Params: core.DefaultParams()})
	if c2.Nodes[0].Bridge.Worker() == c2.Nodes[0].Core.Dispatchers()[0] {
		t.Error("default config should give the bridge its own worker")
	}
}
