package lab

import (
	"fmt"

	"vnetp/internal/ethernet"
	"vnetp/internal/ipv4"
	"vnetp/internal/netstack"
	"vnetp/internal/phys"
	"vnetp/internal/sim"
	"vnetp/internal/virtio"
	"vnetp/internal/vmm"
	"vnetp/internal/vnetu"
)

// NodeIP returns the address assigned to cluster node i (10.0.0.i+1).
func NodeIP(i int) ipv4.Addr { return ipv4.AddrFrom(10, 0, byte(i>>8), byte(i%256)+1) }

// Testbed is a set of nodes with attached transport stacks, in one of the
// three software configurations the paper compares.
type Testbed struct {
	Eng    *sim.Engine
	Dev    phys.Device
	Stacks []*netstack.Stack

	// VNETP is non-nil for the VNET/P configuration.
	VNETP *Cluster
	// Hosts holds the physical hosts for native/VNET-U testbeds.
	Hosts []*vmm.Host
	// Daemons holds the VNET/U daemons (VNET/U configuration only).
	Daemons []*vnetu.Daemon
}

// IP returns node i's address.
func (tb *Testbed) IP(i int) ipv4.Addr { return NodeIP(i) }

// AttachStacks gives every node of a VNET/P cluster a guest stack with
// full neighbor tables, returning the testbed view.
func AttachStacks(c *Cluster) *Testbed {
	tb := &Testbed{Eng: c.Eng, Dev: c.Dev, VNETP: c}
	for i, n := range c.Nodes {
		s := netstack.NewVMStack(c.Eng, n.VM, n.Iface, NodeIP(i))
		tb.Stacks = append(tb.Stacks, s)
		tb.Hosts = append(tb.Hosts, n.Host)
	}
	for i, s := range tb.Stacks {
		for j, n := range c.Nodes {
			if i != j {
				s.AddNeighbor(NodeIP(j), n.MAC())
			}
		}
	}
	return tb
}

// NewVNETPTestbed builds an n-node VNET/P testbed with stacks.
func NewVNETPTestbed(eng *sim.Engine, cfg Config) *Testbed {
	return AttachStacks(NewCluster(eng, cfg))
}

// NewNativeTestbed builds an n-node native testbed: stacks run directly
// on the hosts, no VMM or overlay in the path.
func NewNativeTestbed(eng *sim.Engine, dev phys.Device, n int) *Testbed {
	model := phys.DefaultModel()
	net := vmm.NewNetwork(eng, dev)
	tb := &Testbed{Eng: eng, Dev: dev}
	ports := make([]*netstack.NativePort, n)
	for i := 0; i < n; i++ {
		h := net.AddHost(hostName(i), model)
		tb.Hosts = append(tb.Hosts, h)
		ports[i] = netstack.NewNativePort(h, ethernet.LocalMAC(uint32(i+1)), 0)
		tb.Stacks = append(tb.Stacks, netstack.NewNativeStack(eng, h, ports[i], NodeIP(i)))
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			ports[i].AddPeer(ethernet.LocalMAC(uint32(j+1)), hostName(j))
			tb.Stacks[i].AddNeighbor(NodeIP(j), ethernet.LocalMAC(uint32(j+1)))
		}
	}
	return tb
}

// NewVNETUTestbed builds an n-node VNET/U testbed: one VM per host
// attached to a user-level daemon, full mesh links and routes.
func NewVNETUTestbed(eng *sim.Engine, dev phys.Device, n int, tap vnetu.TapKind) *Testbed {
	return NewVNETUTestbedModel(eng, dev, n, tap, phys.DefaultModel())
}

// NewVNETUTestbedModel is NewVNETUTestbed with an explicit cost model
// (e.g. phys.ModelGSXEra for the historical measurement).
func NewVNETUTestbedModel(eng *sim.Engine, dev phys.Device, n int, tap vnetu.TapKind, model *phys.CostModel) *Testbed {
	net := vmm.NewNetwork(eng, dev)
	tb := &Testbed{Eng: eng, Dev: dev}
	ifaces := make([]*vnetu.Iface, n)
	for i := 0; i < n; i++ {
		h := net.AddHost(hostName(i), model)
		tb.Hosts = append(tb.Hosts, h)
		vm := vmm.NewVM(h, fmt.Sprintf("vm%d", i))
		// VNET/U guests use the standard 1500-byte MTU.
		nic := virtio.NewNIC(ethernet.LocalMAC(uint32(i+1)), ethernet.StandardMTU)
		d := vnetu.New(h, tap)
		tb.Daemons = append(tb.Daemons, d)
		ifaces[i] = d.Register(IfaceName, vm, nic)
		tb.Stacks = append(tb.Stacks, netstack.NewVMStack(eng, vm, ifaces[i], NodeIP(i)))
	}
	for i, d := range tb.Daemons {
		d.Table.AddRoute(routeToIface(ethernet.LocalMAC(uint32(i+1)), IfaceName))
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			d.AddLink(LinkID(j), hostName(j))
			d.Table.AddRoute(routeToLink(ethernet.LocalMAC(uint32(j+1)), LinkID(j)))
			tb.Stacks[i].AddNeighbor(NodeIP(j), ethernet.LocalMAC(uint32(j+1)))
		}
	}
	return tb
}
