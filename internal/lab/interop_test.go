package lab_test

import (
	"testing"
	"time"

	"vnetp/internal/bridge"
	"vnetp/internal/core"
	"vnetp/internal/ethernet"
	"vnetp/internal/lab"
	"vnetp/internal/netstack"
	"vnetp/internal/phys"
	"vnetp/internal/sim"
	"vnetp/internal/virtio"
	"vnetp/internal/vmm"
	"vnetp/internal/vnetu"
)

// TestVNETPInteroperatesWithVNETU checks the paper's compatibility claim
// (Sect. 4.2): a VNET/P core and a VNET/U daemon on one overlay exchange
// encapsulated traffic in both directions — VNET/P is the "fast path" of
// the same network, not a different network.
func TestVNETPInteroperatesWithVNETU(t *testing.T) {
	eng := sim.New()
	net := vmm.NewNetwork(eng, phys.Eth1G)
	model := phys.DefaultModel()

	// Host 0: VNET/P (core + in-kernel bridge).
	h0 := net.AddHost("p-host", model)
	vm0 := vmm.NewVM(h0, "vm0")
	mac0 := ethernet.LocalMAC(1)
	nic0 := virtio.NewNIC(mac0, 1446) // fits VNET/U's standard-MTU world
	vcore := core.New(h0, core.DefaultParams())
	br := bridge.New(h0, sim.WorkerConfig{Yield: sim.YieldImmediate}, nil)
	br.Deliver = vcore.DeliverFromWire
	vcore.Bridge = br
	ifc0 := vcore.Register("nic0", vm0, nic0)
	_ = ifc0

	// Host 1: VNET/U (user-level daemon).
	h1 := net.AddHost("u-host", model)
	vm1 := vmm.NewVM(h1, "vm1")
	mac1 := ethernet.LocalMAC(2)
	nic1 := virtio.NewNIC(mac1, 1446)
	daemon := vnetu.New(h1, vnetu.PalaciosTap)
	uifc := daemon.Register("nic0", vm1, nic1)

	// Routes and links, each side in its own configuration idiom.
	vcore.Table.AddRoute(core.Route{DstMAC: mac0, DstQual: core.QualExact, SrcQual: core.QualAny,
		Dest: core.Destination{Type: core.DestInterface, ID: "nic0"}})
	vcore.Table.AddRoute(core.Route{DstMAC: mac1, DstQual: core.QualExact, SrcQual: core.QualAny,
		Dest: core.Destination{Type: core.DestLink, ID: "to-u"}})
	br.AddLink(bridge.LinkConfig{ID: "to-u", RemoteHost: "u-host", Proto: bridge.UDP})
	daemon.Table.AddRoute(core.Route{DstMAC: mac1, DstQual: core.QualExact, SrcQual: core.QualAny,
		Dest: core.Destination{Type: core.DestInterface, ID: "nic0"}})
	daemon.Table.AddRoute(core.Route{DstMAC: mac0, DstQual: core.QualExact, SrcQual: core.QualAny,
		Dest: core.Destination{Type: core.DestLink, ID: "to-p"}})
	daemon.AddLink("to-p", "p-host")

	// Guest stacks over both systems, then a ping across the mixed
	// overlay.
	ipP, ipU := lab.NodeIP(0), lab.NodeIP(1)
	sP := netstack.NewVMStack(eng, vm0, ifc0, ipP)
	sU := netstack.NewVMStack(eng, vm1, uifc, ipU)
	sP.AddNeighbor(ipU, mac1)
	sU.AddNeighbor(ipP, mac0)

	var rttPU, rttUP time.Duration
	var okPU, okUP bool
	eng.Go("p-pings-u", func(p *sim.Proc) {
		rttPU, okPU = sP.Ping(p, ipU, 56, time.Second)
	})
	eng.Go("u-pings-p", func(p *sim.Proc) {
		p.Sleep(10 * time.Millisecond)
		rttUP, okUP = sU.Ping(p, ipP, 56, time.Second)
	})
	eng.Run()
	eng.Close()

	if !okPU || !okUP {
		t.Fatalf("mixed overlay ping failed: P->U ok=%v, U->P ok=%v", okPU, okUP)
	}
	// Both directions cross the slow VNET/U side once each way.
	if rttPU < 300*time.Microsecond || rttUP < 300*time.Microsecond {
		t.Errorf("mixed-path RTTs %v / %v suspiciously fast for a VNET/U hop", rttPU, rttUP)
	}
	if daemon.Forwarded == 0 || daemon.Received == 0 {
		t.Error("daemon never carried interop traffic")
	}
	if br.EncapSent == 0 || br.Received == 0 {
		t.Error("bridge never carried interop traffic")
	}
}
