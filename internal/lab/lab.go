// Package lab assembles simulated testbeds: clusters of hosts running
// VNET/P-connected VMs, mirroring the paper's experimental setups (two
// directly connected machines for the microbenchmarks, a six-node switched
// cluster for HPCC/NAS). The same builders serve tests, benchmarks, and
// the experiment harness.
package lab

import (
	"fmt"

	"vnetp/internal/bridge"
	"vnetp/internal/core"
	"vnetp/internal/ethernet"
	"vnetp/internal/ipv4"
	"vnetp/internal/phys"
	"vnetp/internal/sim"
	"vnetp/internal/virtio"
	"vnetp/internal/vmm"
)

// EncapOverhead is the per-datagram byte overhead of carrying a guest
// frame across the overlay (inner Ethernet header + outer IP/UDP +
// encapsulation header; the outer Ethernet framing is additional wire
// cost).
const EncapOverhead = ethernet.HeaderLen + ipv4.Overhead + bridge.EncapHeaderLen

// GuestMTUFor returns the largest guest MTU whose encapsulated packets
// still fit in one physical-MTU datagram — the adjustment the paper makes
// for the jumbo-frame experiments ("we adjusted the VNET/P MTU so that the
// ultimate encapsulated packets will fit into these frames without
// fragmentation").
func GuestMTUFor(dev phys.Device) int {
	mtu := dev.MTU - EncapOverhead
	if mtu > ethernet.MaxMTU {
		mtu = ethernet.MaxMTU
	}
	return mtu
}

// Node is one cluster member: a host running one VM whose virtio NIC is
// registered with the host's VNET/P core.
type Node struct {
	Index  int
	Host   *vmm.Host
	VM     *vmm.VM
	NIC    *virtio.NIC
	Core   *core.VNETP
	Bridge *bridge.Bridge
	Iface  *core.Iface
}

// MAC returns the node's guest MAC address.
func (n *Node) MAC() ethernet.MAC { return n.NIC.MAC }

// Cluster is a set of VNET/P nodes on one interconnect with a full mesh
// of overlay links and per-MAC routes.
type Cluster struct {
	Eng   *sim.Engine
	Dev   phys.Device
	Net   *vmm.Network
	Model *phys.CostModel
	Nodes []*Node
}

// Config parameterizes a cluster build.
type Config struct {
	Dev      phys.Device
	N        int
	Params   core.Params
	Model    *phys.CostModel // nil selects phys.DefaultModel
	GuestMTU int             // 0 selects GuestMTUFor(Dev)
	// BridgeSharesDispatcher co-locates the bridge thread with the first
	// packet dispatcher on one core (the 1-core point of the paper's
	// Fig. 5 scaling experiment).
	BridgeSharesDispatcher bool
}

func hostName(i int) string { return fmt.Sprintf("host%d", i) }

// LinkID names the overlay link from one host toward another.
func LinkID(to int) string { return fmt.Sprintf("to-%d", to) }

// IfaceName is the interface name each node registers its guest NIC
// under.
const IfaceName = "nic0"

// NewCluster builds an n-node VNET/P cluster: one host per node, one VM
// per host (as in the paper's cluster tests), virtio NICs registered with
// each host's VNET/P core, a full mesh of UDP overlay links, and unicast
// routes for every guest MAC.
func NewCluster(eng *sim.Engine, cfg Config) *Cluster {
	if cfg.Model == nil {
		cfg.Model = phys.DefaultModel()
	}
	if cfg.GuestMTU == 0 {
		cfg.GuestMTU = GuestMTUFor(cfg.Dev)
	}
	c := &Cluster{Eng: eng, Dev: cfg.Dev, Model: cfg.Model, Net: vmm.NewNetwork(eng, cfg.Dev)}
	wc := sim.WorkerConfig{Yield: cfg.Params.Yield, TSleep: cfg.Params.TSleep, TNoWork: cfg.Params.TNoWork}
	for i := 0; i < cfg.N; i++ {
		host := c.Net.AddHost(hostName(i), cfg.Model)
		vm := vmm.NewVM(host, fmt.Sprintf("vm%d", i))
		nic := virtio.NewNIC(ethernet.LocalMAC(uint32(i+1)), cfg.GuestMTU)
		vcore := core.New(host, cfg.Params)
		var shared *sim.Worker
		if cfg.BridgeSharesDispatcher {
			shared = vcore.Dispatchers()[0]
		}
		br := bridge.New(host, wc, shared)
		br.CutThrough = cfg.Params.CutThrough
		br.Deliver = vcore.DeliverFromWire
		vcore.Bridge = br
		ifc := vcore.Register(IfaceName, vm, nic)
		c.Nodes = append(c.Nodes, &Node{
			Index: i, Host: host, VM: vm, NIC: nic,
			Core: vcore, Bridge: br, Iface: ifc,
		})
	}
	// Full mesh of links and routes.
	for i, ni := range c.Nodes {
		// Local guest's own MAC terminates here.
		ni.Core.Table.AddRoute(core.Route{
			DstMAC: ni.MAC(), DstQual: core.QualExact, SrcQual: core.QualAny,
			Dest: core.Destination{Type: core.DestInterface, ID: IfaceName},
		})
		for j, nj := range c.Nodes {
			if i == j {
				continue
			}
			ni.Bridge.AddLink(bridge.LinkConfig{ID: LinkID(j), RemoteHost: hostName(j), Proto: bridge.UDP})
			ni.Core.Table.AddRoute(core.Route{
				DstMAC: nj.MAC(), DstQual: core.QualExact, SrcQual: core.QualAny,
				Dest: core.Destination{Type: core.DestLink, ID: LinkID(j)},
			})
		}
	}
	return c
}

// routeToIface builds the unicast route delivering mac to a local
// interface.
func routeToIface(mac ethernet.MAC, iface string) core.Route {
	return core.Route{
		DstMAC: mac, DstQual: core.QualExact, SrcQual: core.QualAny,
		Dest: core.Destination{Type: core.DestInterface, ID: iface},
	}
}

// routeToLink builds the unicast route forwarding mac over a link.
func routeToLink(mac ethernet.MAC, link string) core.Route {
	return core.Route{
		DstMAC: mac, DstQual: core.QualExact, SrcQual: core.QualAny,
		Dest: core.Destination{Type: core.DestLink, ID: link},
	}
}

// NewPair builds the two directly connected machines used for the
// microbenchmarks (paper Sect. 5.1).
func NewPair(eng *sim.Engine, dev phys.Device, params core.Params) *Cluster {
	return NewCluster(eng, Config{Dev: dev, N: 2, Params: params})
}
