package ethernet

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestMACString(t *testing.T) {
	m := MAC{0x02, 0x56, 0x00, 0x00, 0x00, 0x01}
	if got := m.String(); got != "02:56:00:00:00:01" {
		t.Fatalf("String = %q", got)
	}
}

func TestParseMACRoundTrip(t *testing.T) {
	prop := func(m MAC) bool {
		got, err := ParseMAC(m.String())
		return err == nil && got == m
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestParseMACInvalid(t *testing.T) {
	for _, s := range []string{"", "zz:zz:zz:zz:zz:zz", "01:02:03", "01-02-03-04-05-06x"} {
		if _, err := ParseMAC(s); err == nil {
			t.Errorf("ParseMAC(%q) succeeded", s)
		}
	}
}

func TestBroadcastMulticast(t *testing.T) {
	if !Broadcast.IsBroadcast() || !Broadcast.IsMulticast() {
		t.Fatal("broadcast flags wrong")
	}
	u := LocalMAC(1)
	if u.IsBroadcast() || u.IsMulticast() || u.IsZero() {
		t.Fatalf("unicast %v misclassified", u)
	}
	if !(MAC{}).IsZero() {
		t.Fatal("zero MAC not zero")
	}
	mc := MAC{0x01, 0, 0x5e, 0, 0, 1}
	if !mc.IsMulticast() || mc.IsBroadcast() {
		t.Fatalf("multicast %v misclassified", mc)
	}
}

func TestLocalMACUnique(t *testing.T) {
	seen := map[MAC]bool{}
	for i := uint32(0); i < 1000; i++ {
		m := LocalMAC(i)
		if seen[m] {
			t.Fatalf("duplicate MAC for id %d", i)
		}
		seen[m] = true
	}
}

func TestFrameMarshalUnmarshal(t *testing.T) {
	f := &Frame{
		Dst:     LocalMAC(2),
		Src:     LocalMAC(1),
		Type:    TypeIPv4,
		Payload: []byte("hello world payload"),
	}
	b, err := f.Marshal(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(b) != f.Len() {
		t.Fatalf("marshalled %d bytes, Len says %d", len(b), f.Len())
	}
	g, err := Unmarshal(b)
	if err != nil {
		t.Fatal(err)
	}
	if g.Dst != f.Dst || g.Src != f.Src || g.Type != f.Type || !bytes.Equal(g.Payload, f.Payload) {
		t.Fatalf("round trip mismatch: %v vs %v", g, f)
	}
}

func TestFrameRoundTripProperty(t *testing.T) {
	prop := func(dst, src MAC, typ uint16, payload []byte) bool {
		f := &Frame{Dst: dst, Src: src, Type: typ, Payload: payload}
		b, err := f.Marshal(nil)
		if err != nil {
			return len(payload) > MaxMTU
		}
		g, err := Unmarshal(b)
		if err != nil {
			return false
		}
		return g.Dst == dst && g.Src == src && g.Type == typ && bytes.Equal(g.Payload, payload)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestUnmarshalTruncated(t *testing.T) {
	for i := 0; i < HeaderLen; i++ {
		if _, err := Unmarshal(make([]byte, i)); err != ErrTruncated {
			t.Fatalf("len %d: err = %v, want ErrTruncated", i, err)
		}
	}
	if _, err := Unmarshal(make([]byte, HeaderLen)); err != nil {
		t.Fatalf("header-only frame should parse (empty payload): %v", err)
	}
}

func TestMarshalTooLarge(t *testing.T) {
	f := &Frame{Payload: make([]byte, MaxMTU+1)}
	if _, err := f.Marshal(nil); err != ErrTooLarge {
		t.Fatalf("err = %v, want ErrTooLarge", err)
	}
}

func TestMarshalAppends(t *testing.T) {
	prefix := []byte{0xde, 0xad}
	f := &Frame{Type: TypeTest, Payload: []byte{1, 2, 3}}
	b, err := f.Marshal(prefix)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b[:2], prefix) {
		t.Fatal("Marshal did not append to existing buffer")
	}
	if len(b) != 2+f.Len() {
		t.Fatalf("len = %d", len(b))
	}
}

func TestWireLenPadding(t *testing.T) {
	small := &Frame{Payload: []byte{1}}
	if small.WireLen() != HeaderLen+MinPayload {
		t.Fatalf("small frame WireLen = %d, want %d", small.WireLen(), HeaderLen+MinPayload)
	}
	big := &Frame{Payload: make([]byte, 100)}
	if big.WireLen() != HeaderLen+100 {
		t.Fatalf("big frame WireLen = %d", big.WireLen())
	}
}

func TestPadAccounting(t *testing.T) {
	f := &Frame{Payload: []byte{1, 2, 3}, Pad: 1000}
	if f.PayloadLen() != 1003 || f.Len() != HeaderLen+1003 || f.WireLen() != HeaderLen+1003 {
		t.Fatalf("pad lengths: payload=%d len=%d wire=%d", f.PayloadLen(), f.Len(), f.WireLen())
	}
	b, err := f.Marshal(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(b) != f.Len() {
		t.Fatalf("marshalled %d, want %d", len(b), f.Len())
	}
	for _, x := range b[HeaderLen+3:] {
		if x != 0 {
			t.Fatal("pad bytes not zero")
		}
	}
	g, err := Unmarshal(b)
	if err != nil {
		t.Fatal(err)
	}
	if g.PayloadLen() != 1003 || g.Pad != 0 {
		t.Fatalf("unmarshal of padded frame: payloadLen=%d pad=%d", g.PayloadLen(), g.Pad)
	}
}

func TestPadTooLarge(t *testing.T) {
	f := &Frame{Pad: MaxMTU + 1}
	if _, err := f.Marshal(nil); err != ErrTooLarge {
		t.Fatalf("err = %v", err)
	}
	neg := &Frame{Pad: -1}
	if _, err := neg.Marshal(nil); err != ErrTooLarge {
		t.Fatalf("negative pad: err = %v", err)
	}
}

func TestClone(t *testing.T) {
	f := &Frame{Dst: LocalMAC(1), Payload: []byte{1, 2, 3}}
	g := f.Clone()
	g.Payload[0] = 99
	if f.Payload[0] != 1 {
		t.Fatal("Clone shares payload storage")
	}
}

func TestFrameString(t *testing.T) {
	f := &Frame{Dst: LocalMAC(2), Src: LocalMAC(1), Type: TypeIPv4, Payload: make([]byte, 5)}
	want := "02:56:00:00:00:01 -> 02:56:00:00:00:02 type=0x0800 len=5"
	if got := f.String(); got != want {
		t.Fatalf("String = %q, want %q", got, want)
	}
}
