// Package ethernet implements the layer-2 abstraction VNET/P presents to
// guests: Ethernet MAC addresses and frames, with wire-format marshalling.
// The overlay carries these frames (encapsulated in UDP) between hosts, so
// frame parsing and building sit on the performance-critical path.
package ethernet

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// MAC is a 48-bit Ethernet hardware address.
type MAC [6]byte

// Broadcast is the all-ones broadcast address.
var Broadcast = MAC{0xff, 0xff, 0xff, 0xff, 0xff, 0xff}

// IsBroadcast reports whether m is the broadcast address.
func (m MAC) IsBroadcast() bool { return m == Broadcast }

// IsMulticast reports whether m is a multicast address (group bit set).
func (m MAC) IsMulticast() bool { return m[0]&1 == 1 }

// IsZero reports whether m is the all-zero address.
func (m MAC) IsZero() bool { return m == MAC{} }

func (m MAC) String() string {
	return fmt.Sprintf("%02x:%02x:%02x:%02x:%02x:%02x", m[0], m[1], m[2], m[3], m[4], m[5])
}

// ParseMAC parses the colon-separated hex form produced by MAC.String.
func ParseMAC(s string) (MAC, error) {
	var m MAC
	n, err := fmt.Sscanf(s, "%02x:%02x:%02x:%02x:%02x:%02x",
		&m[0], &m[1], &m[2], &m[3], &m[4], &m[5])
	if err != nil || n != 6 {
		return MAC{}, fmt.Errorf("ethernet: invalid MAC %q", s)
	}
	return m, nil
}

// LocalMAC deterministically generates a locally-administered unicast MAC
// from a 32-bit id — the scheme the test harness and examples use to give
// each virtual NIC a unique address.
func LocalMAC(id uint32) MAC {
	var m MAC
	m[0] = 0x02 // locally administered, unicast
	m[1] = 0x56 // 'V'
	binary.BigEndian.PutUint32(m[2:], id)
	return m
}

// EtherTypes used by the reproduction.
const (
	TypeIPv4 uint16 = 0x0800
	TypeARP  uint16 = 0x0806
	// TypeTest is reserved for loopback/testing payloads (IEEE 802.1
	// reserves 0x88B5-0x88B6 for experimental use).
	TypeTest uint16 = 0x88b5
)

// Frame sizes. The paper's overlay supports guest MTUs up to 64 KB
// (Sect. 4.4: "sized to support the largest possible IPv4 packet size").
const (
	HeaderLen   = 14    // dst(6) + src(6) + ethertype(2)
	MinPayload  = 46    // classic Ethernet minimum (frames are padded)
	MaxMTU      = 65535 // VNET/P's maximum guest MTU
	StandardMTU = 1500
	JumboMTU    = 9000
)

// Frame is an Ethernet-II frame. FCS is not modeled (links are reliable in
// both the simulated and UDP-carried paths).
//
// Pad is a simulation affordance: Pad virtual zero bytes logically follow
// Payload and count toward every length computation, but are not
// materialized until Marshal. Bulk-transfer simulations set Payload to the
// real protocol headers and Pad to the data body, so simulating gigabytes
// of traffic does not allocate gigabytes.
type Frame struct {
	Dst     MAC
	Src     MAC
	Type    uint16
	Payload []byte
	Pad     int

	// Tag, when nonzero, marks the frame for datapath tracing
	// (internal/trace). It is simulation metadata, not wire content.
	Tag uint64
}

// ErrTruncated is returned when parsing a buffer shorter than a frame
// header.
var ErrTruncated = errors.New("ethernet: truncated frame")

// ErrTooLarge is returned when a frame's payload exceeds MaxMTU.
var ErrTooLarge = errors.New("ethernet: payload exceeds maximum MTU")

// PayloadLen reports the logical payload length including virtual padding.
func (f *Frame) PayloadLen() int { return len(f.Payload) + f.Pad }

// Len reports the marshalled frame length (header + logical payload).
func (f *Frame) Len() int { return HeaderLen + f.PayloadLen() }

// WireLen reports the frame length after minimum-payload padding.
func (f *Frame) WireLen() int {
	if f.PayloadLen() < MinPayload {
		return HeaderLen + MinPayload
	}
	return f.Len()
}

// Marshal appends the wire form of f to b and returns the extended slice.
// Virtual Pad bytes are materialized as zeros.
func (f *Frame) Marshal(b []byte) ([]byte, error) {
	if f.PayloadLen() > MaxMTU || f.Pad < 0 {
		return nil, ErrTooLarge
	}
	b = append(b, f.Dst[:]...)
	b = append(b, f.Src[:]...)
	b = binary.BigEndian.AppendUint16(b, f.Type)
	b = append(b, f.Payload...)
	b = append(b, make([]byte, f.Pad)...)
	return b, nil
}

// Unmarshal parses a wire-format frame. The returned frame's Payload
// aliases b; callers that retain the frame must copy.
func Unmarshal(b []byte) (*Frame, error) {
	if len(b) < HeaderLen {
		return nil, ErrTruncated
	}
	f := &Frame{Type: binary.BigEndian.Uint16(b[12:14]), Payload: b[HeaderLen:]}
	copy(f.Dst[:], b[0:6])
	copy(f.Src[:], b[6:12])
	return f, nil
}

// Clone returns a deep copy of f.
func (f *Frame) Clone() *Frame {
	g := *f
	g.Payload = append([]byte(nil), f.Payload...)
	return &g
}

func (f *Frame) String() string {
	return fmt.Sprintf("%s -> %s type=0x%04x len=%d", f.Src, f.Dst, f.Type, f.PayloadLen())
}
