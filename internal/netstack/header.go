package netstack

import (
	"encoding/binary"
	"errors"

	"vnetp/internal/ipv4"
)

// Header is the compact transport header guest packets carry in
// Frame.Payload. Its 28-byte size matches the IPv4+UDP overhead so
// goodput accounting stays honest; the body itself is virtual padding
// (Frame.Pad).
type Header struct {
	Proto    uint8 // ipv4.ProtoUDP, ProtoTCP, ProtoICMP
	Flags    uint8
	SrcPort  uint16
	DstPort  uint16
	Src, Dst ipv4.Addr
	Seq, Ack uint32
	BodyLen  uint32
}

// HeaderLen is the marshalled header size.
const HeaderLen = 28

// Transport flags.
const (
	FlagSYN       = 1 << 0
	FlagACK       = 1 << 1
	FlagFIN       = 1 << 2
	FlagData      = 1 << 3
	FlagEcho      = 1 << 4 // ICMP echo request
	FlagEchoReply = 1 << 5
)

// ErrShortHeader reports a frame payload too small to hold a Header.
var ErrShortHeader = errors.New("netstack: short transport header")

// Marshal appends the wire form to b.
func (h *Header) Marshal(b []byte) []byte {
	b = append(b, h.Proto, h.Flags)
	b = binary.BigEndian.AppendUint16(b, h.SrcPort)
	b = binary.BigEndian.AppendUint16(b, h.DstPort)
	b = append(b, h.Src[:]...)
	b = append(b, h.Dst[:]...)
	b = binary.BigEndian.AppendUint32(b, h.Seq)
	b = binary.BigEndian.AppendUint32(b, h.Ack)
	b = binary.BigEndian.AppendUint32(b, h.BodyLen)
	// Pad to HeaderLen for size parity with IPv4+UDP.
	for len(b)%HeaderLen != 0 {
		b = append(b, 0)
	}
	return b
}

// ParseHeader decodes a header from the start of b.
func ParseHeader(b []byte) (*Header, error) {
	if len(b) < HeaderLen {
		return nil, ErrShortHeader
	}
	h := &Header{
		Proto:   b[0],
		Flags:   b[1],
		SrcPort: binary.BigEndian.Uint16(b[2:]),
		DstPort: binary.BigEndian.Uint16(b[4:]),
		Seq:     binary.BigEndian.Uint32(b[14:]),
		Ack:     binary.BigEndian.Uint32(b[18:]),
		BodyLen: binary.BigEndian.Uint32(b[22:]),
	}
	copy(h.Src[:], b[6:10])
	copy(h.Dst[:], b[10:14])
	return h, nil
}
