package netstack_test

import (
	"testing"
	"time"

	"vnetp/internal/core"
	"vnetp/internal/ethernet"
	"vnetp/internal/ipv4"
	"vnetp/internal/lab"
	"vnetp/internal/netstack"
	"vnetp/internal/phys"
	"vnetp/internal/sim"
	"vnetp/internal/vmm"
)

var (
	ipA = ipv4.AddrFrom(10, 0, 0, 1)
	ipB = ipv4.AddrFrom(10, 0, 0, 2)
)

// nativePair builds two directly connected native hosts with stacks.
func nativePair(dev phys.Device) (*sim.Engine, [2]*netstack.Stack) {
	eng := sim.New()
	net := vmm.NewNetwork(eng, dev)
	model := phys.DefaultModel()
	h0 := net.AddHost("host0", model)
	h1 := net.AddHost("host1", model)
	m0, m1 := ethernet.LocalMAC(1), ethernet.LocalMAC(2)
	p0 := netstack.NewNativePort(h0, m0, 0)
	p1 := netstack.NewNativePort(h1, m1, 0)
	p0.AddPeer(m1, "host1")
	p1.AddPeer(m0, "host0")
	s0 := netstack.NewNativeStack(eng, h0, p0, ipA)
	s1 := netstack.NewNativeStack(eng, h1, p1, ipB)
	s0.AddNeighbor(ipB, m1)
	s1.AddNeighbor(ipA, m0)
	return eng, [2]*netstack.Stack{s0, s1}
}

// vnetpPair builds two VNET/P nodes with guest stacks.
func vnetpPair(dev phys.Device, mode core.Mode) (*sim.Engine, *lab.Cluster, [2]*netstack.Stack) {
	eng := sim.New()
	p := core.DefaultParams()
	p.Mode = mode
	c := lab.NewPair(eng, dev, p)
	s0 := netstack.NewVMStack(eng, c.Nodes[0].VM, c.Nodes[0].Iface, ipA)
	s1 := netstack.NewVMStack(eng, c.Nodes[1].VM, c.Nodes[1].Iface, ipB)
	s0.AddNeighbor(ipB, c.Nodes[1].MAC())
	s1.AddNeighbor(ipA, c.Nodes[0].MAC())
	return eng, c, [2]*netstack.Stack{s0, s1}
}

func TestHeaderRoundTrip(t *testing.T) {
	h := &netstack.Header{
		Proto: ipv4.ProtoTCP, Flags: netstack.FlagData | netstack.FlagACK,
		SrcPort: 1000, DstPort: 2000,
		Src: ipA, Dst: ipB,
		Seq: 12345, Ack: 67890, BodyLen: 1448,
	}
	b := h.Marshal(nil)
	if len(b) != netstack.HeaderLen {
		t.Fatalf("marshalled %d bytes, want %d", len(b), netstack.HeaderLen)
	}
	g, err := netstack.ParseHeader(b)
	if err != nil {
		t.Fatal(err)
	}
	if *g != *h {
		t.Fatalf("round trip: %+v vs %+v", g, h)
	}
	if _, err := netstack.ParseHeader(b[:10]); err == nil {
		t.Fatal("short header parsed")
	}
}

func TestUDPNative(t *testing.T) {
	eng, s := nativePair(phys.Eth10G)
	var got netstack.Datagram
	eng.Go("recv", func(p *sim.Proc) {
		sock := s[1].BindUDP(9000)
		got = sock.Recv(p)
	})
	eng.Go("send", func(p *sim.Proc) {
		p.Sleep(time.Millisecond)
		sock := s[0].BindUDP(9001)
		sock.SendTo(p, ipB, 9000, 4000)
	})
	eng.Run()
	eng.Close()
	if got.Size != 4000 || got.Src != ipA || got.SrcPort != 9001 {
		t.Fatalf("got %+v", got)
	}
}

func TestUDPSegmentation(t *testing.T) {
	// A datagram larger than the MSS arrives as multiple datagrams (the
	// stack segments; ttcp-style receivers count bytes).
	eng, s := nativePair(phys.Eth10GStd) // MTU 1500
	total := 0
	count := 0
	eng.Go("recv", func(p *sim.Proc) {
		sock := s[1].BindUDP(9000)
		for {
			d, ok := sock.RecvTimeout(p, 100*time.Millisecond)
			if !ok {
				break
			}
			total += d.Size
			count++
		}
	})
	eng.Go("send", func(p *sim.Proc) {
		sock := s[0].BindUDP(9001)
		sock.SendTo(p, ipB, 9000, 64000)
	})
	eng.Run()
	eng.Close()
	if total != 64000 {
		t.Fatalf("received %d bytes, want 64000", total)
	}
	if count < 64000/1472 {
		t.Fatalf("received in %d datagrams, want >= %d", count, 64000/1472)
	}
}

func TestUDPOverVNETP(t *testing.T) {
	eng, c, s := vnetpPair(phys.Eth10G, core.GuestDriven)
	var got netstack.Datagram
	eng.Go("recv", func(p *sim.Proc) {
		sock := s[1].BindUDP(7)
		got = sock.Recv(p)
	})
	eng.Go("send", func(p *sim.Proc) {
		p.Sleep(time.Millisecond)
		sock := s[0].BindUDP(8)
		sock.SendTo(p, ipB, 7, 1000)
	})
	eng.Run()
	eng.Close()
	if got.Size != 1000 {
		t.Fatalf("got %+v", got)
	}
	if c.Nodes[0].Bridge.EncapSent == 0 || c.Nodes[1].Bridge.Received == 0 {
		t.Fatal("traffic did not traverse the overlay")
	}
}

func TestPingNativeVsVNETP(t *testing.T) {
	measure := func(eng *sim.Engine, s [2]*netstack.Stack) time.Duration {
		var rtt time.Duration
		eng.Go("ping", func(p *sim.Proc) {
			p.Sleep(time.Millisecond)
			// Warm caches/rings with one ping, then measure.
			s[0].Ping(p, ipB, 56, time.Second)
			r, ok := s[0].Ping(p, ipB, 56, time.Second)
			if !ok {
				panic("ping timeout")
			}
			rtt = r
		})
		eng.Run()
		eng.Close()
		return rtt
	}
	engN, sN := nativePair(phys.Eth10G)
	native := measure(engN, sN)
	engV, _, sV := vnetpPair(phys.Eth10G, core.GuestDriven)
	vnetp := measure(engV, sV)

	if native <= 0 || vnetp <= 0 {
		t.Fatalf("rtts: native=%v vnetp=%v", native, vnetp)
	}
	ratio := float64(vnetp) / float64(native)
	// Paper Fig 9: VNET/P latency is 2-3x native on 10G; allow slack but
	// require the ordering and a sane band.
	if ratio < 1.5 || ratio > 5 {
		t.Fatalf("VNET/P/native RTT ratio = %.2f (native %v, vnetp %v), want 1.5-5",
			ratio, native, vnetp)
	}
}

func TestStreamTransfer(t *testing.T) {
	eng, s := nativePair(phys.Eth10G)
	const total = 1 << 20
	var received int
	eng.Go("server", func(p *sim.Proc) {
		l := s[1].Listen(5001)
		st := l.Accept(p)
		received = st.ReadFull(p, total)
	})
	eng.Go("client", func(p *sim.Proc) {
		p.Sleep(time.Millisecond)
		st := s[0].Dial(p, ipB, 5001)
		for i := 0; i < 4; i++ {
			st.Write(p, total/4)
		}
		st.Close(p)
	})
	eng.Run()
	eng.Close()
	if received != total {
		t.Fatalf("received %d, want %d", received, total)
	}
}

func TestStreamOverVNETP(t *testing.T) {
	eng, _, s := vnetpPair(phys.Eth10G, core.VMMDriven)
	const total = 256 << 10
	var received int
	eng.Go("server", func(p *sim.Proc) {
		l := s[1].Listen(5001)
		st := l.Accept(p)
		received = st.ReadFull(p, total)
	})
	eng.Go("client", func(p *sim.Proc) {
		p.Sleep(time.Millisecond)
		st := s[0].Dial(p, ipB, 5001)
		st.Write(p, total)
		st.Close(p)
	})
	eng.Run()
	eng.Close()
	if received != total {
		t.Fatalf("received %d, want %d", received, total)
	}
}

func TestStreamFINWithoutData(t *testing.T) {
	eng, s := nativePair(phys.Eth10G)
	done := false
	eng.Go("server", func(p *sim.Proc) {
		l := s[1].Listen(5001)
		st := l.Accept(p)
		if n := st.ReadFull(p, 100); n != 0 {
			t.Errorf("read %d from immediately-closed stream", n)
		}
		done = true
	})
	eng.Go("client", func(p *sim.Proc) {
		p.Sleep(time.Millisecond)
		st := s[0].Dial(p, ipB, 5001)
		st.Close(p)
	})
	eng.Run()
	eng.Close()
	if !done {
		t.Fatal("server never completed")
	}
}

func TestPingUnreachableTimesOut(t *testing.T) {
	eng, s := nativePair(phys.Eth10G)
	var ok bool
	eng.Go("ping", func(p *sim.Proc) {
		_, ok = s[0].Ping(p, ipv4.AddrFrom(10, 9, 9, 9), 56, 5*time.Millisecond)
	})
	eng.Run()
	eng.Close()
	if ok {
		t.Fatal("ping to unreachable address succeeded")
	}
}

func TestDoubleBindPanics(t *testing.T) {
	eng, s := nativePair(phys.Eth10G)
	_ = eng
	s[0].BindUDP(100)
	defer func() {
		if recover() == nil {
			t.Fatal("double bind did not panic")
		}
	}()
	s[0].BindUDP(100)
}

func TestSocketCloseReleasesPort(t *testing.T) {
	_, s := nativePair(phys.Eth10G)
	sock := s[0].BindUDP(100)
	sock.Close()
	s[0].BindUDP(100) // must not panic
}
