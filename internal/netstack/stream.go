package netstack

import (
	"fmt"
	"time"

	"vnetp/internal/ipv4"
	"vnetp/internal/sim"
)

// streamKey identifies a reliable stream endpoint.
type streamKey struct {
	localPort  uint16
	remote     ipv4.Addr
	remotePort uint16
}

// Reliable-stream tuning. The stand-in keeps TCP's window-limited,
// cumulative-ack, go-back-N shape without congestion control (the paper's
// measurements are on clean dedicated links).
const (
	ackEvery     = 8
	delayedAckAt = 200 * time.Microsecond
	rto          = 20 * time.Millisecond
	synRetry     = 50 * time.Millisecond
)

// seqLT is wrap-safe sequence comparison.
func seqLT(a, b uint32) bool { return int32(a-b) < 0 }

type seg struct {
	seq  uint32
	size int
	fin  bool
}

// Stream is a reliable, windowed byte stream between two stacks — the
// ttcp/MPI transport. Create with Dial/Listen.
type Stream struct {
	s   *Stack
	key streamKey

	established bool
	estCond     *sim.Cond

	// Sender state.
	sndNxt, sndUna uint32
	segs           []seg
	sndCond        *sim.Cond
	rtoTimer       *sim.Event
	finSent        bool
	dupAckCnt      int

	// Receiver state.
	rcvNxt      uint32
	rcvAvail    int
	rcvCond     *sim.Cond
	finReceived bool
	unackedSegs int
	ackTimer    *sim.Event

	// Stats
	Retransmits   uint64
	DupAcks       uint64
	BytesSent     uint64
	BytesReceived uint64
}

func newStream(s *Stack, key streamKey) *Stream {
	return &Stream{
		s:       s,
		key:     key,
		estCond: sim.NewCond(s.eng),
		sndCond: sim.NewCond(s.eng),
		rcvCond: sim.NewCond(s.eng),
	}
}

// Listener accepts inbound streams on a port.
type Listener struct {
	s       *Stack
	port    uint16
	acceptQ *sim.Chan[*Stream]
}

// Listen binds a stream listener.
func (s *Stack) Listen(port uint16) *Listener {
	if _, dup := s.listeners[port]; dup {
		panic(fmt.Sprintf("netstack: stream port %d already listening on %v", port, s.cfg.IP))
	}
	l := &Listener{s: s, port: port, acceptQ: sim.NewChan[*Stream](s.eng)}
	s.listeners[port] = l
	return l
}

// Accept blocks until a peer connects.
func (l *Listener) Accept(p *sim.Proc) *Stream { return l.acceptQ.Recv(p) }

// Close stops accepting.
func (l *Listener) Close() { delete(l.s.listeners, l.port) }

// Dial connects to dst:port, blocking until the handshake completes.
func (s *Stack) Dial(p *sim.Proc, dst ipv4.Addr, port uint16) *Stream {
	s.nextPort++
	key := streamKey{localPort: s.nextPort, remote: dst, remotePort: port}
	st := newStream(s, key)
	s.streams[key] = st
	for try := 0; !st.established; try++ {
		if try > 20 {
			panic("netstack: connect timeout (is the peer listening?)")
		}
		st.sendCtl(FlagSYN, st.sndNxt, 0)
		deadline := s.eng.Now().Add(synRetry)
		for !st.established && s.eng.Now() < deadline {
			waitUntil(p, s.eng, st.estCond, deadline)
		}
	}
	return st
}

// waitUntil waits on cond but gives up at the deadline.
func waitUntil(p *sim.Proc, eng *sim.Engine, cond *sim.Cond, deadline sim.Time) {
	timer := eng.ScheduleAt(deadline, func() { cond.Broadcast() })
	cond.Wait(p)
	timer.Cancel()
}

// sendCtl emits a control/ack frame (event or process context; drops on a
// full ring and relies on retransmission).
func (st *Stream) sendCtl(flags uint8, seqNum, ack uint32) {
	hdr := &Header{
		Proto: ipv4.ProtoTCP, Flags: flags,
		SrcPort: st.key.localPort, DstPort: st.key.remotePort,
		Src: st.s.cfg.IP, Dst: st.key.remote,
		Seq: seqNum, Ack: ack,
	}
	if f, ok := st.s.buildFrame(hdr); ok {
		st.s.sendFrameAsync(f)
	}
}

// Write sends n body bytes, blocking for window space and TX
// backpressure. It returns when the last byte is queued to the NIC.
func (st *Stream) Write(p *sim.Proc, n int) {
	s := st.s
	s.chargeSync(p, s.cfg.PerDatagram)
	for off := 0; off < n; {
		size := n - off
		if size > s.cfg.MSS {
			size = s.cfg.MSS
		}
		for int(st.sndNxt-st.sndUna)+size > s.cfg.Window {
			st.sndCond.Wait(p)
		}
		hdr := &Header{
			Proto: ipv4.ProtoTCP, Flags: FlagData,
			SrcPort: st.key.localPort, DstPort: st.key.remotePort,
			Src: s.cfg.IP, Dst: st.key.remote,
			Seq: st.sndNxt, BodyLen: uint32(size),
		}
		f, ok := s.buildFrame(hdr)
		if !ok {
			return
		}
		st.segs = append(st.segs, seg{seq: st.sndNxt, size: size})
		st.sndNxt += uint32(size)
		st.BytesSent += uint64(size)
		st.armRTO()
		s.sendFrameBlocking(p, f)
		off += size
	}
}

// Close sends FIN (as a one-sequence segment, retransmitted like data)
// and returns once it is acked.
func (st *Stream) Close(p *sim.Proc) {
	if st.finSent {
		return
	}
	st.finSent = true
	st.segs = append(st.segs, seg{seq: st.sndNxt, size: 1, fin: true})
	st.sendCtl(FlagFIN, st.sndNxt, 0)
	st.sndNxt++
	st.armRTO()
	for st.sndUna != st.sndNxt {
		st.sndCond.Wait(p)
	}
}

// ReadFull blocks until n bytes have been received (or the peer's FIN
// arrives), returning the byte count consumed.
func (st *Stream) ReadFull(p *sim.Proc, n int) int {
	got := 0
	for got < n {
		if st.rcvAvail > 0 {
			take := st.rcvAvail
			if take > n-got {
				take = n - got
			}
			st.rcvAvail -= take
			got += take
			continue
		}
		if st.finReceived {
			break
		}
		st.rcvCond.Wait(p)
	}
	return got
}

// armRTO starts the retransmission timer if not already running.
func (st *Stream) armRTO() {
	if st.rtoTimer != nil {
		return
	}
	st.rtoTimer = st.s.eng.Schedule(rto, st.onRTO)
}

func (st *Stream) onRTO() {
	st.rtoTimer = nil
	if len(st.segs) == 0 {
		return
	}
	st.retransmitAll()
	st.armRTO()
}

// retransmitAll resends every unacked segment (go-back-N recovery).
func (st *Stream) retransmitAll() {
	for _, sg := range st.segs {
		st.Retransmits++
		if sg.fin {
			st.sendCtl(FlagFIN, sg.seq, 0)
			continue
		}
		hdr := &Header{
			Proto: ipv4.ProtoTCP, Flags: FlagData,
			SrcPort: st.key.localPort, DstPort: st.key.remotePort,
			Src: st.s.cfg.IP, Dst: st.key.remote,
			Seq: sg.seq, BodyLen: uint32(sg.size),
		}
		if f, ok := st.s.buildFrame(hdr); ok {
			st.s.sendFrameAsync(f)
		}
	}
}

// ackNow emits a cumulative ack.
func (st *Stream) ackNow() {
	st.unackedSegs = 0
	if st.ackTimer != nil {
		st.ackTimer.Cancel()
		st.ackTimer = nil
	}
	st.sendCtl(FlagACK, 0, st.rcvNxt)
}

// demuxStream handles an inbound stream frame.
func (s *Stack) demuxStream(hdr *Header) {
	key := streamKey{localPort: hdr.DstPort, remote: hdr.Src, remotePort: hdr.SrcPort}
	st := s.streams[key]

	// Connection establishment.
	if hdr.Flags&FlagSYN != 0 && hdr.Flags&FlagACK == 0 {
		if st == nil {
			l := s.listeners[hdr.DstPort]
			if l == nil {
				return
			}
			st = newStream(s, key)
			st.established = true
			st.rcvNxt = hdr.Seq
			s.streams[key] = st
			l.acceptQ.Send(st)
		}
		// (Re)confirm: SYN|ACK.
		st.sendCtl(FlagSYN|FlagACK, st.sndNxt, st.rcvNxt)
		return
	}
	if st == nil {
		return
	}
	if hdr.Flags&FlagSYN != 0 && hdr.Flags&FlagACK != 0 {
		if !st.established {
			st.established = true
			st.rcvNxt = hdr.Seq
			st.estCond.Broadcast()
		}
		return
	}

	// Pure ack processing (cumulative, with fast retransmit on three
	// duplicate acks).
	if hdr.Flags&FlagACK != 0 {
		if seqLT(st.sndUna, hdr.Ack) {
			st.dupAckCnt = 0
			st.sndUna = hdr.Ack
			for len(st.segs) > 0 && !seqLT(hdr.Ack, st.segs[0].seq+uint32(st.segs[0].size)) {
				st.segs = st.segs[1:]
			}
			if st.rtoTimer != nil {
				st.rtoTimer.Cancel()
				st.rtoTimer = nil
			}
			if len(st.segs) > 0 {
				st.armRTO()
			}
			st.sndCond.Broadcast()
		} else if hdr.Ack == st.sndUna && len(st.segs) > 0 {
			st.dupAckCnt++
			if st.dupAckCnt == 3 {
				st.dupAckCnt = 0
				st.retransmitAll()
			}
		}
		return
	}

	// FIN.
	if hdr.Flags&FlagFIN != 0 {
		switch {
		case hdr.Seq == st.rcvNxt:
			st.rcvNxt++
			st.finReceived = true
			st.rcvCond.Broadcast()
			st.ackNow()
		case seqLT(hdr.Seq, st.rcvNxt):
			st.ackNow() // duplicate FIN: re-ack
		}
		return
	}

	// Data.
	if hdr.Flags&FlagData != 0 {
		switch {
		case hdr.Seq == st.rcvNxt:
			st.rcvNxt += hdr.BodyLen
			st.rcvAvail += int(hdr.BodyLen)
			st.BytesReceived += uint64(hdr.BodyLen)
			st.rcvCond.Broadcast()
			st.unackedSegs++
			if st.unackedSegs >= ackEvery {
				st.ackNow()
			} else if st.ackTimer == nil {
				st.ackTimer = s.eng.Schedule(delayedAckAt, func() {
					st.ackTimer = nil
					if st.unackedSegs > 0 {
						st.ackNow()
					}
				})
			}
		default:
			// Out of order (go-back-N drop) or duplicate: re-ack rcvNxt.
			st.DupAcks++
			st.ackNow()
		}
	}
}
