package netstack_test

import (
	"testing"
	"time"

	"vnetp/internal/ipv4"
	"vnetp/internal/phys"
	"vnetp/internal/sim"
)

func TestNoNeighborCounted(t *testing.T) {
	eng, s := nativePair(phys.Eth10G)
	eng.Go("send", func(p *sim.Proc) {
		sock := s[0].BindUDP(9)
		// No neighbor entry for this address: the send is dropped and
		// counted, not delivered and not crashed.
		sock.SendTo(p, ipv4.AddrFrom(10, 9, 9, 9), 9, 100)
	})
	eng.Run()
	eng.Close()
	if s[0].NoNeighbor != 1 {
		t.Fatalf("NoNeighbor = %d, want 1", s[0].NoNeighbor)
	}
	if s[0].SentFrames != 0 {
		t.Fatalf("SentFrames = %d for an unroutable datagram", s[0].SentFrames)
	}
}

func TestStackFrameCounters(t *testing.T) {
	eng, s := nativePair(phys.Eth10G)
	eng.Go("recv", func(p *sim.Proc) {
		sock := s[1].BindUDP(9)
		sock.Recv(p)
	})
	eng.Go("send", func(p *sim.Proc) {
		p.Sleep(time.Millisecond)
		sock := s[0].BindUDP(10)
		sock.SendTo(p, ipB, 9, 100)
	})
	eng.Run()
	eng.Close()
	if s[0].SentFrames != 1 || s[1].RecvFrames != 1 {
		t.Fatalf("sent=%d recv=%d, want 1/1", s[0].SentFrames, s[1].RecvFrames)
	}
	if s[1].BadFrames != 0 {
		t.Fatalf("bad frames = %d", s[1].BadFrames)
	}
}

func TestDatagramToUnboundPortDropped(t *testing.T) {
	eng, s := nativePair(phys.Eth10G)
	delivered := false
	eng.Go("send", func(p *sim.Proc) {
		sock := s[0].BindUDP(10)
		sock.SendTo(p, ipB, 4242, 64) // nobody listens on 4242
	})
	eng.Go("check", func(p *sim.Proc) {
		sock := s[1].BindUDP(9)
		if _, ok := sock.RecvTimeout(p, 10*time.Millisecond); ok {
			delivered = true
		}
	})
	eng.Run()
	eng.Close()
	if delivered {
		t.Fatal("datagram for an unbound port reached a different socket")
	}
	// The frame itself was received and demuxed (then discarded).
	if s[1].RecvFrames != 1 {
		t.Fatalf("RecvFrames = %d", s[1].RecvFrames)
	}
}

func TestUDPZeroLengthDatagram(t *testing.T) {
	eng, s := nativePair(phys.Eth10G)
	var ok bool
	var size int
	eng.Go("recv", func(p *sim.Proc) {
		sock := s[1].BindUDP(9)
		d, k := sock.RecvTimeout(p, 50*time.Millisecond)
		size, ok = d.Size, k
	})
	eng.Go("send", func(p *sim.Proc) {
		p.Sleep(time.Millisecond)
		sock := s[0].BindUDP(10)
		sock.SendTo(p, ipB, 9, 0)
	})
	eng.Run()
	eng.Close()
	if !ok || size != 0 {
		t.Fatalf("zero-length datagram: ok=%v size=%d", ok, size)
	}
}
