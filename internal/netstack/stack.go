package netstack

import (
	"fmt"
	"time"

	"vnetp/internal/ethernet"
	"vnetp/internal/ipv4"
	"vnetp/internal/sim"
	"vnetp/internal/vmm"
)

// Config parameterizes a Stack.
type Config struct {
	Eng  *sim.Engine
	Port Port
	IP   ipv4.Addr
	// Charge runs fn after cost of serial CPU time in this node's compute
	// context (the guest vCPU for VMs, a plain delay natively).
	Charge func(cost time.Duration, fn func())
	// Copy charges a memory-bus crossing of n bytes.
	Copy func(n int, fn func())
	// PerFrame is the stack+driver cost per wire frame.
	PerFrame time.Duration
	// PerDatagram is the per-send/receive-call cost (syscall + stack
	// traversal); with segmentation offload it is independent of how many
	// frames the call produces.
	PerDatagram time.Duration
	// MSS caps the body bytes per frame (0 derives it from the port MTU).
	MSS int
	// Window is the reliable stream's in-flight byte limit (0 = 256 KB,
	// the paper's ttcp socket-buffer configuration).
	Window int
	// CopyBytesPerSec is the single-stream copy rate used to charge CPU
	// time for moving a frame's bytes (0 = 5 GB/s).
	CopyBytesPerSec float64
	// BusQueue, when set, reports the memory-bus backlog; the send path
	// throttles when outstanding DMA exceeds a small ring's worth, which
	// is how the aggregate bus budget back-pressures a fast producer.
	BusQueue func() time.Duration
}

// Stack is one node's transport stack.
type Stack struct {
	cfg       Config
	eng       *sim.Engine
	neighbors map[ipv4.Addr]ethernet.MAC

	udpSocks  map[uint16]*UDPSocket
	streams   map[streamKey]*Stream
	listeners map[uint16]*Listener
	pings     map[uint32]*sim.Chan[sim.Time]
	nextPort  uint16
	nextPing  uint32

	// Stats
	SentFrames, RecvFrames uint64
	NoNeighbor             uint64
	BadFrames              uint64
	AsyncDrops             uint64
}

// NewStack builds a stack over a port.
func NewStack(cfg Config) *Stack {
	if cfg.MSS <= 0 {
		cfg.MSS = cfg.Port.MTU() - HeaderLen
	}
	if cfg.Window <= 0 {
		cfg.Window = 256 << 10
	}
	if cfg.CopyBytesPerSec <= 0 {
		cfg.CopyBytesPerSec = 5e9
	}
	if cfg.Charge == nil {
		cfg.Charge = func(cost time.Duration, fn func()) { cfg.Eng.Schedule(cost, fn) }
	}
	if cfg.Copy == nil {
		cfg.Copy = func(n int, fn func()) { cfg.Eng.Schedule(0, fn) }
	}
	s := &Stack{
		cfg:       cfg,
		eng:       cfg.Eng,
		neighbors: make(map[ipv4.Addr]ethernet.MAC),
		udpSocks:  make(map[uint16]*UDPSocket),
		streams:   make(map[streamKey]*Stream),
		listeners: make(map[uint16]*Listener),
		pings:     make(map[uint32]*sim.Chan[sim.Time]),
		nextPort:  32768,
	}
	cfg.Port.SetRecv(s.onRecv)
	return s
}

// NewVMStack builds a stack for a guest VM: CPU work on the guest core,
// copies on the host memory bus, per-frame cost from the cost model.
func NewVMStack(eng *sim.Engine, vm *vmm.VM, port Port, ip ipv4.Addr) *Stack {
	m := vm.Host.Model
	return NewStack(Config{
		Eng:             eng,
		Port:            port,
		IP:              ip,
		Charge:          vm.GuestWork,
		Copy:            vm.Host.MemCopy,
		PerFrame:        m.GuestPerPacket,
		PerDatagram:     m.HostStackPerPacket,
		CopyBytesPerSec: m.CopyBytesPerSec,
		BusQueue:        vm.Host.MemBus.QueueDelay,
	})
}

// nativePerFrame is the per-frame cost of an offload-assisted native
// stack (TSO/LRO leave little per-frame software work).
const nativePerFrame = 150 * time.Nanosecond

// NewNativeStack builds a stack running directly on a host.
func NewNativeStack(eng *sim.Engine, host *vmm.Host, port Port, ip ipv4.Addr) *Stack {
	m := host.Model
	return NewStack(Config{
		Eng:             eng,
		Port:            port,
		IP:              ip,
		Copy:            host.MemCopy,
		PerFrame:        nativePerFrame,
		PerDatagram:     m.HostStackPerPacket,
		CopyBytesPerSec: m.CopyBytesPerSec,
		BusQueue:        host.MemBus.QueueDelay,
	})
}

// IP returns the stack's address.
func (s *Stack) IP() ipv4.Addr { return s.cfg.IP }

// MSS returns the effective max body bytes per frame.
func (s *Stack) MSS() int { return s.cfg.MSS }

// AddNeighbor installs a static IP-to-MAC mapping (the clusters use
// static ARP).
func (s *Stack) AddNeighbor(ip ipv4.Addr, mac ethernet.MAC) { s.neighbors[ip] = mac }

// chargeSync blocks the process for cost of this node's CPU time.
func (s *Stack) chargeSync(p *sim.Proc, cost time.Duration) {
	done := sim.NewChan[struct{}](s.eng)
	s.cfg.Charge(cost, func() { done.Send(struct{}{}) })
	done.Recv(p)
}

// copyCPU is the CPU time of copying n bytes at the single-stream rate.
func (s *Stack) copyCPU(n int) time.Duration {
	return time.Duration(float64(n) / s.cfg.CopyBytesPerSec * 1e9)
}

// dmaRingSlack is how much outstanding memory-bus work a sender tolerates
// before throttling (a small DMA ring's worth).
const dmaRingSlack = 5 * time.Microsecond

// buildFrame assembles a guest frame for hdr (body carried as Pad).
func (s *Stack) buildFrame(hdr *Header) (*ethernet.Frame, bool) {
	mac, ok := s.neighbors[hdr.Dst]
	if !ok {
		s.NoNeighbor++
		return nil, false
	}
	return &ethernet.Frame{
		Dst:     mac,
		Src:     s.cfg.Port.MAC(),
		Type:    ethernet.TypeIPv4,
		Payload: hdr.Marshal(nil),
		Pad:     int(hdr.BodyLen),
	}, true
}

// sendFrameBlocking charges per-frame costs (stack work + the copy's CPU
// time), issues the bus crossing asynchronously (DMA pipelines with the
// next frame's preparation), and queues the frame, blocking on TX-ring
// backpressure and on excessive memory-bus backlog. Process context.
func (s *Stack) sendFrameBlocking(p *sim.Proc, f *ethernet.Frame) {
	s.chargeSync(p, s.cfg.PerFrame+s.copyCPU(f.WireLen()))
	s.cfg.Copy(f.WireLen(), nil)
	if s.cfg.BusQueue != nil {
		if qd := s.cfg.BusQueue(); qd > dmaRingSlack {
			p.Sleep(qd - dmaRingSlack)
		}
	}
	for !s.cfg.Port.TrySend(f) {
		s.cfg.Port.WaitSendSpace(p)
	}
	s.SentFrames++
}

// sendFrameAsync charges costs and queues without blocking (used for
// acks and ICMP replies generated in event context). A full TX ring is
// retried briefly (the stack's qdisc requeues); only sustained pressure
// drops.
func (s *Stack) sendFrameAsync(f *ethernet.Frame) {
	s.cfg.Charge(s.cfg.PerFrame+s.copyCPU(f.WireLen()), func() {
		s.cfg.Copy(f.WireLen(), nil)
		s.trySendRetry(f, 200)
	})
}

func (s *Stack) trySendRetry(f *ethernet.Frame, tries int) {
	if s.cfg.Port.TrySend(f) {
		s.SentFrames++
		return
	}
	if tries <= 0 {
		s.AsyncDrops++
		return
	}
	s.eng.Schedule(5*time.Microsecond, func() { s.trySendRetry(f, tries-1) })
}

// onRecv is the port's receive upcall: drain the ring, charge per-frame
// receive costs, then demultiplex.
func (s *Stack) onRecv() {
	var batch []*ethernet.Frame
	for {
		f, ok := s.cfg.Port.GuestRecv()
		if !ok {
			break
		}
		batch = append(batch, f)
	}
	if len(batch) == 0 {
		s.cfg.Port.RxDone()
		return
	}
	cost := time.Duration(len(batch)) * s.cfg.PerFrame
	for _, f := range batch {
		cost += s.copyCPU(f.WireLen())
	}
	s.cfg.Charge(cost, func() {
		for _, f := range batch {
			f := f
			s.cfg.Copy(f.WireLen(), func() { s.demux(f) })
		}
		s.cfg.Port.RxDone()
	})
}

func (s *Stack) demux(f *ethernet.Frame) {
	hdr, err := ParseHeader(f.Payload)
	if err != nil || hdr.Dst != s.cfg.IP {
		s.BadFrames++
		return
	}
	s.RecvFrames++
	switch hdr.Proto {
	case ipv4.ProtoUDP:
		if sock := s.udpSocks[hdr.DstPort]; sock != nil {
			sock.rq.Send(Datagram{Src: hdr.Src, SrcPort: hdr.SrcPort, Size: int(hdr.BodyLen)})
		}
	case ipv4.ProtoTCP:
		s.demuxStream(hdr)
	case ipv4.ProtoICMP:
		s.demuxICMP(hdr)
	}
}

// ---------- UDP ----------

// Datagram is one received UDP message.
type Datagram struct {
	Src     ipv4.Addr
	SrcPort uint16
	Size    int
}

// UDPSocket is a bound UDP endpoint.
type UDPSocket struct {
	s    *Stack
	port uint16
	rq   *sim.Chan[Datagram]
}

// BindUDP binds a UDP socket on port (panics on double bind: that is a
// workload bug).
func (s *Stack) BindUDP(port uint16) *UDPSocket {
	if _, dup := s.udpSocks[port]; dup {
		panic(fmt.Sprintf("netstack: UDP port %d already bound on %v", port, s.cfg.IP))
	}
	sock := &UDPSocket{s: s, port: port, rq: sim.NewChan[Datagram](s.eng)}
	s.udpSocks[port] = sock
	return sock
}

// Close releases the port binding.
func (u *UDPSocket) Close() { delete(u.s.udpSocks, u.port) }

// SendTo transmits size body bytes to dst:dstPort, segmenting to the MSS.
// It blocks until every frame is handed to the NIC.
func (u *UDPSocket) SendTo(p *sim.Proc, dst ipv4.Addr, dstPort uint16, size int) {
	s := u.s
	s.chargeSync(p, s.cfg.PerDatagram)
	for off := 0; off < size || off == 0 && size == 0; off += s.cfg.MSS {
		n := size - off
		if n > s.cfg.MSS {
			n = s.cfg.MSS
		}
		hdr := &Header{
			Proto: ipv4.ProtoUDP, Flags: FlagData,
			SrcPort: u.port, DstPort: dstPort,
			Src: s.cfg.IP, Dst: dst,
			BodyLen: uint32(n),
		}
		f, ok := s.buildFrame(hdr)
		if !ok {
			return
		}
		s.sendFrameBlocking(p, f)
		if size == 0 {
			break
		}
	}
}

// Recv blocks until a datagram arrives.
func (u *UDPSocket) Recv(p *sim.Proc) Datagram { return u.rq.Recv(p) }

// RecvTimeout blocks until a datagram arrives or d elapses.
func (u *UDPSocket) RecvTimeout(p *sim.Proc, d time.Duration) (Datagram, bool) {
	return u.rq.RecvTimeout(p, d)
}

// ---------- ICMP echo ----------

func (s *Stack) demuxICMP(hdr *Header) {
	switch {
	case hdr.Flags&FlagEcho != 0:
		// Reflect: same body size, seq echoed back.
		reply := &Header{
			Proto: ipv4.ProtoICMP, Flags: FlagEchoReply,
			Src: s.cfg.IP, Dst: hdr.Src,
			Seq: hdr.Seq, BodyLen: hdr.BodyLen,
		}
		if f, ok := s.buildFrame(reply); ok {
			s.sendFrameAsync(f)
		}
	case hdr.Flags&FlagEchoReply != 0:
		if ch := s.pings[hdr.Seq]; ch != nil {
			ch.Send(s.eng.Now())
		}
	}
}

// Ping sends one ICMP echo request with size payload bytes and waits for
// the reply, returning the round-trip time.
func (s *Stack) Ping(p *sim.Proc, dst ipv4.Addr, size int, timeout time.Duration) (time.Duration, bool) {
	s.nextPing++
	id := s.nextPing
	ch := sim.NewChan[sim.Time](s.eng)
	s.pings[id] = ch
	defer delete(s.pings, id)

	start := s.eng.Now()
	hdr := &Header{
		Proto: ipv4.ProtoICMP, Flags: FlagEcho,
		Src: s.cfg.IP, Dst: dst,
		Seq: id, BodyLen: uint32(size),
	}
	f, ok := s.buildFrame(hdr)
	if !ok {
		return 0, false
	}
	s.chargeSync(p, s.cfg.PerDatagram)
	s.sendFrameBlocking(p, f)
	end, ok := ch.RecvTimeout(p, timeout)
	if !ok {
		return 0, false
	}
	return end.Sub(start), true
}
