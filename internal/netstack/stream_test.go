package netstack_test

import (
	"testing"
	"time"

	"vnetp/internal/ethernet"
	"vnetp/internal/netstack"
	"vnetp/internal/phys"
	"vnetp/internal/sim"
	"vnetp/internal/vmm"
)

// lossyPort wraps a Port and drops every nth data frame sent through it —
// the loss injector for retransmission tests.
type lossyPort struct {
	netstack.Port
	n       int
	count   int
	Dropped int
}

func (l *lossyPort) TrySend(f *ethernet.Frame) bool {
	l.count++
	if l.n > 0 && l.count%l.n == 0 {
		l.Dropped++
		return true // accepted and silently lost
	}
	return l.Port.TrySend(f)
}

// lossyPair builds two native hosts where the first port drops every nth
// frame.
func lossyPair(n int) (*sim.Engine, [2]*netstack.Stack, *lossyPort) {
	eng := sim.New()
	net := vmm.NewNetwork(eng, phys.Eth10G)
	model := phys.DefaultModel()
	h0 := net.AddHost("h0", model)
	h1 := net.AddHost("h1", model)
	m0, m1 := ethernet.LocalMAC(1), ethernet.LocalMAC(2)
	p0 := netstack.NewNativePort(h0, m0, 0)
	p1 := netstack.NewNativePort(h1, m1, 0)
	p0.AddPeer(m1, "h1")
	p1.AddPeer(m0, "h0")
	lossy := &lossyPort{Port: p0, n: n}
	s0 := netstack.NewStack(netstack.Config{
		Eng: eng, Port: lossy, IP: ipA,
		Copy:     h0.MemCopy,
		PerFrame: 150 * time.Nanosecond, PerDatagram: model.HostStackPerPacket,
	})
	s1 := netstack.NewNativeStack(eng, h1, p1, ipB)
	s0.AddNeighbor(ipB, m1)
	s1.AddNeighbor(ipA, m0)
	return eng, [2]*netstack.Stack{s0, s1}, lossy
}

func TestStreamRecoversFromLoss(t *testing.T) {
	// Drop every 50th frame: go-back-N plus fast retransmit must still
	// deliver every byte, in order.
	eng, s, lossy := lossyPair(50)
	const total = 2 << 20
	received := 0
	var retransmits uint64
	eng.Go("server", func(p *sim.Proc) {
		l := s[1].Listen(5001)
		st := l.Accept(p)
		received = st.ReadFull(p, total)
	})
	eng.Go("client", func(p *sim.Proc) {
		p.Sleep(time.Millisecond)
		st := s[0].Dial(p, ipB, 5001)
		st.Write(p, total)
		st.Close(p)
		retransmits = st.Retransmits
	})
	eng.Run()
	eng.Close()
	if received != total {
		t.Fatalf("received %d/%d with loss", received, total)
	}
	if lossy.Dropped == 0 {
		t.Fatal("loss injector never fired")
	}
	if retransmits == 0 {
		t.Fatal("no retransmissions despite loss")
	}
	t.Logf("dropped %d frames, %d retransmissions", lossy.Dropped, retransmits)
}

func TestStreamSurvivesHeavyLoss(t *testing.T) {
	// 10% loss: slow, but correct.
	eng, s, lossy := lossyPair(10)
	const total = 128 << 10
	received := 0
	eng.Go("server", func(p *sim.Proc) {
		l := s[1].Listen(5001)
		st := l.Accept(p)
		received = st.ReadFull(p, total)
	})
	eng.Go("client", func(p *sim.Proc) {
		p.Sleep(time.Millisecond)
		st := s[0].Dial(p, ipB, 5001)
		st.Write(p, total)
		st.Close(p)
	})
	eng.Run()
	eng.Close()
	if received != total {
		t.Fatalf("received %d/%d at 10%% loss (dropped %d)", received, total, lossy.Dropped)
	}
}

func TestStreamLostFINRecovered(t *testing.T) {
	// Drop exactly the first FIN: Close must still complete via
	// retransmission.
	eng, s, _ := lossyPair(0) // no periodic loss; we drop FIN by hand below
	// Rebuild with a targeted dropper: drop the first control frame
	// carrying FIN.
	_ = s
	eng.Close()

	eng2 := sim.New()
	net := vmm.NewNetwork(eng2, phys.Eth10G)
	model := phys.DefaultModel()
	h0 := net.AddHost("h0", model)
	h1 := net.AddHost("h1", model)
	m0, m1 := ethernet.LocalMAC(1), ethernet.LocalMAC(2)
	p0 := netstack.NewNativePort(h0, m0, 0)
	p1 := netstack.NewNativePort(h1, m1, 0)
	p0.AddPeer(m1, "h1")
	p1.AddPeer(m0, "h0")
	finDropper := &finDropPort{Port: p0}
	s0 := netstack.NewStack(netstack.Config{
		Eng: eng2, Port: finDropper, IP: ipA, Copy: h0.MemCopy,
		PerFrame: 150 * time.Nanosecond, PerDatagram: model.HostStackPerPacket,
	})
	s1 := netstack.NewNativeStack(eng2, h1, p1, ipB)
	s0.AddNeighbor(ipB, m1)
	s1.AddNeighbor(ipA, m0)

	done := false
	eng2.Go("server", func(p *sim.Proc) {
		l := s1.Listen(5001)
		st := l.Accept(p)
		st.ReadFull(p, 4096)
	})
	eng2.Go("client", func(p *sim.Proc) {
		p.Sleep(time.Millisecond)
		st := s0.Dial(p, ipB, 5001)
		st.Write(p, 4096)
		st.Close(p) // FIN dropped once; must retransmit and complete
		done = true
	})
	eng2.Run()
	eng2.Close()
	if !finDropper.dropped {
		t.Fatal("FIN dropper never fired")
	}
	if !done {
		t.Fatal("Close never completed after FIN loss")
	}
}

type finDropPort struct {
	netstack.Port
	dropped bool
}

func (f *finDropPort) TrySend(fr *ethernet.Frame) bool {
	if !f.dropped && len(fr.Payload) >= 2 && fr.Payload[1]&netstack.FlagFIN != 0 {
		f.dropped = true
		return true
	}
	return f.Port.TrySend(fr)
}
