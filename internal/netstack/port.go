// Package netstack is the simulated guest/host network stack the
// benchmark workloads run on: UDP datagrams, a window-limited reliable
// byte stream (the ttcp TCP stand-in), and ICMP echo, over any layer-2
// port — a VNET/P interface, a VNET/U interface, or the native NIC model
// defined here.
//
// Guest packets carry a compact 28-byte header (mimicking the IPv4+UDP
// overhead) in Frame.Payload, with the message body accounted as virtual
// padding; the overlay's outer headers are the real thing
// (internal/bridge codec).
package netstack

import (
	"time"

	"vnetp/internal/ethernet"
	"vnetp/internal/sim"
	"vnetp/internal/vmm"
)

// Port is the layer-2 attachment point a stack drives. core.Iface,
// vnetu.Iface, and NativePort all satisfy it.
type Port interface {
	MAC() ethernet.MAC
	MTU() int
	// TrySend queues a frame for transmission, reporting false when the
	// TX ring is full.
	TrySend(f *ethernet.Frame) bool
	// WaitSendSpace blocks the process until TrySend may succeed.
	WaitSendSpace(p *sim.Proc)
	// SetRecv installs the upcall invoked when received frames are
	// available.
	SetRecv(fn func())
	// GuestRecv pops one received frame.
	GuestRecv() (*ethernet.Frame, bool)
	// RxDone marks the end of a receive drain pass.
	RxDone()
}

// NativePort is the non-virtualized comparator: the stack runs directly
// on the host and the NIC is driven without any VMM in the path. A
// bounded TX ring provides the usual NIC backpressure; segmentation
// offload means the native host-stack cost is charged per send call, not
// per wire packet (see Stack.PerDatagram).
type NativePort struct {
	Host *vmm.Host
	mac  ethernet.MAC
	mtu  int
	// peers maps destination MACs to host names (the static "switch").
	peers map[ethernet.MAC]string

	inflight int
	ringSize int
	txCond   *sim.Cond

	// rxWorker serializes receive-side interrupt/stack charges so packet
	// order is preserved across the idle/busy boundary.
	rxWorker *sim.Worker
	lastIntr sim.Time

	rxq        []*ethernet.Frame
	recvUpcall func()
	rxNotify   bool

	// Stats
	TxFrames, RxFrames, RxDrops uint64
}

// nativeMsg is a raw frame on the wire between native hosts.
type nativeMsg struct{ frame *ethernet.Frame }

// NewNativePort attaches a native NIC abstraction to a host and installs
// it as the host's wire receiver.
func NewNativePort(host *vmm.Host, mac ethernet.MAC, mtu int) *NativePort {
	if mtu <= 0 || mtu > host.Dev.MTU {
		mtu = host.Dev.MTU
	}
	p := &NativePort{
		Host:     host,
		mac:      mac,
		mtu:      mtu,
		peers:    make(map[ethernet.MAC]string),
		ringSize: 256,
		txCond:   sim.NewCond(host.Eng),
		rxWorker: sim.NewWorker(host.Eng, sim.WorkerConfig{Yield: sim.YieldImmediate}),
		rxNotify: true,
	}
	host.SetReceiver(p.receive)
	return p
}

// AddPeer maps a destination MAC to the host that owns it.
func (p *NativePort) AddPeer(mac ethernet.MAC, hostName string) { p.peers[mac] = hostName }

// MAC returns the port's address.
func (p *NativePort) MAC() ethernet.MAC { return p.mac }

// MTU returns the port's MTU.
func (p *NativePort) MTU() int { return p.mtu }

// TrySend DMAs the frame to the NIC and puts it on the wire. A frame
// larger than the device MTU is carried as a train of MTU-sized wire
// packets (IP fragmentation), delivered with the last one, so large
// payloads pipeline through store-and-forward hops just as fragments do.
func (p *NativePort) TrySend(f *ethernet.Frame) bool {
	if p.inflight >= p.ringSize {
		return false
	}
	dst, ok := p.peers[f.Dst]
	if !ok {
		return true // no such peer: silently dropped, like a switch flood to nowhere
	}
	p.inflight++
	p.TxFrames++
	wire := f.WireLen()
	p.Host.MemCopy(wire, func() {
		maxWire := p.Host.Dev.MTU + ethernet.HeaderLen
		for remaining := wire; remaining > 0; {
			chunk := remaining
			if chunk > maxWire {
				chunk = maxWire
			}
			remaining -= chunk
			if remaining == 0 {
				p.Host.Send(dst, chunk, &nativeMsg{frame: f})
			} else {
				p.Host.Send(dst, chunk, nil) // leading fragment, no payload
			}
		}
		p.inflight--
		p.txCond.Broadcast()
	})
	return true
}

// WaitSendSpace blocks until the TX ring drains below capacity.
func (p *NativePort) WaitSendSpace(pr *sim.Proc) { p.txCond.Wait(pr) }

// SetRecv installs the receive upcall.
func (p *NativePort) SetRecv(fn func()) { p.recvUpcall = fn }

// nativeNICCoalesce matches the bridge's interrupt throttle (same NIC).
const nativeNICCoalesce = 25 * time.Microsecond

// receive: NIC interrupt (throttled/coalesced under load) + DMA, then the
// frame is queued for the stack. Charges run on a FIFO worker so receive
// order is preserved.
func (p *NativePort) receive(pkt *vmm.WirePacket) {
	msg, ok := pkt.Payload.(*nativeMsg)
	if !ok {
		return
	}
	m := p.Host.Model
	var cost time.Duration
	now := p.Host.Eng.Now()
	if p.rxWorker.Backlog() == 0 && now.Sub(p.lastIntr) >= nativeNICCoalesce {
		cost += m.NICInterrupt
		p.lastIntr = now
	}
	p.rxWorker.Submit(cost, func() {
		p.Host.MemCopy(msg.frame.WireLen(), func() {
			// Native receive queueing is bounded by socket buffers and
			// TCP flow control in practice; the cap here is a safety
			// valve, large enough that well-behaved flows never hit it.
			if len(p.rxq) >= 1<<20 {
				p.RxDrops++
				return
			}
			p.rxq = append(p.rxq, msg.frame)
			p.RxFrames++
			if p.rxNotify {
				p.rxNotify = false
				if p.recvUpcall != nil {
					p.recvUpcall()
				}
			}
		})
	})
}

// GuestRecv pops one received frame.
func (p *NativePort) GuestRecv() (*ethernet.Frame, bool) {
	if len(p.rxq) == 0 {
		return nil, false
	}
	f := p.rxq[0]
	p.rxq[0] = nil
	p.rxq = p.rxq[1:]
	return f, true
}

// RxDone ends a drain pass, re-arming notification.
func (p *NativePort) RxDone() {
	if len(p.rxq) > 0 {
		if p.recvUpcall != nil {
			p.recvUpcall()
		}
		return
	}
	p.rxNotify = true
}
