// Package ipv4 implements the minimal IPv4 and UDP header handling the
// overlay needs: building and parsing the outer headers of encapsulated
// VNET packets, plus the standard Internet checksum. The simulated host
// network stack and the direct-send path both use it; the real-socket
// overlay relies on the kernel for outer headers but uses this package's
// size constants for goodput accounting.
package ipv4

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Addr is an IPv4 address.
type Addr [4]byte

func (a Addr) String() string {
	return fmt.Sprintf("%d.%d.%d.%d", a[0], a[1], a[2], a[3])
}

// AddrFrom returns the address a.b.c.d.
func AddrFrom(a, b, c, d byte) Addr { return Addr{a, b, c, d} }

// ParseAddr parses dotted-quad notation.
func ParseAddr(s string) (Addr, error) {
	var a Addr
	var b [4]int
	n, err := fmt.Sscanf(s, "%d.%d.%d.%d", &b[0], &b[1], &b[2], &b[3])
	if err != nil || n != 4 {
		return Addr{}, fmt.Errorf("ipv4: invalid address %q", s)
	}
	for i, v := range b {
		if v < 0 || v > 255 {
			return Addr{}, fmt.Errorf("ipv4: invalid address %q", s)
		}
		a[i] = byte(v)
	}
	return a, nil
}

// Header and protocol constants.
const (
	HeaderLen    = 20 // no options
	UDPHeaderLen = 8
	ProtoUDP     = 17
	ProtoTCP     = 6
	ProtoICMP    = 1
	Version      = 4
	defaultTTL   = 64
)

// Overhead is the total outer-header cost of one UDP encapsulation.
const Overhead = HeaderLen + UDPHeaderLen

var (
	ErrTruncated   = errors.New("ipv4: truncated packet")
	ErrBadVersion  = errors.New("ipv4: not an IPv4 packet")
	ErrBadChecksum = errors.New("ipv4: header checksum mismatch")
	ErrBadLength   = errors.New("ipv4: inconsistent length fields")
)

// Header is an IPv4 header without options.
type Header struct {
	TOS      uint8
	TotalLen uint16
	ID       uint16
	Flags    uint8 // 3 bits: reserved, DF, MF
	FragOff  uint16
	TTL      uint8
	Proto    uint8
	Src, Dst Addr
}

// Checksum computes the RFC 1071 Internet checksum of b.
func Checksum(b []byte) uint16 {
	var sum uint32
	for i := 0; i+1 < len(b); i += 2 {
		sum += uint32(binary.BigEndian.Uint16(b[i:]))
	}
	if len(b)%2 == 1 {
		sum += uint32(b[len(b)-1]) << 8
	}
	for sum>>16 != 0 {
		sum = sum&0xffff + sum>>16
	}
	return ^uint16(sum)
}

// Marshal appends the 20-byte wire header (with checksum) to b.
func (h *Header) Marshal(b []byte) []byte {
	start := len(b)
	b = append(b,
		Version<<4|HeaderLen/4, h.TOS, 0, 0, // version/IHL, TOS, total len
		0, 0, 0, 0, // ID, flags/fragoff
		h.TTL, h.Proto, 0, 0) // TTL, proto, checksum
	b = append(b, h.Src[:]...)
	b = append(b, h.Dst[:]...)
	hdr := b[start:]
	binary.BigEndian.PutUint16(hdr[2:], h.TotalLen)
	binary.BigEndian.PutUint16(hdr[4:], h.ID)
	binary.BigEndian.PutUint16(hdr[6:], uint16(h.Flags)<<13|h.FragOff&0x1fff)
	if hdr[8] == 0 {
		hdr[8] = defaultTTL
	}
	binary.BigEndian.PutUint16(hdr[10:], Checksum(hdr[:HeaderLen]))
	return b
}

// ParseHeader parses and validates an IPv4 header, returning the header
// and the payload (which aliases b).
func ParseHeader(b []byte) (*Header, []byte, error) {
	if len(b) < HeaderLen {
		return nil, nil, ErrTruncated
	}
	if b[0]>>4 != Version {
		return nil, nil, ErrBadVersion
	}
	ihl := int(b[0]&0xf) * 4
	if ihl < HeaderLen || len(b) < ihl {
		return nil, nil, ErrTruncated
	}
	if Checksum(b[:ihl]) != 0 {
		return nil, nil, ErrBadChecksum
	}
	h := &Header{
		TOS:      b[1],
		TotalLen: binary.BigEndian.Uint16(b[2:]),
		ID:       binary.BigEndian.Uint16(b[4:]),
		Flags:    b[6] >> 5,
		FragOff:  binary.BigEndian.Uint16(b[6:]) & 0x1fff,
		TTL:      b[8],
		Proto:    b[9],
	}
	copy(h.Src[:], b[12:16])
	copy(h.Dst[:], b[16:20])
	if int(h.TotalLen) < ihl || int(h.TotalLen) > len(b) {
		return nil, nil, ErrBadLength
	}
	return h, b[ihl:h.TotalLen], nil
}

// UDPHeader is a UDP header. Checksum is left zero (legal for IPv4 and
// what VNET/P's encapsulation relies on for speed).
type UDPHeader struct {
	SrcPort, DstPort uint16
	Length           uint16 // header + payload
}

// Marshal appends the 8-byte UDP header to b.
func (u *UDPHeader) Marshal(b []byte) []byte {
	b = binary.BigEndian.AppendUint16(b, u.SrcPort)
	b = binary.BigEndian.AppendUint16(b, u.DstPort)
	b = binary.BigEndian.AppendUint16(b, u.Length)
	b = binary.BigEndian.AppendUint16(b, 0)
	return b
}

// ParseUDP parses a UDP header, returning it and the payload (aliasing b).
func ParseUDP(b []byte) (*UDPHeader, []byte, error) {
	if len(b) < UDPHeaderLen {
		return nil, nil, ErrTruncated
	}
	u := &UDPHeader{
		SrcPort: binary.BigEndian.Uint16(b[0:]),
		DstPort: binary.BigEndian.Uint16(b[2:]),
		Length:  binary.BigEndian.Uint16(b[4:]),
	}
	if int(u.Length) < UDPHeaderLen || int(u.Length) > len(b) {
		return nil, nil, ErrBadLength
	}
	return u, b[UDPHeaderLen:u.Length], nil
}

// BuildUDP builds a complete IPv4+UDP datagram around payload.
func BuildUDP(src, dst Addr, srcPort, dstPort uint16, id uint16, payload []byte) ([]byte, error) {
	total := HeaderLen + UDPHeaderLen + len(payload)
	if total > 0xffff {
		return nil, ErrBadLength
	}
	h := Header{
		TotalLen: uint16(total),
		ID:       id,
		TTL:      defaultTTL,
		Proto:    ProtoUDP,
		Src:      src,
		Dst:      dst,
	}
	b := make([]byte, 0, total)
	b = h.Marshal(b)
	u := UDPHeader{SrcPort: srcPort, DstPort: dstPort, Length: uint16(UDPHeaderLen + len(payload))}
	b = u.Marshal(b)
	b = append(b, payload...)
	return b, nil
}

// ParseUDPDatagram splits a full IPv4+UDP datagram into its headers and
// payload.
func ParseUDPDatagram(b []byte) (*Header, *UDPHeader, []byte, error) {
	h, rest, err := ParseHeader(b)
	if err != nil {
		return nil, nil, nil, err
	}
	if h.Proto != ProtoUDP {
		return nil, nil, nil, fmt.Errorf("ipv4: protocol %d is not UDP", h.Proto)
	}
	u, payload, err := ParseUDP(rest)
	if err != nil {
		return nil, nil, nil, err
	}
	return h, u, payload, nil
}
