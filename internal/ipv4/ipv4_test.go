package ipv4

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestAddrString(t *testing.T) {
	a := AddrFrom(10, 0, 1, 200)
	if a.String() != "10.0.1.200" {
		t.Fatalf("String = %q", a.String())
	}
}

func TestParseAddr(t *testing.T) {
	a, err := ParseAddr("192.168.0.1")
	if err != nil || a != AddrFrom(192, 168, 0, 1) {
		t.Fatalf("ParseAddr = %v, %v", a, err)
	}
	for _, s := range []string{"", "1.2.3", "256.1.1.1", "-1.2.3.4", "a.b.c.d"} {
		if _, err := ParseAddr(s); err == nil {
			t.Errorf("ParseAddr(%q) succeeded", s)
		}
	}
}

func TestAddrRoundTripProperty(t *testing.T) {
	prop := func(a Addr) bool {
		got, err := ParseAddr(a.String())
		return err == nil && got == a
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestChecksumKnownVector(t *testing.T) {
	// RFC 1071 example data.
	b := []byte{0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7}
	if got := Checksum(b); got != ^uint16(0xddf2) {
		t.Fatalf("checksum = %#x, want %#x", got, ^uint16(0xddf2))
	}
}

func TestChecksumOddLength(t *testing.T) {
	// Trailing byte is padded with zero on the right.
	even := Checksum([]byte{0xab, 0x00})
	odd := Checksum([]byte{0xab})
	if even != odd {
		t.Fatalf("odd-length checksum %#x != padded %#x", odd, even)
	}
}

func TestHeaderRoundTrip(t *testing.T) {
	h := Header{
		TOS:      0x10,
		TotalLen: 100,
		ID:       0xbeef,
		Flags:    2, // DF
		FragOff:  0,
		TTL:      32,
		Proto:    ProtoUDP,
		Src:      AddrFrom(10, 0, 0, 1),
		Dst:      AddrFrom(10, 0, 0, 2),
	}
	b := h.Marshal(nil)
	if len(b) != HeaderLen {
		t.Fatalf("marshalled %d bytes", len(b))
	}
	// Parser needs the payload present to honor TotalLen.
	b = append(b, make([]byte, 80)...)
	g, payload, err := ParseHeader(b)
	if err != nil {
		t.Fatal(err)
	}
	if g.TOS != h.TOS || g.TotalLen != h.TotalLen || g.ID != h.ID ||
		g.Flags != h.Flags || g.TTL != h.TTL || g.Proto != h.Proto ||
		g.Src != h.Src || g.Dst != h.Dst {
		t.Fatalf("round trip mismatch: %+v vs %+v", g, h)
	}
	if len(payload) != 80 {
		t.Fatalf("payload len = %d", len(payload))
	}
}

func TestHeaderChecksumValidation(t *testing.T) {
	h := Header{TotalLen: HeaderLen, TTL: 64, Proto: ProtoUDP}
	b := h.Marshal(nil)
	b[8] ^= 0xff // corrupt TTL
	if _, _, err := ParseHeader(b); err != ErrBadChecksum {
		t.Fatalf("err = %v, want ErrBadChecksum", err)
	}
}

func TestParseHeaderErrors(t *testing.T) {
	if _, _, err := ParseHeader(make([]byte, 10)); err != ErrTruncated {
		t.Fatalf("short: %v", err)
	}
	b := (&Header{TotalLen: HeaderLen}).Marshal(nil)
	b[0] = 6 << 4
	if _, _, err := ParseHeader(b); err != ErrBadVersion {
		t.Fatalf("version: %v", err)
	}
	// TotalLen beyond buffer.
	h := Header{TotalLen: 1000}
	b = h.Marshal(nil)
	if _, _, err := ParseHeader(b); err != ErrBadLength {
		t.Fatalf("length: %v", err)
	}
}

func TestUDPRoundTrip(t *testing.T) {
	u := UDPHeader{SrcPort: 9000, DstPort: 9001, Length: UDPHeaderLen + 5}
	b := u.Marshal(nil)
	b = append(b, []byte("hello")...)
	g, payload, err := ParseUDP(b)
	if err != nil {
		t.Fatal(err)
	}
	if g.SrcPort != 9000 || g.DstPort != 9001 || string(payload) != "hello" {
		t.Fatalf("round trip: %+v %q", g, payload)
	}
}

func TestBuildParseUDPDatagram(t *testing.T) {
	payload := []byte("encapsulated ethernet frame bytes")
	b, err := BuildUDP(AddrFrom(10, 0, 0, 1), AddrFrom(10, 0, 0, 2), 4096, 4096, 42, payload)
	if err != nil {
		t.Fatal(err)
	}
	if len(b) != Overhead+len(payload) {
		t.Fatalf("datagram len = %d, want %d", len(b), Overhead+len(payload))
	}
	h, u, got, err := ParseUDPDatagram(b)
	if err != nil {
		t.Fatal(err)
	}
	if h.Src != AddrFrom(10, 0, 0, 1) || h.Dst != AddrFrom(10, 0, 0, 2) || h.ID != 42 {
		t.Fatalf("IP header %+v", h)
	}
	if u.SrcPort != 4096 || u.DstPort != 4096 {
		t.Fatalf("UDP header %+v", u)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("payload mismatch")
	}
}

func TestBuildUDPTooLarge(t *testing.T) {
	if _, err := BuildUDP(Addr{}, Addr{}, 1, 1, 0, make([]byte, 0x10000)); err != ErrBadLength {
		t.Fatalf("err = %v, want ErrBadLength", err)
	}
}

func TestParseUDPDatagramNotUDP(t *testing.T) {
	h := Header{TotalLen: HeaderLen, Proto: ProtoTCP}
	b := h.Marshal(nil)
	if _, _, _, err := ParseUDPDatagram(b); err == nil {
		t.Fatal("non-UDP datagram parsed as UDP")
	}
}

func TestUDPDatagramRoundTripProperty(t *testing.T) {
	prop := func(src, dst Addr, sp, dp, id uint16, payload []byte) bool {
		if len(payload) > 0xffff-Overhead {
			payload = payload[:0xffff-Overhead]
		}
		b, err := BuildUDP(src, dst, sp, dp, id, payload)
		if err != nil {
			return false
		}
		h, u, got, err := ParseUDPDatagram(b)
		if err != nil {
			return false
		}
		return h.Src == src && h.Dst == dst && u.SrcPort == sp && u.DstPort == dp &&
			h.ID == id && bytes.Equal(got, payload)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
