package topo_test

import (
	"strconv"
	"strings"
	"testing"
	"time"

	"vnetp/internal/control"
	"vnetp/internal/ethernet"
	"vnetp/internal/overlay"
	"vnetp/internal/topo"
)

// TestScriptsTenantScoping checks the generated lines: tenant-prefixed
// link IDs, trailing TENANT clauses, the leading ADD TENANT line when a
// key is supplied, and that everything still parses in the control
// language.
func TestScriptsTenantScoping(t *testing.T) {
	hosts := []topo.Host{
		{Name: "a", Addr: "10.0.0.1:7777", MACs: []ethernet.MAC{ethernet.LocalMAC(1)}},
		{Name: "b", Addr: "10.0.0.2:7777", MACs: []ethernet.MAC{ethernet.LocalMAC(2)}},
	}
	key := strings.Repeat("42", 32)
	scripts, err := topo.ScriptsOpt(topo.Mesh, hosts, topo.Options{Tenant: 7, TenantKey: key})
	if err != nil {
		t.Fatal(err)
	}
	for host, lines := range scripts {
		if lines[0] != "ADD TENANT 7 KEY "+key {
			t.Errorf("%s: first line %q, want ADD TENANT", host, lines[0])
		}
		for _, line := range lines[1:] {
			if !strings.HasSuffix(line, " TENANT 7") {
				t.Errorf("%s: line %q lacks TENANT clause", host, line)
			}
			if strings.Contains(line, "LINK") && !strings.Contains(line, "t7-to-") {
				t.Errorf("%s: link line %q not tenant-prefixed", host, line)
			}
		}
		for _, line := range lines {
			if _, err := control.Parse(line); err != nil {
				t.Errorf("%s: unparseable line %q: %v", host, line, err)
			}
		}
	}

	// Without a key the ADD TENANT line must not appear.
	scripts, err = topo.ScriptsOpt(topo.Mesh, hosts, topo.Options{Tenant: 7})
	if err != nil {
		t.Fatal(err)
	}
	for host, lines := range scripts {
		for _, line := range lines {
			if strings.HasPrefix(line, "ADD TENANT") {
				t.Errorf("%s: key line emitted without TenantKey: %q", host, line)
			}
		}
	}

	// A key without a tenant is a configuration error.
	if _, err := topo.ScriptsOpt(topo.Mesh, hosts, topo.Options{TenantKey: key}); err == nil {
		t.Error("TenantKey without Tenant accepted")
	}
}

// TestTeardownTenantScoping checks teardown never re-emits key material
// and removes the tenant-scoped links and routes.
func TestTeardownTenantScoping(t *testing.T) {
	hosts := []topo.Host{
		{Name: "a", Addr: "10.0.0.1:7777", MACs: []ethernet.MAC{ethernet.LocalMAC(1)}},
		{Name: "b", Addr: "10.0.0.2:7777", MACs: []ethernet.MAC{ethernet.LocalMAC(2)}},
	}
	key := strings.Repeat("42", 32)
	down, err := topo.TeardownOpt(topo.Mesh, hosts, topo.Options{Tenant: 7, TenantKey: key})
	if err != nil {
		t.Fatal(err)
	}
	for host, lines := range down {
		for _, line := range lines {
			if strings.Contains(line, key) || strings.Contains(line, "TENANT 7 KEY") {
				t.Errorf("%s: teardown leaks key material: %q", host, line)
			}
			if !strings.HasPrefix(line, "DEL ") {
				t.Errorf("%s: non-DEL teardown line %q", host, line)
			}
			if strings.Contains(line, "LINK") && !strings.Contains(line, "t7-to-") {
				t.Errorf("%s: link teardown %q not tenant-scoped", host, line)
			}
			if _, err := control.Parse(line); err != nil {
				t.Errorf("%s: unparseable teardown line %q: %v", host, line, err)
			}
		}
	}
}

// TestMultiTenantTopologyLive stacks two tenants' mesh topologies on the
// same two live nodes, entirely from generated scripts (including the
// key-install lines). Each tenant's pair must exchange sealed frames;
// neither tenant may reach — or even route toward — the other's
// endpoints.
func TestMultiTenantTopologyLive(t *testing.T) {
	const n = 2
	nodes := make([]*overlay.Node, n)
	for i := range nodes {
		node, err := overlay.NewNode(hostName(i), "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { node.Close() })
		nodes[i] = node
	}

	type tenantNet struct {
		id   uint32
		key  string
		eps  []*overlay.Endpoint
		macs []ethernet.MAC
	}
	tenants := []*tenantNet{
		{id: 7, key: strings.Repeat("07", 32)},
		{id: 9, key: strings.Repeat("09", 32)},
	}
	for ti, tn := range tenants {
		hosts := make([]topo.Host, n)
		for i, node := range nodes {
			mac := ethernet.LocalMAC(uint32(ti*10 + i + 1))
			ifName := "nic-t" + strconv.FormatUint(uint64(tn.id), 10) + "-" + hostName(i)
			ep, err := node.AttachEndpointTenant(ifName, mac, 1500, tn.id)
			if err != nil {
				t.Fatal(err)
			}
			tn.eps = append(tn.eps, ep)
			tn.macs = append(tn.macs, mac)
			hosts[i] = topo.Host{Name: hostName(i), Addr: node.Addr(), MACs: []ethernet.MAC{mac}}
		}
		scripts, err := topo.ScriptsOpt(topo.Mesh, hosts, topo.Options{Tenant: tn.id, TenantKey: tn.key})
		if err != nil {
			t.Fatal(err)
		}
		applyScripts(t, scripts, nodes)
	}

	// Both tenants exchange concurrently over the shared nodes.
	for _, tn := range tenants {
		for i, from := range tn.eps {
			for j, to := range tn.eps {
				if i == j {
					continue
				}
				if err := from.Send(&ethernet.Frame{
					Dst: to.MAC(), Src: from.MAC(), Type: ethernet.TypeTest,
					Payload: []byte{byte(tn.id), byte(i), byte(j)},
				}); err != nil {
					t.Fatalf("tenant %d %d->%d send: %v", tn.id, i, j, err)
				}
				got, ok := to.Recv(2 * time.Second)
				if !ok {
					t.Fatalf("tenant %d %d->%d: frame never arrived", tn.id, i, j)
				}
				if got.Payload[0] != byte(tn.id) {
					t.Fatalf("tenant %d received foreign frame %v", tn.id, got.Payload)
				}
			}
		}
	}

	// Cross-tenant reach must fail closed: tenant 7's endpoint has no
	// route to tenant 9's MAC (separate tables), so the send errors.
	if err := tenants[0].eps[0].Send(&ethernet.Frame{
		Dst: tenants[1].macs[1], Src: tenants[0].macs[0], Type: ethernet.TypeTest,
	}); err == nil {
		t.Error("cross-tenant send found a route; tables are not isolated")
	}
	// And nothing leaked into the other tenant's receive queues.
	for _, tn := range tenants {
		for i, ep := range tn.eps {
			if f, ok := ep.Recv(50 * time.Millisecond); ok {
				t.Errorf("tenant %d ep %d received stray frame %v", tn.id, i, f.Payload)
			}
		}
	}

	// Every datagram between the nodes was sealed: both tenants' traffic
	// shows up in the seal counters, never as plaintext tenant-0 routing.
	for i, node := range nodes {
		st := statLine(t, node, "sealed_opened")
		if st < 2 {
			t.Errorf("node %d sealed_opened = %d, want >= 2", i, st)
		}
		if rej := statLine(t, node, "seal_rejects"); rej != 0 {
			t.Errorf("node %d seal_rejects = %d, want 0", i, rej)
		}
		if ct := statLine(t, node, "cross_tenant_drops"); ct != 0 {
			t.Errorf("node %d cross_tenant_drops = %d, want 0", i, ct)
		}
		if tc := statLine(t, node, "tenants"); tc != 2 {
			t.Errorf("node %d tenants = %d, want 2", i, tc)
		}
	}
}

// statLine pulls one counter out of a node's LIST STATS snapshot.
func statLine(t *testing.T, node *overlay.Node, key string) uint64 {
	t.Helper()
	for _, line := range node.Stats() {
		if f, ok := strings.CutPrefix(line, key+" "); ok {
			v, err := strconv.ParseUint(f, 10, 64)
			if err != nil {
				t.Fatalf("stat %s: %v", key, err)
			}
			return v
		}
	}
	t.Fatalf("stat %s not in LIST STATS", key)
	return 0
}
