package topo_test

import (
	"strings"
	"testing"
	"time"

	"vnetp/internal/control"
	"vnetp/internal/ethernet"
	"vnetp/internal/overlay"
	"vnetp/internal/topo"
)

// liveHosts brings up n real overlay nodes with one endpoint each and
// returns the topo description plus handles.
func liveHosts(t *testing.T, n int) ([]topo.Host, []*overlay.Node, []*overlay.Endpoint) {
	t.Helper()
	hosts := make([]topo.Host, n)
	nodes := make([]*overlay.Node, n)
	eps := make([]*overlay.Endpoint, n)
	for i := 0; i < n; i++ {
		node, err := overlay.NewNode(hostName(i), "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { node.Close() })
		mac := ethernet.LocalMAC(uint32(i + 1))
		ep, err := node.AttachEndpoint("nic0", mac, 1500)
		if err != nil {
			t.Fatal(err)
		}
		hosts[i] = topo.Host{Name: hostName(i), Addr: node.Addr(), MACs: []ethernet.MAC{mac}}
		nodes[i] = node
		eps[i] = ep
	}
	return hosts, nodes, eps
}

func hostName(i int) string { return string(rune('a' + i)) }

// applyScripts pushes per-host scripts onto the live nodes.
func applyScripts(t *testing.T, scripts map[string][]string, nodes []*overlay.Node) {
	t.Helper()
	for i, node := range nodes {
		script := strings.Join(scripts[hostName(i)], "\n")
		if err := control.RunScript(node, strings.NewReader(script)); err != nil {
			t.Fatalf("host %s: %v\nscript:\n%s", hostName(i), err, script)
		}
	}
}

// verifyAllPairs checks every ordered endpoint pair can exchange a frame.
func verifyAllPairs(t *testing.T, eps []*overlay.Endpoint) {
	t.Helper()
	for i, from := range eps {
		for j, to := range eps {
			if i == j {
				continue
			}
			payload := []byte{byte(i), byte(j)}
			if err := from.Send(&ethernet.Frame{
				Dst: to.MAC(), Src: from.MAC(), Type: ethernet.TypeTest, Payload: payload,
			}); err != nil {
				t.Fatalf("%d->%d send: %v", i, j, err)
			}
			got, ok := to.Recv(2 * time.Second)
			if !ok {
				t.Fatalf("%d->%d: frame never arrived", i, j)
			}
			if got.Payload[0] != byte(i) || got.Payload[1] != byte(j) {
				t.Fatalf("%d->%d: wrong frame %v", i, j, got.Payload)
			}
		}
	}
}

func TestMeshTopology(t *testing.T) {
	hosts, nodes, eps := liveHosts(t, 4)
	scripts, err := topo.Scripts(topo.Mesh, hosts, 0, "udp")
	if err != nil {
		t.Fatal(err)
	}
	applyScripts(t, scripts, nodes)
	verifyAllPairs(t, eps)
	// Mesh: n-1 links per node.
	for i, node := range nodes {
		if len(node.Links()) != 3 {
			t.Errorf("node %d has %d links, want 3", i, len(node.Links()))
		}
	}
}

func TestStarTopologyTransits(t *testing.T) {
	hosts, nodes, eps := liveHosts(t, 4)
	const hub = 1
	scripts, err := topo.Scripts(topo.Star, hosts, hub, "udp")
	if err != nil {
		t.Fatal(err)
	}
	applyScripts(t, scripts, nodes)
	verifyAllPairs(t, eps)
	// Spokes have exactly one link; the hub has n-1.
	for i, node := range nodes {
		want := 1
		if i == hub {
			want = 3
		}
		if len(node.Links()) != want {
			t.Errorf("node %d has %d links, want %d", i, len(node.Links()), want)
		}
	}
	// Spoke-to-spoke traffic must transit the hub.
	if nodes[hub].EncapSent.Load() == 0 {
		t.Error("hub never forwarded transit traffic")
	}
}

func TestRingTopologyTransits(t *testing.T) {
	hosts, nodes, eps := liveHosts(t, 4)
	scripts, err := topo.Scripts(topo.Ring, hosts, 0, "udp")
	if err != nil {
		t.Fatal(err)
	}
	applyScripts(t, scripts, nodes)
	verifyAllPairs(t, eps)
	for i, node := range nodes {
		if len(node.Links()) != 1 {
			t.Errorf("node %d has %d links, want 1 (ring)", i, len(node.Links()))
		}
	}
}

func TestTeardown(t *testing.T) {
	hosts, nodes, eps := liveHosts(t, 3)
	scripts, err := topo.Scripts(topo.Mesh, hosts, 0, "udp")
	if err != nil {
		t.Fatal(err)
	}
	applyScripts(t, scripts, nodes)
	verifyAllPairs(t, eps)

	down, err := topo.Teardown(topo.Mesh, hosts, 0)
	if err != nil {
		t.Fatal(err)
	}
	applyScripts(t, down, nodes)
	for i, node := range nodes {
		if len(node.Links()) != 0 {
			t.Errorf("node %d still has links after teardown: %v", i, node.Links())
		}
		// Only the local endpoint route should remain.
		if len(node.Routes()) != 1 {
			t.Errorf("node %d routes after teardown: %v", i, node.Routes())
		}
	}
	// Traffic must now fail.
	if err := eps[0].Send(&ethernet.Frame{Dst: eps[1].MAC(), Src: eps[0].MAC(), Type: ethernet.TypeTest}); err == nil {
		t.Error("send succeeded after teardown")
	}
}

func TestScriptsValidation(t *testing.T) {
	if _, err := topo.Scripts(topo.Mesh, []topo.Host{{Name: "a", Addr: "x:1"}}, 0, ""); err == nil {
		t.Error("single host accepted")
	}
	two := []topo.Host{{Name: "a", Addr: "x:1"}, {Name: "a", Addr: "x:2"}}
	if _, err := topo.Scripts(topo.Mesh, two, 0, ""); err == nil {
		t.Error("duplicate names accepted")
	}
	ok := []topo.Host{{Name: "a", Addr: "x:1"}, {Name: "b", Addr: "x:2"}}
	if _, err := topo.Scripts(topo.Star, ok, 5, ""); err == nil {
		t.Error("out-of-range hub accepted")
	}
	if _, err := topo.Scripts(topo.Kind(99), ok, 0, ""); err == nil {
		t.Error("unknown kind accepted")
	}
	if topo.Mesh.String() != "mesh" || topo.Star.String() != "star" ||
		topo.Ring.String() != "ring" || topo.Kind(9).String() != "unknown" {
		t.Error("kind strings")
	}
}

// Every generated line must parse in the control language.
func TestScriptsParse(t *testing.T) {
	hosts := []topo.Host{
		{Name: "a", Addr: "10.0.0.1:7777", MACs: []ethernet.MAC{ethernet.LocalMAC(1)}},
		{Name: "b", Addr: "10.0.0.2:7777", MACs: []ethernet.MAC{ethernet.LocalMAC(2), ethernet.LocalMAC(3)}},
		{Name: "c", Addr: "10.0.0.3:7777", MACs: nil},
	}
	for _, kind := range []topo.Kind{topo.Mesh, topo.Star, topo.Ring} {
		scripts, err := topo.Scripts(kind, hosts, 0, "tcp")
		if err != nil {
			t.Fatal(err)
		}
		for host, lines := range scripts {
			for _, line := range lines {
				if _, err := control.Parse(line); err != nil {
					t.Errorf("%v/%s: unparseable line %q: %v", kind, host, line, err)
				}
			}
		}
	}
}
