// Package topo generates VNET control-language scripts that build whole
// overlay topologies at once — the paper's "collection of tools [that]
// allows for the wholesale construction and teardown of VNET topologies"
// (Sect. 3). Given the participating hosts and the guest MACs attached at
// each, it emits one script per host establishing the links and per-MAC
// routes of a full mesh, a star, or a ring.
//
// Star and ring topologies rely on transit forwarding: a frame arriving
// from a link may be routed onward over another link, which both the
// simulated VNET/P core and the real-socket overlay node support.
package topo

import (
	"fmt"

	"vnetp/internal/ethernet"
)

// Host is one overlay node and the guest endpoints it hosts.
type Host struct {
	Name string
	// Addr is the node's encapsulation address ("ip:port").
	Addr string
	// MACs are the guest endpoints attached at this node.
	MACs []ethernet.MAC
}

// Kind selects the overlay topology.
type Kind int

const (
	// Mesh links every pair of hosts directly (the paper's evaluation
	// configuration; lowest latency, most links).
	Mesh Kind = iota
	// Star routes all traffic through a hub host (fewest links; the hub
	// is a transit point, as a VNET proxy/waypoint daemon would be).
	Star
	// Ring links each host to its successor; traffic transits clockwise.
	Ring
)

func (k Kind) String() string {
	switch k {
	case Mesh:
		return "mesh"
	case Star:
		return "star"
	case Ring:
		return "ring"
	default:
		return "unknown"
	}
}

// Options parameterizes script generation beyond the topology shape.
type Options struct {
	// Proto is the link transport, "udp" (default) or "tcp".
	Proto string
	// Hub selects the center host for Star (ignored otherwise).
	Hub int
	// Tenant, when nonzero, scopes the whole topology to one tenant:
	// every ADD LINK and ADD ROUTE carries a TENANT clause, so links are
	// sealed under the tenant's key and routes land in its private table.
	Tenant uint32
	// TenantKey is the tenant's AEAD key in hex (vnetctl newkey). When
	// set (with Tenant), each host script begins with the ADD TENANT line
	// installing it — for operators distributing one script per host.
	// Leave empty to manage keys out of band.
	TenantKey string
}

// linkID names the link from one host toward another, disambiguated per
// tenant so multiple tenants' topologies coexist on one node.
func linkID(to Host, tenant uint32) string {
	if tenant != 0 {
		return fmt.Sprintf("t%d-to-%s", tenant, to.Name)
	}
	return "to-" + to.Name
}

// tenantSuffix renders the trailing TENANT clause for scoped commands.
func tenantSuffix(tenant uint32) string {
	if tenant == 0 {
		return ""
	}
	return fmt.Sprintf(" TENANT %d", tenant)
}

func addLink(to Host, opt Options) string {
	return fmt.Sprintf("ADD LINK %s REMOTE %s %s%s",
		linkID(to, opt.Tenant), to.Addr, opt.Proto, tenantSuffix(opt.Tenant))
}

func addRouteVia(mac ethernet.MAC, to Host, opt Options) string {
	return fmt.Sprintf("ADD ROUTE %s any link %s%s",
		mac, linkID(to, opt.Tenant), tenantSuffix(opt.Tenant))
}

// Scripts returns the per-host control scripts (keyed by host name) that
// realize the topology. hub selects the center host for Star (ignored
// otherwise). proto is "udp" or "tcp". Local-delivery routes for a host's
// own endpoints are installed by AttachEndpoint and are not emitted here.
func Scripts(kind Kind, hosts []Host, hub int, proto string) (map[string][]string, error) {
	return ScriptsOpt(kind, hosts, Options{Proto: proto, Hub: hub})
}

// ScriptsOpt is Scripts with the full option set (tenant scoping).
func ScriptsOpt(kind Kind, hosts []Host, opt Options) (map[string][]string, error) {
	if len(hosts) < 2 {
		return nil, fmt.Errorf("topo: need at least 2 hosts, got %d", len(hosts))
	}
	if opt.Proto == "" {
		opt.Proto = "udp"
	}
	if opt.TenantKey != "" && opt.Tenant == 0 {
		return nil, fmt.Errorf("topo: TenantKey set without Tenant")
	}
	hub := opt.Hub
	seen := map[string]bool{}
	for _, h := range hosts {
		if h.Name == "" || h.Addr == "" {
			return nil, fmt.Errorf("topo: host %+v missing name or address", h)
		}
		if seen[h.Name] {
			return nil, fmt.Errorf("topo: duplicate host name %q", h.Name)
		}
		seen[h.Name] = true
	}
	out := make(map[string][]string, len(hosts))
	switch kind {
	case Mesh:
		for i, h := range hosts {
			var script []string
			for j, peer := range hosts {
				if i == j {
					continue
				}
				script = append(script, addLink(peer, opt))
				for _, mac := range peer.MACs {
					script = append(script, addRouteVia(mac, peer, opt))
				}
			}
			out[h.Name] = script
		}
	case Star:
		if hub < 0 || hub >= len(hosts) {
			return nil, fmt.Errorf("topo: hub index %d out of range", hub)
		}
		center := hosts[hub]
		for i, h := range hosts {
			if i == hub {
				// The hub links to every spoke and routes each remote MAC
				// to its home.
				var script []string
				for j, peer := range hosts {
					if j == hub {
						continue
					}
					script = append(script, addLink(peer, opt))
					for _, mac := range peer.MACs {
						script = append(script, addRouteVia(mac, peer, opt))
					}
				}
				out[h.Name] = script
				continue
			}
			// Spokes reach every non-local MAC via the hub.
			script := []string{addLink(center, opt)}
			for j, peer := range hosts {
				if j == i {
					continue
				}
				for _, mac := range peer.MACs {
					script = append(script, addRouteVia(mac, center, opt))
				}
			}
			out[h.Name] = script
		}
	case Ring:
		for i, h := range hosts {
			next := hosts[(i+1)%len(hosts)]
			script := []string{addLink(next, opt)}
			// Every non-local MAC is one hop clockwise; transit forwards
			// the rest of the way.
			for j, peer := range hosts {
				if j == i {
					continue
				}
				for _, mac := range peer.MACs {
					script = append(script, addRouteVia(mac, next, opt))
				}
			}
			out[h.Name] = script
		}
	default:
		return nil, fmt.Errorf("topo: unknown topology %v", kind)
	}
	if opt.Tenant != 0 && opt.TenantKey != "" {
		// Key installation leads each script so the tenant exists before
		// its links and routes reference it.
		tenantLine := fmt.Sprintf("ADD TENANT %d KEY %s", opt.Tenant, opt.TenantKey)
		for name, script := range out {
			out[name] = append([]string{tenantLine}, script...)
		}
	}
	return out, nil
}

// Teardown returns per-host scripts removing everything Scripts
// installed.
func Teardown(kind Kind, hosts []Host, hub int) (map[string][]string, error) {
	return TeardownOpt(kind, hosts, Options{Hub: hub})
}

// TeardownOpt is Teardown with the full option set. Tenant keys are not
// removed (the control language has no DEL TENANT; rotation replaces).
func TeardownOpt(kind Kind, hosts []Host, opt Options) (map[string][]string, error) {
	opt.TenantKey = "" // never re-emit key material in teardown scripts
	built, err := ScriptsOpt(kind, hosts, opt)
	if err != nil {
		return nil, err
	}
	out := make(map[string][]string, len(built))
	for name, script := range built {
		// Reverse order: routes first, then links.
		var routes, links []string
		for _, line := range script {
			var del string
			if _, err := fmt.Sscanf(line, "ADD LINK %s", &del); err == nil {
				links = append(links, "DEL LINK "+del)
				continue
			}
			routes = append(routes, "DEL"+line[3:])
		}
		out[name] = append(routes, links...)
	}
	return out, nil
}
