package npb

import (
	"time"

	"vnetp/internal/core"
	"vnetp/internal/lab"
	"vnetp/internal/netstack"
	"vnetp/internal/phys"
	"vnetp/internal/sim"
)

// Row is one line of the Fig. 14 table.
type Row struct {
	ID         string
	Native1G   float64 // Mop/s total
	VNETP1G    float64
	Ratio1G    float64
	Native10G  float64
	VNETP10G   float64
	Ratio10G   float64
	MopsAnchor float64 // nominal total Mop count used for all four columns
}

// PaperNative10G holds the paper's Native-10G Mop/s totals (Fig. 14),
// used to anchor each row's nominal op count; all other columns are
// simulation outputs.
var PaperNative10G = map[string]float64{
	"ep.B.8":  102.18,
	"ep.B.16": 208,
	"ep.C.8":  103.13,
	"ep.C.16": 206.22,
	"mg.B.8":  5110.29,
	"mg.B.16": 9137.26,
	"cg.B.8":  2096.64,
	"cg.B.16": 592.08,
	"ft.B.16": 1432.3,
	"is.B.8":  59.15,
	"is.B.16": 23.09,
	"is.C.8":  132.08,
	"is.C.16": 77.77,
	"lu.B.8":  7173.65,
	"lu.B.16": 12981.86,
	"sp.B.9":  2634.53,
	"sp.B.16": 3010.71,
	"bt.B.9":  5229.01,
	"bt.B.16": 6315.11,
}

// Rows lists the Fig. 14 table rows in paper order.
var Rows = []struct {
	Name  string
	Class byte
	Procs int
}{
	{"ep", 'B', 8}, {"ep", 'B', 16}, {"ep", 'C', 8}, {"ep", 'C', 16},
	{"mg", 'B', 8}, {"mg", 'B', 16},
	{"cg", 'B', 8}, {"cg", 'B', 16},
	{"ft", 'B', 16},
	{"is", 'B', 8}, {"is", 'B', 16}, {"is", 'C', 8}, {"is", 'C', 16},
	{"lu", 'B', 8}, {"lu", 'B', 16},
	{"sp", 'B', 9}, {"sp", 'B', 16},
	{"bt", 'B', 9}, {"bt", 'B', 16},
}

// vmLayout maps procs to the paper's VM/process layout (Sect. 5.5): 8
// procs = 2 VMs x 4; 9 procs = 4 VMs with 2-3 each; 16 procs = 4 VMs x 4.
func vmLayout(procs int) []int {
	switch procs {
	case 8:
		return []int{4, 4}
	case 9:
		return []int{3, 2, 2, 2}
	case 16:
		return []int{4, 4, 4, 4}
	default:
		// One VM per 4 procs, remainder spread.
		var l []int
		for p := procs; p > 0; p -= 4 {
			if p >= 4 {
				l = append(l, 4)
			} else {
				l = append(l, p)
			}
		}
		return l
	}
}

// stacksFor builds per-rank stacks in the paper's layout over the given
// device, virtualized (VNET/P) or native.
func stacksFor(eng *sim.Engine, dev phys.Device, procs int, virtualized bool) []*netstack.Stack {
	layout := vmLayout(procs)
	var out []*netstack.Stack
	if virtualized {
		tb := lab.NewVNETPTestbed(eng, lab.Config{Dev: dev, N: len(layout), Params: core.DefaultParams()})
		for i, k := range layout {
			for j := 0; j < k; j++ {
				out = append(out, tb.Stacks[i])
			}
		}
		return out
	}
	tb := lab.NewNativeTestbed(eng, dev, len(layout))
	for i, k := range layout {
		for j := 0; j < k; j++ {
			out = append(out, tb.Stacks[i])
		}
	}
	return out
}

// RunConfig measures one benchmark under one configuration, returning the
// elapsed simulated time.
func RunConfig(name string, class byte, procs int, dev phys.Device, virtualized bool) time.Duration {
	spec := Specs(name, class, procs)
	if spec == nil {
		panic("npb: unknown benchmark " + name)
	}
	eng := sim.New()
	stacks := stacksFor(eng, dev, procs, virtualized)
	return Run(eng, stacks, spec)
}

// Table regenerates Fig. 14: every row under Native/VNET-P x 1G/10G.
func Table() []Row {
	out := make([]Row, 0, len(Rows))
	for _, rw := range Rows {
		spec := Specs(rw.Name, rw.Class, rw.Procs)
		id := spec.ID()
		n10 := RunConfig(rw.Name, rw.Class, rw.Procs, phys.Eth10G, false)
		v10 := RunConfig(rw.Name, rw.Class, rw.Procs, phys.Eth10G, true)
		n1 := RunConfig(rw.Name, rw.Class, rw.Procs, phys.Eth1G, false)
		v1 := RunConfig(rw.Name, rw.Class, rw.Procs, phys.Eth1G, true)
		// Anchor the nominal Mop count on the paper's Native-10G rate.
		mops := PaperNative10G[id] * n10.Seconds()
		row := Row{
			ID:         id,
			MopsAnchor: mops,
			Native10G:  mops / n10.Seconds(),
			VNETP10G:   mops / v10.Seconds(),
			Native1G:   mops / n1.Seconds(),
			VNETP1G:    mops / v1.Seconds(),
		}
		row.Ratio10G = row.VNETP10G / row.Native10G
		row.Ratio1G = row.VNETP1G / row.Native1G
		out = append(out, row)
	}
	return out
}
