// Package npb implements the NAS Parallel Benchmarks (NPB-MPI 2.4)
// workload models used in the paper's Fig. 14: the five kernels (EP, MG,
// CG, FT, IS) and three pseudo-applications (LU, SP, BT), each as its
// authentic communication pattern plus calibrated compute phases, run
// over the simulated MPI layer.
//
// Problem volumes are scaled down uniformly (documented in
// EXPERIMENTS.md) so a benchmark completes in tens of simulated
// milliseconds; because Mop/s totals are ops/elapsed and both scale, the
// VNET/P-vs-native ratios — the content of Fig. 14 — are preserved. The
// nominal Mop counts are anchored so that the simulated Native-10G column
// matches the paper's (the baseline anchor); every other column is then
// an output of the simulation.
package npb

import (
	"fmt"
	"time"

	"vnetp/internal/mpi"
	"vnetp/internal/netstack"
	"vnetp/internal/sim"
)

// Spec defines one benchmark instance (name.class.procs).
type Spec struct {
	Name  string
	Class byte
	Procs int
	// Iters is the number of (compute, communicate) iterations.
	Iters int
	// Comp is the per-rank compute time per iteration.
	Comp time.Duration
	// Comm performs one iteration's communication for rank r.
	Comm func(p *sim.Proc, r *mpi.Rank, iter int)
	// Fini performs the closing communication (verification reductions).
	Fini func(p *sim.Proc, r *mpi.Rank)
}

// ID returns the paper's "name.class.procs" label.
func (s *Spec) ID() string { return fmt.Sprintf("%s.%c.%d", s.Name, s.Class, s.Procs) }

// Stats aggregates a run's communication totals across ranks.
type Stats struct {
	Elapsed   time.Duration
	Msgs      uint64 // messages sent
	Received  uint64 // messages received
	BytesSent uint64
}

// Run executes the benchmark over per-rank stacks and returns the timed
// region's duration (after a warm-up iteration and a barrier, as NPB
// does).
func Run(eng *sim.Engine, stacks []*netstack.Stack, spec *Spec) time.Duration {
	return RunStats(eng, stacks, spec).Elapsed
}

// RunStats is Run plus aggregate communication counters.
func RunStats(eng *sim.Engine, stacks []*netstack.Stack, spec *Spec) Stats {
	if len(stacks) != spec.Procs {
		panic(fmt.Sprintf("npb: %s needs %d stacks, got %d", spec.ID(), spec.Procs, len(stacks)))
	}
	w := mpi.NewWorld(eng, stacks)
	var start, end sim.Time
	var stats Stats
	w.Launch(func(p *sim.Proc, r *mpi.Rank) {
		// Untimed warm-up iteration (NPB discards iteration 1 for some
		// benchmarks; it also settles the adaptive overlay).
		p.Sleep(spec.Comp / 4)
		spec.Comm(p, r, -1)
		r.Barrier(p)
		if r.ID() == 0 {
			start = p.Now()
		}
		for it := 0; it < spec.Iters; it++ {
			p.Sleep(spec.Comp)
			spec.Comm(p, r, it)
		}
		if spec.Fini != nil {
			spec.Fini(p, r)
		}
		r.Barrier(p)
		if r.ID() == 0 {
			end = p.Now()
		}
		stats.Msgs += r.Sent
		stats.Received += r.Received
		stats.BytesSent += r.BytesSent
	})
	eng.Go("await", func(p *sim.Proc) { w.AwaitAll(p) })
	eng.Run()
	eng.Close()
	stats.Elapsed = end.Sub(start)
	return stats
}

// grid2D returns near-square process-grid dimensions for n ranks.
func grid2D(n int) (px, py int) {
	px = 1
	for d := 1; d*d <= n; d++ {
		if n%d == 0 {
			px = d
		}
	}
	return px, n / px
}

// neighbors2D returns the four torus neighbors of rank id on a px-by-py
// grid.
func neighbors2D(id, px, py int) (north, south, west, east int) {
	x, y := id%px, id/px
	north = x + ((y+1)%py)*px
	south = x + ((y-1+py)%py)*px
	west = (x-1+px)%px + y*px
	east = (x+1)%px + y*px
	return
}

// Communication pattern builders. Volumes are class-B sizes scaled by
// 1/64. Class C roughly doubles per-process work and volume at these
// process counts (the real C/B step is ~4x work and ~2.5x volume; the
// integer factor keeps the model simple and the ratios stable).

func classScale(class byte) int {
	if class == 'C' {
		return 2
	}
	return 1
}

// epComm: EP is embarrassingly parallel — no per-iteration communication.
func epComm(p *sim.Proc, r *mpi.Rank, iter int) {}

func epFini(p *sim.Proc, r *mpi.Rank) {
	for i := 0; i < 3; i++ {
		r.Allreduce(p, 64) // sx, sy, counts
	}
}

// mgComm: multigrid V-cycle — face exchanges with 3D neighbors at every
// grid level, sizes shrinking per level, plus one small allreduce.
func mgComm(faceBytes []int) func(p *sim.Proc, r *mpi.Rank, iter int) {
	return func(p *sim.Proc, r *mpi.Rank, iter int) {
		n := r.Size()
		px, py := grid2D(n)
		north, south, west, east := neighbors2D(r.ID(), px, py)
		for lvl, size := range faceBytes {
			tag := 1000 + lvl
			r.SendRecv(p, north, tag, size, south, tag)
			r.SendRecv(p, east, tag+100, size, west, tag+100)
		}
		r.Allreduce(p, 8)
	}
}

// cgComm: conjugate gradient — transpose exchanges with butterfly
// partners plus two dot-product reductions per iteration.
func cgComm(exchBytes int) func(p *sim.Proc, r *mpi.Rank, iter int) {
	return func(p *sim.Proc, r *mpi.Rank, iter int) {
		n := r.Size()
		for mask := 1; mask < n; mask <<= 1 {
			partner := r.ID() ^ mask
			if partner < n {
				r.SendRecv(p, partner, 2000+mask, exchBytes, partner, 2000+mask)
			}
		}
		r.Allreduce(p, 8)
		r.Allreduce(p, 8)
	}
}

// ftComm: spectral transform — a global transpose (all-to-all) dominates.
func ftComm(blockBytes int) func(p *sim.Proc, r *mpi.Rank, iter int) {
	return func(p *sim.Proc, r *mpi.Rank, iter int) {
		r.Alltoall(p, blockBytes)
	}
}

func ftFini(p *sim.Proc, r *mpi.Rank) {
	r.Allreduce(p, 16) // checksum
}

// isComm: integer sort — key-bucket redistribution: small allreduce for
// bucket sizes, then an all-to-all-v of keys.
func isComm(keysBytes int) func(p *sim.Proc, r *mpi.Rank, iter int) {
	return func(p *sim.Proc, r *mpi.Rank, iter int) {
		r.Allreduce(p, 1024) // bucket size counts
		r.Alltoall(p, keysBytes)
	}
}

// luComm: SSOR wavefront — a pipeline of many small north/west to
// south/east exchanges per iteration: latency-dominated.
func luComm(steps, msgBytes int) func(p *sim.Proc, r *mpi.Rank, iter int) {
	return func(p *sim.Proc, r *mpi.Rank, iter int) {
		n := r.Size()
		px, py := grid2D(n)
		north, south, west, east := neighbors2D(r.ID(), px, py)
		x, y := r.ID()%px, r.ID()/px
		for s := 0; s < steps; s++ {
			// Lower triangular sweep: receive from north/west, send to
			// south/east (pipelined; edges skip).
			tag := 3000 + s
			if y > 0 {
				r.Recv(p, south, tag)
			}
			if x > 0 {
				r.Recv(p, west, tag)
			}
			if y < py-1 {
				r.Send(p, north, tag, msgBytes)
			}
			if x < px-1 {
				r.Send(p, east, tag, msgBytes)
			}
		}
		r.Allreduce(p, 40) // residual norms
	}
}

// spbtComm: ADI face exchanges in three sweeps per iteration.
func spbtComm(faceBytes int) func(p *sim.Proc, r *mpi.Rank, iter int) {
	return func(p *sim.Proc, r *mpi.Rank, iter int) {
		n := r.Size()
		px, py := grid2D(n)
		north, south, west, east := neighbors2D(r.ID(), px, py)
		for sweep := 0; sweep < 3; sweep++ {
			tag := 4000 + sweep
			r.SendRecv(p, east, tag, faceBytes, west, tag)
			r.SendRecv(p, west, tag+10, faceBytes, east, tag+10)
			r.SendRecv(p, north, tag+20, faceBytes, south, tag+20)
			r.SendRecv(p, south, tag+30, faceBytes, north, tag+30)
		}
	}
}

// Specs returns the benchmark instance for a paper row, or nil if the
// row is not part of Fig. 14.
func Specs(name string, class byte, procs int) *Spec {
	cs := classScale(class)
	switch name {
	case "ep":
		return &Spec{
			Name: "ep", Class: class, Procs: procs,
			Iters: 4, Comp: time.Duration(cs) * 12 * time.Millisecond,
			Comm: epComm, Fini: epFini,
		}
	case "mg":
		// Face sizes shrink with the process count (surface-to-volume
		// scaling, roughly p^(-2/3)).
		base := 64000 * cs
		if procs >= 16 {
			base = 36000 * cs
		}
		faces := []int{base, base / 4, base / 16, base / 64}
		return &Spec{
			Name: "mg", Class: class, Procs: procs,
			Iters: 8, Comp: 1200 * time.Microsecond * time.Duration(cs),
			Comm: mgComm(faces),
		}
	case "cg":
		// Exchange volume scales with the per-process partition.
		return &Spec{
			Name: "cg", Class: class, Procs: procs,
			Iters: 15, Comp: 900 * time.Microsecond * time.Duration(cs),
			Comm: cgComm(393216 / procs * cs),
		}
	case "ft":
		return &Spec{
			Name: "ft", Class: class, Procs: procs,
			Iters: 6, Comp: 2500 * time.Microsecond * time.Duration(cs),
			Comm: ftComm(2 << 20 / procs / procs * 4 * cs), Fini: ftFini,
		}
	case "is":
		// IS moves each key once; per-pair buckets are small at these
		// scales, which is why the paper sees native performance.
		return &Spec{
			Name: "is", Class: class, Procs: procs,
			Iters: 10, Comp: 8 * time.Millisecond * time.Duration(cs),
			Comm: isComm(2 << 20 * cs / procs / procs / 2),
		}
	case "lu":
		// Wavefront depth grows with the grid perimeter: many serial
		// small messages make LU the most latency-bound row.
		return &Spec{
			Name: "lu", Class: class, Procs: procs,
			Iters: 12, Comp: 2400 * time.Microsecond * time.Duration(cs),
			Comm: luComm(3*procs, 2048*cs),
		}
	case "sp":
		return &Spec{
			Name: "sp", Class: class, Procs: procs,
			Iters: 12, Comp: 2400 * time.Microsecond * time.Duration(cs),
			Comm: spbtComm(150000 / procs * cs),
		}
	case "bt":
		return &Spec{
			Name: "bt", Class: class, Procs: procs,
			Iters: 8, Comp: 5200 * time.Microsecond * time.Duration(cs),
			Comm: spbtComm(120000 / procs * cs),
		}
	}
	return nil
}
