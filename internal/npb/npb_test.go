package npb

import (
	"testing"
	"time"
	"vnetp/internal/sim"

	"vnetp/internal/phys"
)

func TestSpecsCoverAllRows(t *testing.T) {
	for _, rw := range Rows {
		s := Specs(rw.Name, rw.Class, rw.Procs)
		if s == nil {
			t.Fatalf("no spec for %s.%c.%d", rw.Name, rw.Class, rw.Procs)
		}
		if s.ID() == "" || s.Iters <= 0 || s.Comp <= 0 || s.Comm == nil {
			t.Fatalf("incomplete spec %+v", s)
		}
		if _, ok := PaperNative10G[s.ID()]; !ok {
			t.Fatalf("no paper anchor for %s", s.ID())
		}
	}
	if Specs("zz", 'B', 8) != nil {
		t.Fatal("unknown benchmark returned a spec")
	}
}

func TestVMLayoutMatchesPaper(t *testing.T) {
	sum := func(l []int) int {
		s := 0
		for _, v := range l {
			s += v
		}
		return s
	}
	if l := vmLayout(8); len(l) != 2 || sum(l) != 8 {
		t.Fatalf("8 procs: %v", l)
	}
	if l := vmLayout(9); len(l) != 4 || sum(l) != 9 {
		t.Fatalf("9 procs: %v", l)
	}
	if l := vmLayout(16); len(l) != 4 || sum(l) != 16 {
		t.Fatalf("16 procs: %v", l)
	}
	if l := vmLayout(6); sum(l) != 6 {
		t.Fatalf("6 procs: %v", l)
	}
}

func TestGrid2D(t *testing.T) {
	cases := map[int][2]int{8: {2, 4}, 9: {3, 3}, 16: {4, 4}, 12: {3, 4}, 7: {1, 7}}
	for n, want := range cases {
		px, py := grid2D(n)
		if px*py != n || px != want[0] || py != want[1] {
			t.Errorf("grid2D(%d) = %dx%d, want %dx%d", n, px, py, want[0], want[1])
		}
	}
}

func TestNeighbors2DInverse(t *testing.T) {
	px, py := 4, 4
	for id := 0; id < 16; id++ {
		n, s, w, e := neighbors2D(id, px, py)
		// My north's south is me, etc.
		_, ns, _, _ := neighbors2D(n, px, py)
		if ns != id {
			t.Fatalf("north/south not inverse at %d", id)
		}
		_, _, ew, _ := neighbors2D(e, px, py)
		if ew != id {
			t.Fatalf("east/west not inverse at %d", id)
		}
		nn, _, _, _ := neighbors2D(s, px, py)
		if nn != id {
			t.Fatalf("south/north not inverse at %d", id)
		}
		_ = w
	}
}

func TestEPNearNative(t *testing.T) {
	n := RunConfig("ep", 'B', 8, phys.Eth10G, false)
	v := RunConfig("ep", 'B', 8, phys.Eth10G, true)
	r := n.Seconds() / v.Seconds()
	t.Logf("ep.B.8: native %v, vnetp %v (ratio %.3f)", n, v, r)
	if r < 0.97 {
		t.Errorf("EP ratio %.3f, want ~1.0 (paper 99.9%%)", r)
	}
}

func TestLUDegradesMoreThanEP(t *testing.T) {
	// LU (latency-bound wavefront) must lose more to the overlay than EP.
	nLU := RunConfig("lu", 'B', 16, phys.Eth10G, false)
	vLU := RunConfig("lu", 'B', 16, phys.Eth10G, true)
	rLU := nLU.Seconds() / vLU.Seconds()
	t.Logf("lu.B.16: ratio %.3f", rLU)
	if rLU > 0.95 {
		t.Errorf("LU ratio %.3f: wavefront should show clear overlay cost", rLU)
	}
	if rLU < 0.5 {
		t.Errorf("LU ratio %.3f: too degraded (paper 74%%)", rLU)
	}
}

func TestMessageConservation(t *testing.T) {
	// Every message any rank sends must be received by some rank: the
	// benchmark communication patterns are closed systems.
	for _, rw := range []struct {
		name  string
		procs int
	}{{"mg", 8}, {"cg", 8}, {"ft", 16}, {"lu", 8}, {"sp", 9}, {"bt", 9}, {"is", 8}} {
		spec := Specs(rw.name, 'B', rw.procs)
		eng := sim.New()
		stacks := stacksFor(eng, phys.Eth10G, rw.procs, true)
		st := RunStats(eng, stacks, spec)
		if st.Msgs == 0 {
			t.Errorf("%s: no messages", spec.ID())
			continue
		}
		if st.Msgs != st.Received {
			t.Errorf("%s: sent %d != received %d (lost or phantom messages)",
				spec.ID(), st.Msgs, st.Received)
		}
	}
}

func TestCommVolumeDeterministic(t *testing.T) {
	// Same spec, same config: identical message counts and elapsed time.
	run := func() Stats {
		eng := sim.New()
		return RunStats(eng, stacksFor(eng, phys.Eth10G, 8, true), Specs("cg", 'B', 8))
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("runs differ: %+v vs %+v", a, b)
	}
}

func TestBenchmarksCompleteAllConfigs(t *testing.T) {
	// Every kernel completes (no deadlock) in both configs at its
	// smallest scale, on both networks.
	for _, rw := range []struct {
		name  string
		procs int
	}{{"ep", 8}, {"mg", 8}, {"cg", 8}, {"ft", 16}, {"is", 8}, {"lu", 8}, {"sp", 9}, {"bt", 9}} {
		for _, virt := range []bool{false, true} {
			el := RunConfig(rw.name, 'B', rw.procs, phys.Eth10G, virt)
			if el <= 0 || el > 10*time.Second {
				t.Fatalf("%s.%d virt=%v: elapsed %v", rw.name, rw.procs, virt, el)
			}
		}
	}
}
