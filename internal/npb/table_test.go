package npb

import "testing"

// paperRatio10G is Fig. 14's VNET-P-10G/Native-10G column, for shape
// comparison in logs and coarse assertions.
var paperRatio10G = map[string]float64{
	"ep.B.8": 0.999, "ep.B.16": 0.993, "ep.C.8": 0.990, "ep.C.16": 0.989,
	"mg.B.8": 0.743, "mg.B.16": 0.810,
	"cg.B.8": 0.862, "cg.B.16": 0.937,
	"ft.B.16": 0.858,
	"is.B.8":  0.998, "is.B.16": 0.996, "is.C.8": 0.998, "is.C.16": 0.989,
	"lu.B.8": 0.839, "lu.B.16": 0.743,
	"sp.B.9": 0.919, "sp.B.16": 0.969,
	"bt.B.9": 0.780, "bt.B.16": 0.967,
}

func TestFig14Table(t *testing.T) {
	if testing.Short() {
		t.Skip("full table is slow")
	}
	rows := Table()
	if len(rows) != 19 {
		t.Fatalf("%d rows, want 19", len(rows))
	}
	for _, r := range rows {
		paper := paperRatio10G[r.ID]
		t.Logf("%-8s  1G: %7.1f / %7.1f (%.0f%%)   10G: %8.1f / %8.1f (%.0f%%)  [paper %.0f%%]",
			r.ID, r.Native1G, r.VNETP1G, 100*r.Ratio1G,
			r.Native10G, r.VNETP10G, 100*r.Ratio10G, 100*paper)
	}
	for _, r := range rows {
		// Coarse bound with a little headroom: benchmarks whose message
		// sizes sit at the adaptive-mode hysteresis boundary (sp.B.9 on
		// 1G) can batch their way a hair past native when encapsulation
		// overhead nudges the packet rate across alpha_u.
		if r.Ratio10G > 1.03 || r.Ratio1G > 1.03 {
			t.Errorf("%s: VNET/P beats native (%.2f/%.2f)", r.ID, r.Ratio1G, r.Ratio10G)
		}
		if r.Ratio10G < 0.5 {
			t.Errorf("%s: 10G ratio %.2f implausibly low", r.ID, r.Ratio10G)
		}
		// The headline claim: most benchmarks exceed 70% and EP/IS are
		// essentially native.
		switch r.ID[:2] {
		case "ep", "is":
			if r.Ratio10G < 0.9 {
				t.Errorf("%s: ratio %.2f, paper shows ~99%%", r.ID, r.Ratio10G)
			}
		}
	}
}
