package bridge

import (
	"bytes"
	"testing"

	"vnetp/internal/ethernet"
	"vnetp/internal/faultnet"
)

// Adversarial reassembly: duplicated, reordered and interleaved
// fragments driven both hand-built and through a faultnet conduit. These
// pin the fix for the double-counting bug where a duplicated fragment
// incremented the received-byte counter twice, letting a packet
// "complete" with a hole in it (delivering a frame with stale or zero
// bytes where the missing fragment belonged).

// frags encapsulates a frame into small datagrams so every test has
// several fragments to abuse.
func frags(t *testing.T, f *ethernet.Frame, id uint32) [][]byte {
	t.Helper()
	ds, err := Encapsulate(f, id, 64+EncapHeaderLen)
	if err != nil {
		t.Fatal(err)
	}
	if len(ds) < 3 {
		t.Fatalf("want >=3 fragments, got %d", len(ds))
	}
	return ds
}

func TestDuplicateFragmentCannotFakeCompletion(t *testing.T) {
	// The old counter-based reassembler: frag0 + frag0 + last frag summed
	// to TotalLen and "completed" with frag1's bytes missing. Now the
	// duplicate must not complete the packet at all.
	f := testFrame(150) // 3 fragments of <=64B payload
	ds := frags(t, f, 1)
	r := NewReassembler()
	feed := func(d []byte) *ethernet.Frame {
		got, err := r.Add("s", d)
		if err != nil {
			t.Fatal(err)
		}
		return got
	}
	feed(ds[0])
	feed(ds[0]) // duplicate
	if got := feed(ds[len(ds)-1]); got != nil {
		t.Fatal("packet completed with a hole: duplicate fragment double-counted")
	}
	// Supplying the genuinely missing fragment completes it correctly.
	got := feed(ds[1])
	if got == nil {
		t.Fatal("packet did not complete after all fragments arrived")
	}
	if !bytes.Equal(got.Payload, f.Payload) {
		t.Fatal("reassembled payload corrupt")
	}
}

func TestDuplicateAndReorderThroughConduit(t *testing.T) {
	// Dup + reorder every packet on the wire; the reassembler must still
	// produce exactly one intact frame per packet id.
	f := testFrame(300)
	r := NewReassembler()
	c := faultnet.New(faultnet.Config{DupProb: 1, ReorderProb: 1, Seed: 7})
	var frames []*ethernet.Frame
	deliver := func(p any) {
		got, err := r.Add("s", p.([]byte))
		if err != nil {
			t.Fatal(err)
		}
		if got != nil {
			frames = append(frames, got)
		}
	}
	for id := uint32(1); id <= 5; id++ {
		for _, d := range frags(t, f, id) {
			c.Send(d, deliver)
		}
	}
	c.Flush()
	if len(frames) != 5 {
		t.Fatalf("reassembled %d frames, want 5", len(frames))
	}
	for _, g := range frames {
		if !bytes.Equal(g.Payload, f.Payload) {
			t.Fatal("reassembled payload corrupt under dup+reorder")
		}
	}
	if r.Pending() != 0 {
		t.Fatalf("%d partials left over", r.Pending())
	}
}

func TestInterleavedIDsFromOneSender(t *testing.T) {
	// Two packets' fragments interleaved on one sender key must not
	// cross-pollinate.
	fa, fb := testFrame(150), testFrame(200)
	fb.Payload = bytes.Repeat([]byte{0xcd}, 200)
	da, db := frags(t, fa, 10), frags(t, fb, 11)
	r := NewReassembler()
	var got []*ethernet.Frame
	max := len(da)
	if len(db) > max {
		max = len(db)
	}
	for i := 0; i < max; i++ {
		for _, ds := range [][][]byte{da, db} {
			if i < len(ds) {
				if g, err := r.Add("s", ds[i]); err != nil {
					t.Fatal(err)
				} else if g != nil {
					got = append(got, g)
				}
			}
		}
	}
	if len(got) != 2 {
		t.Fatalf("reassembled %d frames, want 2", len(got))
	}
	if !bytes.Equal(got[0].Payload, fa.Payload) || !bytes.Equal(got[1].Payload, fb.Payload) {
		t.Fatal("interleaved packets corrupted each other")
	}
}

func TestEvictionRacesLateLastFragment(t *testing.T) {
	// A partial evicted by the generation sweep must not resurrect when
	// its last fragment straggles in: the late fragment starts a fresh
	// (incomplete) partial instead of completing a ghost.
	f := testFrame(150)
	ds := frags(t, f, 20)
	r := NewReassembler()
	for _, d := range ds[:len(ds)-1] {
		if _, err := r.Add("s", d); err != nil {
			t.Fatal(err)
		}
	}
	r.EvictStale() // ages the partial
	if n := r.EvictStale(); n != 1 {
		t.Fatalf("evicted %d, want 1", n)
	}
	got, err := r.Add("s", ds[len(ds)-1]) // the straggler
	if err != nil {
		t.Fatal(err)
	}
	if got != nil {
		t.Fatal("evicted packet completed from a single late fragment")
	}
	if r.Pending() != 1 {
		t.Fatalf("pending = %d, want 1 (fresh partial from the straggler)", r.Pending())
	}
}

func TestSizeMismatchCleansGeneration(t *testing.T) {
	// A fragment whose TotalLen contradicts the existing partial drops the
	// whole partial — including its generation entry, so the next sweep
	// doesn't count a ghost eviction.
	f := testFrame(150)
	ds := frags(t, f, 30)
	r := NewReassembler()
	if _, err := r.Add("s", ds[0]); err != nil {
		t.Fatal(err)
	}
	// Same sender and id, different claimed total.
	h := EncapHeader{ID: 30, FragOff: 0, TotalLen: 500, MoreFrags: true}
	bad := append(h.Marshal(nil), make([]byte, 64)...)
	if _, err := r.Add("s", bad); err != ErrFragBounds {
		t.Fatalf("mismatch error = %v, want ErrFragBounds", err)
	}
	if r.Pending() != 0 {
		t.Fatalf("pending = %d after mismatch", r.Pending())
	}
	r.EvictStale()
	r.EvictStale()
	if r.Dropped != 0 {
		t.Fatalf("Dropped = %d: mismatch left a ghost generation entry", r.Dropped)
	}
}
