package bridge

import (
	"bytes"
	"errors"
	"testing"

	"vnetp/internal/ethernet"
)

// FuzzEncapDecode throws arbitrary bytes at the wire-format decoder and
// pins the codec's safety contract: ParseEncap never panics, v1
// datagrams (the pre-widening format) are rejected with exactly
// ErrBadVersion, a clean v2 header survives a marshal round-trip, and
// any payload the decoder accepts also survives a full encapsulate →
// reassemble cycle (both the allocating and the pooled encoder).
func FuzzEncapDecode(f *testing.F) {
	seed := &ethernet.Frame{
		Dst: ethernet.LocalMAC(1), Src: ethernet.LocalMAC(2),
		Type: ethernet.TypeTest, Payload: []byte("seed corpus payload"),
	}
	if dgs, err := Encapsulate(seed, 7, 32); err == nil {
		for _, d := range dgs {
			f.Add(d)
		}
	}
	f.Add([]byte{})
	f.Add([]byte{0x56, 0x4e, 0x01, 0x00}) // v1, truncated
	f.Fuzz(func(t *testing.T, data []byte) {
		h, payload, err := ParseEncap(data) // must never panic
		if err != nil {
			if len(data) >= EncapHeaderLen && data[0] == 0x56 && data[1] == 0x4e && data[2] == 1 {
				if !errors.Is(err, ErrBadVersion) {
					t.Fatalf("v1 datagram: got %v, want ErrBadVersion", err)
				}
			}
			return
		}
		// Accepted datagram: re-marshalling the parsed header must
		// reproduce the wire header — trace extension included — whenever
		// no unknown flag bits were set (Marshal cannot represent unknown
		// bits).
		if data[3]&^(flagMoreFrags|flagProbe|flagProbeReply|flagTrace|flagSealed) == 0 {
			if re := h.Marshal(nil); !bytes.Equal(re, data[:h.WireLen()]) {
				t.Fatalf("header round-trip: % x != % x", re, data[:h.WireLen()])
			}
		}

		// Encode side: treat the accepted payload as an inner-frame
		// payload and require encapsulate → reassemble identity at a
		// fuzz-chosen fragment size, through both encoders.
		if len(payload) == 0 || len(payload) > ethernet.MaxMTU {
			return
		}
		inner := &ethernet.Frame{
			Dst: ethernet.LocalMAC(3), Src: ethernet.LocalMAC(4),
			Type: ethernet.TypeTest, Payload: payload,
		}
		maxPayload := EncapHeaderLen + 1 + int(h.ID%512)
		dgs, err := Encapsulate(inner, h.ID, maxPayload)
		if err != nil {
			t.Fatal(err)
		}
		var enc Encapsulator
		pkt, err := enc.Encapsulate(inner, h.ID, maxPayload)
		if err != nil {
			t.Fatal(err)
		}
		if len(pkt.Datagrams) != len(dgs) {
			t.Fatalf("pooled encoder produced %d datagrams, allocating produced %d",
				len(pkt.Datagrams), len(dgs))
		}
		for i := range dgs {
			if !bytes.Equal(pkt.Datagrams[i], dgs[i]) {
				t.Fatalf("pooled datagram %d differs from allocating encoder's", i)
			}
		}
		pkt.Release()
		r := NewReassembler()
		var got *ethernet.Frame
		for _, d := range dgs {
			out, err := r.Add("fuzz", d)
			if err != nil {
				t.Fatalf("own fragment rejected: %v", err)
			}
			if out != nil {
				got = out
			}
		}
		if got == nil {
			t.Fatal("complete fragment set did not reassemble")
		}
		if !bytes.Equal(got.Payload, payload) || got.Dst != inner.Dst || got.Src != inner.Src {
			t.Fatal("reassembled frame differs from input")
		}
		if r.Pending() != 0 {
			t.Fatalf("%d partials leaked after completion", r.Pending())
		}
	})
}

// FuzzReassembler drives the reassembler with a fuzz-chosen feed order
// over one fragmented packet — duplicates, arbitrary order, and
// synthetic overlapping fragments — and pins the span-accounting
// invariants: a packet completes only once every byte has genuinely
// arrived (duplicates never double-count toward completion), the
// reassembled bytes equal the original, and eviction leaves no partial
// state behind.
func FuzzReassembler(f *testing.F) {
	f.Add([]byte("some payload long enough to fragment several times over"), []byte{3, 0, 1, 0x87, 2, 2, 5})
	f.Add([]byte("x"), []byte{0})
	f.Add([]byte("abcdefghijklmnopqrstuvwxyz"), []byte{0x90, 1, 1, 0, 2})
	f.Fuzz(func(t *testing.T, payload, script []byte) {
		if len(payload) == 0 || len(payload) > 4096 {
			return
		}
		inner := &ethernet.Frame{
			Dst: ethernet.LocalMAC(5), Src: ethernet.LocalMAC(6),
			Type: ethernet.TypeTest, Payload: payload,
		}
		innerBytes, err := inner.Marshal(nil)
		if err != nil {
			t.Fatal(err)
		}
		chunk := 1 + len(payload)/4 // forces >= 2 fragments for multi-byte payloads
		dgs, err := Encapsulate(inner, 42, EncapHeaderLen+chunk)
		if err != nil {
			t.Fatal(err)
		}

		r := NewReassembler()
		covered := make([]bool, len(innerBytes))
		sawLast := false
		allCovered := func() bool {
			for _, c := range covered {
				if !c {
					return false
				}
			}
			return true
		}
		feed := func(d []byte, off, end int, last bool) *ethernet.Frame {
			t.Helper()
			out, err := r.Add("s", d)
			if err != nil {
				t.Fatalf("well-formed fragment rejected: %v", err)
			}
			for i := off; i < end; i++ {
				covered[i] = true
			}
			if last {
				sawLast = true
			}
			if out != nil {
				// The core double-count invariant: completion implies the
				// spans truly cover the packet and the tail was seen.
				if !allCovered() || !sawLast {
					t.Fatal("completed with a hole (duplicate or overlap double-counted)")
				}
				if !bytes.Equal(out.Payload, payload) {
					t.Fatal("reassembled payload differs")
				}
			}
			return out
		}
		fragRange := func(idx int) (off, end int, last bool) {
			off = idx * chunk
			end = off + chunk
			if end > len(innerBytes) {
				end = len(innerBytes)
			}
			return off, end, idx == len(dgs)-1
		}

		var done *ethernet.Frame
		for _, b := range script {
			if done != nil {
				break
			}
			if b&0x80 != 0 && len(innerBytes) > 1 {
				// Synthetic overlapping fragment: correct bytes at an
				// offset straddling fragment boundaries, never the last.
				off := int(b&0x7f) % (len(innerBytes) - 1)
				end := off + chunk
				if end > len(innerBytes) {
					end = len(innerBytes)
				}
				h := EncapHeader{ID: 42, FragOff: uint32(off),
					TotalLen: uint32(len(innerBytes)), MoreFrags: true}
				done = feed(append(h.Marshal(nil), innerBytes[off:end]...), off, end, false)
				continue
			}
			idx := int(b) % len(dgs)
			off, end, last := fragRange(idx)
			done = feed(dgs[idx], off, end, last)
		}
		// Top up with every fragment in order: the packet must complete.
		for idx := 0; done == nil && idx < len(dgs); idx++ {
			off, end, last := fragRange(idx)
			done = feed(dgs[idx], off, end, last)
		}
		if done == nil {
			t.Fatal("full fragment set never completed")
		}
		if r.Reassembled == 0 {
			t.Fatal("Reassembled counter not incremented")
		}
		// Leak check: any partial state left behind (e.g. a post-
		// completion duplicate re-opening the key) must age out in two
		// generation sweeps and leave the table empty.
		if len(dgs) > 1 {
			feedStale, _ := r.Add("s", dgs[0])
			if feedStale != nil && len(dgs) > 1 {
				t.Fatal("lone stale fragment completed a packet")
			}
		}
		r.EvictStale()
		r.EvictStale()
		if r.Pending() != 0 {
			t.Fatalf("%d partials leaked past eviction", r.Pending())
		}
	})
}
