package bridge

import (
	"bytes"
	"testing"
	"testing/quick"

	"vnetp/internal/ethernet"
)

func testFrame(payload int) *ethernet.Frame {
	return &ethernet.Frame{
		Dst:     ethernet.LocalMAC(2),
		Src:     ethernet.LocalMAC(1),
		Type:    ethernet.TypeIPv4,
		Payload: bytes.Repeat([]byte{0xab}, payload),
	}
}

func TestEncapHeaderRoundTrip(t *testing.T) {
	h := EncapHeader{ID: 0xdeadbeef, FragOff: 100, TotalLen: 500, MoreFrags: true}
	b := h.Marshal(nil)
	b = append(b, make([]byte, 400)...)
	g, payload, err := ParseEncap(b)
	if err != nil {
		t.Fatal(err)
	}
	if *g != h || len(payload) != 400 {
		t.Fatalf("round trip %+v payload %d", g, len(payload))
	}
}

func TestParseEncapErrors(t *testing.T) {
	if _, _, err := ParseEncap(make([]byte, 5)); err != ErrTruncated {
		t.Fatalf("short: %v", err)
	}
	h := EncapHeader{TotalLen: 10}
	b := h.Marshal(nil)
	b[0] = 0
	if _, _, err := ParseEncap(b); err != ErrBadMagic {
		t.Fatalf("magic: %v", err)
	}
	b = h.Marshal(nil)
	b[2] = 99
	if _, _, err := ParseEncap(b); err != ErrBadVersion {
		t.Fatalf("version: %v", err)
	}
	// Fragment exceeding TotalLen.
	bad := EncapHeader{FragOff: 8, TotalLen: 10}
	b = bad.Marshal(nil)
	b = append(b, make([]byte, 5)...)
	if _, _, err := ParseEncap(b); err != ErrFragBounds {
		t.Fatalf("bounds: %v", err)
	}
}

func TestEncapsulateSingleDatagram(t *testing.T) {
	f := testFrame(100)
	ds, err := Encapsulate(f, 7, 1472)
	if err != nil {
		t.Fatal(err)
	}
	if len(ds) != 1 {
		t.Fatalf("%d datagrams, want 1", len(ds))
	}
	r := NewReassembler()
	g, err := r.Add("peer", ds[0])
	if err != nil || g == nil {
		t.Fatalf("reassemble: %v %v", g, err)
	}
	if g.Dst != f.Dst || !bytes.Equal(g.Payload, f.Payload) {
		t.Fatal("frame mismatch")
	}
}

func TestEncapsulateFragmented(t *testing.T) {
	f := testFrame(4000) // inner 4014 bytes
	const maxPayload = 1472
	ds, err := Encapsulate(f, 9, maxPayload)
	if err != nil {
		t.Fatal(err)
	}
	want := FragmentCount(f.Len(), maxPayload)
	if len(ds) != want || want < 3 {
		t.Fatalf("%d datagrams, want %d (>=3)", len(ds), want)
	}
	for _, d := range ds {
		if len(d) > maxPayload {
			t.Fatalf("datagram %d exceeds maxPayload", len(d))
		}
	}
	r := NewReassembler()
	var got *ethernet.Frame
	for i, d := range ds {
		g, err := r.Add("peer", d)
		if err != nil {
			t.Fatal(err)
		}
		if g != nil && i != len(ds)-1 {
			t.Fatal("completed before last fragment")
		}
		if g != nil {
			got = g
		}
	}
	if got == nil || !bytes.Equal(got.Payload, f.Payload) {
		t.Fatal("reassembly mismatch")
	}
	if r.Pending() != 0 || r.Reassembled != 1 {
		t.Fatalf("pending=%d reassembled=%d", r.Pending(), r.Reassembled)
	}
}

func TestReassemblyOutOfOrder(t *testing.T) {
	f := testFrame(3000)
	ds, _ := Encapsulate(f, 1, 1472)
	r := NewReassembler()
	// Deliver in reverse order.
	var got *ethernet.Frame
	for i := len(ds) - 1; i >= 0; i-- {
		g, err := r.Add("peer", ds[i])
		if err != nil {
			t.Fatal(err)
		}
		if g != nil {
			got = g
		}
	}
	if got == nil || !bytes.Equal(got.Payload, f.Payload) {
		t.Fatal("out-of-order reassembly failed")
	}
}

func TestReassemblerSenderIsolation(t *testing.T) {
	// Same packet ID from two senders must not collide.
	fa, fb := testFrame(2000), testFrame(2500)
	da, _ := Encapsulate(fa, 42, 1000)
	db, _ := Encapsulate(fb, 42, 1000)
	r := NewReassembler()
	for i := range da {
		r.Add("a", da[i])
	}
	var got *ethernet.Frame
	for i := range db {
		if g, _ := r.Add("b", db[i]); g != nil {
			got = g
		}
	}
	if got == nil || !bytes.Equal(got.Payload, fb.Payload) {
		t.Fatal("cross-sender collision")
	}
}

func TestEvictStale(t *testing.T) {
	f := testFrame(3000)
	ds, _ := Encapsulate(f, 5, 1000)
	r := NewReassembler()
	r.Add("peer", ds[0]) // partial
	if r.Pending() != 1 {
		t.Fatal("no partial")
	}
	if n := r.EvictStale(); n != 0 {
		t.Fatalf("first sweep evicted %d", n) // same generation: survives one sweep
	}
	if n := r.EvictStale(); n != 1 {
		t.Fatalf("second sweep evicted %d, want 1", n)
	}
	if r.Pending() != 0 || r.Dropped != 1 {
		t.Fatalf("pending=%d dropped=%d", r.Pending(), r.Dropped)
	}
}

func TestFragmentCount(t *testing.T) {
	cases := []struct{ inner, max, want int }{
		{100, 1472, 1},
		{1456, 1472, 1}, // exactly one v2 chunk (1472 - 16 header)
		{1457, 1472, 2},
		{4014, 1472, 3},
		{0, 100, 1},
	}
	for _, c := range cases {
		if got := FragmentCount(c.inner, c.max); got != c.want {
			t.Errorf("FragmentCount(%d,%d) = %d, want %d", c.inner, c.max, got, c.want)
		}
	}
}

// TestJumboFrameBoundary covers the v1 wire-corruption bug: with
// MaxMTU = 65535 a maximum-size frame marshals to 65549 bytes, which
// wrapped the 16-bit totalLen/fragOff fields and corrupted the wire. The
// v2 32-bit fields must round-trip payloads straddling the old uint16
// boundary (inner length 65535) losslessly under fragmentation.
func TestJumboFrameBoundary(t *testing.T) {
	// 65521-byte payload marshals to exactly 65535 inner bytes; ±1
	// brackets the uint16 wrap point.
	for _, payload := range []int{65520, 65521, 65522, ethernet.MaxMTU} {
		f := testFrame(payload)
		ds, err := Encapsulate(f, 77, 1400)
		if err != nil {
			t.Fatalf("payload %d: %v", payload, err)
		}
		if want := FragmentCount(f.Len(), 1400); len(ds) != want {
			t.Fatalf("payload %d: %d datagrams, want %d", payload, len(ds), want)
		}
		r := NewReassembler()
		var got *ethernet.Frame
		for i, d := range ds {
			g, err := r.Add("jumbo-peer", d)
			if err != nil {
				t.Fatalf("payload %d frag %d: %v", payload, i, err)
			}
			if g != nil {
				got = g
			}
		}
		if got == nil {
			t.Fatalf("payload %d: frame did not reassemble", payload)
		}
		if !bytes.Equal(got.Payload, f.Payload) {
			t.Fatalf("payload %d: corrupted across the wire", payload)
		}
	}
}

// TestV1Rejected ensures the codec refuses version-1 datagrams instead of
// misreading their narrower header.
func TestV1Rejected(t *testing.T) {
	h := EncapHeader{ID: 1, TotalLen: 10}
	b := h.Marshal(nil)
	b = append(b, make([]byte, 10)...)
	b[2] = 1 // rewrite version to v1
	if _, _, err := ParseEncap(b); err != ErrBadVersion {
		t.Fatalf("v1 datagram: got %v, want ErrBadVersion", err)
	}
}

func TestEncapsulateRoundTripProperty(t *testing.T) {
	prop := func(payload []byte, maxP uint16, id uint32) bool {
		if len(payload) > 9000 {
			payload = payload[:9000]
		}
		maxPayload := int(maxP)%2000 + EncapHeaderLen + 1
		f := &ethernet.Frame{Dst: ethernet.LocalMAC(9), Src: ethernet.LocalMAC(8), Type: ethernet.TypeTest, Payload: payload}
		ds, err := Encapsulate(f, id, maxPayload)
		if err != nil {
			return false
		}
		r := NewReassembler()
		var got *ethernet.Frame
		for _, d := range ds {
			g, err := r.Add("x", d)
			if err != nil {
				return false
			}
			if g != nil {
				got = g
			}
		}
		return got != nil && got.Dst == f.Dst && got.Src == f.Src &&
			got.Type == f.Type && bytes.Equal(got.Payload, payload)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestTraceExtRoundTrip(t *testing.T) {
	h := EncapHeader{
		ID: 42, FragOff: 64, TotalLen: 500, MoreFrags: true,
		Trace:    TraceExt{ID: 0x0102030405060708, Origin: 0xbeef, Flags: TraceTriggered},
		HasTrace: true,
	}
	b := h.Marshal(nil)
	if len(b) != EncapHeaderLen+EncapTraceLen {
		t.Fatalf("marshalled %d bytes, want %d", len(b), EncapHeaderLen+EncapTraceLen)
	}
	b = append(b, make([]byte, 200)...)
	g, payload, err := ParseEncap(b)
	if err != nil {
		t.Fatal(err)
	}
	if *g != h || len(payload) != 200 {
		t.Fatalf("round trip %+v payload %d", g, len(payload))
	}
	if g.WireLen() != EncapHeaderLen+EncapTraceLen {
		t.Fatalf("WireLen = %d", g.WireLen())
	}
}

func TestTraceExtTruncated(t *testing.T) {
	h := EncapHeader{TotalLen: 10, Trace: TraceExt{ID: 1}, HasTrace: true}
	b := h.Marshal(nil)
	// Keep the fixed header but cut the extension short.
	if _, _, err := ParseEncap(b[:EncapHeaderLen+4]); err != ErrTruncated {
		t.Fatalf("truncated ext: %v", err)
	}
}

// TestEncapsulateTraceIdentity checks the traced encapsulation carries
// the extension on every fragment, shrinks the per-fragment budget
// accordingly, and reassembles to the same inner frame as the untraced
// path.
func TestEncapsulateTraceIdentity(t *testing.T) {
	f := testFrame(4000)
	tr := &TraceExt{ID: 0xabcdef, Origin: 0x1234}
	var enc Encapsulator
	pkt, err := enc.EncapsulateTrace(f, 9, 1400, tr)
	if err != nil {
		t.Fatal(err)
	}
	defer pkt.Release()
	r := NewReassembler()
	var got *ethernet.Frame
	for i, d := range pkt.Datagrams {
		if len(d) > 1400 {
			t.Fatalf("datagram %d is %d bytes, budget 1400", i, len(d))
		}
		h, _, err := ParseEncap(d)
		if err != nil {
			t.Fatal(err)
		}
		if !h.HasTrace || h.Trace != *tr {
			t.Fatalf("datagram %d trace ext = %+v, want %+v", i, h.Trace, tr)
		}
		out, err := r.Add("t", d)
		if err != nil {
			t.Fatal(err)
		}
		if out != nil {
			got = out
		}
	}
	if got == nil {
		t.Fatal("traced fragments did not reassemble")
	}
	if !bytes.Equal(got.Payload, f.Payload) || got.Dst != f.Dst || got.Src != f.Src {
		t.Fatal("reassembled frame differs from input")
	}
}
