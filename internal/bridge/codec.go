// Package bridge implements the VNET/P bridge (paper Sect. 4.5): the
// host-kernel component that encapsulates routed Ethernet frames in UDP
// (or hands them to the local network raw), fragments encapsulated packets
// that exceed the physical MTU, and reassembles on receive.
//
// codec.go is the pure wire format, shared by the simulated bridge
// (bridge.go) and the real-socket overlay (internal/overlay).
package bridge

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"vnetp/internal/ethernet"
)

// Encapsulation header layout (16 bytes), VNET/U-compatible in spirit:
//
//	magic(2) | version(1) | flags(1) | id(4) | fragOff(4) | totalLen(4)
//
// followed by a slice of the marshalled inner Ethernet frame.
//
// Version 2 widened fragOff and totalLen from 16 to 32 bits: with the
// 64 KB overlay MTU (ethernet.MaxMTU = 65535) a maximum-size frame
// marshals to 65549 bytes, which wrapped the v1 uint16 length fields and
// corrupted exactly the jumbo frames the large MTU exists for. v1
// datagrams are rejected with ErrBadVersion.
const (
	EncapMagic     = 0x564e // "VN"
	EncapVersion   = 2
	EncapHeaderLen = 16

	// EncapTraceLen is the size of the optional trace extension that
	// follows the fixed header when flagTrace is set:
	//
	//	traceID(8) | origin(2) | traceFlags(2)
	//
	// traceID names one sampled packet's journey across the overlay,
	// origin is a 16-bit hash of the node that started the trace, and
	// traceFlags carries sampling metadata (bit 0: explicit per-flow
	// trigger rather than 1-in-N sampling). The extension lets a trace
	// started on the transmit node continue on the receive node, so one
	// trace ID spans both halves of a hop (internal/trace.LiveTracer).
	EncapTraceLen = 12

	// EncapSealLen is the size of the optional seal extension that
	// follows the fixed header (and the trace extension, when both are
	// present) when flagSealed is set:
	//
	//	tenantID(4) | nonce(8)
	//
	// The fragment payload after a sealed header is AEAD ciphertext of
	// the inner-frame slice plus a SealOverhead-byte authentication tag;
	// the entire wire header (fixed part and extensions) is authenticated
	// as associated data, so flags, ids, offsets, tenant, and nonce are
	// all tamper-evident even though they travel in the clear.
	EncapSealLen = 12

	// SealOverhead is the AEAD tag size appended to each sealed
	// fragment's payload (AES-GCM, internal/seal.Overhead).
	SealOverhead = 16

	flagMoreFrags  = 0x01
	flagProbe      = 0x02
	flagProbeReply = 0x04
	flagTrace      = 0x08
	flagSealed     = 0x10
)

// TraceExt is the optional per-datagram trace extension (EncapTraceLen
// bytes on the wire, present when the header's trace flag is set).
type TraceExt struct {
	ID     uint64 // trace id, shared by every fragment and both nodes of a hop
	Origin uint16 // hash of the originating node's name
	Flags  uint16 // bit 0: explicitly triggered (per-MAC flow), else sampled
}

// TraceTriggered is the TraceExt.Flags bit marking an explicit per-flow
// trigger (TRACE START FLOW) rather than 1-in-N sampling.
const TraceTriggered uint16 = 0x01

// SealExt is the optional per-datagram seal extension (EncapSealLen
// bytes on the wire, present when the header's sealed flag is set). The
// nonce reuses the traceID shape — origin(16) << 48 | seq(48) — so each
// sending node's nonce stream is unique without coordination.
type SealExt struct {
	Tenant uint32 // tenant whose key sealed this fragment
	Nonce  uint64 // per-sender counter nonce, origin<<48 | seq48
}

// LinkSealer seals one link's outbound fragments for one tenant. It is
// implemented by internal/seal.Sealer; bridge declares the interface so
// the codec stays free of crypto dependencies.
type LinkSealer interface {
	// Tenant reports the tenant ID stamped into the seal extension.
	Tenant() uint32
	// NextNonce reserves a fresh nonce for one fragment.
	NextNonce() uint64
	// Seal encrypts plaintext in place (the slice must have Overhead
	// spare capacity) binding additional as associated data, and returns
	// the ciphertext (len(plaintext)+SealOverhead bytes).
	Seal(nonce uint64, additional, plaintext []byte) []byte
}

// EncapHeader describes one encapsulation fragment. Probe datagrams (the
// link-health heartbeats) travel on the same channel with the probe flags
// set; their payload is the probe body, not an inner-frame slice.
type EncapHeader struct {
	ID         uint32 // per-sender packet id, shared by all fragments
	FragOff    uint32 // byte offset of this fragment's payload
	TotalLen   uint32 // total inner-frame length
	MoreFrags  bool
	Probe      bool // liveness probe request
	ProbeReply bool // liveness probe echo

	// Trace is the optional trace extension, valid when HasTrace is set.
	Trace    TraceExt
	HasTrace bool

	// Seal is the optional seal extension, valid when HasSeal is set.
	// When present the fragment payload is AEAD ciphertext (inner-frame
	// slice + SealOverhead tag) rather than plaintext.
	Seal    SealExt
	HasSeal bool
}

// WireLen reports the marshalled header size, including any extensions
// present.
func (h *EncapHeader) WireLen() int {
	n := EncapHeaderLen
	if h.HasTrace {
		n += EncapTraceLen
	}
	if h.HasSeal {
		n += EncapSealLen
	}
	return n
}

var (
	ErrBadMagic   = errors.New("bridge: bad encapsulation magic")
	ErrBadVersion = errors.New("bridge: unsupported encapsulation version")
	ErrTruncated  = errors.New("bridge: truncated encapsulation header")
	ErrFragBounds = errors.New("bridge: fragment outside packet bounds")
)

// Marshal appends the header to b.
func (h *EncapHeader) Marshal(b []byte) []byte {
	b = binary.BigEndian.AppendUint16(b, EncapMagic)
	flags := byte(0)
	if h.MoreFrags {
		flags |= flagMoreFrags
	}
	if h.Probe {
		flags |= flagProbe
	}
	if h.ProbeReply {
		flags |= flagProbeReply
	}
	if h.HasTrace {
		flags |= flagTrace
	}
	if h.HasSeal {
		flags |= flagSealed
	}
	b = append(b, EncapVersion, flags)
	b = binary.BigEndian.AppendUint32(b, h.ID)
	b = binary.BigEndian.AppendUint32(b, h.FragOff)
	b = binary.BigEndian.AppendUint32(b, h.TotalLen)
	if h.HasTrace {
		b = binary.BigEndian.AppendUint64(b, h.Trace.ID)
		b = binary.BigEndian.AppendUint16(b, h.Trace.Origin)
		b = binary.BigEndian.AppendUint16(b, h.Trace.Flags)
	}
	if h.HasSeal {
		b = binary.BigEndian.AppendUint32(b, h.Seal.Tenant)
		b = binary.BigEndian.AppendUint64(b, h.Seal.Nonce)
	}
	return b
}

// EncapIsControl peeks at a datagram's flag byte and reports whether it
// is a probe or probe-reply (control) datagram, without a full parse.
// Receive-path producers use it to steer control traffic off the data
// dispatchers; malformed datagrams report false and are rejected by the
// full ParseEncap downstream.
func EncapIsControl(b []byte) bool {
	return len(b) >= 4 && b[3]&(flagProbe|flagProbeReply) != 0
}

// ParseEncap splits an encapsulated datagram into header and fragment
// payload (aliasing b).
func ParseEncap(b []byte) (*EncapHeader, []byte, error) {
	if len(b) < EncapHeaderLen {
		return nil, nil, ErrTruncated
	}
	if binary.BigEndian.Uint16(b) != EncapMagic {
		return nil, nil, ErrBadMagic
	}
	if b[2] != EncapVersion {
		return nil, nil, ErrBadVersion
	}
	h := &EncapHeader{
		MoreFrags:  b[3]&flagMoreFrags != 0,
		Probe:      b[3]&flagProbe != 0,
		ProbeReply: b[3]&flagProbeReply != 0,
		ID:         binary.BigEndian.Uint32(b[4:]),
		FragOff:    binary.BigEndian.Uint32(b[8:]),
		TotalLen:   binary.BigEndian.Uint32(b[12:]),
	}
	hdrLen := EncapHeaderLen
	if b[3]&flagTrace != 0 {
		if len(b) < hdrLen+EncapTraceLen {
			return nil, nil, ErrTruncated
		}
		h.HasTrace = true
		h.Trace.ID = binary.BigEndian.Uint64(b[hdrLen:])
		h.Trace.Origin = binary.BigEndian.Uint16(b[hdrLen+8:])
		h.Trace.Flags = binary.BigEndian.Uint16(b[hdrLen+10:])
		hdrLen += EncapTraceLen
	}
	if b[3]&flagSealed != 0 {
		if len(b) < hdrLen+EncapSealLen {
			return nil, nil, ErrTruncated
		}
		h.HasSeal = true
		h.Seal.Tenant = binary.BigEndian.Uint32(b[hdrLen:])
		h.Seal.Nonce = binary.BigEndian.Uint64(b[hdrLen+4:])
		hdrLen += EncapSealLen
	}
	payload := b[hdrLen:]
	// A sealed payload is ciphertext: it carries a SealOverhead tag on
	// top of the inner-frame slice, so bounds-check the plaintext size.
	dataLen := len(payload)
	if h.HasSeal {
		if dataLen < SealOverhead {
			return nil, nil, ErrTruncated
		}
		dataLen -= SealOverhead
	}
	if int(h.FragOff)+dataLen > int(h.TotalLen) {
		return nil, nil, ErrFragBounds
	}
	return h, payload, nil
}

// Encapsulate marshals f and splits it into UDP-payload-sized datagrams,
// each at most maxPayload bytes (header included). It returns the ready
// UDP payloads. maxPayload <= EncapHeaderLen panics: no forward progress
// would be possible.
func Encapsulate(f *ethernet.Frame, id uint32, maxPayload int) ([][]byte, error) {
	if maxPayload <= EncapHeaderLen {
		panic(fmt.Sprintf("bridge: maxPayload %d leaves no room for data", maxPayload))
	}
	inner, err := f.Marshal(nil)
	if err != nil {
		return nil, err
	}
	chunk := maxPayload - EncapHeaderLen
	var out [][]byte
	for off := 0; off < len(inner); off += chunk {
		end := off + chunk
		if end > len(inner) {
			end = len(inner)
		}
		h := EncapHeader{
			ID:        id,
			FragOff:   uint32(off),
			TotalLen:  uint32(len(inner)),
			MoreFrags: end < len(inner),
		}
		buf := make([]byte, 0, EncapHeaderLen+end-off)
		buf = h.Marshal(buf)
		buf = append(buf, inner[off:end]...)
		out = append(out, buf)
	}
	if out == nil { // zero-length inner frame cannot happen (header >= 14) but be safe
		h := EncapHeader{ID: id}
		out = [][]byte{h.Marshal(nil)}
	}
	return out, nil
}

// Encapsulator is a pooling variant of Encapsulate for the hot transmit
// path: the inner-frame marshal scratch, the fragment wire buffers, and
// the datagram slice headers for one frame all live in a single pooled
// EncapPacket, so steady-state encapsulation allocates nothing. The
// zero value is ready to use and safe for concurrent callers.
type Encapsulator struct {
	pool         sync.Pool // *EncapPacket
	hits, misses atomic.Uint64
}

// EncapPacket is one frame's encapsulation: ready-to-send datagrams
// whose backing buffers belong to the Encapsulator's pool. Callers must
// not retain Datagrams (or slices of them) past Release.
type EncapPacket struct {
	Datagrams [][]byte

	owner *Encapsulator
	inner []byte // marshalled inner frame scratch
	wire  []byte // backing storage for every datagram
}

// Encapsulate is the pooled equivalent of the package-level Encapsulate:
// it marshals f and splits it into datagrams of at most maxPayload bytes
// each (header included), reusing buffers from the pool. The returned
// packet must be Released once every datagram has been handed to (and
// copied or written by) the transport.
func (e *Encapsulator) Encapsulate(f *ethernet.Frame, id uint32, maxPayload int) (*EncapPacket, error) {
	return e.EncapsulateTrace(f, id, maxPayload, nil)
}

// EncapsulateTrace is Encapsulate with an optional trace extension: when
// tr is non-nil every produced datagram carries it, so the receive node
// can continue the sampled packet's trace under the same trace ID. The
// extension shrinks each fragment's payload budget by EncapTraceLen.
func (e *Encapsulator) EncapsulateTrace(f *ethernet.Frame, id uint32, maxPayload int, tr *TraceExt) (*EncapPacket, error) {
	return e.EncapsulateSealed(f, id, maxPayload, tr, nil)
}

// EncapsulateSealed is EncapsulateTrace with an optional link sealer:
// when sl is non-nil every fragment carries the seal extension and its
// payload is encrypted in place in the pooled wire buffer, with the
// fragment's full wire header bound as associated data. The seal
// extension and AEAD tag shrink each fragment's payload budget by
// EncapSealLen+SealOverhead.
func (e *Encapsulator) EncapsulateSealed(f *ethernet.Frame, id uint32, maxPayload int, tr *TraceExt, sl LinkSealer) (*EncapPacket, error) {
	hdrLen := EncapHeaderLen
	if tr != nil {
		hdrLen += EncapTraceLen
	}
	perFragOverhead := 0
	if sl != nil {
		hdrLen += EncapSealLen
		perFragOverhead = SealOverhead
	}
	if maxPayload <= hdrLen+perFragOverhead {
		panic(fmt.Sprintf("bridge: maxPayload %d leaves no room for data", maxPayload))
	}
	p, _ := e.pool.Get().(*EncapPacket)
	if p == nil {
		p = &EncapPacket{owner: e}
		e.misses.Add(1)
	} else {
		e.hits.Add(1)
	}
	inner, err := f.Marshal(p.inner[:0])
	if err != nil {
		e.pool.Put(p)
		return nil, err
	}
	p.inner = inner
	chunk := maxPayload - hdrLen - perFragOverhead
	nfrags := (len(inner) + chunk - 1) / chunk
	if nfrags == 0 {
		nfrags = 1
	}
	// One contiguous wire buffer holds every fragment (header + slice);
	// sizing it up front keeps the datagram sub-slices stable. Sealed
	// fragments grow by the AEAD tag, so reserve that headroom too —
	// Seal then encrypts in place without reallocating.
	need := len(inner) + nfrags*(hdrLen+perFragOverhead)
	if cap(p.wire) < need {
		p.wire = make([]byte, 0, need)
	}
	wire := p.wire[:0]
	dgs := p.Datagrams[:0]
	for i := 0; i < nfrags; i++ {
		off := i * chunk
		end := off + chunk
		if end > len(inner) {
			end = len(inner)
		}
		h := EncapHeader{
			ID:        id,
			FragOff:   uint32(off),
			TotalLen:  uint32(len(inner)),
			MoreFrags: end < len(inner),
		}
		if tr != nil {
			h.Trace = *tr
			h.HasTrace = true
		}
		if sl != nil {
			h.Seal = SealExt{Tenant: sl.Tenant(), Nonce: sl.NextNonce()}
			h.HasSeal = true
		}
		start := len(wire)
		wire = h.Marshal(wire)
		payloadStart := len(wire)
		wire = append(wire, inner[off:end]...)
		if sl != nil {
			// In-place encrypt: the reserved headroom guarantees the tag
			// append stays inside the contiguous wire buffer.
			ct := sl.Seal(h.Seal.Nonce, wire[start:payloadStart], wire[payloadStart:len(wire):need])
			wire = wire[:payloadStart+len(ct)]
		}
		dgs = append(dgs, wire[start:len(wire):len(wire)])
	}
	p.wire = wire
	p.Datagrams = dgs
	return p, nil
}

// PoolStats reports how many Encapsulate calls were served from the pool
// (hits) versus had to allocate a fresh packet (misses).
func (e *Encapsulator) PoolStats() (hits, misses uint64) {
	return e.hits.Load(), e.misses.Load()
}

// Release returns the packet's buffers to the pool. The packet and its
// datagrams must not be used (or Released again) afterwards.
func (p *EncapPacket) Release() {
	if p.owner == nil {
		return
	}
	p.Datagrams = p.Datagrams[:0]
	p.owner.pool.Put(p)
}

// FragmentCount reports how many datagrams Encapsulate would produce for
// an inner frame of innerLen bytes. Used by the simulated bridge, which
// fragments by size accounting without materializing bytes.
func FragmentCount(innerLen, maxPayload int) int {
	chunk := maxPayload - EncapHeaderLen
	if chunk <= 0 {
		panic("bridge: maxPayload leaves no room for data")
	}
	n := (innerLen + chunk - 1) / chunk
	if n == 0 {
		n = 1
	}
	return n
}

// span is a half-open received byte range [off, end).
type span struct {
	off, end int
}

// partial accumulates fragments of one inner frame. Received bytes are
// tracked as merged ranges, not a raw counter: a duplicated fragment must
// not count twice, or a datagram could "complete" with a hole in it.
type partial struct {
	buf     []byte
	spans   []span // disjoint, sorted received ranges
	total   int
	sawLast bool
}

// addSpan records [off, end) as received, merging overlapping and
// adjacent ranges.
func (p *partial) addSpan(off, end int) {
	if end <= off {
		return
	}
	spans := append(p.spans, span{off, end})
	sort.Slice(spans, func(i, j int) bool { return spans[i].off < spans[j].off })
	merged := spans[:0]
	for _, s := range spans {
		if n := len(merged); n > 0 && s.off <= merged[n-1].end {
			if s.end > merged[n-1].end {
				merged[n-1].end = s.end
			}
			continue
		}
		merged = append(merged, s)
	}
	p.spans = merged
}

// complete reports whether every byte of [0, total) has arrived.
func (p *partial) complete() bool {
	return len(p.spans) == 1 && p.spans[0].off == 0 && p.spans[0].end == p.total
}

// Reassembler reconstructs inner Ethernet frames from encapsulation
// fragments. Fragments may arrive in any order; packets are keyed by
// (sender key, id). Stale partial packets are evicted by generation
// sweeps (EvictStale) rather than wall-clock timers so the type works in
// both simulated and real time.
type Reassembler struct {
	partials map[string]*partial
	gen      map[string]uint64
	curGen   uint64

	// Reassembled counts completed frames; Dropped counts evictions.
	Reassembled, Dropped uint64
}

// NewReassembler returns an empty reassembler.
func NewReassembler() *Reassembler {
	return &Reassembler{partials: make(map[string]*partial), gen: make(map[string]uint64)}
}

func key(sender string, id uint32) string { return fmt.Sprintf("%s/%d", sender, id) }

// Add processes one encapsulated datagram from sender. When the datagram
// completes an inner frame, the frame is parsed and returned; otherwise
// (more fragments pending) it returns (nil, nil).
func (r *Reassembler) Add(sender string, datagram []byte) (*ethernet.Frame, error) {
	h, payload, err := ParseEncap(datagram)
	if err != nil {
		return nil, err
	}
	return r.AddParsed(sender, h, payload)
}

// AddParsed is Add for a datagram the caller already split with
// ParseEncap (the overlay parses first to intercept probe datagrams).
func (r *Reassembler) AddParsed(sender string, h *EncapHeader, payload []byte) (*ethernet.Frame, error) {
	// Fast path: unfragmented packet.
	if h.FragOff == 0 && !h.MoreFrags {
		if len(payload) != int(h.TotalLen) {
			return nil, ErrFragBounds
		}
		return ethernet.Unmarshal(payload)
	}
	k := key(sender, h.ID)
	p := r.partials[k]
	if p == nil {
		p = &partial{buf: make([]byte, h.TotalLen), total: int(h.TotalLen)}
		r.partials[k] = p
	}
	if p.total != int(h.TotalLen) {
		delete(r.partials, k)
		delete(r.gen, k)
		return nil, ErrFragBounds
	}
	copy(p.buf[h.FragOff:], payload)
	p.addSpan(int(h.FragOff), int(h.FragOff)+len(payload))
	if !h.MoreFrags {
		p.sawLast = true
	}
	r.gen[k] = r.curGen
	if p.sawLast && p.complete() {
		delete(r.partials, k)
		delete(r.gen, k)
		r.Reassembled++
		return ethernet.Unmarshal(p.buf)
	}
	return nil, nil
}

// EvictStale drops partial packets not touched since the previous call.
// Call it periodically (e.g. once per second of real or simulated time).
func (r *Reassembler) EvictStale() int {
	evicted := 0
	for k, g := range r.gen {
		if g < r.curGen {
			delete(r.partials, k)
			delete(r.gen, k)
			evicted++
			r.Dropped++
		}
	}
	r.curGen++
	return evicted
}

// Pending reports the number of partially reassembled packets.
func (r *Reassembler) Pending() int { return len(r.partials) }
