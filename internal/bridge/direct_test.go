package bridge_test

import (
	"testing"

	"vnetp/internal/bridge"
	"vnetp/internal/core"
	"vnetp/internal/ethernet"
	"vnetp/internal/phys"
	"vnetp/internal/sim"
	"vnetp/internal/virtio"
	"vnetp/internal/vmm"
)

// TestDirectSendExitPoint exercises the overlay's "exit point" (paper
// Sect. 4.5): a frame routed to the reserved local-network link leaves
// the overlay as a raw, unencapsulated Ethernet frame toward the
// configured peer, and the peer's bridge delivers it without
// decapsulation.
func TestDirectSendExitPoint(t *testing.T) {
	eng := sim.New()
	net := vmm.NewNetwork(eng, phys.Eth1G)
	model := phys.DefaultModel()

	h0 := net.AddHost("inside", model)
	h1 := net.AddHost("lan-peer", model)
	vm0 := vmm.NewVM(h0, "vm0")
	mac0, macLAN := ethernet.LocalMAC(1), ethernet.LocalMAC(9)
	nic0 := virtio.NewNIC(mac0, 1500)

	core0 := core.New(h0, core.DefaultParams())
	br0 := bridge.New(h0, sim.WorkerConfig{Yield: sim.YieldImmediate}, nil)
	br0.Deliver = core0.DeliverFromWire
	br0.DirectPeer = "lan-peer"
	core0.Bridge = br0
	core0.Register("nic0", vm0, nic0)

	// The exit-point rule: the LAN machine's MAC routes to the reserved
	// local link.
	core0.Table.AddRoute(core.Route{
		DstMAC: macLAN, DstQual: core.QualExact, SrcQual: core.QualAny,
		Dest: core.Destination{Type: core.DestLink, ID: core.LocalLinkID},
	})

	// The LAN peer: a VNET/P core in direct-receive (promiscuous) mode,
	// standing in for the physical machine.
	vm1 := vmm.NewVM(h1, "vm1")
	nic1 := virtio.NewNIC(macLAN, 1500)
	core1 := core.New(h1, core.DefaultParams())
	br1 := bridge.New(h1, sim.WorkerConfig{Yield: sim.YieldImmediate}, nil)
	br1.Deliver = core1.DeliverFromWire
	core1.Bridge = br1
	lanIfc := core1.Register("nic0", vm1, nic1)
	core1.Table.AddRoute(core.Route{
		DstMAC: macLAN, DstQual: core.QualExact, SrcQual: core.QualAny,
		Dest: core.Destination{Type: core.DestInterface, ID: "nic0"},
	})

	var got *ethernet.Frame
	lanIfc.SetRecv(func() {
		if f, ok := lanIfc.GuestRecv(); ok {
			got = f
		}
		lanIfc.RxDone()
	})

	f := &ethernet.Frame{Dst: macLAN, Src: mac0, Type: ethernet.TypeTest, Pad: 200}
	core0.Iface("nic0").TrySend(f)
	eng.Run()
	eng.Close()

	if got != f {
		t.Fatal("direct-send frame never reached the LAN peer")
	}
	if br0.DirectSent != 1 || br0.EncapSent != 0 {
		t.Fatalf("send mode wrong: direct=%d encap=%d", br0.DirectSent, br0.EncapSent)
	}
	if br1.Received != 1 || br1.Reassembled != 0 {
		t.Fatalf("receive mode wrong: recv=%d reassembled=%d", br1.Received, br1.Reassembled)
	}
}

// TestDirectSendUnconfigured drops (and counts) when no exit peer is set.
func TestDirectSendUnconfigured(t *testing.T) {
	eng := sim.New()
	net := vmm.NewNetwork(eng, phys.Eth1G)
	h0 := net.AddHost("h0", phys.DefaultModel())
	br := bridge.New(h0, sim.WorkerConfig{Yield: sim.YieldImmediate}, nil)
	br.SendDirect(&ethernet.Frame{Type: ethernet.TypeTest})
	eng.Run()
	eng.Close()
	if br.NoLink != 1 {
		t.Fatalf("NoLink = %d, want 1", br.NoLink)
	}
}

// TestSendOverlayUnknownLink drops (and counts) for a missing link ID.
func TestSendOverlayUnknownLink(t *testing.T) {
	eng := sim.New()
	net := vmm.NewNetwork(eng, phys.Eth1G)
	h0 := net.AddHost("h0", phys.DefaultModel())
	br := bridge.New(h0, sim.WorkerConfig{Yield: sim.YieldImmediate}, nil)
	br.SendOverlay("nope", &ethernet.Frame{Type: ethernet.TypeTest})
	eng.Run()
	eng.Close()
	if br.NoLink != 1 {
		t.Fatalf("NoLink = %d, want 1", br.NoLink)
	}
}

// TestLinkManagement covers Add/Remove/Links.
func TestLinkManagement(t *testing.T) {
	eng := sim.New()
	net := vmm.NewNetwork(eng, phys.Eth1G)
	h0 := net.AddHost("h0", phys.DefaultModel())
	br := bridge.New(h0, sim.WorkerConfig{Yield: sim.YieldImmediate}, nil)
	br.AddLink(bridge.LinkConfig{ID: "a", RemoteHost: "x"})
	br.AddLink(bridge.LinkConfig{ID: "b", RemoteHost: "y", Proto: bridge.TCP})
	if len(br.Links()) != 2 {
		t.Fatalf("links = %v", br.Links())
	}
	br.RemoveLink("a")
	if len(br.Links()) != 1 || br.Links()[0] != "b" {
		t.Fatalf("links after remove = %v", br.Links())
	}
	if bridge.UDP.String() != "udp" || bridge.TCP.String() != "tcp" {
		t.Fatal("proto strings")
	}
}
