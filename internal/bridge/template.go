package bridge

import (
	"encoding/binary"
	"fmt"

	"vnetp/internal/ethernet"
)

// EncapTemplate is a prebuilt encapsulation header for one link's
// steady-state flows: the full wire header marshalled once — magic,
// version, flags (sealed bit included), and the seal extension's tenant
// field — with the per-fragment fields (moreFrags bit, id, fragOff,
// totalLen, nonce) zeroed. The flow cache builds one template per link
// at link-add time; the hot transmit path then copies the prefix and
// patches only the per-fragment fields instead of re-marshalling the
// header field by field. A template never carries the trace extension:
// traced frames are rare by construction (sampled or explicitly
// triggered) and take the general encoder.
//
// Templates are immutable after construction and safe to share across
// goroutines and cache entries.
type EncapTemplate struct {
	prefix []byte // marshalled header, per-fragment fields zero
	sealed bool
	tenant uint32
}

// Per-fragment patch offsets within the template prefix. The flags
// byte, id, fragOff and totalLen sit in the fixed header; the nonce
// sits in the seal extension (tenant occupies its first 4 bytes).
const (
	tmplFlagsOff    = 3
	tmplIDOff       = 4
	tmplFragOff     = 8
	tmplTotalLenOff = 12
	tmplNonceOff    = EncapHeaderLen + 4
)

// NewEncapTemplate builds the header template for a link sealed by sl
// (nil for a plaintext link). Only sl's tenant ID is captured — the
// sealer itself stays with the caller, which passes it back to
// EncapsulateTemplate for nonce draws and the AEAD itself.
func NewEncapTemplate(sl LinkSealer) *EncapTemplate {
	h := EncapHeader{}
	t := &EncapTemplate{}
	if sl != nil {
		h.HasSeal = true
		h.Seal.Tenant = sl.Tenant()
		t.sealed = true
		t.tenant = sl.Tenant()
	}
	t.prefix = h.Marshal(nil)
	return t
}

// WireLen reports the template's header size on the wire.
func (t *EncapTemplate) WireLen() int { return len(t.prefix) }

// Sealed reports whether the template carries the seal extension.
func (t *EncapTemplate) Sealed() bool { return t.sealed }

// Tenant reports the tenant ID baked into a sealed template (0 for
// plaintext templates).
func (t *EncapTemplate) Tenant() uint32 { return t.tenant }

// EncapsulateTemplate is the flow-cache fast path encoder: semantically
// identical to EncapsulateSealed(f, id, maxPayload, nil, sl) — the
// produced datagrams are byte-for-byte equal given the same id and
// nonce draws — but each fragment's header is a single memcpy of the
// template prefix plus four fixed-offset patches, skipping the
// field-by-field marshal. sl must be non-nil exactly when the template
// is sealed, and must seal for the template's tenant.
func (e *Encapsulator) EncapsulateTemplate(f *ethernet.Frame, id uint32, maxPayload int, tmpl *EncapTemplate, sl LinkSealer) (*EncapPacket, error) {
	if tmpl.sealed != (sl != nil) {
		panic("bridge: template/sealer mismatch")
	}
	hdrLen := len(tmpl.prefix)
	perFragOverhead := 0
	if tmpl.sealed {
		perFragOverhead = SealOverhead
	}
	if maxPayload <= hdrLen+perFragOverhead {
		panic(fmt.Sprintf("bridge: maxPayload %d leaves no room for data", maxPayload))
	}
	p, _ := e.pool.Get().(*EncapPacket)
	if p == nil {
		p = &EncapPacket{owner: e}
		e.misses.Add(1)
	} else {
		e.hits.Add(1)
	}
	inner, err := f.Marshal(p.inner[:0])
	if err != nil {
		e.pool.Put(p)
		return nil, err
	}
	p.inner = inner
	chunk := maxPayload - hdrLen - perFragOverhead
	nfrags := (len(inner) + chunk - 1) / chunk
	if nfrags == 0 {
		nfrags = 1
	}
	need := len(inner) + nfrags*(hdrLen+perFragOverhead)
	if cap(p.wire) < need {
		p.wire = make([]byte, 0, need)
	}
	wire := p.wire[:0]
	dgs := p.Datagrams[:0]
	for i := 0; i < nfrags; i++ {
		off := i * chunk
		end := off + chunk
		if end > len(inner) {
			end = len(inner)
		}
		start := len(wire)
		wire = append(wire, tmpl.prefix...)
		hdr := wire[start:]
		if end < len(inner) {
			hdr[tmplFlagsOff] |= flagMoreFrags
		}
		binary.BigEndian.PutUint32(hdr[tmplIDOff:], id)
		binary.BigEndian.PutUint32(hdr[tmplFragOff:], uint32(off))
		binary.BigEndian.PutUint32(hdr[tmplTotalLenOff:], uint32(len(inner)))
		var nonce uint64
		if tmpl.sealed {
			nonce = sl.NextNonce()
			binary.BigEndian.PutUint64(hdr[tmplNonceOff:], nonce)
		}
		payloadStart := len(wire)
		wire = append(wire, inner[off:end]...)
		if tmpl.sealed {
			// In-place encrypt, exactly as EncapsulateSealed: the wire
			// header just written is the associated data, and the reserved
			// headroom keeps the tag append inside the contiguous buffer.
			ct := sl.Seal(nonce, wire[start:payloadStart], wire[payloadStart:len(wire):need])
			wire = wire[:payloadStart+len(ct)]
		}
		dgs = append(dgs, wire[start:len(wire):len(wire)])
	}
	p.wire = wire
	p.Datagrams = dgs
	return p, nil
}
