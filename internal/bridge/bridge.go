package bridge

import (
	"fmt"
	"time"

	"vnetp/internal/ethernet"
	"vnetp/internal/ipv4"
	"vnetp/internal/sim"
	"vnetp/internal/vmm"
)

// OuterOverhead is the wire cost of one encapsulated datagram beyond the
// inner-frame bytes it carries: outer Ethernet + IP + UDP + encapsulation
// header.
const OuterOverhead = ethernet.HeaderLen + ipv4.Overhead + EncapHeaderLen

// Proto selects a link's encapsulation transport. The paper's evaluation
// uses UDP; TCP is supported for lossy/wide-area paths.
type Proto int

const (
	UDP Proto = iota
	TCP
)

func (p Proto) String() string {
	if p == TCP {
		return "tcp"
	}
	return "udp"
}

// LinkConfig describes one overlay link: a named UDP/TCP path to a remote
// VNET node.
type LinkConfig struct {
	ID         string
	RemoteHost string // vmm host name of the peer
	Proto      Proto
}

// EncapMsg is a simulated encapsulated datagram (one fragment) in
// flight. It is the wire payload both VNET/P bridges and VNET/U daemons
// exchange — the "compatible encapsulation" that makes the two systems
// interoperable (paper Sect. 4.2).
type EncapMsg struct {
	Frame  *ethernet.Frame // carried on every fragment; delivered once
	ID     uint64
	Idx, N int
}

// NewEncapMsg builds a single-datagram encapsulation (what a VNET/U
// daemon emits: its guests use standard MTUs, so it never fragments).
func NewEncapMsg(f *ethernet.Frame, id uint64) *EncapMsg {
	return &EncapMsg{Frame: f, ID: id, N: 1}
}

// directMsg is a raw (unencapsulated) frame in flight on the local
// segment.
type directMsg struct {
	frame *ethernet.Frame
}

// Bridge is the simulated VNET/P bridge: a host-kernel thread that
// encapsulates frames the core routed to links, fragments datagrams that
// exceed the physical MTU, and reassembles + delivers inbound traffic to
// the core. It implements core.BridgeSender.
type Bridge struct {
	Host *vmm.Host
	// Deliver is invoked (after decapsulation costs) for each inbound
	// frame; wire it to the core's DeliverFromWire.
	Deliver func(*ethernet.Frame)
	// DirectPeer is the host that receives raw direct-send frames (the
	// overlay's exit point on the local segment).
	DirectPeer string
	// Extra is an additional per-packet cost on both send and receive,
	// used by host embeddings whose bridge is not an in-kernel module —
	// the Kitten port routes every packet through a privileged service VM
	// (paper Sect. 6.3), paying tap crossings and a world switch.
	Extra time.Duration
	// CutThrough overlaps the DMA staging copies with forwarding (the
	// VNET/P+ cut-through technique): copies still consume bus budget but
	// no longer serialize the packet's progress.
	CutThrough bool

	worker   *sim.Worker
	links    map[string]LinkConfig
	nextID   uint64
	partial  map[string]int // fragments still missing, keyed by src/id
	lastIntr sim.Time       // last time a NIC interrupt was charged

	// Stats
	EncapSent, DirectSent   uint64
	Received, FragmentsSent uint64
	Reassembled             uint64
	NoLink                  uint64
}

// New creates a bridge on host whose thread uses the given worker
// configuration. If worker is non-nil it is used instead (lets
// experiments co-locate the bridge with a dispatcher on one core).
func New(host *vmm.Host, wc sim.WorkerConfig, worker *sim.Worker) *Bridge {
	if worker == nil {
		worker = sim.NewWorker(host.Eng, wc)
	}
	b := &Bridge{
		Host:    host,
		worker:  worker,
		links:   make(map[string]LinkConfig),
		partial: make(map[string]int),
	}
	host.SetReceiver(b.receive)
	return b
}

// Worker exposes the bridge thread for CPU accounting.
func (b *Bridge) Worker() *sim.Worker { return b.worker }

// AddLink installs an overlay link.
func (b *Bridge) AddLink(cfg LinkConfig) { b.links[cfg.ID] = cfg }

// RemoveLink tears down a link.
func (b *Bridge) RemoveLink(id string) { delete(b.links, id) }

// Links reports the configured link IDs.
func (b *Bridge) Links() []string {
	out := make([]string, 0, len(b.links))
	for id := range b.links {
		out = append(out, id)
	}
	return out
}

// maxInnerPerDatagram is the largest inner-frame slice one datagram can
// carry on this bridge's physical device.
func (b *Bridge) maxInnerPerDatagram() int {
	// The outer IP packet must fit the physical MTU; subtract IP/UDP and
	// encapsulation headers (outer Ethernet is additional wire framing,
	// not counted against the IP MTU).
	return b.Host.Dev.MTU - ipv4.Overhead - EncapHeaderLen
}

// SendOverlay encapsulates f and transmits it over the named link,
// fragmenting as needed (paper Sect. 4.4 MTU discussion). Costs: one
// encapsulation + bridge bookkeeping, plus host stack cost per datagram.
func (b *Bridge) SendOverlay(linkID string, f *ethernet.Frame) {
	link, ok := b.links[linkID]
	if !ok {
		b.NoLink++
		return
	}
	m := b.Host.Model
	inner := f.WireLen()
	nfrags := FragmentCount(inner, b.Host.Dev.MTU-ipv4.Overhead)
	cost := m.EncapPerPacket + m.BridgePerPacket + b.Extra + b.Host.Noise() +
		time.Duration(nfrags)*(m.HostStackPerPacket+b.Host.Dev.ExtraPerPacket)
	b.worker.Submit(cost, func() {
		b.Host.Tracer.Record(f.Tag, "bridge: encapsulated")
		b.EncapSent++
		id := b.nextID
		b.nextID++
		chunk := b.maxInnerPerDatagram()
		for i := 0; i < nfrags; i++ {
			size := chunk
			if i == nfrags-1 {
				size = inner - chunk*(nfrags-1)
			}
			wire := size + OuterOverhead
			msg := &EncapMsg{Frame: f, ID: id, Idx: i, N: nfrags}
			b.FragmentsSent++
			// DMA crossing to the NIC, then the wire.
			if b.CutThrough {
				b.Host.MemCopy(wire, nil)
				b.Host.Send(link.RemoteHost, wire, msg)
			} else {
				b.Host.MemCopy(wire, func() {
					b.Host.Send(link.RemoteHost, wire, msg)
				})
			}
		}
	})
}

// SendDirect transmits f raw on the local segment (direct send mode).
func (b *Bridge) SendDirect(f *ethernet.Frame) {
	if b.DirectPeer == "" {
		b.NoLink++
		return
	}
	m := b.Host.Model
	cost := m.BridgePerPacket + m.HostStackPerPacket + b.Host.Dev.ExtraPerPacket
	b.worker.Submit(cost, func() {
		b.DirectSent++
		wire := f.WireLen() + ethernet.HeaderLen // raw frame incl. framing
		b.Host.MemCopy(wire, func() {
			b.Host.Send(b.DirectPeer, wire, &directMsg{frame: f})
		})
	})
}

// nicCoalesce is the NIC's interrupt throttle: at most one receive
// interrupt per this interval (typical 10G adaptive-ITR behaviour). The
// first packet after an idle period still pays full interrupt latency.
const nicCoalesce = 25 * time.Microsecond

// receive handles a wire packet arriving at the host NIC: NIC interrupt
// (when the bridge thread is idle and the throttle allows — interrupts
// coalesce under load), host stack, decapsulation, reassembly, then
// delivery to the core.
func (b *Bridge) receive(pkt *vmm.WirePacket) {
	m := b.Host.Model
	cost := m.BridgePerPacket + m.HostStackPerPacket + b.Host.Dev.ExtraPerPacket + b.Extra + b.Host.Noise()
	if b.worker.Backlog() == 0 && b.Host.Eng.Now().Sub(b.lastIntr) >= nicCoalesce {
		cost += m.NICInterrupt
		b.lastIntr = b.Host.Eng.Now()
	}
	switch msg := pkt.Payload.(type) {
	case *EncapMsg:
		cost += m.EncapPerPacket
		src := pkt.Src
		b.worker.Submit(cost, func() {
			b.Received++
			k := fmt.Sprintf("%s/%d", src, msg.ID)
			remaining, started := b.partial[k]
			if !started {
				remaining = msg.N
			}
			remaining--
			if remaining > 0 {
				b.partial[k] = remaining
				return
			}
			delete(b.partial, k)
			b.Reassembled++
			b.Host.Tracer.Record(msg.Frame.Tag, "bridge: decapsulated")
			// DMA from NIC buffers toward the VMM.
			if b.CutThrough {
				b.Host.MemCopy(msg.Frame.WireLen(), nil)
				if b.Deliver != nil {
					b.Deliver(msg.Frame)
				}
				return
			}
			b.Host.MemCopy(msg.Frame.WireLen(), func() {
				if b.Deliver != nil {
					b.Deliver(msg.Frame)
				}
			})
		})
	case *directMsg:
		b.worker.Submit(cost, func() {
			b.Received++
			b.Host.MemCopy(msg.frame.WireLen(), func() {
				if b.Deliver != nil {
					b.Deliver(msg.frame)
				}
			})
		})
	}
}
