package bridge

import (
	"bytes"
	"testing"

	"vnetp/internal/ethernet"
	"vnetp/internal/seal"
)

func sealedPair(t *testing.T) (*seal.Sealer, *seal.Keyring) {
	t.Helper()
	key := make([]byte, seal.KeyLen)
	for i := range key {
		key[i] = 0x42
	}
	tx := seal.NewKeyring(0x0a0a)
	rx := seal.NewKeyring(0x0b0b)
	if err := tx.AddTenant(7, key); err != nil {
		t.Fatal(err)
	}
	if err := rx.AddTenant(7, key); err != nil {
		t.Fatal(err)
	}
	s, err := tx.Sealer(7)
	if err != nil {
		t.Fatal(err)
	}
	return s, rx
}

// unsealDatagram is the receive side the overlay dispatcher implements:
// parse, open with the header as AAD, substitute plaintext.
func unsealDatagram(t *testing.T, rx *seal.Keyring, d []byte) (*EncapHeader, []byte) {
	t.Helper()
	h, payload, err := ParseEncap(d)
	if err != nil {
		t.Fatalf("ParseEncap: %v", err)
	}
	if !h.HasSeal {
		t.Fatal("datagram not sealed")
	}
	aad := d[:len(d)-len(payload)]
	pt, err := rx.Open(h.Seal.Tenant, h.Seal.Nonce, aad, payload)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return h, pt
}

func TestEncapsulateSealedRoundTrip(t *testing.T) {
	s, rx := sealedPair(t)
	var enc Encapsulator
	for _, size := range []int{1, 64, 300, 1500, 9000} {
		frame := &ethernet.Frame{
			Dst: ethernet.LocalMAC(1), Src: ethernet.LocalMAC(2),
			Type: ethernet.TypeTest, Payload: bytes.Repeat([]byte{0x5a}, size),
		}
		pkt, err := enc.EncapsulateSealed(frame, 99, 1400, nil, s)
		if err != nil {
			t.Fatalf("size %d: %v", size, err)
		}
		r := NewReassembler()
		var got *ethernet.Frame
		for _, d := range pkt.Datagrams {
			h, pt := unsealDatagram(t, rx, d)
			if h.Seal.Tenant != 7 {
				t.Fatalf("tenant %d on wire, want 7", h.Seal.Tenant)
			}
			out, err := r.AddParsed("peer", h, pt)
			if err != nil {
				t.Fatalf("AddParsed: %v", err)
			}
			if out != nil {
				got = out
			}
		}
		pkt.Release()
		if got == nil {
			t.Fatalf("size %d: sealed fragments did not reassemble", size)
		}
		if !bytes.Equal(got.Payload, frame.Payload) || got.Dst != frame.Dst {
			t.Fatalf("size %d: reassembled frame differs", size)
		}
	}
}

func TestEncapsulateSealedWithTrace(t *testing.T) {
	s, rx := sealedPair(t)
	var enc Encapsulator
	frame := &ethernet.Frame{
		Dst: ethernet.LocalMAC(1), Src: ethernet.LocalMAC(2),
		Type: ethernet.TypeTest, Payload: bytes.Repeat([]byte{0x11}, 4000),
	}
	tr := &TraceExt{ID: 0xdeadbeef, Origin: 0x0a0a, Flags: TraceTriggered}
	pkt, err := enc.EncapsulateSealed(frame, 5, 1400, tr, s)
	if err != nil {
		t.Fatal(err)
	}
	defer pkt.Release()
	if len(pkt.Datagrams) < 2 {
		t.Fatalf("expected fragmentation, got %d datagrams", len(pkt.Datagrams))
	}
	seen := make(map[uint64]bool)
	for _, d := range pkt.Datagrams {
		h, _ := unsealDatagram(t, rx, d)
		if !h.HasTrace || h.Trace.ID != tr.ID {
			t.Fatalf("trace extension lost under seal: %+v", h)
		}
		if h.WireLen() != EncapHeaderLen+EncapTraceLen+EncapSealLen {
			t.Fatalf("WireLen %d", h.WireLen())
		}
		if seen[h.Seal.Nonce] {
			t.Fatalf("nonce %016x reused across fragments", h.Seal.Nonce)
		}
		seen[h.Seal.Nonce] = true
	}
}

func TestSealedTamperRejects(t *testing.T) {
	s, rx := sealedPair(t)
	var enc Encapsulator
	frame := &ethernet.Frame{
		Dst: ethernet.LocalMAC(1), Src: ethernet.LocalMAC(2),
		Type: ethernet.TypeTest, Payload: []byte("secret tenant traffic"),
	}
	pkt, err := enc.EncapsulateSealed(frame, 1, 1400, nil, s)
	if err != nil {
		t.Fatal(err)
	}
	d := append([]byte(nil), pkt.Datagrams[0]...)
	pkt.Release()

	// Flip one ciphertext byte: parse still succeeds (the header is
	// clear) but Open must reject.
	bad := append([]byte(nil), d...)
	bad[len(bad)-1] ^= 0x01
	h, payload, err := ParseEncap(bad)
	if err != nil {
		t.Fatalf("ParseEncap of tampered datagram: %v", err)
	}
	aad := bad[:len(bad)-len(payload)]
	if _, err := rx.Open(h.Seal.Tenant, h.Seal.Nonce, aad, payload); seal.RejectReasonOf(err) != seal.RejectAuth {
		t.Fatalf("tampered ciphertext: got %v, want auth reject", err)
	}

	// Flip a header byte (the frag id): the AAD no longer matches.
	bad2 := append([]byte(nil), d...)
	bad2[5] ^= 0xff
	h2, payload2, err := ParseEncap(bad2)
	if err != nil {
		t.Fatalf("ParseEncap of header-tampered datagram: %v", err)
	}
	aad2 := bad2[:len(bad2)-len(payload2)]
	if _, err := rx.Open(h2.Seal.Tenant, h2.Seal.Nonce, aad2, payload2); seal.RejectReasonOf(err) != seal.RejectAuth {
		t.Fatalf("tampered header: got %v, want auth reject", err)
	}

	// A sealed datagram whose payload is shorter than the tag is
	// rejected at parse time.
	if _, _, err := ParseEncap(d[:EncapHeaderLen+EncapSealLen+SealOverhead-1]); err != ErrTruncated {
		t.Fatalf("short sealed payload: got %v, want ErrTruncated", err)
	}
}

func TestSealedHeaderMarshalParse(t *testing.T) {
	h := &EncapHeader{
		ID: 3, FragOff: 128, TotalLen: 4096, MoreFrags: true,
		Seal: SealExt{Tenant: 0x01020304, Nonce: 0x0a0a_0000_0000_0007}, HasSeal: true,
	}
	// Append a plausible ciphertext so bounds checks pass.
	wire := append(h.Marshal(nil), make([]byte, 100+SealOverhead)...)
	got, payload, err := ParseEncap(wire)
	if err != nil {
		t.Fatalf("ParseEncap: %v", err)
	}
	if !got.HasSeal || got.Seal != h.Seal {
		t.Fatalf("seal extension mismatch: %+v", got.Seal)
	}
	if len(payload) != 100+SealOverhead {
		t.Fatalf("payload length %d", len(payload))
	}
	// Truncated inside the seal extension.
	if _, _, err := ParseEncap(h.Marshal(nil)[:EncapHeaderLen+4]); err != ErrTruncated {
		t.Fatalf("truncated seal ext: got %v", err)
	}
	// Fragment bounds account for the tag: FragOff+plaintext beyond
	// TotalLen still rejects.
	h2 := &EncapHeader{ID: 1, FragOff: 4090, TotalLen: 4096, HasSeal: true}
	wire2 := append(h2.Marshal(nil), make([]byte, 10+SealOverhead)...)
	if _, _, err := ParseEncap(wire2); err != ErrFragBounds {
		t.Fatalf("sealed frag bounds: got %v", err)
	}
}

// TestSealedPooledNoRealloc pins the zero-copy contract: sealing in the
// pooled encoder must not reallocate the wire buffer (the datagrams stay
// sub-slices of one contiguous allocation).
func TestSealedPooledNoRealloc(t *testing.T) {
	s, _ := sealedPair(t)
	var enc Encapsulator
	frame := &ethernet.Frame{
		Dst: ethernet.LocalMAC(1), Src: ethernet.LocalMAC(2),
		Type: ethernet.TypeTest, Payload: bytes.Repeat([]byte{1}, 5000),
	}
	pkt, err := enc.EncapsulateSealed(frame, 1, 1400, nil, s)
	if err != nil {
		t.Fatal(err)
	}
	base := &pkt.wire[0]
	for i, d := range pkt.Datagrams {
		if &d[0] == nil || !sameBacking(pkt.wire, d) {
			t.Fatalf("datagram %d escaped the pooled wire buffer", i)
		}
	}
	if base != &pkt.wire[0] {
		t.Fatal("wire buffer moved")
	}
	pkt.Release()
}

func sameBacking(wire, d []byte) bool {
	if len(wire) == 0 || len(d) == 0 {
		return false
	}
	start := &wire[0]
	end := &wire[len(wire)-1]
	_ = end
	for i := range wire {
		if &wire[i] == &d[0] {
			return true
		}
	}
	_ = start
	return false
}
