package bridge

import (
	"bytes"
	"crypto/aes"
	"crypto/cipher"
	"encoding/binary"
	"testing"

	"vnetp/internal/ethernet"
)

// ctrSealer is a deterministic LinkSealer for equality tests: real
// AES-GCM under a fixed key, with a plain counter nonce stream. Two
// instances built from the same key and counter produce identical
// nonce draws and ciphertexts, which a production seal.Sealer (shared
// atomic sequence, random start offset) deliberately does not.
type ctrSealer struct {
	tenant uint32
	next   uint64
	aead   cipher.AEAD
}

func newCtrSealer(t *testing.T, tenant uint32) *ctrSealer {
	t.Helper()
	key := bytes.Repeat([]byte{0x42}, 32)
	block, err := aes.NewCipher(key)
	if err != nil {
		t.Fatal(err)
	}
	aead, err := cipher.NewGCM(block)
	if err != nil {
		t.Fatal(err)
	}
	return &ctrSealer{tenant: tenant, aead: aead}
}

func (s *ctrSealer) Tenant() uint32 { return s.tenant }
func (s *ctrSealer) NextNonce() uint64 {
	s.next++
	return s.next
}
func (s *ctrSealer) Seal(nonce uint64, additional, plaintext []byte) []byte {
	var nb [12]byte
	binary.BigEndian.PutUint32(nb[:4], s.tenant)
	binary.BigEndian.PutUint64(nb[4:], nonce)
	return s.aead.Seal(plaintext[:0], nb[:], plaintext, additional)
}

// TestEncapTemplateEquality pins the template encoder's core contract:
// for plaintext and sealed links alike, across frame sizes from
// single-fragment 64B to multi-fragment jumbo, EncapsulateTemplate
// produces byte-for-byte the datagrams EncapsulateSealed produces for
// the same id and nonce stream. A template that drifted from the
// reference encoder would emit frames the remote node misparses — this
// test is why the flow cache may skip the field-by-field marshal.
func TestEncapTemplateEquality(t *testing.T) {
	sizes := []int{1, 50, 1400 - EncapHeaderLen - 14, 1400, 4000, 9000}
	budgets := []int{1400, 9000}
	for _, sealed := range []bool{false, true} {
		for _, size := range sizes {
			for _, budget := range budgets {
				f := &ethernet.Frame{
					Dst: ethernet.LocalMAC(1), Src: ethernet.LocalMAC(2),
					Type: ethernet.TypeTest, Payload: bytes.Repeat([]byte{0xa5}, size),
				}
				var refSl, tmplSl LinkSealer
				if sealed {
					refSl = newCtrSealer(t, 7)
					tmplSl = newCtrSealer(t, 7)
				}
				var enc Encapsulator
				ref, err := enc.EncapsulateSealed(f, 99, budget, nil, refSl)
				if err != nil {
					t.Fatal(err)
				}
				refCopy := make([][]byte, len(ref.Datagrams))
				for i, d := range ref.Datagrams {
					refCopy[i] = append([]byte(nil), d...)
				}
				ref.Release()

				tmpl := NewEncapTemplate(tmplSl)
				got, err := enc.EncapsulateTemplate(f, 99, budget, tmpl, tmplSl)
				if err != nil {
					t.Fatal(err)
				}
				if len(got.Datagrams) != len(refCopy) {
					t.Fatalf("sealed=%v size=%d budget=%d: template %d datagrams, reference %d",
						sealed, size, budget, len(got.Datagrams), len(refCopy))
				}
				for i := range refCopy {
					if !bytes.Equal(got.Datagrams[i], refCopy[i]) {
						t.Fatalf("sealed=%v size=%d budget=%d: datagram %d differs\ntmpl: % x\nref:  % x",
							sealed, size, budget, i, got.Datagrams[i], refCopy[i])
					}
				}
				got.Release()
			}
		}
	}
}

// Sealed template datagrams must decode and carry the template's
// tenant; plaintext template datagrams must carry no seal extension.
func TestEncapTemplateParses(t *testing.T) {
	f := &ethernet.Frame{
		Dst: ethernet.LocalMAC(3), Src: ethernet.LocalMAC(4),
		Type: ethernet.TypeTest, Payload: []byte("hello"),
	}
	var enc Encapsulator

	plain := NewEncapTemplate(nil)
	if plain.Sealed() || plain.Tenant() != 0 || plain.WireLen() != EncapHeaderLen {
		t.Fatalf("plaintext template: sealed=%v tenant=%d wirelen=%d",
			plain.Sealed(), plain.Tenant(), plain.WireLen())
	}
	p, err := enc.EncapsulateTemplate(f, 1, 1400, plain, nil)
	if err != nil {
		t.Fatal(err)
	}
	h, _, err := ParseEncap(p.Datagrams[0])
	if err != nil || h.HasSeal || h.ID != 1 {
		t.Fatalf("plaintext parse: h=%+v err=%v", h, err)
	}
	p.Release()

	sl := newCtrSealer(t, 9)
	sealedTmpl := NewEncapTemplate(sl)
	if !sealedTmpl.Sealed() || sealedTmpl.Tenant() != 9 || sealedTmpl.WireLen() != EncapHeaderLen+EncapSealLen {
		t.Fatalf("sealed template: sealed=%v tenant=%d wirelen=%d",
			sealedTmpl.Sealed(), sealedTmpl.Tenant(), sealedTmpl.WireLen())
	}
	sp, err := enc.EncapsulateTemplate(f, 2, 1400, sealedTmpl, sl)
	if err != nil {
		t.Fatal(err)
	}
	sh, _, err := ParseEncap(sp.Datagrams[0])
	if err != nil || !sh.HasSeal || sh.Seal.Tenant != 9 || sh.Seal.Nonce == 0 {
		t.Fatalf("sealed parse: h=%+v err=%v", sh, err)
	}
	sp.Release()
}
