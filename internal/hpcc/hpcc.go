// Package hpcc implements the MPI benchmark workloads of the paper's
// evaluation: the Intel MPI Benchmarks point-to-point tests (Fig. 10, 11),
// the HPCC latency-bandwidth suite (Fig. 12, 15), and the HPCC
// MPIRandomAccess and MPIFFT application benchmarks (Fig. 13, 16).
package hpcc

import (
	"math/rand"
	"time"

	"vnetp/internal/mpi"
	"vnetp/internal/netstack"
	"vnetp/internal/sim"
)

// PingPongResult is one IMB PingPong sample.
type PingPongResult struct {
	Size   int
	OneWay time.Duration // application-level one-way latency
	BwBps  float64       // one-way bandwidth
}

// PingPong runs the Intel MPI Benchmarks PingPong between ranks 0 and 1
// of a fresh 2-rank world for each message size: rank 0 sends, rank 1
// echoes; one-way latency is half the round trip (Fig. 10/11a).
func PingPong(eng *sim.Engine, stacks []*netstack.Stack, sizes []int, reps int) []PingPongResult {
	w := mpi.NewWorld(eng, stacks[:2])
	results := make([]PingPongResult, 0, len(sizes))
	w.Launch(func(p *sim.Proc, r *mpi.Rank) {
		peer := 1 - r.ID()
		for _, size := range sizes {
			// Warm up once per size.
			if r.ID() == 0 {
				r.Send(p, peer, 0, size)
				r.Recv(p, peer, 0)
			} else {
				r.Recv(p, peer, 0)
				r.Send(p, peer, 0, size)
			}
			start := p.Now()
			for i := 0; i < reps; i++ {
				if r.ID() == 0 {
					r.Send(p, peer, 1, size)
					r.Recv(p, peer, 1)
				} else {
					r.Recv(p, peer, 1)
					r.Send(p, peer, 1, size)
				}
			}
			if r.ID() == 0 {
				elapsed := p.Now().Sub(start)
				oneWay := elapsed / time.Duration(2*reps)
				results = append(results, PingPongResult{
					Size:   size,
					OneWay: oneWay,
					BwBps:  float64(size) / oneWay.Seconds(),
				})
			}
		}
	})
	eng.Go("await", func(p *sim.Proc) { w.AwaitAll(p) })
	eng.Run()
	eng.Close()
	return results
}

// SendRecvResult is one IMB SendRecv sample (Fig. 11b).
type SendRecvResult struct {
	Size  int
	BiBps float64 // aggregate bidirectional bandwidth per node pair
}

// SendRecvBench runs the IMB SendRecv test: both ranks send and receive
// simultaneously; the reported bandwidth counts traffic in both
// directions.
func SendRecvBench(eng *sim.Engine, stacks []*netstack.Stack, sizes []int, reps int) []SendRecvResult {
	w := mpi.NewWorld(eng, stacks[:2])
	results := make([]SendRecvResult, 0, len(sizes))
	w.Launch(func(p *sim.Proc, r *mpi.Rank) {
		peer := 1 - r.ID()
		for _, size := range sizes {
			r.SendRecv(p, peer, 0, size, peer, 0) // warm up
			r.Barrier(p)
			start := p.Now()
			for i := 0; i < reps; i++ {
				r.SendRecv(p, peer, 1, size, peer, 1)
			}
			elapsed := p.Now().Sub(start)
			if r.ID() == 0 {
				per := elapsed / time.Duration(reps)
				results = append(results, SendRecvResult{
					Size:  size,
					BiBps: 2 * float64(size) / per.Seconds(),
				})
			}
			r.Barrier(p)
		}
	})
	eng.Go("await", func(p *sim.Proc) { w.AwaitAll(p) })
	eng.Run()
	eng.Close()
	return results
}

// LatBwResult holds the HPCC latency-bandwidth benchmark outputs
// (Fig. 12): ping-pong latency/bandwidth over rank pairs plus the
// naturally and randomly ordered ring tests. Ring bandwidths are
// multiplied by the process count, as the paper reports them.
type LatBwResult struct {
	Procs          int
	PingPongLat    time.Duration // average over sampled pairs, 8-byte messages
	PingPongBwBps  float64       // average over sampled pairs, 2 MB messages
	NaturalRingLat time.Duration
	NaturalRingBw  float64 // aggregate (per-process x procs)
	RandomRingLat  time.Duration
	RandomRingBw   float64
}

// latency-bandwidth parameters (paper uses 8-byte latency probes and
// ~2 MB bandwidth messages; we scale the bandwidth message down to keep
// event counts manageable — bandwidth is rate-based so the value is
// unaffected once well past the latency regime).
const (
	latMsg     = 8
	bwMsg      = 512 << 10
	ringLatMsg = 8
	ringBwMsg  = 128 << 10
	pairReps   = 4
)

// LatBw runs the HPCC latency-bandwidth suite on an n-rank world.
func LatBw(eng *sim.Engine, stacks []*netstack.Stack, seed int64) LatBwResult {
	n := len(stacks)
	w := mpi.NewWorld(eng, stacks)
	res := LatBwResult{Procs: n}

	// Random ring order, fixed seed for determinism.
	perm := rand.New(rand.NewSource(seed)).Perm(n)
	pos := make([]int, n) // rank -> position in random ring
	for i, r := range perm {
		pos[r] = i
	}

	w.Launch(func(p *sim.Proc, r *mpi.Rank) {
		id := r.ID()

		// Ping-pong over a sample of pairs chosen to cross hosts (the
		// block rank layout co-locates consecutive ranks, and the paper's
		// numbers characterize the network, not shared memory).
		pairs := [][2]int{{0, n - 1}, {0, n / 2}, {1, n - 1}}
		var latSum time.Duration
		var bwSum float64
		samples := 0
		for pi, pair := range pairs {
			a, b := pair[0], pair[1]
			if a == b || (id != a && id != b) {
				r.Barrier(p)
				continue
			}
			peer := a
			if id == a {
				peer = b
			}
			tag := 100 + pi
			// Latency: 8-byte ping-pong.
			start := p.Now()
			for i := 0; i < pairReps; i++ {
				if id == a {
					r.Send(p, peer, tag, latMsg)
					r.Recv(p, peer, tag)
				} else {
					r.Recv(p, peer, tag)
					r.Send(p, peer, tag, latMsg)
				}
			}
			lat := p.Now().Sub(start) / time.Duration(2*pairReps)
			// Bandwidth: large message one-way.
			start = p.Now()
			if id == a {
				r.Send(p, peer, tag, bwMsg)
				r.Recv(p, peer, tag) // tiny ack keeps both in lockstep
			} else {
				r.Recv(p, peer, tag)
				r.Send(p, peer, tag, 0)
			}
			if id == a {
				bw := float64(bwMsg) / p.Now().Sub(start).Seconds()
				latSum += lat
				bwSum += bw
				samples++
			}
			r.Barrier(p)
		}
		if id == 0 && samples > 0 {
			res.PingPongLat = latSum / time.Duration(samples)
			res.PingPongBwBps = bwSum / float64(samples)
		}

		// Naturally ordered ring.
		natLat, natBw := ringTest(p, r, id, (id+1)%n, (id-1+n)%n)
		if id == 0 {
			res.NaturalRingLat = natLat
			res.NaturalRingBw = natBw * float64(n)
		}
		r.Barrier(p)

		// Randomly ordered ring: neighbors in permutation order.
		myPos := pos[id]
		next := perm[(myPos+1)%n]
		prev := perm[(myPos-1+n)%n]
		rndLat, rndBw := ringTest(p, r, id, next, prev)
		if id == 0 {
			res.RandomRingLat = rndLat
			res.RandomRingBw = rndBw * float64(n)
		}
		r.Barrier(p)
	})
	eng.Go("await", func(p *sim.Proc) { w.AwaitAll(p) })
	eng.Run()
	eng.Close()
	return res
}

// ringTest measures ring latency (small messages both ways) and
// per-process ring bandwidth (large messages both ways), HPCC style.
func ringTest(p *sim.Proc, r *mpi.Rank, id, next, prev int) (time.Duration, float64) {
	r.Barrier(p)
	start := p.Now()
	for i := 0; i < pairReps; i++ {
		r.SendRecv(p, next, 200+i, ringLatMsg, prev, 200+i)
		r.SendRecv(p, prev, 220+i, ringLatMsg, next, 220+i)
	}
	r.Barrier(p)
	lat := p.Now().Sub(start) / time.Duration(2*pairReps)

	r.Barrier(p)
	start = p.Now()
	r.SendRecv(p, next, 240, ringBwMsg, prev, 240)
	r.SendRecv(p, prev, 241, ringBwMsg, next, 241)
	r.Barrier(p)
	elapsed := p.Now().Sub(start)
	// Per-process bandwidth: total message volume / procs / max time —
	// each process moved 2 messages of ringBwMsg.
	bw := 2 * float64(ringBwMsg) / elapsed.Seconds()
	return lat, bw
}
