package hpcc

import (
	"time"

	"vnetp/internal/mpi"
	"vnetp/internal/netstack"
	"vnetp/internal/sim"
)

// CollectiveResult is one IMB-style collective timing: the average
// completion time of the operation across repetitions (max over ranks,
// as IMB reports).
type CollectiveResult struct {
	Op    string
	Size  int
	Procs int
	PerOp time.Duration
}

// Collectives measures the barrier/bcast/allreduce/alltoall completion
// times that drive the NAS benchmarks' sensitivity to the overlay. It
// runs each operation reps times on an n-rank world over the given
// stacks.
func Collectives(eng *sim.Engine, stacks []*netstack.Stack, size, reps int) []CollectiveResult {
	n := len(stacks)
	w := mpi.NewWorld(eng, stacks)
	ops := []struct {
		name string
		run  func(p *sim.Proc, r *mpi.Rank)
	}{
		{"barrier", func(p *sim.Proc, r *mpi.Rank) { r.Barrier(p) }},
		{"bcast", func(p *sim.Proc, r *mpi.Rank) { r.Bcast(p, 0, size) }},
		{"allreduce", func(p *sim.Proc, r *mpi.Rank) { r.Allreduce(p, size) }},
		{"alltoall", func(p *sim.Proc, r *mpi.Rank) { r.Alltoall(p, size) }},
		{"allgather", func(p *sim.Proc, r *mpi.Rank) { r.Allgather(p, size) }},
	}
	results := make([]CollectiveResult, len(ops))
	w.Launch(func(p *sim.Proc, r *mpi.Rank) {
		for i, op := range ops {
			op.run(p, r) // warm up
			r.Barrier(p)
			start := p.Now()
			for k := 0; k < reps; k++ {
				op.run(p, r)
			}
			r.Barrier(p)
			if r.ID() == 0 {
				results[i] = CollectiveResult{
					Op: op.name, Size: size, Procs: n,
					PerOp: p.Now().Sub(start) / time.Duration(reps),
				}
			}
		}
	})
	eng.Go("await", func(p *sim.Proc) { w.AwaitAll(p) })
	eng.Run()
	eng.Close()
	return results
}
