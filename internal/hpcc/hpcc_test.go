package hpcc_test

import (
	"testing"
	"time"

	"vnetp/internal/core"
	"vnetp/internal/hpcc"
	"vnetp/internal/lab"
	"vnetp/internal/netstack"
	"vnetp/internal/phys"
	"vnetp/internal/sim"
)

// stacks builds per-rank stacks: hosts VMs (or native nodes) with
// ranksPerVM ranks each.
func vnetpStacks(eng *sim.Engine, dev phys.Device, hosts, ranksPerVM int) []*netstack.Stack {
	tb := lab.NewVNETPTestbed(eng, lab.Config{Dev: dev, N: hosts, Params: core.DefaultParams()})
	var out []*netstack.Stack
	for i := 0; i < hosts; i++ {
		for k := 0; k < ranksPerVM; k++ {
			out = append(out, tb.Stacks[i])
		}
	}
	return out
}

func nativeStacks(eng *sim.Engine, dev phys.Device, hosts, ranksPerVM int) []*netstack.Stack {
	tb := lab.NewNativeTestbed(eng, dev, hosts)
	var out []*netstack.Stack
	for i := 0; i < hosts; i++ {
		for k := 0; k < ranksPerVM; k++ {
			out = append(out, tb.Stacks[i])
		}
	}
	return out
}

func TestFig10PingPongLatencyShape(t *testing.T) {
	sizes := []int{1, 64, 1024}
	engN := sim.New()
	nat := hpcc.PingPong(engN, nativeStacks(engN, phys.Eth10G, 2, 1), sizes, 5)
	engV := sim.New()
	vnp := hpcc.PingPong(engV, vnetpStacks(engV, phys.Eth10G, 2, 1), sizes, 5)

	t.Logf("MPI one-way latency 1B: native %v, VNET/P %v", nat[0].OneWay, vnp[0].OneWay)
	// Paper: VNET/P small-message MPI latency ~55µs, ~2.5x native.
	if vnp[0].OneWay < 35*time.Microsecond || vnp[0].OneWay > 90*time.Microsecond {
		t.Errorf("VNET/P 1B one-way %v, want ~40-80µs (paper 55µs)", vnp[0].OneWay)
	}
	ratio := float64(vnp[0].OneWay) / float64(nat[0].OneWay)
	if ratio < 1.8 || ratio > 4 {
		t.Errorf("latency ratio %.2f, want ~2-3.5 (paper 2.5)", ratio)
	}
	// Latency gap narrows in relative terms as size grows.
	rBig := float64(vnp[2].OneWay) / float64(nat[2].OneWay)
	if rBig > ratio {
		t.Errorf("relative latency overhead grew with size: %.2f -> %.2f", ratio, rBig)
	}
}

func TestFig11BandwidthShape(t *testing.T) {
	sizes := []int{256 << 10, 1 << 20}
	engN := sim.New()
	nat := hpcc.PingPong(engN, nativeStacks(engN, phys.Eth10G, 2, 1), sizes, 2)
	engV := sim.New()
	vnp := hpcc.PingPong(engV, vnetpStacks(engV, phys.Eth10G, 2, 1), sizes, 2)

	for i := range sizes {
		r := vnp[i].BwBps / nat[i].BwBps
		t.Logf("size %d: native %.0f MB/s, VNET/P %.0f MB/s (%.0f%%)",
			sizes[i], nat[i].BwBps/1e6, vnp[i].BwBps/1e6, r*100)
		// Paper: beyond 256K one-way bandwidth ~74% of native.
		if r < 0.5 || r > 0.95 {
			t.Errorf("one-way bw ratio at %d = %.2f, want 0.5-0.95 (paper 0.74)", sizes[i], r)
		}
	}
	// Paper: VNET/P delivers ~510 MB/s MPI bandwidth on 10G.
	if vnp[1].BwBps < 350e6 || vnp[1].BwBps > 900e6 {
		t.Errorf("VNET/P MPI bandwidth %.0f MB/s, want ~400-800 (paper 510)", vnp[1].BwBps/1e6)
	}

	// SendRecv: bidirectional ratio should be at or below the one-way
	// ratio (paper: 62% vs 74%).
	engN2 := sim.New()
	natB := hpcc.SendRecvBench(engN2, nativeStacks(engN2, phys.Eth10G, 2, 1), sizes[1:], 2)
	engV2 := sim.New()
	vnpB := hpcc.SendRecvBench(engV2, vnetpStacks(engV2, phys.Eth10G, 2, 1), sizes[1:], 2)
	rBi := vnpB[0].BiBps / natB[0].BiBps
	t.Logf("SendRecv 1MB: native %.0f MB/s, VNET/P %.0f MB/s (%.0f%%)",
		natB[0].BiBps/1e6, vnpB[0].BiBps/1e6, rBi*100)
	if rBi < 0.4 || rBi > 0.9 {
		t.Errorf("bidirectional ratio %.2f, want 0.4-0.9 (paper 0.62)", rBi)
	}
}

func TestFig12LatBwShape(t *testing.T) {
	// 2 hosts x 4 ranks = 8 processes (the smallest paper point).
	engN := sim.New()
	nat := hpcc.LatBw(engN, nativeStacks(engN, phys.Eth10G, 2, 4), 42)
	engV := sim.New()
	vnp := hpcc.LatBw(engV, vnetpStacks(engV, phys.Eth10G, 2, 4), 42)

	t.Logf("pingpong: lat %v vs %v; bw %.0f vs %.0f MB/s",
		nat.PingPongLat, vnp.PingPongLat, nat.PingPongBwBps/1e6, vnp.PingPongBwBps/1e6)
	t.Logf("natural ring: lat %v vs %v; bw %.0f vs %.0f MB/s",
		nat.NaturalRingLat, vnp.NaturalRingLat, nat.NaturalRingBw/1e6, vnp.NaturalRingBw/1e6)
	t.Logf("random ring: lat %v vs %v; bw %.0f vs %.0f MB/s",
		nat.RandomRingLat, vnp.RandomRingLat, nat.RandomRingBw/1e6, vnp.RandomRingBw/1e6)

	// Paper Fig 12 (10G): bandwidths within 60-75% of native, latencies
	// 2-3x higher.
	latR := float64(vnp.PingPongLat) / float64(nat.PingPongLat)
	if latR < 1.5 || latR > 4.5 {
		t.Errorf("pingpong latency ratio %.2f, want 2-3x", latR)
	}
	bwR := vnp.PingPongBwBps / nat.PingPongBwBps
	if bwR < 0.45 || bwR > 0.95 {
		t.Errorf("pingpong bw ratio %.2f, want ~0.6-0.75", bwR)
	}
	for _, pair := range [][2]float64{
		{vnp.NaturalRingBw, nat.NaturalRingBw},
		{vnp.RandomRingBw, nat.RandomRingBw},
	} {
		if r := pair[0] / pair[1]; r < 0.4 || r > 1.0 {
			t.Errorf("ring bw ratio %.2f, want 0.5-0.9", r)
		}
	}
	if float64(vnp.NaturalRingLat) < float64(nat.NaturalRingLat) {
		t.Error("VNET/P ring latency below native")
	}
}

func TestFig13RandomAccessShape(t *testing.T) {
	engN := sim.New()
	nat := hpcc.RandomAccess(engN, nativeStacks(engN, phys.Eth10G, 2, 4))
	engV := sim.New()
	vnp := hpcc.RandomAccess(engV, vnetpStacks(engV, phys.Eth10G, 2, 4))
	t.Logf("RandomAccess 8 procs: native %.4f GUPs, VNET/P %.4f GUPs (%.0f%%)",
		nat.GUPs, vnp.GUPs, 100*vnp.GUPs/nat.GUPs)
	if nat.GUPs <= 0 || vnp.GUPs <= 0 {
		t.Fatal("GUPs not measured")
	}
	r := vnp.GUPs / nat.GUPs
	// Paper: VNET/P achieves 65-70% of native GUPs.
	if r < 0.45 || r > 0.95 {
		t.Errorf("GUPs ratio %.2f, want ~0.55-0.85 (paper 0.65-0.70)", r)
	}
}

func TestFig13FFTShape(t *testing.T) {
	engN := sim.New()
	nat := hpcc.FFT(engN, nativeStacks(engN, phys.Eth10G, 2, 4))
	engV := sim.New()
	vnp := hpcc.FFT(engV, vnetpStacks(engV, phys.Eth10G, 2, 4))
	t.Logf("MPIFFT 8 procs: native %.2f GFlop/s, VNET/P %.2f GFlop/s (%.0f%%)",
		nat.GFlops, vnp.GFlops, 100*vnp.GFlops/nat.GFlops)
	if nat.GFlops <= 0 || vnp.GFlops <= 0 {
		t.Fatal("GFlops not measured")
	}
	r := vnp.GFlops / nat.GFlops
	// Paper: VNET/P within 60-70% of native.
	if r < 0.45 || r > 0.95 {
		t.Errorf("FFT ratio %.2f, want ~0.55-0.85 (paper 0.60-0.70)", r)
	}
}

func TestCollectivesOrdering(t *testing.T) {
	engN := sim.New()
	nat := hpcc.Collectives(engN, nativeStacks(engN, phys.Eth10G, 2, 4), 4096, 4)
	engV := sim.New()
	vnp := hpcc.Collectives(engV, vnetpStacks(engV, phys.Eth10G, 2, 4), 4096, 4)
	if len(nat) != 5 || len(vnp) != 5 {
		t.Fatalf("collective counts: %d/%d", len(nat), len(vnp))
	}
	for i := range nat {
		t.Logf("%-10s native %v, vnetp %v", nat[i].Op, nat[i].PerOp, vnp[i].PerOp)
		if nat[i].PerOp <= 0 || vnp[i].PerOp <= 0 {
			t.Errorf("%s: non-positive timing", nat[i].Op)
		}
		if vnp[i].PerOp <= nat[i].PerOp {
			t.Errorf("%s: VNET/P (%v) not slower than native (%v)", nat[i].Op, vnp[i].PerOp, nat[i].PerOp)
		}
	}
	// Alltoall moves the most data: it must dominate bcast.
	if vnp[3].PerOp <= vnp[1].PerOp {
		t.Errorf("alltoall (%v) should exceed bcast (%v)", vnp[3].PerOp, vnp[1].PerOp)
	}
}

func TestLatBwScalesWithProcs(t *testing.T) {
	// Sanity: the suite runs at the paper's larger scales too.
	eng := sim.New()
	res := hpcc.LatBw(eng, vnetpStacks(eng, phys.Eth10G, 3, 4), 7)
	if res.Procs != 12 || res.NaturalRingBw <= 0 || res.RandomRingBw <= 0 {
		t.Fatalf("12-proc latbw: %+v", res)
	}
}
