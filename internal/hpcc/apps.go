package hpcc

import (
	"math/rand"
	"time"

	"vnetp/internal/mpi"
	"vnetp/internal/netstack"
	"vnetp/internal/sim"
)

// MPIRandomAccess (Fig. 13a): each rank generates random 8-byte updates
// to a table distributed over all ranks, buffering updates per
// destination and flushing buckets as they fill — the HPCC GUPs workload.
// Update volumes are scaled down from the real run (documented in
// EXPERIMENTS.md); GUPs is a rate, so the scaling only trims the
// measurement window.
type RandomAccessResult struct {
	Procs   int
	Updates int
	GUPs    float64
}

// randomAccess tuning: bucket of updates per destination before a flush,
// local CPU cost per table update, updates per rank.
const (
	raBucket        = 1024
	raUpdateCost    = 10 * time.Nanosecond
	raUpdatesPerPE  = 20000
	raLookaheadTags = 300
)

// RandomAccess runs the GUPs benchmark over the given stacks.
func RandomAccess(eng *sim.Engine, stacks []*netstack.Stack) RandomAccessResult {
	n := len(stacks)
	w := mpi.NewWorld(eng, stacks)
	var start, end sim.Time
	totalUpdates := n * raUpdatesPerPE
	w.Launch(func(p *sim.Proc, r *mpi.Rank) {
		rng := rand.New(rand.NewSource(int64(1 + r.ID())))
		r.Barrier(p)
		if r.ID() == 0 {
			start = p.Now()
		}
		// Receiver helper: applies incoming buckets until a zero-size stop
		// marker has arrived from each peer. It matches only the
		// RandomAccess tag so concurrent collectives are untouched.
		stops := 0
		recvDone := sim.NewChan[struct{}](eng)
		eng.Go("ra-recv", func(hp *sim.Proc) {
			for stops < n-1 {
				_, _, size := r.Recv(hp, mpi.AnySource, raLookaheadTags)
				if size == 0 {
					stops++
					continue
				}
				// Apply updates: size/8 of them.
				hp.Sleep(time.Duration(size/8) * raUpdateCost)
			}
			recvDone.Send(struct{}{})
		})
		// Generate and send updates.
		buckets := make([]int, n)
		flush := func(dst int) {
			if buckets[dst] == 0 {
				return
			}
			r.Send(p, dst, raLookaheadTags, buckets[dst]*8)
			buckets[dst] = 0
		}
		for u := 0; u < raUpdatesPerPE; u++ {
			dst := rng.Intn(n)
			if dst == r.ID() {
				p.Sleep(raUpdateCost) // local update
				continue
			}
			buckets[dst]++
			if buckets[dst] >= raBucket {
				flush(dst)
			}
		}
		for d := 0; d < n; d++ {
			if d != r.ID() {
				flush(d)
				r.Send(p, d, raLookaheadTags, 0) // zero-size stop marker
			}
		}
		recvDone.Recv(p)
		r.Barrier(p)
		if r.ID() == 0 {
			end = p.Now()
		}
	})
	eng.Go("await", func(p *sim.Proc) { w.AwaitAll(p) })
	eng.Run()
	eng.Close()
	el := end.Sub(start).Seconds()
	if el <= 0 {
		return RandomAccessResult{Procs: n}
	}
	return RandomAccessResult{
		Procs:   n,
		Updates: totalUpdates,
		GUPs:    float64(totalUpdates) / el / 1e9,
	}
}

// MPIFFT (Fig. 13b): a double-precision complex 1-D DFT distributed over
// the ranks. Each of the three passes does local FFT work and a global
// transpose (all-to-all), the communication that dominates the benchmark.
type FFTResult struct {
	Procs   int
	Points  int
	GFlops  float64
	Elapsed time.Duration
}

// fft tuning: problem size per rank (complex points, scaled down from the
// HPCC run), local compute rate, iterations.
const (
	fftPointsPerPE = 1 << 17 // 128K complex points per process
	fftFlopRate    = 2.0e9   // per-rank sustained flop/s for FFT kernels
	fftIters       = 3
)

// FFT runs the MPIFFT benchmark over the given stacks.
func FFT(eng *sim.Engine, stacks []*netstack.Stack) FFTResult {
	n := len(stacks)
	w := mpi.NewWorld(eng, stacks)
	var start, end sim.Time
	points := fftPointsPerPE * n
	// 5*N*log2(N) flops per full FFT, one forward + inverse check per
	// iteration as HPCC does.
	log2N := 0
	for 1<<log2N < points {
		log2N++
	}
	flopsPerFFT := 5 * float64(points) * float64(log2N)
	w.Launch(func(p *sim.Proc, r *mpi.Rank) {
		r.Barrier(p)
		if r.ID() == 0 {
			start = p.Now()
		}
		// Per-rank local compute per pass.
		localFlops := flopsPerFFT / float64(n) / 3
		block := fftPointsPerPE / n * 16 // bytes per destination per transpose
		for it := 0; it < fftIters; it++ {
			for pass := 0; pass < 3; pass++ {
				p.Sleep(time.Duration(localFlops / fftFlopRate * 1e9))
				r.Alltoall(p, block)
			}
		}
		r.Barrier(p)
		if r.ID() == 0 {
			end = p.Now()
		}
	})
	eng.Go("await", func(p *sim.Proc) { w.AwaitAll(p) })
	eng.Run()
	eng.Close()
	el := end.Sub(start)
	if el <= 0 {
		return FFTResult{Procs: n, Points: points}
	}
	return FFTResult{
		Procs:   n,
		Points:  points,
		GFlops:  float64(fftIters) * flopsPerFFT / el.Seconds() / 1e9,
		Elapsed: el,
	}
}
