package hpcc_test

import (
	"testing"
	"time"

	"math/rand"

	"vnetp/internal/hpcc"
	"vnetp/internal/lab"
	"vnetp/internal/mpi"
	"vnetp/internal/netstack"
	"vnetp/internal/phys"
	"vnetp/internal/sim"
)

func TestDebugRandomAccessNative(t *testing.T) {
	for _, cfg := range []struct{ hosts, per int }{{2, 1}, {2, 4}} {
		eng := sim.New()
		st := nativeStacks(eng, phys.Eth10G, cfg.hosts, cfg.per)
		res := hpcc.RandomAccess(eng, st)
		t.Logf("native %dx%d: GUPs=%.4f drops=%d/%d sent=%d/%d",
			cfg.hosts, cfg.per, res.GUPs,
			st[0].AsyncDrops, st[len(st)-1].AsyncDrops,
			st[0].SentFrames, st[len(st)-1].SentFrames)
	}
}

func TestDebugRATimeline(t *testing.T) {
	eng := sim.New()
	stacks := nativeStacks(eng, phys.Eth10G, 2, 4)
	n := len(stacks)
	w := mpi.NewWorld(eng, stacks)
	w.Launch(func(p *sim.Proc, r *mpi.Rank) {
		r.Barrier(p)
		t0 := p.Now()
		stops := 0
		recvDone := sim.NewChan[struct{}](eng)
		eng.Go("ra-recv", func(hp *sim.Proc) {
			for stops < n-1 {
				_, _, size := r.Recv(hp, mpi.AnySource, 300)
				if size == 0 {
					stops++
					continue
				}
				hp.Sleep(time.Duration(size/8) * 10 * time.Nanosecond)
			}
			recvDone.Send(struct{}{})
		})
		rng := rand.New(rand.NewSource(int64(1 + r.ID())))
		buckets := make([]int, n)
		for u := 0; u < 20000; u++ {
			dst := rng.Intn(n)
			if dst == r.ID() {
				p.Sleep(10 * time.Nanosecond)
				continue
			}
			buckets[dst]++
			if buckets[dst] >= 512 {
				r.Send(p, dst, 300, buckets[dst]*8)
				buckets[dst] = 0
			}
		}
		tGen := p.Now()
		for d := 0; d < n; d++ {
			if d != r.ID() {
				if buckets[d] > 0 {
					r.Send(p, d, 300, buckets[d]*8)
				}
				r.Send(p, d, 300, 0)
			}
		}
		tFlush := p.Now()
		recvDone.Recv(p)
		tRecv := p.Now()
		r.Barrier(p)
		t.Logf("rank %d: gen=%v flush=%v recvwait=%v total=%v",
			r.ID(), tGen.Sub(t0), tFlush.Sub(tGen), tRecv.Sub(tFlush), p.Now().Sub(t0))
	})
	eng.Go("await", func(p *sim.Proc) { w.AwaitAll(p) })
	eng.Run()
	eng.Close()
}

func TestDebugTwoStreamsOneHostPair(t *testing.T) {
	// Minimal repro attempt: two rank pairs across one host pair, bulk
	// exchange both ways.
	eng := sim.New()
	tb := lab.NewNativeTestbed(eng, phys.Eth10G, 2)
	stacks := []*netstack.Stack{tb.Stacks[0], tb.Stacks[0], tb.Stacks[1], tb.Stacks[1]}
	w := mpi.NewWorld(eng, stacks)
	var start, end sim.Time
	w.Launch(func(p *sim.Proc, r *mpi.Rank) {
		r.Barrier(p)
		if r.ID() == 0 {
			start = p.Now()
		}
		peer := (r.ID() + 2) % 4
		for i := 0; i < 10; i++ {
			r.SendRecv(p, peer, 9, 4096, peer, 9)
		}
		r.Barrier(p)
		if r.ID() == 0 {
			end = p.Now()
		}
	})
	eng.Go("await", func(p *sim.Proc) { w.AwaitAll(p) })
	eng.Run()
	eng.Close()
	t.Logf("elapsed %v for 10 rounds of 4KB sendrecv x2 pairs", end.Sub(start))
	if end.Sub(start) > 5*time.Millisecond {
		t.Errorf("suspiciously slow: %v", end.Sub(start))
	}
}
