// Package supervise keeps the node's long-lived datapath goroutines
// alive: every dispatcher worker, per-link TX sender, heartbeat prober,
// and reassembly evictor runs under a Supervisor that contains panics
// (one crashing worker must not take the node down), relaunches the
// component with capped, jittered exponential backoff, and watches a
// progress heartbeat so a stalled loop — stuck on a hung syscall or a
// livelocked dependency — is detected and superseded by a fresh
// instance. The model follows the operated-infrastructure argument of
// NetKernel and the self-healing behavior IPOP demonstrates for virtual
// networks: the overlay is a service that recovers without operator
// action, and every recovery is counted (vnetp_panics_recovered_total,
// vnetp_component_restarts_total, vnetp_watchdog_stalls_total) and
// logged with a component label so chaos tests and dashboards can
// observe it.
//
// Goroutines cannot be killed, so a "restart" of a stalled component is
// a supersession: the stuck instance's quit channel is closed (it exits
// whenever it unblocks and notices) and a replacement instance is
// launched over the same shared state — rings and reassembly shards
// survive; only the loop goroutine is replaced.
package supervise

import (
	"context"
	"fmt"
	"log/slog"
	"math/rand"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"vnetp/internal/telemetry"
)

// Config tunes a Supervisor.
type Config struct {
	// BackoffMin is the first restart delay after a panic. Default 5ms.
	BackoffMin time.Duration
	// BackoffMax caps the exponential restart backoff. Default 1s.
	BackoffMax time.Duration
	// BackoffReset: an instance that ran healthy at least this long
	// resets its worker's backoff to BackoffMin. Default 5s.
	BackoffReset time.Duration
	// StallTimeout is how long a component may sit inside one work item
	// (between Working and Idle) before the watchdog declares it stalled
	// and supersedes it. Default 2s; negative disables the watchdog.
	StallTimeout time.Duration
	// WatchdogInterval is the watchdog's check period. Default
	// StallTimeout/4 (at least 10ms).
	WatchdogInterval time.Duration
}

func (c *Config) normalize() {
	if c.BackoffMin <= 0 {
		c.BackoffMin = 5 * time.Millisecond
	}
	if c.BackoffMax < c.BackoffMin {
		c.BackoffMax = time.Second
		if c.BackoffMax < c.BackoffMin {
			c.BackoffMax = c.BackoffMin
		}
	}
	if c.BackoffReset <= 0 {
		c.BackoffReset = 5 * time.Second
	}
	if c.StallTimeout == 0 {
		c.StallTimeout = 2 * time.Second
	}
	if c.WatchdogInterval <= 0 {
		c.WatchdogInterval = c.StallTimeout / 4
		if c.WatchdogInterval < 10*time.Millisecond {
			c.WatchdogInterval = 10 * time.Millisecond
		}
	}
}

// Metrics are the counter families recoveries land in, labeled by
// component name. Any nil field is simply not counted, so unit tests
// can run a Supervisor without a registry.
type Metrics struct {
	// Panics counts panics recovered per component
	// (vnetp_panics_recovered_total).
	Panics *telemetry.CounterVec
	// Restarts counts instance relaunches per component, whether after
	// a panic or a watchdog supersession
	// (vnetp_component_restarts_total).
	Restarts *telemetry.CounterVec
	// Stalls counts watchdog stall detections per component
	// (vnetp_watchdog_stalls_total).
	Stalls *telemetry.CounterVec
}

// Supervisor owns a set of named workers and the watchdog that guards
// their progress.
type Supervisor struct {
	name string
	cfg  Config
	log  *slog.Logger
	m    Metrics

	mu      sync.Mutex
	workers map[string]*Worker
	stopped bool
	quit    chan struct{}
	wg      sync.WaitGroup
}

// New builds a Supervisor. log may be nil (discard); see Metrics for
// counter wiring.
func New(name string, cfg Config, log *slog.Logger, m Metrics) *Supervisor {
	cfg.normalize()
	if log == nil {
		log = slog.New(nopHandler{})
	}
	s := &Supervisor{
		name:    name,
		cfg:     cfg,
		log:     log,
		m:       m,
		workers: make(map[string]*Worker),
		quit:    make(chan struct{}),
	}
	if cfg.StallTimeout > 0 {
		s.wg.Add(1)
		go s.watchdog()
	}
	return s
}

// Worker is one supervised component: a name, a run function, and the
// currently live Instance executing it.
type Worker struct {
	sup  *Supervisor
	name string
	run  func(*Instance)

	// guarded by sup.mu
	cur     *Instance
	backoff time.Duration
	started time.Time
	stopped bool

	restarts atomic.Uint64

	// chaos injection (test hooks): armed faults fire at the component's
	// next Working call.
	panicArmed atomic.Bool
	stallNanos atomic.Int64
}

// Name returns the worker's component name.
func (w *Worker) Name() string { return w.name }

// Restarts reports how many times this worker has been relaunched
// (panic recoveries plus watchdog supersessions).
func (w *Worker) Restarts() uint64 { return w.restarts.Load() }

// InjectPanic arms a one-shot chaos fault: the component's next Working
// call panics. The supervisor recovers and restarts it — this is the
// runtime-level analogue of a faultnet drop conduit.
func (w *Worker) InjectPanic() { w.panicArmed.Store(true) }

// InjectStall arms a one-shot chaos fault: the component's next Working
// call blocks for d (or until the instance is superseded or stopped),
// simulating a hung dependency so the watchdog path can be exercised
// under live traffic.
func (w *Worker) InjectStall(d time.Duration) { w.stallNanos.Store(int64(d)) }

// Stop signals the worker's live instance to exit and removes the
// worker from the supervisor. It does not wait: the instance exits at
// its next quit check (Supervisor.Stop waits for everything).
func (w *Worker) Stop() {
	s := w.sup
	s.mu.Lock()
	w.stopped = true
	inst := w.cur
	if s.workers[w.name] == w {
		delete(s.workers, w.name)
	}
	s.mu.Unlock()
	if inst != nil {
		inst.close()
	}
}

// Instance is one live execution of a worker's run function. The run
// function must return promptly once Quit is closed, and should bracket
// each unit of work with Working / Idle so the watchdog can tell a
// blocked-waiting loop (idle: fine) from a stuck one (working too long:
// stalled).
type Instance struct {
	w        *Worker
	quit     chan struct{}
	quitOnce sync.Once
	busy     atomic.Int64 // unix nanos the current work item started; 0 = idle
}

// Quit is closed when this instance must exit: supervisor or worker
// stop, or the watchdog superseding a stalled instance.
func (i *Instance) Quit() <-chan struct{} { return i.quit }

func (i *Instance) close() { i.quitOnce.Do(func() { close(i.quit) }) }

// Working marks the start of one unit of work (arming the stall clock)
// and fires any chaos fault a test armed on the worker. Its cost while
// no fault is armed is three atomic operations.
func (i *Instance) Working() {
	i.busy.Store(time.Now().UnixNano())
	w := i.w
	if w.panicArmed.CompareAndSwap(true, false) {
		panic(fmt.Sprintf("supervise: injected panic in %q", w.name))
	}
	if d := w.stallNanos.Swap(0); d > 0 {
		t := time.NewTimer(time.Duration(d))
		defer t.Stop()
		select {
		case <-t.C:
		case <-i.quit:
		}
	}
}

// Idle marks the end of the current unit of work (the progress
// heartbeat the watchdog reads).
func (i *Instance) Idle() { i.busy.Store(0) }

// Go launches run as a supervised component under the given name. run
// receives the live Instance; it must select on Instance.Quit and
// return when it closes. A panic inside run is recovered, counted, and
// run is relaunched after backoff; a clean return retires the worker
// (no restart). Returns the Worker handle (for Stop and chaos
// injection). Reusing a name replaces the map entry — the caller must
// Stop the previous worker itself.
func (s *Supervisor) Go(name string, run func(*Instance)) *Worker {
	w := &Worker{sup: s, name: name, run: run}
	s.mu.Lock()
	if s.stopped {
		w.stopped = true
		s.mu.Unlock()
		return w
	}
	s.workers[name] = w
	w.started = time.Now()
	s.launchLocked(w, 0)
	s.mu.Unlock()
	return w
}

// Worker looks up a live worker by component name (nil if absent).
func (s *Supervisor) Worker(name string) *Worker {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.workers[name]
}

// Components lists the live component names (for status surfaces and
// tests).
func (s *Supervisor) Components() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.workers))
	for name := range s.workers {
		out = append(out, name)
	}
	return out
}

// Stop signals every instance and the watchdog, then waits for all
// supervised goroutines to exit. Idempotent.
func (s *Supervisor) Stop() {
	s.mu.Lock()
	if !s.stopped {
		s.stopped = true
		close(s.quit)
		for _, w := range s.workers {
			w.stopped = true
			if w.cur != nil {
				w.cur.close()
			}
		}
	}
	s.mu.Unlock()
	s.wg.Wait()
}

// launchLocked starts a fresh instance of w after delay. Caller holds
// s.mu and has already decided this launch is valid.
func (s *Supervisor) launchLocked(w *Worker, delay time.Duration) {
	inst := &Instance{w: w, quit: make(chan struct{})}
	w.cur = inst
	s.wg.Add(1)
	go s.runInstance(w, inst, delay)
}

// runInstance is the supervised goroutine: optional backoff delay, the
// run function under a recover, then the restart decision.
func (s *Supervisor) runInstance(w *Worker, inst *Instance, delay time.Duration) {
	defer s.wg.Done()
	if delay > 0 {
		t := time.NewTimer(delay)
		select {
		case <-t.C:
		case <-inst.quit:
			t.Stop()
			return
		case <-s.quit:
			t.Stop()
			return
		}
	}
	launched := time.Now()
	if !s.runOnce(w, inst) {
		// Clean return: the component finished on its own (stop, or a
		// naturally terminating loop like a socket reader whose socket
		// closed). Retire it — restarting a cleanly-exited loop would
		// spin.
		return
	}
	// Panicked. Relaunch with capped jittered backoff — unless this
	// instance was already superseded or stopped in the meantime.
	s.mu.Lock()
	if w.stopped || s.stopped || w.cur != inst {
		s.mu.Unlock()
		return
	}
	if time.Since(launched) >= s.cfg.BackoffReset {
		w.backoff = 0
	}
	if w.backoff == 0 {
		w.backoff = s.cfg.BackoffMin
	} else {
		w.backoff *= 2
		if w.backoff > s.cfg.BackoffMax {
			w.backoff = s.cfg.BackoffMax
		}
	}
	d := jitter(w.backoff)
	w.started = time.Now()
	w.restarts.Add(1)
	s.launchLocked(w, d)
	s.mu.Unlock()
	count(s.m.Restarts, w.name)
	s.log.Info("supervised component restarting",
		"supervisor", s.name, "component", w.name, "backoff", d)
}

// runOnce executes one instance under a recover; reports whether it
// panicked.
func (s *Supervisor) runOnce(w *Worker, inst *Instance) (panicked bool) {
	defer func() {
		if r := recover(); r != nil {
			panicked = true
			count(s.m.Panics, w.name)
			s.log.Error("supervised component panicked",
				"supervisor", s.name, "component", w.name,
				"panic", fmt.Sprint(r), "stack", string(debug.Stack()))
		}
	}()
	w.run(inst)
	return false
}

// watchdog periodically sweeps the workers for instances stuck inside
// one unit of work longer than StallTimeout and supersedes them.
func (s *Supervisor) watchdog() {
	defer s.wg.Done()
	t := time.NewTicker(s.cfg.WatchdogInterval)
	defer t.Stop()
	for {
		select {
		case <-s.quit:
			return
		case <-t.C:
			s.sweep()
		}
	}
}

func (s *Supervisor) sweep() {
	now := time.Now().UnixNano()
	type stalled struct {
		name string
		age  time.Duration
	}
	var hits []stalled
	s.mu.Lock()
	for _, w := range s.workers {
		if w.stopped || w.cur == nil {
			continue
		}
		inst := w.cur
		busy := inst.busy.Load()
		if busy == 0 || now-busy < int64(s.cfg.StallTimeout) {
			continue
		}
		// Stalled: abandon this instance (it exits when it unblocks)
		// and launch a replacement over the same shared state.
		inst.close()
		w.started = time.Now()
		w.restarts.Add(1)
		s.launchLocked(w, 0)
		hits = append(hits, stalled{w.name, time.Duration(now - busy)})
	}
	s.mu.Unlock()
	for _, h := range hits {
		count(s.m.Stalls, h.name)
		count(s.m.Restarts, h.name)
		s.log.Warn("supervised component stalled; superseding",
			"supervisor", s.name, "component", h.name, "stalled_for", h.age)
	}
}

// jitter spreads a backoff over [d/2, 3d/2) so restarting components
// don't thundering-herd on a shared dependency.
func jitter(d time.Duration) time.Duration {
	if d <= 0 {
		return 0
	}
	return d/2 + time.Duration(rand.Int63n(int64(d)))
}

func count(v *telemetry.CounterVec, component string) {
	if v != nil {
		v.With(component).Inc()
	}
}

// nopHandler discards log records (a nil-logger default without
// importing the logging package, which would be an odd dependency
// direction for a leaf utility).
type nopHandler struct{}

func (nopHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (nopHandler) Handle(context.Context, slog.Record) error { return nil }
func (nopHandler) WithAttrs([]slog.Attr) slog.Handler        { return nopHandler{} }
func (nopHandler) WithGroup(string) slog.Handler             { return nopHandler{} }
