package supervise_test

import (
	"sync/atomic"
	"testing"
	"time"

	"vnetp/internal/supervise"
	"vnetp/internal/telemetry"
)

// testMetrics builds a registry-backed Metrics and accessors for the
// three recovery families.
func testMetrics() (supervise.Metrics, func(name, component string) uint64) {
	reg := telemetry.NewRegistry()
	m := supervise.Metrics{
		Panics:   reg.CounterVec("vnetp_panics_recovered_total", "t", "component"),
		Restarts: reg.CounterVec("vnetp_component_restarts_total", "t", "component"),
		Stalls:   reg.CounterVec("vnetp_watchdog_stalls_total", "t", "component"),
	}
	read := func(name, component string) uint64 {
		switch name {
		case "panics":
			return m.Panics.With(component).Load()
		case "restarts":
			return m.Restarts.With(component).Load()
		case "stalls":
			return m.Stalls.With(component).Load()
		}
		return 0
	}
	return m, read
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestPanicRecoveryRestarts pins the core contract: a panicking
// component is recovered, counted, and relaunched over the same state,
// and the loop keeps making progress afterwards.
func TestPanicRecoveryRestarts(t *testing.T) {
	m, read := testMetrics()
	s := supervise.New("test", supervise.Config{
		BackoffMin: time.Millisecond, BackoffMax: 4 * time.Millisecond,
		StallTimeout: -1, // watchdog off
	}, nil, m)
	defer s.Stop()

	work := make(chan int, 16)
	var processed atomic.Uint64
	s.Go("worker", func(inst *supervise.Instance) {
		for {
			select {
			case <-inst.Quit():
				return
			case v := <-work:
				inst.Working()
				if v < 0 {
					panic("poison item")
				}
				processed.Add(1)
				inst.Idle()
			}
		}
	})

	work <- 1
	waitFor(t, "first item", func() bool { return processed.Load() == 1 })
	work <- -1 // poison: the instance panics mid-item
	waitFor(t, "panic recovery", func() bool { return read("panics", "worker") == 1 })
	waitFor(t, "restart", func() bool { return read("restarts", "worker") == 1 })
	work <- 2 // the replacement instance drains the same channel
	waitFor(t, "post-restart progress", func() bool { return processed.Load() == 2 })
	if got := read("stalls", "worker"); got != 0 {
		t.Fatalf("stalls = %d, want 0", got)
	}
}

// TestBackoffCapsAndJitters pins that repeated panics back off (the
// second restart happens measurably later than the first) without
// exceeding the cap.
func TestBackoffCapsAndJitters(t *testing.T) {
	m, read := testMetrics()
	s := supervise.New("test", supervise.Config{
		BackoffMin: 2 * time.Millisecond, BackoffMax: 20 * time.Millisecond,
		BackoffReset: time.Hour, // never reset during the test
		StallTimeout: -1,
	}, nil, m)
	defer s.Stop()

	var runs atomic.Uint64
	start := time.Now()
	s.Go("crashy", func(inst *supervise.Instance) {
		inst.Working()
		if runs.Add(1) <= 6 {
			panic("always")
		}
		inst.Idle()
		<-inst.Quit()
	})
	waitFor(t, "six panics", func() bool { return read("panics", "crashy") >= 6 })
	// Six restarts of min 2ms with doubling: delays sum to at least
	// 2+4+8+... halved by jitter — just require measurable elapsed time
	// (a tight relaunch loop would finish in microseconds).
	if elapsed := time.Since(start); elapsed < 5*time.Millisecond {
		t.Fatalf("six backoff restarts completed in %v — backoff not applied", elapsed)
	}
	waitFor(t, "healthy run", func() bool { return runs.Load() >= 7 })
}

// TestWatchdogSupersedesStall pins the stall path: a component stuck
// inside one work item past StallTimeout is superseded, the stall and
// restart are counted, and the replacement processes new work.
func TestWatchdogSupersedesStall(t *testing.T) {
	m, read := testMetrics()
	s := supervise.New("test", supervise.Config{
		BackoffMin:       time.Millisecond,
		StallTimeout:     30 * time.Millisecond,
		WatchdogInterval: 5 * time.Millisecond,
	}, nil, m)
	defer s.Stop()

	work := make(chan int, 16)
	var processed atomic.Uint64
	w := s.Go("sticky", func(inst *supervise.Instance) {
		for {
			select {
			case <-inst.Quit():
				return
			case <-work:
				inst.Working() // chaos stall fires here
				processed.Add(1)
				inst.Idle()
			}
		}
	})

	w.InjectStall(10 * time.Second) // far beyond StallTimeout; unblocks on supersession
	work <- 1
	waitFor(t, "stall detection", func() bool { return read("stalls", "sticky") == 1 })
	waitFor(t, "supersession restart", func() bool { return read("restarts", "sticky") >= 1 })
	work <- 2
	waitFor(t, "replacement progress", func() bool { return processed.Load() >= 2 })
	if got := read("panics", "sticky"); got != 0 {
		t.Fatalf("panics = %d, want 0", got)
	}
}

// TestStopRetiresWorkers pins teardown: Stop signals every instance and
// waits, Worker.Stop retires one component without restarting it, and a
// clean return is not treated as a crash.
func TestStopRetiresWorkers(t *testing.T) {
	m, read := testMetrics()
	s := supervise.New("test", supervise.Config{StallTimeout: -1}, nil, m)

	var aExited, bExited atomic.Bool
	wa := s.Go("a", func(inst *supervise.Instance) {
		<-inst.Quit()
		aExited.Store(true)
	})
	s.Go("b", func(inst *supervise.Instance) {
		<-inst.Quit()
		bExited.Store(true)
	})
	if got := len(s.Components()); got != 2 {
		t.Fatalf("components = %d, want 2", got)
	}
	wa.Stop()
	waitFor(t, "a exit", func() bool { return aExited.Load() })
	if s.Worker("a") != nil {
		t.Fatal("stopped worker still registered")
	}
	s.Stop() // waits for b
	if !bExited.Load() {
		t.Fatal("Stop returned before instance exit")
	}
	if got := read("restarts", "a") + read("restarts", "b"); got != 0 {
		t.Fatalf("clean exits counted %d restarts", got)
	}
	// Go after Stop is a no-op that must not leak a goroutine.
	w := s.Go("late", func(inst *supervise.Instance) { t.Error("late worker ran") })
	w.Stop()
	time.Sleep(10 * time.Millisecond)
}

// TestInjectPanicOneShot pins that an armed panic fires exactly once:
// the restarted instance keeps running.
func TestInjectPanicOneShot(t *testing.T) {
	m, read := testMetrics()
	s := supervise.New("test", supervise.Config{
		BackoffMin: time.Millisecond, StallTimeout: -1,
	}, nil, m)
	defer s.Stop()

	work := make(chan struct{}, 16)
	var processed atomic.Uint64
	w := s.Go("chaos", func(inst *supervise.Instance) {
		for {
			select {
			case <-inst.Quit():
				return
			case <-work:
				inst.Working()
				processed.Add(1)
				inst.Idle()
			}
		}
	})
	w.InjectPanic()
	work <- struct{}{}
	waitFor(t, "injected panic", func() bool { return read("panics", "chaos") == 1 })
	for i := 0; i < 5; i++ {
		work <- struct{}{}
	}
	waitFor(t, "five post-panic items", func() bool { return processed.Load() >= 5 })
	if got := read("panics", "chaos"); got != 1 {
		t.Fatalf("panic fired %d times, want 1", got)
	}
}
