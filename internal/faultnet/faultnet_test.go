package faultnet

import (
	"testing"
	"time"
)

// collect returns a deliver func appending payloads to a slice.
func collect(out *[]string) func(any) {
	return func(p any) { *out = append(*out, p.(string)) }
}

func TestPassThrough(t *testing.T) {
	c := New(Config{})
	var got []string
	for _, s := range []string{"a", "b", "c"} {
		c.Send(s, collect(&got))
	}
	if len(got) != 3 || got[0] != "a" || got[2] != "c" {
		t.Fatalf("got %v", got)
	}
	if c.Passed.Load() != 3 || c.Dropped.Load() != 0 {
		t.Fatalf("counters passed=%d dropped=%d", c.Passed.Load(), c.Dropped.Load())
	}
}

func TestDropAll(t *testing.T) {
	c := New(Config{DropProb: 1})
	var got []string
	for i := 0; i < 10; i++ {
		c.Send("x", collect(&got))
	}
	if len(got) != 0 || c.Dropped.Load() != 10 {
		t.Fatalf("delivered %d, dropped %d", len(got), c.Dropped.Load())
	}
}

func TestDuplicateAll(t *testing.T) {
	c := New(Config{DupProb: 1})
	var got []string
	c.Send("p", collect(&got))
	if len(got) != 2 || got[0] != "p" || got[1] != "p" {
		t.Fatalf("got %v", got)
	}
	if c.Duplicated.Load() != 1 {
		t.Fatalf("duplicated = %d", c.Duplicated.Load())
	}
}

func TestPartitionTogglesDelivery(t *testing.T) {
	c := New(Config{})
	var got []string
	c.Partition(true)
	if !c.Partitioned() {
		t.Fatal("not partitioned")
	}
	c.Send("lost", collect(&got))
	c.Partition(false)
	c.Send("kept", collect(&got))
	if len(got) != 1 || got[0] != "kept" {
		t.Fatalf("got %v", got)
	}
	if c.Dropped.Load() != 1 {
		t.Fatalf("dropped = %d", c.Dropped.Load())
	}
}

func TestReorderSwapsAdjacent(t *testing.T) {
	c := New(Config{ReorderProb: 1})
	var got []string
	for _, s := range []string{"1", "2", "3", "4"} {
		c.Send(s, collect(&got))
	}
	// Every odd packet is held and released behind its successor.
	if len(got) != 4 || got[0] != "2" || got[1] != "1" || got[2] != "4" || got[3] != "3" {
		t.Fatalf("got %v, want [2 1 4 3]", got)
	}
	if c.Reordered.Load() != 2 {
		t.Fatalf("reordered = %d", c.Reordered.Load())
	}
}

func TestFlushReleasesHeld(t *testing.T) {
	c := New(Config{ReorderProb: 1})
	var got []string
	c.Send("only", collect(&got))
	if len(got) != 0 {
		t.Fatal("held packet delivered early")
	}
	c.Flush()
	if len(got) != 1 || got[0] != "only" {
		t.Fatalf("got %v", got)
	}
	c.Flush() // idempotent
	if len(got) != 1 {
		t.Fatal("double flush duplicated the packet")
	}
}

func TestDelayUsesScheduler(t *testing.T) {
	var fired []struct {
		d  time.Duration
		fn func()
	}
	sched := func(d time.Duration, fn func()) {
		fired = append(fired, struct {
			d  time.Duration
			fn func()
		}{d, fn})
	}
	c := NewWithScheduler(Config{Delay: 5 * time.Millisecond}, sched)
	var got []string
	c.Send("later", collect(&got))
	if len(got) != 0 {
		t.Fatal("delayed packet delivered synchronously")
	}
	if len(fired) != 1 || fired[0].d != 5*time.Millisecond {
		t.Fatalf("scheduler calls: %v", len(fired))
	}
	fired[0].fn()
	if len(got) != 1 || got[0] != "later" {
		t.Fatalf("got %v", got)
	}
	if c.Delayed.Load() != 1 {
		t.Fatalf("delayed = %d", c.Delayed.Load())
	}
}

func TestSeedDeterminism(t *testing.T) {
	run := func() []bool {
		c := New(Config{DropProb: 0.5, Seed: 99})
		var pattern []bool
		for i := 0; i < 64; i++ {
			delivered := false
			c.Send(i, func(any) { delivered = true })
			pattern = append(pattern, delivered)
		}
		return pattern
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("pattern diverged at %d", i)
		}
	}
}

func TestSetConfigSwapsFaults(t *testing.T) {
	c := New(Config{DropProb: 1})
	var got []string
	c.Send("lost", collect(&got))
	c.SetConfig(Config{})
	c.Send("kept", collect(&got))
	if len(got) != 1 || got[0] != "kept" {
		t.Fatalf("got %v", got)
	}
}

func TestCorruptFlipsLastByte(t *testing.T) {
	c := New(Config{CorruptProb: 1})
	var got [][]byte
	orig := []byte{1, 2, 3}
	c.Send(orig, func(p any) { got = append(got, p.([]byte)) })
	if len(got) != 1 || got[0][2] != 3^0xff {
		t.Fatalf("got %v", got)
	}
	// The caller's buffer is untouched: corruption happens in a copy.
	if orig[2] != 3 {
		t.Fatalf("original mutated: %v", orig)
	}
	if c.Corrupted.Load() != 1 {
		t.Fatalf("corrupted = %d", c.Corrupted.Load())
	}
	// Non-[]byte packets pass through unmodified.
	var strs []string
	c.Send("s", func(p any) { strs = append(strs, p.(string)) })
	if len(strs) != 1 || strs[0] != "s" || c.Corrupted.Load() != 1 {
		t.Fatalf("string packet: %v corrupted=%d", strs, c.Corrupted.Load())
	}
}
