// Package faultnet injects configurable network faults — loss,
// duplication, reordering, added delay/jitter, and hard partition — into
// a packet path. A Conduit wraps the point where a datagram leaves one
// component for another and decides, per packet, whether it passes,
// duplicates, waits, or dies.
//
// The same Conduit plugs into both halves of the system: the real-socket
// overlay (overlay.Node.SetLinkFault, real time via time.AfterFunc) and
// the simulated physical wire (vmm.Host.SetFault, virtual time via the
// engine's scheduler). Chaos scenarios therefore run identically in
// integration tests against real sockets and in deterministic
// simulations.
package faultnet

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"time"
)

// Scheduler defers fn by delay. The default (real-time) scheduler is
// time.AfterFunc; simulations pass the event engine's Schedule.
type Scheduler func(delay time.Duration, fn func())

// Config sets the fault mix. Zero values disable each fault, so the zero
// Config is a transparent pass-through (useful as a partition-only
// switch).
type Config struct {
	// Seed makes the fault pattern reproducible. Zero means seed 1.
	Seed int64
	// DropProb is the independent per-packet loss probability [0,1].
	DropProb float64
	// DupProb is the probability a packet is delivered twice.
	DupProb float64
	// ReorderProb is the probability a packet is held back and released
	// immediately after the next packet passes (adjacent swap).
	ReorderProb float64
	// Delay is a fixed added latency per packet; Jitter adds a uniform
	// random component on top. Either being nonzero defers delivery
	// through the scheduler.
	Delay  time.Duration
	Jitter time.Duration
	// CorruptProb is the probability a []byte packet is delivered with
	// its last byte flipped — an on-path tamperer / bit-rot model. The
	// packet is corrupted in a private copy; non-[]byte packets pass
	// untouched. Sealed links must reject every corrupted datagram.
	CorruptProb float64
}

// heldPacket is a packet parked by the reordering fault.
type heldPacket struct {
	pkt     any
	deliver func(any)
}

// Conduit applies a Config's faults to packets. Safe for concurrent use.
type Conduit struct {
	mu          sync.Mutex
	cfg         Config
	rng         *rand.Rand
	partitioned bool
	held        *heldPacket
	sched       Scheduler

	// Counters, readable at any time.
	Passed     atomic.Uint64 // packets handed to deliver (incl. delayed)
	Dropped    atomic.Uint64 // lost to DropProb or partition
	Duplicated atomic.Uint64 // extra copies emitted
	Reordered  atomic.Uint64 // packets held for the adjacent swap
	Delayed    atomic.Uint64 // deliveries deferred through the scheduler
	Corrupted  atomic.Uint64 // packets delivered with a flipped byte
}

// New returns a Conduit running on real time (time.AfterFunc).
func New(cfg Config) *Conduit {
	return NewWithScheduler(cfg, func(d time.Duration, fn func()) { time.AfterFunc(d, fn) })
}

// NewWithScheduler returns a Conduit deferring delayed deliveries through
// sched — pass a simulation engine's Schedule to keep faults in virtual
// time.
func NewWithScheduler(cfg Config, sched Scheduler) *Conduit {
	seed := cfg.Seed
	if seed == 0 {
		seed = 1
	}
	return &Conduit{cfg: cfg, rng: rand.New(rand.NewSource(seed)), sched: sched}
}

// SetConfig swaps the fault mix (the RNG stream continues).
func (c *Conduit) SetConfig(cfg Config) {
	c.mu.Lock()
	c.cfg = cfg
	c.mu.Unlock()
}

// Partition hard-partitions the conduit: every packet is dropped until
// the partition heals. A packet already held for reordering stays held.
func (c *Conduit) Partition(on bool) {
	c.mu.Lock()
	c.partitioned = on
	c.mu.Unlock()
}

// Partitioned reports whether the conduit is currently partitioned.
func (c *Conduit) Partitioned() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.partitioned
}

// roll draws one Bernoulli trial. Caller holds c.mu.
func (c *Conduit) roll(p float64) bool {
	if p <= 0 {
		return false
	}
	return c.rng.Float64() < p
}

// Send passes pkt through the fault mix, invoking deliver zero, one, or
// two times, now or later. deliver may run on a timer goroutine when
// delay/jitter is configured.
func (c *Conduit) Send(pkt any, deliver func(any)) {
	c.mu.Lock()
	if c.partitioned || c.roll(c.cfg.DropProb) {
		c.mu.Unlock()
		c.Dropped.Add(1)
		return
	}
	if c.roll(c.cfg.CorruptProb) {
		if b, ok := pkt.([]byte); ok && len(b) > 0 {
			tampered := append([]byte(nil), b...)
			tampered[len(tampered)-1] ^= 0xff
			pkt = tampered
			c.Corrupted.Add(1)
		}
	}
	dup := c.roll(c.cfg.DupProb)
	var release *heldPacket
	if c.held != nil {
		release = c.held
		c.held = nil
	} else if c.roll(c.cfg.ReorderProb) {
		c.held = &heldPacket{pkt: pkt, deliver: deliver}
		c.Reordered.Add(1)
		c.mu.Unlock()
		return
	}
	c.mu.Unlock()
	c.emit(pkt, deliver)
	if dup {
		c.Duplicated.Add(1)
		c.emit(pkt, deliver)
	}
	if release != nil {
		c.emit(release.pkt, release.deliver)
	}
}

// Flush releases a packet held by the reordering fault, if any.
func (c *Conduit) Flush() {
	c.mu.Lock()
	h := c.held
	c.held = nil
	c.mu.Unlock()
	if h != nil {
		c.emit(h.pkt, h.deliver)
	}
}

// emit performs one delivery, deferring it when delay/jitter applies.
func (c *Conduit) emit(pkt any, deliver func(any)) {
	c.mu.Lock()
	d := c.cfg.Delay
	if c.cfg.Jitter > 0 {
		d += time.Duration(c.rng.Float64() * float64(c.cfg.Jitter))
	}
	sched := c.sched
	c.mu.Unlock()
	c.Passed.Add(1)
	if d <= 0 {
		deliver(pkt)
		return
	}
	c.Delayed.Add(1)
	sched(d, func() { deliver(pkt) })
}
