package phys

import (
	"testing"
	"time"
)

func TestTxTime(t *testing.T) {
	if got := Eth1G.TxTime(1500); got != 12*time.Microsecond {
		t.Fatalf("1G 1500B = %v, want 12µs", got)
	}
	if got := Eth10G.TxTime(9000); got != 7200*time.Nanosecond {
		t.Fatalf("10G 9000B = %v, want 7.2µs", got)
	}
	zero := Device{}
	if zero.TxTime(100) != 0 {
		t.Fatal("zero-rate device should have zero tx time")
	}
}

func TestUnitConversions(t *testing.T) {
	if GbpsToBytes(10) != 1250e6 {
		t.Fatalf("GbpsToBytes(10) = %v", GbpsToBytes(10))
	}
	if BytesToGbps(1250e6) != 10 {
		t.Fatalf("BytesToGbps = %v", BytesToGbps(1250e6))
	}
	if BytesToMBps(71e6) != 71 {
		t.Fatalf("BytesToMBps = %v", BytesToMBps(71e6))
	}
}

func TestDefaultModelSanity(t *testing.T) {
	m := DefaultModel()
	if m.VMExitEntry <= 0 || m.InterruptInject <= 0 || m.GuestIRQPath <= 0 {
		t.Fatal("virtualization costs must be positive")
	}
	if m.MemBusBytesPerSec >= m.CopyBytesPerSec {
		t.Fatal("aggregate bus budget should be below single-stream copy rate")
	}
	// VNET/U's per-packet cost must dominate VNET/P's (the paper's core
	// motivation): user/kernel crossings vs in-VMM dispatch.
	vnetp := m.DispatchPerPacket + m.EncapPerPacket + m.BridgePerPacket
	if m.UserKernelPerPacket < 4*vnetp {
		t.Fatalf("VNET/U per-packet %v should far exceed VNET/P %v", m.UserKernelPerPacket, vnetp)
	}
}

func TestPresetOrdering(t *testing.T) {
	// Interconnect bandwidth ordering: 1G < KittenIB < 10G < IPoIB < Gemini.
	seq := []Device{Eth1G, KittenIB, Eth10G, IPoIB, Gemini}
	for i := 1; i < len(seq); i++ {
		if seq[i].BytesPerSec <= seq[i-1].BytesPerSec {
			t.Fatalf("%s (%.0f) should be faster than %s (%.0f)",
				seq[i].Name, seq[i].BytesPerSec, seq[i-1].Name, seq[i-1].BytesPerSec)
		}
	}
	if Eth10GStd.MTU != 1500 || Eth10G.MTU != 9000 {
		t.Fatal("10G MTU presets wrong")
	}
}
