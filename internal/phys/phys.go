// Package phys holds the physical-substrate parameters of the performance
// model: per-operation costs of the virtualization datapath and presets for
// the interconnects the paper evaluates (1G Ethernet, 10G Ethernet,
// InfiniBand via IPoIB, Cray Gemini via IPoG).
//
// The constants are calibrated so that the NATIVE baselines land near the
// paper's testbed numbers; every VNET/P-vs-native ratio is then an output
// of the simulation, not an input. See DESIGN.md ("Calibration constants")
// for the derivations.
package phys

import "time"

// CostModel gathers the per-operation costs of the virtualization and host
// datapath (paper Sect. 4.7 enumerates these steps).
type CostModel struct {
	// VMExitEntry is the cost of one VM exit plus the matching entry
	// (world switch, state save/restore).
	VMExitEntry time.Duration
	// InterruptInject is the VMM-side cost of injecting a virtual
	// interrupt into a guest.
	InterruptInject time.Duration
	// IPI is the cost of a cross-core inter-processor interrupt (used by a
	// dispatcher thread to force a remote core's VM to exit).
	IPI time.Duration
	// GuestIRQPath is the guest-side cost of taking a virtual interrupt:
	// with no selective interrupt exiting (the hardware limitation the
	// paper calls out), injection triggers additional exits for vAPIC
	// accesses and EOI. Charged per injected interrupt.
	GuestIRQPath time.Duration
	// GuestPerPacket is the guest network stack + virtio driver cost per
	// packet (either direction).
	GuestPerPacket time.Duration
	// DispatchPerPacket is the VNET/P packet dispatcher cost per packet
	// when the routing cache hits.
	DispatchPerPacket time.Duration
	// RouteMissPerEntry is the added linear-scan cost per routing-table
	// entry on a routing-cache miss.
	RouteMissPerEntry time.Duration
	// EncapPerPacket is the VNET/P bridge UDP encapsulation (or
	// de-encapsulation) cost per packet.
	EncapPerPacket time.Duration
	// BridgePerPacket is the bridge bookkeeping cost per packet besides
	// encapsulation (demux, socket handoff).
	BridgePerPacket time.Duration
	// HostStackPerPacket is the host kernel IP/UDP stack cost per packet
	// (each of send and receive).
	HostStackPerPacket time.Duration
	// NICInterrupt is the host-side NIC interrupt handling cost per
	// receive batch.
	NICInterrupt time.Duration
	// CopyBytesPerSec is the single-stream memory copy rate, used to
	// charge the one in-VMM copy (TXQ -> bridge buffer) and the RXQ copy.
	CopyBytesPerSec float64
	// MemBusBytesPerSec is the aggregate memory-bus budget shared by every
	// copy and DMA crossing on a host. This is the mechanism behind the
	// paper's "we become memory copy bandwidth limited" observation.
	MemBusBytesPerSec float64
	// NoiseMean and NoiseSpike model host OS scheduling noise: every
	// host-side packet handling step suffers a small mean perturbation,
	// and occasionally (NoiseSpikeProb) a large one (timer ticks, kernel
	// housekeeping). A lightweight kernel like Kitten runs with all three
	// at zero — the low-noise property Sect. 6.3 leverages.
	NoiseMean      time.Duration
	NoiseSpike     time.Duration
	NoiseSpikeProb float64
	// UserKernelPerPacket is VNET/U's per-packet penalty for the
	// kernel/user space transitions its datapath needs.
	UserKernelPerPacket time.Duration
	// DaemonWakeup is VNET/U's user-level daemon scheduling delay charged
	// once per quiet-path packet (latency, not throughput).
	DaemonWakeup time.Duration
}

// DefaultModel is the calibrated cost model used by every experiment.
func DefaultModel() *CostModel {
	return &CostModel{
		VMExitEntry:         3 * time.Microsecond,
		InterruptInject:     3 * time.Microsecond,
		IPI:                 1500 * time.Nanosecond,
		GuestIRQPath:        20 * time.Microsecond,
		GuestPerPacket:      1 * time.Microsecond,
		DispatchPerPacket:   500 * time.Nanosecond,
		RouteMissPerEntry:   50 * time.Nanosecond,
		EncapPerPacket:      250 * time.Nanosecond,
		BridgePerPacket:     250 * time.Nanosecond,
		HostStackPerPacket:  800 * time.Nanosecond,
		NICInterrupt:        5 * time.Microsecond,
		CopyBytesPerSec:     5e9,
		MemBusBytesPerSec:   2.8e9,
		UserKernelPerPacket: 18 * time.Microsecond,
		DaemonWakeup:        195 * time.Microsecond,
	}
}

// ModelGSXEra approximates the dual 2.0 GHz Xeon machines of the original
// VNET/U measurement (21.5 MB/s, +1 ms — paper Sect. 3): roughly 3x
// slower per-packet software paths and memory than the 2012 testbed.
func ModelGSXEra() *CostModel {
	m := DefaultModel()
	m.VMExitEntry *= 3
	m.InterruptInject *= 3
	m.GuestIRQPath *= 3
	m.GuestPerPacket *= 3
	m.HostStackPerPacket *= 3
	m.UserKernelPerPacket *= 3
	m.DaemonWakeup = 240 * time.Microsecond
	m.CopyBytesPerSec /= 3
	m.MemBusBytesPerSec /= 3
	return m
}

// ModelLinuxNoisy returns the default model with Linux-host scheduling
// noise enabled (used by the jitter experiment; the headline results use
// the noise-free model so they stay deterministic point estimates).
func ModelLinuxNoisy() *CostModel {
	m := DefaultModel()
	m.NoiseMean = 1 * time.Microsecond
	m.NoiseSpike = 60 * time.Microsecond
	m.NoiseSpikeProb = 0.02
	return m
}

// ModelKitten returns the lightweight-kernel model: identical datapath
// costs, zero host noise (Sect. 6.3).
func ModelKitten() *CostModel {
	return DefaultModel()
}

// ModelXK6 is the cost model for the Cray XK6 Gemini testbed (Sect. 6.2):
// Interlagos nodes with substantially more memory bandwidth than the Xeon
// X3430 microbenchmark boxes, which is what lets VNET/P reach 13 Gbps
// there.
func ModelXK6() *CostModel {
	m := DefaultModel()
	m.CopyBytesPerSec = 10e9
	m.MemBusBytesPerSec = 6e9
	return m
}

// Device describes a physical interconnect as seen by the host: an
// IP-capable NIC with a serialization rate, a base one-way latency (NIC +
// cable + switch), an MTU, and an extra per-packet host cost for devices
// whose IP personality is itself a software layer (IPoIB, IPoG).
type Device struct {
	Name string
	// BytesPerSec is the IP-usable serialization rate.
	BytesPerSec float64
	// BaseLatency is the one-way latency from last byte serialized to
	// receive interrupt at the peer.
	BaseLatency time.Duration
	// MTU is the largest physical packet the device carries.
	MTU int
	// ExtraPerPacket is added host-side per-packet cost for software IP
	// personalities (IPoIB/IPoG translation).
	ExtraPerPacket time.Duration
}

// Interconnect presets per the paper's testbeds (Sect. 5.1, 6.1, 6.2).
var (
	// Eth1G: Broadcom NetXtreme II 1000BASE-T, MTU 1500.
	Eth1G = Device{Name: "1G", BytesPerSec: 125e6, BaseLatency: 44 * time.Microsecond, MTU: 1500}
	// Eth10G: NetEffect NE020 10GBASE-SR, MTU up to 9000.
	Eth10G = Device{Name: "10G", BytesPerSec: 1250e6, BaseLatency: 11 * time.Microsecond, MTU: 9000}
	// Eth10GStd is the 10G device run with a standard 1500-byte host MTU.
	Eth10GStd = Device{Name: "10G-1500", BytesPerSec: 1250e6, BaseLatency: 11 * time.Microsecond, MTU: 1500}
	// IPoIB: Mellanox QDR InfiniBand carrying IP; the IP personality gets
	// roughly a third of the fabric's bandwidth and adds per-packet cost.
	IPoIB = Device{Name: "IPoIB", BytesPerSec: 1625e6, BaseLatency: 30 * time.Microsecond, MTU: 65520, ExtraPerPacket: 2 * time.Microsecond}
	// Gemini: Cray XK6 Gemini via the IPoG virtual Ethernet layer.
	Gemini = Device{Name: "IPoG", BytesPerSec: 2500e6, BaseLatency: 14 * time.Microsecond, MTU: 9000, ExtraPerPacket: 2 * time.Microsecond}
	// KittenIB: Mellanox MT26428 through the Kitten bridge VM, Ethernet
	// frames mapped directly to InfiniBand frames (Sect. 6.3). Native
	// comparator is IPoIB in reliable-connected mode at 6.5 Gbps.
	KittenIB = Device{Name: "Kitten-IB", BytesPerSec: 812e6, BaseLatency: 25 * time.Microsecond, MTU: 9000, ExtraPerPacket: 2 * time.Microsecond}
)

// TxTime reports the serialization time of n bytes on the device.
func (d Device) TxTime(n int) time.Duration {
	if d.BytesPerSec <= 0 {
		return 0
	}
	return time.Duration(float64(n) / d.BytesPerSec * 1e9)
}

// GbpsToBytes converts gigabits/second to bytes/second.
func GbpsToBytes(g float64) float64 { return g * 1e9 / 8 }

// BytesToGbps converts bytes/second to gigabits/second.
func BytesToGbps(b float64) float64 { return b * 8 / 1e9 }

// BytesToMBps converts bytes/second to the MB/s (1e6) unit the paper uses.
func BytesToMBps(b float64) float64 { return b / 1e6 }
