package core_test

import (
	"testing"
	"time"

	"vnetp/internal/core"
	"vnetp/internal/ethernet"
	"vnetp/internal/lab"
	"vnetp/internal/phys"
	"vnetp/internal/sim"
	"vnetp/internal/virtio"
)

func guestParams(mode core.Mode) core.Params {
	p := core.DefaultParams()
	p.Mode = mode
	return p
}

// sendFrame pushes a frame into a node's TX ring from a guest process.
func sendFrame(c *lab.Cluster, from, to int, payload int) *ethernet.Frame {
	f := &ethernet.Frame{
		Dst:  c.Nodes[to].MAC(),
		Src:  c.Nodes[from].MAC(),
		Type: ethernet.TypeTest,
		Pad:  payload,
	}
	c.Nodes[from].Iface.TrySend(f)
	return f
}

func TestEndToEndDelivery(t *testing.T) {
	eng := sim.New()
	c := lab.NewPair(eng, phys.Eth10G, guestParams(core.GuestDriven))
	var got *ethernet.Frame
	var at sim.Time
	c.Nodes[1].Iface.SetRecv(func() {
		if f, ok := c.Nodes[1].Iface.GuestRecv(); ok {
			got, at = f, eng.Now()
		}
		c.Nodes[1].Iface.RxDone()
	})
	want := sendFrame(c, 0, 1, 1000)
	eng.Run()
	if got != want {
		t.Fatalf("frame not delivered: got %v", got)
	}
	if at == 0 {
		t.Fatal("no arrival time")
	}
	// One-way latency sanity: must exceed pure wire time but stay far
	// below a VNET/U-style millisecond path.
	oneWay := at.Duration()
	if oneWay < c.Dev.BaseLatency || oneWay > 200*time.Microsecond {
		t.Fatalf("one-way latency %v out of range", oneWay)
	}
	if c.Nodes[0].Core.ToBridge != 1 || c.Nodes[1].Core.LocalDelivered != 1 {
		t.Fatalf("path counters: toBridge=%d delivered=%d",
			c.Nodes[0].Core.ToBridge, c.Nodes[1].Core.LocalDelivered)
	}
}

func TestGuestDrivenChargesExits(t *testing.T) {
	eng := sim.New()
	c := lab.NewPair(eng, phys.Eth10G, guestParams(core.GuestDriven))
	c.Nodes[1].Iface.SetRecv(func() {
		for {
			if _, ok := c.Nodes[1].Iface.GuestRecv(); !ok {
				break
			}
		}
		c.Nodes[1].Iface.RxDone()
	})
	for i := 0; i < 10; i++ {
		sendFrame(c, 0, 1, 500)
	}
	eng.Run()
	if c.Nodes[0].Iface.Kicks == 0 || c.Nodes[0].VM.Exits == 0 {
		t.Fatalf("guest-driven mode produced no kicks/exits: kicks=%d exits=%d",
			c.Nodes[0].Iface.Kicks, c.Nodes[0].VM.Exits)
	}
	// Back-to-back pushes may coalesce under an active drain, but every
	// drain chain in guest-driven mode starts with a kick exit.
	if c.Nodes[0].Iface.Kicks+c.Nodes[0].Iface.KicksAvoided != 10 {
		t.Fatalf("kicks %d + avoided %d != 10 sends",
			c.Nodes[0].Iface.Kicks, c.Nodes[0].Iface.KicksAvoided)
	}
}

func TestVMMDrivenAvoidsExits(t *testing.T) {
	eng := sim.New()
	c := lab.NewPair(eng, phys.Eth10G, guestParams(core.VMMDriven))
	received := 0
	c.Nodes[1].Iface.SetRecv(func() {
		for {
			if _, ok := c.Nodes[1].Iface.GuestRecv(); !ok {
				break
			}
			received++
		}
		c.Nodes[1].Iface.RxDone()
	})
	for i := 0; i < 10; i++ {
		sendFrame(c, 0, 1, 500)
	}
	eng.Run()
	if received != 10 {
		t.Fatalf("received %d/10", received)
	}
	if c.Nodes[0].Iface.Kicks != 0 {
		t.Fatalf("VMM-driven mode charged %d kicks", c.Nodes[0].Iface.Kicks)
	}
	if c.Nodes[0].Iface.KicksAvoided != 10 {
		t.Fatalf("kicks avoided = %d, want 10", c.Nodes[0].Iface.KicksAvoided)
	}
}

func TestLocalVMToVMDelivery(t *testing.T) {
	// Two interfaces on one host: frames route VM-to-VM without touching
	// the bridge.
	eng := sim.New()
	c := lab.NewPair(eng, phys.Eth10G, guestParams(core.GuestDriven))
	n0 := c.Nodes[0]
	nic2 := virtio.NewNIC(ethernet.LocalMAC(50), 1500) // second NIC on host 0
	second := n0.Core.Register("nic1", n0.VM, nic2)
	n0.Core.Table.AddRoute(core.Route{
		DstMAC: nic2.MAC, DstQual: core.QualExact, SrcQual: core.QualAny,
		Dest: core.Destination{Type: core.DestInterface, ID: "nic1"},
	})
	var got *ethernet.Frame
	second.SetRecv(func() {
		if f, ok := second.GuestRecv(); ok {
			got = f
		}
		second.RxDone()
	})
	f := &ethernet.Frame{Dst: nic2.MAC, Src: n0.MAC(), Type: ethernet.TypeTest, Pad: 100}
	n0.Iface.TrySend(f)
	eng.Run()
	if got != f {
		t.Fatal("local delivery failed")
	}
	if n0.Bridge.EncapSent != 0 {
		t.Fatal("local frame went through the bridge")
	}
	if n0.Core.LocalDelivered != 1 {
		t.Fatalf("LocalDelivered = %d", n0.Core.LocalDelivered)
	}
}

func TestFragmentationOverSmallMTU(t *testing.T) {
	// Guest MTU far above physical MTU: bridge must fragment and
	// reassemble transparently.
	eng := sim.New()
	c := lab.NewCluster(eng, lab.Config{
		Dev: phys.Eth10GStd, N: 2, Params: guestParams(core.GuestDriven),
		GuestMTU: 16000,
	})
	var got *ethernet.Frame
	c.Nodes[1].Iface.SetRecv(func() {
		if f, ok := c.Nodes[1].Iface.GuestRecv(); ok {
			got = f
		}
		c.Nodes[1].Iface.RxDone()
	})
	f := sendFrame(c, 0, 1, 15000)
	eng.Run()
	if got != f {
		t.Fatal("fragmented frame not delivered")
	}
	if c.Nodes[0].Bridge.FragmentsSent < 11 {
		t.Fatalf("fragments sent = %d, want >= 11 for 15KB over 1500 MTU",
			c.Nodes[0].Bridge.FragmentsSent)
	}
	if c.Nodes[1].Bridge.Reassembled != 1 {
		t.Fatalf("reassembled = %d", c.Nodes[1].Bridge.Reassembled)
	}
}

func TestNoFragmentationAtAdjustedMTU(t *testing.T) {
	// The default cluster guest MTU is chosen so encapsulated packets fit
	// the physical MTU exactly (the paper's jumbo-frame adjustment).
	eng := sim.New()
	c := lab.NewPair(eng, phys.Eth10G, guestParams(core.GuestDriven))
	c.Nodes[1].Iface.SetRecv(func() {
		c.Nodes[1].Iface.GuestRecv()
		c.Nodes[1].Iface.RxDone()
	})
	sendFrame(c, 0, 1, c.Nodes[0].NIC.MTU-100)
	eng.Run()
	if c.Nodes[0].Bridge.FragmentsSent != 1 {
		t.Fatalf("fragments = %d, want 1 (no fragmentation)", c.Nodes[0].Bridge.FragmentsSent)
	}
}

func TestNoRouteDropped(t *testing.T) {
	eng := sim.New()
	c := lab.NewPair(eng, phys.Eth10G, guestParams(core.GuestDriven))
	f := &ethernet.Frame{Dst: ethernet.LocalMAC(99), Src: c.Nodes[0].MAC(), Type: ethernet.TypeTest}
	c.Nodes[0].Iface.TrySend(f)
	eng.Run()
	if c.Nodes[0].Core.NoRoute != 1 {
		t.Fatalf("NoRoute = %d, want 1", c.Nodes[0].Core.NoRoute)
	}
}

func TestRXQFullIPIEscalation(t *testing.T) {
	// A guest that never drains: the RX ring fills, the core parks frames
	// and forces an IPI exit; nothing is lost until the parking bound.
	eng := sim.New()
	c := lab.NewPair(eng, phys.Eth10G, guestParams(core.VMMDriven))
	drained := 0
	drainNow := false
	drain := func() {
		for {
			if _, ok := c.Nodes[1].Iface.GuestRecv(); !ok {
				break
			}
			drained++
		}
		c.Nodes[1].Iface.RxDone()
	}
	c.Nodes[1].Iface.SetRecv(func() {
		if drainNow {
			drain() // guest ignores interrupts until released
		}
	})
	const n = 300 // exceeds the 256-slot RXQ
	eng.Go("sender", func(p *sim.Proc) {
		for i := 0; i < n; i++ {
			for !c.Nodes[0].Iface.TrySend(&ethernet.Frame{
				Dst: c.Nodes[1].MAC(), Src: c.Nodes[0].MAC(), Type: ethernet.TypeTest, Pad: 100,
			}) {
				c.Nodes[0].Iface.WaitSendSpace(p)
			}
			p.Sleep(time.Microsecond)
		}
		// Let everything land, then release the guest.
		p.Sleep(10 * time.Millisecond)
		drainNow = true
		drain()
	})
	eng.Run()
	eng.Close()
	if c.Nodes[1].VM.IPIs == 0 {
		t.Fatal("RXQ overflow never escalated to an IPI")
	}
	if drained != n {
		t.Fatalf("drained %d/%d after release", drained, n)
	}
}

func TestAdaptiveModeSwitches(t *testing.T) {
	eng := sim.New()
	p := core.DefaultParams() // adaptive, alpha_u = 1e4 pkt/s, omega = 5ms
	c := lab.NewPair(eng, phys.Eth10G, p)
	c.Nodes[1].Iface.SetRecv(func() {
		for {
			if _, ok := c.Nodes[1].Iface.GuestRecv(); !ok {
				break
			}
		}
		c.Nodes[1].Iface.RxDone()
	})
	ifc := c.Nodes[0].Iface
	if ifc.Mode() != core.GuestDriven {
		t.Fatal("adaptive must start guest-driven")
	}
	eng.Go("burst", func(pr *sim.Proc) {
		// ~100k pkt/s for 20ms: far above alpha_u.
		for i := 0; i < 2000; i++ {
			for !ifc.TrySend(&ethernet.Frame{Dst: c.Nodes[1].MAC(), Src: c.Nodes[0].MAC(), Type: ethernet.TypeTest, Pad: 64}) {
				ifc.WaitSendSpace(pr)
			}
			pr.Sleep(10 * time.Microsecond)
		}
	})
	eng.RunFor(21 * time.Millisecond)
	if ifc.Mode() != core.VMMDriven {
		t.Fatalf("mode = %v after burst, want VMM-driven", ifc.Mode())
	}
	// Go quiet: rate falls below alpha_l, mode must revert.
	eng.RunFor(50 * time.Millisecond)
	if ifc.Mode() != core.GuestDriven {
		t.Fatalf("mode = %v after quiet period, want guest-driven", ifc.Mode())
	}
	if ifc.ModeSwitches < 2 {
		t.Fatalf("mode switches = %d, want >= 2", ifc.ModeSwitches)
	}
	eng.Close()
}

func TestAdaptiveHysteresisNoFlapping(t *testing.T) {
	// A rate between alpha_l and alpha_u must not cause switching.
	eng := sim.New()
	p := core.DefaultParams()
	c := lab.NewPair(eng, phys.Eth10G, p)
	c.Nodes[1].Iface.SetRecv(func() {
		for {
			if _, ok := c.Nodes[1].Iface.GuestRecv(); !ok {
				break
			}
		}
		c.Nodes[1].Iface.RxDone()
	})
	ifc := c.Nodes[0].Iface
	eng.Go("steady", func(pr *sim.Proc) {
		// ~5000 pkt/s: between the bounds.
		for i := 0; i < 500; i++ {
			ifc.TrySend(&ethernet.Frame{Dst: c.Nodes[1].MAC(), Src: c.Nodes[0].MAC(), Type: ethernet.TypeTest, Pad: 64})
			pr.Sleep(200 * time.Microsecond)
		}
	})
	eng.RunFor(100 * time.Millisecond)
	if ifc.ModeSwitches != 0 {
		t.Fatalf("mode flapped %d times at mid-band rate", ifc.ModeSwitches)
	}
	eng.Close()
}

func TestUnregisterRemovesRoutes(t *testing.T) {
	eng := sim.New()
	c := lab.NewPair(eng, phys.Eth10G, guestParams(core.GuestDriven))
	before := c.Nodes[0].Core.Table.Len()
	c.Nodes[0].Core.Unregister(lab.IfaceName)
	if c.Nodes[0].Core.Table.Len() != before-1 {
		t.Fatalf("routes %d -> %d, want one fewer", before, c.Nodes[0].Core.Table.Len())
	}
	if c.Nodes[0].Core.Iface(lab.IfaceName) != nil {
		t.Fatal("iface still registered")
	}
}
