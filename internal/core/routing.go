// Package core implements the VNET/P core, the paper's primary
// contribution (Sect. 4.3): MAC-address routing of raw Ethernet frames
// between virtual NICs and overlay links, performed by packet dispatchers
// that run in guest-driven, VMM-driven, or adaptive mode.
//
// The routing logic in this file is pure (no simulation dependencies) and
// is shared by the simulated datapath (vnetp.go) and the real-socket
// overlay (internal/overlay).
package core

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"vnetp/internal/ethernet"
)

// Qualifier restricts how a route's MAC field matches, following the
// VNET/U configuration language ("any" and "not" qualifiers).
type Qualifier int

const (
	// QualExact matches the exact MAC address.
	QualExact Qualifier = iota
	// QualAny matches every MAC address.
	QualAny
	// QualNot matches every MAC address except the given one.
	QualNot
)

func (q Qualifier) String() string {
	switch q {
	case QualExact:
		return "exact"
	case QualAny:
		return "any"
	case QualNot:
		return "not"
	default:
		return "unknown"
	}
}

// DestType says whether a route's destination is a local virtual NIC or an
// overlay link to a remote VNET node.
type DestType int

const (
	// DestInterface delivers to a local virtual NIC.
	DestInterface DestType = iota
	// DestLink forwards through the bridge to a remote VNET/P core, a
	// VNET/U daemon, or the local physical network.
	DestLink
)

func (d DestType) String() string {
	if d == DestInterface {
		return "interface"
	}
	return "link"
}

// Destination is where a matched packet goes.
type Destination struct {
	Type DestType
	// ID names the interface or link.
	ID string
}

func (d Destination) String() string { return fmt.Sprintf("%s:%s", d.Type, d.ID) }

// Route is one routing-table entry: a (source, destination) MAC pattern
// mapping to a destination, with an optional backup destination used
// while the primary is marked failed.
type Route struct {
	DstMAC  ethernet.MAC
	DstQual Qualifier
	SrcMAC  ethernet.MAC
	SrcQual Qualifier
	Dest    Destination

	// Backup, when HasBackup is set, is substituted for Dest while Dest
	// is marked failed (Table.FailDest) — the failover path the link
	// health monitor flips traffic onto when a link goes Down.
	Backup    Destination
	HasBackup bool

	// Tenant scopes the route to one tenant's table (0 = the default
	// tenant). The field rides on Route so the control plane can round-
	// trip tenant-scoped routes through LIST/DEL; lookup itself happens
	// in the per-tenant Table the route was installed into.
	Tenant uint32
}

// matches reports whether the route matches the packet addresses, and the
// specificity score used to pick the best match (exact beats not beats
// any; destination specificity beats source specificity).
func (r *Route) matches(src, dst ethernet.MAC) (bool, int) {
	score := 0
	switch r.DstQual {
	case QualExact:
		if r.DstMAC != dst {
			return false, 0
		}
		score += 8
	case QualNot:
		if r.DstMAC == dst {
			return false, 0
		}
		score += 4
	case QualAny:
	}
	switch r.SrcQual {
	case QualExact:
		if r.SrcMAC != src {
			return false, 0
		}
		score += 2
	case QualNot:
		if r.SrcMAC == src {
			return false, 0
		}
		score++
	case QualAny:
	}
	return true, score
}

func (r *Route) String() string {
	q := func(m ethernet.MAC, qu Qualifier) string {
		switch qu {
		case QualAny:
			return "any"
		case QualNot:
			return "not-" + m.String()
		default:
			return m.String()
		}
	}
	s := fmt.Sprintf("src=%s dst=%s -> %s", q(r.SrcMAC, r.SrcQual), q(r.DstMAC, r.DstQual), r.Dest)
	if r.HasBackup {
		s += fmt.Sprintf(" (backup %s)", r.Backup)
	}
	if r.Tenant != 0 {
		s += fmt.Sprintf(" [tenant %d]", r.Tenant)
	}
	return s
}

// ErrNoRoute is returned when no routing entry matches a packet.
var ErrNoRoute = errors.New("core: no matching route")

type cacheKey struct {
	src, dst ethernet.MAC
}

// cacheShards is the number of independent routing-cache segments. Hits
// on different shards never touch the same lock, and hits on the same
// shard share only a read lock, so the cache fast path is contention-free
// under the overlay's dispatcher pool. Power of two for cheap masking.
const cacheShards = 16

// cacheShard is one segment of the routing cache. Shard maps are written
// only while the table's exclusive lock is held (miss fill, invalidation),
// so a fill can never race an invalidation; the shard lock alone protects
// readers on the hit path.
type cacheShard struct {
	mu sync.RWMutex
	m  map[cacheKey][]Destination
}

// shardIndex hashes a flow key onto a cache shard (FNV-1a over the 12
// address bytes).
func shardIndex(k cacheKey) int {
	h := uint32(2166136261)
	for _, b := range k.src {
		h = (h ^ uint32(b)) * 16777619
	}
	for _, b := range k.dst {
		h = (h ^ uint32(b)) * 16777619
	}
	return int(h & (cacheShards - 1))
}

// Table is the VNET/P routing table: a linear-scan rule list indexed by
// source and destination MAC, with a sharded hash routing cache layered on
// top so the common case is a constant-time lookup (paper Sect. 4.3).
// Table is safe for concurrent use; the real-socket overlay calls it from
// multiple dispatcher goroutines, while the simulation is single-threaded.
// Cache hits take only a per-shard read lock and bump atomic counters —
// no exclusive lock anywhere on the hit path.
type Table struct {
	mu     sync.RWMutex
	routes []*Route
	shards [cacheShards]cacheShard
	failed map[Destination]bool // destinations currently failed over

	// CacheEnabled can be cleared to measure the cache's contribution
	// (ablation benchmark). Set it before the table carries concurrent
	// traffic. Enabled by default.
	CacheEnabled bool

	// Stats. Atomic so the hot lookup path never takes an exclusive lock
	// just to bump a counter.
	Hits, Misses atomic.Uint64

	// onInvalidate, when set, is called (under t.mu) every time the
	// routing cache is cleared. The overlay installs a hook that bumps
	// its flow-cache epoch, so any event that can change a routing
	// answer — route churn, FailDest/RestoreDest, teardown sweeps —
	// also retires every derived per-flow forwarding decision. The hook
	// must be cheap and must not call back into the table.
	onInvalidate func()
}

// NewTable returns an empty routing table with the cache enabled.
func NewTable() *Table {
	t := &Table{
		failed:       make(map[Destination]bool),
		CacheEnabled: true,
	}
	for i := range t.shards {
		t.shards[i].m = make(map[cacheKey][]Destination)
	}
	return t
}

// invalidateCacheLocked clears every cache shard. Caller holds t.mu
// exclusively, which serializes the clear against miss-path fills: a
// lookup that resolved routes under the old state can never insert its
// stale answer after the clear, so invalidation is atomic with respect to
// FailDest/RestoreDest and route mutations.
func (t *Table) invalidateCacheLocked() {
	for i := range t.shards {
		sh := &t.shards[i]
		sh.mu.Lock()
		sh.m = make(map[cacheKey][]Destination)
		sh.mu.Unlock()
	}
	if t.onInvalidate != nil {
		t.onInvalidate()
	}
}

// SetInvalidateHook registers fn to run whenever the routing cache is
// invalidated. One hook per table; passing nil clears it.
func (t *Table) SetInvalidateHook(fn func()) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.onInvalidate = fn
}

// FailDest marks a destination as failed: routes pointing at it that
// carry a backup resolve to the backup until RestoreDest. The routing
// cache is invalidated atomically, so in-flight traffic switches on the
// next lookup. Returns how many routes failed over (idempotent: marking
// an already-failed destination returns 0).
func (t *Table) FailDest(d Destination) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.failed[d] {
		return 0
	}
	t.failed[d] = true
	t.invalidateCacheLocked()
	n := 0
	for _, r := range t.routes {
		if r.Dest == d && r.HasBackup {
			n++
		}
	}
	return n
}

// RestoreDest clears a destination's failed mark (failback), returning
// how many routes switched back to their primary.
func (t *Table) RestoreDest(d Destination) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.failed[d] {
		return 0
	}
	delete(t.failed, d)
	t.invalidateCacheLocked()
	n := 0
	for _, r := range t.routes {
		if r.Dest == d && r.HasBackup {
			n++
		}
	}
	return n
}

// FailedDests snapshots the destinations currently marked failed.
func (t *Table) FailedDests() []Destination {
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := make([]Destination, 0, len(t.failed))
	for d := range t.failed {
		out = append(out, d)
	}
	return out
}

// resolveLocked maps a matched route to the destination traffic should
// use right now: the backup while the primary is failed, the primary
// otherwise. Caller holds at least a read lock.
func (t *Table) resolveLocked(r *Route) Destination {
	if r.HasBackup && t.failed[r.Dest] {
		return r.Backup
	}
	return r.Dest
}

// AddRoute appends a route and invalidates the routing cache.
func (t *Table) AddRoute(r Route) {
	t.mu.Lock()
	defer t.mu.Unlock()
	rc := r
	t.routes = append(t.routes, &rc)
	t.invalidateCacheLocked()
}

// RemoveRoute removes the first route exactly equal to r, reporting
// whether one was found. The cache is invalidated on success.
func (t *Table) RemoveRoute(r Route) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	for i, have := range t.routes {
		if *have == r {
			t.routes = append(t.routes[:i], t.routes[i+1:]...)
			t.invalidateCacheLocked()
			return true
		}
	}
	return false
}

// RemoveByDest removes all routes pointing at dest, returning how many
// were removed (used when a link or interface is torn down).
func (t *Table) RemoveByDest(dest Destination) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	kept := t.routes[:0]
	removed := 0
	for _, r := range t.routes {
		if r.Dest == dest {
			removed++
			continue
		}
		kept = append(kept, r)
	}
	t.routes = kept
	if removed > 0 {
		t.invalidateCacheLocked()
	}
	return removed
}

// Len reports the number of routes.
func (t *Table) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.routes)
}

// Routes returns a snapshot of the table.
func (t *Table) Routes() []Route {
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := make([]Route, len(t.routes))
	for i, r := range t.routes {
		out[i] = *r
	}
	return out
}

// CacheStats reports the routing cache's hit and miss counts.
func (t *Table) CacheStats() (hits, misses uint64) {
	return t.Hits.Load(), t.Misses.Load()
}

// Lookup resolves the destinations for a packet. Unicast packets get the
// single best (most specific) match; broadcast/multicast packets get every
// distinct matching destination except ones that would loop the frame back
// to its source interface (the caller excludes that by name). The second
// result reports whether the answer came from the routing cache, so the
// simulated datapath can charge the linear-scan cost only on misses.
//
// The hit path takes only the flow's shard read lock — concurrent hits
// (the overlay's steady state) contend on nothing exclusive. Misses fall
// back to the table lock to scan the rules and fill the cache; holding it
// across resolve-and-fill keeps the fill atomic with invalidation.
func (t *Table) Lookup(src, dst ethernet.MAC) ([]Destination, bool, error) {
	key := cacheKey{src, dst}
	var sh *cacheShard
	if t.CacheEnabled {
		sh = &t.shards[shardIndex(key)]
		sh.mu.RLock()
		dests, ok := sh.m[key]
		sh.mu.RUnlock()
		if ok {
			t.Hits.Add(1)
			return dests, true, nil
		}
	}

	t.mu.Lock()
	defer t.mu.Unlock()
	t.Misses.Add(1)
	var dests []Destination
	if dst.IsBroadcast() || dst.IsMulticast() {
		seen := make(map[Destination]bool)
		for _, r := range t.routes {
			if ok, _ := r.matches(src, dst); ok {
				d := t.resolveLocked(r)
				if !seen[d] {
					seen[d] = true
					dests = append(dests, d)
				}
			}
		}
	} else {
		best := -1
		var bestDest Destination
		for _, r := range t.routes {
			if ok, score := r.matches(src, dst); ok && score > best {
				best = score
				bestDest = t.resolveLocked(r)
			}
		}
		if best >= 0 {
			dests = []Destination{bestDest}
		}
	}
	if len(dests) == 0 {
		return nil, false, ErrNoRoute
	}
	if t.CacheEnabled {
		sh.mu.Lock()
		sh.m[key] = dests
		sh.mu.Unlock()
	}
	return dests, false, nil
}
