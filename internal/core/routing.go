// Package core implements the VNET/P core, the paper's primary
// contribution (Sect. 4.3): MAC-address routing of raw Ethernet frames
// between virtual NICs and overlay links, performed by packet dispatchers
// that run in guest-driven, VMM-driven, or adaptive mode.
//
// The routing logic in this file is pure (no simulation dependencies) and
// is shared by the simulated datapath (vnetp.go) and the real-socket
// overlay (internal/overlay).
package core

import (
	"errors"
	"fmt"
	"sync"

	"vnetp/internal/ethernet"
)

// Qualifier restricts how a route's MAC field matches, following the
// VNET/U configuration language ("any" and "not" qualifiers).
type Qualifier int

const (
	// QualExact matches the exact MAC address.
	QualExact Qualifier = iota
	// QualAny matches every MAC address.
	QualAny
	// QualNot matches every MAC address except the given one.
	QualNot
)

func (q Qualifier) String() string {
	switch q {
	case QualExact:
		return "exact"
	case QualAny:
		return "any"
	case QualNot:
		return "not"
	default:
		return "unknown"
	}
}

// DestType says whether a route's destination is a local virtual NIC or an
// overlay link to a remote VNET node.
type DestType int

const (
	// DestInterface delivers to a local virtual NIC.
	DestInterface DestType = iota
	// DestLink forwards through the bridge to a remote VNET/P core, a
	// VNET/U daemon, or the local physical network.
	DestLink
)

func (d DestType) String() string {
	if d == DestInterface {
		return "interface"
	}
	return "link"
}

// Destination is where a matched packet goes.
type Destination struct {
	Type DestType
	// ID names the interface or link.
	ID string
}

func (d Destination) String() string { return fmt.Sprintf("%s:%s", d.Type, d.ID) }

// Route is one routing-table entry: a (source, destination) MAC pattern
// mapping to a destination, with an optional backup destination used
// while the primary is marked failed.
type Route struct {
	DstMAC  ethernet.MAC
	DstQual Qualifier
	SrcMAC  ethernet.MAC
	SrcQual Qualifier
	Dest    Destination

	// Backup, when HasBackup is set, is substituted for Dest while Dest
	// is marked failed (Table.FailDest) — the failover path the link
	// health monitor flips traffic onto when a link goes Down.
	Backup    Destination
	HasBackup bool
}

// matches reports whether the route matches the packet addresses, and the
// specificity score used to pick the best match (exact beats not beats
// any; destination specificity beats source specificity).
func (r *Route) matches(src, dst ethernet.MAC) (bool, int) {
	score := 0
	switch r.DstQual {
	case QualExact:
		if r.DstMAC != dst {
			return false, 0
		}
		score += 8
	case QualNot:
		if r.DstMAC == dst {
			return false, 0
		}
		score += 4
	case QualAny:
	}
	switch r.SrcQual {
	case QualExact:
		if r.SrcMAC != src {
			return false, 0
		}
		score += 2
	case QualNot:
		if r.SrcMAC == src {
			return false, 0
		}
		score++
	case QualAny:
	}
	return true, score
}

func (r *Route) String() string {
	q := func(m ethernet.MAC, qu Qualifier) string {
		switch qu {
		case QualAny:
			return "any"
		case QualNot:
			return "not-" + m.String()
		default:
			return m.String()
		}
	}
	s := fmt.Sprintf("src=%s dst=%s -> %s", q(r.SrcMAC, r.SrcQual), q(r.DstMAC, r.DstQual), r.Dest)
	if r.HasBackup {
		s += fmt.Sprintf(" (backup %s)", r.Backup)
	}
	return s
}

// ErrNoRoute is returned when no routing entry matches a packet.
var ErrNoRoute = errors.New("core: no matching route")

type cacheKey struct {
	src, dst ethernet.MAC
}

// Table is the VNET/P routing table: a linear-scan rule list indexed by
// source and destination MAC, with a hash routing cache layered on top so
// the common case is a constant-time lookup (paper Sect. 4.3). Table is
// safe for concurrent use; the real-socket overlay calls it from multiple
// goroutines, while the simulation is single-threaded.
type Table struct {
	mu     sync.RWMutex
	routes []*Route
	cache  map[cacheKey][]Destination
	failed map[Destination]bool // destinations currently failed over

	// CacheEnabled can be cleared to measure the cache's contribution
	// (ablation benchmark). Enabled by default.
	CacheEnabled bool

	// Stats
	Hits, Misses uint64
}

// NewTable returns an empty routing table with the cache enabled.
func NewTable() *Table {
	return &Table{
		cache:        make(map[cacheKey][]Destination),
		failed:       make(map[Destination]bool),
		CacheEnabled: true,
	}
}

// FailDest marks a destination as failed: routes pointing at it that
// carry a backup resolve to the backup until RestoreDest. The routing
// cache is invalidated atomically, so in-flight traffic switches on the
// next lookup. Returns how many routes failed over (idempotent: marking
// an already-failed destination returns 0).
func (t *Table) FailDest(d Destination) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.failed[d] {
		return 0
	}
	t.failed[d] = true
	t.cache = make(map[cacheKey][]Destination)
	n := 0
	for _, r := range t.routes {
		if r.Dest == d && r.HasBackup {
			n++
		}
	}
	return n
}

// RestoreDest clears a destination's failed mark (failback), returning
// how many routes switched back to their primary.
func (t *Table) RestoreDest(d Destination) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.failed[d] {
		return 0
	}
	delete(t.failed, d)
	t.cache = make(map[cacheKey][]Destination)
	n := 0
	for _, r := range t.routes {
		if r.Dest == d && r.HasBackup {
			n++
		}
	}
	return n
}

// FailedDests snapshots the destinations currently marked failed.
func (t *Table) FailedDests() []Destination {
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := make([]Destination, 0, len(t.failed))
	for d := range t.failed {
		out = append(out, d)
	}
	return out
}

// resolveLocked maps a matched route to the destination traffic should
// use right now: the backup while the primary is failed, the primary
// otherwise. Caller holds at least a read lock.
func (t *Table) resolveLocked(r *Route) Destination {
	if r.HasBackup && t.failed[r.Dest] {
		return r.Backup
	}
	return r.Dest
}

// AddRoute appends a route and invalidates the routing cache.
func (t *Table) AddRoute(r Route) {
	t.mu.Lock()
	defer t.mu.Unlock()
	rc := r
	t.routes = append(t.routes, &rc)
	t.cache = make(map[cacheKey][]Destination)
}

// RemoveRoute removes the first route exactly equal to r, reporting
// whether one was found. The cache is invalidated on success.
func (t *Table) RemoveRoute(r Route) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	for i, have := range t.routes {
		if *have == r {
			t.routes = append(t.routes[:i], t.routes[i+1:]...)
			t.cache = make(map[cacheKey][]Destination)
			return true
		}
	}
	return false
}

// RemoveByDest removes all routes pointing at dest, returning how many
// were removed (used when a link or interface is torn down).
func (t *Table) RemoveByDest(dest Destination) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	kept := t.routes[:0]
	removed := 0
	for _, r := range t.routes {
		if r.Dest == dest {
			removed++
			continue
		}
		kept = append(kept, r)
	}
	t.routes = kept
	if removed > 0 {
		t.cache = make(map[cacheKey][]Destination)
	}
	return removed
}

// Len reports the number of routes.
func (t *Table) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.routes)
}

// Routes returns a snapshot of the table.
func (t *Table) Routes() []Route {
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := make([]Route, len(t.routes))
	for i, r := range t.routes {
		out[i] = *r
	}
	return out
}

// CacheStats reports the routing cache's hit and miss counts.
func (t *Table) CacheStats() (hits, misses uint64) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.Hits, t.Misses
}

// Lookup resolves the destinations for a packet. Unicast packets get the
// single best (most specific) match; broadcast/multicast packets get every
// distinct matching destination except ones that would loop the frame back
// to its source interface (the caller excludes that by name). The second
// result reports whether the answer came from the routing cache, so the
// simulated datapath can charge the linear-scan cost only on misses.
func (t *Table) Lookup(src, dst ethernet.MAC) ([]Destination, bool, error) {
	key := cacheKey{src, dst}
	t.mu.RLock()
	if t.CacheEnabled {
		if dests, ok := t.cache[key]; ok {
			t.mu.RUnlock()
			t.mu.Lock()
			t.Hits++
			t.mu.Unlock()
			return dests, true, nil
		}
	}
	t.mu.RUnlock()

	t.mu.Lock()
	defer t.mu.Unlock()
	t.Misses++
	var dests []Destination
	if dst.IsBroadcast() || dst.IsMulticast() {
		seen := make(map[Destination]bool)
		for _, r := range t.routes {
			if ok, _ := r.matches(src, dst); ok {
				d := t.resolveLocked(r)
				if !seen[d] {
					seen[d] = true
					dests = append(dests, d)
				}
			}
		}
	} else {
		best := -1
		var bestDest Destination
		for _, r := range t.routes {
			if ok, score := r.matches(src, dst); ok && score > best {
				best = score
				bestDest = t.resolveLocked(r)
			}
		}
		if best >= 0 {
			dests = []Destination{bestDest}
		}
	}
	if len(dests) == 0 {
		return nil, false, ErrNoRoute
	}
	if t.CacheEnabled {
		t.cache[key] = dests
	}
	return dests, false, nil
}
