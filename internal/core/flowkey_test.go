package core

import (
	"testing"

	"vnetp/internal/ethernet"
)

func TestFlowKeyEncodeDecode(t *testing.T) {
	keys := []FlowKey{
		{},
		{Tenant: 0, Src: ethernet.LocalMAC(1), Dst: ethernet.LocalMAC(2)},
		{Tenant: 7, Src: ethernet.LocalMAC(1), Dst: ethernet.LocalMAC(2)},
		{Tenant: 0xffffffff, Src: ethernet.Broadcast, Dst: ethernet.Broadcast},
		{Tenant: 42, Src: ethernet.MAC{0xde, 0xad, 0xbe, 0xef, 0x00, 0x01}, Dst: ethernet.LocalMAC(9)},
	}
	for _, k := range keys {
		b := k.Encode()
		got := DecodeFlowKey(b)
		if got != k {
			t.Fatalf("round-trip %v: got %v", k, got)
		}
	}
}

// Two tenants sharing a MAC pair must produce distinct keys — the
// cross-tenant isolation property at the key level.
func TestFlowKeyTenantDistinguishes(t *testing.T) {
	src, dst := ethernet.LocalMAC(1), ethernet.LocalMAC(2)
	a := FlowKey{Tenant: 1, Src: src, Dst: dst}
	b := FlowKey{Tenant: 2, Src: src, Dst: dst}
	if a == b {
		t.Fatal("keys for different tenants compare equal")
	}
	if a.Encode() == b.Encode() {
		t.Fatal("packed keys for different tenants are identical")
	}
}

func TestFlowKeyShardInRange(t *testing.T) {
	const n = 16
	seen := make(map[int]bool)
	for i := uint32(0); i < 1000; i++ {
		k := FlowKey{Tenant: i % 3, Src: ethernet.LocalMAC(i), Dst: ethernet.LocalMAC(i + 1)}
		s := k.Shard(n)
		if s < 0 || s >= n {
			t.Fatalf("shard %d out of range for %v", s, k)
		}
		seen[s] = true
	}
	// FNV-1a over 1000 distinct keys should touch most shards; an
	// effectively-constant shard function would defeat the sharding.
	if len(seen) < n/2 {
		t.Fatalf("only %d of %d shards used", len(seen), n)
	}
}

// FuzzFlowKey pins the packed-form identity both ways: any FlowKey
// survives Encode → DecodeFlowKey, and any 16 bytes survive
// DecodeFlowKey → Encode. Together these make the packed form a
// bijection, so the flow cache can hash and compare packed keys
// without ever conflating two distinct flows.
func FuzzFlowKey(f *testing.F) {
	f.Add(uint32(0), []byte{}, []byte{})
	f.Add(uint32(7), []byte{2, 0x56, 0, 0, 0, 1}, []byte{2, 0x56, 0, 0, 0, 2})
	f.Add(uint32(0xffffffff), []byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff}, []byte{0xde, 0xad, 0xbe, 0xef, 0, 1})
	f.Add(uint32(42), []byte("abcdefgh"), []byte("zyxwvuts"))
	f.Fuzz(func(t *testing.T, tenant uint32, src, dst []byte) {
		var k FlowKey
		k.Tenant = tenant
		copy(k.Src[:], src)
		copy(k.Dst[:], dst)

		b := k.Encode()
		if got := DecodeFlowKey(b); got != k {
			t.Fatalf("Encode/Decode identity: %v -> % x -> %v", k, b, got)
		}

		// Reverse direction: reuse the packed bytes as arbitrary input.
		if re := DecodeFlowKey(b).Encode(); re != b {
			t.Fatalf("Decode/Encode identity: % x -> % x", b, re)
		}

		// Shard must be stable and in range for any key.
		if s := k.Shard(16); s != k.Shard(16) || s < 0 || s >= 16 {
			t.Fatalf("shard unstable or out of range: %d", s)
		}
	})
}

// The invalidation hook must fire on every path that clears the route
// cache — route churn, failover marks, teardown sweeps — and must
// propagate to tables Ensure creates after installation.
func TestInvalidateHookFires(t *testing.T) {
	ts := NewTenants()
	var bumps int
	ts.SetInvalidateHook(func() { bumps++ })

	tbl := ts.Default()
	dest := Destination{Type: DestLink, ID: "l1"}
	r := Route{DstQual: QualAny, SrcQual: QualAny, Dest: dest,
		Backup: Destination{Type: DestLink, ID: "l2"}, HasBackup: true}

	tbl.AddRoute(r)
	tbl.FailDest(dest)
	tbl.RestoreDest(dest)
	tbl.RemoveRoute(r)
	if bumps != 4 {
		t.Fatalf("AddRoute+FailDest+RestoreDest+RemoveRoute: %d bumps, want 4", bumps)
	}

	tbl.AddRoute(r)
	bumps = 0
	if tbl.RemoveByDest(dest) != 1 {
		t.Fatal("RemoveByDest missed the route")
	}
	if bumps != 1 {
		t.Fatalf("RemoveByDest: %d bumps, want 1", bumps)
	}
	bumps = 0
	tbl.RemoveByDest(dest) // no routes left: no invalidation, no bump
	if bumps != 0 {
		t.Fatalf("no-op RemoveByDest bumped %d times", bumps)
	}

	// A table created after hook installation inherits it.
	t2 := ts.Ensure(9)
	bumps = 0
	t2.AddRoute(r)
	if bumps != 1 {
		t.Fatalf("Ensure-created table: %d bumps, want 1", bumps)
	}
}
