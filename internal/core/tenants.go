package core

import (
	"sort"
	"sync"
)

// DefaultTenant is the implicit tenant every pre-tenancy configuration
// lives in: tenant 0's table is the node's classic flat routing table,
// and frames on unsealed links route through it exactly as before
// tenancy existed.
const DefaultTenant uint32 = 0

// Tenants is the tenant-scoping layer over the routing table: one
// independent Table (rules, sharded cache, failover marks) per tenant
// ID, so MAC namespaces never collide across tenants — two tenants can
// both own 02:00:00:00:00:01 and route it to different places. The
// default tenant's table always exists.
type Tenants struct {
	mu     sync.RWMutex
	tables map[uint32]*Table

	// invalidate, when set, is installed as the cache-invalidation hook
	// on every table — existing ones and ones Ensure creates later — so
	// a route-cache clear in any tenant namespace reaches the overlay's
	// flow-cache epoch.
	invalidate func()
}

// NewTenants returns a tenant set holding only the default tenant.
func NewTenants() *Tenants {
	return &Tenants{tables: map[uint32]*Table{DefaultTenant: NewTable()}}
}

// Default returns the default tenant's table (never nil).
func (ts *Tenants) Default() *Table { return ts.tables[DefaultTenant] }

// Table returns tenant id's table, or nil when the tenant has none —
// lookups for unknown tenants fail closed at the caller.
func (ts *Tenants) Table(id uint32) *Table {
	ts.mu.RLock()
	defer ts.mu.RUnlock()
	return ts.tables[id]
}

// Ensure returns tenant id's table, creating an empty one on first use.
func (ts *Tenants) Ensure(id uint32) *Table {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	t := ts.tables[id]
	if t == nil {
		t = NewTable()
		if ts.invalidate != nil {
			t.SetInvalidateHook(ts.invalidate)
		}
		ts.tables[id] = t
	}
	return t
}

// SetInvalidateHook installs fn as the cache-invalidation hook on every
// current table and every table Ensure creates afterwards. The overlay
// uses it to bump its flow-cache epoch on any route-cache clear in any
// tenant namespace.
func (ts *Tenants) SetInvalidateHook(fn func()) {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	ts.invalidate = fn
	for _, t := range ts.tables {
		t.SetInvalidateHook(fn)
	}
}

// IDs lists the tenant IDs that have tables, sorted ascending (the
// default tenant is always first).
func (ts *Tenants) IDs() []uint32 {
	ts.mu.RLock()
	defer ts.mu.RUnlock()
	ids := make([]uint32, 0, len(ts.tables))
	for id := range ts.tables {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// Each calls fn for every tenant table (ascending tenant order). Used
// for whole-node operations — link failover, teardown sweeps — that
// must hit every namespace.
func (ts *Tenants) Each(fn func(id uint32, t *Table)) {
	for _, id := range ts.IDs() {
		if t := ts.Table(id); t != nil {
			fn(id, t)
		}
	}
}
