package core

import (
	"time"

	"vnetp/internal/sim"
)

// Mode selects how packet dispatchers service a virtual NIC (paper
// Sect. 4.3, Fig. 3).
type Mode int

const (
	// GuestDriven dispatches in the context of the VM exit the guest's
	// NIC kick causes: minimizes small-message latency.
	GuestDriven Mode = iota
	// VMMDriven polls the NIC from dedicated dispatcher threads, handling
	// multiple packets per poll and suppressing NIC-related exits:
	// maximizes throughput.
	VMMDriven
	// Adaptive switches between the two based on the packet arrival rate
	// with hysteresis (Fig. 6).
	Adaptive
)

func (m Mode) String() string {
	switch m {
	case GuestDriven:
		return "guest-driven"
	case VMMDriven:
		return "VMM-driven"
	case Adaptive:
		return "adaptive"
	default:
		return "unknown"
	}
}

// Params are VNET/P's performance tuning parameters (paper Sect. 4.8,
// Table 1).
type Params struct {
	// Mode is the configured dispatch mode.
	Mode Mode
	// AlphaL is the lower rate bound (packets/s): below it, adaptive
	// operation switches back to guest-driven mode.
	AlphaL float64
	// AlphaU is the upper rate bound (packets/s): above it, adaptive
	// operation switches to VMM-driven mode. AlphaU > AlphaL gives the
	// hysteresis that prevents rapid mode flapping.
	AlphaU float64
	// Omega is the window over which rates are recomputed.
	Omega time.Duration
	// NDispatchers is the number of packet dispatcher threads.
	NDispatchers int
	// Yield is the yield strategy for the bridge and dispatcher threads
	// and the VMM's halt handler.
	Yield sim.YieldStrategy
	// TSleep is the timed-yield sleep interval.
	TSleep time.Duration
	// TNoWork is the adaptive-yield threshold.
	TNoWork time.Duration
	// RoundRobinDispatch spreads successive packets over all dispatcher
	// threads instead of hashing per flow. It trades per-flow FIFO order
	// for single-flow scaling — the configuration behind the paper's
	// Fig. 5 receive-throughput-vs-cores experiment.
	RoundRobinDispatch bool

	// The two VNET/P+ techniques (the follow-on work the paper points to
	// for reaching native 10G performance; Cui et al., SC'12):

	// OptimisticInterrupts delivers guest RX interrupts before the full
	// exit-amplified interrupt path completes, hiding it from packet
	// latency.
	OptimisticInterrupts bool
	// CutThrough overlaps the in-VMM staging copy with forwarding instead
	// of serializing on it (and tells the bridge to do the same), which
	// removes a memory-bus crossing from the pipeline's critical path.
	CutThrough bool
}

// PlusParams returns the VNET/P+ configuration: the Table 1 defaults with
// optimistic interrupts and cut-through forwarding enabled.
func PlusParams() Params {
	p := DefaultParams()
	p.OptimisticInterrupts = true
	p.CutThrough = true
	return p
}

// DefaultParams returns the configuration of Table 1: adaptive mode,
// α_l = 10³ pkt/s, α_u = 10⁴ pkt/s, ω = 5 ms, one dispatcher, immediate
// yield.
func DefaultParams() Params {
	return Params{
		Mode:         Adaptive,
		AlphaL:       1e3,
		AlphaU:       1e4,
		Omega:        5 * time.Millisecond,
		NDispatchers: 1,
		Yield:        sim.YieldImmediate,
		TSleep:       time.Millisecond,
		TNoWork:      time.Millisecond,
	}
}
