package core

import (
	"encoding/binary"
	"sort"
	"sync"
	"sync/atomic"

	"vnetp/internal/ethernet"
)

// Flow is one observed (source, destination) MAC pair with its traffic
// volume — the raw material of the VNET model's adaptation loop (paper
// Sect. 3: "monitor application communication ... and address such
// problems through VM migration and overlay network control").
//
// Bytes and Packets are updated with sync/atomic: holders of a live
// pointer (Acquire) add concurrently with Record, without the shard
// lock.
type Flow struct {
	Src, Dst ethernet.MAC
	Bytes    uint64
	Packets  uint64
}

// flowKey identifies a directed flow.
type flowKey struct{ src, dst ethernet.MAC }

// maxTrackedFlows bounds the accounting table; when full, the smallest
// flow is evicted to admit a new one (heavy flows, the ones adaptation
// cares about, stay).
const maxTrackedFlows = 4096

// flowStatShards is the number of independently locked accounting
// segments. Record sits on the per-frame datapath (every routed frame
// touches it), so a single table mutex serializes otherwise parallel
// senders; sharding by flow key keeps distinct flows on distinct locks.
// Power of two for cheap masking.
const flowStatShards = 16

// flowStatShard is one accounting segment: its own lock, map, and slice
// of the global capacity.
type flowStatShard struct {
	mu    sync.Mutex
	flows map[flowKey]*Flow
}

// FlowStats accumulates per-flow traffic counters. Safe for concurrent
// use (the real-socket overlay records from socket goroutines); sharded
// so concurrent senders on distinct flows do not contend. The capacity
// bound and smallest-flow eviction apply per shard, which preserves the
// intent (heavy flows survive) while keeping eviction scans local.
type FlowStats struct {
	shards [flowStatShards]flowStatShard
}

// NewFlowStats returns an empty accounting table.
func NewFlowStats() *FlowStats {
	fs := &FlowStats{}
	for i := range fs.shards {
		fs.shards[i].flows = make(map[flowKey]*Flow)
	}
	return fs
}

// shardOf maps a flow key onto its segment: word-at-a-time multiply-mix
// over both MACs. Record sits on the per-frame datapath, so the hash is
// two loads and two multiplies rather than a byte loop; the high bits
// fold down so the vendor prefix still influences shard choice.
func (fs *FlowStats) shardOf(k flowKey) *flowStatShard {
	a := binary.BigEndian.Uint32(k.src[2:])
	b := binary.BigEndian.Uint32(k.dst[2:])
	c := uint32(k.src[0])<<24 | uint32(k.src[1])<<16 | uint32(k.dst[0])<<8 | uint32(k.dst[1])
	h := (a ^ c) * 0x9E3779B1
	h ^= (b ^ h>>15) * 0x85EBCA6B
	h ^= h >> 16
	return &fs.shards[h&uint32(flowStatShards-1)]
}

// Record adds one packet of n bytes to the flow.
func (fs *FlowStats) Record(src, dst ethernet.MAC, n int) {
	f := fs.Acquire(src, dst)
	atomic.AddUint64(&f.Bytes, uint64(n))
	atomic.AddUint64(&f.Packets, 1)
}

// Acquire returns the live accounting entry for a flow, inserting (and
// evicting, at capacity) as needed, without counting anything. Callers
// may retain the pointer and add to Bytes/Packets with sync/atomic —
// the overlay's flow cache does exactly that, so a cache hit accounts
// its frame with two atomic adds instead of a hash + lock + map probe.
// A retained pointer whose entry is later evicted (or swept by Reset)
// keeps counting into the detached object until the holder refreshes;
// those counts are lost, which matches eviction's semantics — the table
// is an adaptation sensor, not a ledger.
func (fs *FlowStats) Acquire(src, dst ethernet.MAC) *Flow {
	k := flowKey{src, dst}
	sh := fs.shardOf(k)
	sh.mu.Lock()
	f := sh.flows[k]
	if f == nil {
		if len(sh.flows) >= maxTrackedFlows/flowStatShards {
			sh.evictSmallestLocked()
		}
		f = &Flow{Src: src, Dst: dst}
		sh.flows[k] = f
	}
	sh.mu.Unlock()
	return f
}

func (sh *flowStatShard) evictSmallestLocked() {
	var victim flowKey
	min := ^uint64(0)
	for k, f := range sh.flows {
		if b := atomic.LoadUint64(&f.Bytes); b < min {
			min = b
			victim = k
		}
	}
	delete(sh.flows, victim)
}

// Top returns the k largest flows by bytes, descending (ties broken by
// MAC order for determinism).
func (fs *FlowStats) Top(k int) []Flow {
	var out []Flow
	for i := range fs.shards {
		sh := &fs.shards[i]
		sh.mu.Lock()
		for _, f := range sh.flows {
			out = append(out, Flow{Src: f.Src, Dst: f.Dst,
				Bytes:   atomic.LoadUint64(&f.Bytes),
				Packets: atomic.LoadUint64(&f.Packets)})
		}
		sh.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Bytes != out[j].Bytes {
			return out[i].Bytes > out[j].Bytes
		}
		if out[i].Src != out[j].Src {
			return lessMAC(out[i].Src, out[j].Src)
		}
		return lessMAC(out[i].Dst, out[j].Dst)
	})
	if k > 0 && k < len(out) {
		out = out[:k]
	}
	return out
}

func lessMAC(a, b ethernet.MAC) bool {
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}

// Reset clears the counters (start of a new observation window).
func (fs *FlowStats) Reset() {
	for i := range fs.shards {
		sh := &fs.shards[i]
		sh.mu.Lock()
		sh.flows = make(map[flowKey]*Flow)
		sh.mu.Unlock()
	}
}

// Len reports the number of tracked flows.
func (fs *FlowStats) Len() int {
	total := 0
	for i := range fs.shards {
		sh := &fs.shards[i]
		sh.mu.Lock()
		total += len(sh.flows)
		sh.mu.Unlock()
	}
	return total
}
