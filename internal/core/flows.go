package core

import (
	"sort"
	"sync"

	"vnetp/internal/ethernet"
)

// Flow is one observed (source, destination) MAC pair with its traffic
// volume — the raw material of the VNET model's adaptation loop (paper
// Sect. 3: "monitor application communication ... and address such
// problems through VM migration and overlay network control").
type Flow struct {
	Src, Dst ethernet.MAC
	Bytes    uint64
	Packets  uint64
}

// flowKey identifies a directed flow.
type flowKey struct{ src, dst ethernet.MAC }

// maxTrackedFlows bounds the accounting table; when full, the smallest
// flow is evicted to admit a new one (heavy flows, the ones adaptation
// cares about, stay).
const maxTrackedFlows = 4096

// FlowStats accumulates per-flow traffic counters. Safe for concurrent
// use (the real-socket overlay records from socket goroutines).
type FlowStats struct {
	mu    sync.Mutex
	flows map[flowKey]*Flow
}

// NewFlowStats returns an empty accounting table.
func NewFlowStats() *FlowStats {
	return &FlowStats{flows: make(map[flowKey]*Flow)}
}

// Record adds one packet of n bytes to the flow.
func (fs *FlowStats) Record(src, dst ethernet.MAC, n int) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	k := flowKey{src, dst}
	f := fs.flows[k]
	if f == nil {
		if len(fs.flows) >= maxTrackedFlows {
			fs.evictSmallestLocked()
		}
		f = &Flow{Src: src, Dst: dst}
		fs.flows[k] = f
	}
	f.Bytes += uint64(n)
	f.Packets++
}

func (fs *FlowStats) evictSmallestLocked() {
	var victim flowKey
	min := ^uint64(0)
	for k, f := range fs.flows {
		if f.Bytes < min {
			min = f.Bytes
			victim = k
		}
	}
	delete(fs.flows, victim)
}

// Top returns the k largest flows by bytes, descending (ties broken by
// MAC order for determinism).
func (fs *FlowStats) Top(k int) []Flow {
	fs.mu.Lock()
	out := make([]Flow, 0, len(fs.flows))
	for _, f := range fs.flows {
		out = append(out, *f)
	}
	fs.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Bytes != out[j].Bytes {
			return out[i].Bytes > out[j].Bytes
		}
		if out[i].Src != out[j].Src {
			return lessMAC(out[i].Src, out[j].Src)
		}
		return lessMAC(out[i].Dst, out[j].Dst)
	})
	if k > 0 && k < len(out) {
		out = out[:k]
	}
	return out
}

func lessMAC(a, b ethernet.MAC) bool {
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}

// Reset clears the counters (start of a new observation window).
func (fs *FlowStats) Reset() {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.flows = make(map[flowKey]*Flow)
}

// Len reports the number of tracked flows.
func (fs *FlowStats) Len() int {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return len(fs.flows)
}
