package core_test

import (
	"testing"
	"time"

	"vnetp/internal/bridge"
	"vnetp/internal/core"
	"vnetp/internal/lab"
	"vnetp/internal/netstack"
	"vnetp/internal/phys"
	"vnetp/internal/sim"
)

// TestStreamSurvivesLinkFlap tears an overlay link down mid-transfer and
// restores it: frames sent into the void are lost, the reliable stream
// retransmits, and the transfer completes — the failure-recovery behavior
// a dynamically reconfigured overlay depends on.
func TestStreamSurvivesLinkFlap(t *testing.T) {
	eng := sim.New()
	p := core.DefaultParams()
	c := lab.NewPair(eng, phys.Eth10G, p)
	s0 := netstack.NewVMStack(eng, c.Nodes[0].VM, c.Nodes[0].Iface, lab.NodeIP(0))
	s1 := netstack.NewVMStack(eng, c.Nodes[1].VM, c.Nodes[1].Iface, lab.NodeIP(1))
	s0.AddNeighbor(lab.NodeIP(1), c.Nodes[1].MAC())
	s1.AddNeighbor(lab.NodeIP(0), c.Nodes[0].MAC())

	const total = 1 << 20
	received := 0
	var retransmits uint64
	eng.Go("server", func(pr *sim.Proc) {
		l := s1.Listen(5001)
		st := l.Accept(pr)
		received = st.ReadFull(pr, total)
	})
	eng.Go("client", func(pr *sim.Proc) {
		pr.Sleep(time.Millisecond)
		st := s0.Dial(pr, lab.NodeIP(1), 5001)
		st.Write(pr, total)
		st.Close(pr)
		retransmits = st.Retransmits
	})
	// Flap the forward link while the transfer is in flight.
	eng.Go("chaos", func(pr *sim.Proc) {
		pr.Sleep(2 * time.Millisecond)
		c.Nodes[0].Bridge.RemoveLink(lab.LinkID(1))
		pr.Sleep(5 * time.Millisecond) // outage window: frames black-hole
		c.Nodes[0].Bridge.AddLink(bridge.LinkConfig{ID: lab.LinkID(1), RemoteHost: "host1", Proto: bridge.UDP})
	})
	eng.Run()
	eng.Close()

	if received != total {
		t.Fatalf("received %d/%d after link flap", received, total)
	}
	if retransmits == 0 {
		t.Fatal("no retransmissions despite a 5ms outage")
	}
	if c.Nodes[0].Bridge.NoLink == 0 {
		t.Fatal("outage never black-holed a frame")
	}
	t.Logf("outage dropped %d frames at the bridge, %d retransmissions recovered the stream",
		c.Nodes[0].Bridge.NoLink, retransmits)
}

// TestRerouteMidStream switches a destination's route between two links
// mid-transfer (the migration scenario at the routing layer): the stream
// keeps flowing through the new path.
func TestRerouteMidStream(t *testing.T) {
	eng := sim.New()
	// Three hosts: sender 0 can reach 1 directly, or via 2 (which is not
	// wired to forward — so we just switch between the direct link and a
	// second direct link object).
	c := lab.NewCluster(eng, lab.Config{Dev: phys.Eth10G, N: 2, Params: core.DefaultParams()})
	s0 := netstack.NewVMStack(eng, c.Nodes[0].VM, c.Nodes[0].Iface, lab.NodeIP(0))
	s1 := netstack.NewVMStack(eng, c.Nodes[1].VM, c.Nodes[1].Iface, lab.NodeIP(1))
	s0.AddNeighbor(lab.NodeIP(1), c.Nodes[1].MAC())
	s1.AddNeighbor(lab.NodeIP(0), c.Nodes[0].MAC())
	// A second, parallel link to the same host.
	c.Nodes[0].Bridge.AddLink(bridge.LinkConfig{ID: "alt", RemoteHost: "host1", Proto: bridge.UDP})

	const total = 512 << 10
	received := 0
	eng.Go("server", func(pr *sim.Proc) {
		l := s1.Listen(5001)
		st := l.Accept(pr)
		received = st.ReadFull(pr, total)
	})
	eng.Go("client", func(pr *sim.Proc) {
		pr.Sleep(time.Millisecond)
		st := s0.Dial(pr, lab.NodeIP(1), 5001)
		st.Write(pr, total)
		st.Close(pr)
	})
	eng.Go("reroute", func(pr *sim.Proc) {
		pr.Sleep(2 * time.Millisecond)
		// Atomically replace the route: dst MAC now flows via "alt".
		c.Nodes[0].Core.Table.RemoveByDest(core.Destination{Type: core.DestLink, ID: lab.LinkID(1)})
		c.Nodes[0].Core.Table.AddRoute(core.Route{
			DstMAC: c.Nodes[1].MAC(), DstQual: core.QualExact, SrcQual: core.QualAny,
			Dest: core.Destination{Type: core.DestLink, ID: "alt"},
		})
	})
	eng.Run()
	eng.Close()
	if received != total {
		t.Fatalf("received %d/%d across reroute", received, total)
	}
}
