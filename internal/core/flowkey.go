package core

import (
	"encoding/binary"
	"fmt"

	"vnetp/internal/ethernet"
)

// FlowKeyLen is the size of a packed FlowKey: 4 bytes of tenant ID plus
// two 6-byte MAC addresses.
const FlowKeyLen = 16

// FlowKey identifies one unidirectional flow through the overlay: the
// tenant namespace plus the frame's source and destination MACs. It is
// the index of the per-flow forwarding cache (ISSUE 9): one key maps to
// the fully-resolved forwarding decision (link, encap template, seal
// context), so the steady-state hot path performs a single lookup
// instead of re-walking route match → tenant guard → link resolve per
// frame.
//
// FlowKey is a comparable value type, usable directly as a map key.
type FlowKey struct {
	Tenant uint32
	Src    ethernet.MAC
	Dst    ethernet.MAC
}

func (k FlowKey) String() string {
	return fmt.Sprintf("t%d %s->%s", k.Tenant, k.Src, k.Dst)
}

// Encode packs the key into its canonical 16-byte wire form:
// big-endian tenant ID, then source MAC, then destination MAC. The
// packed form is what the sharded cache hashes and what the fuzz
// corpus feeds DecodeFlowKey.
func (k FlowKey) Encode() [FlowKeyLen]byte {
	var b [FlowKeyLen]byte
	binary.BigEndian.PutUint32(b[0:4], k.Tenant)
	copy(b[4:10], k.Src[:])
	copy(b[10:16], k.Dst[:])
	return b
}

// DecodeFlowKey unpacks a 16-byte packed key. It is the exact inverse
// of Encode: DecodeFlowKey(k.Encode()) == k for every key, and
// Decode∘Encode round-trips every 16-byte input (the FuzzFlowKey
// property).
func DecodeFlowKey(b [FlowKeyLen]byte) FlowKey {
	var k FlowKey
	k.Tenant = binary.BigEndian.Uint32(b[0:4])
	copy(k.Src[:], b[4:10])
	copy(k.Dst[:], b[10:16])
	return k
}

// Shard hashes the key onto one of n shards (n must be a power of two)
// with a word-at-a-time multiply-mix over the tenant ID and both MACs.
// This sits on the cache-hit path of every routed frame, so it avoids
// the packed Encode copy and the byte-wise FNV loop; the tenant ID is
// folded in so two tenants sharing a MAC pair land on independent
// shards more often than not.
func (k FlowKey) Shard(n int) int {
	a := binary.BigEndian.Uint32(k.Src[2:])
	b := binary.BigEndian.Uint32(k.Dst[2:])
	c := uint32(k.Src[0])<<24 | uint32(k.Src[1])<<16 | uint32(k.Dst[0])<<8 | uint32(k.Dst[1])
	h := (a ^ k.Tenant) * 0x9E3779B1
	h ^= (b ^ c ^ h>>15) * 0x85EBCA6B
	h ^= h >> 16
	return int(h & uint32(n-1))
}
