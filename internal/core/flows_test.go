package core

import (
	"testing"
	"testing/quick"

	"vnetp/internal/ethernet"
)

func TestFlowStatsAccumulates(t *testing.T) {
	fs := NewFlowStats()
	a, b := ethernet.LocalMAC(1), ethernet.LocalMAC(2)
	fs.Record(a, b, 100)
	fs.Record(a, b, 200)
	fs.Record(b, a, 50)
	top := fs.Top(0)
	if len(top) != 2 {
		t.Fatalf("flows = %v", top)
	}
	if top[0].Src != a || top[0].Bytes != 300 || top[0].Packets != 2 {
		t.Fatalf("top flow = %+v", top[0])
	}
	if top[1].Bytes != 50 {
		t.Fatalf("second flow = %+v", top[1])
	}
}

func TestFlowStatsTopK(t *testing.T) {
	fs := NewFlowStats()
	for i := 0; i < 10; i++ {
		fs.Record(ethernet.LocalMAC(uint32(i)), ethernet.LocalMAC(99), 100*(i+1))
	}
	top := fs.Top(3)
	if len(top) != 3 {
		t.Fatalf("top(3) = %d entries", len(top))
	}
	if top[0].Bytes != 1000 || top[2].Bytes != 800 {
		t.Fatalf("top = %v", top)
	}
}

func TestFlowStatsEviction(t *testing.T) {
	fs := NewFlowStats()
	// One giant flow, then overflow the table with singletons: the giant
	// must survive.
	big := ethernet.LocalMAC(1)
	fs.Record(big, ethernet.LocalMAC(2), 1<<30)
	for i := 0; i < maxTrackedFlows+100; i++ {
		fs.Record(ethernet.LocalMAC(uint32(1000+i)), ethernet.LocalMAC(3), 1)
	}
	if fs.Len() > maxTrackedFlows {
		t.Fatalf("len = %d, cap %d", fs.Len(), maxTrackedFlows)
	}
	top := fs.Top(1)
	if top[0].Src != big {
		t.Fatal("heavy flow evicted")
	}
}

func TestFlowStatsReset(t *testing.T) {
	fs := NewFlowStats()
	fs.Record(ethernet.LocalMAC(1), ethernet.LocalMAC(2), 10)
	fs.Reset()
	if fs.Len() != 0 || len(fs.Top(0)) != 0 {
		t.Fatal("reset left data")
	}
}

// Property: Top is totally ordered by bytes descending, and total bytes
// across flows equals total recorded.
func TestFlowStatsOrderProperty(t *testing.T) {
	prop := func(records []struct {
		S, D uint8
		N    uint16
	}) bool {
		fs := NewFlowStats()
		var total uint64
		for _, r := range records {
			n := int(r.N) + 1
			fs.Record(ethernet.LocalMAC(uint32(r.S)), ethernet.LocalMAC(uint32(r.D)), n)
			total += uint64(n)
		}
		top := fs.Top(0)
		var sum uint64
		for i, f := range top {
			sum += f.Bytes
			if i > 0 && f.Bytes > top[i-1].Bytes {
				return false
			}
		}
		return sum == total
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
