package core

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"vnetp/internal/ethernet"
)

func topkMAC(b byte) ethernet.MAC { return ethernet.MAC{0x02, 0, 0, 0, 0, b} }

func topkKey(i int) FlowKey {
	return FlowKey{Tenant: 1, Src: topkMAC(byte(i)), Dst: topkMAC(byte(i + 1))}
}

func TestTopFlowsOrderAndLiveCounts(t *testing.T) {
	tf := NewTopFlows(8)
	flows := make([]*Flow, 4)
	for i := range flows {
		flows[i] = &Flow{Src: topkMAC(byte(i)), Dst: topkMAC(byte(i + 1))}
		flows[i].Bytes = uint64((i + 1) * 100)
		flows[i].Packets = uint64(i + 1)
		tf.Offer(topkKey(i), flows[i])
	}
	top := tf.Top(2)
	if len(top) != 2 {
		t.Fatalf("top len = %d, want 2", len(top))
	}
	if top[0].Key != topkKey(3) || top[0].Bytes != 400 {
		t.Fatalf("top[0] = %+v", top[0])
	}
	if top[1].Key != topkKey(2) || top[1].Bytes != 300 {
		t.Fatalf("top[1] = %+v", top[1])
	}
	// Live readings: growth after Offer is visible without re-offering.
	atomic.AddUint64(&flows[0].Bytes, 10_000)
	top = tf.Top(1)
	if top[0].Key != topkKey(0) || top[0].Bytes != 10_100 {
		t.Fatalf("live top[0] = %+v", top[0])
	}
	// Re-offering a present key is a no-op.
	tf.Offer(topkKey(0), &Flow{})
	if got := tf.Top(1)[0].Bytes; got != 10_100 {
		t.Fatalf("re-offer replaced live entry: bytes = %d", got)
	}
}

func TestTopFlowsEvictsMinimum(t *testing.T) {
	tf := NewTopFlows(3)
	heavy := &Flow{Bytes: 1000}
	mid := &Flow{Bytes: 500}
	light := &Flow{Bytes: 1}
	tf.Offer(topkKey(0), heavy)
	tf.Offer(topkKey(1), mid)
	tf.Offer(topkKey(2), light)
	if tf.Len() != 3 {
		t.Fatalf("len = %d, want 3", tf.Len())
	}
	// At capacity: the new arrival displaces the current minimum (light),
	// never the heavy hitters.
	tf.Offer(topkKey(3), &Flow{Bytes: 50})
	top := tf.Top(0)
	if len(top) != 3 {
		t.Fatalf("len = %d, want 3", len(top))
	}
	if top[0].Bytes != 1000 || top[1].Bytes != 500 || top[2].Bytes != 50 {
		t.Fatalf("post-evict top = %+v", top)
	}
}

func TestTopFlowsDefaultCapacity(t *testing.T) {
	tf := NewTopFlows(0)
	for i := 0; i < TopFlowCapacity*2; i++ {
		tf.Offer(FlowKey{Tenant: 2, Src: topkMAC(byte(i)), Dst: topkMAC(byte(i >> 8))},
			&Flow{Bytes: uint64(i)})
	}
	if tf.Len() != TopFlowCapacity {
		t.Fatalf("len = %d, want %d", tf.Len(), TopFlowCapacity)
	}
}

func TestTopFlowsConcurrent(t *testing.T) {
	tf := NewTopFlows(16)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				fl := &Flow{Bytes: uint64(w*1000 + i)}
				key := FlowKey{Tenant: uint32(w), Src: topkMAC(byte(i))}
				tf.Offer(key, fl)
				if i%17 == 0 {
					_ = tf.Top(4)
					_ = tf.Len()
				}
			}
		}(w)
	}
	wg.Wait()
	if got := tf.Len(); got != 16 {
		t.Fatalf("len = %d, want 16", got)
	}
	top := tf.Top(0)
	for i := 1; i < len(top); i++ {
		if top[i-1].Bytes < top[i].Bytes {
			t.Fatalf("unsorted top: %s", fmt.Sprint(top))
		}
	}
}
