package core

import (
	"strings"
	"testing"

	"vnetp/internal/ethernet"
)

func failoverTable(t *testing.T) (*Table, ethernet.MAC, ethernet.MAC) {
	t.Helper()
	tb := NewTable()
	src := ethernet.MAC{0x02, 0, 0, 0, 0, 1}
	dst := ethernet.MAC{0x02, 0, 0, 0, 0, 2}
	tb.AddRoute(Route{
		DstMAC: dst, DstQual: QualExact, SrcQual: QualAny,
		Dest:      Destination{Type: DestLink, ID: "primary"},
		Backup:    Destination{Type: DestLink, ID: "backup"},
		HasBackup: true,
	})
	return tb, src, dst
}

func lookupOne(t *testing.T, tb *Table, src, dst ethernet.MAC) Destination {
	t.Helper()
	dests, _, err := tb.Lookup(src, dst)
	if err != nil {
		t.Fatalf("lookup: %v", err)
	}
	if len(dests) != 1 {
		t.Fatalf("got %d destinations: %v", len(dests), dests)
	}
	return dests[0]
}

func TestFailDestSwitchesToBackup(t *testing.T) {
	tb, src, dst := failoverTable(t)
	if d := lookupOne(t, tb, src, dst); d.ID != "primary" {
		t.Fatalf("healthy lookup hit %v", d)
	}
	if n := tb.FailDest(Destination{Type: DestLink, ID: "primary"}); n != 1 {
		t.Fatalf("FailDest failed over %d routes, want 1", n)
	}
	if d := lookupOne(t, tb, src, dst); d.ID != "backup" {
		t.Fatalf("failed-over lookup hit %v, want backup", d)
	}
	// Idempotent: a second mark reports nothing new.
	if n := tb.FailDest(Destination{Type: DestLink, ID: "primary"}); n != 0 {
		t.Fatalf("repeat FailDest reported %d", n)
	}
	failed := tb.FailedDests()
	if len(failed) != 1 || failed[0].ID != "primary" {
		t.Fatalf("FailedDests = %v", failed)
	}
}

func TestFailDestInvalidatesCache(t *testing.T) {
	tb, src, dst := failoverTable(t)
	// Warm the cache on the primary answer.
	lookupOne(t, tb, src, dst)
	if d, cached, _ := tb.Lookup(src, dst); !cached || d[0].ID != "primary" {
		t.Fatalf("warm lookup cached=%v dest=%v", cached, d)
	}
	tb.FailDest(Destination{Type: DestLink, ID: "primary"})
	d, cached, err := tb.Lookup(src, dst)
	if err != nil {
		t.Fatal(err)
	}
	if cached {
		t.Fatal("lookup after FailDest served the stale cache entry")
	}
	if d[0].ID != "backup" {
		t.Fatalf("post-failover lookup hit %v", d[0])
	}
}

func TestRestoreDestFailsBack(t *testing.T) {
	tb, src, dst := failoverTable(t)
	tb.FailDest(Destination{Type: DestLink, ID: "primary"})
	lookupOne(t, tb, src, dst) // warm cache on the backup answer
	if n := tb.RestoreDest(Destination{Type: DestLink, ID: "primary"}); n != 1 {
		t.Fatalf("RestoreDest restored %d routes, want 1", n)
	}
	if d := lookupOne(t, tb, src, dst); d.ID != "primary" {
		t.Fatalf("failback lookup hit %v, want primary", d)
	}
	if n := tb.RestoreDest(Destination{Type: DestLink, ID: "primary"}); n != 0 {
		t.Fatalf("repeat RestoreDest reported %d", n)
	}
	if len(tb.FailedDests()) != 0 {
		t.Fatalf("FailedDests = %v after restore", tb.FailedDests())
	}
}

func TestFailDestWithoutBackupKeepsPrimary(t *testing.T) {
	tb := NewTable()
	src := ethernet.MAC{0x02, 0, 0, 0, 0, 1}
	dst := ethernet.MAC{0x02, 0, 0, 0, 0, 2}
	tb.AddRoute(Route{
		DstMAC: dst, DstQual: QualExact, SrcQual: QualAny,
		Dest: Destination{Type: DestLink, ID: "only"},
	})
	if n := tb.FailDest(Destination{Type: DestLink, ID: "only"}); n != 0 {
		t.Fatalf("FailDest counted %d backup-less routes", n)
	}
	// Without a backup the route keeps resolving to its (failed) primary:
	// degraded delivery beats a black hole.
	if d := lookupOne(t, tb, src, dst); d.ID != "only" {
		t.Fatalf("lookup hit %v", d)
	}
}

func TestBroadcastDedupsFailedOverRoutes(t *testing.T) {
	// Two broadcast-matching routes: one already points at "shared", the
	// other fails over onto it. The frame must go to "shared" once.
	tb := NewTable()
	src := ethernet.MAC{0x02, 0, 0, 0, 0, 1}
	tb.AddRoute(Route{
		DstQual: QualAny, SrcQual: QualAny,
		Dest: Destination{Type: DestLink, ID: "shared"},
	})
	tb.AddRoute(Route{
		DstQual: QualAny, SrcQual: QualAny,
		Dest:      Destination{Type: DestLink, ID: "primary"},
		Backup:    Destination{Type: DestLink, ID: "shared"},
		HasBackup: true,
	})
	tb.FailDest(Destination{Type: DestLink, ID: "primary"})
	dests, _, err := tb.Lookup(src, ethernet.Broadcast)
	if err != nil {
		t.Fatal(err)
	}
	if len(dests) != 1 || dests[0].ID != "shared" {
		t.Fatalf("broadcast dests = %v, want [shared] once", dests)
	}
}

func TestRouteStringShowsBackup(t *testing.T) {
	_, _, dst := failoverTable(t)
	r := Route{
		DstMAC: dst, DstQual: QualExact, SrcQual: QualAny,
		Dest:      Destination{Type: DestLink, ID: "primary"},
		Backup:    Destination{Type: DestLink, ID: "backup"},
		HasBackup: true,
	}
	s := r.String()
	if want := "(backup link:backup)"; !strings.Contains(s, want) {
		t.Fatalf("Route.String() = %q, missing %q", s, want)
	}
}
