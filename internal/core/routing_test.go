package core

import (
	"testing"
	"testing/quick"

	"vnetp/internal/ethernet"
)

var (
	macA = ethernet.LocalMAC(1)
	macB = ethernet.LocalMAC(2)
	macC = ethernet.LocalMAC(3)
)

func ifaceDest(id string) Destination { return Destination{Type: DestInterface, ID: id} }
func linkDest(id string) Destination  { return Destination{Type: DestLink, ID: id} }

func TestLookupExact(t *testing.T) {
	tb := NewTable()
	tb.AddRoute(Route{DstMAC: macB, DstQual: QualExact, SrcQual: QualAny, Dest: linkDest("l1")})
	dests, hit, err := tb.Lookup(macA, macB)
	if err != nil || hit || len(dests) != 1 || dests[0] != linkDest("l1") {
		t.Fatalf("lookup = %v hit=%v err=%v", dests, hit, err)
	}
	// Second lookup hits the cache.
	dests, hit, err = tb.Lookup(macA, macB)
	if err != nil || !hit || dests[0] != linkDest("l1") {
		t.Fatalf("cached lookup = %v hit=%v err=%v", dests, hit, err)
	}
	if tb.Hits.Load() != 1 || tb.Misses.Load() != 1 {
		t.Fatalf("hits=%d misses=%d", tb.Hits.Load(), tb.Misses.Load())
	}
}

func TestLookupNoRoute(t *testing.T) {
	tb := NewTable()
	if _, _, err := tb.Lookup(macA, macB); err != ErrNoRoute {
		t.Fatalf("err = %v, want ErrNoRoute", err)
	}
}

func TestLookupSpecificityOrdering(t *testing.T) {
	tb := NewTable()
	tb.AddRoute(Route{DstQual: QualAny, SrcQual: QualAny, Dest: linkDest("default")})
	tb.AddRoute(Route{DstMAC: macB, DstQual: QualExact, SrcQual: QualAny, Dest: linkDest("to-b")})
	tb.AddRoute(Route{DstMAC: macB, DstQual: QualExact, SrcMAC: macA, SrcQual: QualExact, Dest: linkDest("a-to-b")})

	dests, _, err := tb.Lookup(macA, macB)
	if err != nil || dests[0] != linkDest("a-to-b") {
		t.Fatalf("most specific: %v %v", dests, err)
	}
	dests, _, _ = tb.Lookup(macC, macB)
	if dests[0] != linkDest("to-b") {
		t.Fatalf("dst-exact: %v", dests)
	}
	dests, _, _ = tb.Lookup(macA, macC)
	if dests[0] != linkDest("default") {
		t.Fatalf("default: %v", dests)
	}
}

func TestLookupNotQualifier(t *testing.T) {
	tb := NewTable()
	tb.AddRoute(Route{DstMAC: macB, DstQual: QualNot, SrcQual: QualAny, Dest: linkDest("not-b")})
	if dests, _, err := tb.Lookup(macA, macC); err != nil || dests[0] != linkDest("not-b") {
		t.Fatalf("not-b should match C: %v %v", dests, err)
	}
	if _, _, err := tb.Lookup(macA, macB); err != ErrNoRoute {
		t.Fatalf("not-b must not match B: %v", err)
	}
}

func TestBroadcastFanout(t *testing.T) {
	tb := NewTable()
	tb.AddRoute(Route{DstQual: QualAny, SrcQual: QualAny, Dest: ifaceDest("if0")})
	tb.AddRoute(Route{DstQual: QualAny, SrcQual: QualAny, Dest: ifaceDest("if1")})
	tb.AddRoute(Route{DstQual: QualAny, SrcQual: QualAny, Dest: linkDest("l1")})
	tb.AddRoute(Route{DstMAC: macB, DstQual: QualExact, SrcQual: QualAny, Dest: linkDest("l1")}) // duplicate dest

	dests, _, err := tb.Lookup(macA, ethernet.Broadcast)
	if err != nil {
		t.Fatal(err)
	}
	if len(dests) != 3 {
		t.Fatalf("broadcast fanout = %v, want 3 distinct destinations", dests)
	}
}

func TestCacheInvalidationOnAdd(t *testing.T) {
	tb := NewTable()
	tb.AddRoute(Route{DstQual: QualAny, SrcQual: QualAny, Dest: linkDest("old")})
	tb.Lookup(macA, macB) // populate cache
	tb.AddRoute(Route{DstMAC: macB, DstQual: QualExact, SrcQual: QualAny, Dest: linkDest("new")})
	dests, hit, _ := tb.Lookup(macA, macB)
	if hit || dests[0] != linkDest("new") {
		t.Fatalf("stale cache after AddRoute: %v hit=%v", dests, hit)
	}
}

func TestRemoveRoute(t *testing.T) {
	tb := NewTable()
	r := Route{DstMAC: macB, DstQual: QualExact, SrcQual: QualAny, Dest: linkDest("l1")}
	tb.AddRoute(r)
	tb.Lookup(macA, macB)
	if !tb.RemoveRoute(r) {
		t.Fatal("RemoveRoute failed")
	}
	if tb.RemoveRoute(r) {
		t.Fatal("double remove succeeded")
	}
	if _, _, err := tb.Lookup(macA, macB); err != ErrNoRoute {
		t.Fatalf("route still resolves after removal: %v", err)
	}
}

func TestRemoveByDest(t *testing.T) {
	tb := NewTable()
	tb.AddRoute(Route{DstMAC: macB, DstQual: QualExact, SrcQual: QualAny, Dest: linkDest("l1")})
	tb.AddRoute(Route{DstMAC: macC, DstQual: QualExact, SrcQual: QualAny, Dest: linkDest("l1")})
	tb.AddRoute(Route{DstMAC: macA, DstQual: QualExact, SrcQual: QualAny, Dest: ifaceDest("if0")})
	if n := tb.RemoveByDest(linkDest("l1")); n != 2 {
		t.Fatalf("removed %d, want 2", n)
	}
	if tb.Len() != 1 {
		t.Fatalf("len = %d, want 1", tb.Len())
	}
	if n := tb.RemoveByDest(linkDest("nope")); n != 0 {
		t.Fatalf("removed %d for missing dest", n)
	}
}

func TestCacheDisabled(t *testing.T) {
	tb := NewTable()
	tb.CacheEnabled = false
	tb.AddRoute(Route{DstQual: QualAny, SrcQual: QualAny, Dest: linkDest("l")})
	for i := 0; i < 3; i++ {
		if _, hit, _ := tb.Lookup(macA, macB); hit {
			t.Fatal("cache hit with cache disabled")
		}
	}
	if tb.Hits.Load() != 0 || tb.Misses.Load() != 3 {
		t.Fatalf("hits=%d misses=%d", tb.Hits.Load(), tb.Misses.Load())
	}
}

func TestRoutesSnapshot(t *testing.T) {
	tb := NewTable()
	r := Route{DstMAC: macB, DstQual: QualExact, SrcQual: QualAny, Dest: linkDest("l1")}
	tb.AddRoute(r)
	snap := tb.Routes()
	if len(snap) != 1 || snap[0] != r {
		t.Fatalf("snapshot = %v", snap)
	}
	snap[0].Dest = linkDest("mutated")
	if tb.Routes()[0].Dest != linkDest("l1") {
		t.Fatal("snapshot mutation affected table")
	}
}

func TestStringers(t *testing.T) {
	r := Route{DstMAC: macB, DstQual: QualExact, SrcQual: QualAny, Dest: linkDest("l1")}
	if r.String() == "" || ifaceDest("x").String() != "interface:x" || linkDest("y").String() != "link:y" {
		t.Fatal("stringers broken")
	}
	if QualExact.String() != "exact" || QualAny.String() != "any" || QualNot.String() != "not" || Qualifier(9).String() != "unknown" {
		t.Fatal("qualifier strings")
	}
	if DestInterface.String() != "interface" || DestLink.String() != "link" {
		t.Fatal("dest type strings")
	}
	nr := Route{DstQual: QualNot, DstMAC: macB, SrcQual: QualNot, SrcMAC: macA, Dest: linkDest("z")}
	if nr.String() == "" {
		t.Fatal("not-qualified route string empty")
	}
}

// Property: cached lookups always agree with uncached lookups.
func TestCacheCoherenceProperty(t *testing.T) {
	prop := func(seedRoutes []uint8, srcIdx, dstIdx uint8) bool {
		macs := []ethernet.MAC{macA, macB, macC, ethernet.LocalMAC(4)}
		cached, plain := NewTable(), NewTable()
		plain.CacheEnabled = false
		for _, s := range seedRoutes {
			r := Route{
				DstMAC:  macs[int(s)%len(macs)],
				DstQual: Qualifier(int(s/4) % 3),
				SrcMAC:  macs[int(s/2)%len(macs)],
				SrcQual: Qualifier(int(s/8) % 3),
				Dest:    linkDest(string(rune('a' + s%5))),
			}
			cached.AddRoute(r)
			plain.AddRoute(r)
		}
		src := macs[int(srcIdx)%len(macs)]
		dst := macs[int(dstIdx)%len(macs)]
		// Query twice so the second cached query is a genuine cache hit.
		cached.Lookup(src, dst)
		d1, _, e1 := cached.Lookup(src, dst)
		d2, _, e2 := plain.Lookup(src, dst)
		if (e1 == nil) != (e2 == nil) || len(d1) != len(d2) {
			return false
		}
		for i := range d1 {
			if d1[i] != d2[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestDefaultParamsMatchTable1(t *testing.T) {
	p := DefaultParams()
	if p.Mode != Adaptive {
		t.Error("Table 1: mode must be adaptive")
	}
	if p.AlphaL != 1e3 || p.AlphaU != 1e4 {
		t.Errorf("Table 1: alpha_l=%v alpha_u=%v", p.AlphaL, p.AlphaU)
	}
	if p.Omega.Milliseconds() != 5 {
		t.Errorf("Table 1: omega = %v", p.Omega)
	}
	if p.NDispatchers != 1 {
		t.Errorf("Table 1: n_dispatchers = %d", p.NDispatchers)
	}
	if p.Yield.String() != "immediate" {
		t.Errorf("Table 1: yield = %v", p.Yield)
	}
	if p.AlphaU <= p.AlphaL {
		t.Error("hysteresis requires alpha_u > alpha_l")
	}
}

func TestModeString(t *testing.T) {
	if GuestDriven.String() != "guest-driven" || VMMDriven.String() != "VMM-driven" ||
		Adaptive.String() != "adaptive" || Mode(42).String() != "unknown" {
		t.Fatal("mode strings")
	}
}
