package core

import (
	"sort"
	"sync"
	"sync/atomic"
)

// TopFlowCapacity is the heavy-hitter candidate capacity per tenant:
// top 32 flows by bytes, the working set an operator actually reads.
const TopFlowCapacity = 32

// TopFlowEntry is one heavy-hitter reading: a flow key and its live
// byte/packet counts at query time.
type TopFlowEntry struct {
	Key     FlowKey
	Bytes   uint64
	Packets uint64
}

// TopFlows is a bounded heavy-hitter candidate set over live FlowStats
// accounting entries — a space-saving sketch specialised to this
// codebase's flow fast path. Classic space-saving maintains k counters
// and, at capacity, replaces the minimum-count entry with each new
// arrival. Here the counts are not sketch-internal: each candidate
// holds a live *Flow pointer (FlowStats.Acquire), whose atomic
// Bytes/Packets every routed frame already updates. Membership
// therefore only needs refreshing when a flow could be new — the
// flow-cache miss path, which every flow's first frame takes — while
// readings stay exactly current without the sketch ever touching the
// per-frame hot path.
//
// The space-saving error characteristics carry over: a genuinely heavy
// flow is never the minimum, so it is never evicted; churn is confined
// to the light tail. The one sketch-style caveat: a flow evicted while
// its forwarding-cache entry stays hot is not re-offered until the next
// flow-cache miss (epoch bump, eviction, or restart), so Top can
// under-report a flow that was light when the table was full and grew
// heavy later without any cache churn. Heavier-than-minimum flows at
// offer time are always admitted, which bounds the window.
type TopFlows struct {
	mu sync.Mutex
	k  int
	m  map[FlowKey]*Flow
}

// NewTopFlows returns an empty candidate set holding at most k flows
// (TopFlowCapacity when k <= 0).
func NewTopFlows(k int) *TopFlows {
	if k <= 0 {
		k = TopFlowCapacity
	}
	return &TopFlows{k: k, m: make(map[FlowKey]*Flow, k)}
}

// Offer proposes a flow for candidacy. Present flows are a no-op
// (their live counters are already tracked); with room the flow is
// admitted; at capacity the current minimum-bytes candidate is evicted
// in its favor (space-saving replacement on live readings).
func (t *TopFlows) Offer(key FlowKey, fl *Flow) {
	if fl == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, ok := t.m[key]; ok {
		return
	}
	if len(t.m) >= t.k {
		var minKey FlowKey
		minBytes := uint64(0)
		first := true
		for k2, f2 := range t.m {
			b := atomic.LoadUint64(&f2.Bytes)
			if first || b < minBytes {
				first, minKey, minBytes = false, k2, b
			}
		}
		delete(t.m, minKey)
	}
	t.m[key] = fl
}

// Len reports the current candidate count.
func (t *TopFlows) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.m)
}

// Top returns up to n candidates ordered by live byte count (packets,
// then key rendering break ties deterministically). n <= 0 means all.
func (t *TopFlows) Top(n int) []TopFlowEntry {
	t.mu.Lock()
	out := make([]TopFlowEntry, 0, len(t.m))
	for key, fl := range t.m {
		out = append(out, TopFlowEntry{
			Key:     key,
			Bytes:   atomic.LoadUint64(&fl.Bytes),
			Packets: atomic.LoadUint64(&fl.Packets),
		})
	}
	t.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Bytes != out[j].Bytes {
			return out[i].Bytes > out[j].Bytes
		}
		if out[i].Packets != out[j].Packets {
			return out[i].Packets > out[j].Packets
		}
		return out[i].Key.String() < out[j].Key.String()
	})
	if n > 0 && len(out) > n {
		out = out[:n]
	}
	return out
}
