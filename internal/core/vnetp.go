package core

import (
	"hash/fnv"
	"time"

	"vnetp/internal/ethernet"
	"vnetp/internal/sim"
	"vnetp/internal/virtio"
	"vnetp/internal/vmm"
)

// BridgeSender is the VNET/P core's view of the bridge: it forwards
// frames the core routed to link destinations. The bridge charges its own
// encapsulation and host-stack costs.
type BridgeSender interface {
	// SendOverlay encapsulates f and sends it over the named link.
	SendOverlay(linkID string, f *ethernet.Frame)
	// SendDirect sends f unencapsulated on the local physical network.
	SendDirect(f *ethernet.Frame)
}

// LocalLinkID is the reserved link name for the "local network"
// destination: frames routed to it exit the overlay as raw Ethernet
// (direct send).
const LocalLinkID = "local"

// VNETP is the simulated VNET/P core embedded in a host's VMM: it routes
// Ethernet frames between registered virtual NICs on this host and the
// bridge, using packet dispatchers in guest-driven, VMM-driven, or
// adaptive mode.
type VNETP struct {
	Eng    *sim.Engine
	Host   *vmm.Host
	Params Params
	Table  *Table
	Bridge BridgeSender
	// Flows is the per-(src,dst) traffic accounting the adaptation layer
	// (internal/adapt) reads.
	Flows *FlowStats

	dispatchers []*sim.Worker
	rr          uint32
	ifaces      map[string]*Iface

	// Stats
	LocalDelivered uint64 // frames delivered to a local virtual NIC
	ToBridge       uint64 // frames handed to the bridge
	NoRoute        uint64 // frames dropped for lack of a route
}

// New creates a VNET/P core on a host with NDispatchers dispatcher
// threads configured per params.
func New(host *vmm.Host, params Params) *VNETP {
	if params.NDispatchers < 1 {
		params.NDispatchers = 1
	}
	v := &VNETP{
		Eng:    host.Eng,
		Host:   host,
		Params: params,
		Table:  NewTable(),
		Flows:  NewFlowStats(),
		ifaces: make(map[string]*Iface),
	}
	wc := sim.WorkerConfig{Yield: params.Yield, TSleep: params.TSleep, TNoWork: params.TNoWork}
	for i := 0; i < params.NDispatchers; i++ {
		v.dispatchers = append(v.dispatchers, sim.NewWorker(host.Eng, wc))
	}
	return v
}

// Iface returns the registered interface by name (nil if absent).
func (v *VNETP) Iface(name string) *Iface { return v.ifaces[name] }

// Dispatchers exposes the dispatcher workers (for CPU accounting in
// experiments).
func (v *VNETP) Dispatchers() []*sim.Worker { return v.dispatchers }

// dispatcherFor picks the dispatcher thread for a flow. Flows hash by MAC
// pair so each flow stays FIFO while different flows spread across
// threads.
func (v *VNETP) dispatcherFor(src, dst ethernet.MAC) *sim.Worker {
	if len(v.dispatchers) == 1 {
		return v.dispatchers[0]
	}
	if v.Params.RoundRobinDispatch {
		v.rr++
		return v.dispatchers[v.rr%uint32(len(v.dispatchers))]
	}
	h := fnv.New32a()
	h.Write(src[:])
	h.Write(dst[:])
	return v.dispatchers[h.Sum32()%uint32(len(v.dispatchers))]
}

// Iface is a virtual NIC registered with the VNET/P core, together with
// the dispatch-mode state the core keeps for it. It implements the
// guest-facing port the simulated network stack drives.
type Iface struct {
	Name string
	VM   *vmm.VM
	NIC  *virtio.NIC
	core *VNETP

	mode       Mode // effective mode (== Params.Mode unless Adaptive)
	pktsInWin  int
	winTimerOn bool
	// txBusy gates the TX drain: exactly one drain chain (guest-driven or
	// VMM-driven) runs at a time, so frames leave the ring in FIFO order
	// even across adaptive mode switches. This mirrors virtio's
	// notification suppression: pushes while a drain is active do not
	// re-kick.
	txBusy     bool
	rxIPIArmed bool
	pendingRX  []*ethernet.Frame
	txCond     *sim.Cond
	recvUpcall func()

	// Stats
	Kicks        uint64 // TX notifications that caused VM exits
	KicksAvoided uint64 // TX pushes absorbed by a polling dispatcher
	ModeSwitches uint64
	RxDropped    uint64 // frames dropped after pendingRX overflow
}

// maxPendingRX bounds the parking area used while a guest's RXQ is full
// and an IPI-forced drain is in flight; beyond it we drop like a NIC
// would.
const maxPendingRX = 1024

// Register attaches a virtual NIC (belonging to vm) to the core under the
// given interface name. The NIC uses VNET/P as its backend from then on
// (paper Sect. 4.4).
func (v *VNETP) Register(name string, vm *vmm.VM, nic *virtio.NIC) *Iface {
	ifc := &Iface{
		Name:   name,
		VM:     vm,
		NIC:    nic,
		core:   v,
		txCond: sim.NewCond(v.Eng),
	}
	switch v.Params.Mode {
	case Adaptive:
		ifc.mode = GuestDriven // adaptive starts in the low-rate mode
	default:
		ifc.mode = v.Params.Mode
	}
	v.ifaces[name] = ifc
	return ifc
}

// Unregister detaches an interface (e.g. on VM migration away from this
// host). Routes pointing at it are removed.
func (v *VNETP) Unregister(name string) {
	delete(v.ifaces, name)
	v.Table.RemoveByDest(Destination{Type: DestInterface, ID: name})
}

// MAC returns the interface's hardware address.
func (ifc *Iface) MAC() ethernet.MAC { return ifc.NIC.MAC }

// MTU returns the MTU VNET/P advertises for this NIC.
func (ifc *Iface) MTU() int { return ifc.NIC.MTU }

// Mode reports the interface's current effective dispatch mode.
func (ifc *Iface) Mode() Mode { return ifc.mode }

// SetRecv installs the guest-side upcall invoked (in guest interrupt
// context, costs already charged) when received frames are available in
// the RXQ.
func (ifc *Iface) SetRecv(fn func()) { ifc.recvUpcall = fn }

// TrySend enqueues a frame on the NIC's TX ring, reporting false if the
// ring is full. On success the frame enters the VNET/P datapath per the
// current dispatch mode.
func (ifc *Iface) TrySend(f *ethernet.Frame) bool {
	if !ifc.NIC.TX.Push(f) {
		return false
	}
	ifc.core.Host.Tracer.Record(f.Tag, "guest: TX ring push")
	ifc.countPacket()
	if ifc.txBusy {
		// A drain chain is active: it will pick this frame up (suppressed
		// notification — no exit either way).
		ifc.KicksAvoided++
		return true
	}
	ifc.txBusy = true
	if ifc.mode == GuestDriven {
		// The kick I/O write exits to the VMM; the dispatcher runs in the
		// exit context on the guest's own core.
		ifc.Kicks++
		ifc.NIC.TX.CountNotify()
		ifc.VM.Exit(0, func() { ifc.drainTXGuestDriven() })
	} else {
		// VMM-driven: a dispatcher thread polls the ring; no exit.
		ifc.KicksAvoided++
		ifc.pollTX()
	}
	return true
}

// continueDrain keeps the single TX drain chain going in whatever mode
// the interface is in now — an adaptive switch mid-stream migrates the
// chain to the new path at the next batch boundary.
func (ifc *Iface) continueDrain() {
	if ifc.mode == GuestDriven {
		ifc.drainTXGuestDriven()
	} else {
		ifc.pollTX()
	}
}

// WaitSendSpace blocks the calling process until TX ring space may be
// available again.
func (ifc *Iface) WaitSendSpace(p *sim.Proc) { ifc.txCond.Wait(p) }

// drainTXGuestDriven processes the TX ring in VM-exit context: per-packet
// dispatch cost on the guest core, then routing, then a TX-completion
// interrupt (this is the latency-optimal, throughput-poor path).
func (ifc *Iface) drainTXGuestDriven() {
	batch := ifc.NIC.TX.PopBatch(0)
	if len(batch) == 0 {
		ifc.txBusy = false
		return
	}
	cost := time.Duration(len(batch)) * ifc.core.Host.Model.DispatchPerPacket
	ifc.VM.GuestWork(cost, func() {
		for _, f := range batch {
			ifc.core.route(f, ifc)
		}
		ifc.txComplete()
		ifc.continueDrain()
	})
}

// txComplete reclaims descriptors: blocked senders are released, and a
// TX-completion interrupt (with its exit-amplified guest cost) is
// injected only when the driver asked for one because it was out of ring
// space — virtio suppresses TX interrupts otherwise.
func (ifc *Iface) txComplete() {
	if ifc.txCond.HasWaiters() {
		ifc.VM.Inject(ifc.txCond.Broadcast)
		return
	}
	ifc.txCond.Broadcast()
}

// pollTX is the VMM-driven drain chain on a dispatcher thread.
func (ifc *Iface) pollTX() {
	batch := ifc.NIC.TX.PopBatch(32)
	if len(batch) == 0 {
		ifc.txBusy = false
		return
	}
	w := ifc.core.dispatcherFor(ifc.NIC.MAC, ethernet.MAC{})
	cost := time.Duration(len(batch)) * ifc.core.Host.Model.DispatchPerPacket
	w.Submit(cost, func() {
		for _, f := range batch {
			ifc.core.route(f, ifc)
		}
		ifc.txComplete()
		ifc.continueDrain()
	})
}

// DeliverFromWire hands a de-encapsulated frame from the bridge to a
// packet dispatcher (paper Fig. 7 reception path).
func (v *VNETP) DeliverFromWire(f *ethernet.Frame) {
	w := v.dispatcherFor(f.Src, f.Dst)
	w.Submit(v.Host.Model.DispatchPerPacket, func() { v.route(f, nil) })
}

// route looks up the frame's destinations and forwards. Runs in
// dispatcher (or exit) context; the cache-hit lookup cost is part of
// DispatchPerPacket, a miss charges the linear-scan penalty before
// forwarding.
func (v *VNETP) route(f *ethernet.Frame, from *Iface) {
	v.Host.Tracer.Record(f.Tag, "core: dispatched + routed")
	if from != nil {
		// Account locally-originated traffic only, so a flow is counted
		// once per overlay crossing (at its source core).
		v.Flows.Record(f.Src, f.Dst, f.WireLen())
	}
	dests, hit, err := v.Table.Lookup(f.Src, f.Dst)
	if err != nil {
		v.NoRoute++
		return
	}
	forward := func() {
		for _, d := range dests {
			switch d.Type {
			case DestInterface:
				ifc := v.ifaces[d.ID]
				if ifc == nil || ifc == from {
					continue
				}
				v.deliverLocal(ifc, f)
			case DestLink:
				v.ToBridge++
				send := func() {
					if d.ID == LocalLinkID {
						v.Bridge.SendDirect(f)
					} else {
						v.Bridge.SendOverlay(d.ID, f)
					}
				}
				if v.Params.CutThrough {
					// Cut-through: the frame is forwarded in place — no
					// staging buffer, no bus crossing.
					send()
				} else {
					// The single in-VMM data copy (TXQ -> bridge buffer).
					v.Host.MemCopy(f.WireLen(), send)
				}
			}
		}
	}
	if hit {
		forward()
		return
	}
	v.Eng.Schedule(time.Duration(v.Table.Len())*v.Host.Model.RouteMissPerEntry, forward)
}

// deliverLocal copies a frame into a local NIC's RX ring and notifies the
// guest, coalescing interrupts while the guest is draining and escalating
// to an IPI-forced exit when the ring is full (paper Sect. 4.3).
func (v *VNETP) deliverLocal(ifc *Iface, f *ethernet.Frame) {
	push := func() {
		if ifc.NIC.RX.Push(f) {
			v.Host.Tracer.Record(f.Tag, "core: RX ring push")
			v.LocalDelivered++
			ifc.countPacket()
			if ifc.NIC.RX.NotifyEnabled() {
				ifc.NIC.RX.SetNotify(false)
				ifc.NIC.RX.CountNotify()
				if v.Params.OptimisticInterrupts {
					ifc.VM.InjectOptimistic(ifc.notifyRecv)
				} else {
					ifc.VM.Inject(ifc.notifyRecv)
				}
			}
			return
		}
		if len(ifc.pendingRX) >= maxPendingRX {
			ifc.RxDropped++
			return
		}
		ifc.pendingRX = append(ifc.pendingRX, f)
		if !ifc.rxIPIArmed {
			ifc.rxIPIArmed = true
			ifc.VM.IPIExit(func() {
				ifc.rxIPIArmed = false
				ifc.notifyRecv()
			})
		}
	}
	if v.Params.CutThrough {
		// Zero-copy into the ring: the dispatcher hands the guest the
		// buffer it already holds.
		push()
		return
	}
	v.Host.MemCopy(f.WireLen(), push)
}

func (ifc *Iface) notifyRecv() {
	if ifc.recvUpcall != nil {
		ifc.recvUpcall()
	}
}

// GuestRecv pops one received frame from the RX ring (guest context; the
// caller charges guest-side costs).
func (ifc *Iface) GuestRecv() (*ethernet.Frame, bool) {
	f, ok := ifc.NIC.RX.Pop()
	if ok {
		ifc.core.Host.Tracer.Record(f.Tag, "guest: drained from RX ring")
	}
	return f, ok
}

// napiRepoll is how long the guest driver keeps polling (notifications
// still suppressed) after draining the ring empty, before re-arming the
// receive interrupt — NAPI's storm-avoidance behaviour. Frames arriving
// inside the window are picked up at a light polling cost instead of a
// full injected-interrupt path.
const napiRepoll = 30 * time.Microsecond

// pollCost is the guest-side cost of one NAPI re-poll pass.
const pollCost = 500 * time.Nanosecond

// RxDone is called by the guest driver when it finishes a drain pass:
// parked frames are refilled, and the driver either continues in polling
// mode (data still pending), schedules a NAPI re-poll, or — only after an
// idle re-poll — re-arms receive notifications.
func (ifc *Iface) RxDone() {
	refilled := false
	for len(ifc.pendingRX) > 0 && ifc.NIC.RX.Push(ifc.pendingRX[0]) {
		ifc.pendingRX[0] = nil
		ifc.pendingRX = ifc.pendingRX[1:]
		ifc.core.LocalDelivered++
		ifc.countPacket()
		refilled = true
	}
	if !ifc.NIC.RX.Empty() || refilled {
		// Still work queued: stay in polling mode, no new interrupt.
		ifc.VM.GuestWork(pollCost, ifc.notifyRecv)
		return
	}
	ifc.core.Eng.Schedule(napiRepoll, func() {
		if !ifc.NIC.RX.Empty() {
			ifc.VM.GuestWork(pollCost, ifc.notifyRecv)
			return
		}
		ifc.NIC.RX.SetNotify(true)
	})
}

// countPacket feeds the adaptive-mode rate estimator (Fig. 6): packet
// arrivals to or from the NIC are counted over windows of ω.
func (ifc *Iface) countPacket() {
	if ifc.core.Params.Mode != Adaptive {
		return
	}
	ifc.pktsInWin++
	if !ifc.winTimerOn {
		ifc.winTimerOn = true
		ifc.core.Eng.Schedule(ifc.core.Params.Omega, ifc.windowTick)
	}
}

// windowTick recomputes the NIC's packet rate and applies the hysteresis
// rule of Fig. 6.
func (ifc *Iface) windowTick() {
	p := ifc.core.Params
	rate := float64(ifc.pktsInWin) / p.Omega.Seconds()
	ifc.pktsInWin = 0
	switch {
	case rate > p.AlphaU && ifc.mode == GuestDriven:
		ifc.mode = VMMDriven
		ifc.ModeSwitches++
	case rate < p.AlphaL && ifc.mode == VMMDriven:
		ifc.mode = GuestDriven
		ifc.ModeSwitches++
	}
	if rate == 0 && ifc.mode == GuestDriven {
		// Idle and already in the low-rate mode: stop ticking so the
		// simulation can quiesce; the next packet restarts the window.
		ifc.winTimerOn = false
		return
	}
	ifc.core.Eng.Schedule(p.Omega, ifc.windowTick)
}
