package core

import (
	"testing"

	"vnetp/internal/ethernet"
)

func TestTenantsIsolatedNamespaces(t *testing.T) {
	ts := NewTenants()
	mac := ethernet.LocalMAC(1)
	// Two tenants own the same MAC, routed to different links.
	ts.Ensure(1).AddRoute(Route{DstMAC: mac, DstQual: QualExact, SrcQual: QualAny,
		Dest: Destination{Type: DestLink, ID: "link-a"}, Tenant: 1})
	ts.Ensure(2).AddRoute(Route{DstMAC: mac, DstQual: QualExact, SrcQual: QualAny,
		Dest: Destination{Type: DestLink, ID: "link-b"}, Tenant: 2})

	d1, _, err := ts.Table(1).Lookup(ethernet.LocalMAC(9), mac)
	if err != nil || d1[0].ID != "link-a" {
		t.Fatalf("tenant 1 lookup: %v %v", d1, err)
	}
	d2, _, err := ts.Table(2).Lookup(ethernet.LocalMAC(9), mac)
	if err != nil || d2[0].ID != "link-b" {
		t.Fatalf("tenant 2 lookup: %v %v", d2, err)
	}
	// The default tenant has no such route: fail closed.
	if _, _, err := ts.Default().Lookup(ethernet.LocalMAC(9), mac); err != ErrNoRoute {
		t.Fatalf("default tenant leaked a tenant route: %v", err)
	}
	// Unknown tenant: no table at all.
	if ts.Table(99) != nil {
		t.Fatal("unknown tenant returned a table")
	}
}

func TestTenantsDefaultAndIDs(t *testing.T) {
	ts := NewTenants()
	if ts.Default() == nil || ts.Table(DefaultTenant) != ts.Default() {
		t.Fatal("default tenant table missing")
	}
	ts.Ensure(5)
	ts.Ensure(3)
	if same := ts.Ensure(5); same != ts.Table(5) {
		t.Fatal("Ensure not idempotent")
	}
	ids := ts.IDs()
	if len(ids) != 3 || ids[0] != 0 || ids[1] != 3 || ids[2] != 5 {
		t.Fatalf("IDs: %v", ids)
	}
	var visited []uint32
	ts.Each(func(id uint32, tbl *Table) {
		if tbl == nil {
			t.Fatalf("nil table for tenant %d", id)
		}
		visited = append(visited, id)
	})
	if len(visited) != 3 {
		t.Fatalf("Each visited %v", visited)
	}
}

func TestRouteTenantString(t *testing.T) {
	r := Route{DstQual: QualAny, SrcQual: QualAny,
		Dest: Destination{Type: DestLink, ID: "l"}, Tenant: 7}
	if s := r.String(); s == "" || !contains(s, "[tenant 7]") {
		t.Fatalf("String: %q", s)
	}
	r.Tenant = 0
	if contains(r.String(), "tenant") {
		t.Fatalf("default tenant leaked into String: %q", r.String())
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
