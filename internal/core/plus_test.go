package core_test

import (
	"testing"

	"vnetp/internal/core"
	"vnetp/internal/lab"
	"vnetp/internal/microbench"
	"vnetp/internal/phys"
	"vnetp/internal/sim"
)

func TestPlusParams(t *testing.T) {
	p := core.PlusParams()
	if !p.OptimisticInterrupts || !p.CutThrough {
		t.Fatal("PlusParams must enable both VNET/P+ techniques")
	}
	// Everything else stays at Table 1.
	if p.Mode != core.Adaptive || p.NDispatchers != 1 {
		t.Fatal("PlusParams changed unrelated defaults")
	}
}

// The VNET/P+ techniques must strictly improve on plain VNET/P in both
// dimensions (the follow-on paper's result: near-native 10G throughput,
// latency overhead down from 2-3x to 1.2-1.3x).
func TestPlusBeatsPlainVNETP(t *testing.T) {
	mk := func(p core.Params) *lab.Testbed {
		return lab.NewVNETPTestbed(sim.New(), lab.Config{Dev: phys.Eth10G, N: 2, Params: p})
	}
	wj := microbench.StreamWriteFor(lab.GuestMTUFor(phys.Eth10G))

	plainTCP := microbench.TTCPStream(mk(core.DefaultParams()), 0, 1, wj, 8<<20)
	plusTCP := microbench.TTCPStream(mk(core.PlusParams()), 0, 1, wj, 8<<20)
	natTCP := microbench.TTCPStream(lab.NewNativeTestbed(sim.New(), phys.Eth10G, 2), 0, 1, wj, 8<<20)
	t.Logf("TCP: native %.0f, VNET/P %.0f, VNET/P+ %.0f MB/s", natTCP/1e6, plainTCP/1e6, plusTCP/1e6)
	if plusTCP <= plainTCP*1.1 {
		t.Errorf("VNET/P+ TCP %.0f MB/s not clearly above plain %.0f", plusTCP/1e6, plainTCP/1e6)
	}
	if r := plusTCP / natTCP; r < 0.8 {
		t.Errorf("VNET/P+ at %.0f%% of native, want near-native (>80%%)", r*100)
	}

	plainRTT := microbench.PingRTT(mk(core.DefaultParams()), 0, 1, 56, 10)
	plusRTT := microbench.PingRTT(mk(core.PlusParams()), 0, 1, 56, 10)
	natRTT := microbench.PingRTT(lab.NewNativeTestbed(sim.New(), phys.Eth10G, 2), 0, 1, 56, 10)
	t.Logf("RTT: native %v, VNET/P %v, VNET/P+ %v", natRTT, plainRTT, plusRTT)
	if plusRTT >= plainRTT {
		t.Error("VNET/P+ did not reduce latency")
	}
	r := float64(plusRTT) / float64(natRTT)
	if r < 1.1 || r > 2.3 {
		t.Errorf("VNET/P+ latency ratio %.2f, want ~1.2-2 (follow-on paper: 1.2-1.3)", r)
	}
}

// Cut-through alone must lift the memory-bus ceiling; optimistic
// interrupts alone must cut latency. Each technique pulls its own
// weight.
func TestPlusTechniquesIndependent(t *testing.T) {
	mk := func(p core.Params) *lab.Testbed {
		return lab.NewVNETPTestbed(sim.New(), lab.Config{Dev: phys.Eth10G, N: 2, Params: p})
	}
	cutOnly := core.DefaultParams()
	cutOnly.CutThrough = true
	optOnly := core.DefaultParams()
	optOnly.OptimisticInterrupts = true

	baseUDP := microbench.TTCPUDP(mk(core.DefaultParams()), 0, 1, 8900, 10e6)
	cutUDP := microbench.TTCPUDP(mk(cutOnly), 0, 1, 8900, 10e6)
	if cutUDP <= baseUDP*1.05 {
		t.Errorf("cut-through alone: %.0f -> %.0f MB/s, want a clear gain", baseUDP/1e6, cutUDP/1e6)
	}

	baseRTT := microbench.PingRTT(mk(core.DefaultParams()), 0, 1, 56, 10)
	optRTT := microbench.PingRTT(mk(optOnly), 0, 1, 56, 10)
	if optRTT >= baseRTT-10e3 { // at least 10us better
		t.Errorf("optimistic interrupts alone: RTT %v -> %v, want >=10us better", baseRTT, optRTT)
	}
}
