package logging_test

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"vnetp/internal/logging"
)

func TestNewTextAndJSON(t *testing.T) {
	var buf bytes.Buffer
	lg, err := logging.New(&buf, "info", "text")
	if err != nil {
		t.Fatal(err)
	}
	lg.Debug("hidden")
	lg.Info("hello", "k", "v")
	if out := buf.String(); strings.Contains(out, "hidden") || !strings.Contains(out, "k=v") {
		t.Fatalf("text output:\n%s", out)
	}

	buf.Reset()
	lg, err = logging.New(&buf, "debug", "json")
	if err != nil {
		t.Fatal(err)
	}
	lg.Debug("traced", "trace_id", "0001000000000001")
	var rec map[string]any
	if err := json.Unmarshal(buf.Bytes(), &rec); err != nil {
		t.Fatalf("not JSON: %v\n%s", err, buf.String())
	}
	if rec["msg"] != "traced" || rec["trace_id"] != "0001000000000001" {
		t.Fatalf("json record: %v", rec)
	}
}

func TestNewRejectsUnknown(t *testing.T) {
	if _, err := logging.New(nil, "loud", "text"); err == nil {
		t.Fatal("bad level accepted")
	}
	if _, err := logging.New(nil, "info", "xml"); err == nil {
		t.Fatal("bad format accepted")
	}
}

func TestDiscard(t *testing.T) {
	lg := logging.Discard()
	lg.Info("dropped")
	lg.With("a", 1).WithGroup("g").Error("also dropped")
}
