// Package logging builds the structured loggers the daemons and the
// overlay datapath share: log/slog with a level and format chosen on
// the command line (-log-level, -log-format), plus a zero-cost discard
// logger for components that were handed none.
package logging

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"strings"
)

// New returns a slog.Logger writing to w at the given level ("debug",
// "info", "warn", "error") in the given format ("text" or "json").
func New(w io.Writer, level, format string) (*slog.Logger, error) {
	var lv slog.Level
	switch strings.ToLower(level) {
	case "", "info":
		lv = slog.LevelInfo
	case "debug":
		lv = slog.LevelDebug
	case "warn", "warning":
		lv = slog.LevelWarn
	case "error":
		lv = slog.LevelError
	default:
		return nil, fmt.Errorf("logging: unknown level %q (debug|info|warn|error)", level)
	}
	opts := &slog.HandlerOptions{Level: lv}
	switch strings.ToLower(format) {
	case "", "text":
		return slog.New(slog.NewTextHandler(w, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(w, opts)), nil
	default:
		return nil, fmt.Errorf("logging: unknown format %q (text|json)", format)
	}
}

// Discard returns a logger that drops everything. (slog.DiscardHandler
// needs a newer Go than go.mod pins, so this hand-rolls the handler.)
func Discard() *slog.Logger {
	return slog.New(discardHandler{})
}

type discardHandler struct{}

func (discardHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (discardHandler) Handle(context.Context, slog.Record) error { return nil }
func (discardHandler) WithAttrs([]slog.Attr) slog.Handler        { return discardHandler{} }
func (discardHandler) WithGroup(string) slog.Handler             { return discardHandler{} }
