package experiments

import (
	"fmt"
	"math"
	"runtime"
	"time"

	"vnetp/internal/core"
	"vnetp/internal/ethernet"
	"vnetp/internal/overlay"
)

// traceBenchFrames is the per-configuration frame count for the live
// trace-sampling sweep: large enough to amortize startup, small enough
// to keep `make bench-json` quick.
const traceBenchFrames = 60000

// CollectTraceBench measures the live overlay transmit path with the
// trace sampler off, at 1-in-1024, and at 1-in-16, and emits the sampled
// throughputs as percentages of the untraced run. Ratios (unit "%") are
// machine-independent, so benchguard can gate them against a committed
// baseline where absolute live-socket MB/s figures would be noise.
func CollectTraceBench() []Record {
	// One discarded pass absorbs first-run costs (socket setup, page
	// faults, JIT-warm scheduler state) that would otherwise penalize
	// whichever configuration runs first and skew the ratios.
	if _, err := traceBenchThroughput(0); err != nil {
		// A sandboxed runner without loopback UDP shouldn't fail the
		// whole bench run; emit nothing and let benchguard flag the
		// missing series.
		return nil
	}
	// Each round measures all three configurations back to back and
	// yields per-round sampled/off ratios. Pairing within a round
	// cancels the slow machine-state drift (frequency scaling,
	// allocator warmup) that makes absolute loopback throughput
	// unstable. The reported value is the MAX ratio across rounds,
	// capped at 100: sampling overhead only ever pushes the ratio down
	// while scheduler noise pushes it both ways, so the best paired
	// round is the cleanest view of the true overhead — a genuine
	// regression drags every round down and still moves the max.
	const rounds = 5
	var r1024, r16 []float64
	for round := 0; round < rounds; round++ {
		off, err := traceBenchThroughput(0)
		if err != nil || off <= 0 {
			return nil
		}
		tp1024, err := traceBenchThroughput(1024)
		if err != nil {
			return nil
		}
		tp16, err := traceBenchThroughput(16)
		if err != nil {
			return nil
		}
		r1024 = append(r1024, tp1024/off*100)
		r16 = append(r16, tp16/off*100)
	}
	return []Record{
		{ID: "tracebench", Metric: "throughput_ratio_1in1024_pct",
			Value: bestRatio(r1024), Unit: "%"},
		{ID: "tracebench", Metric: "throughput_ratio_1in16_pct",
			Value: bestRatio(r16), Unit: "%"},
	}
}

// bestRatio returns the largest ratio, capped at 100%: a sampled run
// can only genuinely be as fast as the untraced one, so anything above
// 100 is noise in the off run's favor.
func bestRatio(vs []float64) float64 {
	best := 0.0
	for _, v := range vs {
		if v > best {
			best = v
		}
	}
	return math.Min(best, 100)
}

// traceBenchThroughput pushes traceBenchFrames 1300-byte frames through
// a real two-node loopback overlay with the given sampling rate on the
// sender and returns the achieved transmit throughput in MB/s (measured
// at the sender's wire boundary, window-paced like the benchmark twin
// BenchmarkOverlayTraceSampling).
func traceBenchThroughput(sample uint64) (float64, error) {
	na, err := overlay.NewNodeWithConfig("bench-a", "127.0.0.1:0", overlay.NodeConfig{
		TraceSample: sample, QueueDepth: 8192,
	})
	if err != nil {
		return 0, err
	}
	defer na.Close()
	nb, err := overlay.NewNodeWithConfig("bench-b", "127.0.0.1:0", overlay.NodeConfig{
		QueueDepth: 8192,
	})
	if err != nil {
		return 0, err
	}
	defer nb.Close()
	macA, macB := ethernet.LocalMAC(1), ethernet.LocalMAC(2)
	epA, err := na.AttachEndpoint("nic0", macA, ethernet.JumboMTU)
	if err != nil {
		return 0, err
	}
	if _, err := nb.AttachEndpoint("nic0", macB, ethernet.JumboMTU); err != nil {
		return 0, err
	}
	if err := na.AddLink("to-b", nb.Addr(), "udp"); err != nil {
		return 0, err
	}
	na.AddRoute(core.Route{DstMAC: macB, DstQual: core.QualExact, SrcQual: core.QualAny,
		Dest: core.Destination{Type: core.DestLink, ID: "to-b"}})

	const payloadLen = 1300
	const window = 1024
	f := &ethernet.Frame{
		Dst: macB, Src: macA, Type: ethernet.TypeTest,
		Payload: make([]byte, payloadLen),
	}
	start := time.Now()
	var sent uint64
	for i := 0; i < traceBenchFrames; i++ {
		for sent-na.EncapSent.Load() >= window {
			runtime.Gosched()
		}
		if err := epA.Send(f); err != nil {
			return 0, err
		}
		sent++
	}
	deadline := time.Now().Add(20 * time.Second)
	for na.EncapSent.Load() < sent {
		if time.Now().After(deadline) {
			return 0, fmt.Errorf("tracebench: stalled at %d of %d frames", na.EncapSent.Load(), sent)
		}
		runtime.Gosched()
	}
	elapsed := time.Since(start).Seconds()
	if elapsed <= 0 {
		return 0, fmt.Errorf("tracebench: zero elapsed time")
	}
	return float64(traceBenchFrames) * payloadLen / elapsed / 1e6, nil
}
