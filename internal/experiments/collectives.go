package experiments

import (
	"fmt"
	"io"

	"vnetp/internal/core"
	"vnetp/internal/hpcc"
	"vnetp/internal/lab"
	"vnetp/internal/netstack"
	"vnetp/internal/phys"
	"vnetp/internal/sim"
)

func init() {
	register("collectives", "MPI collective completion times: Native vs VNET/P vs VNET/P+ (supports the Fig 14 analysis)", runCollectives)
}

func runCollectives(w io.Writer) error {
	const (
		hosts = 4
		perVM = 4
		size  = 8192
		reps  = 8
	)
	measure := func(kind string) []hpcc.CollectiveResult {
		e := sim.New()
		var base []*netstack.Stack
		switch kind {
		case "native":
			base = lab.NewNativeTestbed(e, phys.Eth10G, hosts).Stacks
		case "vnetp":
			base = lab.NewVNETPTestbed(e, lab.Config{Dev: phys.Eth10G, N: hosts, Params: core.DefaultParams()}).Stacks
		case "vnetp+":
			base = lab.NewVNETPTestbed(e, lab.Config{Dev: phys.Eth10G, N: hosts, Params: core.PlusParams()}).Stacks
		}
		var ranks []*netstack.Stack
		for i := 0; i < hosts; i++ {
			for k := 0; k < perVM; k++ {
				ranks = append(ranks, base[i])
			}
		}
		return hpcc.Collectives(e, ranks, size, reps)
	}
	nat := measure("native")
	vnp := measure("vnetp")
	vpp := measure("vnetp+")
	fmt.Fprintf(w, "%d ranks (%d hosts x %d), %d-byte payloads, 10G:\n", hosts*perVM, hosts, perVM, size)
	fmt.Fprintf(w, "%-12s %12s %12s %12s %10s\n", "collective", "Native", "VNET/P", "VNET/P+", "P/native")
	for i := range nat {
		fmt.Fprintf(w, "%-12s %9.1fus %9.1fus %9.1fus %9.2fx\n",
			nat[i].Op, us(nat[i].PerOp), us(vnp[i].PerOp), us(vpp[i].PerOp),
			float64(vnp[i].PerOp)/float64(nat[i].PerOp))
	}
	return nil
}
