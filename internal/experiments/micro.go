package experiments

import (
	"fmt"
	"io"
	"time"

	"vnetp/internal/core"
	"vnetp/internal/lab"
	"vnetp/internal/microbench"
	"vnetp/internal/phys"
	"vnetp/internal/sim"
	"vnetp/internal/vnetu"
)

// Simulated measurement windows (the paper uses 60 s runs; goodput is a
// rate, so shorter steady-state windows give the same numbers).
const (
	udpWindow = 20 * time.Millisecond
	tcpBytes  = 8 << 20
)

func init() {
	register("fig5", "receive throughput vs dispatcher cores (1500B, 10G)", runFig5)
	register("fig8", "TCP throughput / UDP goodput: Native, VNET/U, VNET/P x 1G/10G", runFig8)
	register("fig9", "end-to-end round-trip latency vs ICMP payload", runFig9)
	register("vnetu", "VNET/U baseline evolution (Sect. 5.2 text)", runVNETU)
	register("table1", "VNET/P tuning parameters (Table 1)", runTable1)
}

// fig5Row is one point of the dispatcher-scaling curve.
type fig5Row struct {
	Cores   int
	Goodput float64 // bits/s
}

// measureFig5 runs the receive-throughput scaling sweep: the VMM-side
// VNET/P components spread over 1..4 cores, 1500-byte MTU.
func measureFig5() []fig5Row {
	var rows []fig5Row
	for cores := 1; cores <= 4; cores++ {
		p := core.DefaultParams()
		p.Mode = core.VMMDriven
		p.RoundRobinDispatch = true
		shared := false
		switch cores {
		case 1:
			p.NDispatchers = 1
			shared = true // bridge and dispatcher share the single core
		default:
			p.NDispatchers = cores - 1
		}
		tb := lab.NewVNETPTestbed(sim.New(), lab.Config{
			Dev: phys.Eth10GStd, N: 2, Params: p, BridgeSharesDispatcher: shared,
		})
		rows = append(rows, fig5Row{Cores: cores, Goodput: microbench.TTCPUDP(tb, 0, 1, 64000, udpWindow)})
	}
	return rows
}

func runFig5(w io.Writer) error {
	fmt.Fprintf(w, "%-8s %14s\n", "cores", "UDP goodput")
	for _, r := range measureFig5() {
		fmt.Fprintf(w, "%-8d %11.0f MB/s\n", r.Cores, mbps(r.Goodput))
	}
	return nil
}

// fig8Row is one bar pair of the throughput chart.
type fig8Row struct {
	Label    string
	TCP, UDP float64 // bits/s
}

// measureFig8 runs the throughput bar chart configurations.
func measureFig8() []fig8Row {
	type cfg struct {
		label string
		tb    func() *lab.Testbed
		write int
	}
	std := 64 << 10
	jumboWrite := microbench.StreamWriteFor(lab.GuestMTUFor(phys.Eth10G))
	cfgs := []cfg{
		{"Native-1G", func() *lab.Testbed { return nativePair(phys.Eth1G) }, std},
		{"VNET/U-1G (Palacios tap)", func() *lab.Testbed {
			return lab.NewVNETUTestbed(sim.New(), phys.Eth1G, 2, vnetu.PalaciosTap)
		}, std},
		{"VNET/P-1G", func() *lab.Testbed { return vnetpPair(phys.Eth1G) }, std},
		{"Native-10G (MTU 1500)", func() *lab.Testbed { return nativePair(phys.Eth10GStd) }, std},
		{"VNET/P-10G (MTU 1500)", func() *lab.Testbed { return vnetpPair(phys.Eth10GStd) }, std},
		{"Native-10G (MTU 9000)", func() *lab.Testbed { return nativePair(phys.Eth10G) }, jumboWrite},
		{"VNET/P-10G (MTU 9000)", func() *lab.Testbed { return vnetpPair(phys.Eth10G) }, jumboWrite},
	}
	var rows []fig8Row
	for _, c := range cfgs {
		tcp := microbench.TTCPStream(c.tb(), 0, 1, c.write, tcpBytes)
		udpWrite := c.write
		if udpWrite > 60000 {
			udpWrite = 8900
		}
		udp := microbench.TTCPUDP(c.tb(), 0, 1, udpWrite, udpWindow)
		rows = append(rows, fig8Row{Label: c.label, TCP: tcp, UDP: udp})
	}
	return rows
}

func runFig8(w io.Writer) error {
	fmt.Fprintf(w, "%-26s %12s %12s\n", "configuration", "TCP", "UDP")
	for _, r := range measureFig8() {
		fmt.Fprintf(w, "%-26s %7.0f MB/s %7.0f MB/s\n", r.Label, mbps(r.TCP), mbps(r.UDP))
	}
	return nil
}

// fig9Row is one payload size's RTT across the four networks.
type fig9Row struct {
	Size                                   int
	Native1G, VNETP1G, Native10G, VNETP10G time.Duration
}

// measureFig9 runs the ping RTT vs ICMP payload sweep on both networks.
func measureFig9() []fig9Row {
	var rows []fig9Row
	for _, size := range []int{56, 256, 1024, 4096, 8192} {
		rows = append(rows, fig9Row{
			Size:      size,
			Native1G:  microbench.PingRTT(nativePair(phys.Eth1G), 0, 1, size, 10),
			VNETP1G:   microbench.PingRTT(vnetpPair(phys.Eth1G), 0, 1, size, 10),
			Native10G: microbench.PingRTT(nativePair(phys.Eth10G), 0, 1, size, 10),
			VNETP10G:  microbench.PingRTT(vnetpPair(phys.Eth10G), 0, 1, size, 10),
		})
	}
	return rows
}

func runFig9(w io.Writer) error {
	fmt.Fprintf(w, "%-8s %14s %14s %14s %14s\n", "size", "Native-1G", "VNET/P-1G", "Native-10G", "VNET/P-10G")
	for _, r := range measureFig9() {
		fmt.Fprintf(w, "%-8d %11.1fus %11.1fus %11.1fus %11.1fus\n",
			r.Size, us(r.Native1G), us(r.VNETP1G), us(r.Native10G), us(r.VNETP10G))
	}
	return nil
}

// runVNETU: the Sect. 5.2 VNET/U measurements (71 MB/s Palacios tap,
// 35 MB/s VMware tap, +0.88 ms latency).
func runVNETU(w io.Writer) error {
	pal := lab.NewVNETUTestbed(sim.New(), phys.Eth1G, 2, vnetu.PalaciosTap)
	palTCP := microbench.TTCPStream(pal, 0, 1, 64<<10, 2<<20)
	vmw := lab.NewVNETUTestbed(sim.New(), phys.Eth1G, 2, vnetu.VMwareTap)
	vmwTCP := microbench.TTCPStream(vmw, 0, 1, 64<<10, 2<<20)
	nat := microbench.PingRTT(nativePair(phys.Eth1G), 0, 1, 56, 10)
	palL := lab.NewVNETUTestbed(sim.New(), phys.Eth1G, 2, vnetu.PalaciosTap)
	vuRTT := microbench.PingRTT(palL, 0, 1, 56, 10)
	// The historical data point: VMware GSX 2.5 on dual 2.0 GHz Xeons.
	gsx := lab.NewVNETUTestbedModel(sim.New(), phys.Eth1G, 2, vnetu.VMwareTap, phys.ModelGSXEra())
	gsxTCP := microbench.TTCPStream(gsx, 0, 1, 64<<10, 1<<20)
	gsxL := lab.NewVNETUTestbedModel(sim.New(), phys.Eth1G, 2, vnetu.VMwareTap, phys.ModelGSXEra())
	gsxRTT := microbench.PingRTT(gsxL, 0, 1, 56, 10)

	fmt.Fprintf(w, "VNET/U on GSX-era hardware: %.1f MB/s, +%.2f ms (paper 2005: 21.5 MB/s, +1 ms)\n",
		mbps(gsxTCP), (gsxRTT-nat).Seconds()*1e3)
	fmt.Fprintf(w, "VNET/U on Palacios (custom tap): %.1f MB/s   (paper: 71 MB/s)\n", mbps(palTCP))
	fmt.Fprintf(w, "VNET/U on VMware (host-only tap): %.1f MB/s  (paper: 35 MB/s)\n", mbps(vmwTCP))
	fmt.Fprintf(w, "VNET/U latency overhead: +%.2f ms            (paper: +0.88 ms)\n",
		(vuRTT-nat).Seconds()*1e3)
	return nil
}

// runTable1 prints the default tuning parameters, which tests assert
// against the paper's Table 1.
func runTable1(w io.Writer) error {
	p := core.DefaultParams()
	fmt.Fprintf(w, "Mode:            %v\n", p.Mode)
	fmt.Fprintf(w, "alpha_l:         %.0f packets/s\n", p.AlphaL)
	fmt.Fprintf(w, "alpha_u:         %.0f packets/s\n", p.AlphaU)
	fmt.Fprintf(w, "omega:           %v\n", p.Omega)
	fmt.Fprintf(w, "n_dispatchers:   %d\n", p.NDispatchers)
	fmt.Fprintf(w, "yield strategy:  %v\n", p.Yield)
	return nil
}
