package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"time"

	"vnetp/internal/core"
	"vnetp/internal/ethernet"
	"vnetp/internal/overlay"
)

// The diag bench measures the one-shot snapshot bundle's render cost on
// a node carrying realistic state (endpoints, flows, a populated drop
// ledger and heavy-hitter set): assembling the DiagBundle, and
// assembling plus JSON-encoding it — the full GET /diag service cost.
// Operators scrape /diag on demand, not on a tight loop, so the records
// deliberately use units benchguard does not gate ("us", "bytes"): the
// figures are tracked for context, and a pathological regression shows
// up in review of the JSON artifact rather than flaking CI on loopback
// machine noise.
const (
	diagBenchFlows   = 256 // distinct flows populating the stats table and top-k
	diagBenchRenders = 50
)

// CollectDiagBench measures bundle render and encode cost. Like the
// other live-datapath collectors, it returns nil rather than failing
// the whole bench run on a sandboxed host without loopback sockets.
func CollectDiagBench() []Record {
	n, err := overlay.NewNodeWithConfig("diagbench", "127.0.0.1:0", overlay.NodeConfig{})
	if err != nil {
		return nil
	}
	defer n.Close()
	src, err := n.AttachEndpoint("src", ethernet.LocalMAC(1), 1500)
	if err != nil {
		return nil
	}
	dst, err := n.AttachEndpoint("dst", ethernet.LocalMAC(2), 1500)
	if err != nil {
		return nil
	}
	// Populate: many distinct flows (stats table + heavy hitters), plus
	// some ledger entries via unrouted destinations.
	for i := 0; i < diagBenchFlows; i++ {
		f := &ethernet.Frame{Dst: dst.MAC(), Src: ethernet.LocalMAC(uint32(100 + i)),
			Type: ethernet.TypeTest, Payload: make([]byte, 64+i%512)}
		if err := src.Send(f); err != nil {
			return nil
		}
		dst.TryRecv()
		if i%8 == 0 {
			src.Send(&ethernet.Frame{Dst: ethernet.LocalMAC(0xffff), Src: src.MAC(),
				Type: ethernet.TypeTest, Payload: []byte("drop")})
		}
	}
	_ = core.DefaultTenant // tenant 0 carries the bench traffic

	enc := json.NewEncoder(io.Discard)
	var bundleBytes int
	render := func(encode bool) float64 {
		start := time.Now()
		for i := 0; i < diagBenchRenders; i++ {
			b := n.Diag()
			if encode {
				if err := enc.Encode(&b); err != nil {
					return 0
				}
			}
		}
		return time.Since(start).Seconds() * 1e6 / diagBenchRenders
	}
	renderUS := render(false)
	encodeUS := render(true)
	if blob, err := json.Marshal(n.Diag()); err == nil {
		bundleBytes = len(blob)
	}
	if renderUS <= 0 || encodeUS <= 0 {
		return nil
	}
	return []Record{
		{ID: "diagbench", Metric: "bundle_render_us", Value: renderUS, Unit: "us"},
		{ID: "diagbench", Metric: "bundle_render_encode_us", Value: encodeUS, Unit: "us"},
		{ID: "diagbench", Metric: fmt.Sprintf("bundle_size_%d_flows", diagBenchFlows),
			Value: float64(bundleBytes), Unit: "bytes"},
	}
}
