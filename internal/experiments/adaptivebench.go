package experiments

import (
	"fmt"
	"runtime"
	"time"

	"vnetp/internal/core"
	"vnetp/internal/ethernet"
	"vnetp/internal/overlay"
)

// The adaptive-dispatch sweep measures the paper's Table 1 claim on the
// live datapath: an adaptive link should match the latency-optimized
// static configuration (batch=1) when idle AND the throughput-optimized
// one (batch=32) when loaded. Both claims are emitted as
// machine-independent percentage ratios benchguard can gate:
//
//	idle_latency_ratio_pct   = batch1 latency / adaptive latency × 100
//	loaded_throughput_ratio_pct = adaptive MB/s / batch32 MB/s × 100
//
// 100% means "as good as the specialist mode"; a controller regression
// (stuck in the wrong mode, flappy switching) drags the affected ratio
// down. Absolute figures ride along for context but deliberately use
// units benchguard does not gate ("us", "MBps") — loopback absolutes
// are machine noise; only the ratios carry the gate.
const (
	adaptiveBenchFrames  = 40000 // loaded-phase frames per configuration
	adaptiveBenchPings   = 200   // idle-phase one-way samples
	adaptiveBenchPayload = 200
)

// adaptiveBenchConfig names one sender configuration in the sweep.
type adaptiveBenchConfig struct {
	label string
	cfg   overlay.NodeConfig
}

func adaptiveBenchConfigs() []adaptiveBenchConfig {
	batched := func(adaptive bool) overlay.NodeConfig {
		return overlay.NodeConfig{
			TxBatch: 32, TxRing: 4096, TxFlushTimeout: 200 * time.Microsecond,
			Adaptive: overlay.AdaptiveConfig{Enabled: adaptive},
		}
	}
	return []adaptiveBenchConfig{
		{"batch1", overlay.NodeConfig{TxBatch: 1}},
		{"adaptive", batched(true)},
		{"batch32", batched(false)},
	}
}

// CollectAdaptiveBench runs the adaptive-dispatch sweep and returns the
// gated ratio records plus info-only absolute figures. Like
// CollectTraceBench, it pairs configurations within a round to cancel
// machine drift, reports the best round (capped at 100%), and returns
// nil rather than failing the whole bench run on a sandboxed host
// without loopback sockets.
func CollectAdaptiveBench() []Record {
	// Warm-up pass absorbs first-run socket and scheduler costs.
	if _, _, err := adaptiveBenchPair(adaptiveBenchConfigs()[0].cfg); err != nil {
		return nil
	}
	const rounds = 3
	var latRatios, tpRatios []float64
	var lastLat, lastTP [3]float64
	for round := 0; round < rounds; round++ {
		var lats, tps [3]float64
		for i, c := range adaptiveBenchConfigs() {
			lat, tp, err := adaptiveBenchPair(c.cfg)
			if err != nil {
				return nil
			}
			lats[i], tps[i] = lat, tp
		}
		if lats[1] <= 0 || tps[2] <= 0 {
			return nil
		}
		latRatios = append(latRatios, lats[0]/lats[1]*100) // batch1 / adaptive
		tpRatios = append(tpRatios, tps[1]/tps[2]*100)     // adaptive / batch32
		lastLat, lastTP = lats, tps
	}
	recs := []Record{
		{ID: "adaptivebench", Metric: "idle_latency_ratio_pct",
			Value: bestRatio(latRatios), Unit: "%"},
		{ID: "adaptivebench", Metric: "loaded_throughput_ratio_pct",
			Value: bestRatio(tpRatios), Unit: "%"},
	}
	for i, c := range adaptiveBenchConfigs() {
		recs = append(recs,
			Record{ID: "adaptivebench", Metric: "idle_latency_" + c.label,
				Value: lastLat[i], Unit: "us"},
			// "MBps", not "MB/s": benchguard gates the latter, and an
			// absolute loopback figure must stay informational.
			Record{ID: "adaptivebench", Metric: "loaded_throughput_" + c.label,
				Value: lastTP[i], Unit: "MBps"})
	}
	return recs
}

// adaptiveBenchPair measures one sender configuration's two operating
// points over a real loopback pair: mean idle one-way latency in µs
// (paced at ~500 frames/s, under the default α_l, so an adaptive link
// holds latency mode) and loaded wire throughput in MB/s (window-paced
// blast, which drives an adaptive link into throughput mode).
func adaptiveBenchPair(cfg overlay.NodeConfig) (latUS, throughputMBs float64, err error) {
	na, err := overlay.NewNodeWithConfig("bench-a", "127.0.0.1:0", cfg)
	if err != nil {
		return 0, 0, err
	}
	defer na.Close()
	nb, err := overlay.NewNodeWithConfig("bench-b", "127.0.0.1:0", overlay.NodeConfig{
		QueueDepth: 8192,
	})
	if err != nil {
		return 0, 0, err
	}
	defer nb.Close()
	macA, macB := ethernet.LocalMAC(1), ethernet.LocalMAC(2)
	epA, err := na.AttachEndpoint("nic0", macA, ethernet.JumboMTU)
	if err != nil {
		return 0, 0, err
	}
	epB, err := nb.AttachEndpoint("nic0", macB, ethernet.JumboMTU)
	if err != nil {
		return 0, 0, err
	}
	if err := na.AddLink("to-b", nb.Addr(), "udp"); err != nil {
		return 0, 0, err
	}
	na.AddRoute(core.Route{DstMAC: macB, DstQual: core.QualExact, SrcQual: core.QualAny,
		Dest: core.Destination{Type: core.DestLink, ID: "to-b"}})

	f := &ethernet.Frame{
		Dst: macB, Src: macA, Type: ethernet.TypeTest,
		Payload: make([]byte, adaptiveBenchPayload),
	}

	// Idle phase: one-way latency, send → delivered, paced under α_l.
	var lat time.Duration
	for i := 0; i < adaptiveBenchPings; i++ {
		t0 := time.Now()
		if err := epA.Send(f); err != nil {
			return 0, 0, err
		}
		if _, ok := epB.Recv(5 * time.Second); !ok {
			return 0, 0, fmt.Errorf("adaptivebench: idle frame not delivered")
		}
		lat += time.Since(t0)
		time.Sleep(2 * time.Millisecond)
	}
	latUS = float64(lat.Microseconds()) / adaptiveBenchPings

	// Loaded phase: window-paced blast measured at the wire boundary.
	const window = 1024
	start := time.Now()
	base := na.EncapSent.Load()
	var sent uint64
	for i := 0; i < adaptiveBenchFrames; i++ {
		for sent-(na.EncapSent.Load()-base) >= window {
			runtime.Gosched()
		}
		if err := epA.Send(f); err != nil {
			return 0, 0, err
		}
		sent++
	}
	deadline := time.Now().Add(20 * time.Second)
	for na.EncapSent.Load()-base < sent {
		if time.Now().After(deadline) {
			return 0, 0, fmt.Errorf("adaptivebench: stalled at %d of %d frames",
				na.EncapSent.Load()-base, sent)
		}
		runtime.Gosched()
	}
	elapsed := time.Since(start).Seconds()
	if elapsed <= 0 {
		return 0, 0, fmt.Errorf("adaptivebench: zero elapsed time")
	}
	return latUS, float64(adaptiveBenchFrames) * adaptiveBenchPayload / elapsed / 1e6, nil
}
