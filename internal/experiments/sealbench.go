package experiments

import (
	"bytes"
	"fmt"
	"runtime"
	"time"

	"vnetp/internal/core"
	"vnetp/internal/ethernet"
	"vnetp/internal/overlay"
	"vnetp/internal/seal"
)

// The seal sweep answers "what does AES-GCM sealing cost on the live
// datapath?" for the two interesting frame sizes: the 64-byte minimum
// (per-packet overhead dominates — nonce accounting, the 12-byte seal
// extension, the 16-byte tag) and the 1500-byte Ethernet MTU (bulk
// cipher throughput dominates). Each round pairs a sealed run against a
// plaintext run of the same shape, so machine drift cancels and the
// gated record is a machine-independent ratio:
//
//	sealed_goodput_ratio_<size>_pct = sealed MB/s / plaintext MB/s × 100
//
// With AES-NI the bulk ratio should sit well above the gate; a cipher
// regression (per-frame allocation, lost in-place sealing, a lock on
// the nonce counter) drags it down. Absolute MB/s figures ride along
// under the ungated "MBps" unit.
const (
	sealBenchFrames = 20000
	sealBenchTenant = 7
)

var sealBenchSizes = []int{64, 1500}

// CollectSealBench runs the paired sealed-vs-plaintext goodput sweep.
// Like the other live sweeps it reports the best of three rounds
// (capped at 100%) and returns nil rather than failing the bench run on
// a sandboxed host without loopback sockets.
func CollectSealBench() []Record {
	// Warm-up pass absorbs first-run socket and key-schedule costs.
	if _, err := sealBenchRun(sealBenchSizes[0], true); err != nil {
		return nil
	}
	const rounds = 3
	var recs []Record
	for _, size := range sealBenchSizes {
		var ratios []float64
		var lastSealed, lastPlain float64
		for round := 0; round < rounds; round++ {
			sealed, err := sealBenchRun(size, true)
			if err != nil {
				return nil
			}
			plain, err := sealBenchRun(size, false)
			if err != nil || plain <= 0 {
				return nil
			}
			ratios = append(ratios, sealed/plain*100)
			lastSealed, lastPlain = sealed, plain
		}
		label := fmt.Sprintf("%db", size)
		recs = append(recs,
			Record{ID: "sealbench", Metric: "sealed_goodput_ratio_" + label + "_pct",
				Value: bestRatio(ratios), Unit: "%"},
			// "MBps", not "MB/s": loopback absolutes stay informational.
			Record{ID: "sealbench", Metric: "sealed_goodput_" + label,
				Value: lastSealed, Unit: "MBps"},
			Record{ID: "sealbench", Metric: "plain_goodput_" + label,
				Value: lastPlain, Unit: "MBps"},
		)
	}
	return recs
}

// sealBenchRun measures one-way goodput for payload-byte frames over a
// real loopback pair, sealed under a tenant key or plaintext. Both
// variants use the identical window-paced blast measured at the wire
// boundary, so the only difference between the paired runs is the AEAD.
func sealBenchRun(payload int, sealed bool) (throughputMBs float64, err error) {
	na, err := overlay.NewNodeWithConfig("sealbench-a", "127.0.0.1:0", overlay.NodeConfig{})
	if err != nil {
		return 0, err
	}
	defer na.Close()
	nb, err := overlay.NewNodeWithConfig("sealbench-b", "127.0.0.1:0", overlay.NodeConfig{
		QueueDepth: 8192,
	})
	if err != nil {
		return 0, err
	}
	defer nb.Close()

	tenant := uint32(core.DefaultTenant)
	if sealed {
		tenant = sealBenchTenant
		key := bytes.Repeat([]byte{0x5e}, seal.KeyLen)
		for _, n := range []*overlay.Node{na, nb} {
			if err := n.AddTenant(tenant, key); err != nil {
				return 0, err
			}
		}
	}
	macA, macB := ethernet.LocalMAC(1), ethernet.LocalMAC(2)
	epA, err := na.AttachEndpointTenant("nic0", macA, ethernet.JumboMTU, tenant)
	if err != nil {
		return 0, err
	}
	if _, err := nb.AttachEndpointTenant("nic0", macB, ethernet.JumboMTU, tenant); err != nil {
		return 0, err
	}
	if err := na.AddLinkTenant("to-b", nb.Addr(), "udp", tenant); err != nil {
		return 0, err
	}
	if err := na.AddRoute(core.Route{DstMAC: macB, DstQual: core.QualExact, SrcQual: core.QualAny,
		Dest: core.Destination{Type: core.DestLink, ID: "to-b"}, Tenant: tenant}); err != nil {
		return 0, err
	}

	f := &ethernet.Frame{
		Dst: macB, Src: macA, Type: ethernet.TypeTest,
		Payload: make([]byte, payload),
	}
	const window = 1024
	start := time.Now()
	base := na.EncapSent.Load()
	var sent uint64
	for i := 0; i < sealBenchFrames; i++ {
		for sent-(na.EncapSent.Load()-base) >= window {
			runtime.Gosched()
		}
		if err := epA.Send(f); err != nil {
			return 0, err
		}
		sent++
	}
	deadline := time.Now().Add(20 * time.Second)
	for na.EncapSent.Load()-base < sent {
		if time.Now().After(deadline) {
			return 0, fmt.Errorf("sealbench: stalled at %d of %d frames",
				na.EncapSent.Load()-base, sent)
		}
		runtime.Gosched()
	}
	elapsed := time.Since(start).Seconds()
	if elapsed <= 0 {
		return 0, fmt.Errorf("sealbench: zero elapsed time")
	}
	return float64(sealBenchFrames) * float64(payload) / elapsed / 1e6, nil
}
