package experiments

import (
	"fmt"
	"io"
	"time"

	"vnetp/internal/microbench"
	"vnetp/internal/phys"
)

func init() {
	register("fig7", "per-stage latency budget of the VNET/P datapath (Sect. 4.7)", runFig7)
}

// runFig7 prints the cost-model budget for one small packet crossing the
// full VNET/P datapath (the stages of the paper's Fig. 7), then validates
// the sum against the simulated one-way ping time.
func runFig7(w io.Writer) error {
	m := phys.DefaultModel()
	dev := phys.Eth10G
	const pkt = 124 // 56B ICMP body + transport header + Ethernet header
	wire := pkt + 54

	cp := func(n int) time.Duration {
		return time.Duration(float64(n) / m.CopyBytesPerSec * 1e9)
	}
	type stage struct {
		name string
		cost time.Duration
	}
	tx := []stage{
		{"guest stack + driver", m.GuestPerPacket + m.HostStackPerPacket + cp(pkt)},
		{"kick: VM exit/entry", m.VMExitEntry},
		{"packet dispatcher (route cache hit)", m.DispatchPerPacket},
		{"staging copy TXQ->bridge", cp(pkt)},
		{"bridge: encapsulation + bookkeeping", m.EncapPerPacket + m.BridgePerPacket},
		{"host stack send", m.HostStackPerPacket},
		{"DMA to NIC", cp(wire)},
		{"wire: serialize + propagate", dev.TxTime(wire)*2 + dev.BaseLatency},
	}
	rx := []stage{
		{"NIC interrupt", m.NICInterrupt},
		{"bridge: host stack + decapsulation", m.HostStackPerPacket + m.BridgePerPacket + m.EncapPerPacket},
		{"DMA from NIC", cp(pkt)},
		{"packet dispatcher", m.DispatchPerPacket},
		{"copy into RXQ", cp(pkt)},
		{"interrupt injection", m.InterruptInject},
		{"guest IRQ path (exit-amplified)", m.VMExitEntry + m.GuestIRQPath},
		{"guest driver + stack", m.GuestPerPacket + cp(pkt)},
	}
	var total time.Duration
	fmt.Fprintln(w, "transmission (paper Fig. 7 left):")
	for _, s := range tx {
		fmt.Fprintf(w, "  %-38s %8.2fus\n", s.name, us(s.cost))
		total += s.cost
	}
	fmt.Fprintln(w, "reception (paper Fig. 7 right):")
	for _, s := range rx {
		fmt.Fprintf(w, "  %-38s %8.2fus\n", s.name, us(s.cost))
		total += s.cost
	}
	fmt.Fprintf(w, "model one-way budget: %.1fus\n", us(total))

	measured := microbench.PingRTT(vnetpPair(dev), 0, 1, 56, 10) / 2
	fmt.Fprintf(w, "simulated one-way (ping RTT/2): %.1fus\n", us(measured))

	nat := []stage{
		{"host stack + copy", m.HostStackPerPacket + cp(pkt)},
		{"wire", dev.TxTime(pkt+14)*2 + dev.BaseLatency},
		{"NIC interrupt + receive", m.NICInterrupt + cp(pkt)},
	}
	var natTotal time.Duration
	for _, s := range nat {
		natTotal += s.cost
	}
	fmt.Fprintf(w, "native one-way budget for comparison: %.1fus\n", us(natTotal))
	return nil
}
