package experiments

import (
	"bytes"
	"encoding/json"
	"testing"
)

func TestSlug(t *testing.T) {
	cases := map[string]string{
		"Native-1G":                "native_1g",
		"VNET/U-1G (Palacios tap)": "vnet_u_1g_palacios_tap",
		"VNET/P-10G (MTU 9000)":    "vnet_p_10g_mtu_9000",
	}
	for in, want := range cases {
		if got := slug(in); got != want {
			t.Errorf("slug(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestWriteJSONShape(t *testing.T) {
	recs := []Record{{ID: "fig5", Metric: "udp_goodput_cores_1", Value: 773.5, Unit: "MB/s"}}
	var buf bytes.Buffer
	if err := WriteJSON(&buf, recs); err != nil {
		t.Fatal(err)
	}
	var back []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("output is not a JSON array: %v", err)
	}
	if len(back) != 1 {
		t.Fatalf("got %d records", len(back))
	}
	for _, key := range []string{"id", "metric", "value", "unit"} {
		if _, ok := back[0][key]; !ok {
			t.Errorf("record missing %q key: %v", key, back[0])
		}
	}
}
