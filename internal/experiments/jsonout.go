package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// Record is one machine-readable benchmark result: the JSON shape
// emitted by `vnetbench -json` and consumed by CI artifact tooling.
type Record struct {
	ID     string  `json:"id"`     // experiment, e.g. "fig8"
	Metric string  `json:"metric"` // one series within it, e.g. "tcp_native_1g"
	Value  float64 `json:"value"`
	Unit   string  `json:"unit"`
}

// slug reduces a human-facing configuration label to a metric-safe
// token: lowercase, runs of non-alphanumerics collapsed to "_".
func slug(label string) string {
	var b strings.Builder
	lastSep := true
	for _, r := range strings.ToLower(label) {
		switch {
		case r >= 'a' && r <= 'z' || r >= '0' && r <= '9':
			b.WriteRune(r)
			lastSep = false
		case !lastSep:
			b.WriteByte('_')
			lastSep = true
		}
	}
	return strings.TrimSuffix(b.String(), "_")
}

// CollectMicrobench runs the microbenchmark experiments (the fig5
// dispatcher sweep, the fig8 throughput chart, the fig9 latency sweep,
// the live trace-sampling ratio sweep) and returns their results as
// flat records.
func CollectMicrobench() []Record {
	var recs []Record
	for _, r := range measureFig5() {
		recs = append(recs, Record{
			ID: "fig5", Metric: fmt.Sprintf("udp_goodput_cores_%d", r.Cores),
			Value: mbps(r.Goodput), Unit: "MB/s",
		})
	}
	for _, r := range measureFig8() {
		recs = append(recs,
			Record{ID: "fig8", Metric: "tcp_" + slug(r.Label), Value: mbps(r.TCP), Unit: "MB/s"},
			Record{ID: "fig8", Metric: "udp_" + slug(r.Label), Value: mbps(r.UDP), Unit: "MB/s"},
		)
	}
	for _, r := range measureFig9() {
		for _, s := range []struct {
			net string
			rtt float64
		}{
			{"native_1g", us(r.Native1G)},
			{"vnet_p_1g", us(r.VNETP1G)},
			{"native_10g", us(r.Native10G)},
			{"vnet_p_10g", us(r.VNETP10G)},
		} {
			recs = append(recs, Record{
				ID: "fig9", Metric: fmt.Sprintf("rtt_%s_%db", s.net, r.Size),
				Value: s.rtt, Unit: "us",
			})
		}
	}
	recs = append(recs, CollectTraceBench()...)
	recs = append(recs, CollectAdaptiveBench()...)
	recs = append(recs, CollectSealBench()...)
	recs = append(recs, CollectFlowBench()...)
	recs = append(recs, CollectDiagBench()...)
	return recs
}

// WriteJSON emits records as an indented JSON array.
func WriteJSON(w io.Writer, recs []Record) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(recs)
}
