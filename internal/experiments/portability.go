package experiments

import (
	"fmt"
	"io"

	"vnetp/internal/core"
	"vnetp/internal/hpcc"
	"vnetp/internal/kitten"
	"vnetp/internal/lab"
	"vnetp/internal/microbench"
	"vnetp/internal/phys"
	"vnetp/internal/sim"
)

func init() {
	register("fig15", "HPCC latency-bandwidth over IPoIB (Sect. 6.1)", runFig15)
	register("fig16", "HPCC apps over IPoIB (Sect. 6.1)", runFig16)
	register("gemini", "ttcp over Cray Gemini IPoG (Sect. 6.2)", runGemini)
	register("kitten", "VNET/P for Kitten on InfiniBand (Sect. 6.3)", runKitten)
}

func defaultParams() core.Params { return core.DefaultParams() }

func runFig15(w io.Writer) error {
	// Out-of-the-box single-stream numbers the paper quotes first.
	ping := microbench.PingRTT(vnetpPair(phys.IPoIB), 0, 1, 56, 10)
	tcp := microbench.TTCPStream(vnetpPair(phys.IPoIB), 0, 1, 64<<10, tcpBytes)
	fmt.Fprintf(w, "VNET/P on IPoIB: ping %.0fus, ttcp %.2f Gbps  (paper: 155us, 3.6 Gbps)\n",
		us(ping), phys.BytesToGbps(tcp))

	fmt.Fprintf(w, "%-6s | %22s | %26s | %26s\n",
		"procs", "pingpong lat/bw", "natural ring lat/bw", "random ring lat/bw")
	for _, hosts := range []int{2, 4, 6} {
		engN := sim.New()
		nat := hpcc.LatBw(engN, mpiStacks(engN, phys.IPoIB, hosts, 4, false), 42)
		engV := sim.New()
		vnp := hpcc.LatBw(engV, mpiStacks(engV, phys.IPoIB, hosts, 4, true), 42)
		fmt.Fprintf(w, "%-6d | N %6.1fus %6.0fMB/s | N %6.1fus %8.0fMB/s | N %6.1fus %8.0fMB/s\n",
			hosts*4, us(nat.PingPongLat), mbps(nat.PingPongBwBps),
			us(nat.NaturalRingLat), mbps(nat.NaturalRingBw),
			us(nat.RandomRingLat), mbps(nat.RandomRingBw))
		fmt.Fprintf(w, "%-6s | V %6.1fus %6.0fMB/s | V %6.1fus %8.0fMB/s | V %6.1fus %8.0fMB/s\n",
			"", us(vnp.PingPongLat), mbps(vnp.PingPongBwBps),
			us(vnp.NaturalRingLat), mbps(vnp.NaturalRingBw),
			us(vnp.RandomRingLat), mbps(vnp.RandomRingBw))
	}
	return nil
}

func runFig16(w io.Writer) error {
	fmt.Fprintln(w, "(a) MPIRandomAccess over IPoIB")
	fmt.Fprintf(w, "%-6s %12s %12s %8s\n", "procs", "Native GUPs", "VNET/P GUPs", "ratio")
	for _, hosts := range []int{2, 4, 6} {
		engN := sim.New()
		nat := hpcc.RandomAccess(engN, mpiStacks(engN, phys.IPoIB, hosts, 4, false))
		engV := sim.New()
		vnp := hpcc.RandomAccess(engV, mpiStacks(engV, phys.IPoIB, hosts, 4, true))
		fmt.Fprintf(w, "%-6d %12.4f %12.4f %7.0f%%\n",
			hosts*4, nat.GUPs, vnp.GUPs, 100*vnp.GUPs/nat.GUPs)
	}
	fmt.Fprintln(w, "(b) MPIFFT over IPoIB")
	fmt.Fprintf(w, "%-6s %12s %12s %8s\n", "procs", "Native GF/s", "VNET/P GF/s", "ratio")
	for _, hosts := range []int{2, 4, 6} {
		engN := sim.New()
		nat := hpcc.FFT(engN, mpiStacks(engN, phys.IPoIB, hosts, 4, false))
		engV := sim.New()
		vnp := hpcc.FFT(engV, mpiStacks(engV, phys.IPoIB, hosts, 4, true))
		fmt.Fprintf(w, "%-6d %12.2f %12.2f %7.0f%%\n",
			hosts*4, nat.GFlops, vnp.GFlops, 100*vnp.GFlops/nat.GFlops)
	}
	return nil
}

func runGemini(w io.Writer) error {
	eng := sim.New()
	tb := lab.NewVNETPTestbed(eng, lab.Config{
		Dev: phys.Gemini, N: 2, Params: defaultParams(), Model: phys.ModelXK6(),
	})
	write := microbench.StreamWriteFor(lab.GuestMTUFor(phys.Gemini))
	tcp := microbench.TTCPStream(tb, 0, 1, write, tcpBytes)
	fmt.Fprintf(w, "VNET/P over IPoG: TCP %.2f GB/s (%.1f Gbps)   (paper: 1.6 GB/s, 13 Gbps)\n",
		tcp/1e9, phys.BytesToGbps(tcp))
	return nil
}

func runKitten(w io.Writer) error {
	engV := sim.New()
	vtb := kitten.NewTestbed(engV, 2)
	vtcp := microbench.TTCPStream(vtb, 0, 1, 8900, tcpBytes)
	engN := sim.New()
	ntb := kitten.NewNativeTestbed(engN, 2)
	ntcp := microbench.TTCPStream(ntb, 0, 1, 8900, tcpBytes)
	fmt.Fprintf(w, "Kitten VNET/P on IB: %.2f Gbps   (paper: 4.0 Gbps)\n", phys.BytesToGbps(vtcp))
	fmt.Fprintf(w, "Native IPoIB (RC):   %.2f Gbps   (paper: 6.5 Gbps)\n", phys.BytesToGbps(ntcp))
	return nil
}
