package experiments

import (
	"bytes"
	"strings"
	"testing"
)

func TestRegistryComplete(t *testing.T) {
	want := []string{
		"fig5", "fig7", "fig8", "fig9", "fig10", "fig11", "fig12", "fig13", "fig14",
		"fig15", "fig16", "gemini", "kitten", "vnetu", "table1", "vnetp-plus", "trace", "jitter", "collectives",
		"ablation-modes", "ablation-cache", "ablation-yield", "ablation-mtu",
	}
	have := map[string]bool{}
	for _, id := range IDs() {
		have[id] = true
	}
	for _, id := range want {
		if !have[id] {
			t.Errorf("experiment %q not registered", id)
		}
	}
}

func TestUnknownID(t *testing.T) {
	var buf bytes.Buffer
	if err := Run("nope", &buf); err == nil {
		t.Fatal("unknown experiment id accepted")
	}
}

// Each experiment runs and produces plausible output. The heavyweight
// ones are covered by the repository benchmarks; here we spot-check the
// fast ones plus the structure of the output.
func TestFastExperimentsProduceOutput(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments are slow")
	}
	for _, id := range []string{"table1", "vnetu", "gemini", "kitten", "fig5", "fig7", "trace", "jitter", "ablation-cache"} {
		var buf bytes.Buffer
		if err := Run(id, &buf); err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		out := buf.String()
		if len(out) < 40 {
			t.Errorf("%s: suspiciously short output:\n%s", id, out)
		}
		if !strings.Contains(out, "==") {
			t.Errorf("%s: missing header", id)
		}
	}
}

func TestTable1Content(t *testing.T) {
	var buf bytes.Buffer
	if err := Run("table1", &buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"adaptive", "1000 packets/s", "10000 packets/s", "5ms", "immediate"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("table1 output missing %q:\n%s", want, buf.String())
		}
	}
}

func TestKittenShape(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	var buf bytes.Buffer
	if err := Run("kitten", &buf); err != nil {
		t.Fatal(err)
	}
	t.Log(buf.String())
	// Both lines present; VNET/P below native.
	if !strings.Contains(buf.String(), "Kitten VNET/P") || !strings.Contains(buf.String(), "Native IPoIB") {
		t.Fatal("missing rows")
	}
}
