package experiments

import (
	"fmt"
	"io"
	"time"

	"vnetp/internal/core"
	"vnetp/internal/lab"
	"vnetp/internal/microbench"
	"vnetp/internal/phys"
	"vnetp/internal/sim"
)

func init() {
	register("ablation-modes", "guest-driven vs VMM-driven vs adaptive dispatch", runAblationModes)
	register("ablation-cache", "routing cache on vs off", runAblationCache)
	register("ablation-yield", "yield strategies: latency vs CPU", runAblationYield)
	register("ablation-mtu", "guest MTU sweep on 10G", runAblationMTU)
}

// runAblationModes quantifies Sect. 4.3's claim: guest-driven mode wins
// on latency, VMM-driven on throughput, adaptive gets both.
func runAblationModes(w io.Writer) error {
	fmt.Fprintf(w, "%-14s %14s %16s\n", "mode", "ping RTT", "TCP throughput")
	for _, mode := range []core.Mode{core.GuestDriven, core.VMMDriven, core.Adaptive} {
		p := core.DefaultParams()
		p.Mode = mode
		mk := func() *lab.Testbed {
			return lab.NewVNETPTestbed(sim.New(), lab.Config{Dev: phys.Eth10GStd, N: 2, Params: p})
		}
		rtt := microbench.PingRTT(mk(), 0, 1, 56, 10)
		tcp := microbench.TTCPStream(mk(), 0, 1, 64<<10, tcpBytes)
		fmt.Fprintf(w, "%-14s %11.1fus %11.0f MB/s\n", mode, us(rtt), mbps(tcp))
	}
	return nil
}

// runAblationCache shows the routing cache's contribution as the routing
// table grows (Sect. 4.3: linear scan vs constant-time cache hit).
func runAblationCache(w io.Writer) error {
	fmt.Fprintf(w, "%-10s %14s %14s\n", "routes", "cache on", "cache off")
	for _, extra := range []int{0, 64, 512, 4096} {
		rtts := make([]time.Duration, 2)
		for i, cacheOn := range []bool{true, false} {
			tb := vnetpPair(phys.Eth10G)
			for _, n := range tb.VNETP.Nodes {
				n.Core.Table.CacheEnabled = cacheOn
				// Pad the table with low-priority filler routes.
				for k := 0; k < extra; k++ {
					n.Core.Table.AddRoute(core.Route{
						DstMAC:  [6]byte{0xee, byte(k >> 16), byte(k >> 8), byte(k), 0, 1},
						DstQual: core.QualExact, SrcQual: core.QualAny,
						Dest: core.Destination{Type: core.DestLink, ID: "nowhere"},
					})
				}
			}
			rtts[i] = microbench.PingRTT(tb, 0, 1, 56, 10)
		}
		fmt.Fprintf(w, "%-10d %11.1fus %11.1fus\n", extra+3, us(rtts[0]), us(rtts[1]))
	}
	return nil
}

// runAblationYield compares the yield strategies (Sect. 4.8): immediate
// yield minimizes latency, timed yield minimizes dispatcher CPU burn.
func runAblationYield(w io.Writer) error {
	fmt.Fprintf(w, "%-12s %14s %18s\n", "strategy", "ping RTT", "thread CPU burn")
	for _, y := range []sim.YieldStrategy{sim.YieldImmediate, sim.YieldTimed, sim.YieldAdaptive} {
		p := core.DefaultParams()
		p.Yield = y
		p.TSleep = 100 * time.Microsecond
		p.TNoWork = 200 * time.Microsecond
		eng := sim.New()
		tb := lab.NewVNETPTestbed(eng, lab.Config{Dev: phys.Eth10G, N: 2, Params: p})
		node := tb.VNETP.Nodes[0]
		var awake, elapsed time.Duration
		// Sample CPU burn just before the run ends (Close wipes state).
		eng.Schedule(2*time.Millisecond, func() {
			now := eng.Now()
			awake = node.Core.Dispatchers()[0].AwakeTime(now) + node.Bridge.Worker().AwakeTime(now)
			elapsed = 2 * now.Duration() // two threads
		})
		rtt := microbench.PingRTT(tb, 0, 1, 56, 10)
		fmt.Fprintf(w, "%-12s %11.1fus %16.1f%%\n", y, us(rtt), 100*float64(awake)/float64(elapsed))
	}
	return nil
}

// runAblationMTU sweeps the guest MTU (Sect. 4.4): throughput rises with
// MTU until fragmentation or the wire takes over.
func runAblationMTU(w io.Writer) error {
	fmt.Fprintf(w, "%-10s %16s %12s\n", "guest MTU", "UDP goodput", "fragments")
	for _, mtu := range []int{1500, 4000, 8946, 16000, 32000, 64000} {
		tb := lab.NewVNETPTestbed(sim.New(), lab.Config{
			Dev: phys.Eth10G, N: 2, Params: defaultParams(), GuestMTU: mtu,
		})
		node := tb.VNETP.Nodes[0]
		g := microbench.TTCPUDP(tb, 0, 1, mtu-100, udpWindow)
		frags := float64(node.Bridge.FragmentsSent) / float64(node.Bridge.EncapSent)
		fmt.Fprintf(w, "%-10d %11.0f MB/s %11.2f\n", mtu, mbps(g), frags)
	}
	return nil
}
