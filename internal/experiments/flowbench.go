package experiments

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"vnetp/internal/core"
	"vnetp/internal/ethernet"
	"vnetp/internal/overlay"
)

// The flow sweep answers "what does the per-flow forwarding cache buy
// on the routing stage?" (ISSUE 9's fig. 5 analogue). Each round pairs
// a cached run against an uncached run (NodeConfig.FlowCacheDisabled)
// of the identical shape — four parallel unicast lanes window-paced
// into local endpoints — so machine drift cancels and the gated record
// is a machine-independent ratio:
//
//	cached_goodput_ratio_<size>_pct = cached MB/s / uncached MB/s × 100
//
// The 64-byte row is the acceptance pair: the cache must hold ≥150%
// (one sharded read + atomic flow accounting versus tenant-table
// resolve + route-cache probe + node-mutex acquisition per frame).
// Unlike the seal/trace sweeps the ratio is NOT capped at 100 — the
// whole point is to pin how far above parity the fast path sits — so
// this file carries its own uncapped best-of-rounds helper. Absolute
// MB/s figures ride along under the ungated "MBps" unit.
const (
	flowBenchFrames  = 400000 // total frames per run, across all lanes
	flowBenchSenders = 4
)

var flowBenchSizes = []int{64, 1500}

// CollectFlowBench runs the paired cached-vs-uncached goodput sweep.
// Like the other live sweeps it reports the best of three rounds and
// returns nil rather than failing the bench run on a sandboxed host
// without loopback sockets.
func CollectFlowBench() []Record {
	// Warm-up pass absorbs first-run socket and scheduler costs.
	if _, err := flowBenchRun(flowBenchSizes[0], false); err != nil {
		return nil
	}
	const rounds = 3
	var recs []Record
	for _, size := range flowBenchSizes {
		var ratios []float64
		var lastCached, lastUncached float64
		for round := 0; round < rounds; round++ {
			cached, err := flowBenchRun(size, false)
			if err != nil {
				return nil
			}
			uncached, err := flowBenchRun(size, true)
			if err != nil || uncached <= 0 {
				return nil
			}
			ratios = append(ratios, cached/uncached*100)
			lastCached, lastUncached = cached, uncached
		}
		label := fmt.Sprintf("%db", size)
		recs = append(recs,
			Record{ID: "flowbench", Metric: "cached_goodput_ratio_" + label + "_pct",
				Value: bestUncapped(ratios), Unit: "%"},
			// "MBps", not "MB/s": loopback absolutes stay informational.
			Record{ID: "flowbench", Metric: "cached_goodput_" + label,
				Value: lastCached, Unit: "MBps"},
			Record{ID: "flowbench", Metric: "uncached_goodput_" + label,
				Value: lastUncached, Unit: "MBps"},
		)
	}
	return recs
}

// bestUncapped returns the largest ratio with no ceiling — a cache that
// beats the uncached path by 1.7× is the result, not noise.
func bestUncapped(vs []float64) float64 {
	best := 0.0
	for _, v := range vs {
		if v > best {
			best = v
		}
	}
	return best
}

// flowBenchRun measures routing-stage goodput for payload-byte frames
// across flowBenchSenders parallel unicast lanes on one node, with the
// flow cache enabled or disabled. Delivery is to local endpoints, so
// the measured stage is exactly what the cache shortcuts: route
// resolution and tenancy checks, not the wire. Window pacing stays
// strictly under the endpoint RX ring so no frame is dropped and
// goodput counts every frame.
func flowBenchRun(payload int, disabled bool) (throughputMBs float64, err error) {
	n, err := overlay.NewNodeWithConfig("flowbench", "127.0.0.1:0",
		overlay.NodeConfig{FlowCacheDisabled: disabled})
	if err != nil {
		return 0, err
	}
	defer n.Close()

	const window = 128
	type lane struct {
		src, dst  *overlay.Endpoint
		delivered atomic.Uint64
	}
	lanes := make([]*lane, flowBenchSenders)
	quit := make(chan struct{})
	var drains sync.WaitGroup
	defer drains.Wait()
	for i := 0; i < flowBenchSenders; i++ {
		l := &lane{}
		if l.src, err = n.AttachEndpoint(fmt.Sprintf("src%d", i), ethernet.LocalMAC(uint32(1+i)), ethernet.JumboMTU); err != nil {
			return 0, err
		}
		if l.dst, err = n.AttachEndpoint(fmt.Sprintf("dst%d", i), ethernet.LocalMAC(uint32(100+i)), ethernet.JumboMTU); err != nil {
			return 0, err
		}
		if err := n.AddRoute(core.Route{DstMAC: l.dst.MAC(), DstQual: core.QualExact, SrcQual: core.QualAny,
			Dest: core.Destination{Type: core.DestInterface, ID: fmt.Sprintf("dst%d", i)}}); err != nil {
			return 0, err
		}
		lanes[i] = l
		drains.Add(1)
		go func(l *lane) {
			defer drains.Done()
			for {
				if _, ok := l.dst.TryRecv(); ok {
					l.delivered.Add(1)
					continue
				}
				select {
				case <-quit:
					return
				default:
					runtime.Gosched()
				}
			}
		}(l)
	}
	defer close(quit)

	per := flowBenchFrames / flowBenchSenders
	start := time.Now()
	var senders sync.WaitGroup
	errs := make(chan error, flowBenchSenders)
	for _, l := range lanes {
		senders.Add(1)
		go func(l *lane) {
			defer senders.Done()
			const chunk = 32
			batch := make([]*ethernet.Frame, chunk)
			for i := range batch {
				batch[i] = &ethernet.Frame{Dst: l.dst.MAC(), Src: l.src.MAC(),
					Type: ethernet.TypeTest, Payload: make([]byte, payload)}
			}
			for k := 0; k < per; k += chunk {
				m := chunk
				if per-k < m {
					m = per - k
				}
				for uint64(k)-l.delivered.Load() >= window-chunk {
					runtime.Gosched()
				}
				if err := l.src.SendBatch(batch[:m]); err != nil {
					errs <- err
					return
				}
			}
			deadline := time.Now().Add(20 * time.Second)
			for l.delivered.Load() < uint64(per) {
				if time.Now().After(deadline) {
					errs <- fmt.Errorf("flowbench: lane stalled at %d of %d frames",
						l.delivered.Load(), per)
					return
				}
				runtime.Gosched()
			}
		}(l)
	}
	senders.Wait()
	select {
	case err := <-errs:
		return 0, err
	default:
	}
	elapsed := time.Since(start).Seconds()
	if elapsed <= 0 {
		return 0, fmt.Errorf("flowbench: zero elapsed time")
	}
	total := float64(per * flowBenchSenders)
	return total * float64(payload) / elapsed / 1e6, nil
}
