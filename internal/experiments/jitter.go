package experiments

import (
	"fmt"
	"io"
	"math"
	"sort"
	"time"

	"vnetp/internal/core"

	"vnetp/internal/lab"
	"vnetp/internal/phys"
	"vnetp/internal/sim"
)

func init() {
	register("jitter", "latency jitter: Linux host noise vs Kitten LWK (Sect. 6.3)", runJitter)
}

// pingSamples gathers n individual RTT samples over a testbed.
func pingSamplesOver(tb *lab.Testbed, n int) []time.Duration {
	eng := tb.Eng
	out := make([]time.Duration, 0, n)
	eng.Go("ping", func(p *sim.Proc) {
		p.Sleep(time.Millisecond)
		tb.Stacks[0].Ping(p, tb.IP(1), 56, time.Second) // warm up
		for i := 0; i < n; i++ {
			// Irregular spacing so samples land at different phases of
			// the noise process.
			p.Sleep(time.Duration(50+i*7%100) * time.Microsecond)
			if rtt, ok := tb.Stacks[0].Ping(p, tb.IP(1), 56, time.Second); ok {
				out = append(out, rtt)
			}
		}
	})
	eng.Run()
	eng.Close()
	return out
}

type jitterStats struct {
	p50, p99, max time.Duration
	stddev        time.Duration
}

func summarize(samples []time.Duration) jitterStats {
	s := append([]time.Duration(nil), samples...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	var sum, sum2 float64
	for _, v := range s {
		f := float64(v)
		sum += f
		sum2 += f * f
	}
	n := float64(len(s))
	mean := sum / n
	return jitterStats{
		p50:    s[len(s)/2],
		p99:    s[len(s)*99/100],
		max:    s[len(s)-1],
		stddev: time.Duration(math.Sqrt(sum2/n - mean*mean)),
	}
}

// runJitter reproduces the Sect. 6.3 observation: on a Linux host, OS
// scheduling noise perturbs the bridge path and spreads the latency
// distribution; under the Kitten lightweight kernel the same datapath is
// nearly jitter-free.
func runJitter(w io.Writer) error {
	const n = 400
	linuxTB := lab.NewVNETPTestbed(sim.New(), lab.Config{
		Dev: phys.Eth10G, N: 2, Params: core.DefaultParams(), Model: phys.ModelLinuxNoisy(),
	})
	linux := summarize(pingSamplesOver(linuxTB, n))
	kittenTB := lab.NewVNETPTestbed(sim.New(), lab.Config{
		Dev: phys.Eth10G, N: 2, Params: core.DefaultParams(), Model: phys.ModelKitten(),
	})
	kitt := summarize(pingSamplesOver(kittenTB, n))

	fmt.Fprintf(w, "%-22s %10s %10s %10s %10s\n", "host environment", "p50", "p99", "max", "stddev")
	fmt.Fprintf(w, "%-22s %9.1fus %9.1fus %9.1fus %9.1fus\n",
		"Linux (noisy host)", us(linux.p50), us(linux.p99), us(linux.max), us(linux.stddev))
	fmt.Fprintf(w, "%-22s %9.1fus %9.1fus %9.1fus %9.1fus\n",
		"Kitten (LWK)", us(kitt.p50), us(kitt.p99), us(kitt.max), us(kitt.stddev))
	fmt.Fprintf(w, "stddev ratio Linux/Kitten: %.1fx\n",
		float64(linux.stddev)/math.Max(1, float64(kitt.stddev)))
	return nil
}
