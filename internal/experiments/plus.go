package experiments

import (
	"fmt"
	"io"

	"vnetp/internal/core"
	"vnetp/internal/lab"
	"vnetp/internal/microbench"
	"vnetp/internal/phys"
	"vnetp/internal/sim"
)

func init() {
	register("vnetp-plus", "VNET/P+ optimistic interrupts + cut-through forwarding (Cui et al. SC'12)", runPlus)
}

// runPlus compares plain VNET/P against VNET/P+ on 10G: the follow-on
// paper reports near-native throughput and latency overheads down from
// 2-3x to 1.2-1.3x.
func runPlus(w io.Writer) error {
	mk := func(p core.Params, dev phys.Device) *lab.Testbed {
		return lab.NewVNETPTestbed(sim.New(), lab.Config{Dev: dev, N: 2, Params: p})
	}
	wj := microbench.StreamWriteFor(lab.GuestMTUFor(phys.Eth10G))

	natTCP := microbench.TTCPStream(nativePair(phys.Eth10G), 0, 1, wj, tcpBytes)
	natUDP := microbench.TTCPUDP(nativePair(phys.Eth10G), 0, 1, 8900, udpWindow)
	natRTT := microbench.PingRTT(nativePair(phys.Eth10G), 0, 1, 56, 10)

	fmt.Fprintf(w, "%-12s %12s %12s %12s %10s\n", "config", "TCP", "UDP", "ping RTT", "RTT ratio")
	fmt.Fprintf(w, "%-12s %7.0f MB/s %7.0f MB/s %9.1fus %9.2fx\n",
		"Native", mbps(natTCP), mbps(natUDP), us(natRTT), 1.0)
	for _, row := range []struct {
		label  string
		params core.Params
	}{
		{"VNET/P", core.DefaultParams()},
		{"VNET/P+", core.PlusParams()},
	} {
		tcp := microbench.TTCPStream(mk(row.params, phys.Eth10G), 0, 1, wj, tcpBytes)
		udp := microbench.TTCPUDP(mk(row.params, phys.Eth10G), 0, 1, 8900, udpWindow)
		rtt := microbench.PingRTT(mk(row.params, phys.Eth10G), 0, 1, 56, 10)
		fmt.Fprintf(w, "%-12s %7.0f MB/s %7.0f MB/s %9.1fus %9.2fx\n",
			row.label, mbps(tcp), mbps(udp), us(rtt), float64(rtt)/float64(natRTT))
	}
	return nil
}
